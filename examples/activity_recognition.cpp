// Wearable activity recognition (the PAMAP2 workload of Table I): three IMU
// sensor nodes stream features into a body-area hierarchy. Demonstrates
// per-level accuracy, the compression / fidelity trade-off of query
// transport (Section IV-C), and robustness to losing dimensions over a
// flaky Bluetooth link (Figure 12).
//
// Build & run: ./build/examples/activity_recognition
#include <cstdio>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "hdc/compress.hpp"
#include "hdc/random.hpp"
#include "hdc/wire.hpp"
#include "net/topology.hpp"

int main() {
  using namespace edgehd;

  data::GenOptions opt;
  opt.max_train = 2500;
  opt.max_test = 700;
  const auto ds = data::make_dataset(data::DatasetId::kPamap2, 17, opt);

  core::SystemConfig cfg;
  cfg.batch_size = core::scaled_batch_size(
      75, data::spec(data::DatasetId::kPamap2).paper_train, ds.train_size());
  core::EdgeHdSystem body(ds, net::Topology::paper_tree(3), cfg);
  body.train();

  std::printf("PAMAP2-style activity recognition (3 IMU nodes, D=%zu)\n",
              cfg.total_dim);
  for (std::size_t lvl = 1; lvl <= body.topology().depth(); ++lvl) {
    std::printf("  level-%zu accuracy: %.1f%%\n", lvl,
                100.0 * body.accuracy_at_level(lvl));
  }

  // Compression trade-off: how many bytes does one hub-bound query cost, and
  // how much of it survives the superposition?
  std::printf("\nquery transport at the hub (per-hop compression):\n");
  const std::size_t d = body.node_dim(body.topology().leaves().front());
  hdc::Rng rng(3);
  for (const std::size_t m : {1u, 10u, 25u, 50u}) {
    hdc::HvCompressor comp(d, m, 9);
    std::vector<hdc::BipolarHV> queries(m);
    for (auto& q : queries) q = rng.sign_vector(d);
    const auto packed = comp.compress(queries);
    std::size_t flips = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const auto rec = comp.decompress(packed, i);
      for (std::size_t k = 0; k < d; ++k) {
        if (rec[k] != queries[i][k]) ++flips;
      }
    }
    std::printf("  m=%-3zu %6.0f B/query   bit error %.3f\n",
                static_cast<std::size_t>(m),
                static_cast<double>(hdc::wire_bytes_accum(packed)) /
                    static_cast<double>(m),
                static_cast<double>(flips) / static_cast<double>(m * d));
  }

  // Flaky link: the hub loses a fraction of every query hypervector.
  std::printf("\naccuracy at the hub under transmission loss:\n");
  const auto root = body.topology().root();
  for (const double loss : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    std::printf("  loss %2.0f%% -> %.1f%%\n", 100.0 * loss,
                100.0 * body.accuracy_at_node_with_loss(root, loss, 11));
  }
  return 0;
}
