// Serving: drive the query-serving plane (src/serve, DESIGN.md section 10)
// with a seeded open-loop trace. Queries arrive at the leaves from per-node
// Poisson processes, wait in bounded admission queues, and are drained in
// dynamic micro-batches through the packed kernels; low-confidence queries
// escalate asynchronously while their leaf keeps serving. Everything below
// runs in virtual time, so the printed numbers are deterministic for a
// fixed seed — across runs AND across worker counts — and the build pins
// them (Serving.OutputPinned) the same way the quickstart output is pinned.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/serving
#include <cstdio>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "net/fault.hpp"
#include "net/medium.hpp"
#include "net/topology.hpp"
#include "serve/config.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"

int main() {
  using namespace edgehd;
  using net::kMillisecond;

  // 1. A small smart-building deployment: 4 end nodes -> 2 gateways -> 1
  //    central node, trained on a 40-feature synthetic workload.
  auto ds = data::make_synthetic("serving-example", 40, 3, {10, 10, 10, 10},
                                 /*train_size=*/900, /*test_size=*/250,
                                 /*seed=*/91, /*class_separation=*/3.8F,
                                 /*observation_noise=*/0.5F,
                                 /*xor_fraction=*/0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 1600;
  cfg.confidence_threshold = 0.6;
  core::EdgeHdSystem system(ds, net::Topology::paper_tree(4), cfg);
  system.train();

  // 2. An open-loop trace: every leaf receives a 2 kHz Poisson query stream,
  //    8000 queries in total. The engine coalesces queued queries into
  //    micro-batches (flush at max_batch or after max_wait, whichever first).
  const std::vector<net::NodeId> leaves = system.topology().leaves();
  const auto load = serve::LoadSpec::poisson(
      {leaves.begin(), leaves.end()}, /*rate_hz=*/2000.0,
      /*num_queries=*/8000, /*seed=*/7);
  serve::ServeConfig scfg;
  scfg.queue_depth = 512;
  scfg.max_batch = 16;
  scfg.slo = 25 * kMillisecond;
  scfg.record_replies = false;
  const serve::ServeReport r = system.serve_run(scfg, load);
  std::printf("served:                  %llu of %llu submitted\n",
              static_cast<unsigned long long>(r.served),
              static_cast<unsigned long long>(r.submitted));
  std::printf("escalation hops:         %llu\n",
              static_cast<unsigned long long>(r.escalation_hops));
  std::printf("micro-batches:           %llu\n",
              static_cast<unsigned long long>(r.batches));
  std::printf("accuracy:                %.1f%%\n",
              100.0 * static_cast<double>(r.correct) /
                  static_cast<double>(r.served));
  std::printf("latency p50/p95/p99:     %.2f / %.2f / %.2f ms (virtual)\n",
              static_cast<double>(r.p50_latency_ns) / 1e6,
              static_cast<double>(r.p95_latency_ns) / 1e6,
              static_cast<double>(r.p99_latency_ns) / 1e6);
  std::printf("SLO (25 ms) violations:  %llu\n",
              static_cast<unsigned long long>(r.slo_violations));

  // 3. The same trace with a gateway outage window: queries whose escalation
  //    target is unreachable are answered at the best node reached so far
  //    (served degraded) instead of being dropped.
  net::FaultPlan plan;
  plan.crash(/*node=*/4, /*from=*/200 * kMillisecond,  // gateway of leaves 0,1
             /*until=*/600 * kMillisecond);
  const serve::ServeReport f = system.serve_run(scfg, load, plan);
  std::printf("with gateway outage:     %llu served (%llu degraded), "
              "%llu unserved\n",
              static_cast<unsigned long long>(f.served),
              static_cast<unsigned long long>(f.served_degraded),
              static_cast<unsigned long long>(f.unserved));
  return 0;
}
