// Quickstart: train a centralized EdgeHD classifier on a synthetic workload
// and compare hierarchy levels on a small smart-building deployment.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "baseline/hd_model.hpp"
#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"

int main() {
  using namespace edgehd;

  // 1. A 60-feature, 4-class workload whose features come from 4 sensors
  //    (15 features each), as a smart building would produce.
  const auto ds = data::make_synthetic("quickstart", 60, 4, {15, 15, 15, 15},
                                       /*train_size=*/2000, /*test_size=*/600,
                                       /*seed=*/1);

  // 2. Centralized HD classifier: the paper's non-linear encoder at D=4000.
  baseline::HdModel central;
  central.fit(ds);
  std::printf("centralized EdgeHD accuracy:     %.1f%%\n",
              100.0 * central.test_accuracy(ds));

  // 3. Hierarchical deployment: 4 end nodes -> 2 gateways -> 1 central node.
  //    The facade is all an application touches; underneath, training and
  //    inference run as typed protocol messages between per-node runtimes
  //    (see src/proto and DESIGN.md section 9).
  core::EdgeHdSystem system(ds, net::Topology::paper_tree(4));
  const auto comm = system.train();
  std::printf("hierarchical training traffic:   %.1f KiB\n",
              static_cast<double>(comm.bytes) / 1024.0);
  for (std::size_t level = 1; level <= system.topology().depth(); ++level) {
    std::printf("accuracy at level %zu:             %.1f%%\n", level,
                100.0 * system.accuracy_at_level(level));
  }

  // 4. Confidence-routed inference: most queries are answered low in the
  //    hierarchy; hard ones escalate toward the central node.
  std::size_t by_level[8] = {};
  const auto start = system.topology().leaves().front();
  for (std::size_t i = 0; i < ds.test_size(); ++i) {
    const auto r = system.infer_routed(ds.test_x[i], start);
    ++by_level[r.level];
  }
  for (std::size_t level = 1; level <= system.topology().depth(); ++level) {
    std::printf("queries served at level %zu:       %.1f%%\n", level,
                100.0 * static_cast<double>(by_level[level]) /
                    static_cast<double>(ds.test_size()));
  }

  // 5. Everything above was also recorded by the built-in metrics registry
  //    (compile with -DEDGEHD_OBS=OFF to remove every hook). Dump it: the
  //    JSON is deterministic for a fixed seed and worker count.
  if constexpr (obs::kEnabled) {
    const std::string json = obs::MetricsRegistry::global().to_json(
        /*include_volatile=*/false);
    if (std::FILE* f = std::fopen("quickstart_metrics.json", "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
    std::printf("metrics: core.routed.queries=%llu escalations=%llu "
                "(full dump: quickstart_metrics.json)\n",
                static_cast<unsigned long long>(
                    obs::MetricsRegistry::global().counter_value(
                        "core.routed.queries")),
                static_cast<unsigned long long>(
                    obs::MetricsRegistry::global().counter_value(
                        "core.routed.escalations")));
  }
  return 0;
}
