// Image classification with the fractional-power spatial encoder (the
// paper's Section III-A image construction, as used for the MNIST-style
// workloads): tiny synthetic glyphs are encoded with position-correlated
// phasor hypervectors — nearby pixels share correlated codes, so spatial
// structure survives the mapping — and classified with the standard
// class-hypervector model.
//
// Build & run: ./build/examples/image_digits
#include <cstdio>
#include <vector>

#include "hdc/classifier.hpp"
#include "hdc/random.hpp"
#include "hdc/spatial_encoder.hpp"

namespace {

using namespace edgehd;

constexpr std::size_t kSide = 8;
constexpr std::size_t kClasses = 4;  // horizontal / vertical / diagonal / blob

std::vector<float> make_glyph(std::size_t cls, hdc::Rng& rng) {
  std::vector<float> img(kSide * kSide, 0.0F);
  const std::size_t offset = rng.index(kSide - 2) + 1;  // jitter position
  for (std::size_t i = 0; i < kSide; ++i) {
    switch (cls) {
      case 0: img[offset * kSide + i] = 1.0F; break;          // horizontal bar
      case 1: img[i * kSide + offset] = 1.0F; break;          // vertical bar
      case 2: img[i * kSide + i] = 1.0F; break;               // main diagonal
      default:                                                 // 3x3 blob
        if (i < 3) {
          for (std::size_t j = 0; j < 3; ++j) {
            img[(offset + i - 1) * kSide + offset + j - 1] = 1.0F;
          }
        }
    }
  }
  for (auto& p : img) p += 0.25F * rng.gaussian();  // sensor noise
  return img;
}

}  // namespace

int main() {
  hdc::SpatialEncoder encoder(kSide, kSide, 4096, /*seed=*/3,
                              /*length_scale=*/1.5F);
  hdc::HDClassifier clf(kClasses, encoder.dim());
  hdc::Rng rng(7);

  // Train: encode each glyph, binarize the phasor code, bundle per class.
  std::vector<hdc::BipolarHV> train_hvs;
  std::vector<std::size_t> train_labels;
  for (std::size_t i = 0; i < 400; ++i) {
    const std::size_t cls = i % kClasses;
    const auto hv =
        hdc::SpatialEncoder::binarize_real(encoder.encode(make_glyph(cls, rng)));
    clf.add_sample(cls, hv);
    train_hvs.push_back(hv);
    train_labels.push_back(cls);
  }
  clf.retrain(train_hvs, train_labels);

  const char* names[kClasses] = {"horizontal", "vertical", "diagonal", "blob"};
  std::size_t correct = 0;
  std::size_t per_class_correct[kClasses] = {};
  const std::size_t per_class_total = 50;
  for (std::size_t cls = 0; cls < kClasses; ++cls) {
    for (std::size_t i = 0; i < per_class_total; ++i) {
      const auto hv = hdc::SpatialEncoder::binarize_real(
          encoder.encode(make_glyph(cls, rng)));
      const auto p = clf.predict(hv);
      if (p.label == cls) {
        ++correct;
        ++per_class_correct[cls];
      }
    }
  }
  std::printf("spatial-encoder glyph recognition (8x8, D=4096):\n");
  for (std::size_t cls = 0; cls < kClasses; ++cls) {
    std::printf("  %-10s %3.0f%%\n", names[cls],
                100.0 * static_cast<double>(per_class_correct[cls]) /
                    static_cast<double>(per_class_total));
  }
  std::printf("  overall    %3.0f%%\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(kClasses * per_class_total));
  return 0;
}
