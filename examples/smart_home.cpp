// Smart-home scenario (paper Section II): heterogeneous appliances feed a
// house-level hierarchy that learns activity context, improves itself from
// the residents' negative feedback, and answers most queries on-device.
//
//   fridge (6 sensors) ─┐
//   tv     (4 sensors) ─┼─ kitchen gateway ─┐
//   stove  (5 sensors) ─┘                   ├─ home server (central)
//   thermostat (3)  ────┬─ living gateway ──┘
//   motion (6)      ────┘
//
// Build & run: ./build/examples/smart_home
#include <cstdio>
#include <numeric>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "net/topology.hpp"

int main() {
  using namespace edgehd;

  // Five appliances with heterogeneous sensor counts; 4 household contexts
  // (away / asleep / cooking / relaxing).
  const std::vector<std::size_t> sensors{6, 4, 5, 3, 6};
  auto ds = data::make_synthetic(
      "smart-home", std::accumulate(sensors.begin(), sensors.end(),
                                    std::size_t{0}),
      4, sensors, /*train=*/2400, /*test=*/600, /*seed=*/5);
  data::zscore_normalize(ds);

  // Appliances 0,1 under the kitchen gateway; 2,3 under the living-room
  // gateway; appliance 4 talks to the home server directly.
  core::SystemConfig cfg;
  cfg.total_dim = 2000;
  cfg.batch_size = 8;
  core::EdgeHdSystem home(ds, net::Topology::paper_tree(sensors.size()), cfg);

  // Phase 1: offline training on the first month of labelled data.
  const std::size_t offline = ds.train_size() / 3;
  std::vector<std::size_t> first(offline);
  std::iota(first.begin(), first.end(), 0);
  const auto comm = home.train(first);
  std::printf("offline training: %.1f KiB over the home network\n",
              static_cast<double>(comm.bytes) / 1024.0);
  for (std::size_t lvl = 1; lvl <= home.topology().depth(); ++lvl) {
    std::printf("  level-%zu accuracy: %.1f%%\n", lvl,
                100.0 * home.accuracy_at_level(lvl));
  }

  // Phase 2: residents use the system and reject wrong answers; the home
  // propagates residual hypervectors "every midnight".
  const auto leaves = home.topology().leaves();
  std::size_t wrong = 0;
  core::CommStats update;
  for (std::size_t i = offline; i < ds.train_size(); ++i) {
    const auto r = home.online_serve(ds.train_x[i], ds.train_y[i],
                                     leaves[i % leaves.size()]);
    if (r.label != ds.train_y[i]) ++wrong;
    if ((i - offline) % 400 == 399) update += home.propagate_residuals();
  }
  update += home.propagate_residuals();
  std::printf("online phase: %zu rejections, %.1f KiB of residual updates\n",
              wrong, static_cast<double>(update.bytes) / 1024.0);
  for (std::size_t lvl = 1; lvl <= home.topology().depth(); ++lvl) {
    std::printf("  level-%zu accuracy: %.1f%%\n", lvl,
                100.0 * home.accuracy_at_level(lvl));
  }

  // Phase 3: where do queries get answered now?
  std::size_t by_level[8] = {};
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < ds.test_size(); ++i) {
    const auto r = home.infer_routed(ds.test_x[i], leaves[i % leaves.size()]);
    ++by_level[r.level];
    bytes += r.bytes;
  }
  std::printf("query routing:");
  for (std::size_t lvl = 1; lvl <= home.topology().depth(); ++lvl) {
    std::printf("  L%zu %.0f%%", lvl,
                100.0 * static_cast<double>(by_level[lvl]) /
                    static_cast<double>(ds.test_size()));
  }
  std::printf("  (avg %.0f B/query)\n",
              static_cast<double>(bytes) / static_cast<double>(ds.test_size()));
  return 0;
}
