// City-scale power management (the PECAN workload of Table I and Figure 8):
// 52 houses, each aggregating six instrumented appliances, grouped into
// streets under a city node. This example uses the *analytic* side of the
// library — the network simulator, platform models and cost model — to plan
// a deployment: which learning configuration to run, and over which network.
//
// Build & run: ./build/examples/power_grid
#include <cstdio>

#include "core/cost_model.hpp"
#include "data/dataset.hpp"
#include "net/medium.hpp"
#include "net/topology.hpp"

int main() {
  using namespace edgehd;

  // Paper-scale PECAN shape: 312 appliance readings, 52 six-sensor houses.
  core::WorkloadShape shape =
      core::WorkloadShape::from_spec(data::spec(data::DatasetId::kPecan));
  shape.partitions.assign(52, 6);
  const core::CostModel model(shape);
  const auto city = net::Topology::uniform_depth(52, 3);

  std::printf("PECAN deployment planning (%zu houses, %zu-level hierarchy)\n",
              city.leaves().size(), city.depth());

  const char* names[] = {"DNN-GPU (central)", "HD-GPU (central)",
                         "HD-FPGA (central)", "EdgeHD (hierarchical)"};
  const core::Deployment deps[] = {
      core::Deployment::kDnnGpu, core::Deployment::kHdGpu,
      core::Deployment::kHdFpga, core::Deployment::kEdgeHd};

  for (const auto kind :
       {net::MediumKind::kWired1G, net::MediumKind::kWifi80211n}) {
    const auto& medium = net::medium(kind);
    std::printf("\n-- %s --\n", medium.name.c_str());
    std::printf("%-22s %12s %12s %12s\n", "configuration", "train(s)",
                "energy(J)", "traffic(MB)");
    for (int i = 0; i < 4; ++i) {
      const auto costs = model.evaluate(deps[i], city, medium);
      std::printf("%-22s %12.3f %12.1f %12.2f\n", names[i],
                  static_cast<double>(costs.train.time) / 1e9,
                  costs.train.energy_j,
                  static_cast<double>(costs.train.bytes) / 1e6);
    }
  }

  // Interactive queries: how long until a house / street / city answer?
  std::printf("\nper-query latency over WiFi 802.11n:\n");
  const auto& wifi = net::medium(net::MediumKind::kWifi80211n);
  for (std::size_t level = 1; level <= city.depth(); ++level) {
    std::printf("  served at level %zu: %.2f ms\n", level,
                static_cast<double>(
                    model.edgehd_query_latency(city, wifi, level)) /
                    1e6);
  }
  const auto central_latency = model.centralized_query_latency(
      city, wifi, net::hd_fpga_central(),
      model.hd_central_infer_macs_per_query(true));
  std::printf("  centralized HD-FPGA:  %.2f ms\n",
              static_cast<double>(central_latency) / 1e6);
  return 0;
}
