# Runs the quickstart example and compares its stdout against the checked-in
# expectation (examples/quickstart_expected.txt). The run is deterministic for
# a fixed seed, so any divergence means observable behavior changed — the same
# guarantee the golden e2e test pins for the protocol byte totals.
#
# Invoked by ctest as:
#   cmake -DQUICKSTART=<binary> -DEXPECTED=<expected.txt> -P check_quickstart.cmake
execute_process(
  COMMAND "${QUICKSTART}"
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE status
)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "quickstart exited with status ${status}")
endif()
file(READ "${EXPECTED}" expected)
if(NOT actual STREQUAL expected)
  message(FATAL_ERROR "quickstart stdout diverged from ${EXPECTED}:\n${actual}")
endif()
