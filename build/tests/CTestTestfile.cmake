# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_hypervector[1]_include.cmake")
include("/root/repo/build/tests/test_encoder[1]_include.cmake")
include("/root/repo/build/tests/test_spatial_encoder[1]_include.cmake")
include("/root/repo/build/tests/test_classifier[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_hier[1]_include.cmake")
include("/root/repo/build/tests/test_edgehd[1]_include.cmake")
include("/root/repo/build/tests/test_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
