file(REMOVE_RECURSE
  "CMakeFiles/test_hypervector.dir/test_hypervector.cpp.o"
  "CMakeFiles/test_hypervector.dir/test_hypervector.cpp.o.d"
  "test_hypervector"
  "test_hypervector.pdb"
  "test_hypervector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypervector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
