# Empty dependencies file for test_hypervector.
# This may be replaced when dependencies are built.
