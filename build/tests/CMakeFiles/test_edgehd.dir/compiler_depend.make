# Empty compiler generated dependencies file for test_edgehd.
# This may be replaced when dependencies are built.
