file(REMOVE_RECURSE
  "CMakeFiles/test_edgehd.dir/test_edgehd.cpp.o"
  "CMakeFiles/test_edgehd.dir/test_edgehd.cpp.o.d"
  "test_edgehd"
  "test_edgehd.pdb"
  "test_edgehd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edgehd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
