file(REMOVE_RECURSE
  "CMakeFiles/test_smoke.dir/test_smoke.cpp.o"
  "CMakeFiles/test_smoke.dir/test_smoke.cpp.o.d"
  "test_smoke"
  "test_smoke.pdb"
  "test_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
