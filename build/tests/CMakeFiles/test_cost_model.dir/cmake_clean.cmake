file(REMOVE_RECURSE
  "CMakeFiles/test_cost_model.dir/test_cost_model.cpp.o"
  "CMakeFiles/test_cost_model.dir/test_cost_model.cpp.o.d"
  "test_cost_model"
  "test_cost_model.pdb"
  "test_cost_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
