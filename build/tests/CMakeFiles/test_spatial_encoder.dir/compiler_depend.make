# Empty compiler generated dependencies file for test_spatial_encoder.
# This may be replaced when dependencies are built.
