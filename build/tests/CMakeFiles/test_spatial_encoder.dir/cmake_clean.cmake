file(REMOVE_RECURSE
  "CMakeFiles/test_spatial_encoder.dir/test_spatial_encoder.cpp.o"
  "CMakeFiles/test_spatial_encoder.dir/test_spatial_encoder.cpp.o.d"
  "test_spatial_encoder"
  "test_spatial_encoder.pdb"
  "test_spatial_encoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spatial_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
