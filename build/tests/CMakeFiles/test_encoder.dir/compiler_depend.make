# Empty compiler generated dependencies file for test_encoder.
# This may be replaced when dependencies are built.
