file(REMOVE_RECURSE
  "CMakeFiles/test_encoder.dir/test_encoder.cpp.o"
  "CMakeFiles/test_encoder.dir/test_encoder.cpp.o.d"
  "test_encoder"
  "test_encoder.pdb"
  "test_encoder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
