file(REMOVE_RECURSE
  "CMakeFiles/test_classifier.dir/test_classifier.cpp.o"
  "CMakeFiles/test_classifier.dir/test_classifier.cpp.o.d"
  "test_classifier"
  "test_classifier.pdb"
  "test_classifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
