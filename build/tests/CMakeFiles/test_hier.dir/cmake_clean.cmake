file(REMOVE_RECURSE
  "CMakeFiles/test_hier.dir/test_hier.cpp.o"
  "CMakeFiles/test_hier.dir/test_hier.cpp.o.d"
  "test_hier"
  "test_hier.pdb"
  "test_hier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
