# Empty compiler generated dependencies file for test_hier.
# This may be replaced when dependencies are built.
