file(REMOVE_RECURSE
  "CMakeFiles/test_fpga.dir/test_fpga.cpp.o"
  "CMakeFiles/test_fpga.dir/test_fpga.cpp.o.d"
  "test_fpga"
  "test_fpga.pdb"
  "test_fpga[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
