# Empty dependencies file for test_fpga.
# This may be replaced when dependencies are built.
