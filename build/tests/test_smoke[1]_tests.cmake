add_test([=[Smoke.EncodeTrainPredict]=]  /root/repo/build/tests/test_smoke [==[--gtest_filter=Smoke.EncodeTrainPredict]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Smoke.EncodeTrainPredict]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_smoke_TESTS Smoke.EncodeTrainPredict)
