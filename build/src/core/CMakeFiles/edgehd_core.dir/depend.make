# Empty dependencies file for edgehd_core.
# This may be replaced when dependencies are built.
