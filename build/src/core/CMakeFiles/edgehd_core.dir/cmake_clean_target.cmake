file(REMOVE_RECURSE
  "libedgehd_core.a"
)
