file(REMOVE_RECURSE
  "CMakeFiles/edgehd_core.dir/cost_model.cpp.o"
  "CMakeFiles/edgehd_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/edgehd_core.dir/edgehd.cpp.o"
  "CMakeFiles/edgehd_core.dir/edgehd.cpp.o.d"
  "libedgehd_core.a"
  "libedgehd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgehd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
