# Empty compiler generated dependencies file for edgehd_fpga.
# This may be replaced when dependencies are built.
