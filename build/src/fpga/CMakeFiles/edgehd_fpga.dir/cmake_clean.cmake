file(REMOVE_RECURSE
  "CMakeFiles/edgehd_fpga.dir/fpga_model.cpp.o"
  "CMakeFiles/edgehd_fpga.dir/fpga_model.cpp.o.d"
  "libedgehd_fpga.a"
  "libedgehd_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgehd_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
