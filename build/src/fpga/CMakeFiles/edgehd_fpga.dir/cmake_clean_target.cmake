file(REMOVE_RECURSE
  "libedgehd_fpga.a"
)
