# Empty dependencies file for edgehd_net.
# This may be replaced when dependencies are built.
