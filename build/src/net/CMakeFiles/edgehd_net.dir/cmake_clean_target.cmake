file(REMOVE_RECURSE
  "libedgehd_net.a"
)
