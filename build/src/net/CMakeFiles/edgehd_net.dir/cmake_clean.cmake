file(REMOVE_RECURSE
  "CMakeFiles/edgehd_net.dir/medium.cpp.o"
  "CMakeFiles/edgehd_net.dir/medium.cpp.o.d"
  "CMakeFiles/edgehd_net.dir/platform.cpp.o"
  "CMakeFiles/edgehd_net.dir/platform.cpp.o.d"
  "CMakeFiles/edgehd_net.dir/simulator.cpp.o"
  "CMakeFiles/edgehd_net.dir/simulator.cpp.o.d"
  "CMakeFiles/edgehd_net.dir/topology.cpp.o"
  "CMakeFiles/edgehd_net.dir/topology.cpp.o.d"
  "libedgehd_net.a"
  "libedgehd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgehd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
