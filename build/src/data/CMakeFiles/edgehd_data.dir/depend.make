# Empty dependencies file for edgehd_data.
# This may be replaced when dependencies are built.
