file(REMOVE_RECURSE
  "libedgehd_data.a"
)
