file(REMOVE_RECURSE
  "CMakeFiles/edgehd_data.dir/dataset.cpp.o"
  "CMakeFiles/edgehd_data.dir/dataset.cpp.o.d"
  "libedgehd_data.a"
  "libedgehd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgehd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
