# Empty compiler generated dependencies file for edgehd_baseline.
# This may be replaced when dependencies are built.
