file(REMOVE_RECURSE
  "libedgehd_baseline.a"
)
