file(REMOVE_RECURSE
  "CMakeFiles/edgehd_baseline.dir/adaboost.cpp.o"
  "CMakeFiles/edgehd_baseline.dir/adaboost.cpp.o.d"
  "CMakeFiles/edgehd_baseline.dir/hd_model.cpp.o"
  "CMakeFiles/edgehd_baseline.dir/hd_model.cpp.o.d"
  "CMakeFiles/edgehd_baseline.dir/mlp.cpp.o"
  "CMakeFiles/edgehd_baseline.dir/mlp.cpp.o.d"
  "CMakeFiles/edgehd_baseline.dir/model.cpp.o"
  "CMakeFiles/edgehd_baseline.dir/model.cpp.o.d"
  "CMakeFiles/edgehd_baseline.dir/model_select.cpp.o"
  "CMakeFiles/edgehd_baseline.dir/model_select.cpp.o.d"
  "CMakeFiles/edgehd_baseline.dir/svm.cpp.o"
  "CMakeFiles/edgehd_baseline.dir/svm.cpp.o.d"
  "libedgehd_baseline.a"
  "libedgehd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgehd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
