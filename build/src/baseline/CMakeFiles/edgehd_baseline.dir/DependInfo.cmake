
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/adaboost.cpp" "src/baseline/CMakeFiles/edgehd_baseline.dir/adaboost.cpp.o" "gcc" "src/baseline/CMakeFiles/edgehd_baseline.dir/adaboost.cpp.o.d"
  "/root/repo/src/baseline/hd_model.cpp" "src/baseline/CMakeFiles/edgehd_baseline.dir/hd_model.cpp.o" "gcc" "src/baseline/CMakeFiles/edgehd_baseline.dir/hd_model.cpp.o.d"
  "/root/repo/src/baseline/mlp.cpp" "src/baseline/CMakeFiles/edgehd_baseline.dir/mlp.cpp.o" "gcc" "src/baseline/CMakeFiles/edgehd_baseline.dir/mlp.cpp.o.d"
  "/root/repo/src/baseline/model.cpp" "src/baseline/CMakeFiles/edgehd_baseline.dir/model.cpp.o" "gcc" "src/baseline/CMakeFiles/edgehd_baseline.dir/model.cpp.o.d"
  "/root/repo/src/baseline/model_select.cpp" "src/baseline/CMakeFiles/edgehd_baseline.dir/model_select.cpp.o" "gcc" "src/baseline/CMakeFiles/edgehd_baseline.dir/model_select.cpp.o.d"
  "/root/repo/src/baseline/svm.cpp" "src/baseline/CMakeFiles/edgehd_baseline.dir/svm.cpp.o" "gcc" "src/baseline/CMakeFiles/edgehd_baseline.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdc/CMakeFiles/edgehd_hdc.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/edgehd_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
