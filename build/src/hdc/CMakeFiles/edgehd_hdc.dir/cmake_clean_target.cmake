file(REMOVE_RECURSE
  "libedgehd_hdc.a"
)
