file(REMOVE_RECURSE
  "CMakeFiles/edgehd_hdc.dir/classifier.cpp.o"
  "CMakeFiles/edgehd_hdc.dir/classifier.cpp.o.d"
  "CMakeFiles/edgehd_hdc.dir/compress.cpp.o"
  "CMakeFiles/edgehd_hdc.dir/compress.cpp.o.d"
  "CMakeFiles/edgehd_hdc.dir/encoder.cpp.o"
  "CMakeFiles/edgehd_hdc.dir/encoder.cpp.o.d"
  "CMakeFiles/edgehd_hdc.dir/hypervector.cpp.o"
  "CMakeFiles/edgehd_hdc.dir/hypervector.cpp.o.d"
  "CMakeFiles/edgehd_hdc.dir/serialize.cpp.o"
  "CMakeFiles/edgehd_hdc.dir/serialize.cpp.o.d"
  "CMakeFiles/edgehd_hdc.dir/spatial_encoder.cpp.o"
  "CMakeFiles/edgehd_hdc.dir/spatial_encoder.cpp.o.d"
  "CMakeFiles/edgehd_hdc.dir/wire.cpp.o"
  "CMakeFiles/edgehd_hdc.dir/wire.cpp.o.d"
  "libedgehd_hdc.a"
  "libedgehd_hdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgehd_hdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
