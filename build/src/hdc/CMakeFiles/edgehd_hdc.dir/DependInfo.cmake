
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdc/classifier.cpp" "src/hdc/CMakeFiles/edgehd_hdc.dir/classifier.cpp.o" "gcc" "src/hdc/CMakeFiles/edgehd_hdc.dir/classifier.cpp.o.d"
  "/root/repo/src/hdc/compress.cpp" "src/hdc/CMakeFiles/edgehd_hdc.dir/compress.cpp.o" "gcc" "src/hdc/CMakeFiles/edgehd_hdc.dir/compress.cpp.o.d"
  "/root/repo/src/hdc/encoder.cpp" "src/hdc/CMakeFiles/edgehd_hdc.dir/encoder.cpp.o" "gcc" "src/hdc/CMakeFiles/edgehd_hdc.dir/encoder.cpp.o.d"
  "/root/repo/src/hdc/hypervector.cpp" "src/hdc/CMakeFiles/edgehd_hdc.dir/hypervector.cpp.o" "gcc" "src/hdc/CMakeFiles/edgehd_hdc.dir/hypervector.cpp.o.d"
  "/root/repo/src/hdc/serialize.cpp" "src/hdc/CMakeFiles/edgehd_hdc.dir/serialize.cpp.o" "gcc" "src/hdc/CMakeFiles/edgehd_hdc.dir/serialize.cpp.o.d"
  "/root/repo/src/hdc/spatial_encoder.cpp" "src/hdc/CMakeFiles/edgehd_hdc.dir/spatial_encoder.cpp.o" "gcc" "src/hdc/CMakeFiles/edgehd_hdc.dir/spatial_encoder.cpp.o.d"
  "/root/repo/src/hdc/wire.cpp" "src/hdc/CMakeFiles/edgehd_hdc.dir/wire.cpp.o" "gcc" "src/hdc/CMakeFiles/edgehd_hdc.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
