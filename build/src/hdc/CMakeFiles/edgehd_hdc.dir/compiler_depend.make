# Empty compiler generated dependencies file for edgehd_hdc.
# This may be replaced when dependencies are built.
