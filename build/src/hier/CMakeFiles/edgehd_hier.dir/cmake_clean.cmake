file(REMOVE_RECURSE
  "CMakeFiles/edgehd_hier.dir/dim_allocation.cpp.o"
  "CMakeFiles/edgehd_hier.dir/dim_allocation.cpp.o.d"
  "CMakeFiles/edgehd_hier.dir/hier_encoder.cpp.o"
  "CMakeFiles/edgehd_hier.dir/hier_encoder.cpp.o.d"
  "libedgehd_hier.a"
  "libedgehd_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgehd_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
