# Empty compiler generated dependencies file for edgehd_hier.
# This may be replaced when dependencies are built.
