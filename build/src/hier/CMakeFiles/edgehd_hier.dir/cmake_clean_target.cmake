file(REMOVE_RECURSE
  "libedgehd_hier.a"
)
