
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hier/dim_allocation.cpp" "src/hier/CMakeFiles/edgehd_hier.dir/dim_allocation.cpp.o" "gcc" "src/hier/CMakeFiles/edgehd_hier.dir/dim_allocation.cpp.o.d"
  "/root/repo/src/hier/hier_encoder.cpp" "src/hier/CMakeFiles/edgehd_hier.dir/hier_encoder.cpp.o" "gcc" "src/hier/CMakeFiles/edgehd_hier.dir/hier_encoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdc/CMakeFiles/edgehd_hdc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/edgehd_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
