
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/power_grid.cpp" "examples/CMakeFiles/power_grid.dir/power_grid.cpp.o" "gcc" "examples/CMakeFiles/power_grid.dir/power_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/edgehd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/edgehd_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/edgehd_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/edgehd_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/edgehd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/edgehd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/hdc/CMakeFiles/edgehd_hdc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
