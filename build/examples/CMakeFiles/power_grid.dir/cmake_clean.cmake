file(REMOVE_RECURSE
  "CMakeFiles/power_grid.dir/power_grid.cpp.o"
  "CMakeFiles/power_grid.dir/power_grid.cpp.o.d"
  "power_grid"
  "power_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
