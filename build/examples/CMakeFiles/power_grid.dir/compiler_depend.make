# Empty compiler generated dependencies file for power_grid.
# This may be replaced when dependencies are built.
