file(REMOVE_RECURSE
  "CMakeFiles/activity_recognition.dir/activity_recognition.cpp.o"
  "CMakeFiles/activity_recognition.dir/activity_recognition.cpp.o.d"
  "activity_recognition"
  "activity_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
