# Empty dependencies file for activity_recognition.
# This may be replaced when dependencies are built.
