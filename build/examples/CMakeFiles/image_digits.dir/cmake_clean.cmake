file(REMOVE_RECURSE
  "CMakeFiles/image_digits.dir/image_digits.cpp.o"
  "CMakeFiles/image_digits.dir/image_digits.cpp.o.d"
  "image_digits"
  "image_digits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_digits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
