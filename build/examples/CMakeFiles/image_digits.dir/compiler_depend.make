# Empty compiler generated dependencies file for image_digits.
# This may be replaced when dependencies are built.
