file(REMOVE_RECURSE
  "CMakeFiles/smart_home.dir/smart_home.cpp.o"
  "CMakeFiles/smart_home.dir/smart_home.cpp.o.d"
  "smart_home"
  "smart_home.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_home.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
