# Empty compiler generated dependencies file for smart_home.
# This may be replaced when dependencies are built.
