file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_batch_compress.dir/bench_ablation_batch_compress.cpp.o"
  "CMakeFiles/bench_ablation_batch_compress.dir/bench_ablation_batch_compress.cpp.o.d"
  "bench_ablation_batch_compress"
  "bench_ablation_batch_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_batch_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
