# Empty dependencies file for bench_ablation_batch_compress.
# This may be replaced when dependencies are built.
