file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_hierarchy.dir/bench_table2_hierarchy.cpp.o"
  "CMakeFiles/bench_table2_hierarchy.dir/bench_table2_hierarchy.cpp.o.d"
  "bench_table2_hierarchy"
  "bench_table2_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
