# Empty dependencies file for bench_fig10_efficiency.
# This may be replaced when dependencies are built.
