file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_robustness.dir/bench_fig12_robustness.cpp.o"
  "CMakeFiles/bench_fig12_robustness.dir/bench_fig12_robustness.cpp.o.d"
  "bench_fig12_robustness"
  "bench_fig12_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
