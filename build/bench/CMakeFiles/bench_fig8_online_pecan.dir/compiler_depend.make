# Empty compiler generated dependencies file for bench_fig8_online_pecan.
# This may be replaced when dependencies are built.
