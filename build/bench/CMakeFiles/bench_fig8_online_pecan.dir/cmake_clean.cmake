file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_online_pecan.dir/bench_fig8_online_pecan.cpp.o"
  "CMakeFiles/bench_fig8_online_pecan.dir/bench_fig8_online_pecan.cpp.o.d"
  "bench_fig8_online_pecan"
  "bench_fig8_online_pecan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_online_pecan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
