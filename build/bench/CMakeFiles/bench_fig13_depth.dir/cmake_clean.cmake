file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_depth.dir/bench_fig13_depth.cpp.o"
  "CMakeFiles/bench_fig13_depth.dir/bench_fig13_depth.cpp.o.d"
  "bench_fig13_depth"
  "bench_fig13_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
