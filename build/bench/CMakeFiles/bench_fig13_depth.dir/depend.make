# Empty dependencies file for bench_fig13_depth.
# This may be replaced when dependencies are built.
