# Empty dependencies file for bench_fig7_accuracy.
# This may be replaced when dependencies are built.
