file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_online_steps.dir/bench_fig9_online_steps.cpp.o"
  "CMakeFiles/bench_fig9_online_steps.dir/bench_fig9_online_steps.cpp.o.d"
  "bench_fig9_online_steps"
  "bench_fig9_online_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_online_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
