# Empty compiler generated dependencies file for bench_fig9_online_steps.
# This may be replaced when dependencies are built.
