// Failure detection, churn membership and query failover (DESIGN.md §11):
// the heartbeat/phi-accrual detector (src/net/detector.*), the rejoin
// session (proto::run_rejoin) and the serving plane's detector-mode failover.
// Every assertion here is about *earned* knowledge: the FaultPlan stays the
// simulated physical world, and the protocols act only on the SuspicionView
// the detector builds from probe traffic.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "net/detector.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"

namespace {

using namespace edgehd;
using net::DetectorConfig;
using net::FailureDetector;
using net::FaultPlan;
using net::kForever;
using net::kMillisecond;
using net::kSecond;
using net::NodeId;
using net::SimTime;
using net::SuspicionEvent;

data::Dataset chaos_dataset(std::size_t train = 400, std::size_t test = 100) {
  auto ds = data::make_synthetic("chaos", 40, 3, {10, 10, 10, 10}, train,
                                 test, 77, 3.6F, 0.5F, 0.5F);
  data::zscore_normalize(ds);
  return ds;
}

core::SystemConfig chaos_cfg() {
  core::SystemConfig cfg;
  cfg.total_dim = 1000;
  cfg.batch_size = 4;
  cfg.detector.enabled = true;
  return cfg;
}

/// Comparable projection of a SuspicionEvent (the struct carries no ==).
std::tuple<SimTime, NodeId, NodeId, bool, std::uint64_t> key(
    const SuspicionEvent& e) {
  return {e.at, e.observer, e.target, e.suspected, e.incarnation};
}

// ---------------------------------------------------------------- detector

TEST(Detector, ValidatesConfig) {
  const auto topo = net::Topology::paper_tree(4);
  const FaultPlan plan;
  DetectorConfig cfg;
  cfg.heartbeat_period = 0;
  EXPECT_THROW(FailureDetector(topo, plan, cfg), std::invalid_argument);
  cfg = DetectorConfig{};
  cfg.phi_threshold = 0.5;
  EXPECT_THROW(FailureDetector(topo, plan, cfg), std::invalid_argument);
  cfg = DetectorConfig{};
  cfg.interval_ewma = 0.0;
  EXPECT_THROW(FailureDetector(topo, plan, cfg), std::invalid_argument);
  cfg.interval_ewma = 1.5;
  EXPECT_THROW(FailureDetector(topo, plan, cfg), std::invalid_argument);
  cfg = DetectorConfig{};
  cfg.warmup = -1;
  EXPECT_THROW(FailureDetector(topo, plan, cfg), std::invalid_argument);
}

TEST(Detector, CrashIsSuspectedWithinBoundedLatency) {
  const auto topo = net::Topology::paper_tree(4);
  const NodeId gw = topo.parent(topo.leaves().front());
  FaultPlan plan(5);
  const SimTime onset = 100 * kMillisecond;
  plan.crash(gw, onset, kForever);

  FailureDetector det(topo, plan, DetectorConfig{});
  det.advance(1 * kSecond);

  EXPECT_FALSE(det.view().node_up(gw));
  // Every neighbour of the dead gateway formed its suspicion within a few
  // heartbeat periods of the crash — never before it.
  SimTime first = -1;
  for (const SuspicionEvent& e : det.events()) {
    if (e.target == gw && e.suspected) {
      first = e.at;
      break;
    }
  }
  ASSERT_GE(first, onset);
  EXPECT_LE(first, onset + 5 * det.config().heartbeat_period);
  // A loss-free plan never manufactures evidence against a live node.
  EXPECT_EQ(det.false_suspicions(), 0u);
  EXPECT_GT(det.suspicions(), 0u);
  EXPECT_GT(det.probes_sent(), 0u);
  EXPECT_GT(det.probe_bytes(), 0u);
  EXPECT_GT(det.probes_delivered(), 0u);
}

TEST(Detector, TimelineIsAPureFunctionOfPlanAndConfig) {
  const auto topo = net::Topology::paper_tree(4);
  FaultPlan plan(9);
  const NodeId gw = topo.parent(topo.leaves().front());
  plan.crash(gw, 60 * kMillisecond, 500 * kMillisecond);
  for (const NodeId leaf : topo.leaves()) plan.loss(leaf, 0.3);

  FailureDetector one_shot(topo, plan, DetectorConfig{});
  one_shot.advance(2 * kSecond);
  FailureDetector stepped(topo, plan, DetectorConfig{});
  for (SimTime t = 0; t <= 2 * kSecond; t += 7 * kMillisecond) {
    stepped.advance(t);
  }
  stepped.advance(2 * kSecond);

  ASSERT_EQ(one_shot.events().size(), stepped.events().size());
  for (std::size_t i = 0; i < one_shot.events().size(); ++i) {
    EXPECT_EQ(key(one_shot.events()[i]), key(stepped.events()[i])) << i;
  }
  EXPECT_EQ(one_shot.probes_sent(), stepped.probes_sent());
  EXPECT_EQ(one_shot.probes_dropped(), stepped.probes_dropped());
  EXPECT_EQ(one_shot.suspicions(), stepped.suspicions());
  EXPECT_EQ(one_shot.refutations(), stepped.refutations());
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    EXPECT_EQ(one_shot.view().node_up(id), stepped.view().node_up(id));
    EXPECT_EQ(one_shot.view().link_up(id), stepped.view().link_up(id));
    EXPECT_DOUBLE_EQ(one_shot.view().link_loss(id),
                     stepped.view().link_loss(id));
  }
}

TEST(Detector, OutageReadsAsLinkFailureNotNodeDeath) {
  const auto topo = net::Topology::paper_tree(4);
  const NodeId gw = topo.parent(topo.leaves().front());
  FaultPlan plan;
  plan.outage(gw, 100 * kMillisecond, kForever);  // uplink down, gw alive

  FailureDetector det(topo, plan, DetectorConfig{});
  det.advance(1 * kSecond);

  // The silent uplink is suspected, but the gateway still answers its
  // children's probes — the evidence only supports a link failure.
  EXPECT_FALSE(det.view().link_up(gw));
  EXPECT_TRUE(det.view().node_up(gw));
  EXPECT_FALSE(det.view().reachable_up(topo, gw, topo.root()));
  EXPECT_FALSE(det.view().all_healthy());
}

TEST(Detector, LossyLinksCauseFalseSuspicionsAndRefutations) {
  const auto topo = net::Topology::paper_tree(4);
  FaultPlan plan(21);
  for (const NodeId leaf : topo.leaves()) plan.loss(leaf, 0.5);

  FailureDetector det(topo, plan, DetectorConfig{});
  det.advance(10 * kSecond);

  EXPECT_GT(det.probes_dropped(), 0u);
  // Runs of Bernoulli drops look exactly like silence: the detector must
  // suspect (that is the latency/accuracy trade-off), then take it back on
  // the next delivered probe.
  EXPECT_GT(det.false_suspicions(), 0u);
  EXPECT_GT(det.refutations(), 0u);
  EXPECT_EQ(det.suspicions(), det.false_suspicions());  // nobody actually died
  // The observed drop fraction feeds the per-link loss estimate.
  const NodeId leaf = topo.leaves().front();
  EXPECT_GT(det.view().link_loss(leaf), 0.25);
  EXPECT_LT(det.view().link_loss(leaf), 0.75);
  EXPECT_FALSE(det.view().all_healthy());
}

TEST(Detector, QueryEvidenceIsRefutedByDeliveredProbes) {
  const auto topo = net::Topology::paper_tree(4);
  const FaultPlan plan;  // fully healthy world
  const NodeId gw = topo.parent(topo.leaves().front());

  FailureDetector det(topo, plan, DetectorConfig{});
  det.advance(200 * kMillisecond);
  ASSERT_TRUE(det.view().node_up(gw));

  // A query-path caller reports the gateway dead: believed immediately.
  det.report_failure(topo.root(), gw, det.now());
  EXPECT_FALSE(det.view().node_up(gw));
  // The report is idempotent evidence, not a counter to spam.
  const std::uint64_t suspicions = det.suspicions();
  det.report_failure(topo.root(), gw, det.now());
  EXPECT_EQ(det.suspicions(), suspicions);

  // The next heartbeat round delivers a probe from the (alive) gateway and
  // the belief is withdrawn.
  det.advance(det.now() + 2 * det.config().heartbeat_period);
  EXPECT_TRUE(det.view().node_up(gw));
  EXPECT_GT(det.refutations(), 0u);
}

// ---------------------------------------------------------------- system

TEST(ChaosSystem, AllHealthyDetectorRunMatchesOracleBitExact) {
  const auto ds = chaos_dataset();
  auto oracle_cfg = chaos_cfg();
  oracle_cfg.detector.enabled = false;
  core::EdgeHdSystem oracle(ds, net::Topology::paper_tree(4), oracle_cfg);
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), chaos_cfg());

  // Non-trivial plan that is benign for the whole exercised horizon.
  FaultPlan plan(3);
  plan.crash(0, 365ll * 24 * 3600 * net::kSecond, kForever).loss(1, 0.0);
  sys.set_fault_plan(plan, 0);
  ASSERT_NE(sys.detector(), nullptr);
  EXPECT_FALSE(sys.degraded_mode());

  const auto comm_a = oracle.train();
  const auto comm_b = sys.train();
  // Probe traffic is charged to the detector plane only — the per-phase
  // protocol totals are the golden bytes, to the byte.
  EXPECT_EQ(comm_a.bytes, comm_b.bytes);
  EXPECT_EQ(comm_a.messages, comm_b.messages);
  EXPECT_GT(sys.detector()->probes_sent(), 0u);
  EXPECT_EQ(sys.detector()->suspicions(), 0u);

  const auto root = oracle.topology().root();
  for (std::size_t c = 0; c < ds.num_classes; ++c) {
    EXPECT_EQ(oracle.classifier_at(root).class_accumulator(c),
              sys.classifier_at(root).class_accumulator(c));
  }
  const auto start = oracle.topology().leaves().front();
  for (std::size_t s = 0; s < 20; ++s) {
    const auto ra = oracle.infer_routed(ds.test_x[s], start);
    const auto rb = sys.infer_routed(ds.test_x[s], start);
    EXPECT_EQ(ra.label, rb.label);
    EXPECT_EQ(ra.node, rb.node);
    EXPECT_EQ(ra.bytes, rb.bytes);
    EXPECT_FALSE(rb.degraded);
  }
}

TEST(ChaosSystem, BeliefsOverrideStaleOracleMask) {
  const auto ds = chaos_dataset(200, 40);
  auto cfg = chaos_cfg();
  cfg.confidence_threshold = 1.1;  // always wants the root's verdict
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  sys.train();
  const auto& topo = sys.topology();
  const NodeId leaf = topo.leaves().front();
  const NodeId gw = topo.parent(leaf);

  // The mask snapshot (taken at t=50ms, inside the crash window) swears the
  // gateway is dead; the detector, advanced past the window's end, has seen
  // it come back. Routing follows the earned belief and escalates straight
  // through — under the retired oracle this query was stranded at the leaf.
  FaultPlan plan(13);
  plan.crash(gw, 0, 100 * kMillisecond);
  sys.set_fault_plan(plan, 50 * kMillisecond);
  ASSERT_FALSE(sys.health().node_up(gw));
  ASSERT_TRUE(sys.detector()->view().node_up(gw));
  EXPECT_GE(sys.detector()->rejoins(), 1u);

  const auto r = sys.infer_routed(ds.test_x[0], leaf);
  ASSERT_TRUE(r.served());
  EXPECT_EQ(r.node, topo.root());
}

TEST(ChaosSystem, RejoinConvergesToNeverFailedModel) {
  const auto ds = chaos_dataset();
  const auto topo = net::Topology::paper_tree(4);

  core::EdgeHdSystem ref(ds, topo, chaos_cfg());
  ref.train_initial();

  core::EdgeHdSystem sys(ds, topo, chaos_cfg());
  const NodeId gw = topo.parent(topo.leaves().front());
  FaultPlan plan(17);
  plan.crash(gw, 0, 1 * kSecond);  // dead for the whole merge schedule
  sys.set_fault_plan(plan, 0);
  ASSERT_FALSE(sys.detector()->view().node_up(gw));
  sys.train_initial();
  // The dead gateway's subtree could not contribute.
  EXPECT_FALSE(sys.stragglers().empty());

  // The gateway comes back; the detector observes the revival (a fresh
  // incarnation) and withdraws its suspicion.
  sys.advance_detector(2 * kSecond);
  ASSERT_TRUE(sys.detector()->view().node_up(gw));
  EXPECT_GE(sys.detector()->rejoins(), 1u);

  // The rejoin session rebuilds the gateway from its children's checkpoints
  // and lifts its state hop by hop to the root. Linearity makes this exact:
  // every classifier in the hierarchy ends bit-identical to the run where
  // the gateway never failed.
  const auto comm = sys.rejoin_node(gw);
  EXPECT_GT(comm.bytes, 0u);
  EXPECT_GT(comm.messages, 0u);
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    if (!ref.has_classifier(id)) continue;
    for (std::size_t c = 0; c < ds.num_classes; ++c) {
      EXPECT_EQ(ref.classifier_at(id).class_accumulator(c),
                sys.classifier_at(id).class_accumulator(c))
          << "node " << id << " class " << c;
    }
  }
  EXPECT_TRUE(sys.stragglers().empty());
}

TEST(ChaosSystem, RejoinRequiresTrainingAndRejectsTheRoot) {
  const auto ds = chaos_dataset(200, 40);
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), chaos_cfg());
  EXPECT_THROW(sys.rejoin_node(0, 1), std::logic_error);
  sys.train_initial();
  EXPECT_THROW(sys.rejoin_node(sys.topology().root(), 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------- serving

TEST(ChaosServe, FailoverIsDeterministicAcrossWorkerCounts) {
  const auto ds = chaos_dataset();
  const auto topo = net::Topology::paper_tree(4);
  const NodeId gw = topo.parent(topo.leaves().front());

  FaultPlan plan(31);
  plan.crash(gw, 30 * kMillisecond, 90 * kMillisecond);

  serve::ServeConfig scfg;
  scfg.failover_retries = 20;  // generous budget so reroutes happen
  scfg.failover_backoff = 4 * kMillisecond;

  std::vector<serve::ServeReport> reports;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    auto cfg = chaos_cfg();
    cfg.confidence_threshold = 1.1;  // every query escalates
    cfg.num_threads = workers;
    core::EdgeHdSystem sys(ds, topo, cfg);
    sys.train();
    auto engine = sys.serve_start(scfg);
    engine->set_fault_plan(plan);
    reports.push_back(engine->run(serve::LoadSpec::poisson(
        topo.leaves(), /*rate_hz_per_origin=*/1000.0, /*num_queries=*/400,
        /*seed=*/9)));
  }

  const serve::ServeReport& base = reports.front();
  // The crash window sat in the middle of the arrival span, so the failover
  // machinery demonstrably ran: bounded retries, and queries that outlived
  // the window rerouted to the revived ancestor.
  EXPECT_GT(base.failover_retries, 0u);
  EXPECT_GT(base.failover_reroutes, 0u);
  EXPECT_EQ(base.submitted, 400u);
  for (const serve::ServeReport& r : reports) {
    EXPECT_EQ(r.reply_hash, base.reply_hash);
    EXPECT_EQ(r.served, base.served);
    EXPECT_EQ(r.unserved, base.unserved);
    EXPECT_EQ(r.served_degraded, base.served_degraded);
    EXPECT_EQ(r.escalation_hops, base.escalation_hops);
    EXPECT_EQ(r.failover_retries, base.failover_retries);
    EXPECT_EQ(r.failover_reroutes, base.failover_reroutes);
    EXPECT_EQ(r.failover_exhausted, base.failover_exhausted);
    EXPECT_EQ(r.makespan, base.makespan);
    EXPECT_EQ(r.slo_violations, base.slo_violations);
  }
}

TEST(ChaosServe, OracleModeReportsNoFailovers) {
  const auto ds = chaos_dataset(200, 40);
  const auto topo = net::Topology::paper_tree(4);
  auto cfg = chaos_cfg();
  cfg.detector.enabled = false;
  cfg.confidence_threshold = 1.1;
  core::EdgeHdSystem sys(ds, topo, cfg);
  sys.train();

  FaultPlan plan(31);
  plan.crash(topo.parent(topo.leaves().front()), 30 * kMillisecond,
             90 * kMillisecond);
  auto engine = sys.serve_start(serve::ServeConfig{});
  engine->set_fault_plan(plan);
  const auto report = engine->run(
      serve::LoadSpec::poisson(topo.leaves(), 1000.0, 200, 9));
  // Without a detector the failover path must never engage: the oracle
  // semantics (and their reports) stay exactly as before.
  EXPECT_EQ(report.failover_retries, 0u);
  EXPECT_EQ(report.failover_reroutes, 0u);
  EXPECT_EQ(report.failover_exhausted, 0u);
}

}  // namespace
