// Unit + property tests for the fractional-power spatial encoder
// (src/hdc/spatial_encoder.*, paper Section III-A opening).
#include <gtest/gtest.h>

#include <cmath>

#include "hdc/spatial_encoder.hpp"

namespace {

using namespace edgehd::hdc;

TEST(SpatialEncoder, RejectsInvalidArguments) {
  EXPECT_THROW(SpatialEncoder(0, 4, 64, 1), std::invalid_argument);
  EXPECT_THROW(SpatialEncoder(4, 4, 0, 1), std::invalid_argument);
  EXPECT_THROW(SpatialEncoder(4, 4, 64, 1, 0.0F), std::invalid_argument);
}

TEST(SpatialEncoder, SelfSimilarityIsOne) {
  SpatialEncoder enc(8, 8, 2048, 5, 2.0F);
  const auto p = enc.position(3.0F, 4.0F);
  EXPECT_NEAR(SpatialEncoder::similarity(p, p), 1.0, 1e-5);
}

class SpatialKernel : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpatialKernel, PositionSimilarityApproximatesGaussianKernel) {
  const std::size_t dim = GetParam();
  const float w = 2.0F;
  SpatialEncoder enc(16, 16, dim, 7, w);
  const auto base = enc.position(5.0F, 5.0F);
  // delta(B^X1, B^X2) -> k((X1-X2)/w) as D -> infinity (paper Section III-A).
  for (const float dx : {0.5F, 1.0F, 2.0F, 4.0F}) {
    const auto other = enc.position(5.0F + dx, 5.0F);
    const double expected =
        std::exp(-0.5 * static_cast<double>(dx) * dx / (w * w));
    EXPECT_NEAR(SpatialEncoder::similarity(base, other), expected,
                5.0 / std::sqrt(static_cast<double>(dim)));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SpatialKernel,
                         ::testing::Values(1024, 4096, 16384));

TEST(SpatialEncoder, SimilarityDecaysWithDistance) {
  SpatialEncoder enc(16, 16, 4096, 9, 2.0F);
  const auto base = enc.position(0.0F, 0.0F);
  double prev = 1.0;
  for (const float r : {1.0F, 2.0F, 4.0F}) {
    const double s = SpatialEncoder::similarity(base, enc.position(r, 0.0F));
    EXPECT_LT(s, prev + 0.05);
    prev = s;
  }
}

TEST(SpatialEncoder, BindingIsSeparableAcrossAxes) {
  // B_x^X * B_y^Y at (x, y) equals elementwise product of the axis parts:
  // position(x, y) == position(x, 0) * position(0, y).
  SpatialEncoder enc(8, 8, 512, 11, 1.5F);
  const auto joint = enc.position(2.0F, 3.0F);
  const auto px = enc.position(2.0F, 0.0F);
  const auto py = enc.position(0.0F, 3.0F);
  for (std::size_t i = 0; i < joint.size(); ++i) {
    const auto prod = px[i] * py[i];
    EXPECT_NEAR(joint[i].real(), prod.real(), 1e-4);
    EXPECT_NEAR(joint[i].imag(), prod.imag(), 1e-4);
  }
}

TEST(SpatialEncoder, EncodeBundlesPixelContributions) {
  SpatialEncoder enc(4, 4, 2048, 13, 1.0F);
  std::vector<float> img(16, 0.0F);
  img[5] = 1.0F;  // single bright pixel at (1, 1)
  const auto hv = enc.encode(img);
  // The encoding of a single pixel is that pixel's position hypervector.
  const auto pos = enc.position(1.0F, 1.0F);
  EXPECT_NEAR(SpatialEncoder::similarity(hv, pos), 1.0, 1e-4);
}

TEST(SpatialEncoder, SimilarImagesEncodeSimilarly) {
  SpatialEncoder enc(8, 8, 4096, 15, 2.0F);
  std::vector<float> a(64, 0.0F);
  std::vector<float> b(64, 0.0F);
  std::vector<float> c(64, 0.0F);
  a[9] = a[10] = 1.0F;   // blob at (1,1)-(2,1)
  b[10] = b[11] = 1.0F;  // shifted one pixel
  c[54] = c[55] = 1.0F;  // far corner
  const auto ha = enc.encode(a);
  EXPECT_GT(SpatialEncoder::similarity(ha, enc.encode(b)),
            SpatialEncoder::similarity(ha, enc.encode(c)));
}

TEST(SpatialEncoder, BinarizeRealProducesBipolar) {
  SpatialEncoder enc(4, 4, 256, 17, 1.0F);
  std::vector<float> img(16, 0.5F);
  const auto bin = SpatialEncoder::binarize_real(enc.encode(img));
  EXPECT_EQ(bin.size(), 256u);
  for (const auto v : bin) EXPECT_TRUE(v == 1 || v == -1);
}

}  // namespace
