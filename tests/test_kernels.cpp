// Bit-identity suite for the compute-kernel layer (src/hdc/kernels).
//
// The dispatch contract says every backend — scalar reference, AVX2, NEON —
// produces bit-identical results, floats included, and that the packed
// representations agree exactly with the int8/int32 scalar algebra. These
// tests enforce both halves:
//   * packed forms vs the unpacked reference (dot, planes, wire bytes),
//     across awkward dimensions (empty, size 1, word boundaries, primes);
//   * scalar_table() vs simd_table() on every kernel, bitwise;
//   * the classifier's lazy norm/plane cache vs direct cosine after every
//     mutating entry point;
//   * end-to-end train → retrain → predict equality between
//     force_backend(kScalar) and force_backend(kSimd) across 1/2/8 workers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/kernels/kernels.hpp"
#include "hdc/kernels/packed.hpp"
#include "hdc/random.hpp"
#include "hdc/wire.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace edgehd::hdc;
namespace kernels = edgehd::hdc::kernels;

/// Restores the auto-dispatched backend when a test that forces one exits.
struct BackendGuard {
  ~BackendGuard() { kernels::force_backend(kernels::Backend::kSimd); }
};

/// memcmp wrapper that tolerates the n == 0 / nullptr case of empty vectors.
bool bits_equal_f32(const float* a, const float* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n * sizeof(float)) == 0;
}

/// Tri-state query with zeros (the degraded-operation "silence" convention).
std::vector<std::int8_t> tri_state_vector(Rng& rng, std::size_t n) {
  std::vector<std::int8_t> v(n);
  for (auto& x : v) {
    const auto r = rng.index(4);
    x = r == 0 ? std::int8_t{0} : (r % 2 != 0 ? std::int8_t{1} : std::int8_t{-1});
  }
  return v;
}

const std::vector<std::size_t> kDims = {0,   1,   2,   63,   64,  65,
                                        100, 127, 128, 1000, 4096};

class KernelDims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelDims, PackUnpackRoundtrip) {
  Rng rng(11);
  const auto hv = rng.sign_vector(GetParam());
  const auto packed = kernels::pack_hv(hv);
  EXPECT_EQ(packed.dim, GetParam());
  EXPECT_EQ(packed.words.size(), kernels::packed_words(GetParam()));
  EXPECT_EQ(kernels::unpack_hv(packed), hv);
}

TEST_P(KernelDims, PackedBytesMatchWireCodec) {
  Rng rng(12);
  const auto hv = rng.sign_vector(GetParam());
  const auto wire = pack_bipolar(hv);
  const auto packed = kernels::pack_hv(hv);
  std::vector<std::uint8_t> bytes(wire_bytes_bipolar(GetParam()), 0);
  kernels::packed_to_bytes(packed, bytes.data());
  EXPECT_EQ(bytes, wire);
  const auto back = kernels::packed_from_bytes(bytes, GetParam());
  EXPECT_EQ(back.words, packed.words);
}

TEST_P(KernelDims, PackedDotMatchesScalarDot) {
  Rng rng(13);
  const auto a = rng.sign_vector(GetParam());
  const auto b = rng.sign_vector(GetParam());
  EXPECT_EQ(kernels::packed_dot(kernels::pack_hv(a), kernels::pack_hv(b)),
            dot(std::span<const std::int8_t>(a), std::span<const std::int8_t>(b)));
}

TEST_P(KernelDims, PackedHammingMatchesScalarHamming) {
  Rng rng(14);
  const auto a = rng.sign_vector(GetParam());
  const auto b = rng.sign_vector(GetParam());
  EXPECT_DOUBLE_EQ(kernels::packed_hamming(kernels::pack_hv(a), kernels::pack_hv(b)),
                   hamming(a, b));
}

TEST_P(KernelDims, PlanesDotMatchesInt64Reference) {
  Rng rng(15);
  const auto q = tri_state_vector(rng, GetParam());
  AccumHV acc(GetParam());
  for (auto& v : acc) {
    v = static_cast<std::int32_t>(rng.index(2001)) - 1000;
  }
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    expected += static_cast<std::int64_t>(q[i]) * acc[i];
  }
  EXPECT_EQ(kernels::planes_dot(kernels::pack_query(q), kernels::build_planes(acc)),
            expected);
}

INSTANTIATE_TEST_SUITE_P(Dims, KernelDims, ::testing::ValuesIn(kDims));

TEST(Planes, ExtremeMagnitudesUseAllThirtyThreePlanes) {
  // INT32_MIN needs 33-bit two's complement under the wire width rule
  // (sign bit + 32 magnitude bits); the high planes must read the
  // sign-extended bits, not shift past the 32-bit value.
  AccumHV acc = {std::numeric_limits<std::int32_t>::min(),
                 std::numeric_limits<std::int32_t>::max(), -1, 0, 1};
  std::vector<std::int8_t> q = {1, 1, -1, -1, 1};
  const auto planes = kernels::build_planes(acc);
  EXPECT_EQ(planes.nplanes, 33U);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    expected += static_cast<std::int64_t>(q[i]) * acc[i];
  }
  EXPECT_EQ(kernels::planes_dot(kernels::pack_query(q), planes), expected);
}

TEST(Planes, ZeroAccumulatorDotsToZero) {
  AccumHV acc(100, 0);
  Rng rng(16);
  const auto q = rng.sign_vector(100);
  EXPECT_EQ(kernels::planes_dot(kernels::pack_query(q), kernels::build_planes(acc)),
            0);
}

// ---- scalar vs SIMD table, kernel by kernel --------------------------------

class BackendEquality : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override {
    if (kernels::simd_table() == nullptr) {
      GTEST_SKIP() << "no SIMD backend in this binary/CPU";
    }
  }
};

TEST_P(BackendEquality, BitKernelsAgree) {
  const auto& s = kernels::scalar_table();
  const auto& v = *kernels::simd_table();
  const std::size_t dim = GetParam();
  const std::size_t words = kernels::packed_words(dim);
  Rng rng(21);
  std::vector<std::uint64_t> a(words), b(words);
  for (auto& w : a) w = rng.engine()();
  for (auto& w : b) w = rng.engine()();
  EXPECT_EQ(s.popcount_words(a.data(), words), v.popcount_words(a.data(), words));
  EXPECT_EQ(s.xor_popcount(a.data(), b.data(), words),
            v.xor_popcount(a.data(), b.data(), words));
}

TEST_P(BackendEquality, PackSignsAgree) {
  const auto& s = kernels::scalar_table();
  const auto& v = *kernels::simd_table();
  const std::size_t dim = GetParam();
  if (dim == 0) return;
  const std::size_t words = kernels::packed_words(dim);
  Rng rng(22);
  const auto q = tri_state_vector(rng, dim);
  std::vector<std::uint64_t> sp(words), sn(words), vp(words), vn(words);
  s.pack_signs(q.data(), dim, sp.data(), sn.data());
  v.pack_signs(q.data(), dim, vp.data(), vn.data());
  EXPECT_EQ(sp, vp);
  EXPECT_EQ(sn, vn);
  // The neg-mask-less variant too (pack_hv's path).
  s.pack_signs(q.data(), dim, sp.data(), nullptr);
  v.pack_signs(q.data(), dim, vp.data(), nullptr);
  EXPECT_EQ(sp, vp);
}

TEST_P(BackendEquality, PlanesDotAgrees) {
  const auto& s = kernels::scalar_table();
  const auto& v = *kernels::simd_table();
  const std::size_t dim = GetParam();
  if (dim == 0) return;
  Rng rng(23);
  const auto q = kernels::pack_query(tri_state_vector(rng, dim));
  AccumHV acc(dim);
  for (auto& x : acc) x = static_cast<std::int32_t>(rng.index(513)) - 256;
  const auto planes = kernels::build_planes(acc);
  EXPECT_EQ(s.planes_dot(q.pos.data(), q.neg.data(), planes.planes.data(),
                         kernels::packed_words(dim), planes.nplanes),
            v.planes_dot(q.pos.data(), q.neg.data(), planes.planes.data(),
                         kernels::packed_words(dim), planes.nplanes));
}

TEST_P(BackendEquality, GemvIsBitIdenticalToScalar) {
  const auto& s = kernels::scalar_table();
  const auto& v = *kernels::simd_table();
  const std::size_t rows = GetParam();
  const std::size_t cols = 37;
  Rng rng(24);
  std::vector<float> wm(rows * cols);
  for (auto& x : wm) x = rng.gaussian();
  const auto blocked = kernels::BlockedMatrixF32::from_row_major(wm.data(), rows, cols);
  std::vector<float> x(cols);
  for (auto& f : x) f = rng.gaussian();
  std::vector<float> so(rows, 0.0F), vo(rows, 0.0F);
  s.gemv_f32(blocked.data(), rows, cols, x.data(), so.data());
  v.gemv_f32(blocked.data(), rows, cols, x.data(), vo.data());
  // Bitwise comparison: bit identity, not just numeric closeness.
  EXPECT_TRUE(bits_equal_f32(so.data(), vo.data(), rows));
}

TEST_P(BackendEquality, GemmIsBitIdenticalToScalar) {
  const auto& s = kernels::scalar_table();
  const auto& v = *kernels::simd_table();
  const std::size_t rows = GetParam();
  const std::size_t cols = 19;
  const std::size_t count = 7;  // exercises the 4-sample block + the tail
  Rng rng(25);
  std::vector<float> wm(rows * cols);
  for (auto& x : wm) x = rng.gaussian();
  const auto blocked = kernels::BlockedMatrixF32::from_row_major(wm.data(), rows, cols);
  std::vector<std::vector<float>> xs(count, std::vector<float>(cols));
  for (auto& x : xs) {
    for (auto& f : x) f = rng.gaussian();
  }
  std::vector<std::vector<float>> so(count, std::vector<float>(rows, 0.0F));
  std::vector<std::vector<float>> vo(count, std::vector<float>(rows, 0.0F));
  std::vector<const float*> xp(count);
  std::vector<float*> sp(count), vp(count);
  for (std::size_t i = 0; i < count; ++i) {
    xp[i] = xs[i].data();
    sp[i] = so[i].data();
    vp[i] = vo[i].data();
  }
  s.gemm_f32(blocked.data(), rows, cols, xp.data(), sp.data(), count);
  v.gemm_f32(blocked.data(), rows, cols, xp.data(), vp.data(), count);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_TRUE(bits_equal_f32(so[i].data(), vo[i].data(), rows));
  }
}

TEST_P(BackendEquality, SparseGemvIsBitIdenticalToScalar) {
  const auto& s = kernels::scalar_table();
  const auto& v = *kernels::simd_table();
  const std::size_t rows = GetParam();
  const std::size_t n = 53;
  const std::size_t window = 11;
  Rng rng(26);
  std::vector<float> wm(rows * window);
  for (auto& x : wm) x = rng.gaussian();
  const auto blocked =
      kernels::BlockedMatrixF32::from_row_major(wm.data(), rows, window);
  std::vector<std::uint32_t> starts(rows);
  for (auto& st : starts) st = static_cast<std::uint32_t>(rng.index(n));
  std::vector<float> xx(2 * n);
  for (std::size_t i = 0; i < n; ++i) xx[i] = xx[n + i] = rng.gaussian();
  std::vector<float> so(rows, 0.0F), vo(rows, 0.0F);
  s.sparse_gemv_f32(blocked.data(), starts.data(), rows, window, xx.data(), so.data());
  v.sparse_gemv_f32(blocked.data(), starts.data(), rows, window, xx.data(), vo.data());
  EXPECT_TRUE(bits_equal_f32(so.data(), vo.data(), rows));
}

INSTANTIATE_TEST_SUITE_P(Dims, BackendEquality, ::testing::ValuesIn(kDims));

// ---- GEMV vs the plain row-major reference ---------------------------------

TEST(Gemv, MatchesNaiveRowMajorAccumulationBitwise) {
  const std::size_t rows = 101, cols = 29;
  Rng rng(31);
  std::vector<float> wm(rows * cols);
  for (auto& x : wm) x = rng.gaussian();
  const auto blocked = kernels::BlockedMatrixF32::from_row_major(wm.data(), rows, cols);
  std::vector<float> x(cols);
  for (auto& f : x) f = rng.gaussian();
  std::vector<float> out(rows, 0.0F);
  kernels::scalar_table().gemv_f32(blocked.data(), rows, cols, x.data(), out.data());
  for (std::size_t r = 0; r < rows; ++r) {
    float acc = 0.0F;  // the historical encoder loop: ascending j, fp32
    for (std::size_t j = 0; j < cols; ++j) acc += wm[r * cols + j] * x[j];
    EXPECT_EQ(std::bit_cast<std::uint32_t>(out[r]), std::bit_cast<std::uint32_t>(acc))
        << "row " << r;
  }
}

TEST(Gemv, BlockedLayoutZeroPadsTailRows) {
  const std::size_t rows = 13, cols = 3;  // 13 % 8 != 0
  std::vector<float> wm(rows * cols, 1.0F);
  const auto m = kernels::BlockedMatrixF32::from_row_major(wm.data(), rows, cols);
  EXPECT_EQ(m.rows(), rows);
  EXPECT_EQ(m.cols(), cols);
  // Storage covers two full 8-row blocks; rows 13..15 must be zero.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) EXPECT_EQ(m.at(r, c), 1.0F);
  }
}

// ---- encoder equivalence across backends and worker counts -----------------

TEST(EncoderKernels, DenseAndSparseEncodersAgreeAcrossBackendsAndWorkers) {
  if (kernels::simd_table() == nullptr) {
    GTEST_SKIP() << "no SIMD backend in this binary/CPU";
  }
  BackendGuard guard;
  const std::size_t n = 17, d = 203, samples = 33;
  Rng rng(41);
  std::vector<std::vector<float>> xs(samples, std::vector<float>(n));
  for (auto& x : xs) {
    for (auto& f : x) f = rng.gaussian();
  }
  const RbfEncoder dense(n, d, 5);
  const SparseRbfEncoder sparse(n, d, 6, 0.7F);

  std::vector<std::vector<BipolarHV>> dense_runs, sparse_runs;
  for (const auto backend : {kernels::Backend::kScalar, kernels::Backend::kSimd}) {
    kernels::force_backend(backend);
    for (const std::size_t workers : {1U, 2U, 8U}) {
      edgehd::runtime::ThreadPool pool(workers);
      dense_runs.push_back(dense.encode_batch(xs, pool));
      sparse_runs.push_back(sparse.encode_batch(xs, pool));
    }
    // The serial single-sample path must agree with the batch too.
    std::vector<BipolarHV> serial(samples);
    for (std::size_t i = 0; i < samples; ++i) serial[i] = dense.encode(xs[i]);
    dense_runs.push_back(std::move(serial));
  }
  for (std::size_t i = 1; i < dense_runs.size(); ++i) {
    EXPECT_EQ(dense_runs[i], dense_runs[0]) << "dense run " << i;
  }
  for (std::size_t i = 1; i < sparse_runs.size(); ++i) {
    EXPECT_EQ(sparse_runs[i], sparse_runs[0]) << "sparse run " << i;
  }
}

TEST(EncoderKernels, EncodeRealIsBitIdenticalAcrossBackends) {
  if (kernels::simd_table() == nullptr) {
    GTEST_SKIP() << "no SIMD backend in this binary/CPU";
  }
  BackendGuard guard;
  const std::size_t n = 23, d = 129;
  Rng rng(42);
  std::vector<float> x(n);
  for (auto& f : x) f = rng.gaussian();
  const RbfEncoder enc(n, d, 5, 0.0F, RbfForm::kCos);
  kernels::force_backend(kernels::Backend::kScalar);
  const RealHV scalar_hv = enc.encode_real(x);
  kernels::force_backend(kernels::Backend::kSimd);
  const RealHV simd_hv = enc.encode_real(x);
  ASSERT_EQ(scalar_hv.size(), simd_hv.size());
  EXPECT_TRUE(bits_equal_f32(scalar_hv.data(), simd_hv.data(), d));
}

// ---- classifier cache correctness ------------------------------------------

double direct_cosine(const HDClassifier& clf, std::size_t c,
                     std::span<const std::int8_t> q) {
  return cosine(q, clf.class_accumulator(c));
}

void expect_sims_match_direct(const HDClassifier& clf,
                              std::span<const std::int8_t> q) {
  const auto sims = clf.similarities(q);
  for (std::size_t c = 0; c < clf.num_classes(); ++c) {
    EXPECT_EQ(sims[c], direct_cosine(clf, c, q)) << "class " << c;
  }
}

TEST(ClassifierCache, SimilaritiesTrackEveryMutator) {
  const std::size_t dim = 200, k = 3;
  Rng rng(51);
  HDClassifier clf(k, dim);
  const auto q = rng.sign_vector(dim);

  expect_sims_match_direct(clf, q);  // empty model: all-zero classes

  clf.add_sample(0, rng.sign_vector(dim));
  clf.add_sample(1, rng.sign_vector(dim));
  expect_sims_match_direct(clf, q);

  AccumHV acc(dim);
  for (auto& v : acc) v = static_cast<std::int32_t>(rng.index(21)) - 10;
  clf.add_accumulator(2, acc);
  expect_sims_match_direct(clf, q);

  clf.set_class_accumulator(1, acc);
  expect_sims_match_direct(clf, q);

  clf.feedback_negative(0, q);
  clf.apply_residuals();
  expect_sims_match_direct(clf, q);

  std::vector<AccumHV> ext(k, AccumHV(dim, 0));
  ext[2][7] = 5;
  clf.apply_external_residuals(ext);
  expect_sims_match_direct(clf, q);

  HDClassifier other(k, dim);
  other.add_sample(0, rng.sign_vector(dim));
  clf.merge(other);
  expect_sims_match_direct(clf, q);

  // Retraining mutates through its own path.
  edgehd::runtime::ThreadPool pool(2);
  std::vector<BipolarHV> hvs;
  std::vector<std::size_t> labels;
  for (std::size_t i = 0; i < 12; ++i) {
    hvs.push_back(rng.sign_vector(dim));
    labels.push_back(i % k);
  }
  clf.train_batch(hvs, labels, pool);
  expect_sims_match_direct(clf, q);
  clf.retrain(hvs, labels, pool);
  expect_sims_match_direct(clf, q);
}

TEST(ClassifierCache, TriStateQueriesMatchDirectCosine) {
  // Zeroed components (Figure-12 erasures) must contribute nothing, exactly
  // like the scalar multiply-accumulate they replace.
  const std::size_t dim = 333, k = 4;
  Rng rng(52);
  HDClassifier clf(k, dim);
  for (std::size_t i = 0; i < 20; ++i) {
    clf.add_sample(i % k, rng.sign_vector(dim));
  }
  const auto q = tri_state_vector(rng, dim);
  expect_sims_match_direct(clf, q);
}

// ---- permute ----------------------------------------------------------------

TEST(Permute, MatchesModuloReference) {
  Rng rng(61);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                              std::size_t{100}}) {
    const auto v = rng.sign_vector(n);
    for (const std::size_t shift : {std::size_t{0}, std::size_t{1}, n / 2,
                                    n - 1, n, n + 3}) {
      BipolarHV expected(n);
      for (std::size_t i = 0; i < n; ++i) expected[(i + shift) % n] = v[i];
      EXPECT_EQ(permute(v, shift), expected) << "n=" << n << " shift=" << shift;
    }
  }
  EXPECT_TRUE(permute(std::vector<std::int8_t>{}, 3).empty());
}

// ---- end-to-end: train → predict under both backends ------------------------

struct E2eOutcome {
  std::vector<std::size_t> labels;
  std::vector<double> confidences;
  std::vector<double> sims;
  bool operator==(const E2eOutcome&) const = default;
};

E2eOutcome run_pipeline(std::size_t workers) {
  const std::size_t n = 12, d = 250, k = 3, train_n = 90, test_n = 30;
  Rng data_rng(71);
  std::vector<std::vector<float>> centers(k, std::vector<float>(n));
  for (auto& c : centers) {
    for (auto& f : c) f = 2.0F * data_rng.gaussian();
  }
  auto draw = [&](std::size_t count, std::vector<std::vector<float>>& xs,
                  std::vector<std::size_t>& ys) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t c = i % k;
      std::vector<float> x(n);
      for (std::size_t j = 0; j < n; ++j) {
        x[j] = centers[c][j] + 0.5F * data_rng.gaussian();
      }
      xs.push_back(std::move(x));
      ys.push_back(c);
    }
  };
  std::vector<std::vector<float>> train_x, test_x;
  std::vector<std::size_t> train_y, test_y;
  draw(train_n, train_x, train_y);
  draw(test_n, test_x, test_y);

  edgehd::runtime::ThreadPool pool(workers);
  const SparseRbfEncoder enc(n, d, 9, 0.5F);
  const auto train_hv = enc.encode_batch(train_x, pool);
  const auto test_hv = enc.encode_batch(test_x, pool);
  HDClassifier clf(k, d);
  clf.train_batch(train_hv, train_y, pool);
  clf.retrain(train_hv, train_y, pool);

  E2eOutcome out;
  for (const auto& pred : clf.predict_batch(test_hv, pool)) {
    out.labels.push_back(pred.label);
    out.confidences.push_back(pred.confidence);
    out.sims.insert(out.sims.end(), pred.similarities.begin(),
                    pred.similarities.end());
  }
  return out;
}

TEST(EndToEnd, ScalarAndSimdBackendsAgreeAcrossWorkerCounts) {
  BackendGuard guard;
  ASSERT_TRUE(kernels::force_backend(kernels::Backend::kScalar));
  const E2eOutcome reference = run_pipeline(1);
  // Sanity: the pipeline actually learns something on separable blobs.
  std::size_t distinct = 1;
  for (std::size_t i = 1; i < reference.labels.size(); ++i) {
    if (reference.labels[i] != reference.labels[0]) ++distinct;
  }
  EXPECT_GT(distinct, 1U);

  for (const auto backend : {kernels::Backend::kScalar, kernels::Backend::kSimd}) {
    if (backend == kernels::Backend::kSimd && kernels::simd_table() == nullptr) {
      continue;
    }
    kernels::force_backend(backend);
    for (const std::size_t workers : {1U, 2U, 8U}) {
      EXPECT_EQ(run_pipeline(workers), reference)
          << "backend=" << (backend == kernels::Backend::kScalar ? "scalar" : "simd")
          << " workers=" << workers;
    }
  }
}

}  // namespace
