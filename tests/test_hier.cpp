// Unit tests for the hierarchy substrate: dimension allocation and the
// hierarchical (concat + ternary projection) encoder (src/hier/*).
//
// Seed audit: every test constructs its own hdc::Rng with a distinct
// explicit seed (no file-level or shared RNG), so no test's draws depend on
// which other tests ran before it in the same process.
#include <gtest/gtest.h>

#include "hdc/random.hpp"
#include "hier/dim_allocation.hpp"
#include "hier/hier_encoder.hpp"
#include "net/topology.hpp"

namespace {

using namespace edgehd;
using namespace edgehd::hier;

// ------------------------------------------------------------ allocation

TEST(DimAllocation, ProportionalToSubtreeFeatures) {
  // paper_tree(4): leaves with features 10, 10, 20, 40 (n = 80).
  const auto topo = net::Topology::paper_tree(4);
  const auto alloc = allocate_dims(topo, {10, 10, 20, 40}, 8000, 1);
  const auto leaves = topo.leaves();
  EXPECT_EQ(alloc.dims[leaves[0]], 1000u);  // 8000 * 10/80
  EXPECT_EQ(alloc.dims[leaves[2]], 2000u);
  EXPECT_EQ(alloc.dims[leaves[3]], 4000u);
  EXPECT_EQ(alloc.dims[topo.root()], 8000u);
  // Gateway over leaves 0 and 1 holds 20 of 80 features.
  const auto gw = topo.parent(leaves[0]);
  EXPECT_EQ(alloc.subtree_features[gw], 20u);
  EXPECT_EQ(alloc.dims[gw], 2000u);
}

TEST(DimAllocation, FloorsTinySlices) {
  const auto topo = net::Topology::star(4);
  const auto alloc = allocate_dims(topo, {1, 1, 1, 97}, 1000, 32);
  const auto leaves = topo.leaves();
  EXPECT_EQ(alloc.dims[leaves[0]], 32u);  // 10 would be below the floor
  EXPECT_EQ(alloc.dims[topo.root()], 1000u);
}

TEST(DimAllocation, ValidatesInputs) {
  const auto topo = net::Topology::star(2);
  EXPECT_THROW(allocate_dims(topo, {1}, 100), std::invalid_argument);
  EXPECT_THROW(allocate_dims(topo, {1, 0}, 100), std::invalid_argument);
  EXPECT_THROW(allocate_dims(topo, {1, 1}, 0), std::invalid_argument);
}

TEST(DimAllocation, DeepTreesPropagateFeatureCounts) {
  const auto topo = net::Topology::uniform_depth(8, 4);
  const auto alloc =
      allocate_dims(topo, std::vector<std::size_t>(8, 5), 4000, 8);
  EXPECT_EQ(alloc.subtree_features[topo.root()], 40u);
  for (std::size_t level = 2; level < topo.depth(); ++level) {
    for (const auto id : topo.nodes_at_level(level)) {
      EXPECT_GT(alloc.subtree_features[id], 0u);
      EXPECT_LE(alloc.dims[id], 4000u);
    }
  }
}

// ------------------------------------------------------------ hier encoder

TEST(HierEncoder, ValidatesConstruction) {
  EXPECT_THROW(HierEncoder({}, 10, 1), std::invalid_argument);
  EXPECT_THROW(HierEncoder({4, 4}, 0, 1), std::invalid_argument);
  // Concatenation mode requires out_dim == sum(child_dims).
  EXPECT_THROW(HierEncoder({4, 4}, 10, 1, AggregationMode::kConcatenation),
               std::invalid_argument);
  EXPECT_NO_THROW(HierEncoder({4, 6}, 10, 1, AggregationMode::kConcatenation));
}

TEST(HierEncoder, ConcatChecksChildShapes) {
  HierEncoder enc({4, 4}, 8, 1, AggregationMode::kConcatenation);
  hdc::Rng rng(1);
  std::vector<hdc::BipolarHV> ok{rng.sign_vector(4), rng.sign_vector(4)};
  EXPECT_EQ(enc.concat(ok).size(), 8u);
  std::vector<hdc::BipolarHV> wrong_count{rng.sign_vector(4)};
  EXPECT_THROW(enc.concat(wrong_count), std::invalid_argument);
  std::vector<hdc::BipolarHV> wrong_dim{rng.sign_vector(4), rng.sign_vector(5)};
  EXPECT_THROW(enc.concat(wrong_dim), std::invalid_argument);
}

TEST(HierEncoder, ConcatenationModeIsIdentity) {
  HierEncoder enc({3, 2}, 5, 1, AggregationMode::kConcatenation);
  const std::vector<hdc::BipolarHV> kids{{1, -1, 1}, {-1, 1}};
  EXPECT_EQ(enc.aggregate(kids), (hdc::BipolarHV{1, -1, 1, -1, 1}));
  EXPECT_EQ(enc.macs_per_aggregation(), 0u);
}

TEST(HierEncoder, HolographicOutputHasRequestedDimAndIsBipolar) {
  HierEncoder enc({100, 100}, 150, 2);
  hdc::Rng rng(3);
  const std::vector<hdc::BipolarHV> kids{rng.sign_vector(100),
                                         rng.sign_vector(100)};
  const auto out = enc.aggregate(kids);
  EXPECT_EQ(out.size(), 150u);
  for (const auto v : out) EXPECT_TRUE(v == 1 || v == -1);
  EXPECT_EQ(enc.macs_per_aggregation(), 150u * 64);
}

TEST(HierEncoder, DeterministicPerSeed) {
  hdc::Rng rng(4);
  const std::vector<hdc::BipolarHV> kids{rng.sign_vector(64),
                                         rng.sign_vector(64)};
  HierEncoder a({64, 64}, 96, 7);
  HierEncoder b({64, 64}, 96, 7);
  HierEncoder c({64, 64}, 96, 8);
  EXPECT_EQ(a.aggregate(kids), b.aggregate(kids));
  EXPECT_NE(a.aggregate(kids), c.aggregate(kids));
}

TEST(HierEncoder, ProjectionIsApproximatelyLinear) {
  // project() rescales with integer division, so additivity holds within
  // one truncation unit per component — the property that makes class-
  // hypervector aggregation consistent with sample-level aggregation.
  HierEncoder enc({32, 32}, 48, 9);
  hdc::Rng rng(10);
  hdc::AccumHV a(64), b(64), sum(64);
  for (std::size_t i = 0; i < 64; ++i) {
    a[i] = static_cast<std::int32_t>(rng.index(41)) - 20;
    b[i] = static_cast<std::int32_t>(rng.index(41)) - 20;
    sum[i] = a[i] + b[i];
  }
  const auto pa = enc.project(a);
  const auto pb = enc.project(b);
  const auto ps = enc.project(sum);
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_NEAR(ps[i], pa[i] + pb[i], 2) << "component " << i;
  }
}

TEST(HierEncoder, ProjectionPreservesSimilarityStructure) {
  // Nearby inputs stay nearby after holographic aggregation.
  HierEncoder enc({256, 256}, 384, 11);
  hdc::Rng rng(12);
  const auto a = rng.sign_vector(512);
  auto near = a;
  for (std::size_t i = 0; i < 30; ++i) {
    near[i] = static_cast<std::int8_t>(-near[i]);
  }
  const auto far = rng.sign_vector(512);
  const auto pa = enc.encode(a);
  EXPECT_LT(hdc::hamming(pa, enc.encode(near)),
            hdc::hamming(pa, enc.encode(far)));
}

TEST(HierEncoder, HolographicSpreadsInformationAcrossDims) {
  // Zeroing a random 40% of holographic dimensions perturbs similarity far
  // less than losing the same fraction of one child's concat block.
  HierEncoder holo({128, 128}, 256, 13);
  hdc::Rng rng(14);
  const std::vector<hdc::BipolarHV> kids{rng.sign_vector(128),
                                         rng.sign_vector(128)};
  const auto code = holo.aggregate(kids);
  auto damaged = code;
  for (auto& v : damaged) {
    if (rng.bernoulli(0.4)) v = 0;
  }
  // Remaining dimensions still agree with the original nearly everywhere.
  std::size_t agree = 0;
  std::size_t live = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (damaged[i] == 0) continue;
    ++live;
    if (damaged[i] == code[i]) ++agree;
  }
  EXPECT_EQ(agree, live);  // surviving dims are intact...
  EXPECT_GT(live, 100u);   // ...and a solid majority survives
}

}  // namespace
