// Unit tests for the wire codec and size accounting (src/hdc/wire.*).
#include <gtest/gtest.h>

#include "hdc/random.hpp"
#include "hdc/wire.hpp"

namespace {

using namespace edgehd::hdc;

TEST(Wire, BipolarBytesRoundUp) {
  EXPECT_EQ(wire_bytes_bipolar(0), 0u);
  EXPECT_EQ(wire_bytes_bipolar(1), 1u);
  EXPECT_EQ(wire_bytes_bipolar(8), 1u);
  EXPECT_EQ(wire_bytes_bipolar(9), 2u);
  EXPECT_EQ(wire_bytes_bipolar(4000), 500u);
}

TEST(Wire, BitsForMagnitude) {
  EXPECT_EQ(bits_for_magnitude(0), 2u);
  EXPECT_EQ(bits_for_magnitude(1), 2u);
  EXPECT_EQ(bits_for_magnitude(3), 3u);
  EXPECT_EQ(bits_for_magnitude(75), 8u);
  EXPECT_EQ(bits_for_magnitude(-75), 8u);
}

TEST(Wire, AccumBytesUseActualMagnitude) {
  const AccumHV small{1, -1, 0, 1};
  const AccumHV big{1000, -1000, 0, 1};
  EXPECT_LT(wire_bytes_accum(small), wire_bytes_accum(big));
  EXPECT_EQ(wire_bytes_accum(4, 8), 4u);
  EXPECT_EQ(wire_bytes_accum(3, 8), 3u);
  EXPECT_EQ(wire_bytes_accum(3, 6), 3u);  // 18 bits -> 3 bytes
}

TEST(Wire, FeatureBytes) {
  EXPECT_EQ(wire_bytes_features(75), 300u);
}

class PackRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PackRoundTrip, PackUnpackIsIdentity) {
  Rng rng(GetParam());
  const auto hv = rng.sign_vector(GetParam());
  const auto bytes = pack_bipolar(hv);
  EXPECT_EQ(bytes.size(), wire_bytes_bipolar(hv.size()));
  EXPECT_EQ(unpack_bipolar(bytes, hv.size()), hv);
}

INSTANTIATE_TEST_SUITE_P(Dims, PackRoundTrip,
                         ::testing::Values(1, 7, 8, 9, 63, 64, 65, 1000, 4000));

TEST(Wire, PackedDensityMatchesSignBalance) {
  Rng rng(3);
  const auto hv = rng.sign_vector(8000);
  const auto bytes = pack_bipolar(hv);
  std::size_t ones = 0;
  for (const auto b : bytes) ones += static_cast<std::size_t>(__builtin_popcount(b));
  EXPECT_NEAR(static_cast<double>(ones) / 8000.0, 0.5, 0.05);
}

}  // namespace
