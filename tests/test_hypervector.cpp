// Unit tests for the hypervector algebra (src/hdc/hypervector.*).
#include <gtest/gtest.h>

#include "hdc/hypervector.hpp"
#include "hdc/random.hpp"

namespace {

using namespace edgehd::hdc;

class HypervectorDims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HypervectorDims, BindIsInvolution) {
  Rng rng(1);
  const auto a = rng.sign_vector(GetParam());
  const auto b = rng.sign_vector(GetParam());
  const auto bound = edgehd::hdc::bind(a, b);
  EXPECT_EQ(edgehd::hdc::bind(bound, b), a);
}

TEST_P(HypervectorDims, BindWithSelfIsIdentityVector) {
  Rng rng(2);
  const auto a = rng.sign_vector(GetParam());
  const auto self = edgehd::hdc::bind(a, a);
  for (const auto v : self) EXPECT_EQ(v, 1);
}

TEST_P(HypervectorDims, BundleThenUnbundleRestoresAccumulator) {
  Rng rng(3);
  const auto a = rng.sign_vector(GetParam());
  AccumHV acc(GetParam(), 0);
  bundle_into(acc, a);
  unbundle_from(acc, a);
  for (const auto v : acc) EXPECT_EQ(v, 0);
}

TEST_P(HypervectorDims, DotWithSelfEqualsDimension) {
  Rng rng(4);
  const auto a = rng.sign_vector(GetParam());
  EXPECT_EQ(dot(std::span<const std::int8_t>(a), std::span<const std::int8_t>(a)),
            static_cast<std::int64_t>(GetParam()));
}

TEST_P(HypervectorDims, DotEqualsDimMinusTwiceHammingCount) {
  Rng rng(5);
  const auto a = rng.sign_vector(GetParam());
  const auto b = rng.sign_vector(GetParam());
  const double h = hamming(a, b);
  const auto d = dot(std::span<const std::int8_t>(a), std::span<const std::int8_t>(b));
  EXPECT_EQ(d, static_cast<std::int64_t>(GetParam()) -
                   2 * static_cast<std::int64_t>(h * static_cast<double>(GetParam()) + 0.5));
}

TEST_P(HypervectorDims, RandomHypervectorsAreNearOrthogonal) {
  Rng rng(6);
  const auto a = rng.sign_vector(GetParam());
  const auto b = rng.sign_vector(GetParam());
  const double normalized =
      static_cast<double>(dot(std::span<const std::int8_t>(a),
                              std::span<const std::int8_t>(b))) /
      static_cast<double>(GetParam());
  EXPECT_LT(std::abs(normalized), 0.2);
}

TEST_P(HypervectorDims, PermuteIsReversible) {
  Rng rng(7);
  const auto a = rng.sign_vector(GetParam());
  const auto rotated = permute(a, 13);
  EXPECT_EQ(permute(rotated, GetParam() - 13 % GetParam()), a);
}

INSTANTIATE_TEST_SUITE_P(Dims, HypervectorDims,
                         ::testing::Values(64, 257, 1000, 4096));

TEST(Hypervector, PermuteByZeroAndByDimIsIdentity) {
  Rng rng(8);
  const auto a = rng.sign_vector(100);
  EXPECT_EQ(permute(a, 0), a);
  EXPECT_EQ(permute(a, 100), a);
}

TEST(Hypervector, BinarizeMapsTiesToPlusOne) {
  const std::vector<float> real{-1.5F, 0.0F, 2.0F, -0.0F};
  const auto b = binarize(std::span<const float>(real));
  EXPECT_EQ(b, (BipolarHV{-1, 1, 1, 1}));

  const AccumHV acc{-3, 0, 7};
  const auto b2 = binarize(std::span<const std::int32_t>(acc));
  EXPECT_EQ(b2, (BipolarHV{-1, 1, 1}));
}

TEST(Hypervector, CosineOfIdenticalRealVectorsIsOne) {
  const std::vector<float> v{1.0F, 2.0F, -3.0F};
  EXPECT_NEAR(cosine(std::span<const float>(v), std::span<const float>(v)),
              1.0, 1e-6);
}

TEST(Hypervector, CosineOfZeroVectorIsZero) {
  const std::vector<float> z(8, 0.0F);
  const std::vector<float> v(8, 1.0F);
  EXPECT_EQ(cosine(std::span<const float>(z), std::span<const float>(v)), 0.0);

  const AccumHV za(8, 0);
  const BipolarHV q(8, 1);
  EXPECT_EQ(cosine(std::span<const std::int8_t>(q),
                   std::span<const std::int32_t>(za)),
            0.0);
}

TEST(Hypervector, CosineBipolarAccumMatchesRealCosine) {
  Rng rng(9);
  const auto q = rng.sign_vector(512);
  AccumHV acc(512, 0);
  for (int i = 0; i < 5; ++i) bundle_into(acc, rng.sign_vector(512));
  const auto nrm = normalized(acc);
  std::vector<float> qf(q.begin(), q.end());
  EXPECT_NEAR(cosine(std::span<const std::int8_t>(q),
                     std::span<const std::int32_t>(acc)),
              cosine(std::span<const float>(qf), std::span<const float>(nrm)),
              1e-5);
}

TEST(Hypervector, NormalizedHasUnitNorm) {
  Rng rng(10);
  AccumHV acc(256, 0);
  for (int i = 0; i < 9; ++i) bundle_into(acc, rng.sign_vector(256));
  const auto n = normalized(acc);
  EXPECT_NEAR(norm(std::span<const float>(n)), 1.0, 1e-5);
}

TEST(Hypervector, NormalizedZeroAccumulatorStaysZero) {
  const AccumHV acc(16, 0);
  const auto n = normalized(acc);
  for (const float v : n) EXPECT_EQ(v, 0.0F);
}

TEST(Hypervector, AccumulateAndDeaccumulateAreInverse) {
  AccumHV a{1, -2, 3};
  const AccumHV b{4, 5, -6};
  accumulate(a, b);
  EXPECT_EQ(a, (AccumHV{5, 3, -3}));
  deaccumulate(a, b);
  EXPECT_EQ(a, (AccumHV{1, -2, 3}));
}

TEST(Hypervector, HammingBounds) {
  const BipolarHV a{1, 1, -1, -1};
  const BipolarHV b{-1, -1, 1, 1};
  EXPECT_EQ(hamming(a, a), 0.0);
  EXPECT_EQ(hamming(a, b), 1.0);
}

TEST(Hypervector, BundledVectorIsMoreSimilarToMembersThanToStrangers) {
  Rng rng(11);
  const std::size_t d = 2048;
  std::vector<BipolarHV> members;
  AccumHV acc(d, 0);
  for (int i = 0; i < 7; ++i) {
    members.push_back(rng.sign_vector(d));
    bundle_into(acc, members.back());
  }
  const auto stranger = rng.sign_vector(d);
  for (const auto& m : members) {
    EXPECT_GT(cosine(std::span<const std::int8_t>(m),
                     std::span<const std::int32_t>(acc)),
              cosine(std::span<const std::int8_t>(stranger),
                     std::span<const std::int32_t>(acc)));
  }
}

}  // namespace
