// Unit tests for the network substrate: media, topologies, the
// discrete-event simulator and the platform models (src/net/*).
#include <gtest/gtest.h>

#include "net/medium.hpp"
#include "net/platform.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"

namespace {

using namespace edgehd::net;

// ---------------------------------------------------------------- media

TEST(Medium, PresetsCoverTheFivePaperMedia) {
  EXPECT_EQ(all_media().size(), 5u);
  EXPECT_GT(medium(MediumKind::kWired1G).bandwidth_bps,
            medium(MediumKind::kWifi80211ac).bandwidth_bps);
  EXPECT_GT(medium(MediumKind::kWifi80211ac).bandwidth_bps,
            medium(MediumKind::kBluetooth4).bandwidth_bps);
  EXPECT_FALSE(medium(MediumKind::kWired1G).shared_domain);
  EXPECT_TRUE(medium(MediumKind::kWifi80211n).shared_domain);
}

TEST(Medium, TransferTimeIsLatencyPlusSerialization) {
  const Medium& m = medium(MediumKind::kWired1G);
  // 1 Gbps: 125 bytes take 1 microsecond on the wire.
  EXPECT_EQ(transfer_time(m, 125), m.latency + 1 * kMicrosecond);
  EXPECT_EQ(transfer_time(m, 0), m.latency);
}

TEST(Medium, TransferEnergyScalesWithBytes) {
  const Medium& m = medium(MediumKind::kWifi80211ac);
  EXPECT_NEAR(transfer_energy_j(m, 2000), 2 * transfer_energy_j(m, 1000),
              1e-12);
}

// ---------------------------------------------------------------- topology

TEST(Topology, StarShape) {
  const auto t = Topology::star(5);
  EXPECT_EQ(t.num_nodes(), 6u);
  EXPECT_EQ(t.leaves().size(), 5u);
  EXPECT_EQ(t.depth(), 2u);
  for (const NodeId leaf : t.leaves()) {
    EXPECT_EQ(t.parent(leaf), t.root());
    EXPECT_EQ(t.level(leaf), 1u);
    EXPECT_EQ(t.hops_to_root(leaf), 1u);
  }
}

TEST(Topology, PaperTreePairsLeavesUnderGateways) {
  // 5 end nodes: two gateways of two, one leftover directly on the root
  // (the APRI deployment of Section VI-A).
  const auto t = Topology::paper_tree(5);
  EXPECT_EQ(t.leaves().size(), 5u);
  EXPECT_EQ(t.depth(), 3u);
  EXPECT_EQ(t.nodes_at_level(2).size(), 2u);  // gateways
  std::size_t direct = 0;
  for (const NodeId leaf : t.leaves()) {
    if (t.parent(leaf) == t.root()) ++direct;
  }
  EXPECT_EQ(direct, 1u);
}

TEST(Topology, PaperTreeEvenCountHasNoLeftover) {
  const auto t = Topology::paper_tree(4);
  for (const NodeId leaf : t.leaves()) {
    EXPECT_NE(t.parent(leaf), t.root());
  }
}

TEST(Topology, PecanTreeMatchesTheFigureEightHierarchy) {
  const auto t = Topology::pecan_tree();
  // 312 appliances, 52 houses, 8 streets, 1 central node.
  EXPECT_EQ(t.num_nodes(), 312u + 52 + 8 + 1);
  EXPECT_EQ(t.leaves().size(), 312u);
  EXPECT_EQ(t.depth(), 4u);
  EXPECT_EQ(t.nodes_at_level(2).size(), 52u);
  EXPECT_EQ(t.nodes_at_level(3).size(), 8u);
}

TEST(Topology, UniformDepthHitsRequestedDepth) {
  for (std::size_t depth = 2; depth <= 7; ++depth) {
    const auto t = Topology::uniform_depth(52, depth);
    EXPECT_EQ(t.depth(), depth) << "depth " << depth;
    EXPECT_EQ(t.leaves().size(), 52u);
  }
}

TEST(Topology, RejectsMalformedParentVectors) {
  EXPECT_THROW(Topology({}), std::invalid_argument);
  EXPECT_THROW(Topology({kNoNode, kNoNode}), std::invalid_argument);  // 2 roots
  EXPECT_THROW(Topology({1, 0}), std::invalid_argument);              // cycle
  EXPECT_THROW(Topology({5, kNoNode}), std::invalid_argument);  // bad parent
  EXPECT_THROW(Topology({0}), std::invalid_argument);           // self loop
}

TEST(Topology, LevelIsOnePlusDeepestChild) {
  // Chain: 0 -> 1 -> 2 (root), plus leaf 3 directly under root.
  const auto t = Topology({1, 2, kNoNode, 2});
  EXPECT_EQ(t.level(0), 1u);
  EXPECT_EQ(t.level(1), 2u);
  EXPECT_EQ(t.level(2), 3u);
  EXPECT_EQ(t.level(3), 1u);
  EXPECT_EQ(t.depth(), 3u);
}

// ---------------------------------------------------------------- simulator

TEST(Simulator, EventsRunInTimeOrderWithStableTies) {
  Simulator sim(Topology::star(2), medium(MediumKind::kWired1G));
  std::vector<int> order;
  sim.schedule(10, [&] { order.push_back(2); });
  sim.schedule(5, [&] { order.push_back(1); });
  sim.schedule(10, [&] { order.push_back(3); });  // tie: insertion order
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ComputeSerializesPerNode) {
  Simulator sim(Topology::star(1), medium(MediumKind::kWired1G));
  SimTime first_done = 0;
  SimTime second_done = 0;
  sim.compute(0, 100, 1.0, [&] { first_done = sim.now(); });
  sim.compute(0, 50, 1.0, [&] { second_done = sim.now(); });
  sim.run();
  EXPECT_EQ(first_done, 100);
  EXPECT_EQ(second_done, 150);  // queued behind the first task
}

TEST(Simulator, ComputeOnDistinctNodesOverlaps) {
  Simulator sim(Topology::star(2), medium(MediumKind::kWired1G));
  sim.compute(0, 100, 1.0);
  sim.compute(1, 100, 1.0);
  EXPECT_EQ(sim.run(), 100);
}

TEST(Simulator, LinkSerializesTransfers) {
  const Medium m{MediumKind::kWired1G, "test", 8e9, 0, 1.0, 1.0, false};
  Simulator sim(Topology::star(1), m);
  // Two 1000-byte messages on the same link: 1 us each, back to back.
  SimTime last = 0;
  sim.send(0, 1, 1000);
  sim.send(0, 1, 1000, [&] { last = sim.now(); });
  sim.run();
  EXPECT_EQ(last, 2 * kMicrosecond);
}

TEST(Simulator, SharedDomainSerializesAcrossLinks) {
  const Medium shared{MediumKind::kWifi80211n, "w", 8e9, 0, 1.0, 1.0, true};
  Simulator sim(Topology::star(2), shared);
  SimTime done = 0;
  sim.send(0, 2, 1000);
  sim.send(1, 2, 1000, [&] { done = sim.now(); });  // different link
  sim.run();
  EXPECT_EQ(done, 2 * kMicrosecond);  // contends with the first transfer

  const Medium wired{MediumKind::kWired1G, "w", 8e9, 0, 1.0, 1.0, false};
  Simulator sim2(Topology::star(2), wired);
  SimTime done2 = 0;
  sim2.send(0, 2, 1000);
  sim2.send(1, 2, 1000, [&] { done2 = sim2.now(); });
  sim2.run();
  EXPECT_EQ(done2, 1 * kMicrosecond);  // independent wired links overlap
}

TEST(Simulator, SendRequiresAdjacency) {
  Simulator sim(Topology::paper_tree(4), medium(MediumKind::kWired1G));
  const auto leaves = sim.topology().leaves();
  EXPECT_THROW(sim.send(leaves[0], leaves[1], 10), std::invalid_argument);
}

TEST(Simulator, SendToRootCountsEveryHop) {
  Simulator sim(Topology::paper_tree(4), medium(MediumKind::kWired1G));
  const auto leaf = sim.topology().leaves().front();
  bool delivered = false;
  sim.send_to_root(leaf, 1000, [&] { delivered = true; });
  sim.run();
  EXPECT_TRUE(delivered);
  // Leaf -> gateway -> root: 2 hops, bytes charged once per hop.
  EXPECT_EQ(sim.total_bytes_transferred(), 2000u);
  EXPECT_EQ(sim.stats(leaf).bytes_tx, 1000u);
  EXPECT_EQ(sim.stats(sim.topology().root()).bytes_rx, 1000u);
}

TEST(Simulator, EnergyAccountingMatchesPowerTimesTime) {
  Simulator sim(Topology::star(1), medium(MediumKind::kWired1G));
  sim.compute(0, kSecond, 2.5);
  sim.run();
  EXPECT_NEAR(sim.stats(0).compute_energy_j, 2.5, 1e-9);
  EXPECT_NEAR(sim.total_energy_j(), 2.5, 1e-9);
}

TEST(Simulator, RejectsInvalidCalls) {
  Simulator sim(Topology::star(1), medium(MediumKind::kWired1G));
  EXPECT_THROW(sim.schedule(-1, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.compute(99, 1, 1.0), std::out_of_range);
  EXPECT_THROW(sim.compute(0, -5, 1.0), std::invalid_argument);
  EXPECT_THROW(sim.stats(99), std::out_of_range);
  EXPECT_THROW(sim.set_link_medium(sim.topology().root(),
                                   medium(MediumKind::kBluetooth4)),
               std::invalid_argument);
}

TEST(Simulator, OutOfRangeIdsThrowTypedNodeIdError) {
  Simulator sim(Topology::star(3), medium(MediumKind::kWired1G));
  // NodeIdError derives std::out_of_range (so broad catch sites still work)
  // and carries the offending id plus the node count for diagnostics.
  try {
    sim.stats(99);
    FAIL() << "stats(99) must throw";
  } catch (const NodeIdError& e) {
    EXPECT_EQ(e.id(), 99U);
    EXPECT_EQ(e.num_nodes(), 4U);
    EXPECT_NE(std::string(e.what()).find("99"), std::string::npos);
  }
  EXPECT_THROW(sim.set_link_medium(99, medium(MediumKind::kBluetooth4)),
               NodeIdError);
  EXPECT_THROW(sim.compute(4, 1, 1.0), NodeIdError);
  // In-range calls are unaffected.
  sim.set_link_medium(0, medium(MediumKind::kBluetooth4));
  EXPECT_EQ(sim.stats(0).packets_tx, 0U);
}

TEST(Simulator, CountsScheduledAndDispatchedEvents) {
  Simulator sim(Topology::star(2), medium(MediumKind::kWired1G));
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.send(0, 2, 1000, [&] { ++fired; });  // two queue events per transfer
  EXPECT_EQ(sim.events_scheduled(), 2U);   // timer + transfer start
  EXPECT_EQ(sim.queue_depth(), 2U);
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.events_scheduled(), 3U);  // + transfer end, pushed in-flight
  EXPECT_EQ(sim.events_dispatched(), sim.events_scheduled());
  EXPECT_EQ(sim.queue_depth(), 0U);
  EXPECT_GE(sim.peak_queue_depth(), 2U);
}

TEST(Simulator, PerLinkMediumOverrideApplies) {
  Simulator sim(Topology::star(2), medium(MediumKind::kWired1G));
  sim.set_link_medium(0, medium(MediumKind::kBluetooth4));
  SimTime slow = 0;
  SimTime fast = 0;
  sim.send(0, 2, 100000, [&] { slow = sim.now(); });
  sim.send(1, 2, 100000, [&] { fast = sim.now(); });
  sim.run();
  EXPECT_GT(slow, fast);
}

// ---------------------------------------------------------------- platforms

TEST(Platform, TimeAndEnergyScaleWithWork) {
  const Platform& p = hd_gpu();
  EXPECT_EQ(time_for_macs(p, 0), 0);
  EXPECT_NEAR(static_cast<double>(time_for_macs(p, 2'000'000)),
              2.0 * static_cast<double>(time_for_macs(p, 1'000'000)), 2.0);
  EXPECT_NEAR(energy_for_macs(p, 1'000'000),
              p.active_power_w * 1e6 / p.macs_per_second, 1e-12);
}

TEST(Platform, PresetOrderingMatchesThePaper) {
  // The GPU is the fastest platform; the per-node FPGA draws the least power.
  EXPECT_GT(hd_gpu().macs_per_second, hd_fpga_central().macs_per_second);
  EXPECT_GT(hd_fpga_central().macs_per_second, edge_node().macs_per_second);
  EXPECT_LT(edge_fpga().active_power_w, 1.0);       // ~0.28 W per node
  EXPECT_NEAR(hd_fpga_central().active_power_w, 9.8, 1e-9);
  EXPECT_GT(dnn_gpu().active_power_w, 200.0);
}

}  // namespace
