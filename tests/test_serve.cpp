// Query-serving plane (src/serve): admission, micro-batching, async
// escalation sessions, load generation, fault behaviour and the
// determinism + accounting contracts (DESIGN.md §10).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "net/fault.hpp"
#include "net/medium.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "serve/engine.hpp"
#include "serve/loadgen.hpp"
#include "serve/queue.hpp"

namespace {

using namespace edgehd;
using net::kMillisecond;
using net::NodeId;

// ------------------------------------------------------------ AdmissionQueue

TEST(AdmissionQueue, ShedsAtDepthAndTracksPeak) {
  serve::AdmissionQueue q(2);
  EXPECT_TRUE(q.try_push({1, 10}));
  EXPECT_TRUE(q.try_push({2, 20}));
  EXPECT_FALSE(q.try_push({3, 30}));  // full: shed
  EXPECT_EQ(q.shed(), 1u);
  EXPECT_EQ(q.peak(), 2u);
  EXPECT_EQ(q.oldest_enqueued(), 10);
  EXPECT_EQ(q.pop_front().slot, 1u);
  EXPECT_TRUE(q.try_push({4, 40}));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.oldest_enqueued(), 20);
  EXPECT_EQ(q.peak(), 2u);
}

// ------------------------------------------------------------- LoadGenerator

TEST(LoadGenerator, PoissonIsDeterministicOrderedAndQuotaBound) {
  const serve::LoadSpec spec =
      serve::LoadSpec::poisson({0, 1, 2}, 5000.0, 500, 42);
  serve::LoadGenerator a(spec, 100), b(spec, 100);
  serve::Arrival x, y;
  net::SimTime prev = 0;
  std::size_t n = 0;
  while (a.next(x)) {
    ASSERT_TRUE(b.next(y));
    EXPECT_EQ(x.at, y.at);
    EXPECT_EQ(x.origin, y.origin);
    EXPECT_EQ(x.sample, y.sample);
    EXPECT_GE(x.at, prev) << "arrivals must be globally time-ordered";
    EXPECT_LT(x.sample, 100u);
    prev = x.at;
    ++n;
  }
  EXPECT_FALSE(b.next(y));
  EXPECT_EQ(n, 500u);
}

TEST(LoadGenerator, AddingAnOriginDoesNotPerturbOthers) {
  serve::LoadSpec two = serve::LoadSpec::poisson({0, 1}, 2000.0, 100, 7);
  serve::LoadSpec three = serve::LoadSpec::poisson({0, 1, 2}, 2000.0, 300, 7);
  std::vector<serve::Arrival> from_two, from_three;
  serve::LoadGenerator g2(two, 50), g3(three, 50);
  serve::Arrival a;
  while (g2.next(a)) from_two.push_back(a);
  while (g3.next(a)) {
    if (a.origin != 2) from_three.push_back(a);
  }
  ASSERT_GE(from_three.size(), from_two.size());
  for (std::size_t i = 0; i < from_two.size(); ++i) {
    EXPECT_EQ(from_two[i].at, from_three[i].at);
    EXPECT_EQ(from_two[i].origin, from_three[i].origin);
    EXPECT_EQ(from_two[i].sample, from_three[i].sample);
  }
}

TEST(LoadGenerator, BurstyOnOffClustersArrivals) {
  const auto spec = serve::LoadSpec::bursty(
      {0}, 50'000.0, 10 * kMillisecond, 200 * kMillisecond, 400, 11);
  serve::LoadGenerator gen(spec, 10);
  serve::Arrival a;
  std::vector<net::SimTime> gaps;
  net::SimTime prev = -1;
  while (gen.next(a)) {
    if (prev >= 0) gaps.push_back(a.at - prev);
    prev = a.at;
  }
  ASSERT_GT(gaps.size(), 100u);
  // ON/OFF traffic is overdispersed: most gaps are short intra-burst ones,
  // with rare OFF-period gaps far above the mean.
  std::size_t tiny = 0, huge = 0;
  for (const auto g : gaps) {
    if (g < 1 * kMillisecond) ++tiny;
    if (g > 50 * kMillisecond) ++huge;
  }
  EXPECT_GT(tiny, gaps.size() / 2);
  EXPECT_GT(huge, 0u);
}

// ------------------------------------------------------------- serving world

struct World {
  data::Dataset ds;
  std::unique_ptr<core::EdgeHdSystem> sys;
};

World make_world(std::size_t num_threads, double threshold = 0.55) {
  World w;
  w.ds = data::make_synthetic("serve", 40, 3, {10, 10, 10, 10}, 900, 250, 91,
                              3.8F, 0.5F, 0.5F);
  data::zscore_normalize(w.ds);
  core::SystemConfig cfg;
  cfg.total_dim = 1600;
  cfg.batch_size = 8;
  cfg.confidence_threshold = threshold;
  cfg.num_threads = num_threads;
  w.sys = std::make_unique<core::EdgeHdSystem>(
      w.ds, net::Topology::paper_tree(4), cfg);
  w.sys->train();
  return w;
}

serve::ServeConfig deep_queues() {
  serve::ServeConfig cfg;
  cfg.queue_depth = 1u << 14;  // never shed
  cfg.max_batch = 16;
  return cfg;
}

// --------------------------------------------------- equivalence + batching

TEST(Serve, MicroBatchedServingMatchesSyncRoutedInference) {
  const World w = make_world(2);
  const auto leaves = w.sys->topology().leaves();
  const auto load = serve::LoadSpec::poisson(
      {leaves.begin(), leaves.end()}, 3000.0, 1200, 5);
  const auto report = w.sys->serve_run(deep_queues(), load);

  EXPECT_EQ(report.submitted, 1200u);
  EXPECT_EQ(report.served, 1200u);
  EXPECT_EQ(report.shed_admission, 0u);
  EXPECT_EQ(report.unserved, 0u);
  ASSERT_EQ(report.replies.size(), 1200u);
  EXPECT_LT(report.batches, report.served)
      << "micro-batching never kicked in at this load";

  // Every reply must match the synchronous walk bit-for-bit: same label,
  // same confidence, same serving node, same gather-byte charge.
  std::map<std::pair<std::uint64_t, NodeId>, core::RoutedResult> sync;
  for (const serve::Reply& r : report.replies) {
    const auto key = std::make_pair(r.sample, r.origin);
    auto it = sync.find(key);
    if (it == sync.end()) {
      it = sync.emplace(key, w.sys->infer_routed(w.ds.test_x[r.sample],
                                                 r.origin))
               .first;
    }
    const core::RoutedResult& s = it->second;
    EXPECT_EQ(r.result.label, s.label);
    EXPECT_EQ(r.result.confidence, s.confidence);
    EXPECT_EQ(r.result.node, s.node);
    EXPECT_EQ(r.result.level, s.level);
    EXPECT_EQ(r.result.bytes, s.bytes);
    EXPECT_FALSE(r.result.degraded);
  }
}

TEST(Serve, DeterministicAcrossRunsAndWorkerCounts) {
  std::vector<serve::ServeReport> reports;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const World w = make_world(threads);
    const auto leaves = w.sys->topology().leaves();
    const auto load = serve::LoadSpec::poisson(
        {leaves.begin(), leaves.end()}, 6000.0, 1500, 17);
    serve::ServeConfig cfg = deep_queues();
    cfg.record_replies = false;
    reports.push_back(w.sys->serve_run(cfg, load));
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].reply_hash, reports[0].reply_hash);
    EXPECT_EQ(reports[i].served, reports[0].served);
    EXPECT_EQ(reports[i].escalation_hops, reports[0].escalation_hops);
    EXPECT_EQ(reports[i].batches, reports[0].batches);
    EXPECT_EQ(reports[i].makespan, reports[0].makespan);
    EXPECT_EQ(reports[i].p50_latency_ns, reports[0].p50_latency_ns);
    EXPECT_EQ(reports[i].p95_latency_ns, reports[0].p95_latency_ns);
    EXPECT_EQ(reports[i].p99_latency_ns, reports[0].p99_latency_ns);
    EXPECT_EQ(reports[i].slo_violations, reports[0].slo_violations);
  }
}

// ----------------------------------------------- escalation byte accounting

TEST(ObsServeInvariants, BatchedEscalationAccountingPartitions) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out (-DEDGEHD_OBS=OFF)";
  }
  const World w = make_world(2, /*threshold=*/0.7);  // escalate plenty
  const auto& topo = w.sys->topology();
  const auto leaves = topo.leaves();

  // Lossy leaf uplinks make retry_bytes non-zero so the retry accounting is
  // exercised under the batcher, not just trivially equal at zero.
  net::FaultPlan plan(23);
  for (const NodeId leaf : leaves) plan.loss(leaf, 0.3);

  auto engine = w.sys->serve_start(deep_queues());
  engine->set_fault_plan(plan);
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  const auto report = engine->run(serve::LoadSpec::poisson(
      {leaves.begin(), leaves.end()}, 4000.0, 1000, 29));

  ASSERT_EQ(report.served, 1000u);
  ASSERT_GT(report.escalation_hops, 0u)
      << "no escalations; the invariants would be vacuous";

  std::uint64_t bytes = 0, retry_bytes = 0;
  for (const serve::Reply& r : report.replies) {
    bytes += r.result.bytes;
    retry_bytes += r.result.retry_bytes;
  }
  ASSERT_GT(retry_bytes, 0u) << "lossy links produced no retry bytes";

  // Per-reply sums partition the registry counters exactly.
  EXPECT_EQ(reg.counter_value("core.routed.bytes"), bytes);
  EXPECT_EQ(reg.counter_value("core.routed.retry_bytes"), retry_bytes);
  EXPECT_EQ(reg.counter_value("core.routed.queries"),
            report.served + report.unserved);
  EXPECT_EQ(reg.counter_value("core.routed.escalations"),
            report.escalation_hops);

  // One QueryEscalate envelope per hop, one QueryReply per served query —
  // the same per-type charges the synchronous walk makes.
  EXPECT_EQ(reg.counter_value("proto.query_escalate.messages"),
            report.escalation_hops);
  EXPECT_EQ(reg.counter_value("proto.query_reply.messages"), report.served);
  EXPECT_GT(reg.counter_value("proto.query_escalate.bytes"), 0u);

  // Per-node serve counters partition the served total.
  std::uint64_t serves = 0;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    serves += reg.counter_value("core.routed.serves.node" + std::to_string(n));
  }
  EXPECT_EQ(serves, report.served);

  // serve.* plane counters agree with the report.
  EXPECT_EQ(reg.counter_value("serve.submitted"), report.submitted);
  EXPECT_EQ(reg.counter_value("serve.batches"), report.batches);
  EXPECT_EQ(reg.counter_value("serve.slo_violations"), report.slo_violations);
}

// ------------------------------------------------------- faults + overload

TEST(Serve, GatewayOutageWindowDegradesThenRecovers) {
  const World w = make_world(2, /*threshold=*/0.97);  // force escalation
  const auto& topo = w.sys->topology();
  const auto leaves = topo.leaves();
  const NodeId gateway = topo.parent(leaves.front());

  // The gateway dies for a window in the middle of the run: escalations
  // from its leaves are cut short and served degraded at the leaf.
  net::FaultPlan plan(31);
  plan.crash(gateway, 50 * kMillisecond, 150 * kMillisecond);

  const auto load = serve::LoadSpec::poisson(
      {leaves.begin(), leaves.end()}, 4000.0, 1500, 13);
  const auto report = w.sys->serve_run(deep_queues(), load, plan);

  EXPECT_EQ(report.submitted, 1500u);
  EXPECT_EQ(report.served + report.unserved + report.shed_admission,
            report.submitted);
  EXPECT_GT(report.served_degraded, 0u)
      << "outage window produced no degraded serves";
  EXPECT_LT(report.served_degraded, report.served)
      << "recovery never happened: everything served degraded";

  // Degraded serves must be confined to the outage window (plus in-flight
  // stragglers one hop past it).
  for (const serve::Reply& r : report.replies) {
    if (r.result.degraded) {
      EXPECT_GE(r.completed, 50 * kMillisecond);
    }
  }
}

TEST(Serve, FaultedRunIsDeterministicAcrossWorkerCounts) {
  std::vector<serve::ServeReport> reports;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const World w = make_world(threads, /*threshold=*/0.97);
    const auto& topo = w.sys->topology();
    const auto leaves = topo.leaves();
    net::FaultPlan plan(31);
    plan.crash(topo.parent(leaves.front()), 50 * kMillisecond,
               150 * kMillisecond);
    for (const NodeId leaf : leaves) plan.loss(leaf, 0.2);
    serve::ServeConfig cfg = deep_queues();
    cfg.record_replies = false;
    reports.push_back(w.sys->serve_run(
        cfg,
        serve::LoadSpec::poisson({leaves.begin(), leaves.end()}, 4000.0, 1200,
                                 19),
        plan));
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].reply_hash, reports[0].reply_hash);
    EXPECT_EQ(reports[i].served, reports[0].served);
    EXPECT_EQ(reports[i].served_degraded, reports[0].served_degraded);
    EXPECT_EQ(reports[i].unserved, reports[0].unserved);
    EXPECT_EQ(reports[i].shed_admission, reports[0].shed_admission);
    EXPECT_EQ(reports[i].shed_escalated, reports[0].shed_escalated);
    EXPECT_EQ(reports[i].makespan, reports[0].makespan);
  }
}

TEST(Serve, OverloadShedsAtBoundedQueueAndViolatesSlo) {
  const World w = make_world(2);
  const auto leaves = w.sys->topology().leaves();
  serve::ServeConfig cfg;
  cfg.queue_depth = 8;  // tiny queue
  cfg.max_batch = 4;
  cfg.per_query_cost = 500 * net::kMicrosecond;  // slow service
  cfg.batch_overhead = 1 * kMillisecond;
  cfg.slo = 5 * kMillisecond;
  cfg.record_replies = false;
  // Offered load far above service capacity.
  const auto report = w.sys->serve_run(
      cfg, serve::LoadSpec::poisson({leaves.begin(), leaves.end()}, 20'000.0,
                                    2000, 3));
  EXPECT_GT(report.shed_admission, 0u);
  EXPECT_EQ(report.served + report.unserved + report.shed_admission,
            report.submitted);
  EXPECT_GT(report.slo_violations, 0u);
  std::size_t peak = 0;
  for (const auto& n : report.per_node) peak = std::max(peak, n.peak_queue);
  EXPECT_LE(peak, cfg.queue_depth);
}

// ------------------------------------------------------ loop modes + facade

TEST(Serve, ClosedLoopRespectsQuotaAndThinkTime) {
  const World w = make_world(2);
  const auto leaves = w.sys->topology().leaves();
  serve::ClosedLoopSpec loop;
  loop.origins = {leaves.begin(), leaves.end()};
  loop.clients_per_origin = 2;
  loop.think = 2 * kMillisecond;
  loop.num_queries = 600;
  loop.seed = 9;
  const auto report = w.sys->serve_run(deep_queues(), loop);
  EXPECT_EQ(report.submitted, 600u);
  EXPECT_EQ(report.served + report.unserved + report.shed_admission,
            report.submitted);
  EXPECT_EQ(report.shed_admission, 0u)
      << "closed loop with deep queues cannot overload admission";
  EXPECT_GT(report.makespan, 0);
  EXPECT_GT(report.p50_latency_ns, 0.0);
}

TEST(Serve, ScriptedSubmissionsServeInOrder) {
  const World w = make_world(1);
  const auto leaves = w.sys->topology().leaves();
  auto engine = w.sys->serve_start(deep_queues());
  for (int i = 0; i < 20; ++i) {
    engine->submit(i * kMillisecond, leaves[i % leaves.size()],
                   static_cast<std::uint64_t>(i));
  }
  const auto report = engine->run();
  EXPECT_EQ(report.submitted, 20u);
  EXPECT_EQ(report.served, 20u);
  ASSERT_EQ(report.replies.size(), 20u);
  for (std::size_t i = 1; i < report.replies.size(); ++i) {
    EXPECT_GE(report.replies[i].completed, report.replies[i - 1].arrival);
  }
}

TEST(Serve, EngineValidatesInputs) {
  const World w = make_world(1);
  auto engine = w.sys->serve_start(serve::ServeConfig{});
  EXPECT_THROW(engine->submit(0, w.sys->topology().num_nodes(), 0),
               std::invalid_argument);
  EXPECT_THROW(engine->submit(0, w.sys->topology().leaves().front(),
                              w.ds.test_size()),
               std::invalid_argument);
  engine->submit(0, w.sys->topology().leaves().front(), 0);
  (void)engine->run();
  EXPECT_THROW(engine->run(), std::logic_error);  // single-shot
}

}  // namespace
