// Build smoke test: every public header compiles and the basic end-to-end
// flow (encode → train → predict) runs.
#include <gtest/gtest.h>

#include "baseline/adaboost.hpp"
#include "baseline/hd_model.hpp"
#include "baseline/mlp.hpp"
#include "baseline/svm.hpp"
#include "core/cost_model.hpp"
#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "fpga/fpga_model.hpp"
#include "hdc/classifier.hpp"
#include "hdc/compress.hpp"
#include "hdc/encoder.hpp"
#include "hdc/spatial_encoder.hpp"
#include "hdc/wire.hpp"
#include "hier/dim_allocation.hpp"
#include "hier/hier_encoder.hpp"
#include "net/platform.hpp"
#include "net/simulator.hpp"

TEST(Smoke, EncodeTrainPredict) {
  const auto ds = edgehd::data::make_synthetic("smoke", 16, 3, {16}, 300, 90,
                                               /*seed=*/42);
  edgehd::baseline::HdModelConfig cfg;
  cfg.dim = 512;
  edgehd::baseline::HdModel model(cfg);
  model.fit(ds);
  EXPECT_GT(model.test_accuracy(ds), 0.5);
}
