// Differential suite for collective schedules (src/proto/collective.*).
//
// The collective engine's contract is that every schedule is a *lossless
// rearrangement* of the point-to-point reference: fused ReducePartial frames
// scatter into the same inboxes, all-reduce combines are elementwise int32
// addition, broadcast is store-and-forward of exact bytes. So the tests here
// are differential: run the reference and the collective schedule on the
// same seeded world and demand bit-identical models — across randomized
// topologies, worker counts, and seeded fault plans with retries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "hdc/random.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"
#include "proto/bus.hpp"
#include "proto/collective.hpp"
#include "proto/envelope.hpp"
#include "proto/messages.hpp"
#include "proto/node_runtime.hpp"

namespace {

using namespace edgehd;
using net::NodeId;
using proto::CollectiveAlgo;
using proto::Envelope;

// ---- randomized topologies --------------------------------------------------

/// Seeded random tree: 1-4 leaf-to-root hops, per-node fan-out 1-8, total
/// width capped so the synthetic dataset keeps a few features per leaf.
net::Topology random_tree(hdc::Rng& rng, std::size_t max_leaves = 24) {
  const std::size_t hops = 1 + rng.index(4);
  std::vector<NodeId> parents{net::kNoNode};
  std::vector<NodeId> frontier{0};
  for (std::size_t level = 0; level < hops; ++level) {
    std::vector<NodeId> next;
    for (std::size_t at = 0; at < frontier.size(); ++at) {
      // Every remaining frontier node still needs >= 1 child, so budget the
      // fan-out to keep the final width within max_leaves.
      const std::size_t reserve = frontier.size() - at - 1;
      const std::size_t budget =
          max_leaves > next.size() + reserve ? max_leaves - next.size() - reserve
                                             : 1;
      const std::size_t fan = 1 + rng.index(std::min<std::size_t>(8, budget));
      for (std::size_t k = 0; k < fan; ++k) {
        next.push_back(parents.size());
        parents.push_back(frontier[at]);
      }
    }
    frontier = std::move(next);
  }
  return net::Topology(std::move(parents));
}

data::Dataset dataset_for(const net::Topology& topo, std::uint64_t seed) {
  const std::size_t leaves = topo.leaves().size();
  const std::vector<std::size_t> parts(leaves, 3);
  auto ds = data::make_synthetic("coll" + std::to_string(seed), 3 * leaves, 3,
                                 parts, 180, 30, 70 + seed, 3.6F, 0.5F, 0.5F);
  data::zscore_normalize(ds);
  return ds;
}

core::SystemConfig base_cfg(const net::Topology& topo) {
  core::SystemConfig cfg;
  cfg.total_dim = 40 * topo.leaves().size();
  cfg.batch_size = 5;
  return cfg;
}

void expect_models_identical(const core::EdgeHdSystem& a,
                             const core::EdgeHdSystem& b,
                             const std::string& what) {
  const auto& topo = a.topology();
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    if (!a.has_classifier(id)) continue;
    for (std::size_t c = 0; c < a.classifier_at(id).num_classes(); ++c) {
      ASSERT_EQ(a.classifier_at(id).class_accumulator(c),
                b.classifier_at(id).class_accumulator(c))
          << what << ": node " << id << " class " << c;
    }
  }
}

// ---- facade differential ----------------------------------------------------

TEST(CollectiveDifferential, RandomTopologiesBitIdenticalAcrossSchedules) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    hdc::Rng rng(900 + seed);
    const auto topo = random_tree(rng);
    const auto ds = dataset_for(topo, seed);
    const auto cfg = base_cfg(topo);

    core::EdgeHdSystem ref(ds, topo, cfg);
    const auto ref_comm = ref.train_initial() + ref.retrain_batches();

    // Three collective modes: pinned fusion, cost-model argmin on a wired
    // link, cost-model argmin on the shared wireless default.
    for (const int mode : {0, 1, 2}) {
      auto ccfg = cfg;
      ccfg.collective.enabled = true;
      if (mode == 0) {
        ccfg.collective.force = CollectiveAlgo::kTreeReduce;
      } else {
        ccfg.collective.medium = mode == 1 ? net::MediumKind::kWired1G
                                           : net::MediumKind::kWifi80211n;
      }
      core::EdgeHdSystem sys(ds, topo, ccfg);
      const auto comm = sys.train_initial() + sys.retrain_batches();
      expect_models_identical(ref, sys,
                              "seed " + std::to_string(seed) + " mode " +
                                  std::to_string(mode));
      if (mode == 0 && topo.num_nodes() > 1) {
        // Forced fusion: one frame per (edge, phase) plus the two plan
        // announcements replaces every per-(class, batch) frame.
        EXPECT_LT(comm.messages, ref_comm.messages) << "seed " << seed;
      }
    }
  }
}

TEST(CollectiveDifferential, WorkerCountsDoNotChangeCollectiveModels) {
  hdc::Rng rng(77);
  const auto topo = random_tree(rng);
  const auto ds = dataset_for(topo, 77);
  auto cfg = base_cfg(topo);
  cfg.collective.enabled = true;
  cfg.collective.force = CollectiveAlgo::kTreeReduce;

  cfg.num_threads = 1;
  core::EdgeHdSystem one(ds, topo, cfg);
  const auto comm_one = one.train_initial() + one.retrain_batches();
  for (const std::size_t workers : {2u, 8u}) {
    cfg.num_threads = workers;
    core::EdgeHdSystem sys(ds, topo, cfg);
    const auto comm = sys.train_initial() + sys.retrain_batches();
    expect_models_identical(one, sys,
                            "workers " + std::to_string(workers));
    EXPECT_EQ(comm.bytes, comm_one.bytes) << workers;
    EXPECT_EQ(comm.messages, comm_one.messages) << workers;
  }
}

TEST(CollectiveDifferential, SeededFaultPlansPreserveBitIdentity) {
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    hdc::Rng rng(1300 + seed);
    const auto topo = random_tree(rng);
    if (topo.num_nodes() < 3) continue;  // want a non-root node to fail
    const auto ds = dataset_for(topo, seed);
    const auto cfg = base_cfg(topo);
    auto ccfg = cfg;
    ccfg.collective.enabled = true;
    ccfg.collective.force = CollectiveAlgo::kTreeReduce;

    core::EdgeHdSystem ref(ds, topo, cfg);
    core::EdgeHdSystem sys(ds, topo, ccfg);

    // Crash one random non-root node and cut one random uplink for the
    // whole training pass; both systems see the identical seeded world.
    net::FaultPlan plan(seed);
    const NodeId dead = 1 + rng.index(topo.num_nodes() - 1);
    const NodeId cut = 1 + rng.index(topo.num_nodes() - 1);
    plan.crash(dead, 0, net::kForever);
    plan.outage(cut, 0, net::kForever);
    ref.set_fault_plan(plan, 0);
    sys.set_fault_plan(plan, 0);

    const auto ref_comm = ref.train_initial() + ref.retrain_batches();
    const auto comm = sys.train_initial() + sys.retrain_batches();
    (void)ref_comm;
    (void)comm;
    EXPECT_EQ(ref.stragglers(), sys.stragglers()) << "seed " << seed;
    expect_models_identical(ref, sys, "faulted seed " + std::to_string(seed));

    // Recovery: reintegration ships the same point-to-point deltas in both
    // modes, so models and bytes stay in lockstep.
    ref.clear_health();
    sys.clear_health();
    const auto ref_re = ref.reintegrate_stragglers();
    const auto re = sys.reintegrate_stragglers();
    EXPECT_EQ(ref_re.bytes, re.bytes) << "seed " << seed;
    EXPECT_EQ(ref_re.messages, re.messages) << "seed " << seed;
    expect_models_identical(ref, sys, "recovered seed " + std::to_string(seed));
    EXPECT_EQ(ref.stragglers(), sys.stragglers()) << "seed " << seed;
  }
}

// ---- primitive harness ------------------------------------------------------

hdc::AccumHV random_accum(std::size_t dim, std::int32_t magnitude,
                          std::uint64_t seed) {
  hdc::Rng rng(seed);
  hdc::AccumHV acc(dim);
  for (auto& v : acc) {
    v = static_cast<std::int32_t>(rng.index(2 * magnitude + 1)) - magnitude;
  }
  return acc;
}

/// Bare-metal world for the data-motion primitives: runtimes wired to a
/// LocalBus that routes every envelope through the real codec.
struct Harness {
  net::Topology topo;
  std::vector<proto::NodeRuntime> nodes;
  proto::LocalBus bus;

  Harness(net::Topology t, std::size_t dim, std::size_t num_classes)
      : topo(std::move(t)), nodes(topo.num_nodes()), bus(topo.num_nodes()) {
    for (NodeId id = 0; id < topo.num_nodes(); ++id) {
      nodes[id].init(id, topo, dim, num_classes);
      proto::NodeRuntime* rt = &nodes[id];
      bus.subscribe(id,
                    [rt](const Envelope& env) { rt->on_envelope(env); });
    }
  }
};

/// Peer states for an all-reduce among the root's children, plus the
/// elementwise reference sum every peer must end up holding.
struct AllReduceCase {
  std::vector<std::vector<hdc::AccumHV>> states;
  std::vector<hdc::AccumHV> expected;
};

AllReduceCase make_case(std::size_t peers, std::size_t sections,
                        std::size_t dim, std::uint64_t seed) {
  AllReduceCase c;
  c.expected.assign(sections, hdc::AccumHV(dim, 0));
  for (std::size_t p = 0; p < peers; ++p) {
    std::vector<hdc::AccumHV> state;
    for (std::size_t s = 0; s < sections; ++s) {
      state.push_back(random_accum(dim, 1000, seed + 31 * p + s));
      for (std::size_t lane = 0; lane < dim; ++lane) {
        c.expected[s][lane] += state.back()[lane];
      }
    }
    c.states.push_back(std::move(state));
  }
  return c;
}

TEST(CollectivePrimitives, RingAndTreeAllReduceMatchReferenceSums) {
  for (const std::size_t peers : {1u, 2u, 3u, 5u, 8u}) {
    Harness h(net::Topology::star(peers), 17, 2);
    const auto kids = h.topo.children(h.topo.root());
    const std::vector<NodeId> peer_ids(kids.begin(), kids.end());
    // Odd section dim (17) x 2 sections: chunk boundaries land mid-section.
    // Sweep the even split, an oversized odd chunk, and one whole-payload
    // chunk per transfer.
    const auto min_chunk = static_cast<std::uint32_t>((34 + peers - 1) / peers);
    for (const std::uint32_t chunk : {0u, min_chunk + 3, 34u}) {
      auto c = make_case(peers, 2, 17, 400 + peers);
      proto::ring_all_reduce(h.bus, h.nodes, h.topo, h.topo.root(), peer_ids,
                             c.states, chunk);
      for (std::size_t p = 0; p < peers; ++p) {
        ASSERT_EQ(c.states[p],
                  peers == 1 ? c.states[p] : c.expected)
            << "ring peers=" << peers << " chunk=" << chunk << " peer " << p;
      }
    }
    auto c = make_case(peers, 2, 17, 500 + peers);
    proto::tree_all_reduce(h.bus, h.nodes, h.topo, h.topo.root(), peer_ids,
                           c.states);
    for (std::size_t p = 0; p < peers; ++p) {
      ASSERT_EQ(c.states[p], peers == 1 ? c.states[p] : c.expected)
          << "tree peers=" << peers << " peer " << p;
    }
  }
}

TEST(CollectivePrimitives, AllReduceValidatesPeersAndLaneCounts) {
  Harness h(net::Topology::paper_tree(4), 8, 2);
  const auto& topo = h.topo;
  const NodeId gw = topo.parent(topo.leaves().front());
  const auto kids = topo.children(gw);
  std::vector<NodeId> peer_ids(kids.begin(), kids.end());

  // One state set per peer, or nothing runs.
  std::vector<std::vector<hdc::AccumHV>> short_states(peer_ids.size() - 1);
  EXPECT_THROW(proto::ring_all_reduce(h.bus, h.nodes, topo, gw, peer_ids,
                                      short_states),
               std::invalid_argument);
  // Mismatched lane counts across peers.
  auto c = make_case(peer_ids.size(), 2, 8, 600);
  c.states.back()[0].push_back(0);
  EXPECT_THROW(
      proto::ring_all_reduce(h.bus, h.nodes, topo, gw, peer_ids, c.states),
      std::invalid_argument);
  EXPECT_THROW(
      proto::tree_all_reduce(h.bus, h.nodes, topo, gw, peer_ids, c.states),
      std::invalid_argument);
  // A peer that is not a child of the relay parent.
  auto ok = make_case(peer_ids.size(), 2, 8, 601);
  auto strangers = peer_ids;
  strangers.back() = topo.root();
  EXPECT_THROW(
      proto::ring_all_reduce(h.bus, h.nodes, topo, gw, strangers, ok.states),
      std::invalid_argument);
  // Chunks too small to cover the lane space in P chunks.
  EXPECT_THROW(proto::ring_all_reduce(h.bus, h.nodes, topo, gw, peer_ids,
                                      ok.states, /*chunk_lanes=*/1),
               std::invalid_argument);
}

TEST(CollectivePrimitives, BroadcastIsBitExactAtEveryNode) {
  Harness h(net::Topology::paper_tree(4), 12, 3);
  std::vector<hdc::AccumHV> models;
  for (std::size_t c = 0; c < 3; ++c) {
    models.push_back(random_accum(12, 40000, 700 + c));
  }
  const auto received = proto::broadcast_models(h.bus, h.nodes, h.topo,
                                                h.topo.root(), models);
  ASSERT_EQ(received.size(), h.topo.num_nodes());
  for (NodeId id = 0; id < h.topo.num_nodes(); ++id) {
    EXPECT_EQ(received[id], models) << "node " << id;
  }
  // Subtree broadcast from a gateway touches only its descendants.
  const NodeId gw = h.topo.parent(h.topo.leaves().front());
  const auto sub = proto::broadcast_models(h.bus, h.nodes, h.topo, gw, models);
  for (NodeId id = 0; id < h.topo.num_nodes(); ++id) {
    const bool in_subtree =
        id == gw || (!h.topo.children(gw).empty() && h.topo.parent(id) == gw);
    if (in_subtree) {
      EXPECT_EQ(sub[id], models) << "node " << id;
    } else {
      EXPECT_TRUE(sub[id].empty()) << "node " << id;
    }
  }
}

// ---- retries over a lossy bus ----------------------------------------------

/// Deterministically faulty bus: drops a prefix of posts, or every other
/// post, before handing the survivors to a real LocalBus.
class LossyBus final : public proto::Bus {
 public:
  enum class Policy { kDropFirstN, kDropEveryOther, kDropAll };

  LossyBus(std::size_t num_nodes, Policy policy, std::size_t n = 0)
      : inner_(num_nodes), policy_(policy), n_(n) {}

  void subscribe(NodeId node, proto::Handler handler) override {
    inner_.subscribe(node, std::move(handler));
  }
  void post(Envelope env) override {
    const std::size_t at = posts_++;
    switch (policy_) {
      case Policy::kDropAll:
        return;
      case Policy::kDropFirstN:
        if (at < n_) return;
        break;
      case Policy::kDropEveryOther:
        if (at % 2 == 0) return;
        break;
    }
    inner_.post(std::move(env));
  }
  void set_charge(proto::CommStats* sink) noexcept override {
    inner_.set_charge(sink);
  }
  std::size_t posts() const noexcept { return posts_; }

 private:
  proto::LocalBus inner_;
  Policy policy_;
  std::size_t n_;
  std::size_t posts_ = 0;
};

struct LossyHarness {
  net::Topology topo;
  std::vector<proto::NodeRuntime> nodes;
  LossyBus bus;

  LossyHarness(net::Topology t, LossyBus::Policy policy, std::size_t n = 0)
      : topo(std::move(t)),
        nodes(topo.num_nodes()),
        bus(topo.num_nodes(), policy, n) {
    for (NodeId id = 0; id < topo.num_nodes(); ++id) {
      nodes[id].init(id, topo, 9, 2);
      proto::NodeRuntime* rt = &nodes[id];
      bus.subscribe(id,
                    [rt](const Envelope& env) { rt->on_envelope(env); });
    }
  }
};

TEST(CollectiveRetries, RetriesRecoverDroppedFramesBitExactly) {
  // Every hop's first attempt is dropped; one retry per hop recovers the
  // schedule and the result stays bit-identical to the reference sum.
  LossyHarness h(net::Topology::star(3), LossyBus::Policy::kDropEveryOther);
  const auto kids = h.topo.children(h.topo.root());
  const std::vector<NodeId> peer_ids(kids.begin(), kids.end());
  auto c = make_case(3, 2, 9, 800);
  proto::ring_all_reduce(h.bus, h.nodes, h.topo, h.topo.root(), peer_ids,
                         c.states, 0, /*max_retries=*/1);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(c.states[p], c.expected) << "peer " << p;
  }
  // Broadcast under a dropped prefix with generous retries.
  LossyHarness b(net::Topology::paper_tree(4), LossyBus::Policy::kDropFirstN,
                 3);
  const std::vector<hdc::AccumHV> models{random_accum(9, 5, 801),
                                         random_accum(9, 5, 802)};
  const auto received = proto::broadcast_models(b.bus, b.nodes, b.topo,
                                                b.topo.root(), models,
                                                /*max_retries=*/5);
  for (NodeId id = 0; id < b.topo.num_nodes(); ++id) {
    EXPECT_EQ(received[id], models) << "node " << id;
  }
}

TEST(CollectiveRetries, ExhaustedRetriesThrow) {
  LossyHarness h(net::Topology::star(2), LossyBus::Policy::kDropAll);
  const auto kids = h.topo.children(h.topo.root());
  const std::vector<NodeId> peer_ids(kids.begin(), kids.end());
  auto c = make_case(2, 1, 9, 810);
  EXPECT_THROW(proto::ring_all_reduce(h.bus, h.nodes, h.topo, h.topo.root(),
                                      peer_ids, c.states, 0,
                                      /*max_retries=*/2),
               std::runtime_error);
  EXPECT_THROW(proto::broadcast_models(h.bus, h.nodes, h.topo, h.topo.root(),
                                       {random_accum(9, 5, 811)},
                                       /*max_retries=*/0),
               std::runtime_error);
  // Dropping only the first attempt still fails when retries are disallowed.
  LossyHarness once(net::Topology::star(2), LossyBus::Policy::kDropFirstN, 1);
  auto c2 = make_case(2, 1, 9, 812);
  EXPECT_THROW(
      proto::tree_all_reduce(once.bus, once.nodes, once.topo,
                             once.topo.root(),
                             std::vector<NodeId>(
                                 once.topo.children(once.topo.root()).begin(),
                                 once.topo.children(once.topo.root()).end()),
                             c2.states, /*max_retries=*/0),
      std::runtime_error);
}

// ---- NodeRuntime scatter contract -------------------------------------------

TEST(CollectiveScatter, FusedFrameMatchesPerClassDelivery) {
  // A gateway fed one fused initial-training frame must close its phase with
  // exactly the accumulators of a twin fed per-class ModelUpdates.
  const auto topo = net::Topology::paper_tree(4);
  const NodeId gw = topo.parent(topo.leaves().front());
  const auto kids = topo.children(gw);

  proto::NodeRuntime fused, plain;
  for (auto* rt : {&fused, &plain}) {
    rt->init(gw, topo, 16, 2);
    rt->install_aggregator(std::make_unique<hier::HierEncoder>(
        std::vector<std::size_t>(kids.size(), 16), 16, 99));
    rt->begin_initial_training();
  }
  for (std::size_t k = 0; k < kids.size(); ++k) {
    const std::vector<hdc::AccumHV> contrib{
        random_accum(16, 30, 900 + k), random_accum(16, 30, 910 + k)};
    fused.on_envelope({proto::kProtoVersion, kids[k], gw,
                       proto::ReducePartial{
                           proto::kReduceInitial,
                           static_cast<std::uint32_t>(kids[k]), contrib}});
    plain.on_envelope({proto::kProtoVersion, kids[k], gw,
                       proto::ModelUpdate{0, contrib[0]}});
    plain.on_envelope({proto::kProtoVersion, kids[k], gw,
                       proto::ModelUpdate{1, contrib[1]}});
  }
  EXPECT_EQ(fused.finish_initial_training({}, {}),
            plain.finish_initial_training({}, {}));
}

TEST(CollectiveScatter, MalformedFusedFramesAreProtocolViolations) {
  const auto topo = net::Topology::paper_tree(4);
  const NodeId gw = topo.parent(topo.leaves().front());
  const NodeId child = topo.children(gw).front();
  proto::NodeRuntime rt;
  rt.init(gw, topo, 8, 2);

  const std::vector<hdc::AccumHV> two{random_accum(8, 3, 920),
                                      random_accum(8, 3, 921)};
  const Envelope initial{proto::kProtoVersion, child, gw,
                         proto::ReducePartial{proto::kReduceInitial,
                                              static_cast<std::uint32_t>(child),
                                              two}};
  // Training frames outside their phase are violations…
  EXPECT_THROW(rt.on_envelope(initial), std::logic_error);
  rt.begin_initial_training();
  // …as are section counts that disagree with the announced schedule.
  EXPECT_THROW(
      rt.on_envelope({proto::kProtoVersion, child, gw,
                      proto::ReducePartial{proto::kReduceInitial,
                                           static_cast<std::uint32_t>(child),
                                           {random_accum(8, 3, 922)}}}),
      std::logic_error);
  // Unknown collective phase bytes fail closed.
  EXPECT_THROW(
      rt.on_envelope({proto::kProtoVersion, child, gw,
                      proto::ReducePartial{
                          9, static_cast<std::uint32_t>(child), two}}),
      std::logic_error);
  EXPECT_NO_THROW(rt.on_envelope(initial));

  // All-reduce / broadcast frames are phase-free and land in the collective
  // inbox, preserving delivery order and draining on take.
  EXPECT_EQ(rt.collective_frames_pending(), 0u);
  rt.on_envelope({proto::kProtoVersion, child, gw,
                  proto::ReducePartial{proto::kReduceGatewaySync,
                                       static_cast<std::uint32_t>(child),
                                       two}});
  EXPECT_EQ(rt.collective_frames_pending(), 1u);
  const auto frames = rt.take_collective_frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].origin, child);
  EXPECT_EQ(frames[0].sections, two);
  EXPECT_EQ(rt.collective_frames_pending(), 0u);
}

}  // namespace
