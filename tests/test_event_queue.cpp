// Event-core tests: CalendarQueue ordering against a reference binary heap
// (the determinism contract of DESIGN.md §12) and InlineFunction storage /
// lifetime semantics.

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/event_queue.hpp"
#include "net/inline_fn.hpp"
#include "net/medium.hpp"

namespace edgehd::net {
namespace {

// ---- InlineFunction ---------------------------------------------------------

TEST(InlineFunction, EmptyIsFalseAndInline) {
  InlineFunction<int(int), 24> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
}

TEST(InlineFunction, SmallCapturesStayInline) {
  int hits = 0;
  InlineFunction<void(), 24> fn = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, OversizedCapturesFallBackToHeap) {
  std::array<std::uint64_t, 16> big{};
  big[3] = 7;
  InlineFunction<std::uint64_t(), 24> fn = [big] { return big[3]; };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.is_inline());
  EXPECT_EQ(fn(), 7U);
}

TEST(InlineFunction, FitsInlinePredicateMatchesStorage) {
  using Fn = InlineFunction<void(), 32>;
  struct Small {
    std::uint64_t a[4];
    void operator()() const {}
  };
  struct Large {
    std::uint64_t a[5];
    void operator()() const {}
  };
  static_assert(Fn::fits_inline<Small>());
  static_assert(!Fn::fits_inline<Large>());
  EXPECT_TRUE(Fn(Small{}).is_inline());
  EXPECT_FALSE(Fn(Large{}).is_inline());
}

TEST(InlineFunction, MoveTransfersTheCallable) {
  auto token = std::make_shared<int>(41);
  InlineFunction<int(), 32> a = [token] { return *token + 1; };
  EXPECT_EQ(token.use_count(), 2);
  InlineFunction<int(), 32> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(token.use_count(), 2);  // moved, not copied
  EXPECT_EQ(b(), 42);
  InlineFunction<int(), 32> c;
  c = std::move(b);
  EXPECT_EQ(c(), 42);
  EXPECT_EQ(token.use_count(), 2);
}

TEST(InlineFunction, DestroysTheCaptureExactlyOnce) {
  auto token = std::make_shared<int>(0);
  {
    InlineFunction<void(), 32> inline_fn = [token] {};
    InlineFunction<void(), 32> moved = std::move(inline_fn);
    std::array<std::shared_ptr<int>, 8> fat{token, token, token, token,
                                            token, token, token, token};
    InlineFunction<void(), 32> heap_fn = [fat] {};
    EXPECT_FALSE(heap_fn.is_inline());
    // 1 owner + inline_fn's capture (moved, not duplicated) + the 8 in
    // `fat` + the 8 the heap_fn closure copied.
    EXPECT_EQ(token.use_count(), 18);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFunction, NestsInsideAnotherInlineFunction) {
  // The simulator's transfer closures carry a nested callback; the wrapper
  // plus a couple of scalars must still fit the outer budget.
  int fired = 0;
  InlineFunction<void(), 56> inner = [&fired] { ++fired; };
  std::uint64_t a = 1;
  std::uint64_t b = 2;
  InlineFunction<void(), 80> outer = [a, b, cb = std::move(inner)]() mutable {
    if (a + b == 3) cb();
  };
  EXPECT_TRUE(outer.is_inline());
  outer();
  EXPECT_EQ(fired, 1);
}

// ---- CalendarQueue ordering ---------------------------------------------------

/// Reference model: the seed simulator's std::vector binary heap with its
/// exact EventOrder comparator.
class ReferenceHeap {
 public:
  void push(SimTime time, std::uint64_t seq) {
    heap_.push_back({time, seq});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  std::pair<SimTime, std::uint64_t> pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    auto out = heap_.back();
    heap_.pop_back();
    return out;
  }
  bool empty() const { return heap_.empty(); }

 private:
  struct Later {
    bool operator()(const std::pair<SimTime, std::uint64_t>& a,
                    const std::pair<SimTime, std::uint64_t>& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second > b.second;
    }
  };
  std::vector<std::pair<SimTime, std::uint64_t>> heap_;
};

/// Drives the calendar queue and the reference heap through an identical
/// randomized push/pop schedule and asserts bit-identical pop sequences.
/// Push times respect the discrete-event precondition (never below the last
/// popped time), which is how events scheduled from inside handlers behave.
void fuzz_against_reference(std::uint64_t seed, int ops, SimTime max_delta,
                            double same_time_bias) {
  std::mt19937_64 rng(seed);
  CalendarQueue<std::uint64_t> queue;
  ReferenceHeap ref;
  SimTime watermark = 0;
  SimTime last_push = 0;
  std::uint64_t seq = 0;
  for (int op = 0; op < ops; ++op) {
    const bool do_push = queue.empty() || (rng() % 10) < 7;
    if (do_push) {
      SimTime time = 0;
      if (same_time_bias > 0.0 &&
          std::uniform_real_distribution<double>(0, 1)(rng) < same_time_bias) {
        time = std::max(watermark, last_push);  // deliberate tie
      } else {
        time = watermark + static_cast<SimTime>(rng() % (max_delta + 1));
      }
      last_push = time;
      queue.push(time, seq, seq);
      ref.push(time, seq);
      ++seq;
    } else {
      const auto entry = queue.pop();
      const auto expect = ref.pop();
      ASSERT_EQ(entry.time, expect.first);
      ASSERT_EQ(entry.seq, expect.second);
      ASSERT_EQ(entry.payload, expect.second);
      watermark = entry.time;
    }
  }
  while (!queue.empty()) {
    const auto entry = queue.pop();
    const auto expect = ref.pop();
    ASSERT_EQ(entry.time, expect.first);
    ASSERT_EQ(entry.seq, expect.second);
  }
  EXPECT_TRUE(ref.empty());
}

TEST(CalendarQueue, FuzzClusteredTimes) {
  fuzz_against_reference(/*seed=*/1, /*ops=*/20000, /*max_delta=*/64,
                         /*same_time_bias=*/0.0);
}

TEST(CalendarQueue, FuzzWideTimeRange) {
  fuzz_against_reference(/*seed=*/2, /*ops=*/20000,
                         /*max_delta=*/SimTime{1} << 40,
                         /*same_time_bias=*/0.0);
}

TEST(CalendarQueue, FuzzHeavyTies) {
  fuzz_against_reference(/*seed=*/3, /*ops=*/20000, /*max_delta=*/8,
                         /*same_time_bias=*/0.5);
}

TEST(CalendarQueue, FuzzManySeeds) {
  for (std::uint64_t seed = 10; seed < 26; ++seed) {
    fuzz_against_reference(seed, /*ops=*/4000,
                           /*max_delta=*/(seed % 2 == 0) ? 100 : (SimTime{1} << 30),
                           /*same_time_bias=*/0.1 * static_cast<double>(seed % 4));
  }
}

TEST(CalendarQueue, AllEventsAtOneInstantPopInInsertionOrder) {
  CalendarQueue<std::uint64_t> queue;
  for (std::uint64_t i = 0; i < 1000; ++i) queue.push(42, i, i);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto entry = queue.pop();
    EXPECT_EQ(entry.time, 42);
    EXPECT_EQ(entry.seq, i);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, PushBelowWindowAfterFrontRebuild) {
  // front() may re-anchor the bucket window around a far-future overflow
  // tier; pushes for nearer events must still pop first (the serve engine's
  // arrival merge does exactly this: peek, then push an earlier arrival).
  CalendarQueue<int> queue;
  queue.push(1'000'000'000, 0, 0);
  EXPECT_EQ(queue.front().time, 1'000'000'000);
  queue.push(5, 1, 1);
  queue.push(999, 2, 2);
  EXPECT_EQ(queue.pop().payload, 1);
  EXPECT_EQ(queue.pop().payload, 2);
  EXPECT_EQ(queue.pop().payload, 0);
  EXPECT_TRUE(queue.empty());
}

TEST(CalendarQueue, HandlerStylePushesDuringDrain) {
  // Events scheduled from inside handlers land at or after the current
  // time; emulate a timer wheel where each pop schedules two successors.
  CalendarQueue<std::uint64_t> queue;
  ReferenceHeap ref;
  std::uint64_t seq = 0;
  queue.push(0, seq, seq);
  ref.push(0, seq);
  ++seq;
  int dispatched = 0;
  while (!queue.empty() && dispatched < 5000) {
    const auto entry = queue.pop();
    const auto expect = ref.pop();
    ASSERT_EQ(entry.time, expect.first);
    ASSERT_EQ(entry.seq, expect.second);
    ++dispatched;
    // Deterministic "handler": reschedule at +1 (tie-heavy) and at a seeded
    // far-future point, like a transfer leg plus a retry timer.
    if (seq < 4000) {
      queue.push(entry.time + 1, seq, seq);
      ref.push(entry.time + 1, seq);
      ++seq;
      const SimTime far =
          entry.time + 1 + static_cast<SimTime>((seq * 2654435761ULL) % 100000);
      queue.push(far, seq, seq);
      ref.push(far, seq);
      ++seq;
    }
  }
  while (!queue.empty()) {
    const auto entry = queue.pop();
    const auto expect = ref.pop();
    ASSERT_EQ(entry.time, expect.first);
    ASSERT_EQ(entry.seq, expect.second);
  }
}

TEST(CalendarQueue, MoveOnlyPayloadsSurviveRebuilds) {
  CalendarQueue<std::unique_ptr<std::uint64_t>> queue;
  constexpr std::uint64_t kCount = 512;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    // Spread far apart so redistribution (and at least one rebuild) happens.
    queue.push(static_cast<SimTime>(i) * 1'000'000'000, i,
               std::make_unique<std::uint64_t>(i));
  }
  for (std::uint64_t i = 0; i < kCount; ++i) {
    auto entry = queue.pop();
    ASSERT_TRUE(entry.payload != nullptr);
    EXPECT_EQ(*entry.payload, i);
  }
  EXPECT_GE(queue.rebuilds(), 1U);
}

}  // namespace
}  // namespace edgehd::net
