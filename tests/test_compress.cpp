// Unit + property tests for position-keyed hypervector compression
// (src/hdc/compress.*, paper Section IV-C).
#include <gtest/gtest.h>

#include "hdc/compress.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/random.hpp"

namespace {

using namespace edgehd::hdc;

TEST(Compress, RejectsInvalidShapes) {
  EXPECT_THROW(HvCompressor(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(HvCompressor(16, 0, 1), std::invalid_argument);
  HvCompressor comp(16, 2, 1);
  Rng rng(1);
  std::vector<BipolarHV> too_many(3, rng.sign_vector(16));
  EXPECT_THROW(comp.compress(too_many), std::invalid_argument);
  EXPECT_THROW(comp.position(2), std::out_of_range);
  const AccumHV packed(16, 0);
  EXPECT_THROW(comp.decompress(packed, 5), std::out_of_range);
}

TEST(Compress, SingleMemberRoundTripsExactly) {
  HvCompressor comp(512, 8, 3);
  Rng rng(2);
  const std::vector<BipolarHV> batch{rng.sign_vector(512)};
  const auto packed = comp.compress(batch);
  EXPECT_EQ(comp.decompress(packed, 0), batch[0]);
}

TEST(Compress, PositionKeysAreNearOrthogonal) {
  HvCompressor comp(4096, 8, 4);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      const double normalized =
          static_cast<double>(dot(comp.position(i), comp.position(j))) / 4096.0;
      // Random bipolar keys: |cos| concentrates around 1/sqrt(D) ~ 0.016;
      // 0.08 is a ~5-sigma bound.
      EXPECT_LT(std::abs(normalized), 0.08);
    }
  }
}

TEST(Compress, DeterministicAcrossInstancesWithSameSeed) {
  // Sender and receiver build identical compressors from the shared seed.
  HvCompressor tx(256, 4, 99);
  HvCompressor rx(256, 4, 99);
  Rng rng(5);
  std::vector<BipolarHV> batch(4);
  for (auto& hv : batch) hv = rng.sign_vector(256);
  const auto packed = tx.compress(batch);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rx.decompress(packed, i), tx.decompress(packed, i));
  }
}

class CompressNoise : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompressNoise, RecoveryErrorTracksPrediction) {
  const std::size_t m = GetParam();
  const std::size_t dim = 8192;
  HvCompressor comp(dim, m, 6);
  Rng rng(7);
  std::vector<BipolarHV> batch(m);
  for (auto& hv : batch) hv = rng.sign_vector(dim);
  const auto packed = comp.compress(batch);
  std::size_t flips = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const auto rec = comp.decompress(packed, i);
    for (std::size_t d = 0; d < dim; ++d) {
      if (rec[d] != batch[i][d]) ++flips;
    }
  }
  const double measured =
      static_cast<double>(flips) / static_cast<double>(m * dim);
  const double predicted = HvCompressor::expected_bit_error(m);
  // The Gaussian tail is a coarse approximation at tiny bundle sizes, where
  // the discrete noise's parity and the sign(0)=+1 tie rule dominate.
  EXPECT_NEAR(measured, predicted, m <= 3 ? 0.10 : 0.03);
}

INSTANTIATE_TEST_SUITE_P(BundleSizes, CompressNoise,
                         ::testing::Values(1, 2, 5, 10, 25, 50));

TEST(Compress, ErrorGrowsWithBundleSize) {
  EXPECT_EQ(HvCompressor::expected_bit_error(1), 0.0);
  double prev = 0.0;
  for (const std::size_t m : {2u, 5u, 25u, 100u}) {
    const double e = HvCompressor::expected_bit_error(m);
    EXPECT_GT(e, prev);
    EXPECT_LT(e, 0.5);
    prev = e;
  }
}

TEST(Compress, RecoveredVectorsStillClassifyCorrectly) {
  // The use case of Section IV-C: compressed queries must remain usable for
  // the associative search after decompression.
  const std::size_t dim = 4096;
  Rng rng(8);
  const auto proto0 = rng.sign_vector(dim);
  const auto proto1 = rng.sign_vector(dim);
  HvCompressor comp(dim, 10, 9);
  std::vector<BipolarHV> queries(10);
  std::vector<int> truth(10);
  for (std::size_t i = 0; i < 10; ++i) {
    truth[i] = static_cast<int>(i % 2);
    queries[i] = truth[i] == 0 ? proto0 : proto1;
  }
  const auto packed = comp.compress(queries);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto rec = comp.decompress(packed, i);
    const auto d0 = dot(std::span<const std::int8_t>(rec),
                        std::span<const std::int8_t>(proto0));
    const auto d1 = dot(std::span<const std::int8_t>(rec),
                        std::span<const std::int8_t>(proto1));
    EXPECT_EQ(d0 > d1 ? 0 : 1, truth[i]);
  }
}

}  // namespace
