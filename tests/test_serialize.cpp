// Unit tests for the binary model/hypervector codec (src/hdc/serialize.*).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "hdc/random.hpp"
#include "hdc/serialize.hpp"

namespace {

using namespace edgehd::hdc;

TEST(Serialize, BipolarRoundTrip) {
  Rng rng(1);
  for (const std::size_t dim : {1u, 7u, 64u, 1000u, 4001u}) {
    const auto hv = rng.sign_vector(dim);
    std::stringstream buf;
    save(buf, hv);
    EXPECT_EQ(load_bipolar(buf), hv) << "dim " << dim;
  }
}

TEST(Serialize, AccumRoundTrip) {
  Rng rng(2);
  AccumHV acc(513);
  for (auto& v : acc) {
    v = static_cast<std::int32_t>(rng.index(200001)) - 100000;
  }
  std::stringstream buf;
  save(buf, acc);
  EXPECT_EQ(load_accum(buf), acc);
}

TEST(Serialize, ClassifierRoundTripPreservesPredictions) {
  Rng rng(3);
  ClassifierConfig cfg;
  cfg.softmax_beta = 48.0;
  cfg.retrain_epochs = 7;
  HDClassifier clf(3, 256, cfg);
  for (std::size_t c = 0; c < 3; ++c) {
    for (int i = 0; i < 12; ++i) clf.add_sample(c, rng.sign_vector(256));
  }
  std::stringstream buf;
  save(buf, clf);
  const auto restored = load_classifier(buf);
  EXPECT_EQ(restored.num_classes(), 3u);
  EXPECT_EQ(restored.dim(), 256u);
  EXPECT_EQ(restored.config().softmax_beta, 48.0);
  EXPECT_EQ(restored.config().retrain_epochs, 7u);
  for (int i = 0; i < 20; ++i) {
    const auto q = rng.sign_vector(256);
    const auto a = clf.predict(q);
    const auto b = restored.predict(q);
    EXPECT_EQ(a.label, b.label);
    EXPECT_NEAR(a.confidence, b.confidence, 1e-12);
  }
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(4);
  HDClassifier clf(2, 64);
  clf.add_sample(0, rng.sign_vector(64));
  clf.add_sample(1, rng.sign_vector(64));
  const std::string path = ::testing::TempDir() + "/edgehd_model.bin";
  save_classifier_file(path, clf);
  const auto restored = load_classifier_file(path);
  EXPECT_EQ(restored.class_accumulator(0), clf.class_accumulator(0));
  EXPECT_EQ(restored.class_accumulator(1), clf.class_accumulator(1));
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadMagicWrongTagAndTruncation) {
  std::stringstream bad("nope");
  EXPECT_THROW(load_bipolar(bad), std::runtime_error);

  Rng rng(5);
  std::stringstream wrong_tag;
  save(wrong_tag, rng.sign_vector(16));  // bipolar record
  EXPECT_THROW(load_accum(wrong_tag), std::runtime_error);

  std::stringstream buf;
  save(buf, rng.sign_vector(1024));
  std::string data = buf.str();
  data.resize(data.size() / 2);  // chop the payload
  std::stringstream truncated(data);
  EXPECT_THROW(load_bipolar(truncated), std::runtime_error);

  EXPECT_THROW(load_classifier_file("/nonexistent/model.bin"),
               std::runtime_error);
}

TEST(Serialize, RecordsAreCompact) {
  Rng rng(6);
  const auto hv = rng.sign_vector(4000);
  std::stringstream buf;
  save(buf, hv);
  // 4 magic + 1 tag + 8 dim + 500 packed payload bytes.
  EXPECT_EQ(buf.str().size(), 4u + 1 + 8 + 500);
}

}  // namespace
