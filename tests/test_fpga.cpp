// Unit tests for the FPGA pipeline model (src/fpga/fpga_model.*).
#include <gtest/gtest.h>

#include "fpga/fpga_model.hpp"

namespace {

using namespace edgehd::fpga;

TEST(FpgaModel, RejectsInvalidDesignPoints) {
  EXPECT_THROW(FpgaModel(FpgaConfig{}, 0, 100, 2, 5), std::invalid_argument);
  EXPECT_THROW(FpgaModel(FpgaConfig{}, 10, 0, 2, 5), std::invalid_argument);
  EXPECT_THROW(FpgaModel(FpgaConfig{}, 10, 100, 1, 5), std::invalid_argument);
  FpgaConfig bad;
  bad.dsp_slices = 0;
  EXPECT_THROW(FpgaModel(bad, 10, 100, 2, 5), std::invalid_argument);
}

TEST(FpgaModel, EncodeCyclesGrowWithDimAndWindow) {
  const FpgaModel narrow(FpgaConfig{}, 100, 4000, 4, 10);
  const FpgaModel wide(FpgaConfig{}, 100, 4000, 4, 40);
  EXPECT_LT(narrow.encode_cycles(), wide.encode_cycles());
  const FpgaModel small(FpgaConfig{}, 100, 1000, 4, 10);
  EXPECT_LT(small.encode_cycles(), narrow.encode_cycles());
}

TEST(FpgaModel, SearchCyclesGrowWithClasses) {
  const FpgaModel few(FpgaConfig{}, 100, 4000, 2, 10);
  const FpgaModel many(FpgaConfig{}, 100, 4000, 26, 10);
  EXPECT_LT(few.search_cycles(), many.search_cycles());
}

TEST(FpgaModel, TrainCyclesDecomposeAsDocumented) {
  const FpgaModel m(FpgaConfig{}, 100, 4000, 4, 10);
  EXPECT_EQ(m.train_sample_cycles(),
            m.encode_cycles() + m.search_cycles() + m.accumulate_cycles());
  EXPECT_EQ(m.infer_sample_cycles(), m.encode_cycles() + m.search_cycles());
}

TEST(FpgaModel, CentralDesignPowerMatchesThePaper) {
  const auto m = central_design(617, 4000, 26);
  EXPECT_NEAR(m.power_w(), 9.8, 1.0);  // Kintex-7 centralized figure
}

TEST(FpgaModel, EdgeDesignPowerMatchesThePaper) {
  const auto m = edge_design(25, 1333, 5);
  EXPECT_NEAR(m.power_w(), 0.28, 0.08);  // per-node figure
}

TEST(FpgaModel, ResourcesFitTheFabricForPaperDesignPoints) {
  const auto central = central_design(784, 4000, 10);
  EXPECT_TRUE(central.resources().fits);
  EXPECT_LE(central.resources().dsp_used, FpgaConfig{}.dsp_slices);
  const auto edge = edge_design(6, 77, 3);
  EXPECT_TRUE(edge.resources().fits);
}

TEST(FpgaModel, CyclesToTimeUsesTheClock) {
  FpgaConfig cfg;
  cfg.clock_hz = 100e6;
  const FpgaModel m(cfg, 10, 100, 2, 2);
  EXPECT_EQ(m.cycles_to_time(100), 1000);  // 100 cycles at 100 MHz = 1 us
}

TEST(FpgaModel, EnergyEqualsPowerTimesTime) {
  const auto m = central_design(100, 2000, 4);
  const std::uint64_t cycles = 1'000'000;
  EXPECT_NEAR(m.energy_j(cycles),
              m.power_w() * static_cast<double>(cycles) / m.config().clock_hz,
              1e-12);
}

TEST(FpgaModel, AsPlatformIsConsistentWithTheCycleModel) {
  const auto m = central_design(617, 4000, 26);
  const auto p = m.as_platform("test");
  EXPECT_NEAR(p.active_power_w, m.power_w(), 1e-9);
  EXPECT_GT(p.macs_per_second, 0.0);
}

TEST(FpgaModel, WindowIsClampedToFeatureCount) {
  const FpgaModel m(FpgaConfig{}, 5, 100, 2, 50);
  // window > n is clamped; encode touches at most n features per row.
  EXPECT_LE(m.encode_cycles(),
            FpgaModel(FpgaConfig{}, 5, 100, 2, 5).encode_cycles() + 8);
}

TEST(FpgaModel, BramGrowsWithModelSize) {
  const auto small = FpgaModel(FpgaConfig{}, 100, 1000, 2, 10);
  const auto large = FpgaModel(FpgaConfig{}, 100, 8000, 26, 10);
  EXPECT_LT(small.resources().bram_bits_used,
            large.resources().bram_bits_used);
}

}  // namespace
