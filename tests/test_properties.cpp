// Parameterized property sweeps over the paper's main tunables: hypervector
// dimensionality, transmission loss, hierarchy depth, and batch size.
//
// Seed audit: no RNG state is shared between tests. Every dataset comes
// from an explicitly seeded make_synthetic call, every system pins
// SystemConfig::seed, and every loss draw passes its own seed — so each
// test's result is independent of execution order and of which other tests
// run in the same process.
#include <gtest/gtest.h>

#include "baseline/hd_model.hpp"
#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "net/topology.hpp"

namespace {

using namespace edgehd;

data::Dataset shared_dataset() {
  auto ds = data::make_synthetic("prop", 32, 3, {8, 8, 8, 8}, 900, 250, 81,
                                 3.6F, 0.55F, 0.5F);
  data::zscore_normalize(ds);
  return ds;
}

// ------------------------------------------------------- dimensionality

class DimSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DimSweep, CentralizedModelLearnsAtEveryDimension) {
  const auto ds = shared_dataset();
  baseline::HdModelConfig cfg;
  cfg.dim = GetParam();
  baseline::HdModel model(cfg);
  model.fit(ds);
  // Even small D learns; larger D must not be worse than chance by far.
  EXPECT_GT(model.test_accuracy(ds), GetParam() >= 1000 ? 0.7 : 0.5);
}

INSTANTIATE_TEST_SUITE_P(Dims, DimSweep,
                         ::testing::Values(250, 500, 1000, 2000, 4000));

TEST(DimProperty, MoreDimensionsDoNotHurtMuch) {
  const auto ds = shared_dataset();
  auto acc_at = [&](std::size_t d) {
    baseline::HdModelConfig cfg;
    cfg.dim = d;
    baseline::HdModel model(cfg);
    model.fit(ds);
    return model.test_accuracy(ds);
  };
  EXPECT_GT(acc_at(4000), acc_at(250) - 0.05);
}

// ------------------------------------------------------- transmission loss

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, HolographicAccuracyDegradesGracefully) {
  // The trained system is shared across the sweep's parameters (training is
  // the expensive part); that is safe because construction/training use only
  // the explicitly pinned seeds below and the per-call loss draws are
  // stateless in the (seed, dimension) pair, so results do not depend on
  // which parameters ran before in this process.
  static const auto ds = shared_dataset();
  static core::EdgeHdSystem sys = [] {
    core::SystemConfig c;
    c.total_dim = 1600;
    c.batch_size = 4;
    c.seed = 7;  // pinned: do not rely on the SystemConfig default
    core::EdgeHdSystem s(ds, net::Topology::paper_tree(4), c);
    s.train();
    return s;
  }();
  const auto root = sys.topology().root();
  const double clean = sys.accuracy_at_node_with_loss(root, 0.0, 5);
  const double lossy = sys.accuracy_at_node_with_loss(root, GetParam(), 5);
  // Graceful degradation: even heavy loss keeps most of the accuracy
  // (paper: <= 8.3% drop at 80% loss for the holographic encoding).
  EXPECT_GT(lossy, clean - (GetParam() < 0.5 ? 0.08 : 0.25));
}

INSTANTIATE_TEST_SUITE_P(Loss, LossSweep,
                         ::testing::Values(0.1, 0.2, 0.4, 0.6, 0.8));

// ------------------------------------------------------- hierarchy depth

class DepthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DepthSweep, EngineHandlesArbitraryDepths) {
  auto ds = data::make_synthetic("depth", 32, 2, std::vector<std::size_t>(8, 4),
                                 600, 150, 83, 3.8F, 0.5F, 0.4F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 1600;
  cfg.batch_size = 4;
  cfg.min_node_dim = 64;
  cfg.seed = 7;  // pinned: do not rely on the SystemConfig default
  core::EdgeHdSystem sys(
      ds, net::Topology::uniform_depth(8, GetParam()), cfg);
  sys.train();
  EXPECT_EQ(sys.topology().depth(), GetParam());
  EXPECT_GT(sys.accuracy_at_node(sys.topology().root()), 0.55);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep, ::testing::Values(2, 3, 4, 5));

// ------------------------------------------------------- batch size

class BatchSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchSweep, RetrainingWorksAtEveryBatchSize) {
  const auto ds = shared_dataset();
  core::SystemConfig cfg;
  cfg.total_dim = 1200;
  cfg.batch_size = GetParam();
  cfg.seed = 7;  // pinned: do not rely on the SystemConfig default
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  const auto comm = sys.train();
  EXPECT_GT(comm.bytes, 0u);
  EXPECT_GT(sys.accuracy_at_node(sys.topology().root()), 0.6);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweep,
                         ::testing::Values(1, 2, 8, 32, 128));

// ------------------------------------------------------- compression rate

class CompressionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompressionSweep, HigherCompressionMeansFewerQueryBytes) {
  const auto ds = shared_dataset();
  core::SystemConfig base;
  base.total_dim = 1200;
  base.seed = 7;  // pinned: do not rely on the SystemConfig default
  base.compression = 1;
  core::EdgeHdSystem uncompressed(ds, net::Topology::paper_tree(4), base);
  base.compression = GetParam();
  core::EdgeHdSystem compressed(ds, net::Topology::paper_tree(4), base);
  const auto root = compressed.topology().root();
  EXPECT_LT(compressed.query_gather_bytes(root),
            uncompressed.query_gather_bytes(root));
}

INSTANTIATE_TEST_SUITE_P(Rates, CompressionSweep,
                         ::testing::Values(5, 10, 25, 50));

}  // namespace
