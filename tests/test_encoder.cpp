// Unit + property tests for the feature encoders (src/hdc/encoder.*).
#include <gtest/gtest.h>

#include <cmath>

#include "hdc/encoder.hpp"
#include "hdc/random.hpp"

namespace {

using namespace edgehd::hdc;

TEST(RbfEncoder, ShapesAndDeterminism) {
  RbfEncoder enc(10, 512, 42);
  EXPECT_EQ(enc.dim(), 512u);
  EXPECT_EQ(enc.input_dim(), 10u);
  Rng rng(1);
  const auto x = rng.gaussian_vector(10);
  EXPECT_EQ(enc.encode(x), enc.encode(x));
  RbfEncoder enc2(10, 512, 42);
  EXPECT_EQ(enc.encode(x), enc2.encode(x));  // same seed, same map
}

TEST(RbfEncoder, DifferentSeedsGiveDifferentMaps) {
  RbfEncoder a(10, 512, 1);
  RbfEncoder b(10, 512, 2);
  Rng rng(3);
  const auto x = rng.gaussian_vector(10);
  EXPECT_NE(a.encode(x), b.encode(x));
}

TEST(RbfEncoder, RejectsInvalidArguments) {
  EXPECT_THROW(RbfEncoder(0, 10, 1), std::invalid_argument);
  EXPECT_THROW(RbfEncoder(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(RbfEncoder(10, 10, 1, -1.0F), std::invalid_argument);
}

TEST(RbfEncoder, NearbyInputsEncodeMoreSimilarly) {
  RbfEncoder enc(20, 4096, 5);
  Rng rng(6);
  const auto x = rng.gaussian_vector(20);
  auto near = x;
  near[0] += 0.1F;
  auto far = x;
  for (auto& v : far) v += 2.0F;
  const auto hx = enc.encode(x);
  EXPECT_LT(hamming(hx, enc.encode(near)), hamming(hx, enc.encode(far)));
}

/// Eq. 1-2 property: inner products of the cos-form real encodings converge
/// to the Gaussian RBF kernel as D grows.
class KernelApprox : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelApprox, CosFormApproximatesRbfKernel) {
  const std::size_t d = GetParam();
  const std::size_t n = 8;
  const float w = 2.0F;  // length scale
  RbfEncoder enc(n, d, 9, w, RbfForm::kCos);
  Rng rng(10);
  double worst = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto x = rng.gaussian_vector(n);
    auto y = x;
    for (auto& v : y) v += 0.4F * rng.gaussian();
    double dist2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dist2 += static_cast<double>(x[i] - y[i]) * (x[i] - y[i]);
    }
    const double kernel = std::exp(-dist2 / (2.0 * w * w));
    const auto fx = enc.encode_real(x);
    const auto fy = enc.encode_real(y);
    worst = std::max(worst, std::abs(dot(std::span<const float>(fx),
                                         std::span<const float>(fy)) -
                                     kernel));
  }
  // Monte-Carlo error of the RFF estimate scales ~ 1/sqrt(D).
  EXPECT_LT(worst, 6.0 / std::sqrt(static_cast<double>(d)));
}

INSTANTIATE_TEST_SUITE_P(Dims, KernelApprox,
                         ::testing::Values(1024, 4096, 16384));

TEST(SparseRbfEncoder, WindowMatchesSparsity) {
  SparseRbfEncoder enc(100, 256, 1, 0.8F);
  EXPECT_EQ(enc.nonzeros_per_row(), 20u);
  EXPECT_EQ(enc.macs_per_dim(), 20u);
  SparseRbfEncoder dense_ish(100, 256, 1, 0.0F);
  EXPECT_EQ(dense_ish.nonzeros_per_row(), 100u);
  SparseRbfEncoder extreme(10, 256, 1, 0.99F);
  EXPECT_EQ(extreme.nonzeros_per_row(), 1u);  // floor at one non-zero
}

TEST(SparseRbfEncoder, RejectsInvalidSparsity) {
  EXPECT_THROW(SparseRbfEncoder(10, 10, 1, 1.0F), std::invalid_argument);
  EXPECT_THROW(SparseRbfEncoder(10, 10, 1, -0.1F), std::invalid_argument);
}

TEST(SparseRbfEncoder, DeterministicAndDimCorrect) {
  SparseRbfEncoder enc(30, 333, 7);
  Rng rng(8);
  const auto x = rng.gaussian_vector(30);
  const auto h = enc.encode(x);
  EXPECT_EQ(h.size(), 333u);
  EXPECT_EQ(h, enc.encode(x));
}

TEST(SparseRbfEncoder, PreservesNeighborhoodStructure) {
  SparseRbfEncoder enc(20, 4096, 5);
  Rng rng(6);
  const auto x = rng.gaussian_vector(20);
  auto near = x;
  near[3] += 0.1F;
  auto far = x;
  for (auto& v : far) v -= 1.5F;
  const auto hx = enc.encode(x);
  EXPECT_LT(hamming(hx, enc.encode(near)), hamming(hx, enc.encode(far)));
}

TEST(LinearLevelEncoder, QuantizationIsMonotoneInHamming) {
  LinearLevelEncoder enc(1, 2048, 3, 16, -1.0F, 1.0F);
  const std::vector<float> lo{-1.0F};
  const std::vector<float> mid{0.0F};
  const std::vector<float> hi{1.0F};
  const auto hlo = enc.encode(lo);
  EXPECT_LT(hamming(hlo, enc.encode(mid)), hamming(hlo, enc.encode(hi)));
}

TEST(LinearLevelEncoder, ClampsOutOfRangeValues) {
  LinearLevelEncoder enc(2, 512, 3, 8, -1.0F, 1.0F);
  const std::vector<float> inside{-1.0F, 1.0F};
  const std::vector<float> outside{-50.0F, 50.0F};
  EXPECT_EQ(enc.encode(inside), enc.encode(outside));
}

TEST(LinearLevelEncoder, RejectsInvalidArguments) {
  EXPECT_THROW(LinearLevelEncoder(1, 10, 1, 1), std::invalid_argument);
  EXPECT_THROW(LinearLevelEncoder(1, 10, 1, 8, 2.0F, 1.0F),
               std::invalid_argument);
}

TEST(EncoderFactory, ProducesRequestedKinds) {
  for (const auto kind :
       {EncoderKind::kRbfDense, EncoderKind::kRbfSparse,
        EncoderKind::kLinearLevel}) {
    const auto enc = make_encoder(kind, 12, 128, 1);
    ASSERT_NE(enc, nullptr);
    EXPECT_EQ(enc->dim(), 128u);
    EXPECT_EQ(enc->input_dim(), 12u);
  }
}

TEST(Encoder, DefaultEncodeRealMatchesBipolar) {
  LinearLevelEncoder enc(4, 64, 1);
  Rng rng(2);
  const auto x = rng.gaussian_vector(4);
  const auto h = enc.encode(x);
  const auto r = enc.encode_real(x);
  ASSERT_EQ(h.size(), r.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_EQ(static_cast<float>(h[i]), r[i]);
  }
}

}  // namespace
