// Unit + property tests for the feature encoders (src/hdc/encoder.*).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "hdc/encoder.hpp"
#include "hdc/random.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace edgehd::hdc;

TEST(RbfEncoder, ShapesAndDeterminism) {
  RbfEncoder enc(10, 512, 42);
  EXPECT_EQ(enc.dim(), 512u);
  EXPECT_EQ(enc.input_dim(), 10u);
  Rng rng(1);
  const auto x = rng.gaussian_vector(10);
  EXPECT_EQ(enc.encode(x), enc.encode(x));
  RbfEncoder enc2(10, 512, 42);
  EXPECT_EQ(enc.encode(x), enc2.encode(x));  // same seed, same map
}

TEST(RbfEncoder, DifferentSeedsGiveDifferentMaps) {
  RbfEncoder a(10, 512, 1);
  RbfEncoder b(10, 512, 2);
  Rng rng(3);
  const auto x = rng.gaussian_vector(10);
  EXPECT_NE(a.encode(x), b.encode(x));
}

TEST(RbfEncoder, RejectsInvalidArguments) {
  EXPECT_THROW(RbfEncoder(0, 10, 1), std::invalid_argument);
  EXPECT_THROW(RbfEncoder(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(RbfEncoder(10, 10, 1, -1.0F), std::invalid_argument);
}

TEST(RbfEncoder, NearbyInputsEncodeMoreSimilarly) {
  RbfEncoder enc(20, 4096, 5);
  Rng rng(6);
  const auto x = rng.gaussian_vector(20);
  auto near = x;
  near[0] += 0.1F;
  auto far = x;
  for (auto& v : far) v += 2.0F;
  const auto hx = enc.encode(x);
  EXPECT_LT(hamming(hx, enc.encode(near)), hamming(hx, enc.encode(far)));
}

/// Eq. 1-2 property: inner products of the cos-form real encodings converge
/// to the Gaussian RBF kernel as D grows.
class KernelApprox : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelApprox, CosFormApproximatesRbfKernel) {
  const std::size_t d = GetParam();
  const std::size_t n = 8;
  const float w = 2.0F;  // length scale
  RbfEncoder enc(n, d, 9, w, RbfForm::kCos);
  Rng rng(10);
  double worst = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto x = rng.gaussian_vector(n);
    auto y = x;
    for (auto& v : y) v += 0.4F * rng.gaussian();
    double dist2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dist2 += static_cast<double>(x[i] - y[i]) * (x[i] - y[i]);
    }
    const double kernel = std::exp(-dist2 / (2.0 * w * w));
    const auto fx = enc.encode_real(x);
    const auto fy = enc.encode_real(y);
    worst = std::max(worst, std::abs(dot(std::span<const float>(fx),
                                         std::span<const float>(fy)) -
                                     kernel));
  }
  // Monte-Carlo error of the RFF estimate scales ~ 1/sqrt(D).
  EXPECT_LT(worst, 6.0 / std::sqrt(static_cast<double>(d)));
}

INSTANTIATE_TEST_SUITE_P(Dims, KernelApprox,
                         ::testing::Values(1024, 4096, 16384));

TEST(SparseRbfEncoder, WindowMatchesSparsity) {
  SparseRbfEncoder enc(100, 256, 1, 0.8F);
  EXPECT_EQ(enc.nonzeros_per_row(), 20u);
  EXPECT_EQ(enc.macs_per_dim(), 20u);
  SparseRbfEncoder dense_ish(100, 256, 1, 0.0F);
  EXPECT_EQ(dense_ish.nonzeros_per_row(), 100u);
  SparseRbfEncoder extreme(10, 256, 1, 0.99F);
  EXPECT_EQ(extreme.nonzeros_per_row(), 1u);  // floor at one non-zero
}

TEST(SparseRbfEncoder, RejectsInvalidSparsity) {
  EXPECT_THROW(SparseRbfEncoder(10, 10, 1, 1.0F), std::invalid_argument);
  EXPECT_THROW(SparseRbfEncoder(10, 10, 1, -0.1F), std::invalid_argument);
}

TEST(SparseRbfEncoder, DeterministicAndDimCorrect) {
  SparseRbfEncoder enc(30, 333, 7);
  Rng rng(8);
  const auto x = rng.gaussian_vector(30);
  const auto h = enc.encode(x);
  EXPECT_EQ(h.size(), 333u);
  EXPECT_EQ(h, enc.encode(x));
}

TEST(SparseRbfEncoder, PreservesNeighborhoodStructure) {
  SparseRbfEncoder enc(20, 4096, 5);
  Rng rng(6);
  const auto x = rng.gaussian_vector(20);
  auto near = x;
  near[3] += 0.1F;
  auto far = x;
  for (auto& v : far) v -= 1.5F;
  const auto hx = enc.encode(x);
  EXPECT_LT(hamming(hx, enc.encode(near)), hamming(hx, enc.encode(far)));
}

TEST(LinearLevelEncoder, QuantizationIsMonotoneInHamming) {
  LinearLevelEncoder enc(1, 2048, 3, 16, -1.0F, 1.0F);
  const std::vector<float> lo{-1.0F};
  const std::vector<float> mid{0.0F};
  const std::vector<float> hi{1.0F};
  const auto hlo = enc.encode(lo);
  EXPECT_LT(hamming(hlo, enc.encode(mid)), hamming(hlo, enc.encode(hi)));
}

TEST(LinearLevelEncoder, ClampsOutOfRangeValues) {
  LinearLevelEncoder enc(2, 512, 3, 8, -1.0F, 1.0F);
  const std::vector<float> inside{-1.0F, 1.0F};
  const std::vector<float> outside{-50.0F, 50.0F};
  EXPECT_EQ(enc.encode(inside), enc.encode(outside));
}

TEST(LinearLevelEncoder, RejectsInvalidArguments) {
  EXPECT_THROW(LinearLevelEncoder(1, 10, 1, 1), std::invalid_argument);
  EXPECT_THROW(LinearLevelEncoder(1, 10, 1, 8, 2.0F, 1.0F),
               std::invalid_argument);
}

TEST(EncoderFactory, ProducesRequestedKinds) {
  for (const auto kind :
       {EncoderKind::kRbfDense, EncoderKind::kRbfSparse,
        EncoderKind::kLinearLevel}) {
    const auto enc = make_encoder(kind, 12, 128, 1);
    ASSERT_NE(enc, nullptr);
    EXPECT_EQ(enc->dim(), 128u);
    EXPECT_EQ(enc->input_dim(), 12u);
  }
}

// ---- adaptive dimensionality: deterministic projections + regeneration ----

/// The two RFF encoder shapes under test, as (deterministic, materialized)
/// twins sharing one seed. Dim 333 is deliberately not a multiple of the
/// 8-row kernel blocks, so the chunked path exercises a padded tail.
std::vector<std::pair<std::unique_ptr<Encoder>, std::unique_ptr<Encoder>>>
twin_pairs() {
  std::vector<std::pair<std::unique_ptr<Encoder>, std::unique_ptr<Encoder>>> v;
  v.emplace_back(std::make_unique<RbfEncoder>(
                     20, 333, 77, 0.0F, RbfForm::kCosSin,
                     ProjectionMode::kDeterministic),
                 std::make_unique<RbfEncoder>(20, 333, 77, 0.0F,
                                              RbfForm::kCosSin,
                                              ProjectionMode::kMaterialized));
  v.emplace_back(
      std::make_unique<SparseRbfEncoder>(30, 333, 78, 0.8F, 0.0F,
                                         ProjectionMode::kDeterministic),
      std::make_unique<SparseRbfEncoder>(30, 333, 78, 0.8F, 0.0F,
                                         ProjectionMode::kMaterialized));
  return v;
}

TEST(ProjectionModes, DeterministicIsBitIdenticalToMaterializedTwin) {
  for (const auto& [det, mat] : twin_pairs()) {
    Rng rng(5);
    for (int trial = 0; trial < 4; ++trial) {
      const auto x = rng.gaussian_vector(det->input_dim());
      EXPECT_EQ(det->encode(x), mat->encode(x));
      EXPECT_EQ(det->encode_real(x), mat->encode_real(x));
    }
  }
}

TEST(ProjectionModes, ChunkedBatchesAreBitIdenticalAcrossThreadCounts) {
  // The deterministic provider materializes row chunks into per-thread
  // scratch; the result must not depend on how samples land on threads, and
  // must equal both the per-sample path and the resident twin.
  for (const auto& [det, mat] : twin_pairs()) {
    Rng rng(6);
    std::vector<std::vector<float>> xs(37);
    for (auto& x : xs) x = rng.gaussian_vector(det->input_dim());
    std::vector<BipolarHV> expect(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) expect[i] = mat->encode(xs[i]);
    for (const std::size_t workers : {1u, 2u, 8u}) {
      edgehd::runtime::ThreadPool pool(workers);
      EXPECT_EQ(det->encode_batch(xs, pool), expect) << "workers=" << workers;
      EXPECT_EQ(mat->encode_batch(xs, pool), expect) << "workers=" << workers;
    }
  }
}

TEST(ProjectionModes, RegenerationStaysBitIdenticalAndBumpsGenerations) {
  const std::vector<std::uint32_t> dims{0, 8, 9, 100, 332};
  for (const auto& [det, mat] : twin_pairs()) {
    Rng rng(7);
    const auto x = rng.gaussian_vector(det->input_dim());
    const auto before = det->encode(x);
    ASSERT_TRUE(det->supports_regeneration());
    det->regenerate_dimensions(dims);
    mat->regenerate_dimensions(dims);
    const auto after = det->encode(x);
    // Same counters on both sides -> still bit-identical twins.
    EXPECT_EQ(after, mat->encode(x));
    for (const auto d : dims) {
      EXPECT_EQ(det->dimension_generation(d), 1u);
      EXPECT_EQ(mat->dimension_generation(d), 1u);
    }
    EXPECT_EQ(det->dimension_generation(1), 0u);
    // Untouched dimensions encode exactly as before; the regenerated set is
    // a fresh draw (with these seeds, visibly so).
    std::size_t changed = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
      const bool regenerated =
          std::find(dims.begin(), dims.end(), i) != dims.end();
      if (!regenerated) {
        EXPECT_EQ(after[i], before[i]) << "dim " << i;
      } else if (after[i] != before[i]) {
        ++changed;
      }
    }
    EXPECT_GT(changed, 0u);
    // A second bump moves to generation 2 and changes the rows again.
    det->regenerate_dimensions(dims);
    EXPECT_EQ(det->dimension_generation(dims.front()), 2u);
    EXPECT_NE(det->encode(x), after);
  }
}

TEST(ProjectionModes, EncodeDimsMatchesFullEncodeGather) {
  const std::vector<std::uint32_t> dims{2, 8, 15, 16, 200, 331};
  const std::vector<std::uint32_t> regen{8, 200};
  for (const auto& [det, mat] : twin_pairs()) {
    det->regenerate_dimensions(regen);
    mat->regenerate_dimensions(regen);
    Rng rng(8);
    for (const auto* enc : {det.get(), mat.get()}) {
      const auto x = rng.gaussian_vector(enc->input_dim());
      const auto full = enc->encode(x);
      std::vector<std::int8_t> partial(dims.size());
      enc->encode_dims(x, dims, partial);
      for (std::size_t j = 0; j < dims.size(); ++j) {
        EXPECT_EQ(partial[j], full[dims[j]]) << "dim " << dims[j];
      }
    }
  }
}

TEST(ProjectionModes, DeterministicHoldsNoResidentProjection) {
  RbfEncoder det(16, 512, 9, 0.0F, RbfForm::kCosSin,
                 ProjectionMode::kDeterministic);
  RbfEncoder sto(16, 512, 9, 0.0F, RbfForm::kCosSin, ProjectionMode::kStored);
  EXPECT_EQ(det.projection_resident_bytes(), 0u);
  EXPECT_GE(sto.projection_resident_bytes(), 512u * 16 * sizeof(float));
  // Regeneration allocates only the 2-byte generation counters.
  det.regenerate_dimensions(std::vector<std::uint32_t>{1});
  EXPECT_EQ(det.projection_resident_bytes(), 512u * sizeof(std::uint16_t));
  // Out-of-range regeneration is rejected.
  EXPECT_THROW(det.regenerate_dimensions(std::vector<std::uint32_t>{512}),
               std::invalid_argument);
}

TEST(ProjectionModes, LegacyStoredEncodingsAreUnchangedBySeedSplit) {
  // The stored mode must keep drawing the historical mt19937 sequences: an
  // encoder built without a mode argument is the golden-pinned default.
  RbfEncoder legacy(10, 256, 42);
  RbfEncoder stored(10, 256, 42, 0.0F, RbfForm::kCosSin,
                    ProjectionMode::kStored);
  Rng rng(1);
  const auto x = rng.gaussian_vector(10);
  EXPECT_EQ(legacy.encode(x), stored.encode(x));
}

TEST(EncoderFactory, ForwardsProjectionMode) {
  for (const auto kind : {EncoderKind::kRbfDense, EncoderKind::kRbfSparse}) {
    const auto det =
        make_encoder(kind, 12, 128, 1, ProjectionMode::kDeterministic);
    const auto mat =
        make_encoder(kind, 12, 128, 1, ProjectionMode::kMaterialized);
    EXPECT_TRUE(det->supports_regeneration());
    EXPECT_EQ(det->projection_resident_bytes(), 0u);
    Rng rng(2);
    const auto x = rng.gaussian_vector(12);
    EXPECT_EQ(det->encode(x), mat->encode(x));
  }
  // The level encoder has no projection to derive; it ignores the mode and
  // reports no regeneration support.
  const auto lvl =
      make_encoder(EncoderKind::kLinearLevel, 12, 128, 1,
                   ProjectionMode::kDeterministic);
  EXPECT_FALSE(lvl->supports_regeneration());
  EXPECT_THROW(lvl->regenerate_dimensions(std::vector<std::uint32_t>{0}),
               std::logic_error);
}

TEST(Encoder, DefaultEncodeRealMatchesBipolar) {
  LinearLevelEncoder enc(4, 64, 1);
  Rng rng(2);
  const auto x = rng.gaussian_vector(4);
  const auto h = enc.encode(x);
  const auto r = enc.encode_real(x);
  ASSERT_EQ(h.size(), r.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_EQ(static_cast<float>(h[i]), r[i]);
  }
}

}  // namespace
