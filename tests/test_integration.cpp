// End-to-end integration tests crossing module boundaries: the full EdgeHD
// pipeline against the centralized baselines, mirroring the evaluation's
// qualitative claims on small seeded workloads.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "baseline/hd_model.hpp"
#include "baseline/mlp.hpp"
#include "core/cost_model.hpp"
#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "hdc/random.hpp"
#include "net/fault.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace edgehd;

TEST(Integration, HierarchicalCentralTracksCentralizedWithinMargin) {
  auto ds = data::make_synthetic("i1", 40, 3, {10, 10, 10, 10}, 1500, 400,
                                 61, 3.8F, 0.5F, 0.5F);
  data::zscore_normalize(ds);

  baseline::HdModelConfig cc;
  cc.dim = 2000;
  baseline::HdModel centralized(cc);
  centralized.fit(ds);

  core::SystemConfig cfg;
  cfg.total_dim = 2000;
  cfg.batch_size = 4;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  sys.train();

  const double central_acc = centralized.test_accuracy(ds);
  const double hier_acc = sys.accuracy_at_node(sys.topology().root());
  EXPECT_GT(central_acc, 0.8);
  // Table II claim: the hierarchy's central node stays close to the
  // centralized model (paper: within ~0.5%; we allow a wider engineering
  // margin on the scaled-down synthetic data).
  EXPECT_GT(hier_acc, central_acc - 0.15);
}

TEST(Integration, OnlineLearningRecoversWeakOfflineModel) {
  auto ds = data::make_synthetic("i2", 24, 2, {12, 12}, 2000, 400, 63, 3.4F,
                                 0.55F, 0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 1000;
  cfg.batch_size = 4;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(2), cfg);

  std::vector<std::size_t> tiny_offline(60);
  std::iota(tiny_offline.begin(), tiny_offline.end(), 0);
  sys.train(tiny_offline);
  const auto root = sys.topology().root();
  const double offline_acc = sys.accuracy_at_node(root);

  const auto leaves = sys.topology().leaves();
  for (std::size_t i = 60; i < ds.train_size(); ++i) {
    sys.online_serve(ds.train_x[i], ds.train_y[i], leaves[i % leaves.size()]);
    if ((i - 60) % 250 == 249) sys.propagate_residuals();
  }
  sys.propagate_residuals();
  const double online_acc = sys.accuracy_at_node(root);
  // Figure 9 claim: negative-only feedback keeps the model healthy; it must
  // not collapse the offline model and must stay clearly above chance.
  EXPECT_GT(online_acc, 0.7);
  EXPECT_GT(online_acc, offline_acc - 0.05);
}

TEST(Integration, ConfidenceRoutingSendsHardQueriesUp) {
  auto ds = data::make_synthetic("i3", 40, 4, {10, 10, 10, 10}, 1500, 400,
                                 65, 4.2F, 0.45F, 0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 2000;
  cfg.batch_size = 4;
  cfg.confidence_threshold = 0.55;  // keep a healthy local-serving share
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  sys.train();

  const auto start = sys.topology().leaves().front();
  std::size_t local_correct = 0, local_n = 0;
  std::size_t routed_correct = 0;
  for (std::size_t i = 0; i < ds.test_size(); ++i) {
    const auto r = sys.infer_routed(ds.test_x[i], start);
    if (r.level == 1) {
      ++local_n;
      if (r.label == ds.test_y[i]) ++local_correct;
    }
    if (r.label == ds.test_y[i]) ++routed_correct;
  }
  ASSERT_GT(local_n, 10u);
  const double local_acc =
      static_cast<double>(local_correct) / static_cast<double>(local_n);
  const double routed_acc =
      static_cast<double>(routed_correct) / static_cast<double>(ds.test_size());
  // Queries the end node keeps are ones it answers well; overall routed
  // accuracy must hold up.
  EXPECT_GT(local_acc, 0.7);
  EXPECT_GT(routed_acc, 0.65);
}

TEST(Integration, CostModelAndEngineAgreeOnCommunicationOrdering) {
  // Both the analytic model and the executable engine must agree that
  // EdgeHD training moves fewer bytes than shipping raw features.
  // Batch amortization needs a reasonable samples-to-batches ratio, as at
  // paper scale; tiny datasets with tiny batches would not compress.
  auto ds = data::make_synthetic("i4", 30, 2, {10, 10, 10}, 2000, 100, 67,
                                 3.4F, 0.6F, 0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 1200;
  cfg.batch_size = 32;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(3), cfg);
  const auto comm = sys.train();
  const std::uint64_t raw_bytes =
      ds.train_size() * ds.num_features * sizeof(float);
  EXPECT_LT(comm.bytes, raw_bytes);
}

TEST(Integration, DnnDegradesFasterThanHolographicUnderLoss) {
  auto ds = data::make_synthetic("i5", 32, 2, {8, 8, 8, 8}, 1200, 300, 69,
                                 3.6F, 0.5F, 0.4F);
  data::zscore_normalize(ds);

  baseline::MlpConfig mc;
  mc.epochs = 15;
  baseline::Mlp mlp(mc);
  mlp.fit(ds);

  core::SystemConfig cfg;
  cfg.total_dim = 1600;
  cfg.batch_size = 4;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  sys.train();
  const auto root = sys.topology().root();

  // 60% loss: zero features for the DNN, zero dimensions for EdgeHD.
  hdc::Rng rng(70);
  std::size_t dnn_correct = 0;
  for (std::size_t i = 0; i < ds.test_size(); ++i) {
    auto x = ds.test_x[i];
    for (auto& v : x) {
      if (rng.bernoulli(0.6)) v = 0.0F;
    }
    if (mlp.predict(x) == ds.test_y[i]) ++dnn_correct;
  }
  const double dnn_drop =
      mlp.test_accuracy(ds) -
      static_cast<double>(dnn_correct) / static_cast<double>(ds.test_size());
  const double hd_drop = sys.accuracy_at_node_with_loss(root, 0.0, 71) -
                         sys.accuracy_at_node_with_loss(root, 0.6, 71);
  // Figure 12 claim.
  EXPECT_LT(hd_drop, dnn_drop + 0.03);
}

// ---- cross-layer observability invariants ---------------------------------
// Every registry hook sits directly beside the first-party accounting it
// shadows (NodeStats in the simulator, RoutedResult in the core), so the two
// must agree *exactly* — any divergence means a hook was moved, duplicated
// or dropped.

TEST(ObsInvariants, SimulatorStatsMatchRegistryCounters) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out (-DEDGEHD_OBS=OFF)";
  }
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();

  const auto topo = net::Topology::paper_tree(4);
  net::FaultPlan plan(21);
  const auto leaves = topo.leaves();
  for (const auto leaf : leaves) plan.loss(leaf, 0.35);
  plan.outage(leaves.front(), 0, 2 * net::kMillisecond);
  net::Simulator sim(topo, net::medium(net::MediumKind::kWifi80211n));
  sim.set_fault_plan(plan);
  for (const auto leaf : leaves) {
    for (int i = 0; i < 6; ++i) {
      sim.send_reliable(leaf, topo.parent(leaf), 700 + 50 * i);
    }
    sim.send(leaf, topo.parent(leaf), 400);
  }
  sim.run();

  net::NodeStats total;
  for (net::NodeId n = 0; n < topo.num_nodes(); ++n) {
    const auto& s = sim.stats(n);
    total.bytes_tx += s.bytes_tx;
    total.bytes_rx += s.bytes_rx;
    total.packets_tx += s.packets_tx;
    total.packets_rx += s.packets_rx;
    total.packets_dropped += s.packets_dropped;
    total.sends_suppressed += s.sends_suppressed;
    total.retransmissions += s.retransmissions;
    total.bytes_retransmitted += s.bytes_retransmitted;
  }
  ASSERT_GT(total.packets_dropped + total.retransmissions, 0u)
      << "fault plan produced no faults; the invariant would be vacuous";

  EXPECT_EQ(reg.counter_value("net.bytes_tx"), total.bytes_tx);
  EXPECT_EQ(reg.counter_value("net.bytes_rx"), total.bytes_rx);
  EXPECT_EQ(reg.counter_value("net.packets_tx"), total.packets_tx);
  EXPECT_EQ(reg.counter_value("net.packets_rx"), total.packets_rx);
  EXPECT_EQ(reg.counter_value("net.packets_dropped"), total.packets_dropped);
  EXPECT_EQ(reg.counter_value("net.sends_suppressed"),
            total.sends_suppressed);
  EXPECT_EQ(reg.counter_value("net.retransmissions"), total.retransmissions);
  EXPECT_EQ(reg.counter_value("net.bytes_retransmitted"),
            total.bytes_retransmitted);

  // Per-link byte counters must partition the aggregates exactly.
  std::uint64_t link_tx = 0, link_rx = 0, link_retx = 0;
  for (net::NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (n == topo.root()) continue;
    const std::string base = "net.link." + std::to_string(n) + ".";
    link_tx += reg.counter_value(base + "tx_bytes");
    link_rx += reg.counter_value(base + "rx_bytes");
    link_retx += reg.counter_value(base + "retx_bytes");
  }
  EXPECT_EQ(link_tx, total.bytes_tx);
  EXPECT_EQ(link_rx, total.bytes_rx);
  EXPECT_EQ(link_retx, total.bytes_retransmitted);
}

TEST(ObsInvariants, RoutedResultAccountingMatchesRegistry) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out (-DEDGEHD_OBS=OFF)";
  }
  auto ds = data::make_synthetic("obs-inv", 30, 3, {10, 10, 10}, 800, 200,
                                 77, 3.8F, 0.5F, 0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 1200;
  cfg.batch_size = 8;
  cfg.num_threads = 1;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(3), cfg);
  sys.train();
  // Lossy links make retry_bytes non-zero so the retry accounting is
  // exercised, not just trivially equal at zero.
  net::FaultPlan plan(31);
  for (const auto leaf : sys.topology().leaves()) plan.loss(leaf, 0.3);
  sys.set_fault_plan(plan);

  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  const auto start = sys.topology().leaves().front();
  std::uint64_t bytes = 0, retry_bytes = 0;
  std::size_t escalations = 0, served = 0;
  for (std::size_t i = 0; i < ds.test_size(); ++i) {
    const auto r = sys.infer_routed(ds.test_x[i], start);
    if (r.served()) ++served;
    bytes += r.bytes;
    retry_bytes += r.retry_bytes;
    if (r.served()) escalations += r.level - 1;
  }
  ASSERT_GT(retry_bytes, 0u)
      << "lossy links produced no retry bytes; the invariant is vacuous";

  EXPECT_EQ(reg.counter_value("core.routed.queries"), ds.test_size());
  EXPECT_EQ(reg.counter_value("core.routed.bytes"), bytes);
  EXPECT_EQ(reg.counter_value("core.routed.retry_bytes"), retry_bytes);
  EXPECT_EQ(reg.counter_value("core.routed.escalations"), escalations);

  // Per-node serve counters must partition the query count.
  std::uint64_t serves = 0;
  for (net::NodeId n = 0; n < sys.topology().num_nodes(); ++n) {
    serves += reg.counter_value("core.routed.serves.node" + std::to_string(n));
  }
  EXPECT_EQ(serves, served);
}

// ---- adaptive dimensionality across the hierarchy --------------------------

TEST(Integration, DimensionRegenerationIsIdenticalAcrossProviders) {
  // The zero-resident deterministic provider and its materialized twin must
  // drive the *entire* pipeline — encode, train, score, regenerate, patch
  // propagation, retrain — to identical models at every node, in both
  // aggregation modes. Accuracy and mean confidence are continuous in the
  // model state, so exact equality at every node is a model-identity check.
  for (const auto agg : {hier::AggregationMode::kConcatenation,
                         hier::AggregationMode::kHolographic}) {
    auto run = [agg](hdc::ProjectionMode mode) {
      auto ds = data::make_synthetic("i7", 30, 3, {10, 10, 10}, 600, 150, 81,
                                     3.6F, 0.5F, 0.5F);
      data::zscore_normalize(ds);
      core::SystemConfig cfg;
      cfg.total_dim = 900;
      cfg.batch_size = 4;
      cfg.projection_mode = mode;
      cfg.aggregation = agg;
      core::EdgeHdSystem sys(ds, net::Topology::paper_tree(3), cfg);
      sys.train_initial();
      sys.retrain_batches();
      sys.regenerate_dimensions(40);
      sys.retrain_batches();
      std::vector<double> state;
      for (net::NodeId n = 0; n < sys.topology().num_nodes(); ++n) {
        state.push_back(sys.accuracy_at_node(n));
        state.push_back(sys.mean_confidence_at_node(n));
      }
      return state;
    };
    EXPECT_EQ(run(hdc::ProjectionMode::kDeterministic),
              run(hdc::ProjectionMode::kMaterialized))
        << "aggregation mode " << static_cast<int>(agg);
  }
}

TEST(Integration, RegenerationShipsPatchesNotModelsAndKeepsAccuracy) {
  auto ds = data::make_synthetic("i8", 30, 3, {10, 10, 10}, 900, 250, 83,
                                 3.6F, 0.5F, 0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 900;
  cfg.batch_size = 4;
  cfg.projection_mode = hdc::ProjectionMode::kDeterministic;
  cfg.aggregation = hier::AggregationMode::kConcatenation;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(3), cfg);
  const auto initial = sys.train_initial();
  sys.retrain_batches();
  const auto root = sys.topology().root();
  const double before = sys.accuracy_at_node(root);

  const std::size_t k = sys.node_dim(root) / 10;
  const auto patch = sys.regenerate_dimensions(k);
  sys.retrain_batches();
  const double after = sys.accuracy_at_node(root);

  // The regeneration session moved something, and far less than the initial
  // full-model exchange; replacing the worst-scored 10% then retraining must
  // not dent the model.
  EXPECT_GT(patch.messages, 0u);
  EXPECT_GT(patch.bytes, 0u);
  EXPECT_LT(patch.bytes, initial.bytes / 2);
  EXPECT_GT(after, before - 0.05);
}

TEST(Integration, ConfigDrivenRegenerationRunsInsideTrain) {
  // With regen_dims set, train() folds regenerate-retrain rounds in; the
  // result must stay a healthy model without any extra calls.
  auto ds = data::make_synthetic("i9", 24, 2, {12, 12}, 700, 200, 85, 3.4F,
                                 0.55F, 0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 800;
  cfg.batch_size = 4;
  cfg.projection_mode = hdc::ProjectionMode::kDeterministic;
  cfg.regen_dims = 32;
  cfg.regen_rounds = 2;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(2), cfg);
  sys.train();
  EXPECT_GT(sys.accuracy_at_node(sys.topology().root()), 0.7);
}

TEST(Integration, DeterministicEndToEnd) {
  auto make = [] {
    auto ds = data::make_synthetic("i6", 20, 2, {10, 10}, 300, 80, 73, 3.4F,
                                   0.6F, 0.5F);
    data::zscore_normalize(ds);
    core::SystemConfig cfg;
    cfg.total_dim = 800;
    cfg.batch_size = 4;
    core::EdgeHdSystem sys(ds, net::Topology::paper_tree(2), cfg);
    sys.train();
    return sys.accuracy_at_node(sys.topology().root());
  };
  EXPECT_EQ(make(), make());
}

}  // namespace
