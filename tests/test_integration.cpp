// End-to-end integration tests crossing module boundaries: the full EdgeHD
// pipeline against the centralized baselines, mirroring the evaluation's
// qualitative claims on small seeded workloads.
#include <gtest/gtest.h>

#include <numeric>

#include "baseline/hd_model.hpp"
#include "baseline/mlp.hpp"
#include "core/cost_model.hpp"
#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "hdc/random.hpp"
#include "net/topology.hpp"

namespace {

using namespace edgehd;

TEST(Integration, HierarchicalCentralTracksCentralizedWithinMargin) {
  auto ds = data::make_synthetic("i1", 40, 3, {10, 10, 10, 10}, 1500, 400,
                                 61, 3.8F, 0.5F, 0.5F);
  data::zscore_normalize(ds);

  baseline::HdModelConfig cc;
  cc.dim = 2000;
  baseline::HdModel centralized(cc);
  centralized.fit(ds);

  core::SystemConfig cfg;
  cfg.total_dim = 2000;
  cfg.batch_size = 4;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  sys.train();

  const double central_acc = centralized.test_accuracy(ds);
  const double hier_acc = sys.accuracy_at_node(sys.topology().root());
  EXPECT_GT(central_acc, 0.8);
  // Table II claim: the hierarchy's central node stays close to the
  // centralized model (paper: within ~0.5%; we allow a wider engineering
  // margin on the scaled-down synthetic data).
  EXPECT_GT(hier_acc, central_acc - 0.15);
}

TEST(Integration, OnlineLearningRecoversWeakOfflineModel) {
  auto ds = data::make_synthetic("i2", 24, 2, {12, 12}, 2000, 400, 63, 3.4F,
                                 0.55F, 0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 1000;
  cfg.batch_size = 4;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(2), cfg);

  std::vector<std::size_t> tiny_offline(60);
  std::iota(tiny_offline.begin(), tiny_offline.end(), 0);
  sys.train(tiny_offline);
  const auto root = sys.topology().root();
  const double offline_acc = sys.accuracy_at_node(root);

  const auto leaves = sys.topology().leaves();
  for (std::size_t i = 60; i < ds.train_size(); ++i) {
    sys.online_serve(ds.train_x[i], ds.train_y[i], leaves[i % leaves.size()]);
    if ((i - 60) % 250 == 249) sys.propagate_residuals();
  }
  sys.propagate_residuals();
  const double online_acc = sys.accuracy_at_node(root);
  // Figure 9 claim: negative-only feedback keeps the model healthy; it must
  // not collapse the offline model and must stay clearly above chance.
  EXPECT_GT(online_acc, 0.7);
  EXPECT_GT(online_acc, offline_acc - 0.05);
}

TEST(Integration, ConfidenceRoutingSendsHardQueriesUp) {
  auto ds = data::make_synthetic("i3", 40, 4, {10, 10, 10, 10}, 1500, 400,
                                 65, 4.2F, 0.45F, 0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 2000;
  cfg.batch_size = 4;
  cfg.confidence_threshold = 0.55;  // keep a healthy local-serving share
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  sys.train();

  const auto start = sys.topology().leaves().front();
  std::size_t local_correct = 0, local_n = 0;
  std::size_t routed_correct = 0;
  for (std::size_t i = 0; i < ds.test_size(); ++i) {
    const auto r = sys.infer_routed(ds.test_x[i], start);
    if (r.level == 1) {
      ++local_n;
      if (r.label == ds.test_y[i]) ++local_correct;
    }
    if (r.label == ds.test_y[i]) ++routed_correct;
  }
  ASSERT_GT(local_n, 10u);
  const double local_acc =
      static_cast<double>(local_correct) / static_cast<double>(local_n);
  const double routed_acc =
      static_cast<double>(routed_correct) / static_cast<double>(ds.test_size());
  // Queries the end node keeps are ones it answers well; overall routed
  // accuracy must hold up.
  EXPECT_GT(local_acc, 0.7);
  EXPECT_GT(routed_acc, 0.65);
}

TEST(Integration, CostModelAndEngineAgreeOnCommunicationOrdering) {
  // Both the analytic model and the executable engine must agree that
  // EdgeHD training moves fewer bytes than shipping raw features.
  // Batch amortization needs a reasonable samples-to-batches ratio, as at
  // paper scale; tiny datasets with tiny batches would not compress.
  auto ds = data::make_synthetic("i4", 30, 2, {10, 10, 10}, 2000, 100, 67,
                                 3.4F, 0.6F, 0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 1200;
  cfg.batch_size = 32;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(3), cfg);
  const auto comm = sys.train();
  const std::uint64_t raw_bytes =
      ds.train_size() * ds.num_features * sizeof(float);
  EXPECT_LT(comm.bytes, raw_bytes);
}

TEST(Integration, DnnDegradesFasterThanHolographicUnderLoss) {
  auto ds = data::make_synthetic("i5", 32, 2, {8, 8, 8, 8}, 1200, 300, 69,
                                 3.6F, 0.5F, 0.4F);
  data::zscore_normalize(ds);

  baseline::MlpConfig mc;
  mc.epochs = 15;
  baseline::Mlp mlp(mc);
  mlp.fit(ds);

  core::SystemConfig cfg;
  cfg.total_dim = 1600;
  cfg.batch_size = 4;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  sys.train();
  const auto root = sys.topology().root();

  // 60% loss: zero features for the DNN, zero dimensions for EdgeHD.
  hdc::Rng rng(70);
  std::size_t dnn_correct = 0;
  for (std::size_t i = 0; i < ds.test_size(); ++i) {
    auto x = ds.test_x[i];
    for (auto& v : x) {
      if (rng.bernoulli(0.6)) v = 0.0F;
    }
    if (mlp.predict(x) == ds.test_y[i]) ++dnn_correct;
  }
  const double dnn_drop =
      mlp.test_accuracy(ds) -
      static_cast<double>(dnn_correct) / static_cast<double>(ds.test_size());
  const double hd_drop = sys.accuracy_at_node_with_loss(root, 0.0, 71) -
                         sys.accuracy_at_node_with_loss(root, 0.6, 71);
  // Figure 12 claim.
  EXPECT_LT(hd_drop, dnn_drop + 0.03);
}

TEST(Integration, DeterministicEndToEnd) {
  auto make = [] {
    auto ds = data::make_synthetic("i6", 20, 2, {10, 10}, 300, 80, 73, 3.4F,
                                   0.6F, 0.5F);
    data::zscore_normalize(ds);
    core::SystemConfig cfg;
    cfg.total_dim = 800;
    cfg.batch_size = 4;
    core::EdgeHdSystem sys(ds, net::Topology::paper_tree(2), cfg);
    sys.train();
    return sys.accuracy_at_node(sys.topology().root());
  };
  EXPECT_EQ(make(), make());
}

}  // namespace
