// Unit tests for the class-hypervector classifier (src/hdc/classifier.*).
#include <gtest/gtest.h>

#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "hdc/random.hpp"

namespace {

using namespace edgehd::hdc;

/// Two well-separated clusters in hyperspace, built from prototypes with
/// per-sample bit noise.
struct TwoClusters {
  std::vector<BipolarHV> hvs;
  std::vector<std::size_t> labels;
  std::vector<BipolarHV> prototypes;

  explicit TwoClusters(std::size_t dim, std::size_t per_class,
                       double flip = 0.15, std::uint64_t seed = 1) {
    Rng rng(seed);
    for (int c = 0; c < 2; ++c) prototypes.push_back(rng.sign_vector(dim));
    for (int c = 0; c < 2; ++c) {
      for (std::size_t i = 0; i < per_class; ++i) {
        auto hv = prototypes[c];
        for (auto& v : hv) {
          if (rng.bernoulli(flip)) v = static_cast<std::int8_t>(-v);
        }
        hvs.push_back(std::move(hv));
        labels.push_back(c);
      }
    }
  }
};

TEST(Classifier, RejectsDegenerateShapes) {
  EXPECT_THROW(HDClassifier(1, 100), std::invalid_argument);
  EXPECT_THROW(HDClassifier(2, 0), std::invalid_argument);
}

TEST(Classifier, LearnsSeparableClusters) {
  TwoClusters data(1024, 40);
  HDClassifier clf(2, 1024);
  for (std::size_t i = 0; i < data.hvs.size(); ++i) {
    clf.add_sample(data.labels[i], data.hvs[i]);
  }
  EXPECT_EQ(clf.accuracy(data.hvs, data.labels), 1.0);
}

TEST(Classifier, RetrainReducesTrainingErrors) {
  // Overlapping clusters: initial bundling misclassifies some samples.
  TwoClusters data(256, 60, 0.42, 3);
  HDClassifier clf(2, 256);
  for (std::size_t i = 0; i < data.hvs.size(); ++i) {
    clf.add_sample(data.labels[i], data.hvs[i]);
  }
  const std::size_t before = clf.retrain_epoch(data.hvs, data.labels);
  std::size_t after = before;
  for (int e = 0; e < 19 && after > 0; ++e) {
    after = clf.retrain_epoch(data.hvs, data.labels);
  }
  EXPECT_LE(after, before);
}

TEST(Classifier, PredictionReportsValidConfidence) {
  TwoClusters data(512, 20);
  HDClassifier clf(2, 512);
  for (std::size_t i = 0; i < data.hvs.size(); ++i) {
    clf.add_sample(data.labels[i], data.hvs[i]);
  }
  const auto p = clf.predict(data.hvs.front());
  EXPECT_LT(p.label, 2u);
  EXPECT_GT(p.confidence, 0.0);
  EXPECT_LE(p.confidence, 1.0);
  EXPECT_EQ(p.similarities.size(), 2u);
}

TEST(Classifier, ConfidenceHigherOnCleanSamples) {
  TwoClusters data(2048, 30, 0.1, 5);
  HDClassifier clf(2, 2048);
  for (std::size_t i = 0; i < data.hvs.size(); ++i) {
    clf.add_sample(data.labels[i], data.hvs[i]);
  }
  // A prototype is maximally clean; a heavily corrupted sample is ambiguous.
  Rng rng(9);
  auto noisy = data.prototypes[0];
  for (auto& v : noisy) {
    if (rng.bernoulli(0.45)) v = static_cast<std::int8_t>(-v);
  }
  EXPECT_GT(clf.predict(data.prototypes[0]).confidence,
            clf.predict(noisy).confidence);
}

TEST(Classifier, SoftmaxIsNormalizedAndOrderPreserving) {
  const std::vector<double> sims{0.1, 0.5, 0.3};
  const auto p = softmax(sims, 10.0);
  double sum = 0.0;
  for (const double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(p[1], p[2]);
  EXPECT_GT(p[2], p[0]);
}

TEST(Classifier, NegativeFeedbackAccumulatesInResiduals) {
  HDClassifier clf(2, 64);
  Rng rng(2);
  const auto q = rng.sign_vector(64);
  EXPECT_FALSE(clf.has_pending_residuals());
  clf.feedback_negative(0, q);
  EXPECT_TRUE(clf.has_pending_residuals());
}

TEST(Classifier, ApplyResidualsSubtractsFromModel) {
  HDClassifier clf(2, 8);
  const BipolarHV q(8, 1);
  clf.add_sample(0, q);
  clf.add_sample(0, q);
  clf.feedback_negative(0, q);
  clf.apply_residuals();
  EXPECT_FALSE(clf.has_pending_residuals());
  // Model had +2 per dim, residual removes 1.
  for (const auto v : clf.class_accumulator(0)) EXPECT_EQ(v, 1);
}

TEST(Classifier, TakeResidualsMovesAndClears) {
  HDClassifier clf(2, 8);
  const BipolarHV q(8, 1);
  clf.feedback_negative(1, q);
  const auto res = clf.take_residuals();
  ASSERT_EQ(res.size(), 2u);
  for (const auto v : res[1]) EXPECT_EQ(v, 1);
  EXPECT_FALSE(clf.has_pending_residuals());
}

TEST(Classifier, ExternalResidualsValidateShape) {
  HDClassifier clf(2, 8);
  std::vector<AccumHV> wrong_count(1, AccumHV(8, 0));
  EXPECT_THROW(clf.apply_external_residuals(wrong_count),
               std::invalid_argument);
}

TEST(Classifier, NegativeFeedbackImprovesSubsequentPrediction) {
  // Model biased toward class 0; repeated rejections of class 0 on a query
  // eventually flip the prediction.
  HDClassifier clf(2, 512);
  Rng rng(4);
  const auto proto0 = rng.sign_vector(512);
  const auto proto1 = rng.sign_vector(512);
  for (int i = 0; i < 10; ++i) {
    clf.add_sample(0, proto0);
    clf.add_sample(1, proto1);
  }
  // Query near class 0's prototype but "wrong" per the user.
  auto q = proto0;
  for (std::size_t i = 0; i < 100; ++i) q[i] = proto1[i];
  ASSERT_EQ(clf.predict(q).label, 0u);
  for (int round = 0; round < 30 && clf.predict(q).label == 0; ++round) {
    clf.feedback_negative(0, q);
    clf.apply_residuals();
  }
  EXPECT_EQ(clf.predict(q).label, 1u);
}

TEST(Classifier, MergeAddsAccumulators) {
  HDClassifier a(2, 4);
  HDClassifier b(2, 4);
  const BipolarHV q(4, 1);
  a.add_sample(0, q);
  b.add_sample(0, q);
  a.merge(b);
  for (const auto v : a.class_accumulator(0)) EXPECT_EQ(v, 2);
  HDClassifier c(3, 4);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Classifier, AccumulatorAccessValidates) {
  HDClassifier clf(2, 4);
  EXPECT_THROW(clf.class_accumulator(5), std::out_of_range);
  EXPECT_THROW(clf.set_class_accumulator(0, AccumHV(3, 0)),
               std::invalid_argument);
  clf.set_class_accumulator(0, AccumHV{1, 2, 3, 4});
  EXPECT_EQ(clf.class_accumulator(0), (AccumHV{1, 2, 3, 4}));
}

TEST(Classifier, EncoderPlusClassifierSolvesNonLinearProblem) {
  // XOR in 2-D: linearly inseparable; the RBF encoder makes it separable by
  // a class-hypervector model (the paper's core encoding claim).
  RbfEncoder enc(2, 4096, 11, 1.0F);
  HDClassifier clf(2, 4096);
  Rng rng(12);
  std::vector<BipolarHV> hvs;
  std::vector<std::size_t> labels;
  for (int i = 0; i < 200; ++i) {
    const float x = rng.gaussian();
    const float y = rng.gaussian();
    const std::vector<float> f{x, y};
    hvs.push_back(enc.encode(f));
    labels.push_back((x > 0) == (y > 0) ? 0u : 1u);
  }
  for (std::size_t i = 0; i < hvs.size(); ++i) clf.add_sample(labels[i], hvs[i]);
  clf.retrain(hvs, labels);
  EXPECT_GT(clf.accuracy(hvs, labels), 0.85);
}

}  // namespace
