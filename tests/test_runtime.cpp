// Tests for the src/runtime execution engine: thread-pool stress, the
// determinism contract of parallel_for / parallel_reduce (bit-identical
// results for any worker count), and the batch overloads threaded through
// the encoder / classifier / EdgeHdSystem stack.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <future>
#include <numeric>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "hdc/random.hpp"
#include "hdc/spatial_encoder.hpp"
#include "net/topology.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace edgehd;
using runtime::BatchExecutor;
using runtime::ThreadPool;

/// Worker counts every determinism test sweeps, per the issue spec.
constexpr std::size_t kWorkerSweep[] = {1, 2, 8};

TEST(ThreadPool, ResolvesEnvOverride) {
  ASSERT_EQ(setenv("EDGEHD_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_worker_count(), 3u);
  ASSERT_EQ(setenv("EDGEHD_THREADS", "0", 1), 0);  // invalid: non-positive
  EXPECT_GE(ThreadPool::default_worker_count(), 1u);
  ASSERT_EQ(setenv("EDGEHD_THREADS", "junk", 1), 0);
  EXPECT_GE(ThreadPool::default_worker_count(), 1u);
  ASSERT_EQ(setenv("EDGEHD_THREADS", "999999", 1), 0);  // clamps to the cap
  EXPECT_EQ(ThreadPool::default_worker_count(), ThreadPool::kMaxWorkers);
  ASSERT_EQ(unsetenv("EDGEHD_THREADS"), 0);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  constexpr int kTasks = 2000;
  std::atomic<int> ran{0};
  std::promise<void> all_done;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      if (ran.fetch_add(1) + 1 == kTasks) all_done.set_value();
    });
  }
  all_done.get_future().wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPool, StressManyWavesOfSmallTasks) {
  ThreadPool pool(8);
  std::atomic<std::size_t> sum{0};
  for (int wave = 0; wave < 50; ++wave) {
    runtime::parallel_for(
        pool, 1000, [&](std::size_t i) { sum.fetch_add(i); }, 7);
  }
  EXPECT_EQ(sum.load(), 50u * (999u * 1000u / 2u));
}

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(10007, 0);
  runtime::parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(Parallel, FloatReduceIsBitIdenticalAcrossWorkerCounts) {
  // Floating-point addition is not associative, so this only holds because
  // chunk boundaries and combine order are worker-independent.
  hdc::Rng rng(42);
  const auto values = rng.gaussian_vector(50021);
  auto reduce_with = [&](std::size_t workers) {
    ThreadPool pool(workers);
    return runtime::parallel_reduce(
        pool, values.size(), 0.0F,
        [&](std::size_t begin, std::size_t end) {
          float s = 0.0F;
          for (std::size_t i = begin; i < end; ++i) {
            s += std::sin(values[i]) * values[i];
          }
          return s;
        },
        [](float a, float b) { return a + b; });
  };
  const float reference = reduce_with(1);
  for (std::size_t workers : kWorkerSweep) {
    EXPECT_EQ(reduce_with(workers), reference) << workers << " workers";
  }
}

TEST(BatchExecutor, MapPreservesInputOrder) {
  ThreadPool pool(8);
  const BatchExecutor exec(pool);
  const auto out =
      exec.map(5000, [](std::size_t i) { return 3 * i + 1; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 3 * i + 1);
  }
}

TEST(BatchExecutor, CountIfMatchesSerial) {
  ThreadPool pool(8);
  const BatchExecutor exec(pool);
  const auto count =
      exec.count_if(10000, [](std::size_t i) { return i % 3 == 0; });
  EXPECT_EQ(count, 3334u);
}

// ---- batch overloads through the hdc stack --------------------------------

std::vector<std::vector<float>> random_batch(std::size_t n, std::size_t dim,
                                             std::uint64_t seed) {
  hdc::Rng rng(seed);
  std::vector<std::vector<float>> out(n);
  for (auto& x : out) x = rng.gaussian_vector(dim);
  return out;
}

TEST(RuntimeDeterminism, EncodeBatchMatchesSerialForAllWorkerCounts) {
  const auto batch = random_batch(64, 20, 7);
  for (auto kind : {hdc::EncoderKind::kRbfDense, hdc::EncoderKind::kRbfSparse,
                    hdc::EncoderKind::kLinearLevel}) {
    const auto enc = hdc::make_encoder(kind, 20, 512, 11);
    std::vector<hdc::BipolarHV> serial;
    for (const auto& x : batch) serial.push_back(enc->encode(x));
    for (std::size_t workers : kWorkerSweep) {
      ThreadPool pool(workers);
      EXPECT_EQ(enc->encode_batch(batch, pool), serial)
          << workers << " workers";
    }
  }
}

TEST(RuntimeDeterminism, SpatialEncodeBatchMatchesSerial) {
  const hdc::SpatialEncoder enc(8, 8, 256, 3);
  const auto batch = random_batch(24, 64, 9);
  std::vector<hdc::PhasorHV> serial;
  for (const auto& img : batch) serial.push_back(enc.encode(img));
  for (std::size_t workers : kWorkerSweep) {
    ThreadPool pool(workers);
    EXPECT_EQ(enc.encode_batch(batch, pool), serial) << workers << " workers";
  }
}

/// Noisy two-class hypervector clusters (same construction as the classifier
/// tests, kept hard enough that retraining has mistakes to chew on).
struct Clusters {
  std::vector<hdc::BipolarHV> hvs;
  std::vector<std::size_t> labels;

  Clusters(std::size_t classes, std::size_t dim, std::size_t per_class,
           double flip, std::uint64_t seed) {
    hdc::Rng rng(seed);
    std::vector<hdc::BipolarHV> prototypes;
    for (std::size_t c = 0; c < classes; ++c) {
      prototypes.push_back(rng.sign_vector(dim));
    }
    for (std::size_t c = 0; c < classes; ++c) {
      for (std::size_t i = 0; i < per_class; ++i) {
        auto hv = prototypes[c];
        for (auto& v : hv) {
          if (rng.bernoulli(flip)) v = static_cast<std::int8_t>(-v);
        }
        hvs.push_back(std::move(hv));
        labels.push_back(c);
      }
    }
  }
};

std::vector<hdc::AccumHV> all_accumulators(const hdc::HDClassifier& clf) {
  std::vector<hdc::AccumHV> out;
  for (std::size_t c = 0; c < clf.num_classes(); ++c) {
    out.push_back(clf.class_accumulator(c));
  }
  return out;
}

TEST(RuntimeDeterminism, TrainBatchMatchesSerialForAllWorkerCounts) {
  const Clusters data(4, 800, 60, 0.35, 21);
  hdc::HDClassifier serial(4, 800);
  for (std::size_t i = 0; i < data.hvs.size(); ++i) {
    serial.add_sample(data.labels[i], data.hvs[i]);
  }
  for (std::size_t workers : kWorkerSweep) {
    ThreadPool pool(workers);
    hdc::HDClassifier clf(4, 800);
    clf.train_batch(data.hvs, data.labels, pool);
    EXPECT_EQ(all_accumulators(clf), all_accumulators(serial))
        << workers << " workers";
  }
}

TEST(RuntimeDeterminism, ParallelRetrainIsBitIdenticalAcrossWorkerCounts) {
  // Hard clusters so the perceptron pass has a non-trivial error set.
  const Clusters data(4, 400, 50, 0.45, 33);
  auto run_with = [&](std::size_t workers) {
    ThreadPool pool(workers);
    hdc::HDClassifier clf(4, 400);
    clf.train_batch(data.hvs, data.labels, pool);
    const std::size_t errors = clf.retrain(data.hvs, data.labels, pool);
    return std::pair(errors, all_accumulators(clf));
  };
  const auto reference = run_with(1);
  for (std::size_t workers : kWorkerSweep) {
    EXPECT_EQ(run_with(workers), reference) << workers << " workers";
  }
}

TEST(RuntimeDeterminism, PredictBatchMatchesSerialForAllWorkerCounts) {
  const Clusters train(3, 600, 40, 0.3, 5);
  const Clusters queries(3, 600, 25, 0.3, 6);
  hdc::HDClassifier clf(3, 600);
  for (std::size_t i = 0; i < train.hvs.size(); ++i) {
    clf.add_sample(train.labels[i], train.hvs[i]);
  }
  std::vector<hdc::Prediction> serial;
  for (const auto& q : queries.hvs) serial.push_back(clf.predict(q));

  for (std::size_t workers : kWorkerSweep) {
    ThreadPool pool(workers);
    const auto batch = clf.predict_batch(queries.hvs, pool);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].label, serial[i].label);
      EXPECT_EQ(batch[i].confidence, serial[i].confidence);
      EXPECT_EQ(batch[i].similarities, serial[i].similarities);
    }
    EXPECT_EQ(clf.accuracy(queries.hvs, queries.labels, pool),
              clf.accuracy(queries.hvs, queries.labels));
  }
}

// ---- EdgeHdSystem batched inference ---------------------------------------

TEST(RuntimeDeterminism, RoutedBatchInferenceMatchesSerialWithExactBytes) {
  auto ds = data::make_synthetic("rt", 24, 3, {6, 6, 6, 6}, 240, 60, 77);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 512;
  cfg.batch_size = 30;
  cfg.retrain_epochs = 3;

  std::vector<std::vector<core::RoutedResult>> per_worker_results;
  for (std::size_t workers : kWorkerSweep) {
    auto worker_cfg = cfg;
    worker_cfg.num_threads = workers;
    core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), worker_cfg);
    ASSERT_EQ(sys.worker_count(), workers);
    sys.train();
    const auto start = sys.topology().leaves().front();

    std::vector<core::RoutedResult> serial;
    for (const auto& x : ds.test_x) serial.push_back(sys.infer_routed(x, start));
    const auto batch = sys.infer_routed_batch(ds.test_x, start);

    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].label, serial[i].label);
      EXPECT_EQ(batch[i].node, serial[i].node);
      EXPECT_EQ(batch[i].level, serial[i].level);
      EXPECT_EQ(batch[i].confidence, serial[i].confidence);
      EXPECT_EQ(batch[i].bytes, serial[i].bytes);
    }
    per_worker_results.push_back(batch);
  }
  // The whole pipeline — parallel encode memoization, parallel accuracy,
  // batched inference — must agree across worker counts, byte counts
  // included.
  for (std::size_t w = 1; w < per_worker_results.size(); ++w) {
    ASSERT_EQ(per_worker_results[w].size(), per_worker_results[0].size());
    for (std::size_t i = 0; i < per_worker_results[w].size(); ++i) {
      EXPECT_EQ(per_worker_results[w][i].label,
                per_worker_results[0][i].label);
      EXPECT_EQ(per_worker_results[w][i].bytes,
                per_worker_results[0][i].bytes);
      EXPECT_EQ(per_worker_results[w][i].confidence,
                per_worker_results[0][i].confidence);
    }
  }
}

TEST(RuntimeDeterminism, TrainingIsWorkerCountInvariant) {
  auto ds = data::make_synthetic("rt2", 16, 2, {8, 8}, 160, 40, 13);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 256;
  cfg.retrain_epochs = 2;

  std::vector<std::vector<hdc::AccumHV>> root_models;
  for (std::size_t workers : kWorkerSweep) {
    auto worker_cfg = cfg;
    worker_cfg.num_threads = workers;
    core::EdgeHdSystem sys(ds, net::Topology::star(2), worker_cfg);
    sys.train();
    root_models.push_back(
        all_accumulators(sys.classifier_at(sys.topology().root())));
  }
  for (std::size_t w = 1; w < root_models.size(); ++w) {
    EXPECT_EQ(root_models[w], root_models[0]);
  }
}

}  // namespace
