// Golden end-to-end regression: a small synthetic workload through a
// 2-level hierarchy with every source of cross-platform variance removed
// (LinearLevelEncoder leaves — no libm transcendentals — and the exact
// integer byte accounting), pinning routed accuracy, total escalations and
// total query bytes to exact values.
//
// These goldens pin *behaviour*, not an approximation: train(), the routed
// walk and the byte accounting are integer/bit-exact and independent of
// worker count and kernel backend, so any drift means a real semantic
// change somewhere in the encode/train/route/account pipeline.
//
// Updating the goldens (only after an *intentional* semantic change):
//   1. Re-run this test and read the actual values from the failure output
//      (cd build && ctest -R GoldenE2E --output-on-failure).
//   2. Confirm the shift is explained by your change (e.g. a new escalation
//      rule), not an accident — diff the metrics JSON of old vs new builds.
//   3. Paste the new values into kGolden below and record the reason in the
//      commit message.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace edgehd;

struct Golden {
  std::size_t correct;        ///< routed predictions matching test labels
  std::size_t escalations;    ///< sum over queries of (serving level - 1)
  std::uint64_t total_bytes;  ///< sum of RoutedResult::bytes
  std::uint64_t train_bytes;  ///< initial training traffic
};

// Pinned on the seed deployment below; see the update procedure above.
constexpr Golden kGolden = {176, 194, 5238, 45342};

TEST(GoldenE2E, TwoLevelHierarchyIsPinned) {
  auto ds = data::make_synthetic("golden", 24, 3, {8, 8, 8}, 600, 200, 91,
                                 3.8F, 0.5F, 0.5F);
  data::zscore_normalize(ds);

  core::SystemConfig cfg;
  cfg.total_dim = 900;
  cfg.batch_size = 8;
  cfg.num_threads = 1;
  cfg.leaf_encoder = hdc::EncoderKind::kLinearLevel;
  core::EdgeHdSystem sys(ds, net::Topology::star(3), cfg);
  ASSERT_EQ(sys.topology().depth(), 2u);

  if constexpr (obs::kEnabled) obs::MetricsRegistry::global().reset();
  const auto comm = sys.train();

  const auto start = sys.topology().leaves().front();
  std::size_t correct = 0;
  std::size_t escalations = 0;
  std::uint64_t total_bytes = 0;
  for (std::size_t i = 0; i < ds.test_size(); ++i) {
    const auto r = sys.infer_routed(ds.test_x[i], start);
    ASSERT_TRUE(r.served());
    if (r.label == ds.test_y[i]) ++correct;
    escalations += r.level - 1;
    total_bytes += r.bytes;
  }

  EXPECT_EQ(correct, kGolden.correct);
  EXPECT_EQ(escalations, kGolden.escalations);
  EXPECT_EQ(total_bytes, kGolden.total_bytes);
  EXPECT_EQ(comm.bytes, kGolden.train_bytes);

  // The metrics registry observed the same run; it must agree exactly with
  // the values computed from the returned RoutedResults.
  if constexpr (obs::kEnabled) {
    const auto& reg = obs::MetricsRegistry::global();
    EXPECT_EQ(reg.counter_value("core.routed.queries"), ds.test_size());
    EXPECT_EQ(reg.counter_value("core.routed.escalations"), escalations);
    EXPECT_EQ(reg.counter_value("core.routed.bytes"), total_bytes);
    // train() is initial training plus batch retraining; the registry splits
    // the two phases.
    EXPECT_EQ(reg.counter_value("core.train_initial.bytes") +
                  reg.counter_value("core.retrain.bytes"),
              comm.bytes);
  }
}

}  // namespace
