// Unit tests for the comparator models (src/baseline/*).
#include <gtest/gtest.h>

#include "baseline/adaboost.hpp"
#include "baseline/hd_model.hpp"
#include "baseline/mlp.hpp"
#include "baseline/model_select.hpp"
#include "baseline/svm.hpp"
#include "data/dataset.hpp"

namespace {

using namespace edgehd;

data::Dataset small_dataset(float xor_fraction = 0.3F) {
  auto ds = data::make_synthetic("t", 12, 3, {12}, 450, 150, 21, 3.5F, 0.5F,
                                 xor_fraction);
  data::zscore_normalize(ds);
  return ds;
}

TEST(Mlp, LearnsSmallMixture) {
  const auto ds = small_dataset();
  baseline::MlpConfig cfg;
  cfg.epochs = 15;
  baseline::Mlp mlp(cfg);
  mlp.fit(ds);
  EXPECT_GT(mlp.test_accuracy(ds), 0.7);
}

TEST(Mlp, LearnsXorStructure) {
  // Pure-interaction data: additive models fail, an MLP must not.
  auto ds = data::make_synthetic("xor", 10, 2, {10}, 800, 200, 23, 3.5F,
                                 0.25F, 1.0F);
  data::zscore_normalize(ds);
  baseline::Mlp mlp;
  mlp.fit(ds);
  EXPECT_GT(mlp.test_accuracy(ds), 0.8);
}

TEST(Mlp, ReportsParameterAndMacCounts) {
  const auto ds = small_dataset();
  baseline::MlpConfig cfg;
  cfg.hidden = {32, 16};
  cfg.epochs = 1;
  baseline::Mlp mlp(cfg);
  mlp.fit(ds);
  // 12*32 + 32 + 32*16 + 16 + 16*3 + 3
  EXPECT_EQ(mlp.parameter_count(), 12u * 32 + 32 + 32 * 16 + 16 + 16 * 3 + 3);
  EXPECT_EQ(mlp.forward_macs(), 12u * 32 + 32 * 16 + 16 * 3);
  EXPECT_EQ(mlp.train_macs_per_sample(), 3 * mlp.forward_macs());
}

TEST(Mlp, PredictProbaIsADistribution) {
  const auto ds = small_dataset();
  baseline::MlpConfig cfg;
  cfg.epochs = 3;
  baseline::Mlp mlp(cfg);
  mlp.fit(ds);
  const auto p = mlp.predict_proba(ds.test_x[0]);
  double sum = 0.0;
  for (const auto v : p) {
    EXPECT_GE(v, 0.0F);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(Mlp, ThrowsBeforeFitAndOnBadConfig) {
  baseline::Mlp mlp;
  const std::vector<float> x(4, 0.0F);
  EXPECT_THROW(mlp.predict(x), std::logic_error);
  baseline::MlpConfig bad;
  bad.epochs = 0;
  EXPECT_THROW(baseline::Mlp{bad}, std::invalid_argument);
}

TEST(Svm, LearnsSmallMixture) {
  const auto ds = small_dataset();
  baseline::SvmConfig cfg;
  cfg.rff_dim = 512;
  cfg.epochs = 10;
  baseline::Svm svm(cfg);
  svm.fit(ds);
  EXPECT_GT(svm.test_accuracy(ds), 0.7);
}

TEST(Svm, DecisionValuesHaveOnePerClass) {
  const auto ds = small_dataset();
  baseline::SvmConfig cfg;
  cfg.rff_dim = 256;
  cfg.epochs = 3;
  baseline::Svm svm(cfg);
  svm.fit(ds);
  EXPECT_EQ(svm.decision_values(ds.test_x[0]).size(), ds.num_classes);
}

TEST(Svm, ThrowsBeforeFit) {
  baseline::Svm svm;
  const std::vector<float> x(4, 0.0F);
  EXPECT_THROW(svm.predict(x), std::logic_error);
}

TEST(AdaBoost, LearnsAxisAlignedStructure) {
  // Centroid-only data (xor_fraction 0) is stump-friendly.
  auto ds = data::make_synthetic("ada", 12, 2, {12}, 500, 150, 27, 3.5F,
                                 0.5F, 0.0F);
  data::zscore_normalize(ds);
  baseline::AdaBoost ada;
  ada.fit(ds);
  EXPECT_GT(ada.test_accuracy(ds), 0.8);
  EXPECT_GT(ada.num_stumps(), 1u);
}

TEST(AdaBoost, HandlesSingleClassGracefully) {
  // Degenerate labels: falls back to a majority stump instead of crashing.
  data::Dataset ds;
  ds.name = "degenerate";
  ds.num_features = 2;
  ds.num_classes = 2;
  ds.partitions = {2};
  for (int i = 0; i < 20; ++i) {
    ds.train_x.push_back({static_cast<float>(i), 0.0F});
    ds.train_y.push_back(0);  // all one class
  }
  ds.test_x = ds.train_x;
  ds.test_y = ds.train_y;
  baseline::AdaBoost ada;
  ada.fit(ds);
  EXPECT_EQ(ada.test_accuracy(ds), 1.0);
}

TEST(AdaBoost, ThrowsBeforeFit) {
  baseline::AdaBoost ada;
  const std::vector<float> x(4, 0.0F);
  EXPECT_THROW(ada.predict(x), std::logic_error);
}

TEST(HdModel, SparseAndDenseEncodersBothLearn) {
  const auto ds = small_dataset();
  for (const auto kind :
       {hdc::EncoderKind::kRbfSparse, hdc::EncoderKind::kRbfDense}) {
    baseline::HdModelConfig cfg;
    cfg.encoder = kind;
    cfg.dim = 1024;
    baseline::HdModel model(cfg);
    model.fit(ds);
    EXPECT_GT(model.test_accuracy(ds), 0.7);
  }
}

TEST(HdModel, PredictFullExposesConfidence) {
  const auto ds = small_dataset();
  baseline::HdModelConfig cfg;
  cfg.dim = 512;
  baseline::HdModel model(cfg);
  model.fit(ds);
  const auto p = model.predict_full(ds.test_x[0]);
  EXPECT_GT(p.confidence, 0.0);
  EXPECT_LE(p.confidence, 1.0);
}

TEST(HdModel, ThrowsBeforeFit) {
  baseline::HdModel model;
  const std::vector<float> x(4, 0.0F);
  EXPECT_THROW(model.predict(x), std::logic_error);
  EXPECT_THROW(model.encoder(), std::logic_error);
  EXPECT_THROW(model.classifier(), std::logic_error);
}

TEST(HdModel, NonLinearEncoderBeatsLinearOnInteractionData) {
  // The Figure 7 claim in miniature: with interaction-dominated class
  // structure, the RBF encoder must beat the linear-level baseline.
  auto ds = data::make_synthetic("gap", 24, 2, {24}, 1200, 400, 31, 3.5F,
                                 0.5F, 0.9F);
  data::zscore_normalize(ds);
  baseline::HdModelConfig lin;
  lin.encoder = hdc::EncoderKind::kLinearLevel;
  lin.dim = 2048;
  baseline::HdModel linear(lin);
  linear.fit(ds);
  baseline::HdModelConfig rbf;
  rbf.dim = 2048;
  baseline::HdModel nonlinear(rbf);
  nonlinear.fit(ds);
  EXPECT_GT(nonlinear.test_accuracy(ds), linear.test_accuracy(ds));
}

TEST(ModelSelect, GridSearchReturnsWorkingModels) {
  const auto ds = small_dataset();
  const auto svm = baseline::best_svm(ds);
  EXPECT_GT(svm.test_accuracy(ds), 0.6);
  const auto ada = baseline::best_adaboost(ds);
  EXPECT_GT(ada.test_accuracy(ds), 0.5);
}

}  // namespace
