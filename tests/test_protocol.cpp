// Protocol-consistency properties of the hierarchical training scheme
// (paper Section IV-B): aggregating *models* must approximate aggregating
// *samples*, which is the linearity argument that justifies shipping class
// and batch hypervectors instead of raw data.
#include <gtest/gtest.h>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/random.hpp"
#include "hier/hier_encoder.hpp"
#include "net/topology.hpp"

namespace {

using namespace edgehd;

double accum_cosine(const hdc::AccumHV& a, const hdc::AccumHV& b) {
  double num = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += static_cast<double>(a[i]) * b[i];
  }
  const double d = hdc::norm(std::span<const std::int32_t>(a)) *
                   hdc::norm(std::span<const std::int32_t>(b));
  return d == 0.0 ? 0.0 : num / d;
}

TEST(Protocol, ClassModelAggregationApproximatesSampleAggregation) {
  // Parent class hypervector built from children's class sums must align
  // with the class hypervector built by bundling the parent-level encodings
  // of the same samples. (Exact up to the children's sign binarization and
  // the projection's integer rescaling.)
  auto ds = data::make_synthetic("proto", 24, 2, {12, 12}, 500, 50, 91, 3.6F,
                                 0.5F, 0.4F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 1200;
  core::EdgeHdSystem sys(ds, net::Topology::star(2), cfg);
  const auto root = sys.topology().root();

  // Path A: the deployed protocol (children ship class sums).
  sys.train_initial();
  const auto& protocol_model = sys.classifier_at(root);

  // Path B: bundle the root-level encodings of every sample directly.
  std::vector<hdc::AccumHV> direct(2, hdc::AccumHV(sys.node_dim(root), 0));
  for (std::size_t i = 0; i < ds.train_size(); ++i) {
    const auto hvs = sys.encode_all(ds.train_x[i]);
    hdc::bundle_into(direct[ds.train_y[i]], hvs[root]);
  }

  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_GT(accum_cosine(protocol_model.class_accumulator(c), direct[c]),
              0.8)
        << "class " << c;
  }
}

TEST(Protocol, BatchHypervectorsCommuteWithAggregation) {
  // project(concat(children batch sums)) vs sum of projected per-sample
  // encodings: the same linearity property at batch granularity.
  hier::HierEncoder agg({64, 64}, 96, 7);
  hdc::Rng rng(92);
  const std::size_t batch = 10;
  std::vector<hdc::BipolarHV> left(batch), right(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    left[i] = rng.sign_vector(64);
    right[i] = rng.sign_vector(64);
  }
  // Path A: children bundle first, parent aggregates the sums.
  hdc::AccumHV lsum(64, 0), rsum(64, 0);
  for (std::size_t i = 0; i < batch; ++i) {
    hdc::bundle_into(lsum, left[i]);
    hdc::bundle_into(rsum, right[i]);
  }
  const auto path_a = agg.aggregate_accum(std::vector<hdc::AccumHV>{lsum, rsum});
  // Path B: parent aggregates each sample pair, then bundles.
  hdc::AccumHV path_b(96, 0);
  for (std::size_t i = 0; i < batch; ++i) {
    hdc::AccumHV li(left[i].begin(), left[i].end());
    hdc::AccumHV ri(right[i].begin(), right[i].end());
    const auto projected =
        agg.aggregate_accum(std::vector<hdc::AccumHV>{li, ri});
    hdc::accumulate(path_b, projected);
  }
  // Integer rescaling truncates once per projection, so components differ by
  // at most the batch size; directionally the two paths must agree tightly.
  EXPECT_GT(accum_cosine(path_a, path_b), 0.85);
}

TEST(Protocol, ResidualPropagationMatchesDirectSubtraction) {
  // Applying residuals locally then propagating projected copies upward
  // must change the parent model the same way as projecting the feedback
  // queries directly into the parent space and subtracting there.
  auto ds = data::make_synthetic("resid", 16, 2, {8, 8}, 300, 50, 93, 3.6F,
                                 0.5F, 0.4F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 800;
  core::EdgeHdSystem sys(ds, net::Topology::star(2), cfg);
  sys.train();
  const auto root = sys.topology().root();
  const auto before = sys.classifier_at(root).class_accumulator(0);

  // Feed negative feedback at the root itself (its own residual path).
  const auto hvs = sys.encode_all(ds.test_x[0]);
  auto& mutable_sys = sys;  // online_serve is the public mutation path
  // Use a root-served query: force with threshold > 1 via direct feedback.
  // (We go through online_serve with a start at the root's level by picking
  // the root as serving node via an always-escalate config.)
  (void)mutable_sys;
  // Direct check at the classifier level:
  core::EdgeHdSystem twin(ds, net::Topology::star(2), cfg);
  twin.train();
  // Same trained state by determinism:
  ASSERT_EQ(before, twin.classifier_at(root).class_accumulator(0));

  // Give feedback through the engine and propagate.
  const auto r = sys.infer_routed(ds.test_x[0], sys.topology().leaves()[0]);
  (void)r;
  // Subtraction path: expected = before - query (for the predicted class).
  const auto pred = twin.classifier_at(root).predict(hvs[root]);
  hdc::AccumHV expected = twin.classifier_at(root).class_accumulator(pred.label);
  hdc::unbundle_from(expected, hvs[root]);

  // Engine path: negative feedback recorded at the root, then propagated.
  // (classify_min_level=1 means the root hosts a classifier.)
  const_cast<hdc::HDClassifier&>(sys.classifier_at(root))
      .feedback_negative(pred.label, hvs[root]);
  sys.propagate_residuals();
  EXPECT_EQ(sys.classifier_at(root).class_accumulator(pred.label), expected);
}

TEST(Protocol, TrainingTwiceIsIdempotentOnModels) {
  // Re-running the full protocol from a fresh system with the same seed
  // yields identical models — the reproducibility guarantee gateways rely
  // on when re-synchronizing after a failure.
  auto ds = data::make_synthetic("idem", 16, 2, {8, 8}, 200, 40, 95, 3.6F,
                                 0.5F, 0.4F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 640;
  core::EdgeHdSystem a(ds, net::Topology::star(2), cfg);
  core::EdgeHdSystem b(ds, net::Topology::star(2), cfg);
  const auto ca = a.train();
  const auto cb = b.train();
  EXPECT_EQ(ca.bytes, cb.bytes);
  EXPECT_EQ(ca.messages, cb.messages);
  const auto root = a.topology().root();
  for (std::size_t c = 0; c < ds.num_classes; ++c) {
    EXPECT_EQ(a.classifier_at(root).class_accumulator(c),
              b.classifier_at(root).class_accumulator(c));
  }
}

}  // namespace
