// Integration tests for the EdgeHD engine (src/core/edgehd.*).
#include <gtest/gtest.h>

#include <numeric>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "net/topology.hpp"

namespace {

using namespace edgehd;

data::Dataset four_node_dataset(std::size_t train = 800, std::size_t test = 300) {
  auto ds = data::make_synthetic("hier", 40, 3, {10, 10, 10, 10}, train, test,
                                 51, 3.6F, 0.5F, 0.5F);
  data::zscore_normalize(ds);
  return ds;
}

core::SystemConfig small_cfg() {
  core::SystemConfig cfg;
  cfg.total_dim = 1000;
  cfg.batch_size = 4;
  return cfg;
}

TEST(EdgeHd, ValidatesTopologyAgainstPartitions) {
  const auto ds = four_node_dataset(50, 20);
  EXPECT_THROW(core::EdgeHdSystem(ds, net::Topology::paper_tree(3)),
               std::invalid_argument);
  core::SystemConfig bad = small_cfg();
  bad.classify_min_level = 9;
  EXPECT_THROW(core::EdgeHdSystem(ds, net::Topology::paper_tree(4), bad),
               std::invalid_argument);
}

TEST(EdgeHd, AllocatesDimsAndClassifiersPerLevel) {
  const auto ds = four_node_dataset(50, 20);
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), small_cfg());
  const auto& topo = sys.topology();
  // Equal feature slices -> equal leaf dims of D/4.
  for (const auto leaf : topo.leaves()) {
    EXPECT_EQ(sys.node_dim(leaf), 250u);
    EXPECT_TRUE(sys.has_classifier(leaf));
  }
  EXPECT_EQ(sys.node_dim(topo.root()), 1000u);
  EXPECT_TRUE(sys.has_classifier(topo.root()));
}

TEST(EdgeHd, ClassifyMinLevelSkipsLowNodes) {
  const auto ds = four_node_dataset(50, 20);
  auto cfg = small_cfg();
  cfg.classify_min_level = 2;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  for (const auto leaf : sys.topology().leaves()) {
    EXPECT_FALSE(sys.has_classifier(leaf));
  }
  EXPECT_TRUE(sys.has_classifier(sys.topology().root()));
  EXPECT_THROW(sys.classifier_at(sys.topology().leaves().front()),
               std::invalid_argument);
  EXPECT_THROW(sys.accuracy_at_level(1), std::invalid_argument);
}

TEST(EdgeHd, EncodeAllProducesPerNodeDims) {
  const auto ds = four_node_dataset(30, 10);
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), small_cfg());
  const auto hvs = sys.encode_all(ds.train_x[0]);
  ASSERT_EQ(hvs.size(), sys.topology().num_nodes());
  for (net::NodeId id = 0; id < hvs.size(); ++id) {
    EXPECT_EQ(hvs[id].size(), sys.node_dim(id));
  }
  const std::vector<float> wrong(7, 0.0F);
  EXPECT_THROW(sys.encode_all(wrong), std::invalid_argument);
}

TEST(EdgeHd, TrainingReportsCommunicationAndLearns) {
  const auto ds = four_node_dataset();
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), small_cfg());
  const auto comm = sys.train();
  EXPECT_GT(comm.bytes, 0u);
  EXPECT_GT(comm.messages, 0u);
  EXPECT_GT(sys.accuracy_at_node(sys.topology().root()), 0.6);
}

TEST(EdgeHd, AccuracyImprovesUpTheHierarchy) {
  const auto ds = four_node_dataset();
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), small_cfg());
  sys.train();
  // Central node sees every feature; end nodes see a quarter each. The
  // ordering claim of Table II.
  EXPECT_GT(sys.accuracy_at_level(3), sys.accuracy_at_level(1));
}

TEST(EdgeHd, SmallerBatchesCostMoreBytes) {
  const auto ds = four_node_dataset(400, 50);
  auto cfg = small_cfg();
  cfg.batch_size = 2;
  core::EdgeHdSystem fine(ds, net::Topology::paper_tree(4), cfg);
  cfg.batch_size = 40;
  core::EdgeHdSystem coarse(ds, net::Topology::paper_tree(4), cfg);
  EXPECT_GT(fine.retrain_batches().bytes, coarse.retrain_batches().bytes);
}

TEST(EdgeHd, RoutedInferenceEscalatesOnLowConfidence) {
  const auto ds = four_node_dataset();
  auto cfg = small_cfg();
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  sys.train();
  const auto start = sys.topology().leaves().front();

  // Threshold 0: always served locally, zero gather bytes at a leaf.
  auto lo_cfg = cfg;
  lo_cfg.confidence_threshold = 0.0;
  core::EdgeHdSystem local(ds, net::Topology::paper_tree(4), lo_cfg);
  local.train();
  const auto r_local = local.infer_routed(ds.test_x[0], start);
  EXPECT_EQ(r_local.level, 1u);
  EXPECT_EQ(r_local.bytes, 0u);

  // Threshold > 1: always escalates to the root.
  auto hi_cfg = cfg;
  hi_cfg.confidence_threshold = 1.1;
  core::EdgeHdSystem global(ds, net::Topology::paper_tree(4), hi_cfg);
  global.train();
  const auto r_global = global.infer_routed(ds.test_x[0], start);
  EXPECT_EQ(r_global.node, global.topology().root());
  EXPECT_EQ(r_global.bytes, global.query_gather_bytes(global.topology().root()));
  EXPECT_GT(r_global.bytes, 0u);
}

TEST(EdgeHd, QueryGatherBytesNestCorrectly) {
  const auto ds = four_node_dataset(50, 20);
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), small_cfg());
  const auto& topo = sys.topology();
  EXPECT_EQ(sys.query_gather_bytes(topo.leaves().front()), 0u);
  const auto gw = topo.parent(topo.leaves().front());
  EXPECT_GT(sys.query_gather_bytes(topo.root()),
            sys.query_gather_bytes(gw));
}

TEST(EdgeHd, OnlineNegativeFeedbackImprovesServingAccuracy) {
  // Split the training data: weak offline model, then online feedback.
  const auto ds = four_node_dataset(1200, 300);
  auto cfg = small_cfg();
  cfg.feedback_weight = 2;  // gentle rate: dense feedback on a strong model
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  std::vector<std::size_t> offline(300);
  std::iota(offline.begin(), offline.end(), 0);
  sys.train(offline);
  const auto root = sys.topology().root();
  const double before = sys.accuracy_at_node(root);

  const auto leaves = sys.topology().leaves();
  for (std::size_t i = 300; i < ds.train_size(); ++i) {
    sys.online_serve(ds.train_x[i], ds.train_y[i], leaves[i % leaves.size()]);
    if (i % 200 == 0) sys.propagate_residuals();
  }
  const auto comm = sys.propagate_residuals();
  const double after = sys.accuracy_at_node(root);
  EXPECT_GE(after, before - 0.06);  // never collapses
  EXPECT_GT(after, 0.5);
  // Residual propagation was exercised at least once with traffic.
  EXPECT_GE(comm.messages, 0u);
}

TEST(EdgeHd, ResidualPropagationWithoutFeedbackIsFree) {
  const auto ds = four_node_dataset(100, 30);
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), small_cfg());
  sys.train();
  const auto comm = sys.propagate_residuals();
  EXPECT_EQ(comm.bytes, 0u);
  EXPECT_EQ(comm.messages, 0u);
}

// The Figure-12 fault-injection surface, exercised under *both* aggregation
// modes: each mode must degrade gracefully on its own, and holographic must
// degrade no worse than concatenation (the paper's robustness claim).
class AggregationLoss
    : public ::testing::TestWithParam<hier::AggregationMode> {
 protected:
  static core::SystemConfig cfg_for(hier::AggregationMode mode) {
    auto cfg = small_cfg();
    cfg.aggregation = mode;
    return cfg;
  }
};

TEST_P(AggregationLoss, RandomLossDegradesGracefully) {
  const auto ds = four_node_dataset();
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4),
                         cfg_for(GetParam()));
  sys.train();
  const auto root = sys.topology().root();
  const double clean = sys.accuracy_at_node_with_loss(root, 0.0, 3);
  const double heavy = sys.accuracy_at_node_with_loss(root, 0.6, 3);
  EXPECT_GT(clean, 0.6);
  EXPECT_GE(clean + 0.02, heavy);       // losing signal never helps (modulo
                                        // sampling noise in the erasure draw)
  EXPECT_GT(heavy, 1.0 / 3.0 - 0.05);   // but never collapses below chance
}

TEST_P(AggregationLoss, ZeroLossMatchesTheUndamagedModel) {
  const auto ds = four_node_dataset(400, 100);
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4),
                         cfg_for(GetParam()));
  sys.train();
  const auto root = sys.topology().root();
  EXPECT_DOUBLE_EQ(sys.accuracy_at_node_with_loss(root, 0.0, 3),
                   sys.accuracy_at_node_with_burst_loss(root, 0.0, 16, 3));
}

TEST_P(AggregationLoss, BurstLossKeepsAUsableModel) {
  const auto ds = four_node_dataset();
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4),
                         cfg_for(GetParam()));
  sys.train();
  const auto root = sys.topology().root();
  const std::size_t burst = sys.node_dim(sys.topology().leaves()[0]);
  const double clean = sys.accuracy_at_node_with_burst_loss(root, 0.0, burst, 3);
  const double bursty = sys.accuracy_at_node_with_burst_loss(root, 0.5, burst, 3);
  EXPECT_GE(clean + 0.02, bursty);
  EXPECT_GT(bursty, 1.0 / 3.0 - 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, AggregationLoss,
    ::testing::Values(hier::AggregationMode::kHolographic,
                      hier::AggregationMode::kConcatenation),
    [](const auto& info) {
      return info.param == hier::AggregationMode::kHolographic
                 ? "Holographic"
                 : "Concatenation";
    });

TEST(EdgeHd, HolographicLossToleranceBeatsConcatenation) {
  const auto ds = four_node_dataset();
  auto holo_cfg = small_cfg();
  core::EdgeHdSystem holo(ds, net::Topology::paper_tree(4), holo_cfg);
  holo.train();
  auto cat_cfg = small_cfg();
  cat_cfg.aggregation = hier::AggregationMode::kConcatenation;
  core::EdgeHdSystem concat(ds, net::Topology::paper_tree(4), cat_cfg);
  concat.train();

  const auto root = holo.topology().root();
  const double holo_drop = holo.accuracy_at_node_with_loss(root, 0.0, 3) -
                           holo.accuracy_at_node_with_loss(root, 0.6, 3);
  const auto croot = concat.topology().root();
  const double cat_drop = concat.accuracy_at_node_with_loss(croot, 0.0, 3) -
                          concat.accuracy_at_node_with_loss(croot, 0.6, 3);
  // The Figure 12 claim: holographic degrades no worse than concatenation.
  EXPECT_LE(holo_drop, cat_drop + 0.05);
}

TEST(EdgeHd, BurstLossFavorsHolographicAggregation) {
  // Packet-sized contiguous erasures take out a whole child block under
  // concatenation but thin all children uniformly under the holographic
  // projection (the Figure 12 mechanism): holographic degrades more
  // gracefully, in both absolute accuracy and accuracy drop.
  const auto ds = four_node_dataset();
  core::EdgeHdSystem holo(ds, net::Topology::paper_tree(4), small_cfg());
  holo.train();
  auto cat_cfg = small_cfg();
  cat_cfg.aggregation = hier::AggregationMode::kConcatenation;
  core::EdgeHdSystem concat(ds, net::Topology::paper_tree(4), cat_cfg);
  concat.train();

  const auto root = holo.topology().root();
  const auto croot = concat.topology().root();
  const std::size_t burst = concat.node_dim(concat.topology().leaves()[0]);
  const double holo_acc =
      holo.accuracy_at_node_with_burst_loss(root, 0.5, burst, 3);
  const double cat_acc =
      concat.accuracy_at_node_with_burst_loss(croot, 0.5, burst, 3);
  EXPECT_GE(holo_acc, cat_acc - 0.03);
  const double holo_drop =
      holo.accuracy_at_node_with_burst_loss(root, 0.0, burst, 3) - holo_acc;
  const double cat_drop =
      concat.accuracy_at_node_with_burst_loss(croot, 0.0, burst, 3) - cat_acc;
  EXPECT_LE(holo_drop, cat_drop + 0.03);
}

TEST(EdgeHd, BurstLossValidatesArguments) {
  const auto ds = four_node_dataset(50, 20);
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), small_cfg());
  sys.train();
  const auto root = sys.topology().root();
  EXPECT_THROW(sys.accuracy_at_node_with_burst_loss(root, 0.5, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(sys.accuracy_at_node_with_burst_loss(root, 1.5, 8, 1),
               std::invalid_argument);
}

TEST(EdgeHd, LossFractionValidated) {
  const auto ds = four_node_dataset(50, 20);
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), small_cfg());
  sys.train();
  EXPECT_THROW(sys.accuracy_at_node_with_loss(sys.topology().root(), 1.5, 1),
               std::invalid_argument);
}

TEST(EdgeHd, ScaledBatchSizeFollowsTheRatioRule) {
  EXPECT_EQ(core::scaled_batch_size(75, 611142, 611142), 75u);
  EXPECT_EQ(core::scaled_batch_size(75, 611142, 2000), 1u);   // rounds up to 1
  EXPECT_EQ(core::scaled_batch_size(75, 17385, 2000), 9u);
  EXPECT_EQ(core::scaled_batch_size(75, 0, 100), 75u);
}

TEST(EdgeHd, TrainOnSubsetIsDeterministic) {
  const auto ds = four_node_dataset(200, 50);
  std::vector<std::size_t> subset(100);
  std::iota(subset.begin(), subset.end(), 0);
  core::EdgeHdSystem a(ds, net::Topology::paper_tree(4), small_cfg());
  core::EdgeHdSystem b(ds, net::Topology::paper_tree(4), small_cfg());
  a.train(subset);
  b.train(subset);
  const auto root = a.topology().root();
  for (std::size_t c = 0; c < ds.num_classes; ++c) {
    EXPECT_EQ(a.classifier_at(root).class_accumulator(c),
              b.classifier_at(root).class_accumulator(c));
  }
}

TEST(EdgeHd, StarTopologyAlsoWorks) {
  const auto ds = four_node_dataset(400, 100);
  core::EdgeHdSystem sys(ds, net::Topology::star(4), small_cfg());
  sys.train();
  EXPECT_EQ(sys.topology().depth(), 2u);
  EXPECT_GT(sys.accuracy_at_level(2), 0.5);
}

}  // namespace
