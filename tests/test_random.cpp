// Unit tests for the seeded RNG utilities (src/hdc/random.hpp).
#include <gtest/gtest.h>

#include <cmath>

#include "hdc/random.hpp"

namespace {

using namespace edgehd::hdc;

TEST(Random, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.engine()(), b.engine()());
  }
}

TEST(Random, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.engine()() == b.engine()()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Random, DeriveSeedIsDeterministicAndSpreads) {
  EXPECT_EQ(derive_seed(7, 0), derive_seed(7, 0));
  EXPECT_NE(derive_seed(7, 0), derive_seed(7, 1));
  EXPECT_NE(derive_seed(7, 0), derive_seed(8, 0));
}

TEST(Random, GaussianMoments) {
  Rng rng(3);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Random, SignIsBalancedAndBipolar) {
  Rng rng(4);
  int pos = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const auto s = rng.sign();
    ASSERT_TRUE(s == 1 || s == -1);
    if (s == 1) ++pos;
  }
  EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.03);
}

TEST(Random, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0F, 3.0F);
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 3.0F);
  }
}

TEST(Random, IndexStaysInRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(17), 17u);
  }
}

TEST(Random, BernoulliMatchesProbability) {
  Rng rng(7);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Random, VectorHelpersHaveRequestedSize) {
  Rng rng(8);
  EXPECT_EQ(rng.gaussian_vector(37).size(), 37u);
  EXPECT_EQ(rng.sign_vector(53).size(), 53u);
}

}  // namespace
