// Fault injection, reliable transport and graceful degradation
// (src/net/fault.*, Simulator drop semantics, EdgeHdSystem health masks).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "net/fault.hpp"
#include "net/medium.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"

namespace {

using namespace edgehd;
using net::FaultPlan;
using net::HealthMask;
using net::kForever;
using net::kMillisecond;
using net::NodeId;
using net::Simulator;

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlan, ValidatesArguments) {
  FaultPlan plan(1);
  EXPECT_THROW(plan.crash(net::kNoNode), std::invalid_argument);
  EXPECT_THROW(plan.crash(0, -1, 5), std::invalid_argument);
  EXPECT_THROW(plan.crash(0, 10, 5), std::invalid_argument);
  EXPECT_THROW(plan.outage(0, 10, 5), std::invalid_argument);
  EXPECT_THROW(plan.loss(0, -0.1), std::invalid_argument);
  EXPECT_THROW(plan.loss(0, 1.5), std::invalid_argument);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, WindowsAreHalfOpen) {
  FaultPlan plan;
  plan.crash(3, 100, 200).outage(5, 50, kForever);
  EXPECT_TRUE(plan.node_up(3, 99));
  EXPECT_FALSE(plan.node_up(3, 100));
  EXPECT_FALSE(plan.node_up(3, 199));
  EXPECT_TRUE(plan.node_up(3, 200));
  EXPECT_TRUE(plan.node_up(4, 150));  // other nodes unaffected
  EXPECT_TRUE(plan.link_up(5, 49));
  EXPECT_FALSE(plan.link_up(5, 1'000'000'000));
}

TEST(FaultPlan, LossEntriesComposeIndependently) {
  FaultPlan plan;
  plan.loss(2, 0.5).loss(2, 0.5);
  EXPECT_NEAR(plan.loss_probability(2), 0.75, 1e-12);
  EXPECT_EQ(plan.loss_probability(3), 0.0);
}

TEST(FaultPlan, DropDrawsAreAStatelessFunctionOfSeedLinkAttempt) {
  FaultPlan a(42), b(42), c(43);
  a.loss(1, 0.5);
  b.loss(1, 0.5);
  c.loss(1, 0.5);
  std::size_t diverged = 0;
  for (std::uint64_t attempt = 0; attempt < 256; ++attempt) {
    EXPECT_EQ(a.drop(1, attempt), b.drop(1, attempt));
    if (a.drop(1, attempt) != c.drop(1, attempt)) ++diverged;
  }
  EXPECT_GT(diverged, 0u);  // a different seed gives a different stream
  EXPECT_FALSE(a.drop(2, 0));  // loss-free link never drops
}

TEST(FaultPlan, ExpectedAttemptsMatchesTheGeometricSum) {
  EXPECT_DOUBLE_EQ(net::expected_attempts(0.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(net::expected_attempts(1.0, 5), 6.0);
  EXPECT_NEAR(net::expected_attempts(0.5, 1), 1.5, 1e-12);
  EXPECT_NEAR(net::expected_attempts(0.5, 2), 1.75, 1e-12);
}

// ---------------------------------------------------------------- HealthMask

TEST(HealthMask, SnapshotEvaluatesThePlanAtOneInstant) {
  FaultPlan plan;
  plan.crash(1, 0, 100).outage(2, 50, 150).loss(3, 0.25);
  const auto at0 = HealthMask::snapshot(plan, 5, 0);
  EXPECT_FALSE(at0.node_up(1));
  EXPECT_TRUE(at0.link_up(2));
  EXPECT_DOUBLE_EQ(at0.link_loss(3), 0.25);
  EXPECT_FALSE(at0.all_healthy());
  const auto at200 = HealthMask::snapshot(plan, 5, 200);
  EXPECT_TRUE(at200.node_up(1));
  EXPECT_TRUE(at200.link_up(2));
  EXPECT_FALSE(at200.all_healthy());  // loss is not window-scoped
}

TEST(HealthMask, ReachabilityWalksTheRootPath) {
  const auto topo = net::Topology::paper_tree(4);
  const NodeId leaf = topo.leaves().front();
  const NodeId gw = topo.parent(leaf);
  HealthMask mask(topo.num_nodes());
  EXPECT_TRUE(mask.reachable_up(topo, leaf, topo.root()));
  mask.set_node_up(gw, false);
  EXPECT_FALSE(mask.reachable_up(topo, leaf, topo.root()));
  EXPECT_TRUE(mask.reachable_up(topo, leaf, leaf));
  mask.set_node_up(gw, true).set_link_up(gw, false);
  EXPECT_FALSE(mask.reachable_up(topo, leaf, topo.root()));
  EXPECT_TRUE(mask.reachable_up(topo, leaf, gw));
}

// ---------------------------------------------------------------- Simulator

/// Runs a fixed traffic pattern (all leaves to the root, two sizes) and
/// returns a trace of delivery tags in completion order.
std::vector<std::string> run_traffic(Simulator& sim) {
  std::vector<std::string> trace;
  const auto& topo = sim.topology();
  for (const NodeId leaf : topo.leaves()) {
    sim.send_to_root(leaf, 4000 + 13 * leaf,
                     [&trace, leaf] { trace.push_back("big" + std::to_string(leaf)); });
    sim.send(leaf, topo.parent(leaf), 600,
             [&trace, leaf] { trace.push_back("small" + std::to_string(leaf)); });
  }
  sim.run();
  return trace;
}

TEST(SimulatorFaults, EmptyAndAllHealthyPlansAreBitIdenticalToNoPlan) {
  const auto topo = net::Topology::paper_tree(4);
  const auto m = net::medium(net::MediumKind::kWifi80211ac);

  Simulator plain(topo, m);
  const auto trace_plain = run_traffic(plain);

  Simulator with_empty(topo, m);
  with_empty.set_fault_plan(FaultPlan(7));
  const auto trace_empty = run_traffic(with_empty);

  // Non-empty but harmless at every relevant instant: zero loss plus a crash
  // window that opens long after the run completes.
  Simulator with_benign(topo, m);
  FaultPlan benign(7);
  benign.loss(topo.leaves().front(), 0.0)
      .crash(topo.root(), 365ll * 24 * 3600 * net::kSecond, kForever);
  with_benign.set_fault_plan(benign);
  const auto trace_benign = run_traffic(with_benign);

  EXPECT_EQ(trace_plain, trace_empty);
  EXPECT_EQ(trace_plain, trace_benign);
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    EXPECT_EQ(plain.stats(id).bytes_tx, with_benign.stats(id).bytes_tx);
    EXPECT_EQ(plain.stats(id).bytes_rx, with_benign.stats(id).bytes_rx);
    EXPECT_EQ(plain.stats(id).tx_time, with_benign.stats(id).tx_time);
  }
  EXPECT_EQ(plain.now(), with_benign.now());
  EXPECT_EQ(with_benign.total_drops(), 0u);
}

TEST(SimulatorFaults, SameSeedAndPlanReproduceTheRunExactly) {
  const auto topo = net::Topology::paper_tree(6);
  FaultPlan plan(99);
  for (const NodeId leaf : topo.leaves()) plan.loss(leaf, 0.3);

  auto lossy_run = [&](std::vector<std::string>& trace) {
    Simulator sim(topo, net::medium(net::MediumKind::kWifi80211n));
    sim.set_fault_plan(plan);
    for (const NodeId leaf : topo.leaves()) {
      for (int i = 0; i < 4; ++i) {
        sim.send_reliable(leaf, topo.parent(leaf), 1000 + i,
                          [&trace, leaf, i](const net::DeliveryOutcome& o) {
                            trace.push_back(std::to_string(leaf) + ":" +
                                            std::to_string(i) + ":" +
                                            (o.delivered ? "ok" : "lost") + ":" +
                                            std::to_string(o.attempts));
                          });
      }
    }
    sim.run();
    return std::tuple{sim.now(), sim.total_bytes_transferred(),
                      sim.total_retransmissions(), sim.total_drops()};
  };

  std::vector<std::string> trace_a, trace_b;
  const auto a = lossy_run(trace_a);
  const auto b = lossy_run(trace_b);
  EXPECT_EQ(trace_a, trace_b);  // identical delivery order and outcomes
  EXPECT_EQ(a, b);              // identical makespan, bytes, retries, drops
  EXPECT_GT(std::get<2>(a), 0u);  // the plan actually bit
}

TEST(SimulatorFaults, CertainLossMakesSendSilentlyDrop) {
  const auto topo = net::Topology::star(2);
  Simulator sim(topo, net::medium(net::MediumKind::kWired1G));
  const NodeId leaf = topo.leaves().front();
  FaultPlan plan(1);
  plan.loss(leaf, 1.0);
  sim.set_fault_plan(plan);
  bool delivered = false;
  sim.send(leaf, topo.root(), 500, [&] { delivered = true; });
  sim.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(sim.stats(leaf).packets_dropped, 1u);
  EXPECT_EQ(sim.stats(leaf).bytes_tx, 500u);       // it did hit the air
  EXPECT_EQ(sim.stats(topo.root()).bytes_rx, 0u);  // but never landed
}

TEST(SimulatorFaults, SendReliableByteAccountingMatchesRetransmissions) {
  const auto topo = net::Topology::star(2);
  const NodeId leaf = topo.leaves().front();
  FaultPlan plan(5);
  plan.loss(leaf, 0.4);
  Simulator sim(topo, net::medium(net::MediumKind::kWifi80211ac));
  sim.set_fault_plan(plan);

  const std::uint64_t payload = 1200;
  const int count = 32;
  std::uint64_t attempts_total = 0;
  int completed = 0;
  for (int i = 0; i < count; ++i) {
    sim.send_reliable(leaf, topo.root(), payload,
                      [&](const net::DeliveryOutcome& o) {
                        ++completed;
                        attempts_total += o.attempts;
                        // Nothing was suppressed; an attempt still queued on
                        // the busy link at completion has not been charged
                        // yet, so the snapshot can only undershoot.
                        EXPECT_LE(o.bytes_on_wire, payload * o.attempts);
                      });
  }
  sim.run();
  EXPECT_EQ(completed, count);
  const auto& st = sim.stats(leaf);
  // bytes == payload × (1 + retransmissions), summed over all transfers.
  EXPECT_EQ(st.bytes_tx, payload * (count + st.retransmissions));
  EXPECT_EQ(st.bytes_retransmitted, payload * st.retransmissions);
  EXPECT_EQ(attempts_total, count + st.retransmissions);
  EXPECT_GT(st.retransmissions, 0u);
}

TEST(SimulatorFaults, SendReliableGivesUpAfterTheRetryCap) {
  const auto topo = net::Topology::star(2);
  const NodeId leaf = topo.leaves().front();
  FaultPlan plan(3);
  plan.loss(leaf, 1.0);
  Simulator sim(topo, net::medium(net::MediumKind::kWired1G));
  sim.set_fault_plan(plan);
  net::ReliableConfig cfg;
  cfg.max_retries = 3;
  bool reported = false;
  sim.send_reliable(leaf, topo.root(), 800,
                    [&](const net::DeliveryOutcome& o) {
                      reported = true;
                      EXPECT_FALSE(o.delivered);
                      EXPECT_EQ(o.attempts, 4u);  // 1 + max_retries
                      EXPECT_EQ(o.bytes_on_wire, 4u * 800u);
                    },
                    cfg);
  sim.run();
  EXPECT_TRUE(reported);
  EXPECT_EQ(sim.stats(leaf).retransmissions, 3u);
}

TEST(SimulatorFaults, CrashedSenderSuppressesWithoutSpendingBytes) {
  const auto topo = net::Topology::star(2);
  const NodeId leaf = topo.leaves().front();
  FaultPlan plan;
  plan.crash(leaf, 0, kForever);
  Simulator sim(topo, net::medium(net::MediumKind::kWired1G));
  sim.set_fault_plan(plan);
  net::ReliableConfig cfg;
  cfg.max_retries = 2;
  bool reported = false;
  sim.send_reliable(leaf, topo.root(), 700,
                    [&](const net::DeliveryOutcome& o) {
                      reported = true;
                      EXPECT_FALSE(o.delivered);
                      EXPECT_EQ(o.bytes_on_wire, 0u);
                    },
                    cfg);
  sim.run();
  EXPECT_TRUE(reported);
  EXPECT_EQ(sim.stats(leaf).bytes_tx, 0u);
  EXPECT_EQ(sim.stats(leaf).sends_suppressed, 3u);  // every attempt
  EXPECT_EQ(sim.stats(leaf).retransmissions, 0u);   // nothing hit the air
}

TEST(SimulatorFaults, NodeRecoveryRestoresDelivery) {
  const auto topo = net::Topology::star(2);
  const NodeId leaf = topo.leaves().front();
  FaultPlan plan;
  plan.crash(topo.root(), 0, 100 * kMillisecond);
  Simulator sim(topo, net::medium(net::MediumKind::kWired1G));
  sim.set_fault_plan(plan);
  int delivered = 0;
  // First packet lands while the receiver is down; the second goes out after
  // the recovery instant.
  sim.send(leaf, topo.root(), 100, [&] { ++delivered; });
  sim.schedule(200 * kMillisecond, [&] {
    sim.send(leaf, topo.root(), 100, [&] { ++delivered; });
  });
  sim.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(sim.stats(leaf).packets_dropped, 1u);
  EXPECT_EQ(sim.stats(topo.root()).packets_rx, 1u);
}

TEST(SimulatorFaults, OutageBlocksBothDirections) {
  const auto topo = net::Topology::star(2);
  const NodeId leaf = topo.leaves().front();
  FaultPlan plan;
  plan.outage(leaf, 0, kForever);
  Simulator sim(topo, net::medium(net::MediumKind::kWired1G));
  sim.set_fault_plan(plan);
  bool up = false, down = false;
  sim.send(leaf, topo.root(), 100, [&] { up = true; });
  sim.send(topo.root(), leaf, 100, [&] { down = true; });
  sim.run();
  EXPECT_FALSE(up);
  EXPECT_FALSE(down);
  EXPECT_EQ(sim.total_drops(), 2u);
}

TEST(SimulatorFaults, RejectsMalformedReliableConfig) {
  const auto topo = net::Topology::star(2);
  Simulator sim(topo, net::medium(net::MediumKind::kWired1G));
  net::ReliableConfig bad;
  bad.backoff_factor = 0.5;
  EXPECT_THROW(sim.send_reliable(topo.leaves().front(), topo.root(), 1, {}, bad),
               std::invalid_argument);
}

// ---------------------------------------------------------------- EdgeHD

data::Dataset fault_dataset(std::size_t train = 500, std::size_t test = 150) {
  auto ds = data::make_synthetic("hier", 40, 3, {10, 10, 10, 10}, train, test,
                                 51, 3.6F, 0.5F, 0.5F);
  data::zscore_normalize(ds);
  return ds;
}

core::SystemConfig fault_cfg() {
  core::SystemConfig cfg;
  cfg.total_dim = 1000;
  cfg.batch_size = 4;
  return cfg;
}

double accum_cosine(const hdc::AccumHV& a, const hdc::AccumHV& b) {
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  return (na == 0 || nb == 0) ? 0.0 : dot / std::sqrt(na * nb);
}

TEST(EdgeHdFaults, AllHealthyPlanIsBitIdenticalToNoPlan) {
  const auto ds = fault_dataset();
  core::EdgeHdSystem plain(ds, net::Topology::paper_tree(4), fault_cfg());
  core::EdgeHdSystem masked(ds, net::Topology::paper_tree(4), fault_cfg());
  // Non-trivial plan whose snapshot at t=0 is all-healthy.
  FaultPlan plan(11);
  plan.crash(0, 1000, 2000).loss(1, 0.0);
  masked.set_fault_plan(plan, 0);
  EXPECT_FALSE(masked.degraded_mode());

  const auto comm_a = plain.train();
  const auto comm_b = masked.train();
  EXPECT_EQ(comm_a.bytes, comm_b.bytes);
  EXPECT_EQ(comm_a.messages, comm_b.messages);
  EXPECT_TRUE(masked.stragglers().empty());

  const auto root = plain.topology().root();
  for (std::size_t c = 0; c < ds.num_classes; ++c) {
    EXPECT_EQ(plain.classifier_at(root).class_accumulator(c),
              masked.classifier_at(root).class_accumulator(c));
  }
  const auto start = plain.topology().leaves().front();
  for (std::size_t s = 0; s < 20; ++s) {
    const auto ra = plain.infer_routed(ds.test_x[s], start);
    const auto rb = masked.infer_routed(ds.test_x[s], start);
    EXPECT_EQ(ra.label, rb.label);
    EXPECT_EQ(ra.node, rb.node);
    EXPECT_EQ(ra.bytes, rb.bytes);
    EXPECT_FALSE(rb.degraded);
    EXPECT_EQ(rb.retry_bytes, 0u);
  }
}

TEST(EdgeHdFaults, OrphanedLeafServesLocallyAndFlagsDegraded) {
  const auto ds = fault_dataset();
  auto cfg = fault_cfg();
  cfg.confidence_threshold = 1.1;  // always wants to escalate
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  sys.train();
  const auto leaf = sys.topology().leaves().front();

  FaultPlan plan;
  plan.outage(leaf);  // the leaf's uplink is down
  sys.set_fault_plan(plan);
  ASSERT_TRUE(sys.degraded_mode());

  std::size_t served = 0, degraded = 0, agree = 0;
  for (std::size_t s = 0; s < ds.test_size(); ++s) {
    const auto r = sys.infer_routed(ds.test_x[s], leaf);
    if (r.served()) ++served;
    if (r.degraded) ++degraded;
    EXPECT_EQ(r.node, leaf);  // stranded at the origin
    EXPECT_EQ(r.level, 1u);
    EXPECT_EQ(r.bytes, 0u);  // nothing crossed the network
    EXPECT_LT(r.label, ds.num_classes);
    // The local prediction is exactly what the leaf's model says.
    const auto hv = sys.encode_all(ds.test_x[s])[leaf];
    const auto sims = sys.classifier_at(leaf).similarities(hv);
    const auto best = static_cast<std::size_t>(
        std::max_element(sims.begin(), sims.end()) - sims.begin());
    if (r.label == best) ++agree;
  }
  EXPECT_EQ(served, ds.test_size());    // 100% availability, degraded
  EXPECT_EQ(degraded, ds.test_size());
  EXPECT_EQ(agree, ds.test_size());
}

TEST(EdgeHdFaults, CrashedGatewaySubtreeStaysFullyServed) {
  const auto ds = fault_dataset();
  auto cfg = fault_cfg();
  cfg.confidence_threshold = 1.1;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  sys.train();
  const auto& topo = sys.topology();
  const auto gw = topo.parent(topo.leaves().front());
  ASSERT_NE(gw, topo.root());

  FaultPlan plan;
  plan.crash(gw);
  sys.set_fault_plan(plan);

  for (const auto leaf : topo.leaves()) {
    if (topo.parent(leaf) != gw) continue;
    for (std::size_t s = 0; s < ds.test_size(); ++s) {
      const auto r = sys.infer_routed(ds.test_x[s], leaf);
      ASSERT_TRUE(r.served());
      EXPECT_TRUE(r.degraded);
      EXPECT_EQ(r.node, leaf);
    }
  }
  // Queries rooted outside the dead subtree escalate past it and are served
  // at the root on a thinner aggregate.
  const auto far_leaf = topo.leaves().back();
  ASSERT_NE(topo.parent(far_leaf), gw);
  const auto r = sys.infer_routed(ds.test_x[0], far_leaf);
  EXPECT_TRUE(r.served());
  EXPECT_EQ(r.node, topo.root());
  EXPECT_TRUE(r.degraded);  // the root aggregate is missing gw's subtree
}

TEST(EdgeHdFaults, CrashedStartNodeIsUnserved) {
  const auto ds = fault_dataset(200, 40);
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), fault_cfg());
  sys.train();
  const auto leaf = sys.topology().leaves().front();
  FaultPlan plan;
  plan.crash(leaf);
  sys.set_fault_plan(plan);
  const auto r = sys.infer_routed(ds.test_x[0], leaf);
  EXPECT_FALSE(r.served());
  EXPECT_TRUE(r.degraded);
}

TEST(EdgeHdFaults, FailFastPolicyReportsUnservedInsteadOfDegraded) {
  const auto ds = fault_dataset(200, 40);
  auto cfg = fault_cfg();
  cfg.confidence_threshold = 1.1;
  cfg.failover.serve_degraded = false;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  sys.train();
  const auto leaf = sys.topology().leaves().front();
  FaultPlan plan;
  plan.outage(leaf);
  sys.set_fault_plan(plan);
  const auto r = sys.infer_routed(ds.test_x[0], leaf);
  EXPECT_FALSE(r.served());
  EXPECT_TRUE(r.degraded);
}

TEST(EdgeHdFaults, LossyLinksChargeExpectedRetryBytes) {
  const auto ds = fault_dataset(200, 40);
  auto cfg = fault_cfg();
  cfg.confidence_threshold = 1.1;  // escalate to the root
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);
  sys.train();
  const auto leaf = sys.topology().leaves().front();

  FaultPlan plan;
  plan.loss(leaf, 0.5);
  sys.set_fault_plan(plan);
  const auto r = sys.infer_routed(ds.test_x[0], leaf);
  ASSERT_TRUE(r.served());
  EXPECT_EQ(r.node, sys.topology().root());
  // Loss does not cut connectivity (reliable transport wins eventually), so
  // the answer itself is not degraded — but it costs retries: about
  // expected_attempts - 1 extra copies of the lossy hop.
  EXPECT_FALSE(r.degraded);
  EXPECT_GT(r.retry_bytes, 0u);
  EXPECT_LT(r.retry_bytes, r.bytes);  // one lossy hop out of the whole tree
}

TEST(EdgeHdFaults, TrainingToleratesMissingChildAndReintegratesOnRecovery) {
  const auto ds = fault_dataset();
  const auto topo = net::Topology::paper_tree(4);
  core::EdgeHdSystem healthy(ds, topo, fault_cfg());
  const auto healthy_comm = healthy.train_initial();

  core::EdgeHdSystem faulty(ds, topo, fault_cfg());
  const auto leaf = faulty.topology().leaves().front();
  FaultPlan plan;
  plan.outage(leaf);
  faulty.set_fault_plan(plan);
  const auto degraded_comm = faulty.train_initial();

  // The cut child's model never crossed the wire, and it is on record.
  EXPECT_LT(degraded_comm.bytes, healthy_comm.bytes);
  ASSERT_EQ(faulty.stragglers().size(), 1u);
  EXPECT_EQ(faulty.stragglers().front(), leaf);

  // While cut, reintegration is a no-op (the path is still down).
  EXPECT_EQ(faulty.reintegrate_stragglers().bytes, 0u);
  ASSERT_EQ(faulty.stragglers().size(), 1u);

  // Recovery: the pending contribution ships and lands at every ancestor.
  faulty.clear_health();
  const auto reint = faulty.reintegrate_stragglers();
  EXPECT_GT(reint.bytes, 0u);
  EXPECT_TRUE(faulty.stragglers().empty());
  // k class hypervectors per hop, two hops (leaf -> gateway -> root).
  EXPECT_EQ(reint.messages, ds.num_classes * 2);

  // The lifted deltas reconstruct the healthy models up to the projection's
  // integer rescale truncation — compare by direction, not bit-for-bit.
  const auto root = topo.root();
  const auto gw = topo.parent(leaf);
  for (std::size_t c = 0; c < ds.num_classes; ++c) {
    EXPECT_GT(accum_cosine(healthy.classifier_at(gw).class_accumulator(c),
                           faulty.classifier_at(gw).class_accumulator(c)),
              0.98);
    EXPECT_GT(accum_cosine(healthy.classifier_at(root).class_accumulator(c),
                           faulty.classifier_at(root).class_accumulator(c)),
              0.98);
  }
}

TEST(EdgeHdFaults, RetrainUnderFaultsKeepsWorkingModels) {
  const auto ds = fault_dataset();
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), fault_cfg());
  const auto leaf = sys.topology().leaves().front();
  FaultPlan plan;
  plan.outage(leaf);
  sys.set_fault_plan(plan);
  sys.train();  // initial + retrain, both with the child missing
  // The straggler is on record once (train_initial and retrain dedupe).
  ASSERT_EQ(sys.stragglers().size(), 1u);
  EXPECT_EQ(sys.stragglers().front(), leaf);
  // The hierarchy still learns from the three connected leaves.
  EXPECT_GT(sys.accuracy_at_node(sys.topology().root()), 0.55);
}

TEST(EdgeHdFaults, ResidualPropagationHoldsBackAndShipsOnRecovery) {
  const auto ds = fault_dataset();
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), fault_cfg());
  sys.train();
  const auto& topo = sys.topology();
  const auto leaf = topo.leaves().front();

  // Generate feedback traffic at the orphaned leaf.
  FaultPlan plan;
  plan.outage(leaf);
  sys.set_fault_plan(plan);
  for (std::size_t s = 0; s < 60; ++s) {
    sys.online_serve(ds.train_x[s], ds.train_y[s], leaf);
  }
  const auto cut = sys.propagate_residuals();
  EXPECT_EQ(cut.bytes, 0u);  // nothing from the leaf crossed the dead link

  // After recovery the held-back bundle ships with the next propagation.
  sys.clear_health();
  const auto recovered = sys.propagate_residuals();
  EXPECT_GE(recovered.bytes, 0u);
}

TEST(EdgeHdFaults, DegradedInferenceIsIdenticalAcrossWorkerCounts) {
  const auto ds = fault_dataset(300, 60);
  auto cfg1 = fault_cfg();
  cfg1.num_threads = 1;
  auto cfg4 = fault_cfg();
  cfg4.num_threads = 4;
  core::EdgeHdSystem one(ds, net::Topology::paper_tree(4), cfg1);
  core::EdgeHdSystem four(ds, net::Topology::paper_tree(4), cfg4);
  one.train();
  four.train();

  FaultPlan plan;
  plan.crash(one.topology().parent(one.topology().leaves().front()))
      .loss(one.topology().leaves().back(), 0.3);
  one.set_fault_plan(plan);
  four.set_fault_plan(plan);

  const auto start = one.topology().leaves().front();
  const auto ra = one.infer_routed_batch(ds.test_x, start);
  const auto rb = four.infer_routed_batch(ds.test_x, start);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].label, rb[i].label);
    EXPECT_EQ(ra[i].node, rb[i].node);
    EXPECT_EQ(ra[i].degraded, rb[i].degraded);
    EXPECT_EQ(ra[i].bytes, rb[i].bytes);
    EXPECT_EQ(ra[i].retry_bytes, rb[i].retry_bytes);
  }
}

}  // namespace
