// Unit tests for the deployment cost model (src/core/cost_model.*).
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "data/dataset.hpp"
#include "net/topology.hpp"

namespace {

using namespace edgehd;
using core::CostModel;
using core::Deployment;
using core::WorkloadShape;

WorkloadShape pamap_shape() {
  return WorkloadShape::from_spec(data::spec(data::DatasetId::kPamap2));
}

TEST(CostModel, ShapeFromSpecMatchesTableOne) {
  const auto s = pamap_shape();
  EXPECT_EQ(s.num_features, 75u);
  EXPECT_EQ(s.num_classes, 5u);
  EXPECT_EQ(s.train_size, 611142u);
  EXPECT_EQ(s.partitions.size(), 3u);
  EXPECT_EQ(s.partitions[0] + s.partitions[1] + s.partitions[2], 75u);
  // Non-hierarchical specs collapse to one partition.
  const auto m = WorkloadShape::from_spec(data::spec(data::DatasetId::kMnist));
  EXPECT_EQ(m.partitions.size(), 1u);
}

TEST(CostModel, ValidatesShape) {
  WorkloadShape bad = pamap_shape();
  bad.partitions = {10, 10};  // does not sum to 75
  EXPECT_THROW(CostModel{bad}, std::invalid_argument);
}

TEST(CostModel, BatchCountFollowsTheProtocol) {
  const CostModel model(pamap_shape());
  // 5 classes, ~122229 samples each, B = 75 -> 1630 batches per class.
  EXPECT_EQ(model.num_batches(), 5u * 1630);
}

TEST(CostModel, OperationCountsAreInternallyConsistent) {
  const CostModel model(pamap_shape());
  // Sparse encoding is cheaper than dense.
  EXPECT_LT(model.hd_central_train_macs(true),
            model.hd_central_train_macs(false));
  EXPECT_LT(model.hd_central_infer_macs_per_query(true),
            model.hd_central_infer_macs_per_query(false));
  // DNN training is epoch-scaled forward+backward work.
  EXPECT_GT(model.dnn_train_macs(),
            model.dnn_infer_macs_per_query() * model.shape().train_size);
}

TEST(CostModel, AllDeploymentsProducePositiveCosts) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& medium = net::medium(net::MediumKind::kWired1G);
  for (const auto dep : {Deployment::kDnnGpu, Deployment::kHdGpu,
                         Deployment::kHdFpga, Deployment::kEdgeHd}) {
    const auto costs = model.evaluate(dep, topo, medium);
    EXPECT_GT(costs.train.time, 0);
    EXPECT_GT(costs.train.energy_j, 0.0);
    EXPECT_GT(costs.train.bytes, 0u);
    EXPECT_GT(costs.infer.time, 0);
  }
}

TEST(CostModel, EdgeHdMovesFewerBytesThanCentralized) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& medium = net::medium(net::MediumKind::kWired1G);
  const auto central = model.evaluate(Deployment::kHdFpga, topo, medium);
  const auto edge = model.evaluate(Deployment::kEdgeHd, topo, medium);
  EXPECT_LT(edge.train.bytes, central.train.bytes);
  EXPECT_LT(edge.infer.bytes, central.infer.bytes);
}

TEST(CostModel, LowerBandwidthSlowsCentralizedTraining) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto fast = model.evaluate(Deployment::kHdFpga, topo,
                                   net::medium(net::MediumKind::kWired1G));
  const auto slow = model.evaluate(Deployment::kHdFpga, topo,
                                   net::medium(net::MediumKind::kBluetooth4));
  EXPECT_GT(slow.train.time, fast.train.time);
}

TEST(CostModel, DnnIsSlowestToTrainOnGpuClassPlatforms) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& medium = net::medium(net::MediumKind::kWired1G);
  const auto dnn = model.evaluate(Deployment::kDnnGpu, topo, medium);
  const auto hd = model.evaluate(Deployment::kHdGpu, topo, medium);
  EXPECT_GT(dnn.train.time, hd.train.time);
  EXPECT_GT(dnn.train.energy_j, hd.train.energy_j);
}

TEST(CostModel, InferenceLevelTradesLatencyForCoverage) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& medium = net::medium(net::MediumKind::kWifi80211n);
  const auto l1 = model.edgehd_query_latency(topo, medium, 1);
  const auto l2 = model.edgehd_query_latency(topo, medium, 2);
  const auto l3 = model.edgehd_query_latency(topo, medium, 3);
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, l3);
}

TEST(CostModel, LocalInferenceBeatsCentralizedLatencyOnSlowNetworks) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& bt = net::medium(net::MediumKind::kBluetooth4);
  const auto central = model.centralized_query_latency(
      topo, bt, net::hd_fpga_central(),
      model.hd_central_infer_macs_per_query(true));
  EXPECT_GT(central, model.edgehd_query_latency(topo, bt, 1));
}

TEST(CostModel, RoutedInferenceCostsLessThanAllCentral) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& medium = net::medium(net::MediumKind::kWired1G);
  const auto routed = model.edgehd_inference_routed(topo, medium);
  const auto all_central = model.edgehd_inference_at_level(topo, medium, 3);
  EXPECT_LT(routed.bytes, all_central.bytes);
}

TEST(CostModel, ValidatesLevelArguments) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& medium = net::medium(net::MediumKind::kWired1G);
  EXPECT_THROW(model.edgehd_inference_at_level(topo, medium, 0),
               std::invalid_argument);
  EXPECT_THROW(model.edgehd_inference_at_level(topo, medium, 9),
               std::invalid_argument);
  EXPECT_THROW(model.edgehd_inference_at_level(topo, medium, 2, 0.0),
               std::invalid_argument);
  EXPECT_THROW(model.edgehd_query_latency(topo, medium, 0),
               std::invalid_argument);
}

TEST(CostModel, WirelessSharedDomainHurtsDeepCentralizedTrees) {
  // With a shared wireless medium, per-hop forwarding serializes: deeper
  // centralized hierarchies pay more (the Figure 13 mechanism).
  const CostModel model(pamap_shape());
  const auto& wifi = net::medium(net::MediumKind::kWifi80211n);
  const auto shallow = model.evaluate(
      Deployment::kHdFpga, net::Topology::uniform_depth(3, 2), wifi);
  const auto deep = model.evaluate(
      Deployment::kHdFpga, net::Topology::uniform_depth(3, 5), wifi);
  EXPECT_GT(deep.train.time, shallow.train.time);
}

}  // namespace
