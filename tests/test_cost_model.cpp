// Unit tests for the deployment cost model (src/core/cost_model.*) and the
// collective-schedule cost model (src/proto/collective.*).
#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "data/dataset.hpp"
#include "net/medium.hpp"
#include "net/topology.hpp"
#include "proto/collective.hpp"

namespace {

using namespace edgehd;
using core::CostModel;
using core::Deployment;
using core::WorkloadShape;
using proto::CollectiveAlgo;
using proto::CollectiveCostModel;

WorkloadShape pamap_shape() {
  return WorkloadShape::from_spec(data::spec(data::DatasetId::kPamap2));
}

TEST(CostModel, ShapeFromSpecMatchesTableOne) {
  const auto s = pamap_shape();
  EXPECT_EQ(s.num_features, 75u);
  EXPECT_EQ(s.num_classes, 5u);
  EXPECT_EQ(s.train_size, 611142u);
  EXPECT_EQ(s.partitions.size(), 3u);
  EXPECT_EQ(s.partitions[0] + s.partitions[1] + s.partitions[2], 75u);
  // Non-hierarchical specs collapse to one partition.
  const auto m = WorkloadShape::from_spec(data::spec(data::DatasetId::kMnist));
  EXPECT_EQ(m.partitions.size(), 1u);
}

TEST(CostModel, ValidatesShape) {
  WorkloadShape bad = pamap_shape();
  bad.partitions = {10, 10};  // does not sum to 75
  EXPECT_THROW(CostModel{bad}, std::invalid_argument);
}

TEST(CostModel, BatchCountFollowsTheProtocol) {
  const CostModel model(pamap_shape());
  // 5 classes, ~122229 samples each, B = 75 -> 1630 batches per class.
  EXPECT_EQ(model.num_batches(), 5u * 1630);
}

TEST(CostModel, OperationCountsAreInternallyConsistent) {
  const CostModel model(pamap_shape());
  // Sparse encoding is cheaper than dense.
  EXPECT_LT(model.hd_central_train_macs(true),
            model.hd_central_train_macs(false));
  EXPECT_LT(model.hd_central_infer_macs_per_query(true),
            model.hd_central_infer_macs_per_query(false));
  // DNN training is epoch-scaled forward+backward work.
  EXPECT_GT(model.dnn_train_macs(),
            model.dnn_infer_macs_per_query() * model.shape().train_size);
}

TEST(CostModel, AllDeploymentsProducePositiveCosts) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& medium = net::medium(net::MediumKind::kWired1G);
  for (const auto dep : {Deployment::kDnnGpu, Deployment::kHdGpu,
                         Deployment::kHdFpga, Deployment::kEdgeHd}) {
    const auto costs = model.evaluate(dep, topo, medium);
    EXPECT_GT(costs.train.time, 0);
    EXPECT_GT(costs.train.energy_j, 0.0);
    EXPECT_GT(costs.train.bytes, 0u);
    EXPECT_GT(costs.infer.time, 0);
  }
}

TEST(CostModel, EdgeHdMovesFewerBytesThanCentralized) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& medium = net::medium(net::MediumKind::kWired1G);
  const auto central = model.evaluate(Deployment::kHdFpga, topo, medium);
  const auto edge = model.evaluate(Deployment::kEdgeHd, topo, medium);
  EXPECT_LT(edge.train.bytes, central.train.bytes);
  EXPECT_LT(edge.infer.bytes, central.infer.bytes);
}

TEST(CostModel, LowerBandwidthSlowsCentralizedTraining) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto fast = model.evaluate(Deployment::kHdFpga, topo,
                                   net::medium(net::MediumKind::kWired1G));
  const auto slow = model.evaluate(Deployment::kHdFpga, topo,
                                   net::medium(net::MediumKind::kBluetooth4));
  EXPECT_GT(slow.train.time, fast.train.time);
}

TEST(CostModel, DnnIsSlowestToTrainOnGpuClassPlatforms) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& medium = net::medium(net::MediumKind::kWired1G);
  const auto dnn = model.evaluate(Deployment::kDnnGpu, topo, medium);
  const auto hd = model.evaluate(Deployment::kHdGpu, topo, medium);
  EXPECT_GT(dnn.train.time, hd.train.time);
  EXPECT_GT(dnn.train.energy_j, hd.train.energy_j);
}

TEST(CostModel, InferenceLevelTradesLatencyForCoverage) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& medium = net::medium(net::MediumKind::kWifi80211n);
  const auto l1 = model.edgehd_query_latency(topo, medium, 1);
  const auto l2 = model.edgehd_query_latency(topo, medium, 2);
  const auto l3 = model.edgehd_query_latency(topo, medium, 3);
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, l3);
}

TEST(CostModel, LocalInferenceBeatsCentralizedLatencyOnSlowNetworks) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& bt = net::medium(net::MediumKind::kBluetooth4);
  const auto central = model.centralized_query_latency(
      topo, bt, net::hd_fpga_central(),
      model.hd_central_infer_macs_per_query(true));
  EXPECT_GT(central, model.edgehd_query_latency(topo, bt, 1));
}

TEST(CostModel, RoutedInferenceCostsLessThanAllCentral) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& medium = net::medium(net::MediumKind::kWired1G);
  const auto routed = model.edgehd_inference_routed(topo, medium);
  const auto all_central = model.edgehd_inference_at_level(topo, medium, 3);
  EXPECT_LT(routed.bytes, all_central.bytes);
}

TEST(CostModel, ValidatesLevelArguments) {
  const CostModel model(pamap_shape());
  const auto topo = net::Topology::paper_tree(3);
  const auto& medium = net::medium(net::MediumKind::kWired1G);
  EXPECT_THROW(model.edgehd_inference_at_level(topo, medium, 0),
               std::invalid_argument);
  EXPECT_THROW(model.edgehd_inference_at_level(topo, medium, 9),
               std::invalid_argument);
  EXPECT_THROW(model.edgehd_inference_at_level(topo, medium, 2, 0.0),
               std::invalid_argument);
  EXPECT_THROW(model.edgehd_query_latency(topo, medium, 0),
               std::invalid_argument);
}

TEST(CostModel, WirelessSharedDomainHurtsDeepCentralizedTrees) {
  // With a shared wireless medium, per-hop forwarding serializes: deeper
  // centralized hierarchies pay more (the Figure 13 mechanism).
  const CostModel model(pamap_shape());
  const auto& wifi = net::medium(net::MediumKind::kWifi80211n);
  const auto shallow = model.evaluate(
      Deployment::kHdFpga, net::Topology::uniform_depth(3, 2), wifi);
  const auto deep = model.evaluate(
      Deployment::kHdFpga, net::Topology::uniform_depth(3, 5), wifi);
  EXPECT_GT(deep.train.time, shallow.train.time);
}

// ---- CollectiveCostModel ----------------------------------------------------

/// Lab medium serializing exactly one byte per nanosecond (8e9 bps), so the
/// closed forms below stay integer-exact: hop_time(F, S) = F*latency + S ns.
net::Medium lab_medium(net::SimTime latency, bool shared) {
  net::Medium m = net::medium(net::MediumKind::kWired1G);
  m.bandwidth_bps = 8e9;
  m.latency = latency;
  m.shared_domain = shared;
  return m;
}

TEST(CollectiveCost, StarReduceMatchesClosedForm) {
  const auto topo = net::Topology::star(2);
  const CollectiveCostModel wired(topo, lab_medium(100, false));
  // One parent, two children: a wired parent serializes its own children,
  // so the level drains in fan_in * (F*latency + ser(S)) = 2 * (300 + 1000).
  const auto costs = wired.reduce_to_root(3, 1000);
  EXPECT_EQ(costs.time, 2 * (3 * 100 + 1000));
  EXPECT_EQ(costs.bytes, 2u * 1000);
  const double per_edge_s = (3 * 100 + 1000) / 1e9;
  EXPECT_DOUBLE_EQ(
      costs.energy_j,
      2 * (wired.medium().tx_power_w + wired.medium().rx_power_w) *
          per_edge_s);
  // Broadcast is the reduce at F = 1 by the per-hop model's symmetry.
  const auto bc = wired.broadcast_from_root(1000);
  EXPECT_EQ(bc.time, 2 * (100 + 1000));
  EXPECT_EQ(bc.bytes, 2u * 1000);
  // Nothing to ship, nothing charged.
  EXPECT_EQ(wired.reduce_to_root(0, 1000).time, 0);
  EXPECT_EQ(wired.reduce_to_root(0, 1000).bytes, 0u);
}

TEST(CollectiveCost, PaperTreeReduceSharedVsWired) {
  // paper_tree(4): 4 leaf edges into 2 gateways, 2 gateway edges into the
  // root. Wired levels drain at the slowest parent; a shared medium is one
  // collision domain, so every edge of a level serializes.
  const auto topo = net::Topology::paper_tree(4);
  const std::int64_t e = 2 * 100 + 500;  // edge_time at F=2, S=500
  const CollectiveCostModel wired(topo, lab_medium(100, false));
  const auto w = wired.reduce_to_root(2, 500);
  EXPECT_EQ(w.time, 2 * e + 2 * e);
  EXPECT_EQ(w.bytes, 6u * 500);
  const CollectiveCostModel shared(topo, lab_medium(100, true));
  const auto s = shared.reduce_to_root(2, 500);
  EXPECT_EQ(s.time, 4 * e + 2 * e);
  EXPECT_EQ(s.bytes, w.bytes);
  EXPECT_GT(s.time, w.time);
}

TEST(CollectiveCost, TwoPeerAllReduceClosedForms) {
  const auto topo = net::Topology::star(2);
  const CollectiveCostModel wired(topo, lab_medium(100, false));
  // Ring, P=2: 2 rounds of half-payload chunks, every logical transfer
  // relayed through the parent (two physical legs).
  const auto ring = wired.all_reduce(CollectiveAlgo::kRingAllReduce, 2, 1000);
  EXPECT_EQ(ring.time, 2 * 2 * (100 + 500));
  EXPECT_EQ(ring.bytes, 4u * 2 * 500);
  // Tree, P=2: 2 rounds of whole payloads, 2 logical transfers.
  const auto tree = wired.all_reduce(CollectiveAlgo::kTreeAllReduce, 2, 1000);
  EXPECT_EQ(tree.time, 2 * 2 * (100 + 1000));
  EXPECT_EQ(tree.bytes, 2u * 2 * 1000);
  // Degenerate inputs cost nothing; p2p is not an all-reduce schedule.
  EXPECT_EQ(wired.all_reduce(CollectiveAlgo::kRingAllReduce, 1, 1000).bytes,
            0u);
  EXPECT_EQ(wired.all_reduce(CollectiveAlgo::kTreeAllReduce, 8, 0).time, 0);
  EXPECT_THROW(wired.all_reduce(CollectiveAlgo::kPointToPoint, 4, 8),
               std::invalid_argument);
}

TEST(CollectiveCost, MonotoneInLatencyBandwidthAndPayload) {
  const auto topo = net::Topology::paper_tree(4);
  for (const bool shared : {false, true}) {
    const CollectiveCostModel base(topo, lab_medium(1000, shared));
    const CollectiveCostModel slower(topo, lab_medium(2000, shared));
    auto narrow_m = lab_medium(1000, shared);
    narrow_m.bandwidth_bps /= 4;
    const CollectiveCostModel narrow(topo, narrow_m);
    for (const std::uint64_t frames : {1u, 5u}) {
      const auto ref = base.reduce_to_root(frames, 4096);
      EXPECT_GT(slower.reduce_to_root(frames, 4096).time, ref.time);
      EXPECT_GT(narrow.reduce_to_root(frames, 4096).time, ref.time);
      EXPECT_GT(base.reduce_to_root(frames, 8192).time, ref.time);
      EXPECT_GT(base.reduce_to_root(frames + 1, 4096).time, ref.time);
      EXPECT_GT(base.reduce_to_root(frames, 8192).energy_j, ref.energy_j);
    }
    for (const auto algo :
         {CollectiveAlgo::kRingAllReduce, CollectiveAlgo::kTreeAllReduce}) {
      const auto ref = base.all_reduce(algo, 4, 4096);
      EXPECT_GT(slower.all_reduce(algo, 4, 4096).time, ref.time);
      EXPECT_GT(narrow.all_reduce(algo, 4, 4096).time, ref.time);
      EXPECT_GE(base.all_reduce(algo, 4, 8192).time, ref.time);
      EXPECT_GT(base.all_reduce(algo, 4, 8192).bytes, ref.bytes);
    }
  }
}

TEST(CollectiveCost, PickReducePrefersFusionOnlyWhenFramesAmortizeThePlan) {
  const auto topo = net::Topology::paper_tree(4);
  const CollectiveCostModel m(topo, lab_medium(net::kMillisecond, true));
  // One frame per edge: fusing saves nothing and still pays the plan
  // broadcast, so the legacy flow wins (ties also break to kPointToPoint).
  EXPECT_EQ(m.pick_reduce(1, 4096, 4096), CollectiveAlgo::kPointToPoint);
  // Many frames per edge amortize the plan: one fused frame per edge wins
  // even with zero payload savings, on latency alone.
  EXPECT_EQ(m.pick_reduce(10, 40960, 40960), CollectiveAlgo::kTreeReduce);
  // Deterministic argmin: same inputs, same answer, every time.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(m.pick_reduce(10, 40960, 40960), CollectiveAlgo::kTreeReduce);
    EXPECT_EQ(m.pick_reduce(1, 4096, 4096), CollectiveAlgo::kPointToPoint);
  }
}

TEST(CollectiveCost, PickAllReduceFollowsPayloadAndMedium) {
  // Shared medium: ring and tree move the same total bytes (2(P-1)S worth
  // of chunks vs 2(P-1) whole payloads), but the ring pays P times the
  // per-frame latencies — the binomial tree always wins the collision
  // domain.
  const auto topo = net::Topology::star(8);
  const CollectiveCostModel shared(topo, lab_medium(1000, true));
  EXPECT_EQ(shared.pick_all_reduce(8, 1u << 20),
            CollectiveAlgo::kTreeAllReduce);
  EXPECT_EQ(shared.pick_all_reduce(8, 64), CollectiveAlgo::kTreeAllReduce);
  // Wired: rounds run in parallel, so the bandwidth term is 2(P-1)S/P for
  // the ring vs 2 ceil(log2 P) S for the tree — the ring wins big payloads,
  // the tree wins the latency-bound small ones.
  const CollectiveCostModel wired(topo, lab_medium(1000, false));
  EXPECT_EQ(wired.pick_all_reduce(8, 1u << 20),
            CollectiveAlgo::kRingAllReduce);
  EXPECT_EQ(wired.pick_all_reduce(8, 8), CollectiveAlgo::kTreeAllReduce);
  // Equal time at P=2 with a 1-byte payload (the half chunk rounds back up
  // to a whole byte): the argmin falls through to energy, where the tree's
  // fewer transfers win — deterministically.
  EXPECT_EQ(wired.pick_all_reduce(2, 1), CollectiveAlgo::kTreeAllReduce);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(wired.pick_all_reduce(8, 1u << 20),
              CollectiveAlgo::kRingAllReduce);
  }
}

}  // namespace
