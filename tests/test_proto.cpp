// Unit tests for the protocol layer (src/proto): typed messages, versioned
// envelopes with strict bounds-checked decode, canonical byte accounting,
// the delivery buses, and the NodeRuntime phase state machine.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "hdc/random.hpp"
#include "hdc/wire.hpp"
#include "net/medium.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "proto/bus.hpp"
#include "proto/envelope.hpp"
#include "proto/messages.hpp"
#include "proto/node_runtime.hpp"
#include "proto/section_codec.hpp"
#include "proto/types.hpp"

namespace {

using namespace edgehd;
using proto::DecodeError;
using proto::Envelope;
using proto::Message;
using proto::MsgType;

hdc::AccumHV random_accum(std::size_t dim, std::int32_t magnitude,
                          std::uint64_t seed) {
  hdc::Rng rng(seed);
  hdc::AccumHV acc(dim);
  for (auto& v : acc) {
    v = static_cast<std::int32_t>(rng.index(2 * magnitude + 1)) - magnitude;
  }
  return acc;
}

hdc::BipolarHV random_bipolar(std::size_t dim, std::uint64_t seed) {
  hdc::Rng rng(seed);
  hdc::BipolarHV hv(dim);
  for (auto& v : hv) v = rng.bernoulli(0.5) ? 1 : -1;
  return hv;
}

/// Accumulator with every lane congruent to `count` mod 2 — the invariant a
/// leaf bundle of `count` bipolar samples satisfies (and the case the fused
/// codec's frame-of-reference step-2 mode exploits).
hdc::AccumHV parity_accum(std::size_t dim, std::int32_t count,
                          std::uint64_t seed) {
  hdc::Rng rng(seed);
  hdc::AccumHV acc(dim);
  for (auto& v : acc) {
    v = count -
        2 * static_cast<std::int32_t>(
                rng.index(static_cast<std::size_t>(count) + 1));
  }
  return acc;
}

/// Heavily skewed accumulator (mostly zeros, rare large outliers): the case
/// where the canonical-Huffman mode beats frame of reference.
hdc::AccumHV skewed_accum(std::size_t dim, std::uint64_t seed) {
  hdc::Rng rng(seed);
  hdc::AccumHV acc(dim);
  for (auto& v : acc) {
    v = rng.bernoulli(0.95) ? 0
                            : static_cast<std::int32_t>(rng.index(201)) - 100;
  }
  return acc;
}

/// One representative envelope per message type, with payload sizes that do
/// not divide evenly into bytes (to exercise the bit-packing tails).
std::vector<Envelope> corpus() {
  std::vector<Envelope> out;
  out.push_back({proto::kProtoVersion, 3, 1,
                 proto::ModelUpdate{2, random_accum(101, 500, 11)}});
  out.push_back({proto::kProtoVersion, 4, 2,
                 proto::BatchUpdate{1, 7, random_accum(67, 32, 12)}});
  out.push_back({proto::kProtoVersion, 5, 2,
                 proto::ResidualMerge{0, random_accum(129, 3, 13)}});
  out.push_back({proto::kProtoVersion, 1, 0,
                 proto::QueryEscalate{42, 2, random_bipolar(203, 14)}});
  out.push_back({proto::kProtoVersion, 0, 6,
                 proto::QueryReply{42, 3, 0.875, 0, 3, 1}});
  out.push_back({proto::kProtoVersion, 2, 0,
                 proto::HealthProbe{0xdeadbeef, 17, 3, 0b10110}});
  out.push_back({proto::kProtoVersion, 6, 2, proto::NodeJoin{4}});
  out.push_back({proto::kProtoVersion, 6, 2, proto::NodeLeave{4, 1}});
  out.push_back({proto::kProtoVersion, 6, 2,
                 proto::StateSync{1, 4, random_accum(93, 12, 15)}});
  // Fused collective frames: one FOR-shaped (leaf-bundle parity), one
  // Huffman-shaped (skewed internal sections), one single-section edge case.
  out.push_back({proto::kProtoVersion, 7, 2,
                 proto::ReducePartial{
                     proto::kReduceInitial, 7,
                     {parity_accum(101, 9, 16), parity_accum(67, 9, 17)}}});
  out.push_back({proto::kProtoVersion, 4, 1,
                 proto::ReducePartial{
                     proto::kReduceBatch, 4,
                     {skewed_accum(203, 18), random_accum(33, 4, 19)}}});
  out.push_back({proto::kProtoVersion, 2, 5,
                 proto::ReducePartial{proto::kReduceGatewaySync, 2,
                                      {random_accum(1, 1, 20)}}});
  out.push_back({proto::kProtoVersion, 1, 5,
                 proto::CollectivePlan{proto::kReduceBatch, 1, 16, 10}});
  // Dimension-regeneration frames: the parent -> child request form (dims
  // only) and the child -> parent patch form (per-class delta columns with
  // generation counters), at sizes that exercise the packed tails.
  out.push_back({proto::kProtoVersion, 6, 2,
                 proto::DimensionPatch{3, {0, 7, 31, 100}, {}, {}}});
  out.push_back({proto::kProtoVersion, 2, 6,
                 proto::DimensionPatch{4,
                                       {1, 8, 9, 63, 64},
                                       {1, 1, 2, 1, 7},
                                       {random_accum(5, 40, 21),
                                        random_accum(5, 3, 22),
                                        skewed_accum(5, 23)}}});
  return out;
}

// ---- CommStats -------------------------------------------------------------

TEST(CommStats, PlusEqualsAccumulatesBothFields) {
  proto::CommStats a{100, 3};
  const proto::CommStats b{23, 2};
  a += b;
  EXPECT_EQ(a.bytes, 123u);
  EXPECT_EQ(a.messages, 5u);
  a += proto::CommStats{};
  EXPECT_EQ(a, (proto::CommStats{123, 5}));
  EXPECT_EQ(b + b, (proto::CommStats{46, 4}));
}

// ---- canonical byte accounting ---------------------------------------------

TEST(ProtoWireSize, ModelMessagesChargeAccumBytes) {
  const auto acc = random_accum(100, 75, 1);
  EXPECT_EQ(proto::wire_size(proto::ModelUpdate{0, acc}),
            hdc::wire_bytes_accum(acc));
  EXPECT_EQ(proto::wire_size(proto::BatchUpdate{0, 0, acc}),
            hdc::wire_bytes_accum(acc));
  EXPECT_EQ(proto::wire_size(proto::ResidualMerge{0, acc}),
            hdc::wire_bytes_accum(acc));
}

TEST(ProtoWireSize, QueryMessagesChargeBipolarAndFixedReply) {
  EXPECT_EQ(proto::wire_size(proto::QueryEscalate{0, 0, random_bipolar(777, 2)}),
            hdc::wire_bytes_bipolar(777));
  // query id + label + confidence + serving node + level + degraded flag.
  EXPECT_EQ(proto::wire_size(proto::QueryReply{}), 8u + 4 + 8 + 8 + 4 + 1);
}

TEST(ProtoWireSize, MembershipMessagesChargeControlFrames) {
  // nonce + timestamp + incarnation + suspicion bitmask.
  EXPECT_EQ(proto::wire_size(proto::HealthProbe{}), 32u);
  EXPECT_EQ(proto::wire_size(proto::NodeJoin{}), 8u);
  EXPECT_EQ(proto::wire_size(proto::NodeLeave{}), 9u);
  // StateSync rides the same accumulator packing as ModelUpdate plus the
  // 8-byte incarnation tag.
  const auto acc = random_accum(100, 75, 1);
  EXPECT_EQ(proto::wire_size(proto::StateSync{0, 1, acc}),
            8u + hdc::wire_bytes_accum(acc));
}

TEST(ProtoWireSize, ReducePartialChargesEntropyCodedBodiesOnly) {
  // Canonical accounting for a fused frame is exactly the entropy-coded
  // section bodies; phase/origin/count/dims are structural framing excluded
  // from wire_size, mirroring write_accum's dim/width prefix.
  const proto::ReducePartial rp{
      proto::kReduceInitial, 3,
      {parity_accum(101, 6, 41), random_accum(67, 9, 42)}};
  const auto buf =
      proto::encode(Envelope{proto::kProtoVersion, 3, 1, rp});
  const std::uint64_t framing = 1 + 4 + 4 + 4 * rp.sections.size();
  EXPECT_EQ(proto::wire_size(rp),
            proto::sections_wire_size(rp.sections));
  EXPECT_EQ(proto::wire_size(rp), buf.size() - proto::kHeaderSize - framing);
}

TEST(ProtoWireSize, ParityLeafFramesBeatPerAccumPacking) {
  // A leaf's fused batch frame: every lane ≡ n (mod 2), so FOR's step-2 mode
  // recovers a bit per lane and the fused frame undercuts the per-accum
  // packing the point-to-point schedule would be charged.
  std::vector<hdc::AccumHV> sections;
  std::uint64_t per_accum = 0;
  for (int c = 0; c < 4; ++c) {
    sections.push_back(parity_accum(500, 9, 50 + static_cast<std::uint64_t>(c)));
    per_accum += hdc::wire_bytes_accum(sections.back());
  }
  EXPECT_LT(proto::sections_wire_size(sections), per_accum);
}

TEST(ProtoWireSize, SkewedFramesCompressViaHuffman) {
  // Mostly-zero sections with rare outliers: FOR must width every lane for
  // the outlier, Huffman prices by frequency. The fused frame wins big.
  std::vector<hdc::AccumHV> sections{skewed_accum(1000, 60),
                                     skewed_accum(1000, 61)};
  std::uint64_t per_accum = 0;
  for (const auto& s : sections) per_accum += hdc::wire_bytes_accum(s);
  EXPECT_LT(proto::sections_wire_size(sections), per_accum / 2);
}

TEST(ProtoWireSize, CollectivePlanIsAFixedControlFrame) {
  // phase + algorithm + chunk_lanes + plan id.
  EXPECT_EQ(proto::wire_size(proto::CollectivePlan{}), 1u + 1 + 4 + 8);
}

TEST(ProtoWireSize, CompressedQueryMatchesPaperFormula) {
  // m <= 1: plain packed bits.
  EXPECT_EQ(proto::compressed_query_wire_size(4000, 0),
            hdc::wire_bytes_bipolar(4000));
  EXPECT_EQ(proto::compressed_query_wire_size(4000, 1),
            hdc::wire_bytes_bipolar(4000));
  // m-to-1 bundling: entries grow to |v| <= m, bytes amortize over m members.
  for (const std::size_t m : {2u, 8u, 32u}) {
    const auto bits = hdc::bits_for_magnitude(static_cast<std::int64_t>(m));
    const auto expect = (hdc::wire_bytes_accum(4000, bits) + m - 1) / m;
    EXPECT_EQ(proto::compressed_query_wire_size(4000, m), expect);
  }
  // The formula's crossover: 2-to-1 bundling costs *more* than separate
  // packed queries (3-bit entries amortized over 2), break-even at m = 4,
  // and a win beyond — matching the paper's preference for larger m.
  EXPECT_GT(proto::compressed_query_wire_size(4000, 2),
            hdc::wire_bytes_bipolar(4000));
  EXPECT_EQ(proto::compressed_query_wire_size(4000, 4),
            hdc::wire_bytes_bipolar(4000));
  for (std::size_t m = 8; m <= 64; m *= 2) {
    EXPECT_LT(proto::compressed_query_wire_size(4000, m),
              hdc::wire_bytes_bipolar(4000));
  }
}

TEST(ProtoMessages, TypeNamesAreStable) {
  EXPECT_STREQ(proto::to_string(MsgType::kModelUpdate), "model_update");
  EXPECT_STREQ(proto::to_string(MsgType::kBatchUpdate), "batch_update");
  EXPECT_STREQ(proto::to_string(MsgType::kResidualMerge), "residual_merge");
  EXPECT_STREQ(proto::to_string(MsgType::kQueryEscalate), "query_escalate");
  EXPECT_STREQ(proto::to_string(MsgType::kQueryReply), "query_reply");
  EXPECT_STREQ(proto::to_string(MsgType::kHealthProbe), "health_probe");
  EXPECT_STREQ(proto::to_string(MsgType::kNodeJoin), "node_join");
  EXPECT_STREQ(proto::to_string(MsgType::kNodeLeave), "node_leave");
  EXPECT_STREQ(proto::to_string(MsgType::kStateSync), "state_sync");
  EXPECT_STREQ(proto::to_string(MsgType::kReducePartial), "reduce_partial");
  EXPECT_STREQ(proto::to_string(MsgType::kCollectivePlan), "collective_plan");
  EXPECT_STREQ(proto::to_string(MsgType::kDimensionPatch), "dimension_patch");
}

TEST(ProtoWireSize, DimensionPatchChargesDimsGensAndColumns) {
  // Request form: 4 bytes per requested dim, nothing else (round is framing).
  EXPECT_EQ(proto::wire_size(proto::DimensionPatch{1, {3, 9, 12}, {}, {}}),
            3u * 4);
  // Patch form adds 2 bytes per generation counter plus the packed columns.
  const auto col0 = random_accum(4, 20, 70);
  const auto col1 = random_accum(4, 6, 71);
  const proto::DimensionPatch p{2, {0, 2, 5, 7}, {1, 1, 3, 1}, {col0, col1}};
  EXPECT_EQ(proto::wire_size(p), 4u * 4 + 4 * 2 +
                                     hdc::wire_bytes_accum(col0) +
                                     hdc::wire_bytes_accum(col1));
}

// ---- envelope round trips --------------------------------------------------

TEST(Envelope, EveryMessageTypeRoundTrips) {
  for (const Envelope& env : corpus()) {
    const auto buf = proto::encode(env);
    ASSERT_GE(buf.size(), proto::kHeaderSize);
    EXPECT_EQ(buf[0], 'E');
    EXPECT_EQ(buf[1], 'P');
    const auto decoded = proto::decode(buf);
    ASSERT_TRUE(decoded.ok())
        << proto::to_string(decoded.error) << " for type "
        << proto::to_string(proto::type_of(env.msg));
    EXPECT_EQ(decoded.envelope.version, env.version);
    EXPECT_EQ(decoded.envelope.src, env.src);
    EXPECT_EQ(decoded.envelope.dst, env.dst);
    EXPECT_EQ(decoded.envelope.msg, env.msg);
  }
}

TEST(Envelope, AccumRoundTripsAcrossMagnitudesAndOddDims) {
  // Property sweep: width selection (2..33 bits), sign extension, and the
  // packed tail must all be exact for any dim/magnitude combination.
  for (const std::size_t dim : {1u, 7u, 8u, 63u, 200u}) {
    for (const std::int32_t mag :
         {1, 2, 3, 200, 100'000, std::numeric_limits<std::int32_t>::max() - 1}) {
      const Envelope env{proto::kProtoVersion, 1, 0,
                         proto::ModelUpdate{
                             0, random_accum(dim, mag, 31 * dim + mag)}};
      const auto decoded = proto::decode(proto::encode(env));
      ASSERT_TRUE(decoded.ok()) << "dim=" << dim << " mag=" << mag;
      EXPECT_EQ(decoded.envelope.msg, env.msg);
    }
  }
}

TEST(Envelope, BipolarRoundTripsAtOddDims) {
  for (const std::size_t dim : {1u, 8u, 9u, 127u, 4000u}) {
    const Envelope env{proto::kProtoVersion, 2, 0,
                       proto::QueryEscalate{9, 1, random_bipolar(dim, dim)}};
    const auto decoded = proto::decode(proto::encode(env));
    ASSERT_TRUE(decoded.ok()) << "dim=" << dim;
    EXPECT_EQ(decoded.envelope.msg, env.msg);
  }
}

// ---- typed rejections ------------------------------------------------------

TEST(EnvelopeReject, TruncatedHeader) {
  const auto buf = proto::encode(corpus().front());
  for (std::size_t len = 0; len < proto::kHeaderSize; ++len) {
    const auto r = proto::decode(std::span(buf.data(), len));
    EXPECT_EQ(r.error, DecodeError::kTruncatedHeader) << "len=" << len;
  }
}

TEST(EnvelopeReject, BadMagic) {
  auto buf = proto::encode(corpus().front());
  buf[1] = 'Q';
  EXPECT_EQ(proto::decode(buf).error, DecodeError::kBadMagic);
}

TEST(EnvelopeReject, UnknownVersionFailsClosed) {
  // Every type — including the collective frames — bounces off the version
  // gate before any payload parsing.
  for (const Envelope& env : corpus()) {
    auto buf = proto::encode(env);
    buf[2] = proto::kProtoVersion + 1;
    EXPECT_EQ(proto::decode(buf).error, DecodeError::kBadVersion)
        << proto::to_string(proto::type_of(env.msg));
    buf[2] = 0;
    EXPECT_EQ(proto::decode(buf).error, DecodeError::kBadVersion)
        << proto::to_string(proto::type_of(env.msg));
  }
}

TEST(EnvelopeReject, UnknownTypeByte) {
  auto buf = proto::encode(corpus().front());
  buf[3] = 0;
  EXPECT_EQ(proto::decode(buf).error, DecodeError::kBadType);
  // 13 is the first unassigned type byte (12 = dimension_patch is valid).
  buf[3] = 13;
  EXPECT_EQ(proto::decode(buf).error, DecodeError::kBadType);
  buf[3] = 255;
  EXPECT_EQ(proto::decode(buf).error, DecodeError::kBadType);
}

TEST(EnvelopeReject, PayloadLengthMismatch) {
  // Header claims more payload than the buffer carries: truncated.
  auto buf = proto::encode(corpus().front());
  buf.resize(buf.size() - 1);
  EXPECT_EQ(proto::decode(buf).error, DecodeError::kTruncatedPayload);
  // Buffer carries more than the header claims: length mismatch.
  auto padded = proto::encode(corpus().front());
  padded.push_back(0);
  EXPECT_EQ(proto::decode(padded).error, DecodeError::kLengthMismatch);
}

TEST(EnvelopeReject, CorruptAccumWidth) {
  // ModelUpdate payload: u32 class_id, then u32 dim + u8 bits. Forcing the
  // width byte outside [2, 33] must fail as corrupt, not crash.
  auto buf = proto::encode(corpus().front());
  const std::size_t bits_at = proto::kHeaderSize + 4 + 4;
  for (const std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{1},
                                 std::uint8_t{34}, std::uint8_t{255}}) {
    buf[bits_at] = bad;
    EXPECT_EQ(proto::decode(buf).error, DecodeError::kCorruptPayload);
  }
}

TEST(EnvelopeReject, HugeDimCannotDriveAllocation) {
  // A corrupt dim field far beyond kMaxWireDim must be rejected before any
  // allocation is sized from it.
  auto buf = proto::encode(corpus().front());
  const std::size_t dim_at = proto::kHeaderSize + 4;
  for (int i = 0; i < 4; ++i) buf[dim_at + i] = 0xFF;
  EXPECT_EQ(proto::decode(buf).error, DecodeError::kCorruptPayload);
}

TEST(EnvelopeReject, NonCanonicalPadBits) {
  // The final byte's pad bits must be zero; flip one and the strict decoder
  // refuses (canonical form keeps encode(decode(x)) == x).
  const Envelope env{proto::kProtoVersion, 1, 0,
                     proto::ModelUpdate{0, random_accum(3, 2, 5)}};
  auto buf = proto::encode(env);
  buf.back() |= 0x80;
  EXPECT_EQ(proto::decode(buf).error, DecodeError::kCorruptPayload);
}

TEST(EnvelopeReject, ReducePartialBadSectionModeOrHugeDims) {
  const proto::ReducePartial rp{
      proto::kReduceInitial, 7,
      {parity_accum(101, 9, 16), parity_accum(67, 9, 17)}};
  const auto clean =
      proto::encode(Envelope{proto::kProtoVersion, 7, 2, rp});
  // Payload: u8 phase, u32 origin, u32 count, u32 dim per section, then the
  // section bodies opening with the mode byte. Modes >= 2 are unassigned.
  const std::size_t mode_at = proto::kHeaderSize + 1 + 4 + 4 + 4 * 2;
  for (const std::uint8_t bad : {std::uint8_t{2}, std::uint8_t{255}}) {
    auto buf = clean;
    buf[mode_at] = bad;
    EXPECT_EQ(proto::decode(buf).error, DecodeError::kCorruptPayload);
  }
  // A corrupt section count far beyond kMaxWireDim must be rejected before
  // it can size an allocation.
  auto buf = clean;
  const std::size_t count_at = proto::kHeaderSize + 1 + 4;
  for (int i = 0; i < 4; ++i) buf[count_at + static_cast<std::size_t>(i)] = 0xFF;
  EXPECT_EQ(proto::decode(buf).error, DecodeError::kCorruptPayload);
  // Same for one section's dim field.
  buf = clean;
  const std::size_t dim_at = count_at + 4;
  for (int i = 0; i < 4; ++i) buf[dim_at + static_cast<std::size_t>(i)] = 0xFF;
  EXPECT_EQ(proto::decode(buf).error, DecodeError::kCorruptPayload);
}

TEST(EnvelopeReject, DimensionPatchNonCanonicalShapes) {
  // Payload: u32 round, u32 ndims, u32 ngens, u32 ncols, dims (u32 each),
  // gens (u16 each), packed columns. Canonical form demands strictly
  // ascending dims, ngens == ndims exactly when columns are present, and one
  // ndims-sized column per class.
  const proto::DimensionPatch p{1,
                                {2, 5, 9},
                                {1, 1, 1},
                                {random_accum(3, 9, 80), random_accum(3, 9, 81)}};
  const auto clean = proto::encode(Envelope{proto::kProtoVersion, 2, 6, p});
  const std::size_t dims_at = proto::kHeaderSize + 4 * 4;

  // Duplicate dim (5, 5): not strictly ascending.
  auto buf = clean;
  buf[dims_at + 4] = 9;
  EXPECT_EQ(proto::decode(buf).error, DecodeError::kCorruptPayload);
  // Descending pair (9, 5) after corrupting the first dim upward.
  buf = clean;
  buf[dims_at] = 200;
  EXPECT_EQ(proto::decode(buf).error, DecodeError::kCorruptPayload);

  // A request must carry zero generation counters; a patch exactly ndims.
  const proto::DimensionPatch req{1, {2, 5, 9}, {}, {}};
  auto rbuf = proto::encode(Envelope{proto::kProtoVersion, 6, 2, req});
  rbuf[proto::kHeaderSize + 8] = 3;  // ngens = 3 with no columns
  EXPECT_EQ(proto::decode(rbuf).error, DecodeError::kCorruptPayload);
  buf = clean;
  buf[proto::kHeaderSize + 8] = 2;  // ngens != ndims on a patch
  EXPECT_EQ(proto::decode(buf).error, DecodeError::kCorruptPayload);

  // Dim-count fields far beyond kMaxWireDim cannot size an allocation.
  for (const std::size_t at : {proto::kHeaderSize + 4, proto::kHeaderSize + 12}) {
    buf = clean;
    for (std::size_t i = 0; i < 4; ++i) buf[at + i] = 0xFF;
    EXPECT_EQ(proto::decode(buf).error, DecodeError::kCorruptPayload);
  }
}

// ---- corpus-driven corruption sweep ----------------------------------------

TEST(EnvelopeSweep, EveryTruncationFailsTyped) {
  for (const Envelope& env : corpus()) {
    const auto buf = proto::encode(env);
    for (std::size_t len = 0; len < buf.size(); ++len) {
      const auto r = proto::decode(std::span(buf.data(), len));
      EXPECT_NE(r.error, DecodeError::kNone)
          << proto::to_string(proto::type_of(env.msg)) << " len=" << len;
    }
  }
}

TEST(EnvelopeSweep, SingleByteFlipsNeverCrash) {
  // Flipping any single bit anywhere must yield either a typed error or a
  // well-formed envelope (payload bytes carry no checksum, so some flips
  // decode to different-but-valid values; re-encoding may then pick a
  // narrower canonical width) — never UB or an unbounded allocation.
  // ASan/UBSan builds make this a memory-safety proof.
  for (const Envelope& env : corpus()) {
    const auto clean = proto::encode(env);
    for (std::size_t at = 0; at < clean.size(); ++at) {
      for (int bit = 0; bit < 8; ++bit) {
        auto buf = clean;
        buf[at] ^= static_cast<std::uint8_t>(1u << bit);
        const auto r = proto::decode(buf);
        if (r.ok()) {
          // Whatever decoded must re-encode to a decodable canonical frame.
          EXPECT_TRUE(proto::decode(proto::encode(r.envelope)).ok());
        }
      }
    }
  }
}

TEST(EnvelopeSweep, RandomGarbageNeverCrashes) {
  hdc::Rng rng(2026);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> buf(rng.index(96));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.index(256));
    // Bias some rounds toward a valid prefix so decode reaches the payload
    // parsers instead of bouncing off the magic check.
    if (buf.size() >= 4 && round % 2 == 0) {
      buf[0] = 'E';
      buf[1] = 'P';
      buf[2] = proto::kProtoVersion;
      buf[3] = static_cast<std::uint8_t>(1 + round % 12);
    }
    const auto r = proto::decode(buf);
    if (r.ok()) {
      EXPECT_TRUE(proto::decode(proto::encode(r.envelope)).ok());
    }
  }
}

// ---- buses -----------------------------------------------------------------

TEST(LocalBus, DeliversThroughRealCodecAndChargesWireSize) {
  proto::LocalBus bus(4, proto::LocalBus::Codec::kEncoded);
  std::vector<Envelope> seen;
  bus.subscribe(2, [&](const Envelope& env) { seen.push_back(env); });

  proto::CommStats stats;
  bus.set_charge(&stats);
  const Envelope env{proto::kProtoVersion, 0, 2,
                     proto::ModelUpdate{1, random_accum(50, 20, 3)}};
  bus.post(env);
  bus.set_charge(nullptr);

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].msg, env.msg);  // survived the encode/decode round trip
  EXPECT_EQ(seen[0].src, 0u);
  EXPECT_EQ(bus.delivered(), 1u);
  // The sink is charged the canonical payload accounting, not the framed
  // envelope bytes.
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.bytes, proto::wire_size(env.msg));

  // Uncharged post still delivers but leaves the detached sink alone.
  bus.post(env);
  EXPECT_EQ(bus.delivered(), 2u);
  EXPECT_EQ(stats.messages, 1u);
}

TEST(SimulatorBus, DeliversOverTheEventSimulator) {
  const auto topo = net::Topology::paper_tree(4);
  net::Simulator sim(topo, net::medium(net::MediumKind::kWired1G));
  proto::SimulatorBus bus(sim);

  const net::NodeId leaf = topo.leaves().front();
  const net::NodeId parent = topo.parent(leaf);
  std::vector<Envelope> seen;
  bus.subscribe(parent, [&](const Envelope& env) { seen.push_back(env); });

  proto::CommStats stats;
  bus.set_charge(&stats);
  const Envelope env{proto::kProtoVersion, leaf, parent,
                     proto::ResidualMerge{3, random_accum(80, 7, 4)}};
  bus.post(env);
  EXPECT_TRUE(seen.empty());  // nothing lands until the simulator runs
  sim.run();

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].msg, env.msg);
  EXPECT_EQ(bus.delivered(), 1u);
  EXPECT_EQ(bus.decode_failures(), 0u);
  EXPECT_EQ(stats, (proto::CommStats{proto::wire_size(env.msg), 1}));
  // The simulator charged the framed bytes on the link (header + payload
  // prefixes), strictly more than the canonical accounting.
  EXPECT_GT(sim.total_bytes_transferred(), stats.bytes);
}

// ---- NodeRuntime state machine ---------------------------------------------

TEST(NodeRuntime, ModelBearingMessagesRequireTheirPhase) {
  const auto topo = net::Topology::paper_tree(4);
  const net::NodeId gw = topo.parent(topo.leaves().front());
  proto::NodeRuntime rt;
  rt.init(gw, topo, /*dim=*/32, /*num_classes=*/2);
  EXPECT_EQ(rt.role(), proto::NodeRuntime::Role::kGateway);
  EXPECT_EQ(rt.phase(), proto::NodeRuntime::Phase::kIdle);

  const net::NodeId child = topo.children(gw).front();
  const Envelope update{proto::kProtoVersion, child, gw,
                        proto::ModelUpdate{0, hdc::AccumHV(32, 1)}};
  // Outside its phase: protocol violation.
  EXPECT_THROW(rt.on_envelope(update), std::logic_error);

  rt.begin_initial_training();
  EXPECT_EQ(rt.phase(), proto::NodeRuntime::Phase::kInitialTraining);
  EXPECT_NO_THROW(rt.on_envelope(update));
  // Wrong phase for a batch message even while training.
  const Envelope batch{proto::kProtoVersion, child, gw,
                       proto::BatchUpdate{0, 0, hdc::AccumHV(32, 1)}};
  EXPECT_THROW(rt.on_envelope(batch), std::logic_error);
}

TEST(NodeRuntime, RejectsNonChildSendersAndBadClassIds) {
  const auto topo = net::Topology::paper_tree(4);
  const auto leaves = topo.leaves();
  const net::NodeId gw = topo.parent(leaves.front());
  proto::NodeRuntime rt;
  rt.init(gw, topo, 32, 2);
  rt.begin_initial_training();

  // A leaf under the *other* gateway is not our child.
  const net::NodeId stranger = leaves.back();
  ASSERT_NE(topo.parent(stranger), gw);
  EXPECT_THROW(rt.on_envelope({proto::kProtoVersion, stranger, gw,
                               proto::ModelUpdate{0, hdc::AccumHV(32, 1)}}),
               std::logic_error);
  // Out-of-range class id.
  const net::NodeId child = topo.children(gw).front();
  EXPECT_THROW(rt.on_envelope({proto::kProtoVersion, child, gw,
                               proto::ModelUpdate{9, hdc::AccumHV(32, 1)}}),
               std::logic_error);
}

// ---- per-type byte accounting under collective schedules --------------------

TEST(ProtoObs, PerTypeBytesPartitionCollectiveSessionTotals) {
  // Every byte a collective training session charges to CommStats must land
  // in exactly one per-type proto.<name>.bytes counter: the per-type rows
  // partition the phase totals, with no double counting and nothing
  // slipping through unattributed.
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  auto ds = data::make_synthetic("obspart", 40, 3, {10, 10, 10, 10}, 240, 40,
                                 97, 3.6F, 0.5F, 0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 600;
  cfg.batch_size = 4;
  cfg.collective.enabled = true;
  cfg.collective.force = proto::CollectiveAlgo::kTreeReduce;
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), cfg);

  auto& reg = obs::MetricsRegistry::global();
  const auto totals = [&reg] {
    proto::CommStats sum;
    for (std::uint8_t b = 1; b <= 12; ++b) {
      const std::string base =
          std::string("proto.") +
          proto::to_string(static_cast<MsgType>(b)) + ".";
      sum.bytes += reg.counter_value(base + "bytes");
      sum.messages += reg.counter_value(base + "messages");
    }
    return sum;
  };

  const auto before = totals();
  const auto charged = sys.train_initial() + sys.retrain_batches();
  const auto after = totals();
  EXPECT_EQ(after.bytes - before.bytes, charged.bytes);
  EXPECT_EQ(after.messages - before.messages, charged.messages);
  // The collective schedule actually ran: fused frames and their plan
  // announcements carried the model traffic.
  EXPECT_GT(reg.counter_value("proto.reduce_partial.bytes"), 0u);
  EXPECT_GT(reg.counter_value("proto.collective_plan.messages"), 0u);
}

TEST(NodeRuntime, DimensionPatchRequiresRegenPhaseAndParentSender) {
  const auto topo = net::Topology::paper_tree(4);
  const net::NodeId gw = topo.parent(topo.leaves().front());
  const net::NodeId root = topo.parent(gw);
  proto::NodeRuntime rt;
  rt.init(gw, topo, /*dim=*/32, /*num_classes=*/2);

  const Envelope request{proto::kProtoVersion, root, gw,
                         proto::DimensionPatch{1, {3, 17}, {}, {}}};
  // Outside the regeneration phase: protocol violation.
  EXPECT_THROW(rt.on_envelope(request), std::logic_error);

  rt.begin_dimension_regen(1);
  EXPECT_EQ(rt.phase(), proto::NodeRuntime::Phase::kDimensionRegen);
  // Requests flow top-down: a child impersonating the parent is rejected.
  const net::NodeId child = topo.children(gw).front();
  EXPECT_THROW(rt.on_envelope({proto::kProtoVersion, child, gw,
                               proto::DimensionPatch{1, {3}, {}, {}}}),
               std::logic_error);
  // Requested dims must fit this node's model.
  EXPECT_THROW(rt.on_envelope({proto::kProtoVersion, root, gw,
                               proto::DimensionPatch{1, {99}, {}, {}}}),
               std::logic_error);
  // A well-formed request from the parent is filed for the finish step.
  EXPECT_NO_THROW(rt.on_envelope(request));
  EXPECT_EQ(rt.regen_request(), (std::vector<std::uint32_t>{3, 17}));
}

TEST(NodeRuntime, ProbesAndQueriesAreCountedNotFiled) {
  const auto topo = net::Topology::paper_tree(4);
  const net::NodeId gw = topo.parent(topo.leaves().front());
  proto::NodeRuntime rt;
  rt.init(gw, topo, 32, 2);
  const net::NodeId child = topo.children(gw).front();
  // Probes and queries are phase-free: fine even while idle.
  rt.on_envelope(
      {proto::kProtoVersion, child, gw, proto::HealthProbe{1, 2}});
  rt.on_envelope({proto::kProtoVersion, child, gw,
                  proto::QueryEscalate{1, 1, random_bipolar(32, 6)}});
  rt.on_envelope({proto::kProtoVersion, child, gw, proto::QueryReply{}});
  EXPECT_EQ(rt.probes_received(), 1u);
  EXPECT_EQ(rt.queries_received(), 2u);
  EXPECT_EQ(rt.phase(), proto::NodeRuntime::Phase::kIdle);
}

}  // namespace
