// Unit tests for the dataset substrate (src/data/dataset.*).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "data/dataset.hpp"

namespace {

using namespace edgehd::data;

TEST(DatasetSpecs, TableOneShapesMatchThePaper) {
  ASSERT_EQ(all_specs().size(), 9u);
  const auto& mnist = spec(DatasetId::kMnist);
  EXPECT_EQ(mnist.num_features, 784u);
  EXPECT_EQ(mnist.num_classes, 10u);
  EXPECT_EQ(mnist.paper_train, 60000u);
  const auto& pecan = spec(DatasetId::kPecan);
  EXPECT_EQ(pecan.num_features, 312u);
  EXPECT_EQ(pecan.end_nodes, 312u);
  EXPECT_EQ(pecan.num_classes, 3u);
  const auto& pamap = spec(DatasetId::kPamap2);
  EXPECT_EQ(pamap.num_features, 75u);
  EXPECT_EQ(pamap.end_nodes, 3u);
  EXPECT_EQ(pamap.paper_train, 611142u);
  const auto& pdp = spec(DatasetId::kPdp);
  EXPECT_EQ(pdp.end_nodes, 5u);
}

TEST(DatasetSpecs, HierarchicalIdsAreTheFourTableTwoWorkloads) {
  const auto ids = hierarchical_ids();
  ASSERT_EQ(ids.size(), 4u);
  for (const auto id : ids) {
    EXPECT_GT(spec(id).end_nodes, 0u);
  }
}

TEST(MakeDataset, DeterministicInSeed) {
  GenOptions opt;
  opt.max_train = 100;
  opt.max_test = 50;
  const auto a = make_dataset(DatasetId::kApri, 7, opt);
  const auto b = make_dataset(DatasetId::kApri, 7, opt);
  EXPECT_EQ(a.train_x, b.train_x);
  EXPECT_EQ(a.train_y, b.train_y);
  const auto c = make_dataset(DatasetId::kApri, 8, opt);
  EXPECT_NE(a.train_x, c.train_x);
}

TEST(MakeDataset, RespectsSizeCapsAndShapes) {
  GenOptions opt;
  opt.max_train = 123;
  opt.max_test = 45;
  const auto ds = make_dataset(DatasetId::kPdp, 1, opt);
  EXPECT_EQ(ds.train_size(), 123u);
  EXPECT_EQ(ds.test_size(), 45u);
  EXPECT_EQ(ds.num_features, 60u);
  for (const auto& x : ds.train_x) EXPECT_EQ(x.size(), 60u);
  for (const auto y : ds.train_y) EXPECT_LT(y, ds.num_classes);
}

TEST(MakeDataset, PartitionsSumToFeatureCount) {
  GenOptions opt;
  opt.max_train = 60;
  opt.max_test = 20;
  for (const auto& s : all_specs()) {
    const auto ds = make_dataset(s.id, 2, opt);
    const auto sum = std::accumulate(ds.partitions.begin(),
                                     ds.partitions.end(), std::size_t{0});
    EXPECT_EQ(sum, ds.num_features) << s.name;
    if (s.end_nodes > 0) EXPECT_EQ(ds.partitions.size(), s.end_nodes);
  }
}

TEST(MakeDataset, EveryClassIsPopulated) {
  GenOptions opt;
  opt.max_train = 260;
  opt.max_test = 52;
  const auto ds = make_dataset(DatasetId::kIsolet, 3, opt);
  std::vector<std::size_t> counts(ds.num_classes, 0);
  for (const auto y : ds.train_y) ++counts[y];
  for (const auto c : counts) EXPECT_GT(c, 0u);
}

TEST(MakeDataset, PartitionOffsetsArePrefixSums) {
  GenOptions opt;
  opt.max_train = 40;
  opt.max_test = 10;
  const auto ds = make_dataset(DatasetId::kPamap2, 4, opt);
  EXPECT_EQ(ds.partition_offset(0), 0u);
  EXPECT_EQ(ds.partition_offset(1), ds.partitions[0]);
  EXPECT_EQ(ds.partition_offset(2), ds.partitions[0] + ds.partitions[1]);
  EXPECT_THROW(ds.partition_offset(99), std::out_of_range);
}

TEST(MakeSynthetic, ValidatesArguments) {
  EXPECT_THROW(make_synthetic("x", 0, 2, {}, 10, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(make_synthetic("x", 4, 1, {4}, 10, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(make_synthetic("x", 4, 2, {3}, 10, 10, 1),
               std::invalid_argument);
}

TEST(MakeSynthetic, TrainAndTestAreDisjointDraws) {
  const auto ds = make_synthetic("x", 8, 2, {8}, 50, 50, 9);
  EXPECT_NE(ds.train_x.front(), ds.test_x.front());
}

TEST(ZscoreNormalize, TrainStatisticsBecomeStandard) {
  auto ds = make_synthetic("x", 6, 2, {6}, 400, 100, 11);
  zscore_normalize(ds);
  for (std::size_t f = 0; f < ds.num_features; ++f) {
    double mean = 0.0;
    double var = 0.0;
    for (const auto& x : ds.train_x) mean += x[f];
    mean /= static_cast<double>(ds.train_size());
    for (const auto& x : ds.train_x) {
      var += (x[f] - mean) * (x[f] - mean);
    }
    var /= static_cast<double>(ds.train_size());
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LoadCsv, RoundTripsAHandWrittenFile) {
  const std::string path = ::testing::TempDir() + "/edgehd_test.csv";
  {
    std::ofstream out(path);
    out << "1.0,2.0,0\n3.0,4.0,1\n5.0,6.0,0\n7.0,8.0,1\n9.0,10.0,0\n";
  }
  const auto ds = load_csv(path, 0.6);
  EXPECT_EQ(ds.num_features, 2u);
  EXPECT_EQ(ds.num_classes, 2u);
  EXPECT_EQ(ds.train_size(), 3u);
  EXPECT_EQ(ds.test_size(), 2u);
  EXPECT_FLOAT_EQ(ds.train_x[0][0], 1.0F);
  EXPECT_EQ(ds.train_y[1], 1u);
  std::remove(path.c_str());
}

TEST(LoadCsv, RejectsMissingAndMalformedFiles) {
  EXPECT_THROW(load_csv("/nonexistent/file.csv"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/edgehd_ragged.csv";
  {
    std::ofstream out(path);
    out << "1.0,2.0,0\n1.0,1\n";
  }
  EXPECT_THROW(load_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(XorChannel, MarginalMeansCarryFarLessSignalThanCentroids) {
  // With xor_fraction=1 the class signal lives (almost) purely in feature
  // interactions; with xor_fraction=0 it is plain centroid separation. The
  // per-feature class-conditional mean gap must shrink dramatically between
  // the two regimes. (It is not exactly zero: the observation model's bias
  // converts the XOR pairs' variance difference into a small mean shift.)
  auto mean_gap = [](float xf) {
    const auto ds =
        make_synthetic("xor", 10, 2, {10}, 4000, 10, 13, 3.0F, 0.1F, xf);
    double total = 0.0;
    for (std::size_t f = 0; f < 10; ++f) {
      double mean0 = 0.0, mean1 = 0.0;
      std::size_t n0 = 0, n1 = 0;
      for (std::size_t i = 0; i < ds.train_size(); ++i) {
        if (ds.train_y[i] == 0) {
          mean0 += ds.train_x[i][f];
          ++n0;
        } else {
          mean1 += ds.train_x[i][f];
          ++n1;
        }
      }
      total += std::abs(mean0 / static_cast<double>(n0) -
                        mean1 / static_cast<double>(n1));
    }
    return total / 10.0;
  };
  EXPECT_LT(mean_gap(1.0F), 0.4 * mean_gap(0.0F));
}

}  // namespace
