// Observability subsystem tests: metrics-registry semantics (interning,
// sharded counters, histogram bucketing, stable JSON), tracer semantics
// (parent links, ring bounds, suppression), registry concurrency (the TSan
// target), and the determinism suite — identical (seed, FaultPlan,
// worker-count) runs must produce byte-identical stable-metrics JSON and an
// identical trace event sequence.
//
// Every value-asserting test skips under -DEDGEHD_OBS=OFF (hooks compile to
// no-ops there); the inert-handle test runs in both configurations.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "net/fault.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace edgehd;

#define SKIP_IF_OBS_OFF()                                              \
  if constexpr (!obs::kEnabled) {                                      \
    GTEST_SKIP() << "observability compiled out (-DEDGEHD_OBS=OFF)";   \
  }

// ------------------------------------------------------------- registry

TEST(MetricsRegistry, HandlesAreInertWhenEmptyOrDisabled) {
  // Default-constructed handles must be safe no-ops in every build mode.
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.inc();
  g.set(3.0);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistry, InterningIsIdempotent) {
  SKIP_IF_OBS_OFF();
  obs::MetricsRegistry reg;
  const obs::Counter a = reg.counter("x.count");
  const obs::Counter b = reg.counter("x.count");
  a.inc();
  b.inc(2);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(reg.counter_value("x.count"), 3u);
  EXPECT_EQ(reg.counter_value("no.such.metric"), 0u);
}

TEST(MetricsRegistry, KindCollisionThrows) {
  SKIP_IF_OBS_OFF();
  obs::MetricsRegistry reg;
  reg.counter("name");
  EXPECT_THROW(reg.gauge("name"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("name", {1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramBucketsAndExactSum) {
  SKIP_IF_OBS_OFF();
  obs::MetricsRegistry reg;
  const obs::Histogram h = reg.histogram("lat", {10.0, 20.0});
  h.observe(10.0);  // bucket 0: v <= 10
  h.observe(11.0);  // bucket 1
  h.observe(20.0);  // bucket 1
  h.observe(25.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 66u);
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(MetricsRegistry, HistogramQuantileInterpolatesInsideBuckets) {
  SKIP_IF_OBS_OFF();
  obs::MetricsRegistry reg;
  const obs::Histogram h = reg.histogram("q", {10.0, 20.0, 40.0});
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty -> 0
  // 10 observations in [0,10], 10 in (10,20].
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  // Median rank (10 of 20) lands exactly at the top of bucket 0.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  // Rank 15 of 20 is halfway through bucket 1: 10 + 10 * (5/10).
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);
  // Rank 5 of 20 is halfway through bucket 0, interpolated from 0.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);
  // q clamps to [0, 1]; q=1 is the end of the last occupied bucket.
  EXPECT_DOUBLE_EQ(h.quantile(1.5), 20.0);
  // Ranks landing in the overflow bucket report the last finite bound.
  h.observe(1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 40.0);
}

TEST(MetricsRegistry, HistogramSummaryIsConsistentSnapshot) {
  SKIP_IF_OBS_OFF();
  obs::MetricsRegistry reg;
  const obs::Histogram h = reg.histogram("s", {100.0, 200.0, 400.0});
  for (int i = 0; i < 90; ++i) h.observe(50.0);
  for (int i = 0; i < 10; ++i) h.observe(150.0);
  const obs::HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 90u * 50u + 10u * 150u);
  EXPECT_DOUBLE_EQ(s.p50, h.quantile(0.50));
  EXPECT_DOUBLE_EQ(s.p90, h.quantile(0.90));
  EXPECT_DOUBLE_EQ(s.p95, h.quantile(0.95));
  EXPECT_DOUBLE_EQ(s.p99, h.quantile(0.99));
  EXPECT_GT(s.p95, s.p50);
}

TEST(MetricsRegistry, HistogramQuantileAndSummaryEdgeCases) {
  SKIP_IF_OBS_OFF();
  obs::MetricsRegistry reg;
  // Empty: every quantile (including the clamped extremes) and every summary
  // field reads zero rather than dividing by a zero count.
  const obs::Histogram empty = reg.histogram("empty", {10.0, 20.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);
  const obs::HistogramSummary es = empty.summary();
  EXPECT_EQ(es.count, 0u);
  EXPECT_EQ(es.sum, 0u);
  EXPECT_DOUBLE_EQ(es.p50, 0.0);
  EXPECT_DOUBLE_EQ(es.p99, 0.0);

  // Single sample: all quantiles interpolate inside the one occupied bucket,
  // so every q maps into (bucket_lo, bucket_hi].
  const obs::Histogram one = reg.histogram("one", {10.0, 20.0});
  one.observe(15.0);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_GE(one.quantile(q), 10.0) << "q=" << q;
    EXPECT_LE(one.quantile(q), 20.0) << "q=" << q;
  }
  const obs::HistogramSummary os = one.summary();
  EXPECT_EQ(os.count, 1u);
  EXPECT_EQ(os.sum, 15u);
  EXPECT_DOUBLE_EQ(os.p50, one.quantile(0.5));

  // All observations in one bucket: the quantile spread stays inside that
  // bucket's bounds and the summary is internally ordered.
  const obs::Histogram packed = reg.histogram("packed", {10.0, 20.0, 40.0});
  for (int i = 0; i < 100; ++i) packed.observe(12.0);
  EXPECT_GT(packed.quantile(0.01), 10.0);
  EXPECT_DOUBLE_EQ(packed.quantile(1.0), 20.0);
  const obs::HistogramSummary ps = packed.summary();
  EXPECT_EQ(ps.count, 100u);
  EXPECT_LE(ps.p50, ps.p90);
  EXPECT_LE(ps.p90, ps.p95);
  EXPECT_LE(ps.p95, ps.p99);
  EXPECT_LE(ps.p99, 20.0);
}

TEST(MetricsRegistry, FindHistogramResolvesKindAndAbsence) {
  SKIP_IF_OBS_OFF();
  obs::MetricsRegistry reg;
  const obs::Histogram h = reg.histogram("found", {1.0, 2.0});
  h.observe(1.5);
  reg.counter("not-a-histogram");
  obs::Histogram found = reg.find_histogram("found");
  EXPECT_EQ(found.count(), 1u);
  found.observe(0.5);  // same underlying buckets as the interned handle
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(reg.find_histogram("absent").count(), 0u);
  EXPECT_EQ(reg.find_histogram("not-a-histogram").count(), 0u);
}

TEST(MetricsRegistry, HistogramRejectsUnsortedBounds) {
  SKIP_IF_OBS_OFF();
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad", {2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, SlotExhaustionThrows) {
  SKIP_IF_OBS_OFF();
  obs::MetricsRegistry reg(/*slot_capacity=*/2);
  reg.counter("a");
  reg.counter("b");
  EXPECT_THROW(reg.counter("c"), std::length_error);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsDefinitions) {
  SKIP_IF_OBS_OFF();
  obs::MetricsRegistry reg;
  const obs::Counter c = reg.counter("c");
  const obs::Gauge g = reg.gauge("g");
  const obs::Histogram h = reg.histogram("h", {5.0});
  c.inc(4);
  g.set(2.5);
  h.observe(3.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  c.inc();  // handles stay live across reset
  EXPECT_EQ(reg.counter_value("c"), 1u);
}

TEST(MetricsRegistry, JsonIsSortedStableAndFiltersVolatile) {
  SKIP_IF_OBS_OFF();
  obs::MetricsRegistry reg;
  reg.counter("zeta").inc(2);
  reg.counter("alpha").inc(1);
  reg.gauge("vol.gauge", /*stable=*/false).set(9.0);
  reg.set_label("backend", "scalar");
  const std::string all = reg.to_json();
  const std::string stable = reg.to_json(/*include_volatile=*/false);
  // Registration order was zeta-then-alpha; export must sort by name.
  EXPECT_LT(all.find("\"alpha\""), all.find("\"zeta\""));
  EXPECT_NE(all.find("\"vol.gauge\""), std::string::npos);
  EXPECT_EQ(stable.find("\"vol.gauge\""), std::string::npos);
  EXPECT_NE(stable.find("\"backend\":\"scalar\""), std::string::npos);
  // Identical state must serialize to identical bytes.
  EXPECT_EQ(all, reg.to_json());
}

TEST(MetricsRegistry, CountersSumAcrossConcurrentThreads) {
  SKIP_IF_OBS_OFF();
  // The TSan leg runs this binary: writers hammer shard slots while a reader
  // concurrently sums and serializes. Must be race-free and lose nothing.
  obs::MetricsRegistry reg;
  const obs::Counter c = reg.counter("hot");
  const obs::Histogram h = reg.histogram("hist", {1.0, 2.0});
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(1.5);
      }
    });
  }
  workers.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      (void)c.value();
      (void)reg.to_json();
    }
  });
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

// --------------------------------------------------------------- tracer

TEST(Tracer, SpansLinkParentsAndCloseInOrder) {
  SKIP_IF_OBS_OFF();
  obs::Tracer tr;
  const auto root = tr.begin("root");
  const auto child = tr.begin("child", obs::kAutoTime, root, 7, 9);
  tr.instant("mark", obs::kAutoTime, child);
  {
    const auto open = tr.snapshot();
    ASSERT_EQ(open.size(), 3u);
    EXPECT_EQ(open[1].t_end, -1);  // still open
  }
  tr.end(child);
  tr.end(root);
  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].id, 1u);
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_EQ(events[1].parent, root);
  EXPECT_EQ(events[1].arg0, 7u);
  EXPECT_EQ(events[1].arg1, 9u);
  EXPECT_EQ(events[2].parent, child);
  EXPECT_EQ(events[2].t_begin, events[2].t_end);  // instant
  EXPECT_GE(events[0].t_end, events[0].t_begin);  // logical ticks advance
  EXPECT_GE(events[1].t_end, events[1].t_begin);
}

TEST(Tracer, RingKeepsNewestAndCountsDropped) {
  SKIP_IF_OBS_OFF();
  obs::Tracer tr(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) tr.instant("e");
  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().id, 3u);
  EXPECT_EQ(events.back().id, 6u);
  EXPECT_EQ(tr.emitted(), 6u);
  EXPECT_EQ(tr.dropped(), 2u);
}

TEST(Tracer, SuppressionAndDisableBlockEmission) {
  SKIP_IF_OBS_OFF();
  obs::Tracer tr;
  {
    const obs::TraceSuppress guard;
    EXPECT_TRUE(obs::TraceSuppress::active());
    EXPECT_EQ(tr.begin("hidden"), 0u);
    EXPECT_EQ(tr.instant("hidden"), 0u);
  }
  EXPECT_FALSE(obs::TraceSuppress::active());
  tr.set_enabled(false);
  EXPECT_EQ(tr.begin("off"), 0u);
  tr.set_enabled(true);
  EXPECT_NE(tr.begin("on"), 0u);
  EXPECT_EQ(tr.emitted(), 1u);
}

TEST(Tracer, ClearResetsIdsAndLogicalClock) {
  SKIP_IF_OBS_OFF();
  obs::Tracer tr;
  tr.instant("a");
  tr.instant("b");
  tr.clear();
  EXPECT_EQ(tr.emitted(), 0u);
  const auto id = tr.instant("c");
  EXPECT_EQ(id, 1u);
  const auto events = tr.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].t_begin, 1);  // logical tick restarted
}

// --------------------------------------------------- determinism suite

/// One full mixed workload: a faulty reliable-transport run on the simulator
/// (virtual-time spans, retry instants) followed by hierarchical training
/// and routed inference on a 2-worker system (logical-tick spans). Returns
/// the stable-metrics JSON and the retained trace window.
std::pair<std::string, std::vector<obs::TraceEvent>> run_workload() {
  auto& reg = obs::MetricsRegistry::global();
  auto& tracer = obs::Tracer::global();
  reg.reset();
  tracer.clear();

  const auto topo = net::Topology::paper_tree(4);
  net::FaultPlan plan(11);
  for (const auto leaf : topo.leaves()) plan.loss(leaf, 0.3);
  net::Simulator sim(topo, net::medium(net::MediumKind::kWifi80211n));
  sim.set_fault_plan(plan);
  for (const auto leaf : topo.leaves()) {
    for (int i = 0; i < 4; ++i) {
      sim.send_reliable(leaf, topo.parent(leaf), 900 + 100 * i);
    }
  }
  sim.run();

  auto ds = data::make_synthetic("obs-det", 20, 2, {10, 10}, 200, 60, 73,
                                 3.4F, 0.6F, 0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = 600;
  cfg.batch_size = 4;
  cfg.num_threads = 2;  // fixed worker count is part of the contract
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(2), cfg);
  sys.train();
  const auto start = sys.topology().leaves().front();
  for (std::size_t i = 0; i < ds.test_size(); ++i) {
    sys.infer_routed(ds.test_x[i], start);
  }
  return {reg.to_json(/*include_volatile=*/false), tracer.snapshot()};
}

TEST(ObsDeterminism, IdenticalRunsMatchByteForByte) {
  SKIP_IF_OBS_OFF();
  const auto first = run_workload();
  const auto second = run_workload();
  EXPECT_EQ(first.first, second.first) << "stable metrics JSON diverged";
  ASSERT_EQ(first.second.size(), second.second.size());
  for (std::size_t i = 0; i < first.second.size(); ++i) {
    EXPECT_TRUE(first.second[i] == second.second[i])
        << "trace event " << i << " diverged: " << first.second[i].name
        << " vs " << second.second[i].name;
  }
  EXPECT_FALSE(first.second.empty());
}

TEST(ObsDeterminism, StableViewExcludesSchedulingMetrics) {
  SKIP_IF_OBS_OFF();
  const auto out = run_workload();
  // A 2-worker run registers the scheduling/wall-clock metrics; none may
  // appear in the determinism-suite view.
  const std::string all = obs::MetricsRegistry::global().to_json();
  EXPECT_NE(all.find("runtime.pool.tasks"), std::string::npos);
  EXPECT_EQ(out.first.find("runtime.pool.steals"), std::string::npos);
  EXPECT_EQ(out.first.find("runtime.pool.queue_depth"), std::string::npos);
  EXPECT_EQ(out.first.find("hdc.encode.batch_ns"), std::string::npos);
  // The stable view still carries the protocol accounting.
  EXPECT_NE(out.first.find("core.routed.queries"), std::string::npos);
  EXPECT_NE(out.first.find("net.bytes_tx"), std::string::npos);
}

}  // namespace
