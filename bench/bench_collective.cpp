// bench_collective — bytes-on-wire and virtual-time wins of the collective
// schedules (src/proto/collective.*) over the point-to-point reference, on
// the deep/wide hierarchies where fusion pays.
//
// Two deployments of the same 48-leaf workload: a Figure-13-style deep tree
// (uniform_depth(48, 5)) and a wide 2-level star. For each, training runs
// twice — collectives off (the legacy per-(class, batch) frames) and
// collectives on (cost-model argmin per phase) — and the measured CommStats
// give the bytes reduction; the CollectiveCostModel prices both measured
// schedules on wired / WiFi links for the virtual-time makespan factor. A
// primitive section measures ring vs tree all-reduce bytes among sibling
// gateways against the model's estimate.
//
// Writes BENCH_collective.json. `--smoke` runs a small instance for CI.
// Exits 1 when the deep-tree reduction falls below the 25% gate.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hdc/random.hpp"
#include "proto/bus.hpp"
#include "proto/collective.hpp"
#include "proto/node_runtime.hpp"

namespace {

using namespace edgehd;
using proto::CollectiveAlgo;
using proto::CollectiveCostModel;

constexpr std::size_t kLeaves = 48;

struct PhaseStats {
  core::CommStats initial;
  core::CommStats batch;
  std::uint64_t bytes() const { return initial.bytes + batch.bytes; }
  std::uint64_t messages() const { return initial.messages + batch.messages; }
};

PhaseStats run_training(const data::Dataset& ds, const net::Topology& topo,
                        const core::SystemConfig& cfg) {
  core::EdgeHdSystem sys(ds, topo, cfg);
  PhaseStats s;
  s.initial = sys.train_initial();
  s.batch = sys.retrain_batches();
  return s;
}

/// Model-priced makespan of a measured training schedule: per-phase frames
/// and bytes averaged per edge (uniform under full health), fused phases
/// paying their CollectivePlan broadcast.
double vtime_ms(const net::Topology& topo, net::MediumKind kind,
                const PhaseStats& s, bool fused) {
  const CollectiveCostModel model(topo, net::medium(kind));
  const auto edges = static_cast<std::uint64_t>(topo.num_nodes() - 1);
  double ns = 0.0;
  for (const auto* phase : {&s.initial, &s.batch}) {
    std::uint64_t frames = phase->messages / edges;
    std::uint64_t bytes = phase->bytes / edges;
    if (fused) {
      // One fused frame per edge; the plan announcement is the second
      // per-edge message the measurement counted.
      frames = 1;
      ns += static_cast<double>(model.broadcast_from_root(14).time);
    }
    ns += static_cast<double>(
        model.reduce_to_root(std::max<std::uint64_t>(frames, 1), bytes).time);
  }
  return ns / 1e6;
}

bool report_topology(const char* tag, const data::Dataset& ds,
                     const net::Topology& topo, core::SystemConfig cfg,
                     double gate_pct) {
  std::printf("\n%s: %zu nodes, depth %zu\n", tag, topo.num_nodes(),
              topo.depth());
  bench::print_rule(72);

  const auto p2p = run_training(ds, topo, cfg);
  cfg.collective.enabled = true;  // cost-model argmin per phase (802.11n)
  const auto coll = run_training(ds, topo, cfg);

  const std::string base = std::string("collective.") + tag + ".";
  const double p2p_bytes =
      bench::via_registry(base + "p2p_bytes", static_cast<double>(p2p.bytes()));
  const double coll_bytes = bench::via_registry(
      base + "coll_bytes", static_cast<double>(coll.bytes()));
  const double reduction = bench::via_registry(
      base + "bytes_reduction_pct", 100.0 * (1.0 - coll_bytes / p2p_bytes));
  std::printf("train bytes     p2p %12.0f   collective %12.0f   (-%.1f%%)\n",
              p2p_bytes, coll_bytes, reduction);
  std::printf("  initial       p2p %12llu   collective %12llu\n",
              static_cast<unsigned long long>(p2p.initial.bytes),
              static_cast<unsigned long long>(coll.initial.bytes));
  std::printf("  retrain       p2p %12llu   collective %12llu\n",
              static_cast<unsigned long long>(p2p.batch.bytes),
              static_cast<unsigned long long>(coll.batch.bytes));
  std::printf("train messages  p2p %12llu   collective %12llu\n",
              static_cast<unsigned long long>(p2p.messages()),
              static_cast<unsigned long long>(coll.messages()));

  for (const auto kind :
       {net::MediumKind::kWired1G, net::MediumKind::kWifi80211n}) {
    const char* mname = net::medium(kind).name.c_str();
    const double t_p2p = vtime_ms(topo, kind, p2p, /*fused=*/false);
    const double t_coll = vtime_ms(topo, kind, coll, /*fused=*/true);
    const double speedup = bench::via_registry(
        base + "vtime_speedup." + mname, t_p2p / t_coll);
    bench::via_registry(base + "p2p_vtime_ms." + mname, t_p2p);
    bench::via_registry(base + "coll_vtime_ms." + mname, t_coll);
    std::printf("virtual time    %-12s p2p %10.2f ms   collective %10.2f ms"
                "   (%.2fx)\n",
                mname, t_p2p, t_coll, speedup);
  }

  if (gate_pct > 0.0 && reduction < gate_pct) {
    std::printf("GATE FAILED: %s bytes reduction %.1f%% < %.1f%%\n", tag,
                reduction, gate_pct);
    return false;
  }
  return true;
}

hdc::AccumHV random_accum(std::size_t dim, std::int32_t magnitude,
                          std::uint64_t seed) {
  hdc::Rng rng(seed);
  hdc::AccumHV acc(dim);
  for (auto& v : acc) {
    v = static_cast<std::int32_t>(rng.index(2 * magnitude + 1)) - magnitude;
  }
  return acc;
}

void report_all_reduce(std::size_t peers, std::size_t dim) {
  std::printf("\nsibling-gateway all-reduce: %zu peers x %zu lanes\n", peers,
              dim * 4);
  bench::print_rule(72);
  const auto topo = net::Topology::star(peers);
  const CollectiveCostModel model(topo,
                                  net::medium(net::MediumKind::kWired1G));

  std::vector<proto::NodeRuntime> nodes(topo.num_nodes());
  proto::LocalBus bus(topo.num_nodes());
  for (net::NodeId id = 0; id < topo.num_nodes(); ++id) {
    nodes[id].init(id, topo, dim, 4);
    proto::NodeRuntime* rt = &nodes[id];
    bus.subscribe(id, [rt](const proto::Envelope& e) { rt->on_envelope(e); });
  }
  const auto kids = topo.children(topo.root());
  const std::vector<net::NodeId> peer_ids(kids.begin(), kids.end());

  std::uint64_t state_bytes = 0;
  const auto make_states = [&] {
    std::vector<std::vector<hdc::AccumHV>> states;
    for (std::size_t p = 0; p < peers; ++p) {
      std::vector<hdc::AccumHV> st;
      for (std::size_t c = 0; c < 4; ++c) {
        st.push_back(random_accum(dim, 200, 40 + 7 * p + c));
        state_bytes += hdc::wire_bytes_accum(st.back());
      }
      states.push_back(std::move(st));
    }
    return states;
  };

  for (const auto algo :
       {CollectiveAlgo::kRingAllReduce, CollectiveAlgo::kTreeAllReduce}) {
    state_bytes = 0;
    auto states = make_states();
    proto::CommStats stats;
    bus.set_charge(&stats);
    if (algo == CollectiveAlgo::kRingAllReduce) {
      proto::ring_all_reduce(bus, nodes, topo, topo.root(), peer_ids, states);
    } else {
      proto::tree_all_reduce(bus, nodes, topo, topo.root(), peer_ids, states);
    }
    bus.set_charge(nullptr);
    const auto est = model.all_reduce(algo, peers, state_bytes / peers);
    const std::string base =
        std::string("collective.all_reduce.") + proto::to_string(algo) + ".";
    bench::via_registry(base + "measured_bytes",
                        static_cast<double>(stats.bytes));
    bench::via_registry(base + "model_bytes", static_cast<double>(est.bytes));
    std::printf("%-16s measured %9llu B in %4llu frames   model %9llu B, "
                "%7.2f ms\n",
                proto::to_string(algo),
                static_cast<unsigned long long>(stats.bytes),
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(est.bytes),
                static_cast<double>(est.time) / 1e6);
  }
  std::printf("cost-model pick (wired, this payload): %s\n",
              proto::to_string(model.pick_all_reduce(
                  peers, state_bytes / peers)));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace edgehd;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t train = smoke ? 480 : 1920;
  const std::size_t test = smoke ? 80 : 200;

  std::printf("Collective schedules vs point-to-point (%s)\n",
              smoke ? "smoke" : "full");

  const std::vector<std::size_t> parts(kLeaves, 3);
  auto ds = data::make_synthetic("pecanish", 3 * kLeaves, 4, parts, train,
                                 test, bench::kSeed, 3.6F, 0.5F, 0.5F);
  data::zscore_normalize(ds);
  core::SystemConfig cfg;
  cfg.total_dim = kLeaves * (smoke ? 128 : 256);
  cfg.batch_size = 5;

  bool ok = true;
  // The acceptance gate rides the deep tree — the Figure 13 shape where
  // per-frame costs compound across levels.
  ok &= report_topology("deep", ds, net::Topology::uniform_depth(kLeaves, 5),
                        cfg, /*gate_pct=*/25.0);
  ok &= report_topology("wide", ds, net::Topology::star(kLeaves), cfg,
                        /*gate_pct=*/0.0);

  report_all_reduce(/*peers=*/6, /*dim=*/smoke ? 128 : 512);

  bench::dump_metrics("BENCH_collective.json");
  if (!ok) return 1;
  std::printf("gates passed: deep-tree collective bytes reduction >= 25%%\n");
  return 0;
}
