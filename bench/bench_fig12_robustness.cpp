// Figure 12 — robustness to network/hardware failure: classification
// accuracy when a random fraction of the transmitted representation is lost
// in transit. Compares the DNN (losing raw feature values), EdgeHD with
// plain concatenation at internal nodes (non-holographic), and EdgeHD with
// the holographic random projection.
#include <cstdio>

#include "baseline/model_select.hpp"
#include "bench_util.hpp"
#include "hdc/random.hpp"

namespace {

using namespace edgehd;

/// DNN accuracy when each feature is lost (zeroed) independently with
/// probability `loss` during transmission.
double dnn_with_loss(const baseline::Mlp& mlp, const data::Dataset& ds,
                     double loss, std::uint64_t seed) {
  hdc::Rng rng(seed);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.test_size(); ++i) {
    auto x = ds.test_x[i];
    for (auto& v : x) {
      if (rng.bernoulli(loss)) v = 0.0F;
    }
    if (mlp.predict(x) == ds.test_y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.test_size());
}

}  // namespace

int main() {
  const double losses[] = {0.0, 0.2, 0.4, 0.6, 0.8};

  std::printf("Figure 12: accuracy under transmission loss (%%)\n");
  for (const auto id : data::hierarchical_ids()) {
    auto setup = bench::hier_setup(id);

    auto mlp = baseline::best_mlp(setup.ds);

    core::EdgeHdSystem holo(setup.ds, setup.topo, setup.cfg);
    holo.train();

    auto concat_cfg = setup.cfg;
    concat_cfg.aggregation = hier::AggregationMode::kConcatenation;
    core::EdgeHdSystem concat(setup.ds, setup.topo, concat_cfg);
    concat.train();

    const auto root = holo.topology().root();
    bench::print_rule(74);
    std::printf("%-8s | %8s %18s %16s\n", setup.ds.name.c_str(), "DNN",
                "EdgeHD-concat", "EdgeHD-holo");
    bench::print_rule(74);
    double base_dnn = 0.0, base_cat = 0.0, base_holo = 0.0;
    for (const double loss : losses) {
      // Accuracy under loss is recorded in (and printed from) the metrics
      // registry so regression gates can read the figure from the dump.
      const std::string prefix = "fig12." + setup.ds.name + ".loss" +
                                 std::to_string(static_cast<int>(100 * loss)) +
                                 ".";
      const double d = bench::via_registry(
          prefix + "dnn", dnn_with_loss(mlp, setup.ds, loss, 7));
      const double c = bench::via_registry(
          prefix + "concat", concat.accuracy_at_node_with_loss(root, loss, 7));
      const double h = bench::via_registry(
          prefix + "holo", holo.accuracy_at_node_with_loss(root, loss, 7));
      if (loss == 0.0) {
        base_dnn = d;
        base_cat = c;
        base_holo = h;
      }
      std::printf("loss=%2.0f%% | %7.1f%% %11.1f%% %14.1f%%   "
                  "(drop: %4.1f / %4.1f / %4.1f)\n",
                  100.0 * loss, bench::pct(d), bench::pct(c), bench::pct(h),
                  bench::pct(base_dnn - d), bench::pct(base_cat - c),
                  bench::pct(base_holo - h));
    }
  }
  // Bursty loss: each dropped packet erases a contiguous dimension range.
  // Under concatenation a burst wipes out one child's feature block; the
  // holographic projection spreads every child across all dimensions.
  std::printf("\nbursty loss (packet drops, burst = child-block-sized):\n");
  for (const auto id : data::hierarchical_ids()) {
    auto setup = bench::hier_setup(id);
    core::EdgeHdSystem holo(setup.ds, setup.topo, setup.cfg);
    holo.train();
    auto concat_cfg = setup.cfg;
    concat_cfg.aggregation = hier::AggregationMode::kConcatenation;
    core::EdgeHdSystem concat(setup.ds, setup.topo, concat_cfg);
    concat.train();
    const auto root = holo.topology().root();
    const auto croot = concat.topology().root();
    const std::size_t burst =
        concat.node_dim(concat.topology().leaves().front());
    std::printf("%-8s", setup.ds.name.c_str());
    for (const double loss : {0.2, 0.4, 0.6}) {
      const std::string prefix = "fig12." + setup.ds.name + ".burst" +
                                 std::to_string(static_cast<int>(100 * loss)) +
                                 ".";
      const double c = bench::via_registry(
          prefix + "concat",
          concat.accuracy_at_node_with_burst_loss(croot, loss, burst, 7));
      const double h = bench::via_registry(
          prefix + "holo",
          holo.accuracy_at_node_with_burst_loss(root, loss, burst, 7));
      std::printf("  loss=%2.0f%%: concat %5.1f%% vs holo %5.1f%%",
                  100.0 * loss, bench::pct(c), bench::pct(h));
    }
    std::printf("\n");
  }
  bench::print_rule(74);
  std::printf(
      "paper at 80%% loss: DNN drops up to 54.3%%, non-holographic up to "
      "17.5%%, holographic up to 8.3%%\n");
  bench::dump_metrics("BENCH_fig12_metrics.json");
  return 0;
}
