// Availability under injected faults: sweeps node-failure rate × packet-loss
// rate and reports, per grid cell, the served fraction, accuracy over served
// queries, degraded fraction, query/retry byte accounting from the analytic
// core, and latency/bytes (including retransmissions) from replaying the
// query traffic through the event simulator under the same FaultPlan.
// Emits one JSON document on stdout so the sweep is scriptable.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "net/fault.hpp"
#include "net/medium.hpp"
#include "net/simulator.hpp"
#include "proto/messages.hpp"

namespace {

using namespace edgehd;
using net::FaultPlan;
using net::NodeId;
using net::SimTime;
using net::Simulator;

/// Amortized wire bytes of one m-to-1 compressed query hypervector — the
/// protocol layer's accounting, same formula the core charges.
std::uint64_t query_bytes(const core::EdgeHdSystem& sys, std::size_t dim) {
  return proto::compressed_query_wire_size(dim, sys.config().compression);
}

/// Forwards one query hop by hop from `from` up to `dest` with reliable
/// transfers, then reports (reached, completion time).
void ship_query(Simulator& sim, const core::EdgeHdSystem& sys, NodeId from,
                NodeId dest, std::function<void(bool, SimTime)> done) {
  if (from == dest) {
    done(true, sim.now());
    return;
  }
  const NodeId next = sim.topology().parent(from);
  sim.send_reliable(
      from, next, query_bytes(sys, sys.node_dim(from)),
      [&sim, &sys, next, dest, done = std::move(done)](
          const net::DeliveryOutcome& o) mutable {
        if (!o.delivered) {
          done(false, o.completed_at);
          return;
        }
        ship_query(sim, sys, next, dest, std::move(done));
      },
      sys.config().reliable);  // retry policy comes from SystemConfig
}

/// Deterministic crash pick: node `id` fails under `rate` and `seed`.
bool crashes(NodeId id, double rate, std::uint64_t seed) {
  const auto word =
      net::detail::mix64(seed ^ net::detail::mix64(0x2545f4914f6cdd1dULL * (id + 1)));
  return net::detail::unit_from(word) < rate;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // --smoke shrinks the sweep to a CI-sized corner of the grid; the full
  // run keeps the paper-scale sweep.
  std::vector<double> fail_rates = {0.0, 0.1, 0.25, 0.5};
  std::vector<double> loss_rates = {0.0, 0.1, 0.3, 0.5};
  std::size_t max_queries = 200;
  if (smoke) {
    fail_rates = {0.0, 0.25};
    loss_rates = {0.0, 0.3};
    max_queries = 60;
  }
  const std::uint64_t plan_seed = 2023;
  const SimTime interval = 50 * net::kMillisecond;

  const auto id = data::hierarchical_ids().front();
  auto setup = bench::hier_setup(id);
  core::EdgeHdSystem sys(setup.ds, setup.topo, setup.cfg);
  sys.train();  // trained healthy; faults hit at serving time

  const auto& topo = sys.topology();
  const auto& leaves = topo.leaves();
  const std::size_t queries = std::min(max_queries, setup.ds.test_size());

  std::printf("{\n  \"bench\": \"faults\",\n  \"dataset\": \"%s\",\n"
              "  \"queries\": %zu,\n  \"grid\": [\n",
              setup.ds.name.c_str(), queries);

  bool first = true;
  for (const double fail : fail_rates) {
    for (const double loss : loss_rates) {
      // The plan: every non-root node may crash for the whole run; every
      // uplink suffers Bernoulli loss. The root (the central server) stays
      // up — availability is about the edge.
      FaultPlan plan(plan_seed);
      std::size_t crashed = 0;
      for (NodeId node = 0; node < topo.num_nodes(); ++node) {
        if (node == topo.root()) continue;
        if (crashes(node, fail, plan_seed)) {
          plan.crash(node);
          ++crashed;
        }
        if (loss > 0.0) plan.loss(node, loss);
      }
      sys.set_fault_plan(plan);

      // Analytic pass: serve the test set round-robin from the leaves.
      std::size_t served = 0, correct = 0, degraded = 0;
      std::uint64_t bytes = 0, retry_bytes = 0;
      std::vector<std::pair<NodeId, NodeId>> routes;  // (start, serving node)
      for (std::size_t q = 0; q < queries; ++q) {
        const NodeId start = leaves[q % leaves.size()];
        const auto r = sys.infer_routed(setup.ds.test_x[q], start);
        if (!r.served()) continue;
        ++served;
        if (r.label == setup.ds.test_y[q]) ++correct;
        if (r.degraded) ++degraded;
        bytes += r.bytes;
        retry_bytes += r.retry_bytes;
        routes.emplace_back(start, r.node);
      }

      // Transport pass: replay the served queries' uplink traffic through
      // the simulator under the same plan to price latency and wire bytes
      // (retransmissions included).
      Simulator sim(topo, net::medium(net::MediumKind::kWifi80211ac));
      sim.set_fault_plan(plan);
      double latency_sum = 0.0;
      std::size_t reached = 0;
      for (std::size_t q = 0; q < routes.size(); ++q) {
        const auto [start, dest] = routes[q];
        const SimTime issue = static_cast<SimTime>(q) * interval;
        sim.schedule(issue, [&sim, &sys, start, dest, issue, &latency_sum,
                             &reached] {
          ship_query(sim, sys, start, dest,
                     [issue, &latency_sum, &reached](bool ok, SimTime at) {
                       if (!ok) return;
                       ++reached;
                       latency_sum += static_cast<double>(at - issue) / 1e6;
                     });
        });
      }
      const SimTime makespan = sim.run();

      std::printf(
          "%s    {\"node_fail_rate\": %.2f, \"packet_loss\": %.2f, "
          "\"crashed_nodes\": %zu,\n"
          "     \"served_fraction\": %.4f, \"accuracy_served\": %.4f, "
          "\"degraded_fraction\": %.4f,\n"
          "     \"mean_query_bytes\": %.1f, \"mean_retry_bytes\": %.1f,\n"
          "     \"sim_reached\": %zu, \"sim_mean_latency_ms\": %.3f, "
          "\"sim_makespan_ms\": %.3f,\n"
          "     \"sim_total_bytes\": %llu, \"sim_retransmissions\": %llu, "
          "\"sim_drops\": %llu}",
          first ? "" : ",\n", fail, loss, crashed,
          static_cast<double>(served) / static_cast<double>(queries),
          served ? static_cast<double>(correct) / static_cast<double>(served)
                 : 0.0,
          served ? static_cast<double>(degraded) / static_cast<double>(served)
                 : 0.0,
          served ? static_cast<double>(bytes) / static_cast<double>(served)
                 : 0.0,
          served
              ? static_cast<double>(retry_bytes) / static_cast<double>(served)
              : 0.0,
          reached, reached ? latency_sum / static_cast<double>(reached) : 0.0,
          static_cast<double>(makespan) / 1e6,
          static_cast<unsigned long long>(sim.total_bytes_transferred()),
          static_cast<unsigned long long>(sim.total_retransmissions()),
          static_cast<unsigned long long>(sim.total_drops()));
      first = false;
    }
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
