// Micro-benchmarks (google-benchmark) of the HD primitives the FPGA design
// pipelines (Section V), the FPGA model's own per-operation estimates, the
// runtime layer's batch throughput (samples/sec) across worker counts, and
// the simulator's schedule→dispatch event loop (allocations per event).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>

#include "fpga/fpga_model.hpp"
#include "hdc/classifier.hpp"
#include "hdc/compress.hpp"
#include "hdc/encoder.hpp"
#include "hdc/random.hpp"
#include "hier/hier_encoder.hpp"
#include "net/medium.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

// Global allocation odometer for the event-engine benches: the calendar
// queue + InlineFunction core claims an allocation-free steady state, and
// allocs/event is the number that proves it (vs ~1 malloc per scheduled
// std::function in the seed design). Relaxed atomic: negligible overhead
// for the other benches in this binary.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace edgehd;

void BM_EncodeSparse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  hdc::SparseRbfEncoder enc(n, d, 1);
  hdc::Rng rng(2);
  const auto x = rng.gaussian_vector(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeSparse)->Args({75, 4000})->Args({617, 4000})->Args({75, 1000});

void BM_EncodeDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  hdc::RbfEncoder enc(n, 4000, 1);
  hdc::Rng rng(2);
  const auto x = rng.gaussian_vector(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(x));
  }
}
BENCHMARK(BM_EncodeDense)->Arg(75)->Arg(617);

void BM_AssociativeSearch(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 4000;
  hdc::HDClassifier clf(k, d);
  hdc::Rng rng(3);
  for (std::size_t c = 0; c < k; ++c) {
    for (int i = 0; i < 32; ++i) clf.add_sample(c, rng.sign_vector(d));
  }
  const auto q = rng.sign_vector(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.predict(q));
  }
}
BENCHMARK(BM_AssociativeSearch)->Arg(2)->Arg(5)->Arg(26);

void BM_Bundle(benchmark::State& state) {
  const std::size_t d = 4000;
  hdc::Rng rng(4);
  const auto hv = rng.sign_vector(d);
  hdc::AccumHV acc(d, 0);
  for (auto _ : state) {
    hdc::bundle_into(acc, hv);
    benchmark::DoNotOptimize(acc.data());
  }
}
BENCHMARK(BM_Bundle);

void BM_HierAggregate(benchmark::State& state) {
  const auto nnz = static_cast<std::size_t>(state.range(0));
  hier::HierEncoder enc({1333, 1333, 1334}, 4000, 5,
                        hier::AggregationMode::kHolographic, nnz);
  hdc::Rng rng(6);
  std::vector<hdc::BipolarHV> kids = {rng.sign_vector(1333),
                                      rng.sign_vector(1333),
                                      rng.sign_vector(1334)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.aggregate(kids));
  }
}
BENCHMARK(BM_HierAggregate)->Arg(16)->Arg(64)->Arg(256);

void BM_Compress(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 4000;
  hdc::HvCompressor comp(d, m, 8);
  hdc::Rng rng(9);
  std::vector<hdc::BipolarHV> batch(m);
  for (auto& hv : batch) hv = rng.sign_vector(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comp.compress(batch));
  }
}
BENCHMARK(BM_Compress)->Arg(5)->Arg(25)->Arg(100);

// ---- runtime layer: batch throughput vs worker count ----------------------
//
// The synthetic workload of the issue's acceptance bar: encode a batch of
// feature vectors and run batch inference over the encodings. Reported
// items/sec is samples/sec; sweep the worker-count argument to read the
// scaling curve (UseRealTime because the work runs on pool threads).

constexpr std::size_t kBatchSamples = 256;
constexpr std::size_t kBatchFeatures = 75;
constexpr std::size_t kBatchDim = 4000;

std::vector<std::vector<float>> synthetic_batch() {
  hdc::Rng rng(12);
  std::vector<std::vector<float>> xs(kBatchSamples);
  for (auto& x : xs) x = rng.gaussian_vector(kBatchFeatures);
  return xs;
}

void BM_EncodeBatch(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  hdc::SparseRbfEncoder enc(kBatchFeatures, kBatchDim, 1);
  const auto xs = synthetic_batch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode_batch(xs, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatchSamples));
}
BENCHMARK(BM_EncodeBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_PredictBatch(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const std::size_t k = 26;
  hdc::HDClassifier clf(k, kBatchDim);
  hdc::Rng rng(13);
  for (std::size_t c = 0; c < k; ++c) {
    for (int i = 0; i < 32; ++i) clf.add_sample(c, rng.sign_vector(kBatchDim));
  }
  std::vector<hdc::BipolarHV> queries(kBatchSamples);
  for (auto& q : queries) q = rng.sign_vector(kBatchDim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.predict_batch(queries, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatchSamples));
}
BENCHMARK(BM_PredictBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_EncodePredictPipeline(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  hdc::SparseRbfEncoder enc(kBatchFeatures, kBatchDim, 1);
  const std::size_t k = 26;
  hdc::HDClassifier clf(k, kBatchDim);
  hdc::Rng rng(14);
  for (std::size_t c = 0; c < k; ++c) {
    for (int i = 0; i < 32; ++i) clf.add_sample(c, rng.sign_vector(kBatchDim));
  }
  const auto xs = synthetic_batch();
  for (auto _ : state) {
    const auto hvs = enc.encode_batch(xs, pool);
    benchmark::DoNotOptimize(clf.predict_batch(hvs, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatchSamples));
}
BENCHMARK(BM_EncodePredictPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_TrainBatch(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  hdc::Rng rng(15);
  std::vector<hdc::BipolarHV> hvs(kBatchSamples);
  std::vector<std::size_t> labels(kBatchSamples);
  for (std::size_t i = 0; i < kBatchSamples; ++i) {
    hvs[i] = rng.sign_vector(kBatchDim);
    labels[i] = i % 5;
  }
  for (auto _ : state) {
    hdc::HDClassifier clf(5, kBatchDim);
    clf.train_batch(hvs, labels, pool);
    benchmark::DoNotOptimize(clf.class_accumulator(0).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatchSamples));
}
BENCHMARK(BM_TrainBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// ---- event engine: schedule→dispatch micro-loops ---------------------------
//
// Each iteration schedules a burst of events and drains it, so the measured
// unit is one schedule+dispatch round trip. `allocs_per_event` comes from
// the global odometer: after the first iterations grow the queue's pool to
// the burst size, the steady state must stay at ~0. The obs counters
// sim.events.{scheduled,dispatched} and the sim.queue.depth gauge are read
// back from the metrics registry to pin the accounting wiring.

constexpr int kEventBurst = 1024;

void report_event_counters(benchmark::State& state, const net::Simulator& sim,
                           std::uint64_t allocs, std::uint64_t events) {
  state.counters["allocs_per_event"] =
      static_cast<double>(allocs) / static_cast<double>(events);
  state.counters["peak_queue_depth"] =
      static_cast<double>(sim.peak_queue_depth());
  if constexpr (obs::kEnabled) {
    const auto& reg = obs::MetricsRegistry::global();
    state.counters["obs_events_scheduled"] =
        static_cast<double>(reg.counter_value("sim.events.scheduled"));
    state.counters["obs_events_dispatched"] =
        static_cast<double>(reg.counter_value("sim.events.dispatched"));
    state.counters["obs_queue_depth"] = reg.gauge_value("sim.queue.depth");
  }
}

void BM_SimScheduleDispatchEmpty(benchmark::State& state) {
  const net::Topology topo = net::Topology::uniform_depth(64, 3);
  net::Simulator sim(topo, net::medium(net::MediumKind::kWired1G));
  const std::uint64_t before_events = sim.events_dispatched();
  const std::uint64_t before_allocs =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    for (int i = 0; i < kEventBurst; ++i) {
      sim.schedule(static_cast<net::SimTime>(i + 1), [] {});
    }
    sim.run();
  }
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before_allocs;
  const std::uint64_t events = sim.events_dispatched() - before_events;
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  report_event_counters(state, sim, allocs, events);
}
BENCHMARK(BM_SimScheduleDispatchEmpty);

void BM_SimScheduleDispatchCaptureHeavy(benchmark::State& state) {
  const net::Topology topo = net::Topology::uniform_depth(64, 3);
  net::Simulator sim(topo, net::medium(net::MediumKind::kWired1G));
  // 136-byte capture — the weight class of the simulator's transfer legs,
  // far beyond std::function's inline window but inside EventFn's.
  std::array<std::uint64_t, 16> payload{};
  payload[7] = 7;
  std::uint64_t sink = 0;
  static_assert(net::Simulator::EventFn::fits_inline<decltype([payload,
                                                               &sink] {
    sink += payload[7];
  })>());
  const std::uint64_t before_events = sim.events_dispatched();
  const std::uint64_t before_allocs =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    for (int i = 0; i < kEventBurst; ++i) {
      sim.schedule(static_cast<net::SimTime>(i + 1),
                   [payload, &sink] { sink += payload[7]; });
    }
    sim.run();
  }
  benchmark::DoNotOptimize(sink);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before_allocs;
  const std::uint64_t events = sim.events_dispatched() - before_events;
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  report_event_counters(state, sim, allocs, events);
}
BENCHMARK(BM_SimScheduleDispatchCaptureHeavy);

// The seed design's cost for the identical capture-heavy burst: a binary
// heap of std::function events, which heap-allocates every capture beyond
// its ~16-byte inline window. Kept as the baseline for allocs_per_event.
void BM_StdFunctionHeapCaptureHeavy(benchmark::State& state) {
  struct Event {
    net::SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap;
  heap.reserve(kEventBurst);
  std::array<std::uint64_t, 16> payload{};
  payload[7] = 7;
  std::uint64_t sink = 0;
  std::uint64_t seq = 0;
  std::uint64_t events = 0;
  const std::uint64_t before_allocs =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    for (int i = 0; i < kEventBurst; ++i) {
      heap.push_back(Event{static_cast<net::SimTime>(i + 1), seq++,
                           [payload, &sink] { sink += payload[7]; }});
      std::push_heap(heap.begin(), heap.end(), Later{});
    }
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), Later{});
      Event ev = std::move(heap.back());
      heap.pop_back();
      ++events;
      ev.fn();
    }
  }
  benchmark::DoNotOptimize(sink);
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - before_allocs;
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["allocs_per_event"] =
      static_cast<double>(allocs) / static_cast<double>(events);
}
BENCHMARK(BM_StdFunctionHeapCaptureHeavy);

void BM_FpgaModelEstimates(benchmark::State& state) {
  for (auto _ : state) {
    const auto model = fpga::central_design(617, 4000, 26);
    benchmark::DoNotOptimize(model.train_sample_cycles());
    benchmark::DoNotOptimize(model.infer_sample_cycles());
    benchmark::DoNotOptimize(model.power_w());
  }
}
BENCHMARK(BM_FpgaModelEstimates);

}  // namespace

BENCHMARK_MAIN();
