// Micro-benchmarks (google-benchmark) of the HD primitives the FPGA design
// pipelines (Section V), the FPGA model's own per-operation estimates, and
// the runtime layer's batch throughput (samples/sec) across worker counts.
#include <benchmark/benchmark.h>

#include "fpga/fpga_model.hpp"
#include "hdc/classifier.hpp"
#include "hdc/compress.hpp"
#include "hdc/encoder.hpp"
#include "hdc/random.hpp"
#include "hier/hier_encoder.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace edgehd;

void BM_EncodeSparse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  hdc::SparseRbfEncoder enc(n, d, 1);
  hdc::Rng rng(2);
  const auto x = rng.gaussian_vector(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EncodeSparse)->Args({75, 4000})->Args({617, 4000})->Args({75, 1000});

void BM_EncodeDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  hdc::RbfEncoder enc(n, 4000, 1);
  hdc::Rng rng(2);
  const auto x = rng.gaussian_vector(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(x));
  }
}
BENCHMARK(BM_EncodeDense)->Arg(75)->Arg(617);

void BM_AssociativeSearch(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 4000;
  hdc::HDClassifier clf(k, d);
  hdc::Rng rng(3);
  for (std::size_t c = 0; c < k; ++c) {
    for (int i = 0; i < 32; ++i) clf.add_sample(c, rng.sign_vector(d));
  }
  const auto q = rng.sign_vector(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.predict(q));
  }
}
BENCHMARK(BM_AssociativeSearch)->Arg(2)->Arg(5)->Arg(26);

void BM_Bundle(benchmark::State& state) {
  const std::size_t d = 4000;
  hdc::Rng rng(4);
  const auto hv = rng.sign_vector(d);
  hdc::AccumHV acc(d, 0);
  for (auto _ : state) {
    hdc::bundle_into(acc, hv);
    benchmark::DoNotOptimize(acc.data());
  }
}
BENCHMARK(BM_Bundle);

void BM_HierAggregate(benchmark::State& state) {
  const auto nnz = static_cast<std::size_t>(state.range(0));
  hier::HierEncoder enc({1333, 1333, 1334}, 4000, 5,
                        hier::AggregationMode::kHolographic, nnz);
  hdc::Rng rng(6);
  std::vector<hdc::BipolarHV> kids = {rng.sign_vector(1333),
                                      rng.sign_vector(1333),
                                      rng.sign_vector(1334)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.aggregate(kids));
  }
}
BENCHMARK(BM_HierAggregate)->Arg(16)->Arg(64)->Arg(256);

void BM_Compress(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 4000;
  hdc::HvCompressor comp(d, m, 8);
  hdc::Rng rng(9);
  std::vector<hdc::BipolarHV> batch(m);
  for (auto& hv : batch) hv = rng.sign_vector(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comp.compress(batch));
  }
}
BENCHMARK(BM_Compress)->Arg(5)->Arg(25)->Arg(100);

// ---- runtime layer: batch throughput vs worker count ----------------------
//
// The synthetic workload of the issue's acceptance bar: encode a batch of
// feature vectors and run batch inference over the encodings. Reported
// items/sec is samples/sec; sweep the worker-count argument to read the
// scaling curve (UseRealTime because the work runs on pool threads).

constexpr std::size_t kBatchSamples = 256;
constexpr std::size_t kBatchFeatures = 75;
constexpr std::size_t kBatchDim = 4000;

std::vector<std::vector<float>> synthetic_batch() {
  hdc::Rng rng(12);
  std::vector<std::vector<float>> xs(kBatchSamples);
  for (auto& x : xs) x = rng.gaussian_vector(kBatchFeatures);
  return xs;
}

void BM_EncodeBatch(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  hdc::SparseRbfEncoder enc(kBatchFeatures, kBatchDim, 1);
  const auto xs = synthetic_batch();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode_batch(xs, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatchSamples));
}
BENCHMARK(BM_EncodeBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_PredictBatch(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const std::size_t k = 26;
  hdc::HDClassifier clf(k, kBatchDim);
  hdc::Rng rng(13);
  for (std::size_t c = 0; c < k; ++c) {
    for (int i = 0; i < 32; ++i) clf.add_sample(c, rng.sign_vector(kBatchDim));
  }
  std::vector<hdc::BipolarHV> queries(kBatchSamples);
  for (auto& q : queries) q = rng.sign_vector(kBatchDim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf.predict_batch(queries, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatchSamples));
}
BENCHMARK(BM_PredictBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_EncodePredictPipeline(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  hdc::SparseRbfEncoder enc(kBatchFeatures, kBatchDim, 1);
  const std::size_t k = 26;
  hdc::HDClassifier clf(k, kBatchDim);
  hdc::Rng rng(14);
  for (std::size_t c = 0; c < k; ++c) {
    for (int i = 0; i < 32; ++i) clf.add_sample(c, rng.sign_vector(kBatchDim));
  }
  const auto xs = synthetic_batch();
  for (auto _ : state) {
    const auto hvs = enc.encode_batch(xs, pool);
    benchmark::DoNotOptimize(clf.predict_batch(hvs, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatchSamples));
}
BENCHMARK(BM_EncodePredictPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_TrainBatch(benchmark::State& state) {
  runtime::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  hdc::Rng rng(15);
  std::vector<hdc::BipolarHV> hvs(kBatchSamples);
  std::vector<std::size_t> labels(kBatchSamples);
  for (std::size_t i = 0; i < kBatchSamples; ++i) {
    hvs[i] = rng.sign_vector(kBatchDim);
    labels[i] = i % 5;
  }
  for (auto _ : state) {
    hdc::HDClassifier clf(5, kBatchDim);
    clf.train_batch(hvs, labels, pool);
    benchmark::DoNotOptimize(clf.class_accumulator(0).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatchSamples));
}
BENCHMARK(BM_TrainBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_FpgaModelEstimates(benchmark::State& state) {
  for (auto _ : state) {
    const auto model = fpga::central_design(617, 4000, 26);
    benchmark::DoNotOptimize(model.train_sample_cycles());
    benchmark::DoNotOptimize(model.infer_sample_cycles());
    benchmark::DoNotOptimize(model.power_w());
  }
}
BENCHMARK(BM_FpgaModelEstimates);

}  // namespace

BENCHMARK_MAIN();
