// Serving-plane bench (this PR's acceptance bar): dynamic micro-batching
// must deliver >= 2x the service throughput of batch-size-1 serving on the
// same seeded workload at exactly equal accuracy (decisions are
// bit-identical; only the dispatch pattern changes). Service throughput is
// served / virtual-time makespan under the ServeConfig cost model
// (batch_overhead amortizes across coalesced queries), so the gate is
// deterministic across machines; the wall-clock GEMM-coalescing speedup of
// the kernel plane is measured and reported alongside. Also exercises
// overload shedding against a bounded queue and bursty ON/OFF arrivals, and
// reports virtual-time latency quantiles + SLO violations per scenario.
// Writes BENCH_serving.json. `--smoke` runs a small instance for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "net/medium.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "serve/engine.hpp"

namespace {

using namespace edgehd;
using net::kMillisecond;

struct Scenario {
  std::string name;
  double wall_s = 0.0;
  double qps = 0.0;          ///< wall-clock kernel throughput
  double virtual_qps = 0.0;  ///< service throughput in virtual time
  serve::ServeReport report;
  double accuracy = 0.0;
};

Scenario run_scenario(const std::string& name, const core::EdgeHdSystem& sys,
                      const serve::ServeConfig& cfg,
                      const serve::LoadSpec& load) {
  Scenario s;
  s.name = name;
  auto engine = sys.serve_start(cfg);
  const auto begin = std::chrono::steady_clock::now();
  s.report = engine->run(load);
  s.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  s.qps = static_cast<double>(s.report.served) / s.wall_s;
  s.virtual_qps = s.report.makespan <= 0
                      ? 0.0
                      : static_cast<double>(s.report.served) /
                            (static_cast<double>(s.report.makespan) / 1e9);
  s.accuracy = s.report.served == 0
                   ? 0.0
                   : static_cast<double>(s.report.correct) /
                         static_cast<double>(s.report.served);
  return s;
}

void print_scenario(const Scenario& s) {
  const auto& r = s.report;
  std::printf(
      "  %-22s  wall %6.2fs  %9.0f q/s wall  %9.0f q/s virtual  "
      "served %llu/%llu  shed %llu+%llu  acc %.4f\n",
      s.name.c_str(), s.wall_s, s.qps, s.virtual_qps,
      static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.shed_admission),
      static_cast<unsigned long long>(r.shed_escalated), s.accuracy);
  std::printf(
      "  %-22s  virtual p50 %.2fms  p95 %.2fms  p99 %.2fms  slo-viol %llu  "
      "hops %llu  batches %llu\n",
      "", r.p50_latency_ns / 1e6, r.p95_latency_ns / 1e6,
      r.p99_latency_ns / 1e6, static_cast<unsigned long long>(r.slo_violations),
      static_cast<unsigned long long>(r.escalation_hops),
      static_cast<unsigned long long>(r.batches));
}

void json_scenario(std::FILE* f, const Scenario& s, const char* trail) {
  const auto& r = s.report;
  std::fprintf(
      f,
      "    \"%s\": {\"wall_s\": %.4f, \"wall_qps\": %.1f, "
      "\"virtual_qps\": %.1f, \"submitted\": %llu, "
      "\"served\": %llu, \"served_degraded\": %llu, \"unserved\": %llu, "
      "\"shed_admission\": %llu, \"shed_escalated\": %llu, "
      "\"escalation_hops\": %llu, \"batches\": %llu, \"accuracy\": %.6f, "
      "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
      "\"mean_ms\": %.4f, \"slo_violations\": %llu, \"makespan_ms\": %.2f, "
      "\"reply_hash\": \"%llx\"}%s\n",
      s.name.c_str(), s.wall_s, s.qps, s.virtual_qps,
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.served_degraded),
      static_cast<unsigned long long>(r.unserved),
      static_cast<unsigned long long>(r.shed_admission),
      static_cast<unsigned long long>(r.shed_escalated),
      static_cast<unsigned long long>(r.escalation_hops),
      static_cast<unsigned long long>(r.batches), s.accuracy,
      r.p50_latency_ns / 1e6, r.p95_latency_ns / 1e6, r.p99_latency_ns / 1e6,
      r.mean_latency_ns / 1e6, static_cast<unsigned long long>(r.slo_violations),
      static_cast<double>(r.makespan) / 1e6,
      static_cast<unsigned long long>(r.reply_hash), trail);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint64_t n_coalesce = smoke ? 5'000 : 1'000'000;
  const std::uint64_t n_stress = smoke ? 3'000 : 100'000;

  // Wide per-leaf feature slices make the projection GEMV the dominant
  // per-query cost, which is exactly what micro-batching amortizes (the
  // gemm_f32 kernel shares each weight load across coalesced samples).
  // Well-separated classes keep the escalation rate low, so the comparison
  // measures leaf-plane coalescing rather than the (identical in both legs)
  // per-query escalation encodes.
  auto ds = data::make_synthetic("serving", 4096, 3, {1024, 1024, 1024, 1024},
                                 1200, 400, 123, 6.0F, 0.2F, 0.0F);
  data::zscore_normalize(ds);
  core::SystemConfig syscfg;
  syscfg.total_dim = 1024;
  syscfg.batch_size = 8;
  syscfg.confidence_threshold = 0.5;
  syscfg.leaf_encoder = hdc::EncoderKind::kRbfDense;  // GEMM-amortized batches
  core::EdgeHdSystem sys(ds, net::Topology::paper_tree(4), syscfg);
  sys.train();
  const auto leaves = sys.topology().leaves();
  const std::vector<net::NodeId> origins(leaves.begin(), leaves.end());

  std::printf("bench_serving: %s  queries=%llu  workers=%zu  dim=%zu\n",
              smoke ? "smoke" : "full",
              static_cast<unsigned long long>(n_coalesce), sys.worker_count(),
              syscfg.total_dim);

  // ---- A: coalescing (the acceptance bar) ---------------------------------
  // Same seeded workload through batch-size-1 serving and micro-batched
  // serving; queues deep enough that nothing sheds, so decisions — and
  // accuracy — are identical and only kernel dispatch changes.
  serve::ServeConfig single;
  single.queue_depth = 1u << 20;
  single.max_batch = 1;
  single.record_replies = false;
  serve::ServeConfig batched = single;
  batched.max_batch = 32;

  const auto load =
      serve::LoadSpec::poisson(origins, 25'000.0, n_coalesce, 71);
  const Scenario a1 = run_scenario("single(b=1)", sys, single, load);
  const Scenario a2 = run_scenario("batched(b=32)", sys, batched, load);
  print_scenario(a1);
  print_scenario(a2);
  // Service throughput (virtual time, both legs saturated by the same
  // arrival trace) is the serving plane's own throughput metric — it is
  // deterministic across machines, which a gating bench needs. The
  // wall-clock kernel speedup (GEMM coalescing) is reported alongside.
  const double speedup = a2.virtual_qps / a1.virtual_qps;
  const double wall_speedup = a2.qps / a1.qps;
  const bool acc_equal = a1.report.correct == a2.report.correct &&
                         a1.report.served == a2.report.served;
  const bool pass = speedup >= 2.0 && acc_equal;
  std::printf(
      "acceptance: micro-batched vs batch-1 service throughput %.2fx "
      "(>= 2x), kernel wall-clock %.2fx, accuracy equal: %s -> %s\n",
      speedup, wall_speedup, acc_equal ? "yes" : "NO", pass ? "PASS" : "FAIL");

  // ---- B: overload against a bounded queue --------------------------------
  serve::ServeConfig bounded;
  bounded.queue_depth = 64;
  bounded.max_batch = 32;
  bounded.per_query_cost = 200 * net::kMicrosecond;
  bounded.slo = 10 * kMillisecond;
  bounded.record_replies = false;
  const Scenario b = run_scenario(
      "overload", sys, bounded,
      serve::LoadSpec::poisson(origins, 60'000.0, n_stress, 72));
  print_scenario(b);

  // ---- C: bursty ON/OFF ----------------------------------------------------
  serve::ServeConfig burst_cfg = bounded;
  burst_cfg.queue_depth = 256;
  const Scenario c = run_scenario(
      "bursty", sys, burst_cfg,
      serve::LoadSpec::bursty(origins, 80'000.0, 20 * kMillisecond,
                              80 * kMillisecond, n_stress, 73));
  print_scenario(c);

  // ---- confidence quantiles (obs::Histogram::summary backfill) ------------
  obs::HistogramSummary conf;
  if constexpr (obs::kEnabled) {
    conf = obs::MetricsRegistry::global()
               .find_histogram("core.routed.confidence")
               .summary();
    std::printf(
        "routed confidence: n=%llu  p50 %.3f  p90 %.3f  p95 %.3f  p99 %.3f\n",
        static_cast<unsigned long long>(conf.count), conf.p50, conf.p90,
        conf.p95, conf.p99);
  }

  std::FILE* f = std::fopen("BENCH_serving.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"mode\": \"%s\",\n  \"queries\": %llu,\n",
                 smoke ? "smoke" : "full",
                 static_cast<unsigned long long>(n_coalesce));
    std::fprintf(f, "  \"workers\": %zu,\n  \"scenarios\": {\n",
                 sys.worker_count());
    json_scenario(f, a1, ",");
    json_scenario(f, a2, ",");
    json_scenario(f, b, ",");
    json_scenario(f, c, "");
    std::fprintf(f, "  },\n");
    std::fprintf(f,
                 "  \"confidence\": {\"count\": %llu, \"p50\": %.4f, "
                 "\"p90\": %.4f, \"p95\": %.4f, \"p99\": %.4f},\n",
                 static_cast<unsigned long long>(conf.count), conf.p50,
                 conf.p90, conf.p95, conf.p99);
    std::fprintf(f,
                 "  \"coalescing_speedup\": %.3f,\n"
                 "  \"kernel_wall_speedup\": %.3f,\n"
                 "  \"accuracy_equal\": %s,\n"
                 "  \"coalescing_speedup_ok\": %s\n}\n",
                 speedup, wall_speedup, acc_equal ? "true" : "false",
                 pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_serving.json\n");
  }
  // The gated ratio is virtual-time service throughput, deterministic for a
  // fixed (seed, config) — so the bar holds in smoke mode too.
  return pass ? 0 : 1;
}
