// Ablation — the two communication knobs (Sections IV-B and IV-C):
//  * retraining batch size B: central-node accuracy vs training bytes
//  * compression rate m: query bytes vs recovery bit-error rate
#include <cstdio>

#include "bench_util.hpp"
#include "hdc/compress.hpp"
#include "hdc/random.hpp"
#include "hdc/wire.hpp"

int main() {
  using namespace edgehd;

  std::printf("Ablation: retraining batch size B (PDP, 3-level TREE)\n");
  bench::print_rule(60);
  std::printf("%-6s %14s %16s\n", "B", "central-acc", "retrain-bytes");
  bench::print_rule(60);
  for (const std::size_t b : {1u, 5u, 25u, 75u, 200u}) {
    auto setup = bench::hier_setup(data::DatasetId::kPdp);
    setup.cfg.batch_size = b;
    core::EdgeHdSystem system(setup.ds, setup.topo, setup.cfg);
    const auto comm = system.retrain_batches();
    (void)system.train_initial();
    // Re-run full training in protocol order for the accuracy number.
    core::EdgeHdSystem fresh(setup.ds, setup.topo, setup.cfg);
    fresh.train();
    std::printf("%-6zu %13.1f%% %13.1f KiB\n", static_cast<std::size_t>(b),
                bench::pct(fresh.accuracy_at_node(fresh.topology().root())),
                static_cast<double>(comm.bytes) / 1024.0);
  }
  bench::print_rule(60);

  std::printf("\nAblation: compression rate m (D=4000)\n");
  bench::print_rule(60);
  std::printf("%-6s %16s %14s %14s\n", "m", "bytes/query", "bit-err",
              "predicted");
  bench::print_rule(60);
  const std::size_t dim = 4000;
  hdc::Rng rng(123);
  for (const std::size_t m : {1u, 5u, 10u, 25u, 50u, 100u}) {
    const hdc::HvCompressor comp(dim, m, 7);
    std::vector<hdc::BipolarHV> batch(m);
    for (auto& hv : batch) hv = rng.sign_vector(dim);
    const auto packed = comp.compress(batch);
    std::size_t flips = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const auto rec = comp.decompress(packed, i);
      for (std::size_t d = 0; d < dim; ++d) {
        if (rec[d] != batch[i][d]) ++flips;
      }
    }
    const double ber =
        static_cast<double>(flips) / static_cast<double>(m * dim);
    const std::uint64_t bundle_bytes = hdc::wire_bytes_accum(packed);
    std::printf("%-6zu %13.1f B %13.4f %14.4f\n", static_cast<std::size_t>(m),
                static_cast<double>(bundle_bytes) / static_cast<double>(m),
                ber, hdc::HvCompressor::expected_bit_error(m));
  }
  bench::print_rule(60);
  return 0;
}
