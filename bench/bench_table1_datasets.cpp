// Table I — dataset summary: n, K, end nodes, paper sizes, generated sizes.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace edgehd;
  std::printf("Table I: evaluated datasets (synthetic stand-ins; see DESIGN.md)\n");
  bench::print_rule(96);
  std::printf("%-8s %5s %3s %10s %11s %10s %9s %8s  %s\n", "name", "n", "K",
              "end-nodes", "paper-train", "paper-test", "gen-train",
              "gen-test", "description");
  bench::print_rule(96);
  for (const auto& spec : data::all_specs()) {
    const auto ds = bench::bench_dataset(spec.id);
    std::printf("%-8s %5zu %3zu %10zu %11zu %10zu %9zu %8zu  %s\n",
                spec.name.c_str(), spec.num_features, spec.num_classes,
                spec.end_nodes, spec.paper_train, spec.paper_test,
                ds.train_size(), ds.test_size(), spec.description.c_str());
  }
  bench::print_rule(96);
  return 0;
}
