// Figure 13 — impact of hierarchy depth on PECAN: (a) EdgeHD speedup over
// centralized learning on the same topology at 1 Gbps and 802.11n, for
// hierarchy depths 3..7; (b) central-node accuracy vs depth.
#include <cstdio>

#include "bench_util.hpp"
#include "core/cost_model.hpp"

int main() {
  using namespace edgehd;
  const auto& spec = data::spec(data::DatasetId::kPecan);

  std::printf("Figure 13a: PECAN end-to-end (train+infer) speedup vs "
              "centralized HD-FPGA\n");
  bench::print_rule(60);
  std::printf("%-6s %14s %14s\n", "depth", "Wired-1Gbps", "WiFi-802.11n");
  bench::print_rule(60);

  core::WorkloadShape shape = core::WorkloadShape::from_spec(spec);
  shape.partitions = bench::hier_partitions(data::DatasetId::kPecan);
  const core::CostModel model(shape);

  for (std::size_t depth = 3; depth <= 7; ++depth) {
    const auto topo =
        net::Topology::uniform_depth(shape.partitions.size(), depth);
    std::printf("%-6zu", depth);
    for (const auto kind :
         {net::MediumKind::kWired1G, net::MediumKind::kWifi80211n}) {
      const auto& medium = net::medium(kind);
      const auto central =
          model.evaluate(core::Deployment::kHdFpga, topo, medium);
      const auto edge = model.evaluate(core::Deployment::kEdgeHd, topo, medium);
      const double central_total = static_cast<double>(central.train.time) +
                                   static_cast<double>(central.infer.time);
      const double edge_total = static_cast<double>(edge.train.time) +
                                static_cast<double>(edge.infer.time);
      std::printf(" %13.1fx", central_total / edge_total);
    }
    std::printf("\n");
  }
  bench::print_rule(60);

  std::printf("\nFigure 13b: PECAN central-node accuracy vs depth (%%)\n");
  bench::print_rule(60);
  auto setup = bench::hier_setup(data::DatasetId::kPecan);
  for (std::size_t depth = 3; depth <= 7; ++depth) {
    auto ds = setup.ds;
    core::EdgeHdSystem system(
        ds, net::Topology::uniform_depth(ds.partitions.size(), depth),
        setup.cfg);
    system.train();
    // Deeper chains of sign-projections lose information at fixed D; the
    // paper compensates with a larger dimensionality in deep configurations.
    auto comp_cfg = setup.cfg;
    comp_cfg.total_dim = setup.cfg.total_dim * depth / 3;
    core::EdgeHdSystem compensated(
        ds, net::Topology::uniform_depth(ds.partitions.size(), depth),
        comp_cfg);
    compensated.train();
    std::printf("depth=%zu  central accuracy = %.1f%%   (D=%zu: %.1f%%)\n",
                depth,
                bench::pct(system.accuracy_at_node(system.topology().root())),
                comp_cfg.total_dim,
                bench::pct(compensated.accuracy_at_node(
                    compensated.topology().root())));
  }
  bench::print_rule(60);
  std::printf("paper: speedup grows with depth (3.3x at 1Gbps by depth 7); "
              "accuracy stays within ~1%% of the 3-level configuration\n");
  return 0;
}
