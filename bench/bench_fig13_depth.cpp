// Figure 13 — impact of hierarchy depth on PECAN: (a) EdgeHD speedup over
// centralized learning on the same topology at 1 Gbps and 802.11n, for
// hierarchy depths 3..7; (b) central-node accuracy vs depth, plus the
// measured training bytes with and without collective schedules.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/cost_model.hpp"

int main() {
  using namespace edgehd;
  const auto& spec = data::spec(data::DatasetId::kPecan);

  std::printf("Figure 13a: PECAN end-to-end (train+infer) speedup vs "
              "centralized HD-FPGA\n");
  bench::print_rule(60);
  std::printf("%-6s %14s %14s\n", "depth", "Wired-1Gbps", "WiFi-802.11n");
  bench::print_rule(60);

  core::WorkloadShape shape = core::WorkloadShape::from_spec(spec);
  shape.partitions = bench::hier_partitions(data::DatasetId::kPecan);
  const core::CostModel model(shape);

  for (std::size_t depth = 3; depth <= 7; ++depth) {
    const auto topo =
        net::Topology::uniform_depth(shape.partitions.size(), depth);
    const std::string prefix = "fig13.depth" + std::to_string(depth) + ".";
    std::printf("%-6zu", depth);
    for (const auto kind :
         {net::MediumKind::kWired1G, net::MediumKind::kWifi80211n}) {
      const auto& medium = net::medium(kind);
      const auto central =
          model.evaluate(core::Deployment::kHdFpga, topo, medium);
      const auto edge = model.evaluate(core::Deployment::kEdgeHd, topo, medium);
      const double central_total = static_cast<double>(central.train.time) +
                                   static_cast<double>(central.infer.time);
      const double edge_total = static_cast<double>(edge.train.time) +
                                static_cast<double>(edge.infer.time);
      std::printf(" %13.1fx",
                  bench::via_registry(prefix + "speedup." + medium.name,
                                      central_total / edge_total));
    }
    std::printf("\n");
  }
  bench::print_rule(60);

  std::printf("\nFigure 13b: PECAN central-node accuracy and train bytes "
              "vs depth\n");
  bench::print_rule(60);
  auto setup = bench::hier_setup(data::DatasetId::kPecan);
  for (std::size_t depth = 3; depth <= 7; ++depth) {
    const std::string prefix = "fig13.depth" + std::to_string(depth) + ".";
    auto ds = setup.ds;
    const auto topo = net::Topology::uniform_depth(ds.partitions.size(), depth);
    core::EdgeHdSystem system(ds, topo, setup.cfg);
    const auto comm = system.train();
    const double train_bytes = bench::via_registry(
        prefix + "train_bytes", static_cast<double>(comm.bytes));

    auto coll_cfg = setup.cfg;
    coll_cfg.collective.enabled = true;
    core::EdgeHdSystem fused(ds, topo, coll_cfg);
    const auto coll_comm = fused.train();
    const double coll_bytes = bench::via_registry(
        prefix + "train_bytes_collective", static_cast<double>(coll_comm.bytes));

    // Deeper chains of sign-projections lose information at fixed D; the
    // paper compensates with a larger dimensionality in deep configurations.
    auto comp_cfg = setup.cfg;
    comp_cfg.total_dim = setup.cfg.total_dim * depth / 3;
    core::EdgeHdSystem compensated(ds, topo, comp_cfg);
    compensated.train();
    const double acc = bench::via_registry(
        prefix + "central_accuracy_pct",
        bench::pct(system.accuracy_at_node(system.topology().root())));
    const double comp_acc = bench::via_registry(
        prefix + "compensated_accuracy_pct",
        bench::pct(compensated.accuracy_at_node(compensated.topology().root())));
    std::printf("depth=%zu  central accuracy = %.1f%%   (D=%zu: %.1f%%)   "
                "train bytes %.0f -> %.0f collective\n",
                depth, acc, comp_cfg.total_dim, comp_acc, train_bytes,
                coll_bytes);
  }
  bench::print_rule(60);
  std::printf("paper: speedup grows with depth (3.3x at 1Gbps by depth 7); "
              "accuracy stays within ~1%% of the 3-level configuration\n");
  bench::dump_metrics("BENCH_fig13_metrics.json");
  return 0;
}
