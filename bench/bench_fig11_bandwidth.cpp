// Figure 11 — impact of network bandwidth: EdgeHD inference speedup over
// centralized HD-FPGA across five network media, when the inference is
// served at Level 1 (end node), Level 2 (gateway) or Level 3 (central node).
// Values are means over the four hierarchical workloads.
#include <cstdio>

#include "bench_util.hpp"
#include "core/cost_model.hpp"

int main() {
  using namespace edgehd;
  std::printf(
      "Figure 11: EdgeHD inference speedup vs centralized HD-FPGA "
      "(mean over PECAN/PAMAP2/APRI/PDP)\n");
  bench::print_rule(70);
  std::printf("%-16s %10s %10s %10s\n", "medium", "Level-1", "Level-2",
              "Level-3");
  bench::print_rule(70);

  for (const auto& medium : net::all_media()) {
    double speedup[4] = {};
    std::uint64_t level_bytes[4] = {};
    std::size_t count = 0;
    for (const auto id : data::hierarchical_ids()) {
      core::WorkloadShape shape =
          core::WorkloadShape::from_spec(data::spec(id));
      shape.partitions = bench::hier_partitions(id);
      const core::CostModel model(shape);
      const auto topo = bench::hier_topology(id);

      const auto central_latency = model.centralized_query_latency(
          topo, medium, net::hd_fpga_central(),
          model.hd_central_infer_macs_per_query(true));
      for (std::size_t level = 1; level <= 3; ++level) {
        const auto edge_latency =
            model.edgehd_query_latency(topo, medium, level);
        speedup[level] += static_cast<double>(central_latency) /
                          static_cast<double>(edge_latency);
        level_bytes[level] +=
            model.edgehd_inference_at_level(topo, medium, level).bytes;
      }
      ++count;
    }
    // Every printed number goes through the registry (one source of truth);
    // the per-level query byte totals ride along so regression gates can
    // read them from the metrics dump.
    const auto n = static_cast<double>(count);
    const std::string prefix = "fig11." + medium.name + ".level";
    double mean[4] = {};
    for (std::size_t level = 1; level <= 3; ++level) {
      mean[level] = bench::via_registry(
          prefix + std::to_string(level) + ".speedup", speedup[level] / n);
      bench::via_registry(prefix + std::to_string(level) + ".inference_bytes",
                          static_cast<double>(level_bytes[level]));
    }
    std::printf("%-16s %9.1fx %9.1fx %9.1fx\n", medium.name.c_str(), mean[1],
                mean[2], mean[3]);
  }
  bench::print_rule(70);
  std::printf(
      "paper: ~3.8x mean at 802.11ac rising to ~9.2x at Bluetooth 4.0; "
      "Level-2 runs 1.8-2.4x faster than Level-3\n");
  bench::dump_metrics("BENCH_fig11_metrics.json");
  return 0;
}
