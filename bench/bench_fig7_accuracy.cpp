// Figure 7 — classification accuracy: DNN vs SVM vs AdaBoost vs baseline
// (linear-encoding) HD vs EdgeHD, all centralized, on the nine Table-I
// workloads. Baselines are grid-searched as in the paper; EdgeHD runs at
// D = 4000 with 80% sparsity.
#include <cstdio>

#include "baseline/hd_model.hpp"
#include "baseline/model_select.hpp"
#include "bench_util.hpp"

int main() {
  using namespace edgehd;
  std::printf("Figure 7: classification accuracy comparison (%%)\n");
  bench::print_rule();
  std::printf("%-8s %8s %8s %9s %12s %8s %8s\n", "dataset", "DNN", "SVM",
              "AdaBoost", "baselineHD", "EdgeHD", "gap");
  bench::print_rule();

  double gap_sum = 0.0;
  double edgehd_sum = 0.0;
  double dnn_sum = 0.0;
  std::size_t count = 0;
  for (const auto& spec : data::all_specs()) {
    // Smaller caps than the other benches: five grid-searched models per
    // dataset is the most compute-heavy experiment in the suite.
    const auto ds = bench::bench_dataset(spec.id, 1200, 400);

    const auto mlp = baseline::best_mlp(ds);
    const auto svm = baseline::best_svm(ds);
    const auto ada = baseline::best_adaboost(ds);

    baseline::HdModelConfig lin_cfg;
    lin_cfg.encoder = hdc::EncoderKind::kLinearLevel;
    baseline::HdModel hd_linear(lin_cfg);
    hd_linear.fit(ds);

    baseline::HdModel edgehd;  // sparse RBF encoder, D = 4000
    edgehd.fit(ds);

    const std::string base = "fig7." + spec.name + ".";
    const double lin_acc =
        bench::via_registry(base + "baseline_hd_acc", hd_linear.test_accuracy(ds));
    const double hd_acc =
        bench::via_registry(base + "edgehd_acc", edgehd.test_accuracy(ds));
    bench::via_registry(base + "dnn_acc", mlp.test_accuracy(ds));
    bench::via_registry(base + "svm_acc", svm.test_accuracy(ds));
    bench::via_registry(base + "adaboost_acc", ada.test_accuracy(ds));
    gap_sum += hd_acc - lin_acc;
    edgehd_sum += hd_acc;
    dnn_sum += mlp.test_accuracy(ds);
    ++count;

    std::printf("%-8s %8.1f %8.1f %9.1f %12.1f %8.1f %+7.1f\n",
                spec.name.c_str(), bench::pct(mlp.test_accuracy(ds)),
                bench::pct(svm.test_accuracy(ds)),
                bench::pct(ada.test_accuracy(ds)), bench::pct(lin_acc),
                bench::pct(hd_acc), bench::pct(hd_acc - lin_acc));
  }
  bench::print_rule();
  const double mean_gain = bench::via_registry(
      "fig7.mean_edgehd_gain", gap_sum / static_cast<double>(count));
  const double mean_edgehd = bench::via_registry(
      "fig7.mean_edgehd_acc", edgehd_sum / static_cast<double>(count));
  const double mean_dnn = bench::via_registry(
      "fig7.mean_dnn_acc", dnn_sum / static_cast<double>(count));
  std::printf("mean EdgeHD gain over baseline HD: %+.1f%% (paper: +4.7%%)\n",
              bench::pct(mean_gain));
  std::printf("mean EdgeHD accuracy: %.1f%%  mean DNN accuracy: %.1f%%\n",
              bench::pct(mean_edgehd), bench::pct(mean_dnn));
  bench::dump_metrics("BENCH_fig7.json");
  return 0;
}
