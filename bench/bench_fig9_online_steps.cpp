// Figure 9 — online-learning propagation frequency:
//  (a) PAMAP2 central-node accuracy after online learning with 50% and 100%
//      of the online stream, for 1/2/4/10 propagation steps;
//  (b) central-node accuracy after each of 10 steps for all four
//      hierarchical workloads.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace edgehd;

/// Runs the offline-50% / online-50% protocol with `steps` residual
/// propagations over `online_fraction` of the online stream; returns the
/// central-node accuracy after each step.
std::vector<double> run_online(data::DatasetId id, std::size_t steps,
                               double online_fraction) {
  auto setup = bench::hier_setup(id);
  core::EdgeHdSystem system(setup.ds, setup.topo, setup.cfg);
  const auto leaves = system.topology().leaves();
  const auto root = system.topology().root();

  const std::size_t half = setup.ds.train_size() / 2;
  std::vector<std::size_t> offline(half);
  std::iota(offline.begin(), offline.end(), 0);
  system.train(offline);

  const auto online_total = static_cast<std::size_t>(
      static_cast<double>(setup.ds.train_size() - half) * online_fraction);
  std::vector<double> acc;
  std::size_t cursor = half;
  for (std::size_t step = 1; step <= steps; ++step) {
    const std::size_t end = half + online_total * step / steps;
    for (; cursor < end; ++cursor) {
      system.online_serve(setup.ds.train_x[cursor], setup.ds.train_y[cursor],
                          leaves[cursor % leaves.size()]);
    }
    system.propagate_residuals();
    acc.push_back(system.accuracy_at_node(root));
  }
  return acc;
}

}  // namespace

int main() {
  std::printf("Figure 9a: PAMAP2 central accuracy vs propagation steps (%%)\n");
  bench::print_rule();
  std::printf("%-6s %12s %12s\n", "steps", "online=50%", "online=100%");
  bench::print_rule();
  for (const std::size_t steps : {1u, 2u, 4u, 10u}) {
    const auto half = run_online(data::DatasetId::kPamap2, steps, 0.5);
    const auto full = run_online(data::DatasetId::kPamap2, steps, 1.0);
    const std::string base = "fig9a.steps" + std::to_string(steps) + ".";
    std::printf("%-6zu %11.1f%% %11.1f%%\n", static_cast<std::size_t>(steps),
                bench::pct(bench::via_registry(base + "online50",
                                               half.back())),
                bench::pct(bench::via_registry(base + "online100",
                                               full.back())));
  }
  bench::print_rule();

  std::printf("\nFigure 9b: central accuracy per step, 10 steps (%%)\n");
  bench::print_rule();
  std::printf("%-8s", "dataset");
  for (int s = 1; s <= 10; ++s) std::printf(" %5d", s);
  std::printf("\n");
  bench::print_rule();
  double first_sum = 0.0;
  double last_sum = 0.0;
  std::size_t count = 0;
  for (const auto id : data::hierarchical_ids()) {
    const auto acc = run_online(id, 10, 1.0);
    const std::string base = "fig9b." + data::spec(id).name + ".";
    std::printf("%-8s", data::spec(id).name.c_str());
    for (std::size_t s = 0; s < acc.size(); ++s) {
      std::printf(" %5.1f",
                  bench::pct(bench::via_registry(
                      base + "step" + std::to_string(s + 1), acc[s])));
    }
    std::printf("\n");
    first_sum += acc.front();
    last_sum += acc.back();
    ++count;
  }
  bench::print_rule();
  const double mean_gain = bench::via_registry(
      "fig9b.mean_gain", (last_sum - first_sum) / static_cast<double>(count));
  std::printf(
      "mean accuracy gain over 10 steps: %+.1f%% (paper: +5.5%% on average)\n",
      bench::pct(mean_gain));
  bench::dump_metrics("BENCH_fig9.json");
  return 0;
}
