// Figure 8 — online learning on the PECAN hierarchy: (a) per-level accuracy
// vs fraction of online data consumed, (b) mean confidence per level, and
// (c) which level serves the inference traffic.
//
// Protocol (Section VI-C): the offline model is trained on 50% of the data;
// the other 50% arrives as an online stream. Users give negative feedback on
// wrong answers only; residual hypervectors propagate at every checkpoint
// ("every midnight"). Houses are the end-node encoders (each aggregates its
// appliances' readings); queries start at a house and escalate by
// confidence.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace edgehd;
  auto setup = bench::hier_setup(data::DatasetId::kPecan, 3000, 800);
  core::EdgeHdSystem system(setup.ds, setup.topo, setup.cfg);
  const auto leaves = system.topology().leaves();
  const std::size_t depth = system.topology().depth();

  // Offline half / online half of the training split.
  const std::size_t half = setup.ds.train_size() / 2;
  std::vector<std::size_t> offline(half);
  std::iota(offline.begin(), offline.end(), 0);
  system.train(offline);

  std::printf("Figure 8: PECAN online learning (houses=%zu, levels=%zu)\n",
              leaves.size(), depth);
  bench::print_rule(90);
  std::printf("%-8s |", "online%");
  for (std::size_t l = 1; l <= depth; ++l) std::printf("  acc-L%zu", l);
  std::printf(" |");
  for (std::size_t l = 1; l <= depth; ++l) std::printf(" conf-L%zu", l);
  std::printf(" |");
  for (std::size_t l = 1; l <= depth; ++l) std::printf(" srv-L%zu", l);
  std::printf("\n");
  bench::print_rule(90);

  const std::size_t checkpoints = 4;
  const std::size_t online_total = setup.ds.train_size() - half;
  std::size_t cursor = half;
  std::vector<std::size_t> served(depth + 1, 0);
  std::size_t served_total = 0;

  auto report = [&](double online_frac) {
    const std::string base =
        "fig8.online" +
        std::to_string(static_cast<int>(100.0 * online_frac)) + ".";
    std::printf("%7.0f%% |", 100.0 * online_frac);
    for (std::size_t l = 1; l <= depth; ++l) {
      const double a = bench::via_registry(
          base + "acc_l" + std::to_string(l), system.accuracy_at_level(l));
      std::printf(" %6.1f%%", bench::pct(a));
    }
    std::printf(" |");
    for (std::size_t l = 1; l <= depth; ++l) {
      const double c =
          bench::via_registry(base + "conf_l" + std::to_string(l),
                              system.mean_confidence_at_level(l));
      std::printf("  %5.1f%%", bench::pct(c));
    }
    std::printf(" |");
    for (std::size_t l = 1; l <= depth; ++l) {
      const double f = served_total == 0
                           ? 0.0
                           : static_cast<double>(served[l]) /
                                 static_cast<double>(served_total);
      std::printf(" %5.1f%%",
                  bench::pct(bench::via_registry(
                      base + "served_l" + std::to_string(l), f)));
    }
    std::printf("\n");
  };

  // Measure the serving distribution of the *test* stream before any online
  // data, then interleave online chunks with reporting.
  for (std::size_t i = 0; i < setup.ds.test_size(); ++i) {
    const auto r = system.infer_routed(setup.ds.test_x[i],
                                       leaves[i % leaves.size()]);
    ++served[r.level];
    ++served_total;
  }
  report(0.0);

  for (std::size_t step = 1; step <= checkpoints; ++step) {
    const std::size_t end = half + online_total * step / checkpoints;
    for (; cursor < end; ++cursor) {
      system.online_serve(setup.ds.train_x[cursor], setup.ds.train_y[cursor],
                          leaves[cursor % leaves.size()]);
    }
    system.propagate_residuals();  // "every midnight"

    std::fill(served.begin(), served.end(), 0);
    served_total = 0;
    for (std::size_t i = 0; i < setup.ds.test_size(); ++i) {
      const auto r = system.infer_routed(setup.ds.test_x[i],
                                         leaves[i % leaves.size()]);
      ++served[r.level];
      ++served_total;
    }
    report(static_cast<double>(step) / checkpoints);
  }
  bench::print_rule(90);
  std::printf(
      "paper: house/street/central accuracy 59.5/81.3/98.3%% after 100%% "
      "online; central serves 28.9%% -> 0.3%% of queries\n");
  bench::dump_metrics("BENCH_fig8.json");
  return 0;
}
