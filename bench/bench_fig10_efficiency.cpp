// Figure 10 — execution time and energy of DNN-GPU / HD-GPU / HD-FPGA
// (all centralized) and hierarchical EdgeHD, for training and inference, on
// the STAR and TREE topologies with an ideal 1 Gbps network. All values are
// normalized to DNN-GPU on the TREE topology, as in the paper. Uses
// paper-scale sample counts (the model is analytic).
//
// Also prints the Section VI-D headline ratios: EdgeHD vs HD-GPU speedup and
// energy efficiency, and communication reduction vs the centralized
// deployments.
#include <cstdio>

#include "bench_util.hpp"
#include "core/cost_model.hpp"

namespace {

using namespace edgehd;

struct Row {
  core::ScenarioCosts star;
  core::ScenarioCosts tree;
};

Row evaluate(data::DatasetId id, core::Deployment dep) {
  core::WorkloadShape shape = core::WorkloadShape::from_spec(data::spec(id));
  shape.partitions = bench::hier_partitions(id);
  const core::CostModel model(shape);
  const auto& medium = net::medium(net::MediumKind::kWired1G);
  const std::size_t leaves = shape.partitions.size();
  Row row;
  row.star = model.evaluate(dep, net::Topology::star(leaves), medium);
  row.tree = model.evaluate(dep, bench::hier_topology(id), medium);
  return row;
}

}  // namespace

int main() {
  const char* names[] = {"DNN-GPU", "HD-GPU", "HD-FPGA", "EdgeHD"};
  const core::Deployment deps[] = {
      core::Deployment::kDnnGpu, core::Deployment::kHdGpu,
      core::Deployment::kHdFpga, core::Deployment::kEdgeHd};

  double speedup_train = 0.0, speedup_infer = 0.0;
  double energy_train = 0.0, energy_infer = 0.0;
  double comm_train = 0.0, comm_infer = 0.0;
  std::size_t count = 0;

  for (const auto id : data::hierarchical_ids()) {
    std::printf("Figure 10 [%s]: normalized to DNN-GPU/TREE\n",
                data::spec(id).name.c_str());
    bench::print_rule(94);
    std::printf("%-8s | %10s %10s %10s | %10s %10s %10s\n", "config",
                "train-time", "train-en", "train-MB", "inf-time", "inf-en",
                "inf-MB");
    bench::print_rule(94);

    Row rows[4];
    for (int d = 0; d < 4; ++d) rows[d] = evaluate(id, deps[d]);
    const auto& base = rows[0].tree;  // DNN-GPU on TREE

    for (const char* topo : {"STAR", "TREE"}) {
      for (int d = 0; d < 4; ++d) {
        const bool star = topo[0] == 'S';
        // EdgeHD is hierarchical by construction; its STAR row is the same
        // deployment with every end node directly under the central node.
        const auto& r = star ? rows[d].star : rows[d].tree;
        // Every cell routes through the metrics registry; the raw byte
        // totals are recorded alongside so regression gates can read this
        // table from the metrics dump rather than parsing stdout.
        const std::string prefix = "fig10." + data::spec(id).name + "." +
                                   names[d] + "." + topo + ".";
        std::printf("%-8s | %10.4f %10.4f %10.2f | %10.4f %10.4f %10.2f  (%s)\n",
                    names[d],
                    bench::via_registry(
                        prefix + "train_time_norm",
                        static_cast<double>(r.train.time) /
                            static_cast<double>(base.train.time)),
                    bench::via_registry(prefix + "train_energy_norm",
                                        r.train.energy_j / base.train.energy_j),
                    bench::via_registry(
                        prefix + "train_mb",
                        static_cast<double>(r.train.bytes) / 1e6),
                    bench::via_registry(
                        prefix + "infer_time_norm",
                        static_cast<double>(r.infer.time) /
                            static_cast<double>(base.infer.time)),
                    bench::via_registry(prefix + "infer_energy_norm",
                                        r.infer.energy_j / base.infer.energy_j),
                    bench::via_registry(
                        prefix + "infer_mb",
                        static_cast<double>(r.infer.bytes) / 1e6),
                    topo);
        bench::via_registry(prefix + "train_bytes",
                            static_cast<double>(r.train.bytes));
        bench::via_registry(prefix + "infer_bytes",
                            static_cast<double>(r.infer.bytes));
      }
    }
    bench::print_rule(94);

    const auto& hd_gpu = rows[1].tree;
    const auto& edge = rows[3].tree;
    speedup_train += static_cast<double>(hd_gpu.train.time) /
                     static_cast<double>(edge.train.time);
    speedup_infer += static_cast<double>(hd_gpu.infer.time) /
                     static_cast<double>(edge.infer.time);
    energy_train += hd_gpu.train.energy_j / edge.train.energy_j;
    energy_infer += hd_gpu.infer.energy_j / edge.infer.energy_j;
    comm_train += 1.0 - static_cast<double>(edge.train.bytes) /
                            static_cast<double>(hd_gpu.train.bytes);
    comm_infer += 1.0 - static_cast<double>(edge.infer.bytes) /
                            static_cast<double>(hd_gpu.infer.bytes);
    ++count;
  }

  const auto n = static_cast<double>(count);
  std::printf("\nheadline ratios, EdgeHD vs centralized HD-GPU (TREE):\n");
  std::printf("  training:  %.1fx speedup, %.1fx energy efficiency "
              "(paper: 3.4x, 11.7x)\n",
              bench::via_registry("fig10.headline.train_speedup",
                                  speedup_train / n),
              bench::via_registry("fig10.headline.train_energy_eff",
                                  energy_train / n));
  std::printf("  inference: %.1fx speedup, %.1fx energy efficiency "
              "(paper: 1.9x, 7.8x)\n",
              bench::via_registry("fig10.headline.infer_speedup",
                                  speedup_infer / n),
              bench::via_registry("fig10.headline.infer_energy_eff",
                                  energy_infer / n));
  std::printf("  communication reduction: %.0f%% training, %.0f%% inference "
              "(paper: 85%%, 78%%)\n",
              bench::via_registry("fig10.headline.comm_reduction_train_pct",
                                  100.0 * comm_train / n),
              bench::via_registry("fig10.headline.comm_reduction_infer_pct",
                                  100.0 * comm_infer / n));
  bench::dump_metrics("BENCH_fig10_metrics.json");
  return 0;
}
