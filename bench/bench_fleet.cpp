// Fleet-scale event-engine bench (this PR's acceptance bar): sweeps node
// count 1k -> 100k+ and measures raw scheduler throughput plus full
// Simulator scenarios on deep and wide hierarchies, with and without a
// fault plan + failure detector.
//
// Two layers:
//   1. Queue micro-gate — an identical self-rescheduling timer-wheel
//      workload (capture-heavy handlers, one outstanding timer per node)
//      driven through (a) a faithful replica of the seed event core (a
//      std::vector binary heap of std::function events, one heap allocation
//      per scheduled event) and (b) the shipped core (CalendarQueue +
//      InlineFunction). The gate: at the largest sweep size the new core
//      must deliver >= 3x schedule+dispatch events/sec (full mode; the CI
//      smoke gate is 1.5x at its smaller max size).
//   2. Simulator scenarios — rounds of leaf->parent transfers through the
//      real Simulator, reporting events/sec, makespan and RSS; the fault
//      legs install a churn/loss/outage plan and advance a FailureDetector
//      on a heartbeat tick inside the measured window.
//
// Writes BENCH_fleet.json. `--smoke` runs 1k/4k nodes for CI; full mode
// runs 1k/10k/100k. Exit code reflects the throughput gate.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/detector.hpp"
#include "net/event_queue.hpp"
#include "net/fault.hpp"
#include "net/medium.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"

namespace {

using namespace edgehd;
using net::kMillisecond;
using net::NodeId;
using net::SimTime;

// ---- memory accounting ------------------------------------------------------

struct RssSample {
  double rss_mb = 0.0;   ///< current resident set
  double peak_mb = 0.0;  ///< process high-water mark (monotone)
};

RssSample read_rss() {
  RssSample s;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return s;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) {
      s.rss_mb = static_cast<double>(kb) / 1024.0;
    } else if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
      s.peak_mb = static_cast<double>(kb) / 1024.0;
    }
  }
  std::fclose(f);
  return s;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---- 1. queue micro-gate ------------------------------------------------------
//
// Both drivers run the same timer wheel: `nodes` outstanding timers, each
// handler folds its captures into a checksum and re-arms itself until the
// dispatch budget is spent, then the wheel drains. The handler capture
// (this + node + period + salt = 32 bytes) is deliberately beyond
// std::function's 16-byte inline window and comfortably inside EventFn's —
// the exact asymmetry the tentpole removes.

/// Replica of the seed simulator's event core: std::vector binary heap of
/// (time, seq, std::function) events with the EventOrder comparator.
class SeedHeapDriver {
 public:
  explicit SeedHeapDriver(std::uint64_t budget) : budget_(budget) {}

  void arm(std::uint64_t node, SimTime at, SimTime period) {
    push(at, [this, node, period, salt = node * 0x9e3779b97f4a7c15ULL] {
      checksum_ += salt ^ static_cast<std::uint64_t>(now_);
      if (dispatched_ < budget_) arm(node, now_ + period, period);
    });
  }

  std::uint64_t run() {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Event ev = std::move(heap_.back());
      heap_.pop_back();
      now_ = ev.time;
      ++dispatched_;
      ev.fn();
    }
    return dispatched_;
  }

  std::uint64_t checksum() const { return checksum_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void push(SimTime time, std::function<void()> fn) {
    heap_.push_back(Event{time, seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  std::vector<Event> heap_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t budget_ = 0;
  std::uint64_t checksum_ = 0;
};

/// The shipped core: CalendarQueue of inline-storage callbacks.
class CalendarDriver {
 public:
  explicit CalendarDriver(std::uint64_t budget) : budget_(budget) {}

  void arm(std::uint64_t node, SimTime at, SimTime period) {
    push(at, [this, node, period, salt = node * 0x9e3779b97f4a7c15ULL] {
      checksum_ += salt ^ static_cast<std::uint64_t>(now_);
      if (dispatched_ < budget_) arm(node, now_ + period, period);
    });
  }

  std::uint64_t run() {
    while (!queue_.empty()) {
      auto ev = queue_.pop();
      now_ = ev.time;
      ++dispatched_;
      ev.payload();
    }
    return dispatched_;
  }

  std::uint64_t checksum() const { return checksum_; }

 private:
  void push(SimTime time, net::Simulator::EventFn fn) {
    queue_.push(time, seq_++, std::move(fn));
  }

  net::CalendarQueue<net::Simulator::EventFn> queue_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t budget_ = 0;
  std::uint64_t checksum_ = 0;
};

struct GateRow {
  std::size_t nodes = 0;
  double seed_eps = 0.0;
  double calendar_eps = 0.0;
  double ratio = 0.0;
};

template <typename Driver>
double timer_wheel_eps(std::size_t nodes, std::uint64_t budget,
                       std::uint64_t* checksum) {
  Driver driver(budget);
  // One outstanding timer per node, periods spread so bucket occupancy is
  // realistic (heartbeats, retry timers) rather than degenerate.
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto period = static_cast<SimTime>(
        kMillisecond + static_cast<SimTime>(i % 1000) * 1000);
    driver.arm(i, period, period);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t dispatched = driver.run();
  const double secs = seconds_since(t0);
  *checksum = driver.checksum();
  return static_cast<double>(dispatched) / secs;
}

GateRow run_gate_row(std::size_t nodes, std::uint64_t budget) {
  GateRow row;
  row.nodes = nodes;
  std::uint64_t seed_sum = 0;
  std::uint64_t cal_sum = 0;
  row.seed_eps = timer_wheel_eps<SeedHeapDriver>(nodes, budget, &seed_sum);
  row.calendar_eps = timer_wheel_eps<CalendarDriver>(nodes, budget, &cal_sum);
  row.ratio = row.calendar_eps / row.seed_eps;
  if (seed_sum != cal_sum) {
    // Identical workload must produce the identical dispatch order; the
    // checksum folds (node, dispatch-time) so any divergence trips here.
    std::fprintf(stderr, "bench_fleet: dispatch-order divergence at %zu\n",
                 nodes);
    std::exit(2);
  }
  return row;
}

// ---- 2. full-Simulator scenarios ---------------------------------------------

net::FaultPlan fleet_plan(std::uint64_t seed, const net::Topology& topo,
                          SimTime horizon) {
  net::FaultPlan plan(seed);
  const std::size_t n = topo.num_nodes();
  // Churn on ~0.2% of the fleet, loss on 1% of links, a few outages: enough
  // that the fault path is genuinely exercised while most packets take the
  // cached fast path, as a real deployment would.
  const std::size_t crashes = std::max<std::size_t>(4, n / 500);
  for (std::size_t i = 0; i < crashes; ++i) {
    const NodeId v = net::detail::mix64(seed ^ (i + 1)) % n;
    if (v == topo.root()) continue;
    const SimTime from = static_cast<SimTime>(
        net::detail::mix64(seed ^ (i + 0x1000)) % static_cast<std::uint64_t>(horizon / 2));
    plan.crash(v, from, from + 30 * kMillisecond);
  }
  for (NodeId c = 0; c < n; c += 100) {
    if (c != topo.root()) plan.loss(c, 0.02);
  }
  for (NodeId c = 50; c < n; c += 1000) {
    if (c != topo.root()) {
      plan.outage(c, 30 * kMillisecond, 60 * kMillisecond);
    }
  }
  return plan;
}

struct ScenarioRow {
  std::string name;
  std::size_t nodes = 0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double wall_s = 0.0;
  double makespan_ms = 0.0;
  std::size_t peak_queue_depth = 0;
  RssSample rss;
};

ScenarioRow run_scenario(const std::string& name, const net::Topology& topo,
                         bool with_faults, std::size_t rounds) {
  net::Simulator sim(topo, net::medium(net::MediumKind::kWired1G));
  const SimTime horizon = static_cast<SimTime>(rounds + 10) * 10 * kMillisecond;
  net::FaultPlan plan;
  std::unique_ptr<net::FailureDetector> det;
  if (with_faults) {
    plan = fleet_plan(/*seed=*/99, topo, horizon);
    sim.set_fault_plan(plan);
    net::DetectorConfig dc;
    dc.enabled = true;
    det = std::make_unique<net::FailureDetector>(topo, sim.fault_plan(), dc);
    for (SimTime t = dc.heartbeat_period; t < horizon;
         t += dc.heartbeat_period) {
      sim.schedule(t, [&sim, d = det.get()] { d->advance(sim.now()); });
    }
  }

  const std::vector<NodeId> leaves = topo.leaves();
  for (std::size_t r = 0; r < rounds; ++r) {
    sim.schedule(static_cast<SimTime>(r) * 10 * kMillisecond,
                 [&sim, &topo, &leaves] {
                   for (const NodeId leaf : leaves) {
                     sim.send(leaf, topo.parent(leaf), 256);
                   }
                 });
  }

  const auto t0 = std::chrono::steady_clock::now();
  const SimTime makespan = sim.run();
  const double secs = seconds_since(t0);

  ScenarioRow row;
  row.name = name;
  row.nodes = topo.num_nodes();
  row.events = sim.events_dispatched();
  row.events_per_sec = static_cast<double>(row.events) / secs;
  row.wall_s = secs;
  row.makespan_ms = static_cast<double>(makespan) / 1e6;
  row.peak_queue_depth = sim.peak_queue_depth();
  row.rss = read_rss();
  return row;
}

void print_scenario(const ScenarioRow& row) {
  std::printf(
      "  %-24s nodes %-7zu events %-9llu  %10.0f ev/s  wall %6.2fs  "
      "makespan %8.1fms  qdepth %-7zu rss %.0f MB (peak %.0f)\n",
      row.name.c_str(), row.nodes,
      static_cast<unsigned long long>(row.events), row.events_per_sec,
      row.wall_s, row.makespan_ms, row.peak_queue_depth, row.rss.rss_mb,
      row.rss.peak_mb);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const std::vector<std::size_t> sweep =
      smoke ? std::vector<std::size_t>{1000, 4000}
            : std::vector<std::size_t>{1000, 10000, 100000};
  const double gate_threshold = smoke ? 1.5 : 3.0;

  std::printf("bench_fleet: %s  sweep up to %zu nodes  gate >= %.1fx at max\n",
              smoke ? "smoke" : "full", sweep.back(), gate_threshold);

  // ---- queue micro-gate ----
  std::vector<GateRow> gate_rows;
  for (const std::size_t nodes : sweep) {
    const std::uint64_t budget =
        std::max<std::uint64_t>(smoke ? 200'000 : 2'000'000, 10 * nodes);
    gate_rows.push_back(run_gate_row(nodes, budget));
    const GateRow& g = gate_rows.back();
    std::printf(
        "  queue @ %-7zu nodes: seed heap %10.0f ev/s   calendar %10.0f "
        "ev/s   ratio %.2fx\n",
        g.nodes, g.seed_eps, g.calendar_eps, g.ratio);
  }
  const bool gate_ok = gate_rows.back().ratio >= gate_threshold;
  std::printf("  gate @ %zu nodes: %.2fx vs %.1fx -> %s\n",
              gate_rows.back().nodes, gate_rows.back().ratio, gate_threshold,
              gate_ok ? "ok" : "FAIL");

  // ---- full-Simulator scenarios ----
  const std::size_t rounds = smoke ? 3 : 5;
  std::vector<ScenarioRow> scenarios;
  for (const std::size_t nodes : sweep) {
    const net::Topology deep = net::Topology::uniform_depth(nodes, 6);
    const net::Topology wide = net::Topology::uniform_depth(nodes, 3);
    const std::string suffix = std::to_string(nodes);
    scenarios.push_back(
        run_scenario("deep_healthy_" + suffix, deep, false, rounds));
    print_scenario(scenarios.back());
    scenarios.push_back(
        run_scenario("deep_faults_" + suffix, deep, true, rounds));
    print_scenario(scenarios.back());
    scenarios.push_back(
        run_scenario("wide_healthy_" + suffix, wide, false, rounds));
    print_scenario(scenarios.back());
    scenarios.push_back(
        run_scenario("wide_faults_" + suffix, wide, true, rounds));
    print_scenario(scenarios.back());
  }

  // ---- report ----
  std::FILE* f = std::fopen("BENCH_fleet.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"mode\": \"%s\",\n  \"queue_sweep\": [\n",
                 smoke ? "smoke" : "full");
    for (std::size_t i = 0; i < gate_rows.size(); ++i) {
      const GateRow& g = gate_rows[i];
      std::fprintf(f,
                   "    {\"nodes\": %zu, \"seed_heap_eps\": %.0f, "
                   "\"calendar_eps\": %.0f, \"ratio\": %.3f}%s\n",
                   g.nodes, g.seed_eps, g.calendar_eps, g.ratio,
                   i + 1 < gate_rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"gate\": {\"nodes\": %zu, \"ratio\": %.3f, "
                 "\"threshold\": %.1f, \"ok\": %s},\n  \"scenarios\": [\n",
                 gate_rows.back().nodes, gate_rows.back().ratio,
                 gate_threshold, gate_ok ? "true" : "false");
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const ScenarioRow& s = scenarios[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"nodes\": %zu, \"events\": %llu, "
                   "\"events_per_sec\": %.0f, \"wall_s\": %.3f, "
                   "\"makespan_ms\": %.2f, \"peak_queue_depth\": %zu, "
                   "\"rss_mb\": %.1f, \"peak_rss_mb\": %.1f}%s\n",
                   s.name.c_str(), s.nodes,
                   static_cast<unsigned long long>(s.events),
                   s.events_per_sec, s.wall_s, s.makespan_ms,
                   s.peak_queue_depth, s.rss.rss_mb, s.rss.peak_mb,
                   i + 1 < scenarios.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_fleet.json\n");
  }

  std::printf(
      "acceptance: calendar queue >= %.1fx seed heap at %zu nodes -> %s\n",
      gate_threshold, gate_rows.back().nodes, gate_ok ? "PASS" : "FAIL");
  return gate_ok ? 0 : 1;
}
