// bench_dim — adaptive dimensionality (DESIGN.md §14): what deterministic
// (counter-derived) projections and learner-aware dimension regeneration buy
// on Table-I workloads, swept over D and the regeneration fraction.
//
// Section 1 (memory): for each (dataset, D), train once with the legacy
// stored projection rows and once with the deterministic provider, and
// compare root accuracy and the leaves' resident projection bytes. The
// deterministic provider re-derives rows per chunk from counter streams, so
// its resident state is ~zero until regeneration allocates its 2-byte
// generation counters. Stored and deterministic draws are different (equally
// distributed) random projections, so each point is averaged over a few
// system seeds and the gate compares the means.
//
// Section 2 (wire): in concatenation aggregation — where every root
// dimension traces back to one leaf dimension and patches stay k columns at
// every hop — regenerate frac·D worst-scored dimensions and compare the
// DimensionPatch session's bytes against what initial training paid to ship
// the full models, plus the accuracy after the post-regeneration retrain.
//
// Writes BENCH_dim.json. `--smoke` runs a reduced sweep for CI. Exits 1 when
// a gate fails:
//   * >= 4x leaf projection-memory reduction (deterministic vs stored) at
//     every operating point, with the accuracy delta — averaged over every
//     (dataset, D, seed) pair, since a single point at bench caps carries
//     several points of draw noise — within 3 points of stored;
//   * DimensionPatch bytes <= 50% of the full-model initial-training bytes
//     at every swept fraction, with the mean post-regen accuracy delta
//     within 3 points of the no-regen baseline.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace edgehd;

constexpr std::uint64_t kSeeds[] = {7, 8, 9};
constexpr double kAccTol = 0.03;

struct TrainedRun {
  double accuracy = 0.0;
  std::size_t proj_bytes = 0;
};

TrainedRun run_once(const bench::HierSetup& setup, std::size_t total_dim,
                    hdc::ProjectionMode mode, hier::AggregationMode agg,
                    std::uint64_t seed) {
  core::SystemConfig cfg = setup.cfg;
  cfg.total_dim = total_dim;
  cfg.projection_mode = mode;
  cfg.aggregation = agg;
  cfg.seed = seed;
  core::EdgeHdSystem sys(setup.ds, setup.topo, cfg);
  TrainedRun r;
  sys.train_initial();
  sys.retrain_batches();
  r.accuracy = sys.accuracy_at_node(sys.topology().root());
  r.proj_bytes = sys.leaf_projection_bytes();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t train_cap = smoke ? 480 : bench::kTrainCap;
  const std::size_t test_cap = smoke ? 160 : bench::kTestCap;
  const std::vector<std::size_t> dims =
      smoke ? std::vector<std::size_t>{512, 1024}
            : std::vector<std::size_t>{512, 1024, 2048, 4096};
  const std::vector<double> fracs = {0.05, 0.10};
  const std::vector<data::DatasetId> ids = {data::DatasetId::kPamap2,
                                            data::DatasetId::kPecan};
  const double nseeds = static_cast<double>(std::size(kSeeds));

  std::printf("Adaptive dimensionality: deterministic projections + "
              "dimension regeneration (%s, %zu seeds/point)\n",
              smoke ? "smoke" : "full", std::size(kSeeds));

  bool ok = true;
  double worst_mem_ratio = 1e30;
  double acc_delta_sum = 0.0;          // deterministic - stored, per point
  std::size_t acc_delta_n = 0;
  double worst_patch_ratio = 0.0;      // patch bytes / full-model bytes
  double regen_delta_sum = 0.0;        // post-regen - no-regen, per point
  std::size_t regen_delta_n = 0;

  for (const auto id : ids) {
    const auto setup = bench::hier_setup(id, train_cap, test_cap);
    const std::string dname = data::spec(id).name;
    std::printf("\n%s: stored vs deterministic projections (holographic)\n",
                dname.c_str());
    bench::print_rule(76);
    std::printf("%6s %12s %12s %8s %10s %10s\n", "D", "stored-B",
                "determ-B", "mem-x", "acc-sto", "acc-det");
    bench::print_rule(76);

    for (const std::size_t d : dims) {
      double acc_s = 0.0;
      double acc_d = 0.0;
      std::size_t stored_b = 0;
      std::size_t det_b = 0;
      for (const std::uint64_t seed : kSeeds) {
        const auto stored = run_once(setup, d, hdc::ProjectionMode::kStored,
                                     hier::AggregationMode::kHolographic, seed);
        const auto det =
            run_once(setup, d, hdc::ProjectionMode::kDeterministic,
                     hier::AggregationMode::kHolographic, seed);
        acc_s += stored.accuracy / nseeds;
        acc_d += det.accuracy / nseeds;
        stored_b = stored.proj_bytes;
        det_b = det.proj_bytes;
      }
      const std::string base =
          "dim." + dname + ".D" + std::to_string(d) + ".";
      const double sb = bench::via_registry(
          base + "stored_proj_bytes", static_cast<double>(stored_b));
      const double db = bench::via_registry(
          base + "determ_proj_bytes", static_cast<double>(det_b));
      const double ratio =
          bench::via_registry(base + "mem_ratio", sb / std::max(1.0, db));
      acc_s = bench::via_registry(base + "stored_acc", acc_s);
      acc_d = bench::via_registry(base + "determ_acc", acc_d);
      worst_mem_ratio = std::min(worst_mem_ratio, ratio);
      acc_delta_sum += acc_d - acc_s;
      ++acc_delta_n;
      std::printf("%6zu %12.0f %12.0f %7.0fx %9.1f%% %9.1f%%\n", d, sb, db,
                  ratio, bench::pct(acc_s), bench::pct(acc_d));
    }

    std::printf("\n%s: regeneration wire bytes (concatenation)\n",
                dname.c_str());
    bench::print_rule(76);
    std::printf("%6s %6s %12s %12s %8s %10s %10s\n", "D", "frac", "full-B",
                "patch-B", "ratio", "acc-base", "acc-regen");
    bench::print_rule(76);
    for (const std::size_t d : dims) {
      double acc_base = 0.0;
      for (const std::uint64_t seed : kSeeds) {
        acc_base += run_once(setup, d, hdc::ProjectionMode::kDeterministic,
                             hier::AggregationMode::kConcatenation, seed)
                        .accuracy /
                    nseeds;
      }
      for (const double frac : fracs) {
        double acc_regen = 0.0;
        double full_bytes = 0.0;
        double patch_bytes = 0.0;
        for (const std::uint64_t seed : kSeeds) {
          core::SystemConfig cfg = setup.cfg;
          cfg.total_dim = d;
          cfg.projection_mode = hdc::ProjectionMode::kDeterministic;
          cfg.aggregation = hier::AggregationMode::kConcatenation;
          cfg.seed = seed;
          core::EdgeHdSystem sys(setup.ds, setup.topo, cfg);
          const core::CommStats initial = sys.train_initial();
          sys.retrain_batches();
          const auto root = sys.topology().root();
          const std::size_t k = std::max<std::size_t>(
              1, static_cast<std::size_t>(
                     frac * static_cast<double>(sys.node_dim(root))));
          const core::CommStats patch = sys.regenerate_dimensions(k);
          sys.retrain_batches();
          acc_regen += sys.accuracy_at_node(root) / nseeds;
          full_bytes = static_cast<double>(initial.bytes);
          patch_bytes = static_cast<double>(patch.bytes);
        }

        const std::string mbase = "dim." + dname + ".D" + std::to_string(d) +
                                  ".f" + std::to_string(
                                             static_cast<int>(frac * 100)) +
                                  ".";
        const double full_b =
            bench::via_registry(mbase + "full_model_bytes", full_bytes);
        const double patch_b =
            bench::via_registry(mbase + "patch_bytes", patch_bytes);
        const double ratio = bench::via_registry(
            mbase + "patch_ratio", patch_b / std::max(1.0, full_b));
        const double acc_r = bench::via_registry(mbase + "regen_acc", acc_regen);
        worst_patch_ratio = std::max(worst_patch_ratio, ratio);
        regen_delta_sum += acc_r - acc_base;
        ++regen_delta_n;
        std::printf("%6zu %5.0f%% %12.0f %12.0f %7.2f %9.1f%% %9.1f%%\n", d,
                    100.0 * frac, full_b, patch_b, ratio,
                    bench::pct(acc_base), bench::pct(acc_r));
      }
    }
  }

  bench::print_rule(76);
  const double mean_acc_delta =
      acc_delta_sum / static_cast<double>(acc_delta_n);
  const double mean_regen_delta =
      regen_delta_sum / static_cast<double>(regen_delta_n);
  bench::via_registry("dim.worst_mem_ratio", worst_mem_ratio);
  bench::via_registry("dim.mean_acc_delta", mean_acc_delta);
  bench::via_registry("dim.worst_patch_ratio", worst_patch_ratio);
  bench::via_registry("dim.mean_regen_delta", mean_regen_delta);
  std::printf("worst memory reduction %.0fx | mean det-vs-stored accuracy "
              "%+.2f pts | worst patch/full bytes %.2f | mean regen "
              "accuracy delta %+.2f pts\n",
              worst_mem_ratio, 100.0 * mean_acc_delta, worst_patch_ratio,
              100.0 * mean_regen_delta);
  bench::dump_metrics("BENCH_dim.json");

  if (worst_mem_ratio < 4.0) {
    std::printf("GATE FAILED: projection-memory reduction %.1fx < 4x\n",
                worst_mem_ratio);
    ok = false;
  }
  if (mean_acc_delta < -kAccTol) {
    std::printf("GATE FAILED: deterministic accuracy %.2f pts below stored "
                "on average (tolerance %.1f)\n",
                100.0 * mean_acc_delta, 100.0 * kAccTol);
    ok = false;
  }
  if (worst_patch_ratio > 0.5) {
    std::printf("GATE FAILED: patch bytes %.2f of full-model bytes > 0.50\n",
                worst_patch_ratio);
    ok = false;
  }
  if (mean_regen_delta < -kAccTol) {
    std::printf("GATE FAILED: post-regen accuracy %.2f pts below baseline "
                "on average (tolerance %.1f)\n",
                100.0 * mean_regen_delta, 100.0 * kAccTol);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("gates passed: >=4x projection memory, patch bytes <= 0.5x "
              "full-model bytes, accuracy within tolerance\n");
  return 0;
}
