// Churn bench (this PR's acceptance bar): serving availability under node
// churn with the heartbeat failure detector vs the health oracle, on the
// Figure-12 hierarchical scenario. Sweeps churn rate x heartbeat period;
// for each cell reports availability (served / submitted), the failover
// counters, and the detector-plane quality numbers — detection latency
// p50/p99 and the false-suspicion rate — computed from the detector's own
// deterministic suspicion timeline over the same plan. The gate: at the
// default heartbeat period the detector leg must keep >= 95% of the oracle
// leg's availability at every churn rate. Everything is virtual-time and a
// pure function of (seed, plan, config), so the gate is deterministic
// across machines and worker counts. Writes BENCH_chaos.json. `--smoke`
// runs a small instance for CI.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/edgehd.hpp"
#include "net/detector.hpp"
#include "net/fault.hpp"
#include "net/medium.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "serve/engine.hpp"

namespace {

using namespace edgehd;
using net::kMillisecond;
using net::SimTime;

constexpr SimTime kDownTime = 80 * kMillisecond;  ///< per-crash outage
constexpr SimTime kDefaultHeartbeatMs = 20;

/// Deterministic churn schedule: one crash every 1/rate seconds, victim
/// drawn by a stateless hash of (seed, index) over the non-root nodes.
/// Windows may overlap across nodes — that is the point of a churn sweep.
net::FaultPlan churn_plan(std::uint64_t seed, const net::Topology& topo,
                          double rate_hz, SimTime horizon) {
  net::FaultPlan plan(seed);
  if (rate_hz <= 0.0) return plan;
  std::vector<net::NodeId> victims;
  for (net::NodeId id = 0; id < topo.num_nodes(); ++id) {
    if (id != topo.root()) victims.push_back(id);
  }
  const auto period = static_cast<SimTime>(1e9 / rate_hz);
  std::uint64_t i = 0;
  for (SimTime t = period; t < horizon; t += period, ++i) {
    const net::NodeId v = victims[net::detail::mix64(seed ^ (i + 1)) %
                                  victims.size()];
    plan.crash(v, t, t + kDownTime);
  }
  return plan;
}

/// Detector-plane quality for one (plan, heartbeat period) cell, from a
/// standalone detector run: the suspicion timeline is a pure function of
/// (plan, config), so this is exactly what the serve engine's embedded
/// detector observes from heartbeats (query evidence adds reports on top
/// but never changes the heartbeat timeline).
struct DetectorQuality {
  std::uint64_t suspicions = 0;
  std::uint64_t false_suspicions = 0;
  double false_rate = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  std::uint64_t probes_sent = 0;
};

DetectorQuality probe_quality(const net::Topology& topo,
                              const net::FaultPlan& plan,
                              SimTime heartbeat_period, SimTime horizon) {
  net::DetectorConfig dc;
  dc.enabled = true;
  dc.heartbeat_period = heartbeat_period;
  net::FailureDetector det(topo, plan, dc);
  det.advance(horizon);

  DetectorQuality q;
  q.suspicions = det.suspicions();
  q.false_suspicions = det.false_suspicions();
  q.false_rate = q.suspicions == 0
                     ? 0.0
                     : static_cast<double>(q.false_suspicions) /
                           static_cast<double>(q.suspicions);
  q.probes_sent = det.probes_sent();

  // True-detection latency: suspicion raised while the target really was
  // crashed, measured from the onset of the covering crash window.
  std::vector<double> lat_ms;
  for (const auto& ev : det.events()) {
    if (!ev.suspected) continue;
    SimTime onset = -1;
    for (const auto& w : plan.crashes()) {
      if (w.node == ev.target && ev.at >= w.from && ev.at < w.until) {
        onset = std::max(onset, w.from);
      }
    }
    if (onset >= 0) lat_ms.push_back(static_cast<double>(ev.at - onset) / 1e6);
  }
  std::sort(lat_ms.begin(), lat_ms.end());
  auto quant = [&lat_ms](double p) {
    if (lat_ms.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(lat_ms.size() - 1) + 0.5);
    return lat_ms[std::min(idx, lat_ms.size() - 1)];
  };
  q.latency_p50_ms = quant(0.50);
  q.latency_p99_ms = quant(0.99);
  return q;
}

struct Cell {
  std::string name;
  serve::ServeReport report;
  double availability = 0.0;
};

Cell run_cell(const std::string& name, const core::EdgeHdSystem& sys,
              const serve::ServeConfig& scfg, const net::FaultPlan& plan,
              const serve::LoadSpec& load) {
  Cell c;
  c.name = name;
  auto engine = sys.serve_start(scfg);
  engine->set_fault_plan(plan);
  c.report = engine->run(load);
  c.availability = c.report.submitted == 0
                       ? 0.0
                       : static_cast<double>(c.report.served) /
                             static_cast<double>(c.report.submitted);
  return c;
}

void print_cell(const Cell& c) {
  const auto& r = c.report;
  std::printf(
      "  %-28s  avail %.4f  served %llu/%llu  degraded %llu  unserved %llu  "
      "fo-retry %llu  fo-reroute %llu  fo-exhaust %llu\n",
      c.name.c_str(), c.availability,
      static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.served_degraded),
      static_cast<unsigned long long>(r.unserved),
      static_cast<unsigned long long>(r.failover_retries),
      static_cast<unsigned long long>(r.failover_reroutes),
      static_cast<unsigned long long>(r.failover_exhausted));
}

void json_cell(std::FILE* f, const char* key, const Cell& c,
               const char* trail) {
  const auto& r = c.report;
  std::fprintf(
      f,
      "        \"%s\": {\"availability\": %.6f, \"submitted\": %llu, "
      "\"served\": %llu, \"served_degraded\": %llu, \"unserved\": %llu, "
      "\"failover_retries\": %llu, \"failover_reroutes\": %llu, "
      "\"failover_exhausted\": %llu, \"p99_ms\": %.4f, "
      "\"makespan_ms\": %.2f}%s\n",
      key, c.availability, static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.served_degraded),
      static_cast<unsigned long long>(r.unserved),
      static_cast<unsigned long long>(r.failover_retries),
      static_cast<unsigned long long>(r.failover_reroutes),
      static_cast<unsigned long long>(r.failover_exhausted),
      r.p99_latency_ns / 1e6, static_cast<double>(r.makespan) / 1e6, trail);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const auto id = data::hierarchical_ids().front();
  auto setup = smoke ? bench::hier_setup(id, 400, 120) : bench::hier_setup(id);

  const std::vector<double> churn_rates =
      smoke ? std::vector<double>{5.0, 20.0}
            : std::vector<double>{2.0, 10.0, 50.0};
  const std::vector<SimTime> heartbeat_ms = {10, kDefaultHeartbeatMs, 40};

  // Arrival span sized so several crash windows land inside it.
  const auto leaves = setup.topo.leaves();
  const double rate_hz_per_origin = 400.0;
  const double span_s = smoke ? 0.3 : 0.8;
  const auto num_queries = static_cast<std::uint64_t>(
      span_s * rate_hz_per_origin * static_cast<double>(leaves.size()));
  const SimTime horizon =
      static_cast<SimTime>(span_s * 1.5e9) + 200 * kMillisecond;
  const auto load = serve::LoadSpec::poisson(
      std::vector<net::NodeId>(leaves.begin(), leaves.end()),
      rate_hz_per_origin, num_queries, 41);

  std::printf("bench_chaos: %s  dataset=%s  queries=%llu  leaves=%zu\n",
              smoke ? "smoke" : "full", setup.ds.name.c_str(),
              static_cast<unsigned long long>(num_queries), leaves.size());

  // One trained system per detector setting. Training runs on a benign
  // plan, where detector beliefs match the oracle bit-exactly, so every
  // system holds the same model; only the serving-plane liveness machinery
  // differs between legs.
  core::EdgeHdSystem oracle_sys(setup.ds, setup.topo, setup.cfg);
  oracle_sys.train();
  std::vector<std::unique_ptr<core::EdgeHdSystem>> det_sys;
  for (const SimTime hb : heartbeat_ms) {
    auto cfg = setup.cfg;
    cfg.detector.enabled = true;
    cfg.detector.heartbeat_period = hb * kMillisecond;
    det_sys.push_back(
        std::make_unique<core::EdgeHdSystem>(setup.ds, setup.topo, cfg));
    det_sys.back()->train();
  }

  serve::ServeConfig scfg;
  scfg.failover_retries = 8;

  struct Row {
    double churn_hz = 0.0;
    Cell oracle;
    std::vector<Cell> detector;                ///< by heartbeat period
    std::vector<DetectorQuality> quality;      ///< by heartbeat period
  };
  std::vector<Row> rows;
  bool gate_ok = true;

  for (const double churn : churn_rates) {
    const auto plan = churn_plan(/*seed=*/77, setup.topo, churn, horizon);
    Row row;
    row.churn_hz = churn;
    std::printf("churn %.0f crashes/s (%zu windows of %lld ms):\n", churn,
                plan.crashes().size(),
                static_cast<long long>(kDownTime / kMillisecond));
    row.oracle = run_cell("oracle", oracle_sys, scfg, plan, load);
    print_cell(row.oracle);
    for (std::size_t h = 0; h < heartbeat_ms.size(); ++h) {
      const std::string name =
          "detector(hb=" + std::to_string(heartbeat_ms[h]) + "ms)";
      row.detector.push_back(run_cell(name, *det_sys[h], scfg, plan, load));
      print_cell(row.detector.back());
      row.quality.push_back(probe_quality(
          setup.topo, plan, heartbeat_ms[h] * kMillisecond, horizon));
      const auto& q = row.quality.back();
      std::printf(
          "  %-28s  detect p50 %.1fms  p99 %.1fms  false-rate %.3f "
          "(%llu/%llu)  probes %llu\n",
          "", q.latency_p50_ms, q.latency_p99_ms, q.false_rate,
          static_cast<unsigned long long>(q.false_suspicions),
          static_cast<unsigned long long>(q.suspicions),
          static_cast<unsigned long long>(q.probes_sent));
      if (heartbeat_ms[h] == kDefaultHeartbeatMs) {
        const bool ok = row.detector.back().availability >=
                        0.95 * row.oracle.availability;
        if (!ok) gate_ok = false;
        std::printf(
            "  gate @ hb=%lldms: detector %.4f vs 0.95 x oracle %.4f -> %s\n",
            static_cast<long long>(kDefaultHeartbeatMs),
            row.detector.back().availability, row.oracle.availability,
            ok ? "ok" : "FAIL");
      }
    }
    rows.push_back(std::move(row));
  }

  obs::HistogramSummary lat;
  if constexpr (obs::kEnabled) {
    lat = obs::MetricsRegistry::global()
              .find_histogram("net.detector.latency_ns")
              .summary();
  }

  std::FILE* f = std::fopen("BENCH_chaos.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"mode\": \"%s\",\n  \"dataset\": \"%s\",\n"
                 "  \"queries\": %llu,\n  \"down_ms\": %lld,\n"
                 "  \"default_heartbeat_ms\": %lld,\n  \"sweep\": [\n",
                 smoke ? "smoke" : "full", setup.ds.name.c_str(),
                 static_cast<unsigned long long>(num_queries),
                 static_cast<long long>(kDownTime / kMillisecond),
                 static_cast<long long>(kDefaultHeartbeatMs));
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const Row& row = rows[r];
      std::fprintf(f, "    {\"churn_hz\": %.1f,\n      \"cells\": {\n",
                   row.churn_hz);
      json_cell(f, "oracle", row.oracle, ",");
      for (std::size_t h = 0; h < heartbeat_ms.size(); ++h) {
        const std::string key =
            "hb" + std::to_string(heartbeat_ms[h]) + "ms";
        json_cell(f, key.c_str(), row.detector[h],
                  h + 1 < heartbeat_ms.size() ? "," : "");
      }
      std::fprintf(f, "      },\n      \"detector_quality\": {\n");
      for (std::size_t h = 0; h < heartbeat_ms.size(); ++h) {
        const auto& q = row.quality[h];
        std::fprintf(
            f,
            "        \"hb%lldms\": {\"latency_p50_ms\": %.3f, "
            "\"latency_p99_ms\": %.3f, \"false_suspicion_rate\": %.4f, "
            "\"suspicions\": %llu, \"probes_sent\": %llu}%s\n",
            static_cast<long long>(heartbeat_ms[h]), q.latency_p50_ms,
            q.latency_p99_ms, q.false_rate,
            static_cast<unsigned long long>(q.suspicions),
            static_cast<unsigned long long>(q.probes_sent),
            h + 1 < heartbeat_ms.size() ? "," : "");
      }
      std::fprintf(f, "      }\n    }%s\n",
                   r + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"latency_histogram\": {\"count\": %llu, \"p50_ms\": "
                 "%.3f, \"p99_ms\": %.3f},\n",
                 static_cast<unsigned long long>(lat.count), lat.p50 / 1e6,
                 lat.p99 / 1e6);
    std::fprintf(f, "  \"availability_gate_ok\": %s\n}\n",
                 gate_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_chaos.json\n");
  }

  std::printf("acceptance: detector availability >= 0.95 x oracle at "
              "hb=%lldms for every churn rate -> %s\n",
              static_cast<long long>(kDefaultHeartbeatMs),
              gate_ok ? "PASS" : "FAIL");
  return gate_ok ? 0 : 1;
}
