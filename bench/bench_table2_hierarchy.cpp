// Table II — classification accuracy at hierarchy levels (end nodes /
// gateway / central node) vs centralized training, for the four
// hierarchical workloads on the 3-level TREE, with the measured training
// traffic per workload.
#include <cstdio>
#include <string>

#include "baseline/hd_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace edgehd;
  std::printf(
      "Table II: accuracy in hierarchy levels (%%), 3-level TREE, D=4000\n");
  bench::print_rule();
  std::printf("%-8s %12s %10s %9s %13s %12s\n", "dataset", "centralized",
              "end-nodes", "gateway", "central-node", "train-bytes");
  bench::print_rule();

  double end_sum = 0.0;
  double central_sum = 0.0;
  double centralized_sum = 0.0;
  std::size_t count = 0;
  for (const auto id : data::hierarchical_ids()) {
    auto setup = bench::hier_setup(id);
    const std::string prefix = "table2." + setup.ds.name + ".";

    baseline::HdModel centralized;
    centralized.fit(setup.ds);
    const double central_acc = centralized.test_accuracy(setup.ds);

    core::EdgeHdSystem system(setup.ds, setup.topo, setup.cfg);
    const auto comm = system.train();
    const std::size_t depth = system.topology().depth();
    const double l1 = system.accuracy_at_level(1);
    const double l2 = system.accuracy_at_level(2);
    const double l3 = system.accuracy_at_level(depth);

    end_sum += l1;
    central_sum += l3;
    centralized_sum += central_acc;
    ++count;

    bench::via_registry(prefix + "centralized_accuracy_pct",
                        bench::pct(central_acc));
    bench::via_registry(prefix + "gateway_accuracy_pct", bench::pct(l2));
    const double train_bytes = bench::via_registry(
        prefix + "train_bytes", static_cast<double>(comm.bytes));
    std::printf("%-8s %12.1f %10.1f %9.1f %13.1f %12.0f\n",
                setup.ds.name.c_str(), bench::pct(central_acc),
                bench::via_registry(prefix + "end_accuracy_pct",
                                    bench::pct(l1)),
                bench::pct(l2),
                bench::via_registry(prefix + "central_accuracy_pct",
                                    bench::pct(l3)),
                train_bytes);
  }
  bench::print_rule();
  const auto n = static_cast<double>(count);
  std::printf(
      "means: end-nodes %.1f%%, central %.1f%%, centralized %.1f%% "
      "(paper: 85.7%%, 94.4%%, 94.8%%)\n",
      bench::via_registry("table2.mean.end_accuracy_pct",
                          bench::pct(end_sum / n)),
      bench::via_registry("table2.mean.central_accuracy_pct",
                          bench::pct(central_sum / n)),
      bench::via_registry("table2.mean.centralized_accuracy_pct",
                          bench::pct(centralized_sum / n)));
  bench::dump_metrics("BENCH_table2_metrics.json");
  return 0;
}
