// Shared helpers for the experiment-reproduction benches.
//
// Every bench prints the rows/series of one table or figure from the paper's
// evaluation (Section VI); EXPERIMENTS.md records paper-vs-measured. The
// learning benches shrink the Table-I sample counts (the cost benches do
// not — they are analytic and use paper-scale counts), and scale the
// retraining batch size with scaled_batch_size() so the protocol stays
// comparable.
#pragma once

#include <cstdio>
#include <string>

#include "core/edgehd.hpp"
#include "data/dataset.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"

namespace edgehd::bench {

/// Default scaled sizes for the learning benches.
inline constexpr std::size_t kTrainCap = 2000;
inline constexpr std::size_t kTestCap = 600;
inline constexpr std::uint64_t kSeed = 99;

/// Generates a Table-I workload at bench scale.
inline data::Dataset bench_dataset(data::DatasetId id,
                                   std::size_t train_cap = kTrainCap,
                                   std::size_t test_cap = kTestCap) {
  data::GenOptions opt;
  opt.max_train = train_cap;
  opt.max_test = test_cap;
  return data::make_dataset(id, kSeed, opt);
}

/// Hierarchical deployment for a Table-I workload: the paper's 3-level TREE
/// for PAMAP2/APRI/PDP; for PECAN, houses (6 appliance readings each) are
/// the encoding leaves, grouped into streets under the central node, since
/// classification starts at the house level (Figure 8).
struct HierSetup {
  data::Dataset ds;
  net::Topology topo;
  core::SystemConfig cfg;
};

inline HierSetup hier_setup(data::DatasetId id,
                            std::size_t train_cap = kTrainCap,
                            std::size_t test_cap = kTestCap) {
  const auto& spec = data::spec(id);
  HierSetup s{bench_dataset(id, train_cap, test_cap),
              net::Topology::paper_tree(std::max<std::size_t>(1, spec.end_nodes)),
              {}};
  s.cfg.batch_size =
      core::scaled_batch_size(75, spec.paper_train, s.ds.train_size());
  if (id == data::DatasetId::kPecan) {
    s.ds.partitions.assign(52, 6);
    s.topo = net::Topology::uniform_depth(52, 3);
  }
  return s;
}

/// Feature partition matching hier_setup for the analytic cost model.
inline std::vector<std::size_t> hier_partitions(data::DatasetId id) {
  if (id == data::DatasetId::kPecan) {
    return std::vector<std::size_t>(52, 6);
  }
  const auto& spec = data::spec(id);
  const std::size_t nodes = std::max<std::size_t>(1, spec.end_nodes);
  std::vector<std::size_t> parts(nodes, spec.num_features / nodes);
  for (std::size_t i = 0; i < spec.num_features % nodes; ++i) ++parts[i];
  return parts;
}

/// Cost-model topology matching hier_setup.
inline net::Topology hier_topology(data::DatasetId id) {
  if (id == data::DatasetId::kPecan) {
    return net::Topology::uniform_depth(52, 3);
  }
  return net::Topology::paper_tree(data::spec(id).end_nodes);
}

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline double pct(double v) { return 100.0 * v; }

/// Routes a figure value through the metrics registry: records it as a gauge
/// under `name` and returns the registry's copy, so every number a bench
/// prints is the registry's number (one source of truth for tests, benches
/// and regression gates). With observability compiled out the value passes
/// through unchanged — printed output is identical either way.
inline double via_registry(const std::string& name, double value) {
  if constexpr (!obs::kEnabled) return value;
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge(name).set(value);
  return reg.gauge_value(name);
}

/// Writes the full registry state (volatile metrics included) to `path` as
/// one JSON document, and notes the dump on stdout.
inline void dump_metrics(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  const std::string json = obs::MetricsRegistry::global().to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("metrics dump: %s\n", path);
}

}  // namespace edgehd::bench
