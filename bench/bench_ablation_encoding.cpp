// Ablation — encoding design choices (Section VI-B / DESIGN.md #2, #3):
//  * encoder family: linear-level vs dense RBF vs sparse RBF (80%)
//  * hypervector dimensionality D sweep
//  * sparsity sweep at D = 4000
// Run on the two mid-size workloads (PAMAP2, UCIHAR).
#include <cstdio>

#include "baseline/hd_model.hpp"
#include "bench_util.hpp"
#include "hdc/classifier.hpp"

namespace {

using namespace edgehd;

double eval_encoder(const data::Dataset& ds, const hdc::Encoder& enc) {
  hdc::HDClassifier clf(ds.num_classes, enc.dim());
  std::vector<hdc::BipolarHV> train(ds.train_size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    train[i] = enc.encode(ds.train_x[i]);
    clf.add_sample(ds.train_y[i], train[i]);
  }
  clf.retrain(train, ds.train_y);
  std::vector<hdc::BipolarHV> test(ds.test_size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    test[i] = enc.encode(ds.test_x[i]);
  }
  return clf.accuracy(test, ds.test_y);
}

}  // namespace

int main() {
  for (const auto id : {data::DatasetId::kPamap2, data::DatasetId::kUciHar}) {
    const auto ds = bench::bench_dataset(id);
    std::printf("Ablation [%s]\n", ds.name.c_str());
    bench::print_rule(66);

    std::printf("encoder family at D=4000:\n");
    for (const auto& [kind, name] :
         {std::pair{hdc::EncoderKind::kLinearLevel, "linear-level"},
          std::pair{hdc::EncoderKind::kRbfDense, "dense-RBF"},
          std::pair{hdc::EncoderKind::kRbfSparse, "sparse-RBF-80%"}}) {
      const auto enc = hdc::make_encoder(kind, ds.num_features, 4000, 5);
      std::printf("  %-16s %.1f%%\n", name, bench::pct(eval_encoder(ds, *enc)));
    }

    std::printf("dimensionality sweep (sparse RBF):\n");
    for (const std::size_t d : {500u, 1000u, 2000u, 4000u, 8000u}) {
      hdc::SparseRbfEncoder enc(ds.num_features, d, 5);
      std::printf("  D=%-6zu %.1f%%\n", static_cast<std::size_t>(d),
                  bench::pct(eval_encoder(ds, enc)));
    }

    std::printf("sparsity sweep (D=4000):\n");
    for (const float s : {0.0F, 0.5F, 0.8F, 0.9F, 0.95F}) {
      hdc::SparseRbfEncoder enc(ds.num_features, 4000, 5, s);
      std::printf("  s=%-5.2f  %.1f%%  (%zu MACs/dim)\n", s,
                  bench::pct(eval_encoder(ds, enc)), enc.macs_per_dim());
    }
    bench::print_rule(66);
  }
  return 0;
}
