// Kernel-layer throughput bench (the PR's acceptance bar): times the packed
// popcount path against the int8/int32 scalar baseline it replaced, the
// blocked GEMV/GEMM encoders against the naive row-major loop, and the
// scalar vs SIMD backends against each other. Writes BENCH_kernels.json and
// prints the >= 2x batch-predict check (packed popcount vs int8 scalar at
// D = 4096, single-threaded).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/kernels/kernels.hpp"
#include "hdc/kernels/packed.hpp"
#include "hdc/random.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace edgehd;
using namespace edgehd::hdc;
namespace kernels = edgehd::hdc::kernels;

constexpr std::size_t kDim = 4096;
constexpr std::size_t kClasses = 10;
constexpr std::size_t kQueries = 512;
constexpr std::size_t kFeatures = 64;
constexpr std::size_t kBatch = 256;

/// Runs `fn` until ~0.4 s has elapsed (minimum 3 iterations) and returns
/// seconds per iteration.
template <typename Fn>
double time_per_iter(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up
  std::size_t iters = 0;
  const auto begin = clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.4 || iters < 3) {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(clock::now() - begin).count();
  }
  return elapsed / static_cast<double>(iters);
}

volatile std::int64_t g_sink_i64 = 0;
volatile double g_sink_f64 = 0.0;

struct Result {
  std::string name;
  double baseline_sps = 0.0;  ///< samples (or ops) per second, old path
  double packed_sps = 0.0;    ///< same work on the kernel path
  double speedup = 0.0;
};

/// The classifier predict loop exactly as it existed before the kernel
/// layer: per-query, per-class cosine(int8, int32) with the norm recomputed
/// every call.
std::vector<std::size_t> predict_batch_int8_scalar(
    const HDClassifier& clf, const std::vector<BipolarHV>& queries) {
  std::vector<std::size_t> out(queries.size());
  std::vector<double> sims(clf.num_classes());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    for (std::size_t c = 0; c < clf.num_classes(); ++c) {
      sims[c] = cosine(queries[i], clf.class_accumulator(c));
    }
    out[i] = static_cast<std::size_t>(
        std::max_element(sims.begin(), sims.end()) - sims.begin());
  }
  return out;
}

Result bench_batch_predict() {
  Rng rng(1);
  HDClassifier clf(kClasses, kDim);
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (int i = 0; i < 64; ++i) clf.add_sample(c, rng.sign_vector(kDim));
  }
  std::vector<BipolarHV> queries(kQueries);
  for (auto& q : queries) q = rng.sign_vector(kDim);
  std::vector<kernels::PackedQuery> packed(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    packed[i] = kernels::pack_query(queries[i]);
  }
  runtime::ThreadPool pool(1);
  clf.warm_cache();

  const double t_base = time_per_iter([&] {
    g_sink_i64 = static_cast<std::int64_t>(
        predict_batch_int8_scalar(clf, queries).back());
  });
  const double t_packed = time_per_iter([&] {
    g_sink_i64 = static_cast<std::int64_t>(clf.predict_batch(packed, pool).back().label);
  });

  Result r{"batch_predict_d4096_k10_1thread",
           static_cast<double>(kQueries) / t_base,
           static_cast<double>(kQueries) / t_packed, 0.0};
  r.speedup = r.packed_sps / r.baseline_sps;
  return r;
}

Result bench_packed_dot() {
  Rng rng(2);
  const auto a = rng.sign_vector(kDim);
  const auto b = rng.sign_vector(kDim);
  const auto pa = kernels::pack_hv(a);
  const auto pb = kernels::pack_hv(b);
  constexpr int kReps = 512;
  const double t_base = time_per_iter([&] {
    std::int64_t s = 0;
    for (int i = 0; i < kReps; ++i) {
      s += dot(std::span<const std::int8_t>(a), std::span<const std::int8_t>(b));
    }
    g_sink_i64 = s;
  });
  const double t_packed = time_per_iter([&] {
    std::int64_t s = 0;
    for (int i = 0; i < kReps; ++i) s += kernels::packed_dot(pa, pb);
    g_sink_i64 = s;
  });
  Result r{"packed_dot_d4096", kReps / t_base, kReps / t_packed, 0.0};
  r.speedup = r.packed_sps / r.baseline_sps;
  return r;
}

/// Dense encode: the historical row-major naive loop vs the blocked GEMV
/// kernel (whatever backend is active).
Result bench_gemv_encode() {
  Rng rng(3);
  const RbfEncoder enc(kFeatures, kDim, 7);
  const auto x = rng.gaussian_vector(kFeatures);
  // Naive baseline: same draws, row-major storage, scalar loop.
  Rng w_rng(derive_seed(7, 0));
  std::vector<float> row_major(kDim * kFeatures);
  const float scale = 1.0F / (2.0F * std::sqrt(static_cast<float>(kFeatures)));
  for (auto& w : row_major) w = w_rng.gaussian() * scale;

  Rng b_rng(derive_seed(7, 1));
  std::vector<float> bias(kDim);
  for (auto& b : bias) b = b_rng.uniform(0.0F, 6.2831853F);

  // Full historical encode: row-major projection loop + cos*sin + sign.
  const double t_base = time_per_iter([&] {
    std::int64_t sink = 0;
    for (std::size_t i = 0; i < kDim; ++i) {
      const float* row = row_major.data() + i * kFeatures;
      float proj = 0.0F;
      for (std::size_t j = 0; j < kFeatures; ++j) proj += row[j] * x[j];
      const float h = std::cos(proj + bias[i]) * std::sin(proj);
      sink += h < 0.0F ? -1 : 1;
    }
    g_sink_i64 = sink;
  });
  const double t_kernel = time_per_iter([&] {
    g_sink_i64 = enc.encode(x).back();
  });
  // Per-sample rates (the kernel side also pays cos/sin + sign).
  Result r{"dense_encode_d4096_n64", 1.0 / t_base, 1.0 / t_kernel, 0.0};
  r.speedup = r.packed_sps / r.baseline_sps;
  return r;
}

/// encode_batch GEMM vs per-sample GEMV encode, single-threaded.
Result bench_gemm_encode_batch() {
  Rng rng(4);
  const RbfEncoder enc(kFeatures, kDim, 7);
  std::vector<std::vector<float>> xs(kBatch);
  for (auto& x : xs) x = rng.gaussian_vector(kFeatures);
  runtime::ThreadPool pool(1);
  const double t_per_sample = time_per_iter([&] {
    std::int64_t s = 0;
    for (const auto& x : xs) s += enc.encode(x).back();
    g_sink_i64 = s;
  });
  const double t_batch = time_per_iter([&] {
    g_sink_i64 = enc.encode_batch(xs, pool).back().back();
  });
  Result r{"encode_batch_gemm_d4096_n64_b256",
           static_cast<double>(kBatch) / t_per_sample,
           static_cast<double>(kBatch) / t_batch, 0.0};
  r.speedup = r.packed_sps / r.baseline_sps;
  return r;
}

/// Scalar vs SIMD backend on the same packed predict workload.
Result bench_simd_vs_scalar() {
  Rng rng(5);
  HDClassifier clf(kClasses, kDim);
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (int i = 0; i < 64; ++i) clf.add_sample(c, rng.sign_vector(kDim));
  }
  std::vector<kernels::PackedQuery> packed(kQueries);
  for (auto& q : packed) q = kernels::pack_query(rng.sign_vector(kDim));
  runtime::ThreadPool pool(1);
  clf.warm_cache();

  kernels::force_backend(kernels::Backend::kScalar);
  const double t_scalar = time_per_iter([&] {
    g_sink_i64 = static_cast<std::int64_t>(clf.predict_batch(packed, pool).back().label);
  });
  const bool have_simd = kernels::force_backend(kernels::Backend::kSimd);
  const double t_simd = have_simd ? time_per_iter([&] {
    g_sink_i64 = static_cast<std::int64_t>(clf.predict_batch(packed, pool).back().label);
  })
                                  : t_scalar;
  Result r{"predict_scalar_vs_simd_backend",
           static_cast<double>(kQueries) / t_scalar,
           static_cast<double>(kQueries) / t_simd, 0.0};
  r.speedup = r.packed_sps / r.baseline_sps;
  return r;
}

}  // namespace

int main() {
  std::printf("bench_kernels: backend=%s  D=%zu K=%zu queries=%zu\n",
              kernels::backend_name(), kDim, kClasses, kQueries);

  std::vector<Result> results;
  results.push_back(bench_packed_dot());
  results.push_back(bench_gemv_encode());
  results.push_back(bench_gemm_encode_batch());
  results.push_back(bench_batch_predict());
  results.push_back(bench_simd_vs_scalar());  // leaves SIMD (or scalar) active

  for (const auto& r : results) {
    std::printf("  %-36s  baseline %12.0f /s   kernel %12.0f /s   speedup %5.2fx\n",
                r.name.c_str(), r.baseline_sps, r.packed_sps, r.speedup);
  }

  const auto& predict = results[3];
  const bool pass = predict.speedup >= 2.0;
  std::printf("acceptance: batch predict packed-vs-int8 speedup %.2fx (>= 2x): %s\n",
              predict.speedup, pass ? "PASS" : "FAIL");

  std::FILE* f = std::fopen("BENCH_kernels.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"backend\": \"%s\",\n  \"dim\": %zu,\n",
                 kernels::backend_name(), kDim);
    std::fprintf(f, "  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"baseline_per_sec\": %.1f, "
                   "\"kernel_per_sec\": %.1f, \"speedup\": %.3f}%s\n",
                   r.name.c_str(), r.baseline_sps, r.packed_sps, r.speedup,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"batch_predict_speedup_ok\": %s\n}\n",
                 pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_kernels.json\n");
  }
  return pass ? 0 : 1;
}
