// Deterministic data-parallel loops over a ThreadPool.
//
// The invariant this layer guarantees: the chunk decomposition of an index
// range depends only on (n, grain) — NEVER on the worker count — and
// `parallel_reduce` combines chunk partials serially in ascending chunk
// order. Any computation expressed through these primitives therefore
// produces bit-identical results for 1, 2, or 64 workers (including
// floating-point reductions, whose association order is fixed by the
// chunking), which is what lets EDGEHD_THREADS be a pure performance knob.
//
// The calling thread participates in the loop: chunks are claimed from a
// shared atomic cursor by the caller and by pool workers alike, so a
// parallel_for over a 1-worker pool degenerates to (at worst) the caller
// running every chunk itself — no deadlock, no idle caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "thread_pool.hpp"

namespace edgehd::runtime {

/// Chunk grain selection when the caller passes grain = 0: aims for enough
/// chunks to load-balance (64-ish) without degenerating into per-element
/// tasks. Depends only on n, by construction.
std::size_t default_grain(std::size_t n);

/// Number of chunks a range of `n` elements splits into at `grain`.
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  return grain == 0 ? 0 : (n + grain - 1) / grain;
}

namespace detail {

/// Runs `chunk_fn(chunk_index)` for every chunk index in [0, num_chunks),
/// distributing chunks over the pool's workers plus the calling thread.
/// Blocks until every chunk has finished.
template <typename ChunkFn>
void run_chunked(ThreadPool& pool, std::size_t num_chunks, ChunkFn& chunk_fn) {
  if (num_chunks == 0) return;
  if (num_chunks == 1) {
    chunk_fn(0);
    return;
  }

  struct Context {
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;
  };
  auto ctx = std::make_shared<Context>();

  // chunk_fn outlives the call because we block below until every chunk is
  // done; the shared Context outlives straggler tasks via the shared_ptr.
  auto drain = [ctx, &chunk_fn, num_chunks] {
    std::size_t ran = 0;
    for (std::size_t c = ctx->next.fetch_add(1, std::memory_order_relaxed);
         c < num_chunks;
         c = ctx->next.fetch_add(1, std::memory_order_relaxed)) {
      chunk_fn(c);
      ++ran;
    }
    if (ran != 0) {
      std::lock_guard<std::mutex> lk(ctx->mutex);
      ctx->done += ran;
      if (ctx->done == num_chunks) ctx->done_cv.notify_all();
    }
  };

  const std::size_t helpers =
      num_chunks - 1 < pool.size() ? num_chunks - 1 : pool.size();
  for (std::size_t i = 0; i < helpers; ++i) pool.submit(drain);
  drain();  // caller participates

  std::unique_lock<std::mutex> lk(ctx->mutex);
  ctx->done_cv.wait(lk, [&] { return ctx->done == num_chunks; });
}

}  // namespace detail

/// Applies `fn(i)` for every i in [0, n), fanned over the pool. `fn` must be
/// safe to call concurrently for distinct i (writes to disjoint slots are the
/// intended pattern). Blocks until complete.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn,
                  std::size_t grain = 0) {
  if (n == 0) return;
  if (grain == 0) grain = default_grain(n);
  const std::size_t chunks = chunk_count(n, grain);
  auto chunk_fn = [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    for (std::size_t i = begin; i < end; ++i) fn(i);
  };
  detail::run_chunked(pool, chunks, chunk_fn);
}

/// Applies `fn(begin, end)` for every chunk [begin, end) of [0, n), fanned
/// over the pool. Chunk boundaries depend only on (n, grain).
template <typename Fn>
void parallel_for_chunks(ThreadPool& pool, std::size_t n, Fn&& fn,
                         std::size_t grain = 0) {
  if (n == 0) return;
  if (grain == 0) grain = default_grain(n);
  const std::size_t chunks = chunk_count(n, grain);
  auto chunk_fn = [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    fn(begin, end);
  };
  detail::run_chunked(pool, chunks, chunk_fn);
}

/// Deterministic chunked reduction: `map(begin, end)` produces a partial T
/// per chunk (computed in parallel), and the partials are folded serially in
/// ascending chunk order with `combine(acc, partial)`. The result is
/// bit-identical for any worker count because both the chunk boundaries and
/// the combination order are worker-independent.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(ThreadPool& pool, std::size_t n, T identity, MapFn&& map,
                  CombineFn&& combine, std::size_t grain = 0) {
  if (n == 0) return identity;
  if (grain == 0) grain = default_grain(n);
  const std::size_t chunks = chunk_count(n, grain);
  std::vector<T> partials(chunks, identity);
  auto chunk_fn = [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    partials[c] = map(begin, end);
  };
  detail::run_chunked(pool, chunks, chunk_fn);
  T acc = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace edgehd::runtime
