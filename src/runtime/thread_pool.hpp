// Fixed-size worker pool with per-worker task queues and work stealing.
//
// The pool is the substrate of the edgehd runtime layer: `parallel_for` /
// `parallel_reduce` (parallel.hpp) split index ranges into chunks whose
// boundaries depend only on the range — never on the worker count — and
// `BatchExecutor` (batch_executor.hpp) fans sample batches over it. Tasks are
// pushed round-robin onto per-worker deques; an idle worker drains its own
// queue front-first and steals from the back of its siblings' queues when
// empty, so a burst of uneven chunk costs load-balances without a single hot
// global lock.
//
// Worker-count resolution (ThreadPool::default_worker_count):
//   1. the EDGEHD_THREADS environment variable, when set to a positive int;
//   2. std::thread::hardware_concurrency(), floored at 1.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace edgehd::runtime {

/// Fixed-size thread pool. Construction spawns the workers; destruction
/// drains nothing — outstanding tasks finish, queued tasks are still run
/// before the workers exit.
class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// @param num_workers  worker thread count; 0 picks
  ///                     default_worker_count().
  explicit ThreadPool(std::size_t num_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; exceptions escaping a task
  /// terminate the process (there is nowhere to deliver them).
  void submit(Task task);

  /// EDGEHD_THREADS env override if positive, else hardware concurrency,
  /// floored at 1 and capped at kMaxWorkers.
  static std::size_t default_worker_count();

  /// Process-wide shared pool, lazily built with default_worker_count().
  static ThreadPool& global();

  /// Sanity cap on worker counts (absurd EDGEHD_THREADS values clamp here).
  static constexpr std::size_t kMaxWorkers = 256;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, Task& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Sleep/wake machinery: pending_ counts queued-but-unclaimed tasks and is
  // only mutated under wake_mutex_ so a submit between a worker's empty
  // check and its wait cannot be missed.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::size_t next_queue_ = 0;  // round-robin submit cursor (under wake_mutex_)
};

}  // namespace edgehd::runtime
