// BatchExecutor: fans a span/range of samples across a ThreadPool.
//
// A thin, copy-cheap facade over parallel.hpp for the "apply f to every
// sample, collect results in order" pattern that dominates the HD pipeline
// (batch encoding, batch inference, misclassification scans). Results land
// in their input slots, so the output order is the input order regardless of
// which worker computed what — the batch analogue of the determinism
// contract in parallel.hpp.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "parallel.hpp"
#include "thread_pool.hpp"

namespace edgehd::runtime {

class BatchExecutor {
 public:
  /// @param pool   pool to fan work over; must outlive the executor.
  /// @param grain  samples per chunk; 0 = default_grain(n) per call.
  explicit BatchExecutor(ThreadPool& pool, std::size_t grain = 0)
      : pool_(&pool), grain_(grain) {}

  ThreadPool& pool() const noexcept { return *pool_; }
  std::size_t workers() const noexcept { return pool_->size(); }

  /// Runs `fn(i)` for every i in [0, n). Blocks until done.
  template <typename Fn>
  void for_each(std::size_t n, Fn&& fn) const {
    parallel_for(*pool_, n, std::forward<Fn>(fn), grain_);
  }

  /// Runs `fn(begin, end)` for every chunk of [0, n). Chunk boundaries
  /// depend only on (n, grain), so chunk-granular kernels (e.g. the batched
  /// GEMM encoders) stay bit-identical across worker counts.
  template <typename Fn>
  void for_each_chunk(std::size_t n, Fn&& fn) const {
    parallel_for_chunks(*pool_, n, std::forward<Fn>(fn), grain_);
  }

  /// Computes `fn(i)` for every i and returns the results in index order.
  /// The result type must be default-constructible (slots are pre-sized).
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) const
      -> std::vector<decltype(fn(std::size_t{0}))> {
    std::vector<decltype(fn(std::size_t{0}))> out(n);
    parallel_for(
        *pool_, n, [&](std::size_t i) { out[i] = fn(i); }, grain_);
    return out;
  }

  /// Counts indices in [0, n) for which `pred(i)` holds. Deterministic by
  /// construction (integer reduction in fixed chunk order).
  template <typename Pred>
  std::size_t count_if(std::size_t n, Pred&& pred) const {
    return parallel_reduce(
        *pool_, n, std::size_t{0},
        [&](std::size_t begin, std::size_t end) {
          std::size_t c = 0;
          for (std::size_t i = begin; i < end; ++i) {
            if (pred(i)) ++c;
          }
          return c;
        },
        [](std::size_t a, std::size_t b) { return a + b; }, grain_);
  }

 private:
  ThreadPool* pool_;
  std::size_t grain_;
};

}  // namespace edgehd::runtime
