#include "thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"

namespace edgehd::runtime {

namespace {

struct PoolObs {
  /// Submission count is a pure function of (work size, grain, worker
  /// count) — stable. Steals and instantaneous queue depth depend on
  /// scheduling — volatile, excluded from the determinism-suite JSON.
  obs::Counter tasks;
  obs::Counter steals;
  obs::Gauge queue_depth;

  static const PoolObs& get() {
    static const PoolObs o = [] {
      PoolObs p;
      if constexpr (obs::kEnabled) {
        auto& reg = obs::MetricsRegistry::global();
        p.tasks = reg.counter("runtime.pool.tasks");
        p.steals = reg.counter("runtime.pool.steals", /*stable=*/false);
        p.queue_depth = reg.gauge("runtime.pool.queue_depth",
                                  /*stable=*/false);
      }
      return p;
    }();
    return o;
  }
};

}  // namespace

std::size_t ThreadPool::default_worker_count() {
  if (const char* env = std::getenv("EDGEHD_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return std::min<std::size_t>(static_cast<std::size_t>(parsed),
                                   kMaxWorkers);
    }
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, kMaxWorkers);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_worker_count());
  return pool;
}

ThreadPool::ThreadPool(std::size_t num_workers) {
  // Touch the registry before spawning workers: the process-wide registry is
  // then constructed first and destroyed last, so worker threads (and the
  // global pool's exit-time teardown) can never outlive their shards.
  PoolObs::get();
  const std::size_t n =
      num_workers == 0 ? default_worker_count()
                       : std::min(num_workers, kMaxWorkers);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(Task task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lk(wake_mutex_);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
    PoolObs::get().queue_depth.set(static_cast<double>(pending_));
  }
  PoolObs::get().tasks.inc();
  {
    std::lock_guard<std::mutex> lk(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, Task& out) {
  // Own queue first (front: submission order), then steal from siblings
  // (back: the oldest work they have not reached).
  {
    WorkerQueue& q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    WorkerQueue& q = *queues_[(self + off) % queues_.size()];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      PoolObs::get().steals.inc();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(wake_mutex_);
      wake_cv_.wait(lk, [this] { return stop_ || pending_ > 0; });
      if (pending_ == 0) {
        // stop_ set and nothing left to run.
        return;
      }
      --pending_;
      PoolObs::get().queue_depth.set(static_cast<double>(pending_));
    }
    // A claimed task is guaranteed to exist in some queue; the pop below can
    // only race other claimants, never find the pool empty.
    while (!try_pop(self, task)) {
      std::this_thread::yield();
    }
    task();
  }
}

}  // namespace edgehd::runtime
