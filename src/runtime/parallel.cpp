#include "parallel.hpp"

namespace edgehd::runtime {

std::size_t default_grain(std::size_t n) {
  // Target ~64 chunks: plenty of stealing slack for uneven chunk costs, few
  // enough that per-chunk bookkeeping is noise. Floor the grain at 1 and the
  // chunk count implicitly at 1. Worker count deliberately plays no part —
  // see the determinism contract in the header.
  constexpr std::size_t kTargetChunks = 64;
  const std::size_t grain = (n + kTargetChunks - 1) / kTargetChunks;
  return grain == 0 ? 1 : grain;
}

}  // namespace edgehd::runtime
