#include "model_select.hpp"

#include <cmath>
#include <utility>
#include <vector>

namespace edgehd::baseline {

namespace {

/// Carves the last 20% of the train split off as validation data.
std::pair<data::Dataset, data::Dataset> split_for_validation(
    const data::Dataset& ds) {
  data::Dataset fit = ds;
  data::Dataset val = ds;
  const std::size_t cut = ds.train_size() * 4 / 5;
  fit.train_x.assign(ds.train_x.begin(), ds.train_x.begin() + cut);
  fit.train_y.assign(ds.train_y.begin(), ds.train_y.begin() + cut);
  // Validation samples become the "test" split of the probe dataset.
  val.test_x.assign(ds.train_x.begin() + cut, ds.train_x.end());
  val.test_y.assign(ds.train_y.begin() + cut, ds.train_y.end());
  val.train_x = fit.train_x;
  val.train_y = fit.train_y;
  return {std::move(fit), std::move(val)};
}

template <typename ModelT, typename ConfigT>
ModelT select(const data::Dataset& ds, const std::vector<ConfigT>& grid) {
  const auto [fit_ds, val_ds] = split_for_validation(ds);
  double best_acc = -1.0;
  ConfigT best_cfg = grid.front();
  for (const ConfigT& cfg : grid) {
    ModelT candidate(cfg);
    candidate.fit(val_ds);
    const double acc = candidate.test_accuracy(val_ds);
    if (acc > best_acc) {
      best_acc = acc;
      best_cfg = cfg;
    }
  }
  ModelT model(best_cfg);
  model.fit(ds);
  return model;
}

}  // namespace

Svm best_svm(const data::Dataset& ds, std::uint64_t seed) {
  const float base = std::sqrt(static_cast<float>(ds.num_features));
  std::vector<SvmConfig> grid;
  for (const float alpha : {0.5F, 0.75F, 1.0F, 1.5F}) {
    SvmConfig cfg;
    cfg.seed = seed;
    cfg.rff_dim = 2048;
    cfg.length_scale = alpha * base;
    grid.push_back(cfg);
  }
  return select<Svm>(ds, grid);
}

Mlp best_mlp(const data::Dataset& ds, std::uint64_t seed) {
  std::vector<MlpConfig> grid;
  for (const float lr : {0.01F, 0.02F}) {
    MlpConfig cfg;
    cfg.seed = seed;
    cfg.learning_rate = lr;
    grid.push_back(cfg);
  }
  return select<Mlp>(ds, grid);
}

AdaBoost best_adaboost(const data::Dataset& ds, std::uint64_t seed) {
  std::vector<AdaBoostConfig> grid;
  for (const std::size_t rounds : {std::size_t{80}, std::size_t{160}}) {
    AdaBoostConfig cfg;
    cfg.seed = seed;
    cfg.rounds = rounds;
    grid.push_back(cfg);
  }
  return select<AdaBoost>(ds, grid);
}

}  // namespace edgehd::baseline
