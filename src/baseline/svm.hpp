// Kernel SVM comparator: random-Fourier-feature map + one-vs-rest linear
// hinge loss trained with SGD.
//
// The paper's SVM baseline is scikit-learn's RBF SVM. Exact SMO does not
// scale to the generated workloads, so we use the standard RFF
// approximation (Rahimi & Recht — the same construction the paper's own
// encoder builds on): phi(x) = sqrt(2/D) cos(Bx + b) makes the linear SVM in
// phi-space approximate the RBF-kernel SVM. One-vs-rest with L2-regularized
// hinge loss, averaged-SGD style training.
#pragma once

#include <cstdint>
#include <memory>

#include "hdc/encoder.hpp"
#include "model.hpp"

namespace edgehd::baseline {

struct SvmConfig {
  std::size_t rff_dim = 1024;   ///< random-feature dimensionality
  float length_scale = 0.0F;    ///< RBF length scale; 0 = auto (sqrt(n))
  std::size_t epochs = 20;
  float learning_rate = 0.1F;
  float l2 = 1e-4F;
  std::uint64_t seed = 2;
};

class Svm final : public Model {
 public:
  explicit Svm(SvmConfig config = {});

  void fit(const data::Dataset& ds) override;
  std::size_t predict(std::span<const float> x) const override;

  /// One-vs-rest decision values for one input.
  std::vector<float> decision_values(std::span<const float> x) const;

 private:
  SvmConfig config_;
  std::unique_ptr<hdc::RbfEncoder> rff_;   // cos-form feature map
  std::size_t num_classes_ = 0;
  std::vector<float> w_;  // row-major num_classes x rff_dim
  std::vector<float> b_;
};

}  // namespace edgehd::baseline
