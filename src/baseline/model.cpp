#include "model.hpp"

#include <cassert>

namespace edgehd::baseline {

double Model::accuracy(std::span<const std::vector<float>> xs,
                       std::span<const std::size_t> ys) const {
  assert(xs.size() == ys.size());
  if (xs.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (predict(xs[i]) == ys[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(xs.size());
}

double Model::test_accuracy(const data::Dataset& ds) const {
  return accuracy(ds.test_x, ds.test_y);
}

}  // namespace edgehd::baseline
