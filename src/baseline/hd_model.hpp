// Model-interface adapter wrapping an HD encoder + class-hypervector
// classifier, so HD variants slot into the same comparison harness as the
// DNN/SVM/AdaBoost baselines (Figure 7).
#pragma once

#include <cstdint>
#include <memory>

#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "model.hpp"

namespace edgehd::baseline {

struct HdModelConfig {
  hdc::EncoderKind encoder = hdc::EncoderKind::kRbfSparse;
  std::size_t dim = 4000;          ///< hypervector dimensionality D
  std::size_t retrain_epochs = 20;
  std::uint64_t seed = 4;
};

/// Centralized HD classifier: encode → bundle per class → retrain → nearest
/// class hypervector. With kLinearLevel encoding this is the Figure 7
/// "baseline HD" [36]; with kRbfDense/kRbfSparse it is centralized EdgeHD.
class HdModel final : public Model {
 public:
  explicit HdModel(HdModelConfig config = {});

  void fit(const data::Dataset& ds) override;
  std::size_t predict(std::span<const float> x) const override;

  /// Prediction with confidence (exposed for threshold studies).
  hdc::Prediction predict_full(std::span<const float> x) const;

  const hdc::Encoder& encoder() const;
  const hdc::HDClassifier& classifier() const;

 private:
  HdModelConfig config_;
  std::unique_ptr<hdc::Encoder> encoder_;
  std::unique_ptr<hdc::HDClassifier> classifier_;
};

}  // namespace edgehd::baseline
