#include "hd_model.hpp"

#include <stdexcept>

#include "hdc/random.hpp"

namespace edgehd::baseline {

HdModel::HdModel(HdModelConfig config) : config_(std::move(config)) {
  if (config_.dim == 0) {
    throw std::invalid_argument("HdModel: dim must be positive");
  }
}

void HdModel::fit(const data::Dataset& ds) {
  if (ds.train_x.empty()) {
    throw std::invalid_argument("HdModel::fit: empty training split");
  }
  encoder_ = hdc::make_encoder(config_.encoder, ds.num_features, config_.dim,
                               hdc::derive_seed(config_.seed, 0));
  hdc::ClassifierConfig cc;
  cc.retrain_epochs = config_.retrain_epochs;
  classifier_ =
      std::make_unique<hdc::HDClassifier>(ds.num_classes, config_.dim, cc);

  std::vector<hdc::BipolarHV> encoded;
  encoded.reserve(ds.train_x.size());
  for (const auto& x : ds.train_x) encoded.push_back(encoder_->encode(x));
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    classifier_->add_sample(ds.train_y[i], encoded[i]);
  }
  classifier_->retrain(encoded, ds.train_y);
}

std::size_t HdModel::predict(std::span<const float> x) const {
  return predict_full(x).label;
}

hdc::Prediction HdModel::predict_full(std::span<const float> x) const {
  if (encoder_ == nullptr) {
    throw std::logic_error("HdModel::predict: model not fitted");
  }
  return classifier_->predict(encoder_->encode(x));
}

const hdc::Encoder& HdModel::encoder() const {
  if (encoder_ == nullptr) throw std::logic_error("HdModel: not fitted");
  return *encoder_;
}

const hdc::HDClassifier& HdModel::classifier() const {
  if (classifier_ == nullptr) throw std::logic_error("HdModel: not fitted");
  return *classifier_;
}

}  // namespace edgehd::baseline
