// Hyper-parameter selection for the comparator models.
//
// The paper tunes every baseline with "the common practice of grid search"
// (Section VI-B). These helpers reproduce that: candidates are fitted on an
// internal 80/20 train/validation split, the best validated configuration is
// refitted on the full training split.
#pragma once

#include <cstdint>

#include "adaboost.hpp"
#include "mlp.hpp"
#include "svm.hpp"

namespace edgehd::baseline {

/// Grid-searched RBF-kernel SVM: sweeps the kernel length scale (the
/// decisive hyper-parameter for RFF SVMs) over {0.5, 0.75, 1, 1.5}*sqrt(n).
Svm best_svm(const data::Dataset& ds, std::uint64_t seed = 2);

/// Grid-searched MLP: sweeps learning rate {0.01, 0.02} and hidden layout
/// {128-64, 256-128}.
Mlp best_mlp(const data::Dataset& ds, std::uint64_t seed = 1);

/// Grid-searched AdaBoost: sweeps rounds {80, 160}.
AdaBoost best_adaboost(const data::Dataset& ds, std::uint64_t seed = 3);

}  // namespace edgehd::baseline
