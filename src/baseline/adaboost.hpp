// Multi-class AdaBoost (SAMME) over decision stumps — the "AdaBoost"
// comparator of Figure 7.
//
// Each round fits a one-split decision stump (feature, threshold, one class
// on each side) to the weighted training set, then reweights samples by the
// SAMME rule. Stump search samples a random feature subset per round and
// quantile-spaced candidate thresholds, which keeps fitting sub-quadratic on
// the wide workloads (MNIST-like n = 784).
#pragma once

#include <cstdint>
#include <vector>

#include "model.hpp"

namespace edgehd::baseline {

struct AdaBoostConfig {
  std::size_t rounds = 80;
  std::size_t features_per_round = 0;  ///< 0 = ceil(sqrt(n))
  std::size_t threshold_candidates = 10;
  std::uint64_t seed = 3;
};

class AdaBoost final : public Model {
 public:
  explicit AdaBoost(AdaBoostConfig config = {});

  void fit(const data::Dataset& ds) override;
  std::size_t predict(std::span<const float> x) const override;

  /// Number of stumps actually kept (early-stops if a round degenerates).
  std::size_t num_stumps() const noexcept { return stumps_.size(); }

 private:
  struct Stump {
    std::size_t feature = 0;
    float threshold = 0.0F;
    std::size_t left_class = 0;   ///< predicted when x[feature] <= threshold
    std::size_t right_class = 0;  ///< predicted when x[feature] >  threshold
    float alpha = 0.0F;           ///< SAMME weight
  };

  AdaBoostConfig config_;
  std::size_t num_classes_ = 0;
  std::vector<Stump> stumps_;
};

}  // namespace edgehd::baseline
