#include "mlp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hdc/random.hpp"

namespace edgehd::baseline {

using hdc::Rng;
using hdc::derive_seed;

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {
  if (config_.epochs == 0 || config_.batch_size == 0) {
    throw std::invalid_argument("Mlp: epochs and batch_size must be positive");
  }
}

void Mlp::build(std::size_t in_dim, std::size_t out_dim) {
  layers_.clear();
  std::vector<std::size_t> sizes;
  sizes.push_back(in_dim);
  sizes.insert(sizes.end(), config_.hidden.begin(), config_.hidden.end());
  sizes.push_back(out_dim);

  Rng rng(derive_seed(config_.seed, 0));
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    layer.in = sizes[l];
    layer.out = sizes[l + 1];
    layer.w.resize(layer.out * layer.in);
    const float he = std::sqrt(2.0F / static_cast<float>(layer.in));
    for (auto& w : layer.w) w = rng.gaussian() * he;
    layer.b.assign(layer.out, 0.0F);
    layer.vw.assign(layer.w.size(), 0.0F);
    layer.vb.assign(layer.b.size(), 0.0F);
    layers_.push_back(std::move(layer));
  }
}

std::vector<float> Mlp::forward(
    std::span<const float> x,
    std::vector<std::vector<float>>* activations) const {
  std::vector<float> cur(x.begin(), x.end());
  if (activations != nullptr) {
    activations->clear();
    activations->push_back(cur);
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    assert(cur.size() == layer.in);
    std::vector<float> next(layer.out);
    for (std::size_t o = 0; o < layer.out; ++o) {
      const float* row = layer.w.data() + o * layer.in;
      float acc = layer.b[o];
      for (std::size_t i = 0; i < layer.in; ++i) acc += row[i] * cur[i];
      next[o] = acc;
    }
    const bool last = l + 1 == layers_.size();
    if (!last) {
      for (auto& v : next) v = std::max(v, 0.0F);  // ReLU
    }
    cur = std::move(next);
    if (activations != nullptr) activations->push_back(cur);
  }
  // Softmax on the final logits.
  const float max = *std::max_element(cur.begin(), cur.end());
  float sum = 0.0F;
  for (auto& v : cur) {
    v = std::exp(v - max);
    sum += v;
  }
  for (auto& v : cur) v /= sum;
  return cur;
}

void Mlp::fit(const data::Dataset& ds) {
  if (ds.train_x.empty()) {
    throw std::invalid_argument("Mlp::fit: empty training split");
  }
  build(ds.num_features, ds.num_classes);

  Rng rng(derive_seed(config_.seed, 1));
  std::vector<std::size_t> order(ds.train_x.size());
  std::iota(order.begin(), order.end(), 0);

  // Per-sample gradient accumulation buffers reused across steps.
  std::vector<std::vector<float>> grad_w(layers_.size());
  std::vector<std::vector<float>> grad_b(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    grad_w[l].assign(layers_[l].w.size(), 0.0F);
    grad_b[l].assign(layers_[l].b.size(), 0.0F);
  }

  std::vector<std::vector<float>> acts;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const float lr =
        config_.learning_rate / (1.0F + 0.1F * static_cast<float>(epoch));
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (std::size_t start = 0; start < order.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(start + config_.batch_size, order.size());
      const float inv_batch = 1.0F / static_cast<float>(end - start);
      for (auto& g : grad_w) std::fill(g.begin(), g.end(), 0.0F);
      for (auto& g : grad_b) std::fill(g.begin(), g.end(), 0.0F);

      for (std::size_t idx = start; idx < end; ++idx) {
        const auto& x = ds.train_x[order[idx]];
        const std::size_t y = ds.train_y[order[idx]];
        const std::vector<float> probs = forward(x, &acts);

        // delta at output: softmax-CE gradient.
        std::vector<float> delta = probs;
        delta[y] -= 1.0F;

        for (std::size_t l = layers_.size(); l-- > 0;) {
          const Layer& layer = layers_[l];
          const std::vector<float>& input = acts[l];
          for (std::size_t o = 0; o < layer.out; ++o) {
            grad_b[l][o] += delta[o];
            float* grow = grad_w[l].data() + o * layer.in;
            for (std::size_t i = 0; i < layer.in; ++i) {
              grow[i] += delta[o] * input[i];
            }
          }
          if (l == 0) break;
          // Backpropagate through the ReLU of the previous layer.
          std::vector<float> prev_delta(layer.in, 0.0F);
          for (std::size_t o = 0; o < layer.out; ++o) {
            const float* row = layer.w.data() + o * layer.in;
            for (std::size_t i = 0; i < layer.in; ++i) {
              prev_delta[i] += row[i] * delta[o];
            }
          }
          for (std::size_t i = 0; i < layer.in; ++i) {
            if (acts[l][i] <= 0.0F) prev_delta[i] = 0.0F;
          }
          delta = std::move(prev_delta);
        }
      }

      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (std::size_t k = 0; k < layer.w.size(); ++k) {
          const float g =
              grad_w[l][k] * inv_batch + config_.weight_decay * layer.w[k];
          layer.vw[k] = config_.momentum * layer.vw[k] - lr * g;
          layer.w[k] += layer.vw[k];
        }
        for (std::size_t k = 0; k < layer.b.size(); ++k) {
          const float g = grad_b[l][k] * inv_batch;
          layer.vb[k] = config_.momentum * layer.vb[k] - lr * g;
          layer.b[k] += layer.vb[k];
        }
      }
    }
  }
}

std::size_t Mlp::predict(std::span<const float> x) const {
  const auto probs = predict_proba(x);
  return static_cast<std::size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

std::vector<float> Mlp::predict_proba(std::span<const float> x) const {
  if (layers_.empty()) {
    throw std::logic_error("Mlp::predict: model not fitted");
  }
  return forward(x, nullptr);
}

std::uint64_t Mlp::forward_macs() const noexcept {
  std::uint64_t macs = 0;
  for (const auto& layer : layers_) {
    macs += static_cast<std::uint64_t>(layer.in) * layer.out;
  }
  return macs;
}

std::uint64_t Mlp::train_macs_per_sample() const noexcept {
  return 3 * forward_macs();
}

std::uint64_t Mlp::parameter_count() const noexcept {
  std::uint64_t count = 0;
  for (const auto& layer : layers_) {
    count += static_cast<std::uint64_t>(layer.w.size()) + layer.b.size();
  }
  return count;
}

}  // namespace edgehd::baseline
