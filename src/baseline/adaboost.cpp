#include "adaboost.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hdc/random.hpp"

namespace edgehd::baseline {

using hdc::Rng;
using hdc::derive_seed;

AdaBoost::AdaBoost(AdaBoostConfig config) : config_(std::move(config)) {
  if (config_.rounds == 0 || config_.threshold_candidates == 0) {
    throw std::invalid_argument(
        "AdaBoost: rounds and threshold_candidates must be positive");
  }
}

void AdaBoost::fit(const data::Dataset& ds) {
  if (ds.train_x.empty()) {
    throw std::invalid_argument("AdaBoost::fit: empty training split");
  }
  num_classes_ = ds.num_classes;
  stumps_.clear();

  const std::size_t n = ds.num_features;
  const std::size_t m = ds.train_x.size();
  const std::size_t feats_per_round =
      config_.features_per_round != 0
          ? std::min(config_.features_per_round, n)
          : static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));

  std::vector<double> weights(m, 1.0 / static_cast<double>(m));
  Rng rng(derive_seed(config_.seed, 0));
  std::vector<std::size_t> features(n);
  std::iota(features.begin(), features.end(), 0);
  std::vector<float> values(m);
  std::vector<double> left_hist(num_classes_);
  std::vector<double> right_hist(num_classes_);

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    std::shuffle(features.begin(), features.end(), rng.engine());

    Stump best;
    double best_err = 1.0;
    for (std::size_t fi = 0; fi < feats_per_round; ++fi) {
      const std::size_t f = features[fi];
      for (std::size_t i = 0; i < m; ++i) values[i] = ds.train_x[i][f];
      auto sorted = values;
      std::sort(sorted.begin(), sorted.end());
      for (std::size_t t = 0; t < config_.threshold_candidates; ++t) {
        // Quantile-spaced candidate thresholds over the feature range.
        const std::size_t q =
            (t + 1) * m / (config_.threshold_candidates + 1);
        const float threshold = sorted[std::min(q, m - 1)];

        std::fill(left_hist.begin(), left_hist.end(), 0.0);
        std::fill(right_hist.begin(), right_hist.end(), 0.0);
        for (std::size_t i = 0; i < m; ++i) {
          auto& hist = values[i] <= threshold ? left_hist : right_hist;
          hist[ds.train_y[i]] += weights[i];
        }
        const auto left_best = static_cast<std::size_t>(
            std::max_element(left_hist.begin(), left_hist.end()) -
            left_hist.begin());
        const auto right_best = static_cast<std::size_t>(
            std::max_element(right_hist.begin(), right_hist.end()) -
            right_hist.begin());
        const double total =
            std::accumulate(left_hist.begin(), left_hist.end(), 0.0) +
            std::accumulate(right_hist.begin(), right_hist.end(), 0.0);
        const double err =
            total - left_hist[left_best] - right_hist[right_best];
        if (err < best_err) {
          best_err = err;
          best = {f, threshold, left_best, right_best, 0.0F};
        }
      }
    }

    // SAMME requires the weak learner to beat random K-way guessing.
    const double guard = 1.0 - 1.0 / static_cast<double>(num_classes_);
    if (best_err >= guard) break;
    best_err = std::max(best_err, 1e-10);
    best.alpha = static_cast<float>(
        std::log((1.0 - best_err) / best_err) +
        std::log(static_cast<double>(num_classes_) - 1.0));
    stumps_.push_back(best);

    double sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t pred = ds.train_x[i][best.feature] <= best.threshold
                                   ? best.left_class
                                   : best.right_class;
      if (pred != ds.train_y[i]) {
        weights[i] *= std::exp(best.alpha);
      }
      sum += weights[i];
    }
    for (auto& w : weights) w /= sum;
  }

  if (stumps_.empty()) {
    // Degenerate data: keep one majority-class stump so predict() works.
    std::vector<std::size_t> counts(num_classes_, 0);
    for (std::size_t y : ds.train_y) ++counts[y];
    const auto majority = static_cast<std::size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    stumps_.push_back({0, 0.0F, majority, majority, 1.0F});
  }
}

std::size_t AdaBoost::predict(std::span<const float> x) const {
  if (stumps_.empty()) {
    throw std::logic_error("AdaBoost::predict: model not fitted");
  }
  std::vector<double> votes(num_classes_, 0.0);
  for (const auto& s : stumps_) {
    const std::size_t pred =
        x[s.feature] <= s.threshold ? s.left_class : s.right_class;
    votes[pred] += s.alpha;
  }
  return static_cast<std::size_t>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace edgehd::baseline
