// From-scratch multi-layer perceptron: the "DNN" comparator of the paper.
//
// Dense layers with ReLU activations, softmax + cross-entropy output,
// mini-batch SGD with classical momentum, He weight initialization. Also
// exposes the operation counts (MACs) per training/inference pass that the
// platform cost models use to price DNN-GPU execution in Figure 10.
#pragma once

#include <cstdint>
#include <vector>

#include "model.hpp"

namespace edgehd::baseline {

/// MLP hyper-parameters. Defaults match the grid-search winners used across
/// the synthetic workloads (two hidden layers, as typical for these tabular
/// tasks).
struct MlpConfig {
  std::vector<std::size_t> hidden = {128, 64};
  std::size_t epochs = 30;
  std::size_t batch_size = 32;
  /// Initial step size; decayed as lr/(1 + 0.1*epoch). 0.02 is stable across
  /// the tested class counts (larger rates diverge on many-class workloads).
  float learning_rate = 0.02F;
  float momentum = 0.9F;
  float weight_decay = 1e-4F;
  std::uint64_t seed = 1;
};

class Mlp final : public Model {
 public:
  explicit Mlp(MlpConfig config = {});

  void fit(const data::Dataset& ds) override;
  std::size_t predict(std::span<const float> x) const override;

  /// Class probabilities for one input (softmax output).
  std::vector<float> predict_proba(std::span<const float> x) const;

  /// Multiply-accumulate operations in one forward pass.
  std::uint64_t forward_macs() const noexcept;
  /// Multiply-accumulate operations in one forward+backward pass (~3x
  /// forward: forward, output-gradient backprop, weight-gradient).
  std::uint64_t train_macs_per_sample() const noexcept;

  /// Total trainable parameters (used for model-transfer byte accounting).
  std::uint64_t parameter_count() const noexcept;

 private:
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<float> w;   // row-major out x in
    std::vector<float> b;
    std::vector<float> vw;  // momentum buffers
    std::vector<float> vb;
  };

  void build(std::size_t in_dim, std::size_t out_dim);
  std::vector<float> forward(std::span<const float> x,
                             std::vector<std::vector<float>>* activations) const;

  MlpConfig config_;
  std::vector<Layer> layers_;
};

}  // namespace edgehd::baseline
