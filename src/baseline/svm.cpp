#include "svm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hdc/random.hpp"

namespace edgehd::baseline {

using hdc::Rng;
using hdc::derive_seed;

Svm::Svm(SvmConfig config) : config_(std::move(config)) {
  if (config_.rff_dim == 0 || config_.epochs == 0) {
    throw std::invalid_argument("Svm: rff_dim and epochs must be positive");
  }
}

void Svm::fit(const data::Dataset& ds) {
  if (ds.train_x.empty()) {
    throw std::invalid_argument("Svm::fit: empty training split");
  }
  num_classes_ = ds.num_classes;
  rff_ = std::make_unique<hdc::RbfEncoder>(
      ds.num_features, config_.rff_dim, derive_seed(config_.seed, 0),
      config_.length_scale, hdc::RbfForm::kCos);
  w_.assign(num_classes_ * config_.rff_dim, 0.0F);
  b_.assign(num_classes_, 0.0F);

  // Pre-map the training set once; the feature map is fixed.
  std::vector<std::vector<float>> phi;
  phi.reserve(ds.train_x.size());
  for (const auto& x : ds.train_x) phi.push_back(rff_->encode_real(x));

  Rng rng(derive_seed(config_.seed, 1));
  std::vector<std::size_t> order(phi.size());
  std::iota(order.begin(), order.end(), 0);

  std::size_t step = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (const std::size_t idx : order) {
      ++step;
      // 1/sqrt(t) learning-rate decay keeps late epochs stable.
      const float lr =
          config_.learning_rate / std::sqrt(static_cast<float>(step));
      const auto& f = phi[idx];
      const std::size_t y = ds.train_y[idx];
      for (std::size_t c = 0; c < num_classes_; ++c) {
        float* row = w_.data() + c * config_.rff_dim;
        float margin = b_[c];
        for (std::size_t d = 0; d < config_.rff_dim; ++d) margin += row[d] * f[d];
        const float target = c == y ? 1.0F : -1.0F;
        // L2 shrinkage every step; hinge push only when the margin is soft.
        const float shrink = 1.0F - lr * config_.l2;
        for (std::size_t d = 0; d < config_.rff_dim; ++d) row[d] *= shrink;
        if (target * margin < 1.0F) {
          for (std::size_t d = 0; d < config_.rff_dim; ++d) {
            row[d] += lr * target * f[d];
          }
          b_[c] += lr * target;
        }
      }
    }
  }
}

std::vector<float> Svm::decision_values(std::span<const float> x) const {
  if (rff_ == nullptr) {
    throw std::logic_error("Svm::predict: model not fitted");
  }
  const auto f = rff_->encode_real(x);
  std::vector<float> scores(num_classes_);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    const float* row = w_.data() + c * config_.rff_dim;
    float s = b_[c];
    for (std::size_t d = 0; d < config_.rff_dim; ++d) s += row[d] * f[d];
    scores[c] = s;
  }
  return scores;
}

std::size_t Svm::predict(std::span<const float> x) const {
  const auto scores = decision_values(x);
  return static_cast<std::size_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace edgehd::baseline
