// Common interface for the non-HD comparator models of Figure 7.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace edgehd::baseline {

/// A trainable multi-class classifier over float feature vectors.
class Model {
 public:
  virtual ~Model() = default;

  /// Trains on the dataset's train split.
  virtual void fit(const data::Dataset& ds) = 0;

  /// Predicts the class of one feature vector.
  virtual std::size_t predict(std::span<const float> x) const = 0;

  /// Fraction of (xs, ys) classified correctly.
  double accuracy(std::span<const std::vector<float>> xs,
                  std::span<const std::size_t> ys) const;

  /// Accuracy on the dataset's test split.
  double test_accuracy(const data::Dataset& ds) const;
};

}  // namespace edgehd::baseline
