// Shared protocol-layer value types.
//
// The proto layer gives EdgeHD's four protocols (initial training, batch
// retraining, routed inference, online updating) a message identity: every
// quantity a protocol places on the network travels as a typed envelope
// (messages.hpp / envelope.hpp), and every phase reports what it shipped
// through the CommStats accounting defined here. These types used to live in
// src/core; the core facade re-exports them so its public API is unchanged.
#pragma once

#include <cstdint>

#include "net/topology.hpp"

namespace edgehd::proto {

/// Bytes/messages a protocol phase placed on the network. The byte totals
/// are the paper-comparable quantity (canonical payload sizes, see
/// messages.hpp::wire_size); envelope framing is implementation detail and
/// is never charged here.
struct CommStats {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;

  CommStats& operator+=(const CommStats& o) noexcept {
    bytes += o.bytes;
    messages += o.messages;
    return *this;
  }

  friend bool operator==(const CommStats&, const CommStats&) noexcept =
      default;
};

inline CommStats operator+(CommStats a, const CommStats& b) noexcept {
  a += b;
  return a;
}

/// Outcome of one routed inference. `node == net::kNoNode` after the call
/// means the query could not be served at all (origin crashed, or nothing
/// reachable hosts a classifier and the failover policy forbids a degraded
/// answer).
struct RoutedResult {
  std::size_t label = 0;
  net::NodeId node = net::kNoNode;  ///< node that served the prediction
  std::size_t level = 0;
  double confidence = 0.0;
  std::uint64_t bytes = 0;  ///< query-gathering bytes (compression amortized)
  /// True when the answer came off the normal path: escalation was cut
  /// short by a crash/outage, or the serving node aggregated with child
  /// contributions missing.
  bool degraded = false;
  /// Expected retransmission bytes on lossy links beyond `bytes` (reliable
  /// transport with the configured retry cap; zero on loss-free links).
  std::uint64_t retry_bytes = 0;

  bool served() const noexcept { return node != net::kNoNode; }
};

}  // namespace edgehd::proto
