// Per-node protocol state machine.
//
// A NodeRuntime is one hierarchy node as the protocols see it: its role
// (leaf / gateway / central), its hypervector space (dim + encoder handles),
// its classifier (when its level hosts one), and its protocol inboxes. It
// advances by consuming delivered envelopes — on_envelope() files each
// message into the inbox of the phase the node is in — and by the phase
// transitions a session drives:
//
//        begin_<phase>()          on_envelope(...)        finish_<phase>()
//   Idle ───────────────▶ Phase ───────────────▶ Phase ───────────────▶ Idle
//
// begin_* clears the phase inboxes and arms the state machine;
// on_envelope() accepts exactly the message types the phase expects (a
// model-bearing message outside its phase is a protocol violation and
// throws); finish_* folds own work and inbox contributions together,
// updates the local model, and returns what the session may ship upward.
// The session — not the runtime — owns topology-wide decisions: who posts,
// who parks as a straggler, and in what order nodes close their phase
// (see sessions.hpp).
//
// Query traffic (QueryEscalate / QueryReply) deliberately does not flow
// through on_envelope: a query walk is reentrant per-query state handled by
// routing.hpp so batched inference can fan out across threads. A query
// envelope arriving here (e.g. over a SimulatorBus) is only counted.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "envelope.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "hdc/hypervector.hpp"
#include "hier/hier_encoder.hpp"
#include "net/topology.hpp"

namespace edgehd::proto {

/// Per-class sample batches: [class][batch] -> encoded-sample indices. Built
/// once per retraining session and shared by every node so batch
/// hypervectors line up across the hierarchy.
using ClassBatches = std::vector<std::vector<std::vector<std::size_t>>>;

class NodeRuntime {
 public:
  /// Where the node sits in the hierarchy (paper Figure 1's three tiers).
  enum class Role : std::uint8_t {
    kLeaf,     ///< end node: encodes raw features
    kGateway,  ///< internal node: aggregates children
    kCentral,  ///< the root
  };

  /// Which protocol exchange the node is currently part of.
  enum class Phase : std::uint8_t {
    kIdle,
    kInitialTraining,
    kBatchRetraining,
    kResidualPropagation,
    kReintegration,
    kDimensionRegen,
  };

  NodeRuntime() = default;

  /// Binds the runtime to its place in the hierarchy. The topology must
  /// outlive the runtime.
  void init(net::NodeId id, const net::Topology& topology, std::size_t dim,
            std::size_t num_classes);

  // ---- identity -----------------------------------------------------------

  net::NodeId id() const noexcept { return id_; }
  Role role() const noexcept { return role_; }
  Phase phase() const noexcept { return phase_; }
  std::size_t dim() const noexcept { return dim_; }
  std::size_t num_classes() const noexcept { return num_classes_; }

  /// Leaf only: index of the dataset feature partition this node senses.
  std::size_t partition() const noexcept { return partition_; }
  void set_partition(std::size_t p) noexcept { partition_ = p; }

  // ---- model handles (installed by the facade at construction) ------------

  void install_leaf_encoder(std::unique_ptr<hdc::Encoder> enc);
  void install_aggregator(std::unique_ptr<hier::HierEncoder> agg);
  void install_classifier(std::unique_ptr<hdc::HDClassifier> clf);

  bool has_classifier() const noexcept { return classifier_ != nullptr; }
  const hdc::HDClassifier& classifier() const;
  hdc::HDClassifier& classifier();
  const hdc::Encoder& leaf_encoder() const;
  const hier::HierEncoder& aggregator() const;

  /// Classifier prediction on an encoded query. Const and thread-safe once
  /// the classifier cache is warm (HDClassifier::warm_cache).
  hdc::Prediction predict(std::span<const std::int8_t> query) const;

  // ---- envelope consumption -----------------------------------------------

  /// Consumes one delivered envelope. Model-bearing messages must arrive in
  /// their phase (ModelUpdate in initial training or reintegration,
  /// BatchUpdate in batch retraining, ResidualMerge in residual propagation)
  /// and from a topological child — anything else throws std::logic_error.
  /// Query/probe messages are counted and dropped.
  void on_envelope(const Envelope& env);

  std::uint64_t probes_received() const noexcept { return probes_received_; }
  std::uint64_t queries_received() const noexcept { return queries_received_; }
  std::uint64_t joins_received() const noexcept { return joins_received_; }
  std::uint64_t leaves_received() const noexcept { return leaves_received_; }

  // ---- collective traffic --------------------------------------------------

  /// One fused frame delivered outside the training phases (all-reduce chunk
  /// relays and model broadcasts — ReducePartial phases 2/3).
  struct CollectiveFrame {
    net::NodeId origin = net::kNoNode;
    std::vector<hdc::AccumHV> sections;
  };

  /// Drains the collective inbox (delivery order preserved). The collective
  /// primitives in collective.cpp poll this between hops, which is also how
  /// they detect a lost frame and retry.
  std::vector<CollectiveFrame> take_collective_frames();
  std::size_t collective_frames_pending() const noexcept {
    return collective_frames_.size();
  }

  /// Cost-model announcements heard (and the latest one): sessions broadcast
  /// a CollectivePlan down the tree before running a collective phase.
  std::uint64_t plans_received() const noexcept { return plans_received_; }
  const CollectivePlan& last_plan() const noexcept { return last_plan_; }

  /// Highest incarnation heard from `node` via NodeJoin (0 = first life).
  std::uint64_t known_incarnation(net::NodeId node) const noexcept {
    return node < incarnations_.size() ? incarnations_[node] : 0;
  }

  /// The node's current class-accumulator state, for re-syncing a rejoined
  /// parent: the hosted classifier's accumulators when one exists, else the
  /// last initial-training shipment. Empty when the node never trained.
  std::vector<hdc::AccumHV> checkpoint_state() const;

  // ---- initial training (Section IV-B) ------------------------------------

  void begin_initial_training();

  /// Closes the phase: a leaf bundles its encoded samples per class; a
  /// gateway/central node aggregates the inbox (absent children contribute
  /// zeros). Installs the result into the classifier when one is hosted and
  /// returns the node's k class accumulators (what ships upward).
  const std::vector<hdc::AccumHV>& finish_initial_training(
      std::span<const hdc::BipolarHV> samples,
      std::span<const std::size_t> labels);

  // ---- batch retraining (Section IV-B) ------------------------------------

  /// `batches` must outlive the phase (the session owns it).
  void begin_batch_retraining(const ClassBatches& batches);

  /// Closes the phase: builds/aggregates the per-(class, batch)
  /// hypervectors, then retrains the hosted classifier — a leaf on its own
  /// per-sample encodings, an internal node on the binarized batch
  /// hypervectors in (class asc, batch asc) order. Returns the node's batch
  /// accumulators, [class][batch].
  const std::vector<std::vector<hdc::AccumHV>>& finish_batch_retraining(
      std::span<const hdc::BipolarHV> samples,
      std::span<const std::size_t> labels);

  // ---- residual propagation (Section IV-D, Figure 5b) ---------------------

  void begin_residual_propagation();

  /// Closes the phase: aggregates children's delivered residuals (only if at
  /// least one arrived), folds in this node's own queued residuals, applies
  /// the combined bundle to the local model, and returns it as this round's
  /// upward shipment (all-zero when there is nothing to report).
  std::vector<hdc::AccumHV> finish_residual_propagation();

  // ---- straggler reintegration --------------------------------------------

  void begin_reintegration();

  /// Closes one reintegration hop: lifts the delta delivered by `child`
  /// through this node's aggregator (zeros in every other child slot), folds
  /// the lifted delta into the hosted classifier's class accumulators, and
  /// returns it for the next hop up. Exact by linearity of the hierarchical
  /// encoding.
  std::vector<hdc::AccumHV> finish_reintegration(net::NodeId child);

  // ---- adaptive dimensionality (DESIGN.md §14) -----------------------------

  void begin_dimension_regen(std::uint32_t round);

  /// Installs the set of own-space dimensions this node must regenerate
  /// (ascending). Used by the session for the scoring root (concatenation
  /// mode) and for self-scoring leaves (holographic mode); every other node
  /// receives its assignment as a DimensionPatch request via on_envelope.
  void set_regen_request(std::vector<std::uint32_t> dims);
  const std::vector<std::uint32_t>& regen_request() const noexcept {
    return regen_request_;
  }

  /// Leaf only. Re-derives the requested projection rows, re-encodes exactly
  /// those dimensions of every training sample (`raw_features` is the leaf's
  /// feature partition, sample-major; `encoded` the pre-regeneration
  /// encodings), folds the per-class delta into its own accumulators and
  /// hosted classifier, and returns the patch to ship upward (empty dims
  /// when nothing was requested).
  DimensionPatch finish_dimension_regen_leaf(
      std::span<const float> raw_features,
      std::span<const hdc::BipolarHV> encoded,
      std::span<const std::size_t> labels);

  /// Internal node. Lifts the delivered child patches through the
  /// aggregator (zeros everywhere a child did not patch), applies the lifted
  /// per-class delta in place to its own accumulators and hosted classifier,
  /// and returns the merged patch for the next hop up. In concatenation mode
  /// child dimensions map 1:1 into this node's space so generation counters
  /// are carried; in holographic mode the delta densifies and generations
  /// reset to 0 (the projection mixes rows, so no single source generation
  /// applies).
  DimensionPatch finish_dimension_regen_internal();

 private:
  std::size_t child_index(net::NodeId child) const;
  std::size_t child_dim(std::size_t child_idx) const;
  /// Aggregates one class across the child inbox, zeros where absent.
  hdc::AccumHV aggregate_inbox(std::size_t c) const;
  void require_phase(Phase expected, const char* what) const;

  net::NodeId id_ = net::kNoNode;
  const net::Topology* topology_ = nullptr;
  Role role_ = Role::kLeaf;
  Phase phase_ = Phase::kIdle;
  std::size_t dim_ = 0;
  std::size_t num_classes_ = 0;
  std::size_t partition_ = 0;

  std::unique_ptr<hdc::Encoder> leaf_encoder_;     // leaves only
  std::unique_ptr<hier::HierEncoder> aggregator_;  // internal only
  std::unique_ptr<hdc::HDClassifier> classifier_;  // level >= classify_min_level

  // ---- phase workspaces ----------------------------------------------------
  /// Class-accumulator inbox, [child][class]; an empty AccumHV marks an
  /// absent contribution (initial training, residuals, reintegration).
  std::vector<std::vector<hdc::AccumHV>> inbox_;
  /// Batch inbox, [child][class][batch]; empty = absent.
  std::vector<std::vector<std::vector<hdc::AccumHV>>> batch_inbox_;
  const ClassBatches* batches_ = nullptr;  ///< session-owned, retraining only
  bool residual_any_child_ = false;        ///< any ResidualMerge delivered?
  /// Dimension-regeneration workspace: the dims assigned to this node, the
  /// session round tag, and one delivered patch slot per child (empty dims
  /// marks an absent contribution).
  std::vector<std::uint32_t> regen_request_;
  std::uint32_t regen_round_ = 0;
  std::vector<DimensionPatch> patch_inbox_;
  std::vector<hdc::AccumHV> own_accums_;   ///< finish_initial_training result
  std::vector<std::vector<hdc::AccumHV>> own_batches_;  ///< [class][batch]

  std::uint64_t probes_received_ = 0;
  std::uint64_t queries_received_ = 0;
  std::uint64_t joins_received_ = 0;
  std::uint64_t leaves_received_ = 0;
  std::vector<CollectiveFrame> collective_frames_;
  CollectivePlan last_plan_{};
  std::uint64_t plans_received_ = 0;
  /// Highest incarnation announced per node (indexed by NodeId); a
  /// StateSync bearing a lower incarnation than recorded here is rejected.
  std::vector<std::uint64_t> incarnations_;
};

}  // namespace edgehd::proto
