// Delivery substrate for proto envelopes.
//
// A Bus moves envelopes between NodeRuntimes and is the single place where
// protocol traffic is accounted: every delivered envelope advances the
// per-message-type "proto.<name>.messages" / "proto.<name>.bytes" registry
// counters and, when a CommStats sink is attached, charges the message's
// canonical wire_size() (payload bytes only — envelope framing is an
// implementation detail and never reaches the paper-comparable totals).
//
// Two implementations:
//
//  * LocalBus — deterministic in-process delivery: post() invokes the
//    destination's handler before returning, so a protocol session that
//    walks nodes bottom-up doubles as the event loop. It can optionally
//    round-trip every envelope through the real codec (Codec::kEncoded),
//    which is how the facade proves the protocols run over actual bytes.
//  * SimulatorBus — rides net::Simulator::send_payload: envelopes are
//    encoded, travel one hop with full link/fault semantics, and are decoded
//    at the receiver (a decode failure is counted, never fatal).
//
// Routed-inference queries deliberately bypass the bus: a query walk is
// per-query reentrant state (see routing.hpp) so infer_routed_batch can fan
// out across threads, and its byte accounting is the amortized
// query-gathering cost, not a per-envelope charge.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "envelope.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "types.hpp"

namespace edgehd::proto {

/// Receiver-side callback: one delivered envelope.
using Handler = std::function<void(const Envelope&)>;

/// Where envelopes travel. Implementations deliver to the handler subscribed
/// for env.dst and own the protocol-layer accounting.
class Bus {
 public:
  virtual ~Bus() = default;

  /// Registers the consumer of envelopes addressed to `node` (one handler
  /// per node; re-subscribing replaces it).
  virtual void subscribe(net::NodeId node, Handler handler) = 0;

  /// Posts one envelope toward env.dst.
  virtual void post(Envelope env) = 0;

  /// Attaches the CommStats sink charged wire_size() per delivered envelope
  /// (nullptr detaches; phases swap their own sink in while they run).
  virtual void set_charge(CommStats* sink) noexcept = 0;
};

/// Synchronous in-process bus: post() delivers before returning, in posting
/// order, so protocol control flow stays deterministic and single-stack.
class LocalBus final : public Bus {
 public:
  /// Whether posted envelopes round-trip through encode()/decode() before
  /// delivery. kEncoded exercises the real wire codec on every message (a
  /// decode failure throws — it would mean the codec violates its own
  /// round-trip contract); kInMemory skips serialization.
  enum class Codec : std::uint8_t { kInMemory, kEncoded };

  explicit LocalBus(std::size_t num_nodes, Codec codec = Codec::kEncoded);

  void subscribe(net::NodeId node, Handler handler) override;
  void post(Envelope env) override;
  void set_charge(CommStats* sink) noexcept override { charge_ = sink; }

  /// Envelopes delivered to a subscribed handler since construction.
  std::uint64_t delivered() const noexcept { return delivered_; }

 private:
  std::vector<Handler> handlers_;
  CommStats* charge_ = nullptr;
  std::uint64_t delivered_ = 0;
  Codec codec_;
};

/// Bus riding the discrete-event network simulator: each post is one
/// encoded frame on the (src, dst) link — which must be a parent/child pair
/// — with the simulator's latency, occupancy and fault semantics. Delivery
/// (and hence charging) happens when the frame lands during Simulator::run.
class SimulatorBus final : public Bus {
 public:
  /// Installs this bus as `sim`'s payload handler; the bus must outlive the
  /// simulator's run.
  explicit SimulatorBus(net::Simulator& sim);

  void subscribe(net::NodeId node, Handler handler) override;
  void post(Envelope env) override;
  void set_charge(CommStats* sink) noexcept override { charge_ = sink; }

  std::uint64_t delivered() const noexcept { return delivered_; }

  /// Frames that arrived but failed strict decode (also visible as
  /// "proto.decode.rejected" in the metrics registry).
  std::uint64_t decode_failures() const noexcept { return decode_failures_; }

 private:
  net::Simulator* sim_;
  std::vector<Handler> handlers_;
  CommStats* charge_ = nullptr;
  std::uint64_t delivered_ = 0;
  std::uint64_t decode_failures_ = 0;
};

namespace detail {
/// Advances the per-type "proto.<name>.messages/bytes" registry counters and
/// returns the message's canonical wire size. Shared by both buses and by
/// the query walk (which accounts envelopes without a bus).
std::uint64_t account_delivery(const Message& msg);
}  // namespace detail

}  // namespace edgehd::proto
