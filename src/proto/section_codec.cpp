#include "section_codec.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <functional>
#include <limits>
#include <queue>
#include <utility>

namespace edgehd::proto {
namespace {

std::uint32_t zigzag(std::int32_t v) noexcept {
  return (static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31);
}

std::int32_t unzigzag(std::uint32_t z) noexcept {
  return static_cast<std::int32_t>(z >> 1) ^
         -static_cast<std::int32_t>(z & 1U);
}

/// Appends bit runs LSB-first within bytes (same bit order as the envelope
/// codec's write_accum), with explicit zero padding at byte_align().
class BitSink {
 public:
  explicit BitSink(ByteWriter& w) : w_(&w) {}

  void push(std::uint32_t bits, unsigned n) {
    acc_ |= static_cast<std::uint64_t>(bits) << nbits_;
    nbits_ += n;
    while (nbits_ >= 8) {
      w_->u8(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }

  void push_bit(std::uint32_t b) { push(b & 1U, 1); }

  void byte_align() {
    if (nbits_ > 0) {
      w_->u8(static_cast<std::uint8_t>(acc_));
      acc_ = 0;
      nbits_ = 0;
    }
  }

 private:
  ByteWriter* w_;
  std::uint64_t acc_ = 0;
  unsigned nbits_ = 0;
};

/// Consumes bit runs LSB-first; align_checked() enforces zero pad bits so a
/// frame has exactly one valid encoding (canonical-form strictness, matching
/// the envelope codec's pad-bit rule).
class BitSource {
 public:
  explicit BitSource(ByteReader& r) : r_(&r) {}

  bool take(unsigned n, std::uint32_t& out) noexcept {
    while (nbits_ < n) {
      std::uint8_t b = 0;
      if (!r_->u8(b)) return false;
      acc_ |= static_cast<std::uint64_t>(b) << nbits_;
      nbits_ += 8;
    }
    out = static_cast<std::uint32_t>(
        acc_ & ((n >= 64 ? ~0ULL : (1ULL << n) - 1ULL)));
    acc_ >>= n;
    nbits_ -= n;
    return true;
  }

  bool take_bit(std::uint32_t& b) noexcept { return take(1, b); }

  /// Drops up to 7 leftover pad bits; they must all be zero.
  bool align_checked() noexcept {
    if (acc_ != 0) return false;
    nbits_ = 0;
    return true;
  }

 private:
  ByteReader* r_;
  std::uint64_t acc_ = 0;
  unsigned nbits_ = 0;
};

struct ForParams {
  std::int32_t vmin = 0;
  std::uint8_t step = 1;
  std::uint8_t ubits = 0;
};

ForParams for_params(const hdc::AccumHV& s) noexcept {
  ForParams p;
  if (s.empty()) return p;
  std::int32_t vmin = s[0];
  std::int32_t vmax = s[0];
  const std::uint32_t parity = static_cast<std::uint32_t>(s[0]) & 1U;
  bool same_parity = true;
  for (std::int32_t v : s) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
    same_parity &= ((static_cast<std::uint32_t>(v) & 1U) == parity);
  }
  p.vmin = vmin;
  if (vmax == vmin) return p;
  p.step = same_parity ? 2 : 1;
  const std::uint64_t range =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(vmax) -
                                 static_cast<std::int64_t>(vmin)) /
      p.step;
  p.ubits = static_cast<std::uint8_t>(std::bit_width(range));
  return p;
}

// Per-section FOR overhead: vmin (4) + step (1) + ubits (1).
constexpr std::uint64_t kForSideBytes = 6;

std::uint64_t for_body_bytes(std::span<const hdc::AccumHV> sections,
                             std::span<const ForParams> params) noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    total += kForSideBytes +
             (static_cast<std::uint64_t>(sections[i].size()) *
                  params[i].ubits +
              7) /
                 8;
  }
  return total;
}

struct HuffPlan {
  bool available = false;
  std::vector<std::uint8_t> lengths;  ///< code length per zigzag symbol
  std::uint64_t body_bytes = 0;       ///< excludes the shared mode byte
};

HuffPlan huff_plan(std::span<const hdc::AccumHV> sections) {
  HuffPlan plan;
  std::size_t max_sym = 0;
  std::uint64_t lanes = 0;
  for (const auto& s : sections) {
    for (std::int32_t v : s) {
      const std::uint32_t z = zigzag(v);
      if (z >= kMaxHuffSymbols) return plan;
      max_sym = std::max<std::size_t>(max_sym, z);
      ++lanes;
    }
  }
  if (lanes == 0) return plan;
  const std::size_t table = max_sym + 1;
  std::vector<std::uint64_t> freq(table, 0);
  for (const auto& s : sections) {
    for (std::int32_t v : s) ++freq[zigzag(v)];
  }

  // Huffman tree with fully deterministic tie-breaking: the min-heap orders
  // by (weight, creation index), leaves created in ascending symbol order.
  struct Node {
    std::uint32_t left;
    std::uint32_t right;
  };
  constexpr std::uint32_t kLeafChild = std::numeric_limits<std::uint32_t>::max();
  std::vector<Node> nodes;
  std::vector<std::uint32_t> leaf_sym;
  using Entry = std::pair<std::uint64_t, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t sym = 0; sym < table; ++sym) {
    if (freq[sym] == 0) continue;
    const auto idx = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back({kLeafChild, kLeafChild});
    leaf_sym.push_back(static_cast<std::uint32_t>(sym));
    heap.push({freq[sym], idx});
  }
  if (leaf_sym.size() < 2) return plan;  // degenerate alphabet: FOR is free
  while (heap.size() > 1) {
    const Entry a = heap.top();
    heap.pop();
    const Entry b = heap.top();
    heap.pop();
    const auto idx = static_cast<std::uint32_t>(nodes.size());
    nodes.push_back({a.second, b.second});
    heap.push({a.first + b.first, idx});
  }

  // Leaf depths via an explicit stack from the root (last node created).
  std::vector<std::uint32_t> depth(nodes.size(), 0);
  plan.lengths.assign(table, 0);
  std::vector<std::uint32_t> stack{static_cast<std::uint32_t>(nodes.size() - 1)};
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    const Node& n = nodes[idx];
    if (n.left == kLeafChild) {
      if (depth[idx] > kMaxHuffCodeLen) return plan;
      plan.lengths[leaf_sym[idx]] = static_cast<std::uint8_t>(depth[idx]);
    } else {
      depth[n.left] = depth[idx] + 1;
      depth[n.right] = depth[idx] + 1;
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }

  // Table size (u32) + one length byte per symbol + per-section packed
  // codes, byte-aligned per section.
  plan.body_bytes = 4 + table;
  for (const auto& s : sections) {
    std::uint64_t bits = 0;
    for (std::int32_t v : s) bits += plan.lengths[zigzag(v)];
    plan.body_bytes += (bits + 7) / 8;
  }
  plan.available = true;
  return plan;
}

/// Canonical code values from lengths: symbols ordered (length, symbol)
/// ascending get increasing codes (RFC 1951 convention).
struct CanonicalCodes {
  std::array<std::uint32_t, kMaxHuffCodeLen + 1> bl_count{};
  std::array<std::uint32_t, kMaxHuffCodeLen + 2> first_code{};
  std::array<std::uint32_t, kMaxHuffCodeLen + 2> offset{};
  std::vector<std::uint32_t> syms;  ///< used symbols ordered (length, symbol)
  std::vector<std::uint32_t> code_of;  ///< per symbol (encoder side)
};

bool build_canonical(std::span<const std::uint8_t> lengths,
                     CanonicalCodes& c, bool require_complete) {
  c.bl_count.fill(0);
  std::uint64_t kraft = 0;
  for (std::uint8_t len : lengths) {
    if (len == 0) continue;
    if (len > kMaxHuffCodeLen) return false;
    ++c.bl_count[len];
    kraft += 1ULL << (kMaxHuffCodeLen - len);
  }
  if (require_complete && kraft != (1ULL << kMaxHuffCodeLen)) return false;
  std::uint32_t code = 0;
  std::uint32_t total = 0;
  for (std::uint32_t len = 1; len <= kMaxHuffCodeLen; ++len) {
    code = (code + c.bl_count[len - 1]) << 1;
    c.first_code[len] = code;
    c.offset[len] = total;
    total += c.bl_count[len];
  }
  c.syms.resize(total);
  c.code_of.assign(lengths.size(), 0);
  std::array<std::uint32_t, kMaxHuffCodeLen + 1> next = {};
  for (std::uint32_t len = 1; len <= kMaxHuffCodeLen; ++len) {
    next[len] = c.first_code[len];
  }
  std::array<std::uint32_t, kMaxHuffCodeLen + 1> fill = {};
  for (std::size_t sym = 0; sym < lengths.size(); ++sym) {
    const std::uint8_t len = lengths[sym];
    if (len == 0) continue;
    c.code_of[sym] = next[len]++;
    c.syms[c.offset[len] + fill[len]++] = static_cast<std::uint32_t>(sym);
  }
  return true;
}

struct SectionPlan {
  SectionMode mode = SectionMode::kFrameOfReference;
  std::vector<ForParams> fors;
  HuffPlan huff;
  std::uint64_t bytes = 0;  ///< total body bytes including the mode byte
};

SectionPlan plan_sections(std::span<const hdc::AccumHV> sections) {
  SectionPlan plan;
  plan.fors.reserve(sections.size());
  for (const auto& s : sections) plan.fors.push_back(for_params(s));
  const std::uint64_t for_bytes = 1 + for_body_bytes(sections, plan.fors);
  plan.huff = huff_plan(sections);
  const std::uint64_t huff_bytes =
      plan.huff.available ? 1 + plan.huff.body_bytes
                          : std::numeric_limits<std::uint64_t>::max();
  if (huff_bytes < for_bytes) {
    plan.mode = SectionMode::kHuffman;
    plan.bytes = huff_bytes;
  } else {
    plan.mode = SectionMode::kFrameOfReference;
    plan.bytes = for_bytes;
  }
  return plan;
}

bool read_sections_for(ByteReader& r, std::span<const std::uint32_t> dims,
                       std::vector<hdc::AccumHV>& out) {
  for (std::size_t i = 0; i < dims.size(); ++i) {
    std::uint32_t vmin_raw = 0;
    std::uint8_t step = 0;
    std::uint8_t ubits = 0;
    if (!r.u32(vmin_raw) || !r.u8(step) || !r.u8(ubits)) return false;
    if ((step != 1 && step != 2) || ubits > 32) return false;
    const auto vmin =
        static_cast<std::int64_t>(static_cast<std::int32_t>(vmin_raw));
    hdc::AccumHV& section = out[i];
    section.resize(dims[i]);
    BitSource bs(r);
    for (std::uint32_t lane = 0; lane < dims[i]; ++lane) {
      std::uint32_t residue = 0;
      if (ubits > 0 && !bs.take(ubits, residue)) return false;
      const std::int64_t v =
          vmin + static_cast<std::int64_t>(residue) * step;
      if (v < std::numeric_limits<std::int32_t>::min() ||
          v > std::numeric_limits<std::int32_t>::max()) {
        return false;
      }
      section[lane] = static_cast<std::int32_t>(v);
    }
    if (!bs.align_checked()) return false;
  }
  return true;
}

bool read_sections_huff(ByteReader& r, std::span<const std::uint32_t> dims,
                        std::vector<hdc::AccumHV>& out) {
  std::uint32_t table = 0;
  if (!r.u32(table)) return false;
  if (table == 0 || table > kMaxHuffSymbols) return false;
  std::vector<std::uint8_t> lengths(table);
  for (auto& len : lengths) {
    if (!r.u8(len)) return false;
  }
  CanonicalCodes codes;
  // Completeness (Kraft sum saturated) guarantees every bit path reaches a
  // used symbol, so decode terminates within kMaxHuffCodeLen bits.
  if (!build_canonical(lengths, codes, /*require_complete=*/true)) {
    return false;
  }
  for (std::size_t i = 0; i < dims.size(); ++i) {
    hdc::AccumHV& section = out[i];
    section.resize(dims[i]);
    BitSource bs(r);
    for (std::uint32_t lane = 0; lane < dims[i]; ++lane) {
      std::uint32_t code = 0;
      std::uint32_t len = 0;
      std::uint32_t sym = 0;
      while (true) {
        std::uint32_t bit = 0;
        if (!bs.take_bit(bit)) return false;
        code = (code << 1) | bit;
        ++len;
        if (len > kMaxHuffCodeLen) return false;
        const std::uint32_t first = codes.first_code[len];
        if (code >= first && code - first < codes.bl_count[len]) {
          sym = codes.syms[codes.offset[len] + (code - first)];
          break;
        }
      }
      section[lane] = unzigzag(sym);
    }
    if (!bs.align_checked()) return false;
  }
  return true;
}

}  // namespace

void write_sections(ByteWriter& w, std::span<const hdc::AccumHV> sections) {
  const SectionPlan plan = plan_sections(sections);
  w.u8(static_cast<std::uint8_t>(plan.mode));
  if (plan.mode == SectionMode::kFrameOfReference) {
    for (std::size_t i = 0; i < sections.size(); ++i) {
      const ForParams& p = plan.fors[i];
      w.u32(static_cast<std::uint32_t>(p.vmin));
      w.u8(p.step);
      w.u8(p.ubits);
      BitSink sink(w);
      for (std::int32_t v : sections[i]) {
        const auto residue = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(static_cast<std::int64_t>(v) -
                                       p.vmin) /
            p.step);
        if (p.ubits > 0) sink.push(residue, p.ubits);
      }
      sink.byte_align();
    }
    return;
  }
  const auto& lengths = plan.huff.lengths;
  w.u32(static_cast<std::uint32_t>(lengths.size()));
  for (std::uint8_t len : lengths) w.u8(len);
  CanonicalCodes codes;
  build_canonical(lengths, codes, /*require_complete=*/false);
  for (const auto& s : sections) {
    BitSink sink(w);
    for (std::int32_t v : s) {
      const std::uint32_t sym = zigzag(v);
      const std::uint32_t len = lengths[sym];
      const std::uint32_t code = codes.code_of[sym];
      for (std::uint32_t i = len; i-- > 0;) {
        sink.push_bit(code >> i);
      }
    }
    sink.byte_align();
  }
}

bool read_sections(ByteReader& r, std::span<const std::uint32_t> dims,
                   std::vector<hdc::AccumHV>& out) {
  out.assign(dims.size(), hdc::AccumHV{});
  std::uint8_t mode = 0;
  if (!r.u8(mode)) return false;
  switch (static_cast<SectionMode>(mode)) {
    case SectionMode::kFrameOfReference:
      return read_sections_for(r, dims, out);
    case SectionMode::kHuffman:
      return read_sections_huff(r, dims, out);
  }
  return false;
}

std::uint64_t sections_wire_size(
    std::span<const hdc::AccumHV> sections) noexcept {
  return plan_sections(sections).bytes;
}

}  // namespace edgehd::proto
