// Protocol sessions: the event loops that drive EdgeHD's training-side
// protocols as envelope exchanges between NodeRuntimes.
//
// A session walks the hierarchy bottom-up (leaves first — the deterministic
// delivery order of the paper's synchronized rounds): it arms every live
// node's phase, then closes each node in order. Closing a node yields what
// that node may ship; the session applies the topology-wide rules — a child
// posts its messages to its parent iff the child, its uplink and the parent
// are all up; a cut-off child parks its contribution as a straggler — and
// posts through the Bus, whose synchronous delivery files each message into
// the parent's inbox before the parent closes. All byte/message accounting
// happens in the Bus (canonical wire_size per posted envelope), which is
// what keeps the per-phase CommStats totals identical to the paper's
// charging scheme: a message is charged exactly when it would have crossed
// a live link.
//
// Sessions require a synchronous bus (LocalBus): every post must be
// delivered before the parent's finish_* runs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bus.hpp"
#include "collective.hpp"
#include "net/detector.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"
#include "node_runtime.hpp"
#include "types.hpp"

namespace edgehd::proto {

/// Everything a protocol session needs: the hierarchy, the bus, the health
/// snapshot, and the cross-phase state (parked contributions/residuals and
/// the straggler list) owned by the facade.
struct SessionContext {
  const net::Topology* topology = nullptr;
  std::span<NodeRuntime> nodes;  ///< indexed by NodeId
  Bus* bus = nullptr;
  /// The simulated physical world (oracle). With `suspicion` installed this
  /// is no longer consulted for decisions.
  const net::HealthMask* health = nullptr;  ///< may be empty
  /// Earned beliefs from the failure detector; when set, every liveness and
  /// reachability decision below uses this instead of the oracle mask.
  const net::SuspicionView* suspicion = nullptr;
  bool degraded = false;  ///< health installed and not all-healthy
  std::size_t num_classes = 0;
  std::size_t batch_size = 1;  ///< B, retraining batch size

  /// Per-node class-hypervector contributions parked by initial training
  /// (indexed by node; empty = nothing pending).
  std::vector<std::vector<hdc::AccumHV>>* pending_contrib = nullptr;
  /// Residual bundles held back while the uplink was down.
  std::vector<std::vector<hdc::AccumHV>>* pending_residuals = nullptr;
  /// Nodes whose contribution could not reach their parent, deepest-first.
  std::vector<net::NodeId>* stragglers = nullptr;
  /// Collective-schedule configuration; nullptr or disabled runs the legacy
  /// point-to-point schedule (see collective.hpp). When a collective
  /// schedule is picked, the session announces it down the tree as a
  /// CollectivePlan and every live child ships one fused ReducePartial per
  /// phase instead of its per-(class, batch) frames. Straggler/parking rules
  /// are identical — only the frame format changes.
  const CollectiveConfig* collective = nullptr;

  bool node_up(net::NodeId id) const noexcept;
  bool link_up(net::NodeId child) const noexcept;
  /// Physically alive (world simulation, never beliefs): local computation —
  /// bundling, aggregation, perceptron updates — happens on the node itself,
  /// so only the simulated world can gate it. A node everyone *believes*
  /// dead still trains on its local data; it just cannot deliver. Identical
  /// to node_up() on the oracle path.
  bool origin_up(net::NodeId id) const noexcept;
  bool child_delivers(net::NodeId child) const noexcept;
  /// Every hop from `id` to the root believed up.
  bool reachable_to_root(net::NodeId id) const;
  /// A live node cut off from its parent parks this round's shipment.
  bool parked(net::NodeId id) const;
  /// Bottom-up node order (leaves first).
  std::vector<net::NodeId> bottom_up_order() const;
};

/// The facade's memoized per-node sample encodings for a training pass.
struct TrainData {
  /// encoded[node][sample]; only leaf rows are consumed by sessions.
  const std::vector<std::vector<hdc::BipolarHV>>* encoded = nullptr;
  std::span<const std::size_t> labels;  ///< per encoded sample
  /// raw[node]: the leaf's raw feature partition, sample-major and flat
  /// (samples x leaf input_dim); empty rows for internal nodes. Consumed
  /// only by run_dimension_regeneration, which must re-encode exactly the
  /// regenerated dimensions of every training sample.
  const std::vector<std::vector<float>>* raw = nullptr;
};

/// Initial training (Section IV-B): leaves bundle local class hypervectors,
/// each live node ships its k class accumulators upward as ModelUpdate
/// envelopes, parents aggregate what arrived. Clears and rebuilds the
/// straggler list. Returns the phase's network charge.
CommStats run_initial_training(const SessionContext& ctx,
                               const TrainData& data);

/// Batch retraining (Section IV-B): per-class batch hypervectors of size B
/// travel up as BatchUpdate envelopes and drive perceptron retraining at
/// every level. Appends (deduplicated) to the straggler list.
CommStats run_batch_retraining(const SessionContext& ctx,
                               const TrainData& data);

/// Online-update residual propagation (Section IV-D, Figure 5b): each node
/// folds its children's delivered residuals into its model and ships the
/// combined bundle up as ResidualMerge envelopes; a node whose uplink is
/// down holds its bundle in pending_residuals for a later round.
CommStats run_residual_propagation(const SessionContext& ctx);

/// Straggler reintegration: every parked contribution whose path to the
/// root is back up is shipped hop by hop as ModelUpdate envelopes, each hop
/// lifting the delta through the parent's aggregator and folding it into
/// the parent's model (exact by linearity).
CommStats run_reintegration(const SessionContext& ctx);

/// Rejoin after a declared death (churn membership). The returning node
/// announces its new incarnation to every ancestor (NodeJoin envelopes),
/// rebuilds its class-accumulator state — a leaf re-bundles its local
/// samples; an internal node re-syncs from its reachable children's
/// checkpointed state, shipped as StateSync envelopes — then every
/// ancestor on the path to the root re-aggregates from its delivering
/// children's full checkpoints in one pass per hop. (A delta-lift would be
/// cheaper, but the projection's integer rescale truncates, so only a full
/// rebuild is bit-exact against the never-failed run.) Exact for the
/// aggregation state (initial training); perceptron retraining state is
/// NOT recovered — a later retraining round re-syncs it. Assumes the node was believed dead for the whole merge schedule, so
/// no ancestor holds any part of its contribution. Direct children whose
/// contributions were parked against the dead parent are unparked (the
/// rebuild consumed their full state). No-op when the node or its path to
/// the root is still believed down.
CommStats run_rejoin(const SessionContext& ctx, const TrainData& data,
                     net::NodeId rejoined, std::uint64_t incarnation);

/// Adaptive dimensionality (DESIGN.md §14): regenerate the k least
/// discriminating encoder dimensions and propagate the per-class deltas as
/// DimensionPatch envelopes instead of full ModelUpdates. In concatenation
/// mode the root scores its own model (every root dimension traces back to
/// exactly one leaf dimension) and requests flow top-down along delivering
/// links; in holographic mode each leaf with a live path to the root scores
/// itself. Leaves re-derive the flagged projection rows, re-encode exactly
/// those dimensions of their training samples, and the k-column delta
/// patches climb hop by hop, each ancestor lifting them through its
/// aggregator and applying them in place. Requires `data.raw`.
CommStats run_dimension_regeneration(const SessionContext& ctx,
                                     const TrainData& data, std::size_t k,
                                     std::uint32_t round);

/// Posts a NodeLeave from `node` to its parent (accounted like any other
/// envelope). Membership bookkeeping only — the detector, not this
/// announcement, decides when the node is treated as gone.
CommStats announce_leave(const SessionContext& ctx, net::NodeId node,
                         std::uint64_t incarnation, bool planned);

}  // namespace edgehd::proto
