// Versioned, length-prefixed wire envelopes for proto messages.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       2     magic "EP"
//   2       1     version (kProtoVersion)
//   3       1     message type (MsgType)
//   4       4     source node id
//   8       4     destination node id
//   12      4     payload length in bytes
//   16      ...   payload (type-specific, see messages.hpp)
//
// Payload encodings reuse the hdc wire conventions: bipolar hypervectors are
// bit-packed at 1 bit/dimension (hdc::pack_bipolar) and integer accumulators
// are bit-packed two's-complement at bits_for_magnitude() width — so an
// encoded payload is exactly wire_size(msg) bytes plus a small fixed
// dimension/width prefix.
//
// decode() is total: any truncated, corrupt or version-mismatched buffer
// yields a typed DecodeError (never UB, never an unbounded allocation). The
// corpus sweep in tests/test_proto.cpp pins this.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "messages.hpp"
#include "net/topology.hpp"

namespace edgehd::proto {

/// Current envelope version; decoding any other value is a typed error
/// (kBadVersion), which is how incompatible deployments fail closed.
inline constexpr std::uint8_t kProtoVersion = 1;

/// Fixed envelope header size in bytes.
inline constexpr std::size_t kHeaderSize = 16;

/// Dimensionality cap enforced during decode: a corrupt length field may
/// not drive an unbounded allocation.
inline constexpr std::size_t kMaxWireDim = std::size_t{1} << 24;

/// One addressed, typed message.
struct Envelope {
  std::uint8_t version = kProtoVersion;
  net::NodeId src = net::kNoNode;
  net::NodeId dst = net::kNoNode;
  Message msg;
};

/// Why a decode failed. kNone means success.
enum class DecodeError : std::uint8_t {
  kNone = 0,
  kTruncatedHeader,   ///< fewer than kHeaderSize bytes
  kBadMagic,          ///< first two bytes are not "EP"
  kBadVersion,        ///< version byte != kProtoVersion
  kBadType,           ///< type byte is not a known MsgType
  kLengthMismatch,    ///< header claims less payload than the buffer holds
  kTruncatedPayload,  ///< header claims more payload than the buffer holds
  kCorruptPayload,    ///< payload structure invalid (bad width, short body,
                      ///< out-of-range values, trailing bytes)
};

const char* to_string(DecodeError err) noexcept;

/// Result of a decode attempt; `envelope` is meaningful only when ok().
struct DecodeResult {
  Envelope envelope;
  DecodeError error = DecodeError::kNone;

  bool ok() const noexcept { return error == DecodeError::kNone; }
};

/// Serializes an envelope (header + typed payload).
std::vector<std::uint8_t> encode(const Envelope& env);

/// Parses an envelope with strict bounds checking. Every failure mode maps
/// to a DecodeError; the function never throws on malformed input and never
/// reads outside `buf`.
DecodeResult decode(std::span<const std::uint8_t> buf);

}  // namespace edgehd::proto
