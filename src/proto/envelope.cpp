#include "envelope.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "section_codec.hpp"
#include "wire_format.hpp"

namespace edgehd::proto {

namespace {

constexpr std::uint8_t kMagic0 = 'E';
constexpr std::uint8_t kMagic1 = 'P';

/// Decode-side rejection counter (stable: rejects are a deterministic
/// function of the inputs decoded).
const obs::Counter& decode_rejects() {
  static const obs::Counter c = [] {
    obs::Counter handle;
    if constexpr (obs::kEnabled) {
      handle = obs::MetricsRegistry::global().counter("proto.decode.rejected");
    }
    return handle;
  }();
  return c;
}

DecodeResult reject(DecodeError err) {
  decode_rejects().inc();
  DecodeResult r;
  r.error = err;
  return r;
}

// ---- accumulator payload: u32 dim, u8 bits, packed two's complement ------

void write_accum(ByteWriter& w, std::span<const std::int32_t> acc) {
  std::int64_t max_mag = 0;
  for (const std::int32_t v : acc) {
    max_mag = std::max<std::int64_t>(max_mag, std::llabs(v));
  }
  const std::uint32_t bits = hdc::bits_for_magnitude(max_mag);
  w.u32(static_cast<std::uint32_t>(acc.size()));
  w.u8(static_cast<std::uint8_t>(bits));
  std::uint64_t bitbuf = 0;
  unsigned filled = 0;
  const std::uint64_t mask = bits >= 64 ? ~std::uint64_t{0}
                                        : (std::uint64_t{1} << bits) - 1;
  for (const std::int32_t v : acc) {
    const auto enc =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(v)) & mask;
    bitbuf |= enc << filled;
    filled += bits;
    while (filled >= 8) {
      w.u8(static_cast<std::uint8_t>(bitbuf & 0xFF));
      bitbuf >>= 8;
      filled -= 8;
    }
  }
  if (filled > 0) w.u8(static_cast<std::uint8_t>(bitbuf & 0xFF));
}

bool read_accum(ByteReader& r, hdc::AccumHV& out) {
  std::uint32_t dim = 0;
  std::uint8_t bits = 0;
  if (!r.u32(dim) || !r.u8(bits)) return false;
  // bits_for_magnitude never emits fewer than 2 bits; int32 magnitudes fit
  // in 33 (sign + 32).
  if (bits < 2 || bits > 33) return false;
  if (dim > kMaxWireDim) return false;
  const std::uint64_t packed_bytes =
      (static_cast<std::uint64_t>(dim) * bits + 7) / 8;
  std::span<const std::uint8_t> body;
  if (!r.bytes(static_cast<std::size_t>(packed_bytes), body)) return false;
  out.assign(dim, 0);
  std::uint64_t bitbuf = 0;
  unsigned filled = 0;
  std::size_t next_byte = 0;
  const std::uint64_t sign_bit = std::uint64_t{1} << (bits - 1);
  for (std::uint32_t i = 0; i < dim; ++i) {
    while (filled < bits) {
      bitbuf |= static_cast<std::uint64_t>(body[next_byte++]) << filled;
      filled += 8;
    }
    const std::uint64_t mask = bits >= 64 ? ~std::uint64_t{0}
                                          : (std::uint64_t{1} << bits) - 1;
    std::uint64_t enc = bitbuf & mask;
    bitbuf >>= bits;
    filled -= bits;
    // Sign-extend from `bits` wide two's complement.
    if ((enc & sign_bit) != 0) enc |= ~mask;
    const auto wide = static_cast<std::int64_t>(enc);
    if (wide < INT32_MIN || wide > INT32_MAX) return false;
    out[i] = static_cast<std::int32_t>(wide);
  }
  // Pad bits in the final byte must be zero (strict canonical form).
  if (filled > 0 && bitbuf != 0) return false;
  return true;
}

// ---- bipolar payload: u32 dim, packed bits --------------------------------

void write_bipolar(ByteWriter& w, std::span<const std::int8_t> hv) {
  w.u32(static_cast<std::uint32_t>(hv.size()));
  const auto packed = hdc::pack_bipolar(hv);
  w.bytes(packed);
}

bool read_bipolar(ByteReader& r, hdc::BipolarHV& out) {
  std::uint32_t dim = 0;
  if (!r.u32(dim)) return false;
  if (dim > kMaxWireDim) return false;
  std::span<const std::uint8_t> body;
  if (!r.bytes(static_cast<std::size_t>(hdc::wire_bytes_bipolar(dim)), body)) {
    return false;
  }
  out = hdc::unpack_bipolar(body, dim);
  return true;
}

// ---- per-type payload codecs ---------------------------------------------

void write_payload(ByteWriter& w, const Message& msg) {
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ModelUpdate>) {
          w.u32(m.class_id);
          write_accum(w, m.accum);
        } else if constexpr (std::is_same_v<T, BatchUpdate>) {
          w.u32(m.class_id);
          w.u32(m.batch_id);
          write_accum(w, m.accum);
        } else if constexpr (std::is_same_v<T, ResidualMerge>) {
          w.u32(m.class_id);
          write_accum(w, m.residual);
        } else if constexpr (std::is_same_v<T, QueryEscalate>) {
          w.u64(m.query_id);
          w.u32(m.hops);
          write_bipolar(w, m.query);
        } else if constexpr (std::is_same_v<T, QueryReply>) {
          w.u64(m.query_id);
          w.u32(m.label);
          w.f64(m.confidence);
          w.u64(m.serving_node);
          w.u32(m.serving_level);
          w.u8(m.degraded);
        } else if constexpr (std::is_same_v<T, HealthProbe>) {
          w.u64(m.nonce);
          w.u64(m.sent_at);
          w.u64(m.incarnation);
          w.u64(m.suspects);
        } else if constexpr (std::is_same_v<T, NodeJoin>) {
          w.u64(m.incarnation);
        } else if constexpr (std::is_same_v<T, NodeLeave>) {
          w.u64(m.incarnation);
          w.u8(m.planned);
        } else if constexpr (std::is_same_v<T, StateSync>) {
          w.u32(m.class_id);
          w.u64(m.incarnation);
          write_accum(w, m.accum);
        } else if constexpr (std::is_same_v<T, ReducePartial>) {
          w.u8(m.phase);
          w.u32(m.origin);
          w.u32(static_cast<std::uint32_t>(m.sections.size()));
          for (const auto& s : m.sections) {
            w.u32(static_cast<std::uint32_t>(s.size()));
          }
          write_sections(w, m.sections);
        } else if constexpr (std::is_same_v<T, CollectivePlan>) {
          w.u8(m.phase);
          w.u8(m.algorithm);
          w.u32(m.chunk_lanes);
          w.u64(m.plan_id);
        } else {
          // DimensionPatch. Canonical form (enforced on decode): dims
          // strictly ascending; generations empty for the request form and
          // dims-sized for the patch form; one column per class, each
          // dims-sized.
          w.u32(m.round);
          w.u32(static_cast<std::uint32_t>(m.dims.size()));
          w.u32(static_cast<std::uint32_t>(m.generations.size()));
          w.u32(static_cast<std::uint32_t>(m.columns.size()));
          for (const std::uint32_t d : m.dims) w.u32(d);
          for (const std::uint16_t g : m.generations) w.u16(g);
          for (const auto& col : m.columns) write_accum(w, col);
        }
      },
      msg);
}

bool read_payload(ByteReader& r, MsgType type, Message& out) {
  switch (type) {
    case MsgType::kModelUpdate: {
      ModelUpdate m;
      if (!r.u32(m.class_id) || !read_accum(r, m.accum)) return false;
      out = std::move(m);
      return true;
    }
    case MsgType::kBatchUpdate: {
      BatchUpdate m;
      if (!r.u32(m.class_id) || !r.u32(m.batch_id) ||
          !read_accum(r, m.accum)) {
        return false;
      }
      out = std::move(m);
      return true;
    }
    case MsgType::kResidualMerge: {
      ResidualMerge m;
      if (!r.u32(m.class_id) || !read_accum(r, m.residual)) return false;
      out = std::move(m);
      return true;
    }
    case MsgType::kQueryEscalate: {
      QueryEscalate m;
      if (!r.u64(m.query_id) || !r.u32(m.hops) || !read_bipolar(r, m.query)) {
        return false;
      }
      out = std::move(m);
      return true;
    }
    case MsgType::kQueryReply: {
      QueryReply m;
      if (!r.u64(m.query_id) || !r.u32(m.label) || !r.f64(m.confidence) ||
          !r.u64(m.serving_node) || !r.u32(m.serving_level) ||
          !r.u8(m.degraded)) {
        return false;
      }
      out = m;
      return true;
    }
    case MsgType::kHealthProbe: {
      HealthProbe m;
      if (!r.u64(m.nonce) || !r.u64(m.sent_at) || !r.u64(m.incarnation) ||
          !r.u64(m.suspects)) {
        return false;
      }
      out = m;
      return true;
    }
    case MsgType::kNodeJoin: {
      NodeJoin m;
      if (!r.u64(m.incarnation)) return false;
      out = m;
      return true;
    }
    case MsgType::kNodeLeave: {
      NodeLeave m;
      if (!r.u64(m.incarnation) || !r.u8(m.planned)) return false;
      out = m;
      return true;
    }
    case MsgType::kStateSync: {
      StateSync m;
      if (!r.u32(m.class_id) || !r.u64(m.incarnation) ||
          !read_accum(r, m.accum)) {
        return false;
      }
      out = std::move(m);
      return true;
    }
    case MsgType::kReducePartial: {
      ReducePartial m;
      std::uint32_t count = 0;
      if (!r.u8(m.phase) || !r.u32(m.origin) || !r.u32(count)) return false;
      if (count > kMaxWireDim) return false;
      // Dims are framing; their sum is capped like a single accumulator's
      // dim so a corrupt count can never drive a huge allocation.
      std::vector<std::uint32_t> dims;
      std::uint64_t total_lanes = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t dim = 0;
        if (!r.u32(dim)) return false;
        if (dim > kMaxWireDim) return false;
        total_lanes += dim;
        if (total_lanes > kMaxWireDim) return false;
        dims.push_back(dim);
      }
      if (!read_sections(r, dims, m.sections)) return false;
      out = std::move(m);
      return true;
    }
    case MsgType::kCollectivePlan: {
      CollectivePlan m;
      if (!r.u8(m.phase) || !r.u8(m.algorithm) || !r.u32(m.chunk_lanes) ||
          !r.u64(m.plan_id)) {
        return false;
      }
      out = m;
      return true;
    }
    case MsgType::kDimensionPatch: {
      DimensionPatch m;
      std::uint32_t ndims = 0;
      std::uint32_t ngens = 0;
      std::uint32_t ncols = 0;
      if (!r.u32(m.round) || !r.u32(ndims) || !r.u32(ngens) || !r.u32(ncols)) {
        return false;
      }
      if (ndims > kMaxWireDim || ncols > kMaxWireDim) return false;
      // Canonical: a request carries no generations/columns, a patch carries
      // one generation per dim and one dims-sized column per class.
      if (ngens != (ncols != 0 ? ndims : 0)) return false;
      if (ncols != 0 &&
          static_cast<std::uint64_t>(ncols) * ndims > kMaxWireDim) {
        return false;
      }
      m.dims.resize(ndims);
      for (std::uint32_t i = 0; i < ndims; ++i) {
        if (!r.u32(m.dims[i])) return false;
        if (i > 0 && m.dims[i] <= m.dims[i - 1]) return false;  // ascending
      }
      m.generations.resize(ngens);
      for (std::uint32_t i = 0; i < ngens; ++i) {
        if (!r.u16(m.generations[i])) return false;
      }
      m.columns.resize(ncols);
      for (std::uint32_t c = 0; c < ncols; ++c) {
        if (!read_accum(r, m.columns[c])) return false;
        if (m.columns[c].size() != ndims) return false;
      }
      out = std::move(m);
      return true;
    }
  }
  return false;
}

}  // namespace

const char* to_string(DecodeError err) noexcept {
  switch (err) {
    case DecodeError::kNone:
      return "none";
    case DecodeError::kTruncatedHeader:
      return "truncated_header";
    case DecodeError::kBadMagic:
      return "bad_magic";
    case DecodeError::kBadVersion:
      return "bad_version";
    case DecodeError::kBadType:
      return "bad_type";
    case DecodeError::kLengthMismatch:
      return "length_mismatch";
    case DecodeError::kTruncatedPayload:
      return "truncated_payload";
    case DecodeError::kCorruptPayload:
      return "corrupt_payload";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode(const Envelope& env) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u8(kMagic0);
  w.u8(kMagic1);
  w.u8(env.version);
  w.u8(static_cast<std::uint8_t>(type_of(env.msg)));
  w.u32(static_cast<std::uint32_t>(env.src));
  w.u32(static_cast<std::uint32_t>(env.dst));
  w.u32(0);  // payload length, patched below
  write_payload(w, env.msg);
  const auto payload_len = static_cast<std::uint32_t>(out.size() - kHeaderSize);
  for (int i = 0; i < 4; ++i) {
    out[12 + i] = static_cast<std::uint8_t>(payload_len >> (8 * i));
  }
  return out;
}

DecodeResult decode(std::span<const std::uint8_t> buf) {
  ByteReader r(buf);
  std::uint8_t m0 = 0;
  std::uint8_t m1 = 0;
  std::uint8_t version = 0;
  std::uint8_t type_byte = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t payload_len = 0;
  if (!r.u8(m0) || !r.u8(m1) || !r.u8(version) || !r.u8(type_byte) ||
      !r.u32(src) || !r.u32(dst) || !r.u32(payload_len)) {
    return reject(DecodeError::kTruncatedHeader);
  }
  if (m0 != kMagic0 || m1 != kMagic1) return reject(DecodeError::kBadMagic);
  if (version != kProtoVersion) return reject(DecodeError::kBadVersion);
  if (type_byte < static_cast<std::uint8_t>(MsgType::kModelUpdate) ||
      type_byte > static_cast<std::uint8_t>(MsgType::kDimensionPatch)) {
    return reject(DecodeError::kBadType);
  }
  if (payload_len > r.remaining()) {
    return reject(DecodeError::kTruncatedPayload);
  }
  if (payload_len < r.remaining()) {
    return reject(DecodeError::kLengthMismatch);
  }
  std::span<const std::uint8_t> payload;
  r.bytes(payload_len, payload);  // cannot fail: length checked above
  ByteReader pr(payload);
  DecodeResult result;
  if (!read_payload(pr, static_cast<MsgType>(type_byte), result.envelope.msg)) {
    return reject(DecodeError::kCorruptPayload);
  }
  if (!pr.empty()) return reject(DecodeError::kCorruptPayload);
  result.envelope.version = version;
  result.envelope.src = src;
  result.envelope.dst = dst;
  return result;
}

}  // namespace edgehd::proto
