#include "node_runtime.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace edgehd::proto {

using hdc::AccumHV;

void NodeRuntime::init(net::NodeId id, const net::Topology& topology,
                       std::size_t dim, std::size_t num_classes) {
  id_ = id;
  topology_ = &topology;
  dim_ = dim;
  num_classes_ = num_classes;
  incarnations_.assign(topology.num_nodes(), 0);
  if (topology.is_leaf(id)) {
    role_ = Role::kLeaf;
  } else if (id == topology.root()) {
    role_ = Role::kCentral;
  } else {
    role_ = Role::kGateway;
  }
}

void NodeRuntime::install_leaf_encoder(std::unique_ptr<hdc::Encoder> enc) {
  leaf_encoder_ = std::move(enc);
}

void NodeRuntime::install_aggregator(std::unique_ptr<hier::HierEncoder> agg) {
  aggregator_ = std::move(agg);
}

void NodeRuntime::install_classifier(std::unique_ptr<hdc::HDClassifier> clf) {
  classifier_ = std::move(clf);
}

const hdc::HDClassifier& NodeRuntime::classifier() const {
  if (classifier_ == nullptr) {
    throw std::invalid_argument("NodeRuntime: node hosts no classifier");
  }
  return *classifier_;
}

hdc::HDClassifier& NodeRuntime::classifier() {
  if (classifier_ == nullptr) {
    throw std::invalid_argument("NodeRuntime: node hosts no classifier");
  }
  return *classifier_;
}

const hdc::Encoder& NodeRuntime::leaf_encoder() const {
  if (leaf_encoder_ == nullptr) {
    throw std::invalid_argument("NodeRuntime: node hosts no leaf encoder");
  }
  return *leaf_encoder_;
}

const hier::HierEncoder& NodeRuntime::aggregator() const {
  if (aggregator_ == nullptr) {
    throw std::invalid_argument("NodeRuntime: node hosts no aggregator");
  }
  return *aggregator_;
}

hdc::Prediction NodeRuntime::predict(
    std::span<const std::int8_t> query) const {
  return classifier().predict(query);
}

// ---- envelope consumption ---------------------------------------------------

std::size_t NodeRuntime::child_index(net::NodeId child) const {
  const auto& kids = topology_->children(id_);
  const auto it = std::find(kids.begin(), kids.end(), child);
  if (it == kids.end()) {
    throw std::logic_error("NodeRuntime: envelope from a non-child node " +
                           std::to_string(child));
  }
  return static_cast<std::size_t>(it - kids.begin());
}

std::size_t NodeRuntime::child_dim(std::size_t child_idx) const {
  return aggregator().child_dims()[child_idx];
}

void NodeRuntime::require_phase(Phase expected, const char* what) const {
  if (phase_ != expected) {
    throw std::logic_error(std::string("NodeRuntime: ") + what +
                           " delivered outside its protocol phase");
  }
}

void NodeRuntime::on_envelope(const Envelope& env) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ModelUpdate>) {
          if (phase_ != Phase::kInitialTraining &&
              phase_ != Phase::kReintegration) {
            require_phase(Phase::kInitialTraining, "ModelUpdate");
          }
          if (m.class_id >= num_classes_) {
            throw std::logic_error("NodeRuntime: ModelUpdate class id out of "
                                   "range");
          }
          inbox_[child_index(env.src)][m.class_id] = m.accum;
        } else if constexpr (std::is_same_v<T, BatchUpdate>) {
          require_phase(Phase::kBatchRetraining, "BatchUpdate");
          if (m.class_id >= num_classes_) {
            throw std::logic_error("NodeRuntime: BatchUpdate class id out of "
                                   "range");
          }
          auto& slot = batch_inbox_[child_index(env.src)][m.class_id];
          if (m.batch_id >= slot.size()) {
            throw std::logic_error("NodeRuntime: BatchUpdate batch id out of "
                                   "range");
          }
          slot[m.batch_id] = m.accum;
        } else if constexpr (std::is_same_v<T, ResidualMerge>) {
          require_phase(Phase::kResidualPropagation, "ResidualMerge");
          if (m.class_id >= num_classes_) {
            throw std::logic_error("NodeRuntime: ResidualMerge class id out "
                                   "of range");
          }
          inbox_[child_index(env.src)][m.class_id] = m.residual;
          residual_any_child_ = true;
        } else if constexpr (std::is_same_v<T, HealthProbe>) {
          ++probes_received_;
        } else if constexpr (std::is_same_v<T, NodeJoin>) {
          // Membership announcements advance the runtime's view of the
          // sender's generation; the session layer owns what to do about it.
          if (env.src < incarnations_.size() &&
              m.incarnation > incarnations_[env.src]) {
            incarnations_[env.src] = m.incarnation;
          }
          ++joins_received_;
        } else if constexpr (std::is_same_v<T, NodeLeave>) {
          ++leaves_received_;
        } else if constexpr (std::is_same_v<T, StateSync>) {
          // A rejoin delta: same linear object as a ModelUpdate, but tagged
          // with the sender's incarnation — a sync from a superseded life
          // of the node is a protocol violation. Accepted while rebuilding
          // (initial training) and while lifting hop by hop (reintegration).
          if (phase_ != Phase::kInitialTraining &&
              phase_ != Phase::kReintegration) {
            require_phase(Phase::kReintegration, "StateSync");
          }
          if (m.class_id >= num_classes_) {
            throw std::logic_error("NodeRuntime: StateSync class id out of "
                                   "range");
          }
          if (env.src < incarnations_.size() &&
              m.incarnation < incarnations_[env.src]) {
            throw std::logic_error("NodeRuntime: StateSync from a superseded "
                                   "incarnation");
          }
          inbox_[child_index(env.src)][m.class_id] = m.accum;
        } else if constexpr (std::is_same_v<T, ReducePartial>) {
          // A fused frame: the sender's entire per-phase contribution in one
          // envelope. Training phases scatter the sections into the same
          // inboxes the per-message path fills — downstream aggregation is
          // shared, which is what makes the two schedules bit-identical.
          if (m.phase == kReduceInitial) {
            require_phase(Phase::kInitialTraining, "ReducePartial(initial)");
            if (m.sections.size() != num_classes_) {
              throw std::logic_error(
                  "NodeRuntime: ReducePartial(initial) section count != "
                  "num_classes");
            }
            auto& slot = inbox_[child_index(env.src)];
            for (std::size_t c = 0; c < num_classes_; ++c) {
              slot[c] = m.sections[c];
            }
          } else if (m.phase == kReduceBatch) {
            require_phase(Phase::kBatchRetraining, "ReducePartial(batch)");
            auto& slot = batch_inbox_[child_index(env.src)];
            std::size_t expected = 0;
            for (std::size_t c = 0; c < num_classes_; ++c) {
              expected += slot[c].size();
            }
            if (m.sections.size() != expected) {
              throw std::logic_error(
                  "NodeRuntime: ReducePartial(batch) section count != total "
                  "batches");
            }
            // Class-major, batch-ascending — the order the p2p path posts.
            std::size_t s = 0;
            for (std::size_t c = 0; c < num_classes_; ++c) {
              for (std::size_t b = 0; b < slot[c].size(); ++b) {
                slot[c][b] = m.sections[s++];
              }
            }
          } else if (m.phase == kReduceGatewaySync ||
                     m.phase == kReduceBroadcast) {
            // Chunk relays / model broadcasts are phase-independent data
            // motion; the collective primitive driving them drains this.
            collective_frames_.push_back(
                {static_cast<net::NodeId>(m.origin), m.sections});
          } else {
            throw std::logic_error(
                "NodeRuntime: ReducePartial with unknown collective phase");
          }
        } else if constexpr (std::is_same_v<T, CollectivePlan>) {
          last_plan_ = m;
          ++plans_received_;
        } else if constexpr (std::is_same_v<T, DimensionPatch>) {
          require_phase(Phase::kDimensionRegen, "DimensionPatch");
          if (m.is_request()) {
            // Parent -> child assignment. Checked before child_index: a
            // request legitimately arrives from the parent link.
            if (env.src != topology_->parent(id_)) {
              throw std::logic_error(
                  "NodeRuntime: DimensionPatch request from a non-parent "
                  "node " +
                  std::to_string(env.src));
            }
            for (std::uint32_t d : m.dims) {
              if (d >= dim_) {
                throw std::logic_error(
                    "NodeRuntime: DimensionPatch request dim out of range");
              }
            }
            regen_request_ = m.dims;
            regen_round_ = m.round;
          } else {
            const std::size_t ci = child_index(env.src);
            if (m.columns.size() != num_classes_) {
              throw std::logic_error(
                  "NodeRuntime: DimensionPatch column count != num_classes");
            }
            const std::size_t cd = child_dim(ci);
            for (std::uint32_t d : m.dims) {
              if (d >= cd) {
                throw std::logic_error(
                    "NodeRuntime: DimensionPatch dim out of child range");
              }
            }
            patch_inbox_[ci] = m;
          }
        } else {
          // QueryEscalate / QueryReply: query walks are handled reentrantly
          // by routing.hpp; a copy arriving over a transport bus is only
          // observed.
          ++queries_received_;
        }
      },
      env.msg);
}

std::vector<NodeRuntime::CollectiveFrame>
NodeRuntime::take_collective_frames() {
  return std::exchange(collective_frames_, {});
}

std::vector<AccumHV> NodeRuntime::checkpoint_state() const {
  if (classifier_ != nullptr) {
    std::vector<AccumHV> out(num_classes_);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      out[c] = classifier_->class_accumulator(c);
    }
    return out;
  }
  return own_accums_;
}

hdc::AccumHV NodeRuntime::aggregate_inbox(std::size_t c) const {
  const auto& kids = topology_->children(id_);
  std::vector<AccumHV> slots(kids.size());
  for (std::size_t ci = 0; ci < kids.size(); ++ci) {
    slots[ci] = inbox_[ci][c].empty() ? AccumHV(child_dim(ci), 0)
                                      : inbox_[ci][c];
  }
  return aggregator().aggregate_accum(slots);
}

// ---- initial training -------------------------------------------------------

void NodeRuntime::begin_initial_training() {
  phase_ = Phase::kInitialTraining;
  own_accums_.clear();
  if (role_ != Role::kLeaf) {
    inbox_.assign(topology_->children(id_).size(),
                  std::vector<AccumHV>(num_classes_));
  }
}

const std::vector<AccumHV>& NodeRuntime::finish_initial_training(
    std::span<const hdc::BipolarHV> samples,
    std::span<const std::size_t> labels) {
  require_phase(Phase::kInitialTraining, "finish_initial_training");
  own_accums_.assign(num_classes_, AccumHV(dim_, 0));
  if (role_ == Role::kLeaf) {
    for (std::size_t s = 0; s < samples.size(); ++s) {
      hdc::bundle_into(own_accums_[labels[s]], samples[s]);
    }
  } else {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      own_accums_[c] = aggregate_inbox(c);
    }
  }
  if (classifier_ != nullptr) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      classifier_->set_class_accumulator(c, own_accums_[c]);
    }
  }
  inbox_.clear();
  phase_ = Phase::kIdle;
  return own_accums_;
}

// ---- batch retraining -------------------------------------------------------

void NodeRuntime::begin_batch_retraining(const ClassBatches& batches) {
  phase_ = Phase::kBatchRetraining;
  batches_ = &batches;
  own_batches_.clear();
  if (role_ != Role::kLeaf) {
    batch_inbox_.assign(topology_->children(id_).size(), {});
    for (auto& per_child : batch_inbox_) {
      per_child.resize(num_classes_);
      for (std::size_t c = 0; c < num_classes_; ++c) {
        per_child[c].resize(batches[c].size());
      }
    }
  }
}

const std::vector<std::vector<AccumHV>>& NodeRuntime::finish_batch_retraining(
    std::span<const hdc::BipolarHV> samples,
    std::span<const std::size_t> labels) {
  require_phase(Phase::kBatchRetraining, "finish_batch_retraining");
  const ClassBatches& batches = *batches_;
  own_batches_.assign(num_classes_, {});
  if (role_ == Role::kLeaf) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      for (const auto& batch : batches[c]) {
        AccumHV acc(dim_, 0);
        for (std::size_t s : batch) hdc::bundle_into(acc, samples[s]);
        own_batches_[c].push_back(std::move(acc));
      }
    }
  } else {
    const auto& kids = topology_->children(id_);
    std::vector<AccumHV> slots(kids.size());
    for (std::size_t c = 0; c < num_classes_; ++c) {
      for (std::size_t b = 0; b < batches[c].size(); ++b) {
        for (std::size_t ci = 0; ci < kids.size(); ++ci) {
          slots[ci] = batch_inbox_[ci][c][b].empty()
                          ? AccumHV(child_dim(ci), 0)
                          : batch_inbox_[ci][c][b];
        }
        own_batches_[c].push_back(aggregator().aggregate_accum(slots));
      }
    }
  }

  if (classifier_ != nullptr) {
    if (role_ == Role::kLeaf) {
      // End nodes retrain on their own per-sample encodings; batching only
      // matters for what crosses the network. Serial pass — bit-identity
      // with the protocol's reference behaviour is part of the contract.
      classifier_->retrain(samples, labels);
    } else {
      std::vector<hdc::BipolarHV> hvs;
      std::vector<std::size_t> batch_labels;
      for (std::size_t c = 0; c < num_classes_; ++c) {
        for (const auto& acc : own_batches_[c]) {
          hvs.push_back(hdc::binarize(acc));
          batch_labels.push_back(c);
        }
      }
      classifier_->retrain(hvs, batch_labels);
    }
  }
  batch_inbox_.clear();
  batches_ = nullptr;
  phase_ = Phase::kIdle;
  return own_batches_;
}

// ---- residual propagation ---------------------------------------------------

void NodeRuntime::begin_residual_propagation() {
  phase_ = Phase::kResidualPropagation;
  residual_any_child_ = false;
  if (role_ != Role::kLeaf) {
    inbox_.assign(topology_->children(id_).size(),
                  std::vector<AccumHV>(num_classes_));
  }
}

std::vector<AccumHV> NodeRuntime::finish_residual_propagation() {
  require_phase(Phase::kResidualPropagation, "finish_residual_propagation");
  std::vector<AccumHV> total(num_classes_, AccumHV(dim_, 0));
  if (residual_any_child_) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      total[c] = aggregate_inbox(c);
    }
  }
  if (classifier_ != nullptr) {
    auto own = classifier_->take_residuals();
    for (std::size_t c = 0; c < num_classes_; ++c) {
      hdc::accumulate(total[c], own[c]);
    }
    // Figure 5b step (2): update this node's model with everything known
    // here — its own residuals plus the children's, re-encoded.
    bool zero = true;
    for (const auto& a : total) {
      for (std::int32_t v : a) {
        if (v != 0) {
          zero = false;
          break;
        }
      }
      if (!zero) break;
    }
    if (!zero) classifier_->apply_external_residuals(total);
  }
  inbox_.clear();
  phase_ = Phase::kIdle;
  return total;
}

// ---- straggler reintegration ------------------------------------------------

void NodeRuntime::begin_reintegration() {
  phase_ = Phase::kReintegration;
  inbox_.assign(topology_->children(id_).size(),
                std::vector<AccumHV>(num_classes_));
}

std::vector<AccumHV> NodeRuntime::finish_reintegration(net::NodeId child) {
  require_phase(Phase::kReintegration, "finish_reintegration");
  const std::size_t ci = child_index(child);
  const auto& kids = topology_->children(id_);
  // Lift the delta through this node's aggregator: zeros in every slot but
  // the reintegrating child's. The hierarchical encoding is linear (up to
  // its integer rescale), so adding the lifted delta to the class
  // accumulators is what aggregating the full contribution would have
  // produced.
  std::vector<AccumHV> slots(kids.size());
  std::vector<AccumHV> delta(num_classes_);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    for (std::size_t cj = 0; cj < kids.size(); ++cj) {
      slots[cj] = cj == ci && !inbox_[ci][c].empty()
                      ? inbox_[ci][c]
                      : AccumHV(child_dim(cj), 0);
    }
    delta[c] = aggregator().aggregate_accum(slots);
  }
  if (classifier_ != nullptr) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      AccumHV acc = classifier_->class_accumulator(c);
      hdc::accumulate(acc, delta[c]);
      classifier_->set_class_accumulator(c, std::move(acc));
    }
  }
  inbox_.clear();
  phase_ = Phase::kIdle;
  return delta;
}

// ---- adaptive dimensionality ------------------------------------------------

void NodeRuntime::begin_dimension_regen(std::uint32_t round) {
  phase_ = Phase::kDimensionRegen;
  regen_round_ = round;
  regen_request_.clear();
  patch_inbox_.assign(
      role_ == Role::kLeaf ? 0 : topology_->children(id_).size(),
      DimensionPatch{});
}

void NodeRuntime::set_regen_request(std::vector<std::uint32_t> dims) {
  require_phase(Phase::kDimensionRegen, "set_regen_request");
  for (std::uint32_t d : dims) {
    if (d >= dim_) {
      throw std::logic_error("NodeRuntime: regen request dim out of range");
    }
  }
  regen_request_ = std::move(dims);
}

DimensionPatch NodeRuntime::finish_dimension_regen_leaf(
    std::span<const float> raw_features,
    std::span<const hdc::BipolarHV> encoded,
    std::span<const std::size_t> labels) {
  require_phase(Phase::kDimensionRegen, "finish_dimension_regen_leaf");
  if (role_ != Role::kLeaf) {
    throw std::logic_error(
        "NodeRuntime: finish_dimension_regen_leaf on an internal node");
  }
  DimensionPatch out;
  out.round = regen_round_;
  if (regen_request_.empty()) {
    phase_ = Phase::kIdle;
    return out;
  }
  hdc::Encoder& enc = *leaf_encoder_;
  const std::size_t k = regen_request_.size();
  const std::size_t in = enc.input_dim();
  if (!encoded.empty() && raw_features.size() != encoded.size() * in) {
    throw std::invalid_argument(
        "NodeRuntime: raw feature slice does not match encoded samples");
  }

  enc.regenerate_dimensions(regen_request_);
  out.dims = regen_request_;

  // Per-class delta of exactly the regenerated dimensions: the new partial
  // encoding minus the old components, summed over this leaf's samples.
  out.columns.assign(num_classes_, AccumHV(k, 0));
  std::vector<std::int8_t> fresh(k);
  for (std::size_t s = 0; s < encoded.size(); ++s) {
    enc.encode_dims(raw_features.subspan(s * in, in), out.dims, fresh);
    AccumHV& col = out.columns[labels[s]];
    for (std::size_t j = 0; j < k; ++j) {
      col[j] += fresh[j] - encoded[s][out.dims[j]];
    }
  }
  out.generations.resize(k);
  for (std::size_t j = 0; j < k; ++j) {
    out.generations[j] = enc.dimension_generation(out.dims[j]);
  }

  if (!own_accums_.empty()) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      for (std::size_t j = 0; j < k; ++j) {
        own_accums_[c][out.dims[j]] += out.columns[c][j];
      }
    }
  }
  if (classifier_ != nullptr) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      classifier_->add_to_dimensions(c, out.dims, out.columns[c]);
    }
  }
  regen_request_.clear();
  phase_ = Phase::kIdle;
  return out;
}

DimensionPatch NodeRuntime::finish_dimension_regen_internal() {
  require_phase(Phase::kDimensionRegen, "finish_dimension_regen_internal");
  if (role_ == Role::kLeaf) {
    throw std::logic_error(
        "NodeRuntime: finish_dimension_regen_internal on a leaf");
  }
  DimensionPatch out;
  out.round = regen_round_;
  const auto& kids = topology_->children(id_);
  const auto& cdims = aggregator().child_dims();
  std::vector<std::size_t> offs(kids.size() + 1, 0);
  for (std::size_t ci = 0; ci < kids.size(); ++ci) {
    offs[ci + 1] = offs[ci] + cdims[ci];
  }
  bool any = false;
  for (const auto& p : patch_inbox_) {
    if (!p.dims.empty()) {
      any = true;
      break;
    }
  }
  if (!any) {
    patch_inbox_.clear();
    regen_request_.clear();
    phase_ = Phase::kIdle;
    return out;
  }

  // Lift each class's sparse child deltas through the aggregator: the child
  // columns scatter into the concatenated input (zeros where a child did not
  // patch), and the projection — linear — maps the delta exactly as it would
  // have mapped the full re-contribution.
  std::vector<AccumHV> lifted(num_classes_);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    AccumHV concat(aggregator().in_dim(), 0);
    for (std::size_t ci = 0; ci < kids.size(); ++ci) {
      const DimensionPatch& p = patch_inbox_[ci];
      for (std::size_t j = 0; j < p.dims.size(); ++j) {
        concat[offs[ci] + p.dims[j]] = p.columns[c][j];
      }
    }
    lifted[c] = aggregator().project(concat);
  }

  if (aggregator().mode() == hier::AggregationMode::kConcatenation) {
    // Child dims map 1:1 into this node's space (children in order, each
    // patch ascending), so the merged dims stay ascending and generation
    // counters ride along.
    for (std::size_t ci = 0; ci < kids.size(); ++ci) {
      const DimensionPatch& p = patch_inbox_[ci];
      for (std::size_t j = 0; j < p.dims.size(); ++j) {
        out.dims.push_back(static_cast<std::uint32_t>(offs[ci]) + p.dims[j]);
        out.generations.push_back(
            j < p.generations.size() ? p.generations[j] : 0);
      }
    }
  } else {
    // Holographic: each output dimension mixes many inputs; keep the dims
    // whose lifted delta is non-zero in any class and zero the generations
    // (no single source row's counter applies to a mixed dimension).
    for (std::size_t d = 0; d < dim_; ++d) {
      bool nz = false;
      for (std::size_t c = 0; c < num_classes_ && !nz; ++c) {
        nz = lifted[c][d] != 0;
      }
      if (nz) out.dims.push_back(static_cast<std::uint32_t>(d));
    }
    out.generations.assign(out.dims.size(), 0);
  }

  out.columns.assign(num_classes_, AccumHV(out.dims.size(), 0));
  for (std::size_t c = 0; c < num_classes_; ++c) {
    for (std::size_t j = 0; j < out.dims.size(); ++j) {
      out.columns[c][j] = lifted[c][out.dims[j]];
    }
  }

  if (!own_accums_.empty()) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      for (std::size_t j = 0; j < out.dims.size(); ++j) {
        own_accums_[c][out.dims[j]] += out.columns[c][j];
      }
    }
  }
  if (classifier_ != nullptr) {
    for (std::size_t c = 0; c < num_classes_; ++c) {
      classifier_->add_to_dimensions(c, out.dims, out.columns[c]);
    }
  }
  patch_inbox_.clear();
  regen_request_.clear();
  phase_ = Phase::kIdle;
  return out;
}

}  // namespace edgehd::proto
