// Typed message schema of the EdgeHD protocols (paper Sections IV-B/C/D).
//
// Everything that crosses a link in the hierarchy is one of these messages:
//
//   ModelUpdate    — one class hypervector shipped child -> parent during
//                    initial training (and straggler reintegration);
//   BatchUpdate    — one per-class batch hypervector of size B shipped
//                    child -> parent during batch retraining;
//   ResidualMerge  — one class residual hypervector propagated upward by the
//                    online-updating protocol (Figure 5b);
//   QueryEscalate  — a query hypervector escalating to an ancestor
//                    classifier during routed inference;
//   QueryReply     — the serving node's answer travelling back to the
//                    query's origin;
//   HealthProbe    — a periodic liveness heartbeat carrying the sender's
//                    incarnation and suspicion set (the failure detector's
//                    only input — see net/detector.hpp);
//   NodeJoin       — a (re)joining node announcing itself with a fresh
//                    incarnation;
//   NodeLeave      — a node's departure being recorded (planned shutdown or
//                    a detector's death declaration);
//   StateSync      — one class accumulator re-synced during the rejoin
//                    session (the reintegration delta, tagged with the
//                    rejoiner's incarnation so stale syncs are rejected);
//   ReducePartial  — a node's entire per-phase contribution fused into one
//                    frame and entropy-coded as a unit (collective
//                    schedules, see collective.hpp and section_codec.hpp);
//   CollectivePlan — the cost model's per-phase algorithm announcement
//                    broadcast down the tree before a collective phase.
//
// This header also owns the *canonical byte accounting*: wire_size() is the
// single source of truth for what a message costs on the air — the quantity
// every CommStats total and the analytic cost model normalize against. The
// helpers below replace the per-phase copies that used to live in
// core/edgehd.cpp, core/cost_model.cpp and bench/bench_faults.cpp.
#pragma once

#include <cstdint>
#include <variant>

#include "hdc/hypervector.hpp"
#include "hdc/wire.hpp"

namespace edgehd::proto {

/// Wire discriminator of a message (one byte in the envelope header).
enum class MsgType : std::uint8_t {
  kModelUpdate = 1,
  kBatchUpdate = 2,
  kResidualMerge = 3,
  kQueryEscalate = 4,
  kQueryReply = 5,
  kHealthProbe = 6,
  kNodeJoin = 7,
  kNodeLeave = 8,
  kStateSync = 9,
  kReducePartial = 10,
  kCollectivePlan = 11,
  kDimensionPatch = 12,
};

/// Human-readable message-type name ("model_update", ...); also the label
/// used by the per-type "proto.<name>.*" metrics.
const char* to_string(MsgType type) noexcept;

/// One class hypervector moving child -> parent (initial training; also the
/// straggler-reintegration delta, which is the same linear object).
struct ModelUpdate {
  std::uint32_t class_id = 0;
  hdc::AccumHV accum;

  friend bool operator==(const ModelUpdate&, const ModelUpdate&) = default;
};

/// One per-class batch hypervector (batch retraining, Section IV-B).
struct BatchUpdate {
  std::uint32_t class_id = 0;
  std::uint32_t batch_id = 0;
  hdc::AccumHV accum;

  friend bool operator==(const BatchUpdate&, const BatchUpdate&) = default;
};

/// One class residual hypervector (online updating, Section IV-D).
struct ResidualMerge {
  std::uint32_t class_id = 0;
  hdc::AccumHV residual;

  friend bool operator==(const ResidualMerge&, const ResidualMerge&) = default;
};

/// A query hypervector escalating to an ancestor classifier (Section IV-C).
/// The payload is the query as encoded *at the destination node* — in a real
/// deployment the higher node re-aggregates the gathered query into its own
/// hypervector space before searching.
struct QueryEscalate {
  std::uint64_t query_id = 0;
  std::uint32_t hops = 0;  ///< escalations taken so far
  hdc::BipolarHV query;

  friend bool operator==(const QueryEscalate&, const QueryEscalate&) = default;
};

/// The serving node's verdict, returned to the query's origin.
struct QueryReply {
  std::uint64_t query_id = 0;
  std::uint32_t label = 0;
  double confidence = 0.0;
  std::uint64_t serving_node = 0;
  std::uint32_t serving_level = 0;
  std::uint8_t degraded = 0;

  friend bool operator==(const QueryReply&, const QueryReply&) = default;
};

/// Periodic liveness heartbeat. Beyond the transport diagnostics of PR 5
/// (nonce + timestamp) it now carries the failure-detection payload: the
/// sender's incarnation (bumped every time it returns from the dead, so a
/// receiver can tell a rejoin from a late packet) and the sender's current
/// suspicion set as a bitmask (node i suspected => bit i; nodes >= 64 are
/// never gossiped — direct edge evidence still covers them).
struct HealthProbe {
  std::uint64_t nonce = 0;
  std::uint64_t sent_at = 0;     ///< sender-side timestamp (virtual time)
  std::uint64_t incarnation = 0; ///< sender's membership generation
  std::uint64_t suspects = 0;    ///< gossip: bitmask of suspected node ids

  friend bool operator==(const HealthProbe&, const HealthProbe&) = default;
};

/// A (re)joining node announcing itself. `incarnation` is strictly greater
/// than any the cluster has seen from this node, which is what lets
/// receivers discard in-flight state from its previous life.
struct NodeJoin {
  std::uint64_t incarnation = 0;

  friend bool operator==(const NodeJoin&, const NodeJoin&) = default;
};

/// A departure record: either a planned shutdown announced by the node
/// itself or a detector's death declaration recorded on its behalf.
struct NodeLeave {
  std::uint64_t incarnation = 0;
  std::uint8_t planned = 0;  ///< 1 = graceful, 0 = declared dead

  friend bool operator==(const NodeLeave&, const NodeLeave&) = default;
};

/// One class accumulator re-synced during a rejoin session. The same linear
/// object as a ModelUpdate delta, tagged with the rejoiner's incarnation so
/// an ancestor can reject a sync from a superseded life of the node.
struct StateSync {
  std::uint32_t class_id = 0;
  std::uint64_t incarnation = 0;
  hdc::AccumHV accum;

  friend bool operator==(const StateSync&, const StateSync&) = default;
};

// ---- collective schedule messages -----------------------------------------

/// ReducePartial::phase values: which session (or primitive) a fused frame
/// belongs to. Phases 0/1 scatter into the receiver's training inboxes;
/// phases 2/3 land in the phase-independent collective inbox.
inline constexpr std::uint8_t kReduceInitial = 0;   ///< initial training
inline constexpr std::uint8_t kReduceBatch = 1;     ///< batch retraining
inline constexpr std::uint8_t kReduceGatewaySync = 2;  ///< all-reduce chunk
inline constexpr std::uint8_t kReduceBroadcast = 3;    ///< model broadcast

/// A node's entire per-phase contribution — every class accumulator (initial
/// training), every per-class batch accumulator (retraining), or an
/// all-reduce chunk / broadcast model set — fused into one frame whose
/// sections are entropy-coded as a unit by the section codec. `origin` is
/// the original contributor; a relay hop keeps it while the envelope src
/// tracks the physical sender.
struct ReducePartial {
  std::uint8_t phase = kReduceInitial;
  std::uint32_t origin = 0;
  std::vector<hdc::AccumHV> sections;

  friend bool operator==(const ReducePartial&, const ReducePartial&) = default;
};

/// The cost model's verdict for one phase, announced down the tree before a
/// collective phase runs so every participant applies the same schedule.
/// `algorithm` is a collective::CollectiveAlgo value; `chunk_lanes` is the
/// ring chunk override (0 = even split); `plan_id` ties the announcement to
/// the phase that follows it.
struct CollectivePlan {
  std::uint8_t phase = kReduceInitial;
  std::uint8_t algorithm = 0;
  std::uint32_t chunk_lanes = 0;
  std::uint64_t plan_id = 0;

  friend bool operator==(const CollectivePlan&,
                         const CollectivePlan&) = default;
};

/// A regenerated-dimension slice moving through the hierarchy (adaptive
/// dimensionality, DESIGN.md §14). Two forms share the type:
///
///   * request (columns empty, generations empty) — parent -> child: "your
///     dimensions `dims` were scored undiscriminating; regenerate them".
///   * patch (one column per class, generations per dim) — child -> parent:
///     the per-class accumulator deltas of exactly the regenerated
///     dimensions, plus the generation counter each projection row was
///     re-derived at. Ancestors apply the k-column delta in place instead of
///     receiving full D-dimensional ModelUpdates.
///
/// `dims` is strictly ascending (canonical form, enforced on decode); each
/// column has dims.size() entries, columns[c] belonging to class c.
struct DimensionPatch {
  std::uint32_t round = 0;
  std::vector<std::uint32_t> dims;
  std::vector<std::uint16_t> generations;
  std::vector<hdc::AccumHV> columns;

  /// True for the parent -> child request form.
  bool is_request() const noexcept { return columns.empty(); }

  friend bool operator==(const DimensionPatch&,
                         const DimensionPatch&) = default;
};

using Message = std::variant<ModelUpdate, BatchUpdate, ResidualMerge,
                             QueryEscalate, QueryReply, HealthProbe, NodeJoin,
                             NodeLeave, StateSync, ReducePartial,
                             CollectivePlan, DimensionPatch>;

MsgType type_of(const Message& msg) noexcept;

// ---- canonical byte accounting --------------------------------------------

/// Bytes of one integer accumulator hypervector sized to its actual
/// magnitude (the class/batch/residual payload cost).
inline std::uint64_t accum_wire_size(
    std::span<const std::int32_t> acc) noexcept {
  return hdc::wire_bytes_accum(acc);
}

/// Bytes of a D-dimensional bipolar hypervector (1 bit per dimension).
inline std::uint64_t bipolar_wire_size(std::size_t dim) noexcept {
  return hdc::wire_bytes_bipolar(dim);
}

/// Amortized bytes of one compressed query hypervector of dimensionality
/// `dim` under m-to-1 bundling (Section IV-C): m bipolar queries superpose
/// into one accumulator with |entry| <= m, and the bundle's bytes are
/// amortized over its members. m <= 1 disables compression (plain packed
/// bits). This is the single definition shared by the accuracy engine, the
/// analytic cost model and the fault benches.
std::uint64_t compressed_query_wire_size(std::size_t dim,
                                         std::size_t compression) noexcept;

/// Canonical accounting size of a message: what the paper's evaluation
/// charges for shipping it (payload only — envelope framing excluded).
std::uint64_t wire_size(const Message& msg) noexcept;

}  // namespace edgehd::proto
