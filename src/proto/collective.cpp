#include "collective.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>
#include <utility>

namespace edgehd::proto {

using hdc::AccumHV;
using net::NodeId;
using net::SimTime;

const char* to_string(CollectiveAlgo algo) noexcept {
  switch (algo) {
    case CollectiveAlgo::kPointToPoint:
      return "point_to_point";
    case CollectiveAlgo::kTreeReduce:
      return "tree_reduce";
    case CollectiveAlgo::kRingAllReduce:
      return "ring_all_reduce";
    case CollectiveAlgo::kTreeAllReduce:
      return "tree_all_reduce";
  }
  return "unknown";
}

// ---- cost model -------------------------------------------------------------

CollectiveCostModel::CollectiveCostModel(const net::Topology& topology,
                                         net::Medium medium)
    : topology_(&topology), medium_(std::move(medium)) {}

SimTime CollectiveCostModel::hop_time(std::uint64_t frames,
                                      std::uint64_t bytes) const {
  return static_cast<SimTime>(frames) * medium_.latency +
         net::transfer_time(medium_, bytes) - medium_.latency;
  // transfer_time already includes one latency term; the expression above
  // charges `frames` latencies total plus the payload's serialization time.
}

double CollectiveCostModel::hop_energy(std::uint64_t frames,
                                       std::uint64_t bytes) const {
  const double seconds =
      static_cast<double>(hop_time(frames, bytes)) / net::kSecond;
  return (medium_.tx_power_w + medium_.rx_power_w) * seconds;
}

CollectiveCosts CollectiveCostModel::reduce_to_root(
    std::uint64_t frames_per_edge, std::uint64_t bytes_per_edge) const {
  CollectiveCosts costs;
  if (frames_per_edge == 0) return costs;
  const net::Topology& topo = *topology_;
  const SimTime edge_time = hop_time(frames_per_edge, bytes_per_edge);
  // Level by level from the leaves: within a level, a wired parent
  // serializes its own children but distinct parents transfer in parallel;
  // a shared-domain medium serializes every edge of the tree.
  for (std::size_t level = 2; level <= topo.depth(); ++level) {
    SimTime level_time = 0;
    for (NodeId parent : topo.nodes_at_level(level)) {
      const std::size_t fan_in = topo.children(parent).size();
      if (fan_in == 0) continue;
      const SimTime parent_time =
          static_cast<SimTime>(fan_in) * edge_time;
      if (medium_.shared_domain) {
        level_time += parent_time;
      } else {
        level_time = std::max(level_time, parent_time);
      }
      costs.bytes += fan_in * bytes_per_edge;
      costs.energy_j += static_cast<double>(fan_in) *
                        hop_energy(frames_per_edge, bytes_per_edge);
    }
    costs.time += level_time;
  }
  return costs;
}

CollectiveCosts CollectiveCostModel::broadcast_from_root(
    std::uint64_t bytes_per_edge) const {
  // Same edge set as the reduce, one frame per edge, downward: by symmetry
  // of the per-hop model the estimate is the reduce's with F = 1.
  return reduce_to_root(1, bytes_per_edge);
}

CollectiveCosts CollectiveCostModel::all_reduce(
    CollectiveAlgo algo, std::size_t peers,
    std::uint64_t bytes_per_peer) const {
  CollectiveCosts costs;
  if (peers < 2 || bytes_per_peer == 0) return costs;
  const auto p = static_cast<std::uint64_t>(peers);
  // Every logical transfer is relayed through the shared parent: two
  // physical hops (peer -> parent -> peer).
  constexpr std::uint64_t kRelayHops = 2;
  std::uint64_t transfers = 0;       // logical transfers in total
  std::uint64_t transfer_bytes = 0;  // bytes of one logical transfer
  std::uint64_t rounds = 0;          // synchronized steps
  std::uint64_t per_round = 0;       // parallel transfers within a step
  switch (algo) {
    case CollectiveAlgo::kRingAllReduce:
      // Reduce-scatter + all-gather: 2(P-1) steps, every peer forwarding a
      // 1/P chunk each step.
      transfer_bytes = (bytes_per_peer + p - 1) / p;
      rounds = 2 * (p - 1);
      per_round = p;
      transfers = rounds * per_round;
      break;
    case CollectiveAlgo::kTreeAllReduce:
      // Binomial reduce to one peer then mirror broadcast: 2*ceil(log2 P)
      // rounds of whole payloads, 2(P-1) transfers in total.
      transfer_bytes = bytes_per_peer;
      rounds = 2 * static_cast<std::uint64_t>(
                       std::bit_width(p - 1));  // ceil(log2 P)
      transfers = 2 * (p - 1);
      per_round = (transfers + rounds - 1) / rounds;
      break;
    default:
      throw std::invalid_argument(
          "CollectiveCostModel: all_reduce prices ring/tree schedules only");
  }
  const SimTime leg = hop_time(1, transfer_bytes);
  if (medium_.shared_domain) {
    // One collision domain: every physical hop serializes.
    costs.time = static_cast<SimTime>(transfers * kRelayHops) * leg;
  } else {
    // Wired: transfers within a round run in parallel; the relay's two legs
    // still serialize per transfer.
    costs.time = static_cast<SimTime>(rounds * kRelayHops) * leg;
  }
  costs.bytes = transfers * kRelayHops * transfer_bytes;
  costs.energy_j =
      static_cast<double>(transfers * kRelayHops) * hop_energy(1, transfer_bytes);
  return costs;
}

namespace {

bool cheaper(const CollectiveCosts& a, const CollectiveCosts& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.energy_j < b.energy_j;  // equal -> not cheaper: first wins ties
}

}  // namespace

CollectiveAlgo CollectiveCostModel::pick_reduce(
    std::uint64_t frames_per_edge, std::uint64_t p2p_bytes_per_edge,
    std::uint64_t fused_bytes_per_edge) const {
  const CollectiveCosts p2p = reduce_to_root(frames_per_edge, p2p_bytes_per_edge);
  CollectiveCosts fused = reduce_to_root(1, fused_bytes_per_edge);
  // The fused schedule pays for its CollectivePlan announcement (14 bytes
  // down every edge) before any model byte moves.
  const CollectiveCosts plan = broadcast_from_root(14);
  fused.time += plan.time;
  fused.energy_j += plan.energy_j;
  fused.bytes += plan.bytes;
  return cheaper(fused, p2p) ? CollectiveAlgo::kTreeReduce
                             : CollectiveAlgo::kPointToPoint;
}

CollectiveAlgo CollectiveCostModel::pick_all_reduce(
    std::size_t peers, std::uint64_t bytes_per_peer) const {
  const CollectiveCosts ring =
      all_reduce(CollectiveAlgo::kRingAllReduce, peers, bytes_per_peer);
  const CollectiveCosts tree =
      all_reduce(CollectiveAlgo::kTreeAllReduce, peers, bytes_per_peer);
  return cheaper(tree, ring) ? CollectiveAlgo::kTreeAllReduce
                             : CollectiveAlgo::kRingAllReduce;
}

// ---- data-motion primitives -------------------------------------------------

namespace {

/// Relays one fused frame src -> parent -> dst, store-and-forward: the
/// parent re-posts the copy it actually received. Either hop may be dropped
/// by a faulty bus; the hop is then re-posted, up to `max_retries` extra
/// attempts per hop.
void relay_frame(Bus& bus, std::span<NodeRuntime> nodes, NodeId src,
                 NodeId parent, NodeId dst, std::uint8_t phase,
                 std::vector<AccumHV> sections, std::size_t max_retries) {
  auto hop = [&](NodeId from, NodeId to, NodeId origin,
                 std::vector<AccumHV>&& body) -> std::vector<AccumHV> {
    NodeRuntime& rt = nodes[to];
    for (std::size_t attempt = 0; attempt <= max_retries; ++attempt) {
      const std::size_t before = rt.collective_frames_pending();
      bus.post(Envelope{
          kProtoVersion, from, to,
          ReducePartial{phase, static_cast<std::uint32_t>(origin), body}});
      if (rt.collective_frames_pending() > before) {
        auto frames = rt.take_collective_frames();
        return std::move(frames.back().sections);
      }
    }
    throw std::runtime_error("collective: frame " + std::to_string(from) +
                             " -> " + std::to_string(to) +
                             " lost after retries");
  };
  std::vector<AccumHV> at_parent =
      hop(src, parent, src, std::move(sections));
  if (dst == parent) return;  // degenerate relay (unused today)
  hop(parent, dst, src, std::move(at_parent));
}

struct FlatState {
  std::vector<std::int32_t> lanes;
  std::vector<std::size_t> offsets;  ///< per-section start, plus total
};

FlatState flatten(const std::vector<AccumHV>& sections) {
  FlatState flat;
  flat.offsets.push_back(0);
  for (const auto& s : sections) {
    flat.lanes.insert(flat.lanes.end(), s.begin(), s.end());
    flat.offsets.push_back(flat.lanes.size());
  }
  return flat;
}

void unflatten(const FlatState& flat, std::vector<AccumHV>& sections) {
  for (std::size_t i = 0; i < sections.size(); ++i) {
    std::copy(flat.lanes.begin() + static_cast<std::ptrdiff_t>(flat.offsets[i]),
              flat.lanes.begin() +
                  static_cast<std::ptrdiff_t>(flat.offsets[i + 1]),
              sections[i].begin());
  }
}

void validate_peers(const net::Topology& topology, NodeId parent,
                    std::span<const NodeId> peers,
                    const std::vector<std::vector<AccumHV>>& states) {
  if (peers.size() != states.size()) {
    throw std::invalid_argument("collective: one state set per peer required");
  }
  const auto kids = topology.children(parent);
  std::size_t lanes0 = 0;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (std::find(kids.begin(), kids.end(), peers[i]) == kids.end()) {
      throw std::invalid_argument("collective: peer " +
                                  std::to_string(peers[i]) +
                                  " is not a child of the relay parent");
    }
    std::size_t lanes = 0;
    for (const auto& s : states[i]) lanes += s.size();
    if (i == 0) {
      lanes0 = lanes;
    } else if (lanes != lanes0) {
      throw std::invalid_argument(
          "collective: peers hold mismatched lane counts");
    }
  }
}

}  // namespace

void ring_all_reduce(Bus& bus, std::span<NodeRuntime> nodes,
                     const net::Topology& topology, NodeId parent,
                     std::span<const NodeId> peers,
                     std::vector<std::vector<AccumHV>>& states,
                     std::uint32_t chunk_lanes, std::size_t max_retries) {
  validate_peers(topology, parent, peers, states);
  const std::size_t p = peers.size();
  if (p < 2) return;
  std::vector<FlatState> flats;
  flats.reserve(p);
  for (const auto& s : states) flats.push_back(flatten(s));
  const std::size_t total = flats[0].lanes.size();
  std::size_t lc = chunk_lanes == 0 ? (total + p - 1) / p : chunk_lanes;
  if (lc * p < total) {
    throw std::invalid_argument(
        "collective: chunk_lanes too small to cover the lane space in P "
        "chunks");
  }
  const auto chunk_range = [&](std::size_t c) {
    const std::size_t begin = std::min(c * lc, total);
    return std::pair<std::size_t, std::size_t>{begin,
                                               std::min(begin + lc, total)};
  };
  const auto chunk_of = [&](const FlatState& flat, std::size_t c) {
    const auto [begin, end] = chunk_range(c);
    return AccumHV(flat.lanes.begin() + static_cast<std::ptrdiff_t>(begin),
                   flat.lanes.begin() + static_cast<std::ptrdiff_t>(end));
  };

  // Reduce-scatter: after step s, peer (i+1) holds chunk (i - s .. ) sums;
  // after P-1 steps peer i fully owns chunk (i + 1) mod P.
  for (std::size_t s = 0; s + 1 < p; ++s) {
    for (std::size_t i = 0; i < p; ++i) {
      const std::size_t c = (i + p - s % p) % p;
      const std::size_t j = (i + 1) % p;
      relay_frame(bus, nodes, peers[i], parent, peers[j], kReduceGatewaySync,
                  {chunk_of(flats[i], c)}, max_retries);
      // The receiver's combine is lane-ordered elementwise addition.
      const auto [begin, end] = chunk_range(c);
      // relay_frame drained the receiver's inbox; re-derive the payload from
      // the sender's committed state (bit-identical on a lossless hop, and
      // the relay would have thrown on a lost one).
      for (std::size_t lane = begin; lane < end; ++lane) {
        flats[j].lanes[lane] += flats[i].lanes[lane];
      }
    }
  }
  // All-gather: each peer circulates its owned, fully reduced chunk.
  for (std::size_t s = 0; s + 1 < p; ++s) {
    for (std::size_t i = 0; i < p; ++i) {
      const std::size_t c = (i + 1 + p - s % p) % p;
      const std::size_t j = (i + 1) % p;
      relay_frame(bus, nodes, peers[i], parent, peers[j], kReduceGatewaySync,
                  {chunk_of(flats[i], c)}, max_retries);
      const auto [begin, end] = chunk_range(c);
      for (std::size_t lane = begin; lane < end; ++lane) {
        flats[j].lanes[lane] = flats[i].lanes[lane];
      }
    }
  }
  for (std::size_t i = 0; i < p; ++i) unflatten(flats[i], states[i]);
}

void tree_all_reduce(Bus& bus, std::span<NodeRuntime> nodes,
                     const net::Topology& topology, NodeId parent,
                     std::span<const NodeId> peers,
                     std::vector<std::vector<AccumHV>>& states,
                     std::size_t max_retries) {
  validate_peers(topology, parent, peers, states);
  const std::size_t p = peers.size();
  if (p < 2) return;
  std::vector<FlatState> flats;
  flats.reserve(p);
  for (const auto& s : states) flats.push_back(flatten(s));
  const std::size_t total = flats[0].lanes.size();
  const auto whole = [&](const FlatState& flat) {
    return AccumHV(flat.lanes.begin(),
                   flat.lanes.begin() + static_cast<std::ptrdiff_t>(total));
  };
  // Binomial reduce onto peers[0]: in round d, peer i with i % 2d == d sends
  // its running sum to peer i - d.
  for (std::size_t d = 1; d < p; d *= 2) {
    for (std::size_t i = d; i < p; i += 2 * d) {
      relay_frame(bus, nodes, peers[i], parent, peers[i - d],
                  kReduceGatewaySync, {whole(flats[i])}, max_retries);
      for (std::size_t lane = 0; lane < total; ++lane) {
        flats[i - d].lanes[lane] += flats[i].lanes[lane];
      }
    }
  }
  // Mirror broadcast of the sum back down the binomial tree.
  std::size_t top = std::size_t{1} << (std::bit_width(p - 1));
  for (std::size_t d = top / 2; d >= 1; d /= 2) {
    for (std::size_t i = 0; i + d < p; i += 2 * d) {
      relay_frame(bus, nodes, peers[i], parent, peers[i + d],
                  kReduceBroadcast, {whole(flats[i])}, max_retries);
      flats[i + d].lanes.assign(flats[i].lanes.begin(),
                                flats[i].lanes.end());
    }
    if (d == 1) break;
  }
  for (std::size_t i = 0; i < p; ++i) unflatten(flats[i], states[i]);
}

std::vector<std::vector<AccumHV>> broadcast_models(
    Bus& bus, std::span<NodeRuntime> nodes, const net::Topology& topology,
    NodeId root, const std::vector<AccumHV>& models, std::size_t max_retries) {
  std::vector<std::vector<AccumHV>> received(topology.num_nodes());
  received[root] = models;
  // Preorder, children in topology order: each node forwards the copy it
  // received, so a corruption anywhere would propagate — and the bit-exact
  // check in the tests covers every hop.
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId node = stack.back();
    stack.pop_back();
    const auto kids = topology.children(node);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      const NodeId kid = *it;
      NodeRuntime& rt = nodes[kid];
      bool delivered = false;
      for (std::size_t attempt = 0; attempt <= max_retries; ++attempt) {
        const std::size_t before = rt.collective_frames_pending();
        bus.post(Envelope{kProtoVersion, node, kid,
                          ReducePartial{kReduceBroadcast,
                                        static_cast<std::uint32_t>(node),
                                        received[node]}});
        if (rt.collective_frames_pending() > before) {
          auto frames = rt.take_collective_frames();
          received[kid] = std::move(frames.back().sections);
          delivered = true;
          break;
        }
      }
      if (!delivered) {
        throw std::runtime_error("collective: broadcast to node " +
                                 std::to_string(kid) + " lost after retries");
      }
      stack.push_back(kid);
    }
  }
  return received;
}

}  // namespace edgehd::proto
