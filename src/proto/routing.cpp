#include "routing.hpp"

#include <cmath>
#include <variant>

#include "bus.hpp"
#include "obs/trace.hpp"

namespace edgehd::proto {

using net::NodeId;

bool RoutingContext::node_up(NodeId id) const noexcept {
  if (suspicion) return suspicion->node_up(id);
  return !degraded || health->node_up(id);
}

bool RoutingContext::link_up(NodeId child) const noexcept {
  if (suspicion) return suspicion->link_up(child);
  return !degraded || health->link_up(child);
}

bool RoutingContext::origin_up(NodeId id) const noexcept {
  return !health || health->node_up(id);
}

double RoutingContext::link_loss_of(NodeId child) const noexcept {
  if (suspicion) return suspicion->link_loss(child);
  return health ? health->link_loss(child) : 0.0;
}

bool RoutingContext::child_delivers(NodeId child) const noexcept {
  return node_up(child) && link_up(child);
}

bool RoutingContext::subtree_degraded(NodeId id) const {
  if (!degraded || topology->is_leaf(id)) return false;
  for (NodeId kid : topology->children(id)) {
    if (!child_delivers(kid)) return true;
    if (subtree_degraded(kid)) return true;
  }
  return false;
}

std::uint64_t query_gather_bytes(const RoutingContext& ctx, NodeId id) {
  if (ctx.topology->is_leaf(id)) return 0;
  std::uint64_t bytes = 0;
  for (NodeId kid : ctx.topology->children(id)) {
    bytes += query_gather_bytes(ctx, kid) +
             compressed_query_wire_size(ctx.nodes[kid].dim(), ctx.compression);
  }
  return bytes;
}

void gather_bytes_masked(const RoutingContext& ctx, NodeId id,
                         std::uint64_t& bytes, std::uint64_t& retry_bytes) {
  if (ctx.topology->is_leaf(id)) return;
  for (NodeId kid : ctx.topology->children(id)) {
    if (!ctx.child_delivers(kid)) continue;  // nothing crosses a dead hop
    gather_bytes_masked(ctx, kid, bytes, retry_bytes);
    const std::uint64_t b =
        compressed_query_wire_size(ctx.nodes[kid].dim(), ctx.compression);
    bytes += b;
    const double p = ctx.link_loss_of(kid);
    if (p > 0.0) {
      // Reliable transport: the hop is charged the expected number of
      // transmissions per packet under its retry cap; everything beyond the
      // first copy is retry overhead.
      retry_bytes += static_cast<std::uint64_t>(std::llround(
          static_cast<double>(b) *
          (net::expected_attempts(p, ctx.max_retries) - 1.0)));
    }
  }
}

NodeId classifier_ancestor(const RoutingContext& ctx, NodeId current) {
  NodeId next = ctx.topology->parent(current);
  while (next != ctx.topology->root() && !ctx.nodes[next].has_classifier()) {
    next = ctx.topology->parent(next);
  }
  return next;
}

NodeId reachable_classifier_ancestor(const RoutingContext& ctx,
                                     NodeId current) {
  NodeId next = current;
  do {
    if (!ctx.link_up(next)) return net::kNoNode;
    next = ctx.topology->parent(next);
    if (!ctx.node_up(next)) return net::kNoNode;
  } while (next != ctx.topology->root() && !ctx.nodes[next].has_classifier());
  return next;
}

void account_escalation(const hdc::BipolarHV& query, std::uint64_t query_id,
                        std::uint32_t hops) {
  detail::account_delivery(QueryEscalate{query_id, hops, query});
}

void account_reply(const RoutedResult& result, std::uint64_t query_id) {
  detail::account_delivery(
      QueryReply{query_id, static_cast<std::uint32_t>(result.label),
                 result.confidence, static_cast<std::uint64_t>(result.node),
                 static_cast<std::uint32_t>(result.level),
                 static_cast<std::uint8_t>(result.degraded ? 1 : 0)});
}

RoutedResult route_query(const RoutingContext& ctx,
                         std::span<const hdc::BipolarHV> hvs, NodeId start,
                         std::uint64_t query_id, std::uint64_t trace_span) {
  auto& tracer = obs::Tracer::global();
  NodeId current = start;
  hdc::Prediction pred = ctx.nodes[current].predict(hvs[current]);
  std::uint32_t hops = 0;
  RoutedResult result;
  while (true) {
    result.label = pred.label;
    result.confidence = pred.confidence;
    result.node = current;
    result.level = ctx.topology->level(current);
    tracer.instant("core.predict", obs::kAutoTime, trace_span, current,
                   pred.label);
    const bool confident = pred.confidence >= ctx.confidence_threshold;
    if (confident || current == ctx.topology->root()) break;
    // Escalate to the nearest ancestor that hosts a classifier.
    const NodeId next = classifier_ancestor(ctx, current);
    if (!ctx.nodes[next].has_classifier()) break;
    ctx.escalations->inc();
    tracer.instant("core.escalate", obs::kAutoTime, trace_span, current, next);
    // The query ships as a typed envelope payload, encoded for the
    // destination's hypervector space; the ancestor predicts on what the
    // message carries.
    account_escalation(hvs[next], query_id, ++hops);
    current = next;
    pred = ctx.nodes[current].predict(hvs[current]);
  }
  result.bytes = query_gather_bytes(ctx, result.node);
  account_reply(result, query_id);
  return result;
}

RoutedResult route_query_degraded(const RoutingContext& ctx,
                                  std::span<const hdc::BipolarHV> hvs,
                                  NodeId start, std::uint64_t query_id) {
  RoutedResult result;
  if (!ctx.origin_up(start)) {
    // The query's origin is physically dead; nobody can even pose the
    // question. This is world simulation, not belief — a detector cannot
    // resurrect a crashed node by failing to suspect it.
    result.degraded = true;
    return result;
  }
  NodeId current = start;
  hdc::Prediction pred = ctx.nodes[current].predict(hvs[current]);
  std::uint32_t hops = 0;
  bool cut = false;  // escalation wanted to continue but faults blocked it
  while (true) {
    result.label = pred.label;
    result.confidence = pred.confidence;
    result.node = current;
    result.level = ctx.topology->level(current);
    const bool confident = pred.confidence >= ctx.confidence_threshold;
    if (confident || current == ctx.topology->root()) break;
    // Walk hop by hop toward the nearest reachable ancestor hosting a
    // classifier; a dead hop anywhere on the way strands the query here.
    const NodeId next = reachable_classifier_ancestor(ctx, current);
    if (next == net::kNoNode) {
      cut = true;
      break;
    }
    if (!ctx.nodes[next].has_classifier()) break;
    ctx.escalations->inc();
    account_escalation(hvs[next], query_id, ++hops);
    current = next;
    pred = ctx.nodes[current].predict(hvs[current]);
  }
  if (cut && !ctx.serve_degraded) {
    RoutedResult unserved;
    unserved.degraded = true;
    return unserved;
  }
  result.degraded = cut || ctx.subtree_degraded(result.node);
  gather_bytes_masked(ctx, result.node, result.bytes, result.retry_bytes);
  account_reply(result, query_id);
  return result;
}

}  // namespace edgehd::proto
