#include "sessions.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace edgehd::proto {

using hdc::AccumHV;
using net::NodeId;

bool SessionContext::node_up(NodeId id) const noexcept {
  if (suspicion) return suspicion->node_up(id);
  return !degraded || health->node_up(id);
}

bool SessionContext::link_up(NodeId child) const noexcept {
  if (suspicion) return suspicion->link_up(child);
  return !degraded || health->link_up(child);
}

bool SessionContext::origin_up(NodeId id) const noexcept {
  return !health || health->node_up(id);
}

bool SessionContext::reachable_to_root(NodeId id) const {
  if (suspicion) {
    return suspicion->reachable_up(*topology, id, topology->root());
  }
  return !degraded || health->reachable_up(*topology, id, topology->root());
}

bool SessionContext::child_delivers(NodeId child) const noexcept {
  return node_up(child) && link_up(child);
}

bool SessionContext::parked(NodeId id) const {
  return degraded && id != topology->root() &&
         (!link_up(id) || !node_up(topology->parent(id)));
}

std::vector<NodeId> SessionContext::bottom_up_order() const {
  // Counting sort by level (levels start at 1): same (level, node-id) order
  // the per-level nodes_at_level scans produced, in one O(n) pass instead of
  // O(n · depth) — the difference matters for fleet-scale deep hierarchies.
  const std::size_t n = topology->num_nodes();
  const std::size_t depth = topology->depth();
  std::vector<std::size_t> offset(depth + 1, 0);
  for (NodeId id = 0; id < n; ++id) ++offset[topology->level(id)];
  std::size_t start = 0;
  for (std::size_t level = 1; level <= depth; ++level) {
    const std::size_t count = offset[level];
    offset[level] = start;
    start += count;
  }
  std::vector<NodeId> order(n);
  for (NodeId id = 0; id < n; ++id) order[offset[topology->level(id)]++] = id;
  return order;
}

namespace {

/// Attaches a CommStats sink to the bus for one session.
class ChargeScope {
 public:
  ChargeScope(Bus& bus, CommStats& sink) : bus_(&bus) {
    bus_->set_charge(&sink);
  }
  ~ChargeScope() { bus_->set_charge(nullptr); }
  ChargeScope(const ChargeScope&) = delete;
  ChargeScope& operator=(const ChargeScope&) = delete;

 private:
  Bus* bus_;
};

bool is_zero(const std::vector<AccumHV>& accums) {
  for (const auto& a : accums) {
    for (std::int32_t v : a) {
      if (v != 0) return false;
    }
  }
  return true;
}

/// Leaf rows of the training data for `id`; internal nodes get empty spans.
std::span<const hdc::BipolarHV> leaf_samples(const SessionContext& ctx,
                                             const TrainData& data,
                                             NodeId id) {
  if (!ctx.topology->is_leaf(id)) return {};
  return (*data.encoded)[id];
}

void post_class_set(const SessionContext& ctx, NodeId src,
                    const std::vector<AccumHV>& accums) {
  const NodeId dst = ctx.topology->parent(src);
  for (std::size_t c = 0; c < accums.size(); ++c) {
    ctx.bus->post(Envelope{
        kProtoVersion, src, dst,
        ModelUpdate{static_cast<std::uint32_t>(c), accums[c]}});
  }
}

/// Resolves the data-motion schedule for a training phase shipping
/// `frames_per_edge` frames per live edge. The training sessions know two
/// flows — per-message and fused subtree reduce — so a force to one of the
/// sibling all-reduce algorithms still selects the fused reduce here.
CollectiveAlgo resolve_algo(const SessionContext& ctx,
                            std::uint64_t frames_per_edge) {
  if (ctx.collective == nullptr || !ctx.collective->enabled) {
    return CollectiveAlgo::kPointToPoint;
  }
  CollectiveAlgo algo;
  if (ctx.collective->force) {
    algo = *ctx.collective->force;
  } else {
    const CollectiveCostModel model(*ctx.topology,
                                    net::medium(ctx.collective->medium));
    // Representative per-edge payload (~4 bits per lane of one node's
    // contribution). Both schedules serialize the same accumulators, so the
    // argmin is driven by the per-frame latency term against the fused
    // schedule's plan-broadcast overhead.
    const std::size_t dim = ctx.nodes.empty() ? 0 : ctx.nodes[0].dim();
    const std::uint64_t bytes =
        frames_per_edge * ((static_cast<std::uint64_t>(dim) + 1) / 2);
    algo = model.pick_reduce(frames_per_edge, bytes, bytes);
  }
  return algo == CollectiveAlgo::kPointToPoint ? algo
                                               : CollectiveAlgo::kTreeReduce;
}

/// Announces the phase's schedule down every delivering link (top-down, so
/// a node hears the plan before its own children's frames move). Charged to
/// the session like any other envelope: the plan is part of what the
/// collective schedule costs.
void broadcast_plan(const SessionContext& ctx, const CollectivePlan& plan,
                    std::span<const NodeId> order) {
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    if (ctx.topology->is_leaf(id) || !ctx.origin_up(id)) continue;
    for (NodeId kid : ctx.topology->children(id)) {
      if (!ctx.origin_up(kid) || !ctx.child_delivers(kid)) continue;
      ctx.bus->post(Envelope{kProtoVersion, id, kid, plan});
    }
  }
}

}  // namespace

CommStats run_initial_training(const SessionContext& ctx,
                               const TrainData& data) {
  CommStats comm;
  const ChargeScope charge(*ctx.bus, comm);
  ctx.stragglers->clear();

  const auto order = ctx.bottom_up_order();
  const CollectiveAlgo algo = resolve_algo(ctx, ctx.num_classes);
  if (algo == CollectiveAlgo::kTreeReduce) {
    // plan_id doubles as the expected fused section count per frame.
    broadcast_plan(ctx,
                   CollectivePlan{kReduceInitial,
                                  static_cast<std::uint8_t>(algo), 0,
                                  static_cast<std::uint64_t>(ctx.num_classes)},
                   order);
  }
  for (NodeId id : order) {
    if (ctx.origin_up(id)) ctx.nodes[id].begin_initial_training();
  }
  for (NodeId id : order) {
    if (!ctx.origin_up(id)) continue;
    const auto& accums = ctx.nodes[id].finish_initial_training(
        leaf_samples(ctx, data, id), data.labels);
    if (ctx.parked(id)) {
      // Cut off from the parent: park the contribution for
      // run_reintegration once the path is back up.
      (*ctx.pending_contrib)[id] = accums;
      ctx.stragglers->push_back(id);
    } else if (id != ctx.topology->root()) {
      // Ship the k class hypervectors (models, not data). Not parked means
      // the uplink and the parent are both up, so every post delivers —
      // the bus charge equals what crossed live links.
      if (algo == CollectiveAlgo::kTreeReduce) {
        // Fused subtree reduce: the whole class set in one entropy-coded
        // frame; the receiver scatters it into the same inbox the
        // per-message path fills.
        ctx.bus->post(Envelope{
            kProtoVersion, id, ctx.topology->parent(id),
            ReducePartial{kReduceInitial, static_cast<std::uint32_t>(id),
                          accums}});
      } else {
        post_class_set(ctx, id, accums);
      }
    }
  }
  return comm;
}

CommStats run_batch_retraining(const SessionContext& ctx,
                               const TrainData& data) {
  CommStats comm;
  const ChargeScope charge(*ctx.bus, comm);

  // Per-class batches over the encoded-sample index space; the same sample
  // partition is used at every node so batch hypervectors line up across the
  // hierarchy (each physical observation is sensed by every leaf).
  ClassBatches batches(ctx.num_classes);
  {
    std::vector<std::vector<std::size_t>> by_class(ctx.num_classes);
    for (std::size_t s = 0; s < data.labels.size(); ++s) {
      by_class[data.labels[s]].push_back(s);
    }
    for (std::size_t c = 0; c < ctx.num_classes; ++c) {
      for (std::size_t start = 0; start < by_class[c].size();
           start += ctx.batch_size) {
        const std::size_t end =
            std::min(start + ctx.batch_size, by_class[c].size());
        batches[c].emplace_back(by_class[c].begin() + start,
                                by_class[c].begin() + end);
      }
    }
  }

  auto note_straggler = [&ctx](NodeId id) {
    auto& list = *ctx.stragglers;
    if (std::find(list.begin(), list.end(), id) == list.end()) {
      list.push_back(id);
    }
  };

  std::uint64_t frames_per_edge = 0;
  for (std::size_t c = 0; c < ctx.num_classes; ++c) {
    frames_per_edge += batches[c].size();
  }

  const auto order = ctx.bottom_up_order();
  const CollectiveAlgo algo = resolve_algo(ctx, frames_per_edge);
  if (algo == CollectiveAlgo::kTreeReduce) {
    broadcast_plan(
        ctx,
        CollectivePlan{kReduceBatch, static_cast<std::uint8_t>(algo), 0,
                       frames_per_edge},
        order);
  }
  for (NodeId id : order) {
    if (ctx.origin_up(id)) ctx.nodes[id].begin_batch_retraining(batches);
  }
  for (NodeId id : order) {
    if (!ctx.origin_up(id)) continue;
    const auto& nb = ctx.nodes[id].finish_batch_retraining(
        leaf_samples(ctx, data, id), data.labels);
    if (ctx.parked(id)) {
      // Perceptron updates are not linear, so there is nothing exact to
      // park — recovery re-syncs via a fresh retrain; just record it.
      note_straggler(id);
    } else if (id != ctx.topology->root()) {
      const NodeId dst = ctx.topology->parent(id);
      if (algo == CollectiveAlgo::kTreeReduce) {
        // Every per-(class, batch) hypervector in one fused frame,
        // class-major batch-ascending — the order the p2p path posts.
        ReducePartial fused{kReduceBatch, static_cast<std::uint32_t>(id), {}};
        fused.sections.reserve(frames_per_edge);
        for (std::size_t c = 0; c < ctx.num_classes; ++c) {
          for (std::size_t b = 0; b < nb[c].size(); ++b) {
            fused.sections.push_back(nb[c][b]);
          }
        }
        ctx.bus->post(Envelope{kProtoVersion, id, dst, std::move(fused)});
      } else {
        for (std::size_t c = 0; c < ctx.num_classes; ++c) {
          for (std::size_t b = 0; b < nb[c].size(); ++b) {
            ctx.bus->post(Envelope{
                kProtoVersion, id, dst,
                BatchUpdate{static_cast<std::uint32_t>(c),
                            static_cast<std::uint32_t>(b), nb[c][b]}});
          }
        }
      }
    }
  }
  return comm;
}

CommStats run_residual_propagation(const SessionContext& ctx) {
  CommStats comm;
  const ChargeScope charge(*ctx.bus, comm);

  const auto order = ctx.bottom_up_order();
  for (NodeId id : order) {
    // A crashed node neither applies nor ships anything; its own residuals
    // stay queued inside its classifier until a later round finds it up.
    if (ctx.origin_up(id)) ctx.nodes[id].begin_residual_propagation();
  }
  for (NodeId id : order) {
    if (!ctx.origin_up(id)) continue;
    std::vector<AccumHV> ship = ctx.nodes[id].finish_residual_propagation();
    // What ships upward: this round's bundle plus anything held back by an
    // earlier round whose uplink was down.
    auto& pending = (*ctx.pending_residuals)[id];
    if (!pending.empty()) {
      for (std::size_t c = 0; c < ctx.num_classes; ++c) {
        hdc::accumulate(ship[c], pending[c]);
      }
      pending.clear();
    }
    if (is_zero(ship)) continue;  // nothing to report upward
    if (ctx.parked(id)) {
      pending = std::move(ship);
    } else if (id != ctx.topology->root()) {
      const NodeId dst = ctx.topology->parent(id);
      for (std::size_t c = 0; c < ctx.num_classes; ++c) {
        ctx.bus->post(Envelope{
            kProtoVersion, id, dst,
            ResidualMerge{static_cast<std::uint32_t>(c), ship[c]}});
      }
    }
  }
  return comm;
}

CommStats run_reintegration(const SessionContext& ctx) {
  CommStats comm;
  const ChargeScope charge(*ctx.bus, comm);
  const NodeId root = ctx.topology->root();

  for (NodeId id : ctx.bottom_up_order()) {
    auto& parked_contrib = (*ctx.pending_contrib)[id];
    if (parked_contrib.empty()) continue;
    // Still cut off? The contribution stays pending for a later call.
    if (!ctx.reachable_to_root(id)) continue;
    std::vector<AccumHV> cur = std::move(parked_contrib);
    parked_contrib.clear();
    NodeId child = id;
    while (child != root) {
      const NodeId parent = ctx.topology->parent(child);
      NodeRuntime& prt = ctx.nodes[parent];
      prt.begin_reintegration();
      // Ship the delta one hop up (k class hypervectors, like training);
      // the parent lifts it through its aggregator and folds it into its
      // model.
      post_class_set(ctx, child, cur);
      cur = prt.finish_reintegration(child);
      child = parent;
    }
    auto& list = *ctx.stragglers;
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  }
  return comm;
}

CommStats run_rejoin(const SessionContext& ctx, const TrainData& data,
                     NodeId rejoined, std::uint64_t incarnation) {
  CommStats comm;
  const ChargeScope charge(*ctx.bus, comm);
  const NodeId root = ctx.topology->root();
  if (rejoined == root) {
    throw std::invalid_argument("run_rejoin: the root cannot rejoin");
  }
  // Still believed down, or the path to the root is? Try again later.
  if (!ctx.node_up(rejoined) || !ctx.reachable_to_root(rejoined)) return comm;

  // 1. Announce the new generation to every ancestor, so the StateSync
  //    envelopes below pass their incarnation checks.
  for (NodeId anc = ctx.topology->parent(rejoined);;
       anc = ctx.topology->parent(anc)) {
    ctx.bus->post(
        Envelope{kProtoVersion, rejoined, anc, NodeJoin{incarnation}});
    if (anc == root) break;
  }

  auto unpark = [&ctx](NodeId id) {
    (*ctx.pending_contrib)[id].clear();
    auto& list = *ctx.stragglers;
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  };

  // 2. Rebuild local state. A leaf re-bundles its own samples; an internal
  //    node aggregates its reachable children's checkpoints, delivered as
  //    StateSync envelopes (an unreachable child contributes zeros and stays
  //    a straggler). Exact by determinism: the same inputs reproduce the
  //    same accumulators the lost life computed.
  NodeRuntime& me = ctx.nodes[rejoined];
  me.begin_initial_training();
  std::vector<NodeId> synced_kids;
  if (!ctx.topology->is_leaf(rejoined)) {
    for (NodeId kid : ctx.topology->children(rejoined)) {
      if (!ctx.child_delivers(kid)) continue;
      const auto state = ctx.nodes[kid].checkpoint_state();
      if (state.empty()) continue;  // child never trained — nothing to sync
      for (std::size_t c = 0; c < state.size(); ++c) {
        ctx.bus->post(Envelope{
            kProtoVersion, kid, rejoined,
            StateSync{static_cast<std::uint32_t>(c),
                      me.known_incarnation(kid), state[c]}});
      }
      synced_kids.push_back(kid);
    }
  }
  me.finish_initial_training(leaf_samples(ctx, data, rejoined), data.labels);

  // 3. Re-synchronize every ancestor on the path from its delivering
  //    children's full checkpoints, one aggregation pass per hop (StateSync
  //    envelopes, so every hop validates generations). A delta-lift through
  //    the reintegration machinery would be cheaper on the wire, but the
  //    projection's integer rescale truncates — aggregate(a + b) can differ
  //    from aggregate(a) + aggregate(b) by one unit per element — so only a
  //    full rebuild reproduces the never-failed aggregation bit-exactly.
  for (NodeId hop = ctx.topology->parent(rejoined);;
       hop = ctx.topology->parent(hop)) {
    NodeRuntime& prt = ctx.nodes[hop];
    prt.begin_initial_training();
    for (NodeId kid : ctx.topology->children(hop)) {
      if (!ctx.child_delivers(kid)) continue;
      const auto state = ctx.nodes[kid].checkpoint_state();
      if (state.empty()) continue;  // child never trained — nothing to sync
      for (std::size_t c = 0; c < state.size(); ++c) {
        ctx.bus->post(Envelope{
            kProtoVersion, kid, hop,
            StateSync{static_cast<std::uint32_t>(c),
                      prt.known_incarnation(kid), state[c]}});
      }
      if (kid != rejoined) synced_kids.push_back(kid);
    }
    prt.finish_initial_training(leaf_samples(ctx, data, hop), data.labels);
    if (hop == root) break;
  }

  // 4. The rebuild consumed the synced children's full state and superseded
  //    any contribution parked by the rejoined node's previous life.
  unpark(rejoined);
  for (NodeId kid : synced_kids) unpark(kid);
  return comm;
}

CommStats run_dimension_regeneration(const SessionContext& ctx,
                                     const TrainData& data, std::size_t k,
                                     std::uint32_t round) {
  CommStats comm;
  const ChargeScope charge(*ctx.bus, comm);
  if (k == 0) return comm;
  if (data.raw == nullptr) {
    throw std::invalid_argument(
        "run_dimension_regeneration: TrainData.raw is required");
  }
  const NodeId root = ctx.topology->root();
  const auto order = ctx.bottom_up_order();
  for (NodeId id : order) {
    if (ctx.origin_up(id)) ctx.nodes[id].begin_dimension_regen(round);
  }

  const bool central_scored =
      !ctx.topology->is_leaf(root) &&
      ctx.nodes[root].aggregator().mode() ==
          hier::AggregationMode::kConcatenation;

  if (central_scored) {
    // Concatenation: every root dimension traces back to exactly one leaf
    // dimension, so the root scores its model globally and the requests
    // flow top-down along delivering links (a cut-off subtree receives no
    // request and therefore produces no delta — consistent by omission).
    if (ctx.origin_up(root)) {
      const auto state = ctx.nodes[root].checkpoint_state();
      if (!state.empty()) {
        ctx.nodes[root].set_regen_request(hdc::worst_dimensions(state, k));
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId id = *it;
      if (ctx.topology->is_leaf(id) || !ctx.origin_up(id)) continue;
      const auto& req = ctx.nodes[id].regen_request();
      if (req.empty()) continue;
      // Split the node's own ascending request across its children: dim d
      // belongs to child ci with offset(ci) <= d < offset(ci + 1).
      const auto& cdims = ctx.nodes[id].aggregator().child_dims();
      const auto kids = ctx.topology->children(id);
      std::vector<std::vector<std::uint32_t>> per_child(kids.size());
      std::size_t ci = 0;
      std::size_t off = 0;
      for (std::uint32_t d : req) {
        while (ci + 1 < kids.size() && d >= off + cdims[ci]) {
          off += cdims[ci];
          ++ci;
        }
        per_child[ci].push_back(d - static_cast<std::uint32_t>(off));
      }
      for (std::size_t c = 0; c < kids.size(); ++c) {
        if (per_child[c].empty()) continue;
        if (!ctx.origin_up(kids[c]) || !ctx.child_delivers(kids[c])) continue;
        ctx.bus->post(Envelope{
            kProtoVersion, id, kids[c],
            DimensionPatch{round, std::move(per_child[c]), {}, {}}});
      }
    }
  } else {
    // Holographic (or a single-node hierarchy): the ternary projection
    // mixes every leaf dimension into every ancestor dimension, so there is
    // no 1:1 trace-back — each leaf scores its own model locally. Gated on
    // a live path to the root so a patched leaf never diverges from the
    // ancestors that could not hear its delta.
    for (NodeId id : order) {
      if (!ctx.topology->is_leaf(id) || !ctx.origin_up(id)) continue;
      if (id != root && !ctx.reachable_to_root(id)) continue;
      const auto state = ctx.nodes[id].checkpoint_state();
      if (state.empty()) continue;
      ctx.nodes[id].set_regen_request(hdc::worst_dimensions(state, k));
    }
  }

  // Bottom-up: leaves re-derive + re-encode, ancestors lift and merge;
  // every node applies its delta in place and ships the k-column patch one
  // hop up — never a full ModelUpdate.
  for (NodeId id : order) {
    if (!ctx.origin_up(id)) continue;
    NodeRuntime& node = ctx.nodes[id];
    DimensionPatch patch =
        ctx.topology->is_leaf(id)
            ? node.finish_dimension_regen_leaf(
                  (*data.raw)[id], leaf_samples(ctx, data, id), data.labels)
            : node.finish_dimension_regen_internal();
    if (patch.dims.empty() || id == root || ctx.parked(id)) continue;
    ctx.bus->post(Envelope{kProtoVersion, id, ctx.topology->parent(id),
                           std::move(patch)});
  }
  return comm;
}

CommStats announce_leave(const SessionContext& ctx, NodeId node,
                         std::uint64_t incarnation, bool planned) {
  CommStats comm;
  const ChargeScope charge(*ctx.bus, comm);
  if (node == ctx.topology->root()) return comm;  // the root has no parent
  ctx.bus->post(Envelope{
      kProtoVersion, node, ctx.topology->parent(node),
      NodeLeave{incarnation, static_cast<std::uint8_t>(planned ? 1 : 0)}});
  return comm;
}

}  // namespace edgehd::proto
