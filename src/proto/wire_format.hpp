// Bounds-checked little-endian byte cursors for the envelope codec.
//
// Every multi-byte integer on the EdgeHD wire is little-endian. ByteWriter
// appends to a caller-owned buffer; ByteReader consumes a read-only span and
// reports underflow through its return values instead of ever reading out of
// bounds — the decode path must be total (truncated or corrupt input yields
// a typed error, never UB).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace edgehd::proto {

/// Appends little-endian primitives to a byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }

  void u16(std::uint16_t v) {
    out_->push_back(static_cast<std::uint8_t>(v));
    out_->push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void bytes(std::span<const std::uint8_t> b) {
    out_->insert(out_->end(), b.begin(), b.end());
  }

  std::size_t size() const noexcept { return out_->size(); }

 private:
  std::vector<std::uint8_t>* out_;
};

/// Consumes little-endian primitives from a span; every read is bounds
/// checked and returns false on underflow (leaving the output untouched).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  std::size_t remaining() const noexcept { return buf_.size() - pos_; }
  bool empty() const noexcept { return remaining() == 0; }

  bool u8(std::uint8_t& v) noexcept {
    if (remaining() < 1) return false;
    v = buf_[pos_++];
    return true;
  }

  bool u16(std::uint16_t& v) noexcept {
    if (remaining() < 2) return false;
    v = static_cast<std::uint16_t>(
        buf_[pos_] | (static_cast<std::uint16_t>(buf_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }

  bool u32(std::uint32_t& v) noexcept {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) noexcept {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool f64(double& v) noexcept {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }

  /// Takes the next `n` bytes as a subspan without copying.
  bool bytes(std::size_t n, std::span<const std::uint8_t>& out) noexcept {
    if (remaining() < n) return false;
    out = buf_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace edgehd::proto
