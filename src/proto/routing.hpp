// Routed inference (Section IV-C) as per-query message walks.
//
// A query is answered at the lowest node whose softmax confidence clears the
// threshold; otherwise it escalates to the nearest ancestor hosting a
// classifier, carried as a QueryEscalate envelope whose payload is the query
// hypervector *as encoded at the destination node*. The serving node's
// verdict travels back as a QueryReply. Unlike the training sessions, query
// walks do not go through a Bus: every walk is reentrant per-query state, so
// batched inference can fan queries across threads against const
// NodeRuntimes (warm the classifier caches first).
//
// Byte accounting: the paper charges a served query the amortized cost of
// *gathering* its hypervector at the serving node (m-to-1 compressed on
// every hop), not the escalation envelopes — query_gather_bytes /
// gather_bytes_masked are that canonical accounting. The per-envelope
// "proto.query_escalate.*" / "proto.query_reply.*" metrics observe the
// control traffic separately.
#pragma once

#include <cstdint>
#include <span>

#include "hdc/hypervector.hpp"
#include "net/detector.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"
#include "node_runtime.hpp"
#include "obs/metrics.hpp"
#include "types.hpp"

namespace edgehd::proto {

/// Read-only view of the hierarchy for query walks, plus the routing policy
/// knobs of SystemConfig and the facade-owned escalation counter.
struct RoutingContext {
  const net::Topology* topology = nullptr;
  std::span<const NodeRuntime> nodes;  ///< indexed by NodeId
  /// The simulated physical world. With a detector installed this is only
  /// consulted where the world itself matters (a dead origin cannot pose a
  /// query); all reachability *decisions* come from `suspicion`.
  const net::HealthMask* health = nullptr;  ///< may be empty
  /// Earned beliefs from the failure detector. When set, node_up/link_up/
  /// link-loss decisions use this instead of the oracle mask.
  const net::SuspicionView* suspicion = nullptr;
  bool degraded = false;
  double confidence_threshold = 0.75;
  std::size_t compression = 1;  ///< m, query hypervectors per bundle
  bool serve_degraded = true;   ///< FailoverPolicy::serve_degraded
  std::size_t max_retries = 5;  ///< FailoverPolicy::max_retries
  /// "core.routed.escalations" handle; incremented once per escalation hop.
  const obs::Counter* escalations = nullptr;

  bool node_up(net::NodeId id) const noexcept;
  bool link_up(net::NodeId child) const noexcept;
  bool child_delivers(net::NodeId child) const noexcept;
  /// Physical liveness of a query's origin (world simulation, never belief).
  bool origin_up(net::NodeId id) const noexcept;
  /// Loss estimate for retry accounting: observed (suspicion) when a
  /// detector is installed, oracle otherwise.
  double link_loss_of(net::NodeId child) const noexcept;
  /// Any contribution missing anywhere in `id`'s subtree?
  bool subtree_degraded(net::NodeId id) const;
};

/// Amortized bytes to gather one query hypervector at node `id` from its
/// subtree's leaves, with m-to-1 compression on every hop.
std::uint64_t query_gather_bytes(const RoutingContext& ctx, net::NodeId id);

// ---- escalation hop resolution (shared by the synchronous walks below and
// ---- the async serving plane in src/serve) --------------------------------

/// Nearest ancestor of `current` hosting a classifier, ignoring faults (the
/// root if none closer does; the root itself may lack one, which the caller
/// checks with has_classifier()).
net::NodeId classifier_ancestor(const RoutingContext& ctx, net::NodeId current);

/// Hop-by-hop walk under the health mask toward the nearest reachable
/// ancestor hosting a classifier. A dead uplink or node anywhere on the way
/// blocks the walk and returns net::kNoNode — the caller serves degraded at
/// `current` (or reports the query unserved under the fail-fast policy).
/// With no degradation installed this reduces exactly to
/// classifier_ancestor.
net::NodeId reachable_classifier_ancestor(const RoutingContext& ctx,
                                          net::NodeId current);

/// Accounts one QueryEscalate envelope carrying `query` (the per-type
/// "proto.query_escalate.*" counters). One call per escalation hop — the
/// same charge route_query makes, exposed so async escalation sessions
/// account identically.
void account_escalation(const hdc::BipolarHV& query, std::uint64_t query_id,
                        std::uint32_t hops);

/// Accounts the QueryReply envelope for a served result (the
/// "proto.query_reply.*" counters). Unserved results are never accounted —
/// no reply crosses the network.
void account_reply(const RoutedResult& result, std::uint64_t query_id);

/// Query-gather accounting over the reachable subtree only, with expected
/// retransmission bytes on lossy links (reliable transport, retry cap
/// max_retries).
void gather_bytes_masked(const RoutingContext& ctx, net::NodeId id,
                         std::uint64_t& bytes, std::uint64_t& retry_bytes);

/// Fault-free escalation walk over the per-node encodings `hvs` (indexed by
/// NodeId). Emits "core.predict"/"core.escalate" trace instants under
/// `trace_span`. Does not record the query-level counters — the facade owns
/// those.
RoutedResult route_query(const RoutingContext& ctx,
                         std::span<const hdc::BipolarHV> hvs,
                         net::NodeId start, std::uint64_t query_id,
                         std::uint64_t trace_span);

/// Escalation walk under a health mask: hop-by-hop reachability checks; a
/// dead hop strands the query at the deepest reachable classifier (served
/// degraded) or reports it unserved under the fail-fast policy. `hvs` must
/// be the masked encodings (unreachable contributions silenced).
RoutedResult route_query_degraded(const RoutingContext& ctx,
                                  std::span<const hdc::BipolarHV> hvs,
                                  net::NodeId start, std::uint64_t query_id);

}  // namespace edgehd::proto
