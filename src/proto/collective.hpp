// Collective model-exchange engine (ROADMAP "collective engine" arc).
//
// The paper's hierarchy moves every model child -> parent as individual
// per-(class, batch) frames. This module adds *collective schedules* over
// the same Bus and the same inboxes:
//
//   * subtree reduce   — each child fuses its entire per-phase contribution
//                        into one ReducePartial frame whose sections are
//                        entropy-coded as a unit (section_codec.hpp), with a
//                        deterministic lane-ordered combine at the parent;
//   * broadcast        — an updated model set pushed down a subtree,
//                        store-and-forward, bit-faithful at every hop;
//   * ring all-reduce  — sibling gateways exchange reduce-scatter /
//                        all-gather chunks, relayed through their parent;
//   * tree all-reduce  — the binomial-tree variant (fewer rounds, whole
//                        payloads) for small payloads or shared media.
//
// A CollectiveCostModel (in the spirit of FlagCX's FlagCXAlgoTimeEstimator)
// prices each algorithm per phase from the link medium's latency, bandwidth
// and power terms plus the topology's fan-out, and the session picks the
// argmin — unless CollectiveConfig::force pins one. Every collective frame
// is a first-class protocol message: it rides the versioned envelope codec
// and is charged to CommStats and the per-type proto.* counters like any
// other traffic.
//
// Correctness contract: collective schedules are *lossless rearrangements*.
// The reduce path scatters sections into the same inboxes the point-to-point
// path fills, and the all-reduce combine is elementwise int32 addition —
// associative and commutative exactly — so final models are bit-identical
// to the reference schedule (pinned by tests/test_collective.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bus.hpp"
#include "hdc/hypervector.hpp"
#include "net/medium.hpp"
#include "net/topology.hpp"
#include "node_runtime.hpp"

namespace edgehd::proto {

/// Which schedule moves a phase's model traffic.
enum class CollectiveAlgo : std::uint8_t {
  kPointToPoint = 0,  ///< legacy per-(class, batch) frames
  kTreeReduce = 1,    ///< fused entropy-coded subtree reduce
  kRingAllReduce = 2,
  kTreeAllReduce = 3,
};

const char* to_string(CollectiveAlgo algo) noexcept;

/// Facade-level knob (SystemConfig::collective). Disabled by default so the
/// legacy byte flows — including the golden e2e pins — are untouched.
struct CollectiveConfig {
  bool enabled = false;
  /// Pins the algorithm instead of asking the cost model. For the training
  /// sessions any value other than kPointToPoint selects the fused subtree
  /// reduce (ring/tree all-reduce are sibling-gateway primitives, not
  /// child->parent reductions).
  std::optional<CollectiveAlgo> force;
  /// Link technology the cost model prices schedules against.
  net::MediumKind medium = net::MediumKind::kWifi80211n;
};

/// Per-schedule estimate, mirroring core::PhaseCosts: virtual time to drain
/// the schedule, radio/NIC energy, and bytes on the wire.
struct CollectiveCosts {
  net::SimTime time = 0;
  double energy_j = 0.0;
  std::uint64_t bytes = 0;
};

/// Prices collective schedules on one topology + link medium. All terms are
/// closed forms over the medium's latency/bandwidth/power and the tree's
/// fan-out: wired links transfer in parallel (per-parent serialization,
/// levels pipeline-free), shared-domain media serialize every transfer into
/// one collision domain. Deterministic: same inputs, same estimate, same
/// argmin.
class CollectiveCostModel {
 public:
  CollectiveCostModel(const net::Topology& topology, net::Medium medium);
  // The model keeps a pointer to `topology`; a temporary would dangle.
  CollectiveCostModel(net::Topology&&, net::Medium) = delete;

  /// Child->parent reduce over the whole tree: every edge ships
  /// `frames_per_edge` frames totalling `bytes_per_edge` bytes.
  CollectiveCosts reduce_to_root(std::uint64_t frames_per_edge,
                                 std::uint64_t bytes_per_edge) const;

  /// Root->leaves broadcast of `bytes_per_edge` per hop (same edge set as
  /// the reduce, downward).
  CollectiveCosts broadcast_from_root(std::uint64_t bytes_per_edge) const;

  /// All-reduce among `peers` sibling gateways, each holding
  /// `bytes_per_peer` of state; every logical transfer is relayed through
  /// the shared parent (two physical hops). Only kRingAllReduce /
  /// kTreeAllReduce are valid here.
  CollectiveCosts all_reduce(CollectiveAlgo algo, std::size_t peers,
                             std::uint64_t bytes_per_peer) const;

  /// Argmin schedule for a training phase: the legacy per-message flow
  /// (frames_per_edge frames, p2p bytes) vs one fused frame per edge plus
  /// the CollectivePlan announcement. Ties break toward the lower enum
  /// value (kPointToPoint), so the choice is deterministic.
  CollectiveAlgo pick_reduce(std::uint64_t frames_per_edge,
                             std::uint64_t p2p_bytes_per_edge,
                             std::uint64_t fused_bytes_per_edge) const;

  /// Argmin of ring vs tree all-reduce (time, then energy, then enum order).
  CollectiveAlgo pick_all_reduce(std::size_t peers,
                                 std::uint64_t bytes_per_peer) const;

  const net::Medium& medium() const noexcept { return medium_; }

 private:
  /// One physical hop moving `bytes` as `frames` frames: latency per frame
  /// plus the payload's serialization time.
  net::SimTime hop_time(std::uint64_t frames, std::uint64_t bytes) const;
  double hop_energy(std::uint64_t frames, std::uint64_t bytes) const;

  const net::Topology* topology_;
  net::Medium medium_;
};

// ---- data-motion primitives -------------------------------------------------
//
// The primitives run over a synchronous Bus (LocalBus): a post delivers
// before it returns, so a hop's arrival is checked by polling the receiving
// runtime's collective inbox — which is also the retry loop: a bus that
// drops a frame (fault injection) simply leaves the inbox empty and the
// primitive re-posts, up to `max_retries` extra attempts, then throws
// std::runtime_error.

/// Ring all-reduce among `peers` (children of `parent`): states[i] is peer
/// i's accumulator set; on return every entry holds the elementwise sum
/// across peers. Payloads move as reduce-scatter then all-gather chunks of
/// the concatenated lane space (`chunk_lanes` lanes per chunk, 0 = even
/// split), each transfer relayed peer -> parent -> peer. Throws
/// std::invalid_argument on non-sibling peers or mismatched lane counts.
void ring_all_reduce(Bus& bus, std::span<NodeRuntime> nodes,
                     const net::Topology& topology, net::NodeId parent,
                     std::span<const net::NodeId> peers,
                     std::vector<std::vector<hdc::AccumHV>>& states,
                     std::uint32_t chunk_lanes = 0,
                     std::size_t max_retries = 0);

/// Binomial-tree all-reduce: reduce onto peers[0] in ceil(log2 P) rounds,
/// then mirror-broadcast the sum back. Same contract as ring_all_reduce.
void tree_all_reduce(Bus& bus, std::span<NodeRuntime> nodes,
                     const net::Topology& topology, net::NodeId parent,
                     std::span<const net::NodeId> peers,
                     std::vector<std::vector<hdc::AccumHV>>& states,
                     std::size_t max_retries = 0);

/// Broadcasts `models` from `root` down its subtree, store-and-forward (each
/// node forwards the copy it received, not the original). Returns the model
/// set as received per node (indexed by NodeId; empty outside the subtree) —
/// bit-identical to `models` everywhere on a lossless bus.
std::vector<std::vector<hdc::AccumHV>> broadcast_models(
    Bus& bus, std::span<NodeRuntime> nodes, const net::Topology& topology,
    net::NodeId root, const std::vector<hdc::AccumHV>& models,
    std::size_t max_retries = 0);

}  // namespace edgehd::proto
