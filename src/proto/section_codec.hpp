// Lossless section codec for fused collective frames (ReducePartial).
//
// A collective schedule ships a child's *entire* per-phase contribution —
// every class (and batch) accumulator — as the sections of one frame. Owning
// the whole contribution is what unlocks bytes the per-message path cannot
// reach: the per-message codec (envelope.cpp write_accum) must size every
// lane to the worst-case magnitude of its one accumulator, while this codec
// re-encodes all sections as a unit and picks, per message, the cheaper of
// two lossless representations:
//
//  * frame of reference (FOR): per section, values travel as fixed-width
//    offsets (v - vmin) / step with step = 2 when every value shares one
//    parity. Leaf bundles always do — a bundle of n bipolar samples has
//    every lane congruent to n mod 2 — which recovers a full bit per lane.
//  * canonical Huffman: values zigzag to symbols and one code-length table,
//    amortized over all sections of the message, prices each symbol by its
//    actual frequency. Internal-node accumulators (bell-shaped after the
//    aggregator's rescale) compress well below their fixed-width cost.
//
// The mode is the deterministic argmin of encoded size (ties resolve to
// FOR), so encoding is a pure function of the section values — the same
// contribution always costs the same bytes. Both modes are exactly
// invertible: decode(encode(x)) == x bit for bit, which is what lets the
// collective schedules promise models bit-identical to the point-to-point
// reference (pinned by tests/test_collective.cpp).
//
// Only section *bodies* live here (mode byte, side information, packed
// bits). Counts and dimensions are structural framing written by the
// envelope codec, mirroring how write_accum's dim/width prefix is excluded
// from the canonical wire_size accounting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hdc/hypervector.hpp"
#include "wire_format.hpp"

namespace edgehd::proto {

/// How the sections of one frame are entropy-coded (the first body byte).
enum class SectionMode : std::uint8_t {
  kFrameOfReference = 0,
  kHuffman = 1,
};

/// Huffman symbol-space cap: zigzag symbols at or beyond this fall back to
/// FOR (the table is a dense length array; an unbounded alphabet would let
/// one outlier lane buy a 4-billion-entry table).
inline constexpr std::size_t kMaxHuffSymbols = 4096;

/// Longest admissible canonical code (decoder rejects longer).
inline constexpr std::uint32_t kMaxHuffCodeLen = 32;

/// Appends the encoded section bodies to `w`: one mode byte, then the
/// mode-specific side information and packed bits (each section's bit run
/// is zero-padded to a byte boundary). Deterministic: parameters and mode
/// are the argmin of encoded size.
void write_sections(ByteWriter& w, std::span<const hdc::AccumHV> sections);

/// Strict inverse of write_sections. `dims[i]` is section i's expected
/// dimensionality (framed by the caller). Returns false on any structural
/// violation — unknown mode, out-of-range parameters, an incomplete Huffman
/// table, a decoded value outside int32, nonzero pad bits, or truncation —
/// and never reads past `r` or allocates beyond the framed dimensions.
bool read_sections(ByteReader& r, std::span<const std::uint32_t> dims,
                   std::vector<hdc::AccumHV>& out);

/// Exact byte count write_sections will produce for `sections` — the
/// canonical wire_size of a ReducePartial message.
std::uint64_t sections_wire_size(
    std::span<const hdc::AccumHV> sections) noexcept;

}  // namespace edgehd::proto
