#include "bus.hpp"

#include <array>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace edgehd::proto {

namespace detail {

namespace {

struct TypeObs {
  obs::Counter messages;
  obs::Counter bytes;
};

/// Interned once per process; indexed by the raw MsgType byte. All counts
/// are stable: protocol traffic is a deterministic function of (config,
/// seed, health), independent of scheduling.
const std::array<TypeObs, 13>& type_obs() {
  static const std::array<TypeObs, 13> table = [] {
    std::array<TypeObs, 13> t;
    if constexpr (obs::kEnabled) {
      auto& reg = obs::MetricsRegistry::global();
      for (std::uint8_t b = 1; b <= 12; ++b) {
        const std::string prefix =
            std::string("proto.") + to_string(static_cast<MsgType>(b)) + ".";
        t[b].messages = reg.counter(prefix + "messages");
        t[b].bytes = reg.counter(prefix + "bytes");
      }
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint64_t account_delivery(const Message& msg) {
  const std::uint64_t size = wire_size(msg);
  const auto idx = static_cast<std::size_t>(type_of(msg));
  type_obs()[idx].messages.inc();
  type_obs()[idx].bytes.inc(size);
  return size;
}

}  // namespace detail

// ---- LocalBus --------------------------------------------------------------

LocalBus::LocalBus(std::size_t num_nodes, Codec codec)
    : handlers_(num_nodes), codec_(codec) {}

void LocalBus::subscribe(net::NodeId node, Handler handler) {
  if (node >= handlers_.size()) {
    throw std::out_of_range("LocalBus: node id out of range");
  }
  handlers_[node] = std::move(handler);
}

void LocalBus::post(Envelope env) {
  if (env.dst >= handlers_.size()) {
    throw std::out_of_range("LocalBus: destination out of range");
  }
  const std::uint64_t size = detail::account_delivery(env.msg);
  if (charge_ != nullptr) {
    charge_->bytes += size;
    ++charge_->messages;
  }
  const Handler& handler = handlers_[env.dst];
  if (!handler) return;  // no consumer: the envelope is dropped
  ++delivered_;
  if (codec_ == Codec::kInMemory) {
    handler(env);
    return;
  }
  const std::vector<std::uint8_t> frame = encode(env);
  const DecodeResult result = decode(frame);
  if (!result.ok()) {
    // Impossible by the codec's round-trip contract (pinned by test_proto);
    // reaching this means memory corruption or a codec bug, so fail loudly.
    throw std::logic_error(std::string("LocalBus: round-trip decode failed: ") +
                           to_string(result.error));
  }
  handler(result.envelope);
}

// ---- SimulatorBus ----------------------------------------------------------

SimulatorBus::SimulatorBus(net::Simulator& sim)
    : sim_(&sim), handlers_(sim.topology().num_nodes()) {
  sim_->set_payload_handler([this](net::NodeId /*from*/, net::NodeId to,
                                   std::span<const std::uint8_t> payload) {
    const DecodeResult result = decode(payload);
    if (!result.ok()) {
      ++decode_failures_;
      return;
    }
    const std::uint64_t size = detail::account_delivery(result.envelope.msg);
    if (charge_ != nullptr) {
      charge_->bytes += size;
      ++charge_->messages;
    }
    if (to < handlers_.size() && handlers_[to]) {
      ++delivered_;
      handlers_[to](result.envelope);
    }
  });
}

void SimulatorBus::subscribe(net::NodeId node, Handler handler) {
  if (node >= handlers_.size()) {
    throw std::out_of_range("SimulatorBus: node id out of range");
  }
  handlers_[node] = std::move(handler);
}

void SimulatorBus::post(Envelope env) {
  sim_->send_payload(env.src, env.dst, encode(env));
}

}  // namespace edgehd::proto
