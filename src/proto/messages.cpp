#include "messages.hpp"

#include <algorithm>

#include "section_codec.hpp"

namespace edgehd::proto {

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kModelUpdate:
      return "model_update";
    case MsgType::kBatchUpdate:
      return "batch_update";
    case MsgType::kResidualMerge:
      return "residual_merge";
    case MsgType::kQueryEscalate:
      return "query_escalate";
    case MsgType::kQueryReply:
      return "query_reply";
    case MsgType::kHealthProbe:
      return "health_probe";
    case MsgType::kNodeJoin:
      return "node_join";
    case MsgType::kNodeLeave:
      return "node_leave";
    case MsgType::kStateSync:
      return "state_sync";
    case MsgType::kReducePartial:
      return "reduce_partial";
    case MsgType::kCollectivePlan:
      return "collective_plan";
    case MsgType::kDimensionPatch:
      return "dimension_patch";
  }
  return "unknown";
}

MsgType type_of(const Message& msg) noexcept {
  return std::visit(
      [](const auto& m) -> MsgType {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ModelUpdate>) {
          return MsgType::kModelUpdate;
        } else if constexpr (std::is_same_v<T, BatchUpdate>) {
          return MsgType::kBatchUpdate;
        } else if constexpr (std::is_same_v<T, ResidualMerge>) {
          return MsgType::kResidualMerge;
        } else if constexpr (std::is_same_v<T, QueryEscalate>) {
          return MsgType::kQueryEscalate;
        } else if constexpr (std::is_same_v<T, QueryReply>) {
          return MsgType::kQueryReply;
        } else if constexpr (std::is_same_v<T, HealthProbe>) {
          return MsgType::kHealthProbe;
        } else if constexpr (std::is_same_v<T, NodeJoin>) {
          return MsgType::kNodeJoin;
        } else if constexpr (std::is_same_v<T, NodeLeave>) {
          return MsgType::kNodeLeave;
        } else if constexpr (std::is_same_v<T, StateSync>) {
          return MsgType::kStateSync;
        } else if constexpr (std::is_same_v<T, ReducePartial>) {
          return MsgType::kReducePartial;
        } else if constexpr (std::is_same_v<T, CollectivePlan>) {
          return MsgType::kCollectivePlan;
        } else {
          return MsgType::kDimensionPatch;
        }
      },
      msg);
}

std::uint64_t compressed_query_wire_size(std::size_t dim,
                                         std::size_t compression) noexcept {
  const std::size_t m = std::max<std::size_t>(1, compression);
  if (m == 1) return hdc::wire_bytes_bipolar(dim);
  const std::uint32_t bits =
      hdc::bits_for_magnitude(static_cast<std::int64_t>(m));
  const std::uint64_t bundle = hdc::wire_bytes_accum(dim, bits);
  return (bundle + m - 1) / m;
}

std::uint64_t wire_size(const Message& msg) noexcept {
  return std::visit(
      [](const auto& m) -> std::uint64_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ModelUpdate>) {
          return accum_wire_size(m.accum);
        } else if constexpr (std::is_same_v<T, BatchUpdate>) {
          return accum_wire_size(m.accum);
        } else if constexpr (std::is_same_v<T, ResidualMerge>) {
          return accum_wire_size(m.residual);
        } else if constexpr (std::is_same_v<T, QueryEscalate>) {
          return bipolar_wire_size(m.query.size());
        } else if constexpr (std::is_same_v<T, QueryReply>) {
          // label + confidence + serving node/level + flags: one small
          // control frame.
          return 8 + 4 + 8 + 8 + 4 + 1;
        } else if constexpr (std::is_same_v<T, HealthProbe>) {
          // nonce + timestamp + incarnation + suspicion bitmask
          return 8 + 8 + 8 + 8;
        } else if constexpr (std::is_same_v<T, NodeJoin>) {
          return 8;  // incarnation
        } else if constexpr (std::is_same_v<T, NodeLeave>) {
          return 8 + 1;  // incarnation + planned flag
        } else if constexpr (std::is_same_v<T, StateSync>) {
          // incarnation tag + the reintegration delta (class_id is framing,
          // same as ModelUpdate).
          return 8 + accum_wire_size(m.accum);
        } else if constexpr (std::is_same_v<T, ReducePartial>) {
          // The entropy-coded section bodies; phase/origin/section counts
          // and dims are framing, matching how write_accum's dim/width
          // prefix is excluded from the per-accumulator accounting.
          return sections_wire_size(m.sections);
        } else if constexpr (std::is_same_v<T, CollectivePlan>) {
          // phase + algorithm + chunk override + plan tag.
          return 1 + 1 + 4 + 8;
        } else {
          // DimensionPatch: dimension indices + generation counters + the
          // k-column accumulator slices (round is framing). A request form
          // is just the index list.
          std::uint64_t bytes = 4 * m.dims.size() + 2 * m.generations.size();
          for (const auto& col : m.columns) bytes += accum_wire_size(col);
          return bytes;
        }
      },
      msg);
}

}  // namespace edgehd::proto
