#include "detector.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace edgehd::net {

namespace {

/// High-bit offset keeping the detector's per-link Bernoulli attempt indices
/// disjoint from the data plane's (the Simulator counts from 0).
constexpr std::uint64_t kProbeAttemptBase = std::uint64_t{1} << 63;

struct DetObs {
  obs::Counter probes_sent;
  obs::Counter probes_delivered;
  obs::Counter probes_dropped;
  obs::Counter bytes;
  obs::Counter suspicions;
  obs::Counter false_suspicions;
  obs::Counter refutations;
  obs::Counter rejoins;
  obs::Counter reports;
  obs::Histogram latency_ns;
};

/// Detector-plane metrics. All stable: the detector is a pure function of
/// (plan, config, time). Deliberately disjoint from the per-phase CommStats
/// and proto.* data-plane counters — detection traffic is accounted here
/// and only here, which is what keeps the golden e2e bytes intact.
const DetObs& det_obs() {
  static const DetObs d = [] {
    DetObs o;
    if constexpr (obs::kEnabled) {
      auto& reg = obs::MetricsRegistry::global();
      o.probes_sent = reg.counter("net.detector.probes_sent");
      o.probes_delivered = reg.counter("net.detector.probes_delivered");
      o.probes_dropped = reg.counter("net.detector.probes_dropped");
      o.bytes = reg.counter("net.detector.bytes");
      o.suspicions = reg.counter("net.detector.suspicions");
      o.false_suspicions = reg.counter("net.detector.false_suspicions");
      o.refutations = reg.counter("net.detector.refutations");
      o.rejoins = reg.counter("net.detector.rejoins");
      o.reports = reg.counter("net.detector.reports");
      o.latency_ns = reg.histogram(
          "net.detector.latency_ns",
          {1e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9, 5e9});
    }
    return o;
  }();
  return d;
}

}  // namespace

// ---- SuspicionView ----------------------------------------------------------

SuspicionView::SuspicionView(const Topology& topo)
    : topo_(&topo),
      edge_suspected_(topo.num_nodes(), 0),
      query_suspected_(topo.num_nodes(), 0),
      link_loss_(topo.num_nodes(), 0.0),
      incarnation_(topo.num_nodes(), 0) {}

bool SuspicionView::node_up(NodeId id) const noexcept {
  if (id >= edge_suspected_.size()) return true;
  if (query_suspected_[id] != 0) return false;
  if (topo_ == nullptr) return true;
  // Believed dead only when every adjacent edge is suspected: one silent
  // edge with a live far endpoint is indistinguishable from a link failure,
  // so it is classified as one.
  std::size_t adjacent = 0;
  std::size_t suspected = 0;
  if (id != topo_->root()) {
    ++adjacent;
    if (edge_suspected_[id] != 0) ++suspected;
  }
  for (const NodeId c : topo_->children(id)) {
    ++adjacent;
    if (edge_suspected_[c] != 0) ++suspected;
  }
  return adjacent == 0 || suspected < adjacent;
}

bool SuspicionView::all_healthy() const noexcept {
  for (const std::uint8_t s : edge_suspected_) {
    if (s != 0) return false;
  }
  for (const std::uint8_t s : query_suspected_) {
    if (s != 0) return false;
  }
  for (const double p : link_loss_) {
    if (p != 0.0) return false;
  }
  return true;
}

bool SuspicionView::reachable_up(const Topology& topo, NodeId id,
                                 NodeId ancestor) const {
  if (!node_up(id)) return false;
  NodeId cur = id;
  while (cur != ancestor) {
    if (!link_up(cur)) return false;
    const NodeId next = topo.parent(cur);
    if (next == kNoNode) return false;
    if (!node_up(next)) return false;
    cur = next;
  }
  return true;
}

// ---- FailureDetector --------------------------------------------------------

FailureDetector::FailureDetector(const Topology& topo, const FaultPlan& plan,
                                 DetectorConfig cfg)
    : topo_(&topo), plan_(&plan), cfg_(cfg), view_(topo) {
  if (cfg_.heartbeat_period <= 0) {
    throw std::invalid_argument("FailureDetector: heartbeat_period must be "
                                "positive");
  }
  if (cfg_.phi_threshold < 1.0) {
    throw std::invalid_argument("FailureDetector: phi_threshold must be "
                                ">= 1");
  }
  if (cfg_.interval_ewma <= 0.0 || cfg_.interval_ewma > 1.0) {
    throw std::invalid_argument("FailureDetector: interval_ewma must be in "
                                "(0, 1]");
  }
  if (cfg_.warmup < 0) {
    throw std::invalid_argument("FailureDetector: warmup must be >= 0");
  }
  const std::size_t n = topo.num_nodes();
  up_.assign(n, EdgeState{});
  down_.assign(n, EdgeState{});
  for (NodeId c = 0; c < n; ++c) {
    up_[c].mean_interval = static_cast<double>(cfg_.heartbeat_period);
    down_[c].mean_interval = static_cast<double>(cfg_.heartbeat_period);
  }
  alive_.assign(n, 0);
  for (NodeId i = 0; i < n; ++i) {
    alive_[i] = plan.node_up(i, 0) ? 1 : 0;
  }
  incarnation_.assign(n, 0);
  probe_attempt_.assign(n, 0);
  link_sent_.assign(n, 0);
  link_lost_.assign(n, 0);
  // Pre-resolve which nodes/links the plan can ever touch (the plan is
  // immutable for the detector's lifetime): the churn pass then visits only
  // crash-prone nodes, liveness checks read alive_, and the per-probe loss
  // draw uses the composed probability without rescanning the loss list.
  outage_prone_.assign(n, 0);
  loss_p_.assign(n, 0.0);
  for (const CrashWindow& w : plan.crashes()) {
    if (w.node < n) churn_nodes_.push_back(w.node);
  }
  std::sort(churn_nodes_.begin(), churn_nodes_.end());
  churn_nodes_.erase(std::unique(churn_nodes_.begin(), churn_nodes_.end()),
                     churn_nodes_.end());
  for (const OutageWindow& w : plan.outages()) {
    if (w.child < n) outage_prone_[w.child] = 1;
  }
  for (const LinkLoss& l : plan.losses()) {
    if (l.child < n) {
      // Same independent-process composition as FaultPlan::loss_probability.
      loss_p_[l.child] = 1.0 - (1.0 - loss_p_[l.child]) * (1.0 - l.probability);
    }
  }
  next_round_ = cfg_.heartbeat_period;
}

void FailureDetector::advance(SimTime now) {
  while (next_round_ <= now) {
    run_round(next_round_);
    next_round_ += cfg_.heartbeat_period;
  }
  now_ = std::max(now_, now);
}

std::uint64_t FailureDetector::gossip_mask(NodeId sender) const {
  std::uint64_t mask = 0;
  const auto add = [&mask](NodeId target) {
    if (target < 64) mask |= std::uint64_t{1} << target;
  };
  if (sender != topo_->root() && up_[sender].suspected) {
    add(topo_->parent(sender));
  }
  for (const NodeId c : topo_->children(sender)) {
    if (down_[c].suspected) add(c);
  }
  // add() ignores ids >= 64, so scanning past the mask width is pure waste
  // (the seed looped all n nodes — quadratic across a round's probes).
  const NodeId cap =
      std::min<NodeId>(64, view_.query_suspected_.size());
  for (NodeId t = 0; t < cap; ++t) {
    if (view_.query_suspected_[t] != 0) add(t);
  }
  return mask;
}

void FailureDetector::run_round(SimTime t) {
  const std::size_t n = topo_->num_nodes();

  // 1. Physical churn pass: a reviving node reboots with a fresh incarnation
  //    and a cleared listening state (it must not suspect the whole world
  //    for the silence of its own downtime). Only nodes with crash windows
  //    can ever change liveness, so only they are visited (ascending id,
  //    same order the full scan produced); after this pass alive_ equals
  //    plan->node_up(·, t) for every node, and passes 2/3 read it instead
  //    of rescanning the plan's window list per edge.
  for (const NodeId i : churn_nodes_) {
    const bool up = plan_->node_up(i, t);
    if (up && alive_[i] == 0) {
      ++incarnation_[i];
      EdgeState fresh;
      fresh.last_heard = t;
      fresh.mean_interval = static_cast<double>(cfg_.heartbeat_period);
      if (i != topo_->root()) up_[i] = fresh;
      for (const NodeId c : topo_->children(i)) down_[c] = fresh;
    }
    alive_[i] = up ? 1 : 0;
  }

  // 2. Probe exchange, one probe per direction per tree edge, in fixed edge
  //    order (edges named by child endpoint) — the determinism contract.
  for (NodeId c = 0; c < n; ++c) {
    if (c == topo_->root()) continue;
    const NodeId p = topo_->parent(c);
    const auto transmit = [&](NodeId from, NodeId to, EdgeState& st) {
      if (alive_[from] == 0) return;  // dead senders are silent
      ++probes_sent_;
      probe_bytes_total_ += cfg_.probe_bytes;
      ++link_sent_[c];
      det_obs().probes_sent.inc();
      det_obs().bytes.inc(cfg_.probe_bytes);
      if (outage_prone_[c] != 0 && !plan_->link_up(c, t)) {
        ++probes_dropped_;
        det_obs().probes_dropped.inc();
        return;
      }
      if (plan_->drop(c, kProbeAttemptBase + probe_attempt_[c]++, loss_p_[c])) {
        ++probes_dropped_;
        ++link_lost_[c];
        det_obs().probes_dropped.inc();
        return;
      }
      if (alive_[to] == 0) {
        ++probes_dropped_;
        det_obs().probes_dropped.inc();
        return;
      }
      deliver(from, to, st, t);
    };
    transmit(c, p, down_[c]);
    transmit(p, c, up_[c]);
  }

  // 3. Suspicion evaluation: live receivers compare the silence on each
  //    edge against the phi threshold.
  for (NodeId c = 0; c < n; ++c) {
    if (c == topo_->root()) continue;
    const NodeId p = topo_->parent(c);
    if (alive_[p] != 0) evaluate(p, c, down_[c], t, c);
    if (alive_[c] != 0) evaluate(c, p, up_[c], t, c);
  }

  rebuild_view(t);
}

void FailureDetector::deliver(NodeId from, NodeId to, EdgeState& st,
                              SimTime t) {
  ++probes_delivered_;
  det_obs().probes_delivered.inc();
  const auto interval = static_cast<double>(t - st.last_heard);
  if (interval > 0) {
    st.mean_interval = (1.0 - cfg_.interval_ewma) * st.mean_interval +
                       cfg_.interval_ewma * interval;
  }
  st.last_heard = t;
  if (incarnation_[from] > view_.incarnation_[from]) {
    // The sender returned from the dead since we last heard it.
    view_.incarnation_[from] = incarnation_[from];
    ++rejoins_;
    det_obs().rejoins.inc();
  }
  bool refuted = false;
  if (st.suspected) {
    st.suspected = false;
    refuted = true;
  }
  if (view_.query_suspected_[from] != 0) {
    // Any delivered probe from a query-suspected node proves it alive.
    view_.query_suspected_[from] = 0;
    refuted = true;
  }
  if (refuted) {
    ++refutations_;
    det_obs().refutations.inc();
    events_.push_back({t, to, from, false, view_.incarnation_[from]});
    obs::Tracer::global().instant("net.detector.refute", t, 0, to, from);
  }
  if (sink_) {
    ProbeDelivery d;
    d.from = from;
    d.to = to;
    d.at = t;
    d.nonce = ++nonce_;
    d.incarnation = incarnation_[from];
    d.suspects = gossip_mask(from);
    sink_(d);
  }
}

void FailureDetector::evaluate(NodeId observer, NodeId target, EdgeState& st,
                               SimTime t, NodeId edge_child) {
  if (st.suspected) return;
  const auto elapsed = static_cast<double>(t - st.last_heard);
  if (elapsed <= cfg_.phi_threshold * st.mean_interval) return;
  st.suspected = true;
  st.suspected_since = t;
  ++suspicions_;
  det_obs().suspicions.inc();
  events_.push_back({t, observer, target, true, view_.incarnation_[target]});
  obs::Tracer::global().instant("net.detector.suspect", t, 0, observer,
                                target);
  const bool target_up = plan_->node_up(target, t);
  const bool link_ok = plan_->link_up(edge_child, t);
  if (target_up && link_ok) {
    // Nothing is actually wrong: loss alone starved the edge.
    ++false_suspicions_;
    det_obs().false_suspicions.inc();
    return;
  }
  // True detection: latency is measured from the onset of the most recent
  // covering fault condition.
  SimTime onset = 0;
  if (!target_up) {
    for (const auto& w : plan_->crashes()) {
      if (w.node == target && w.from <= t && t < w.until) {
        onset = std::max(onset, w.from);
      }
    }
  }
  if (!link_ok) {
    for (const auto& w : plan_->outages()) {
      if (w.child == edge_child && w.from <= t && t < w.until) {
        onset = std::max(onset, w.from);
      }
    }
  }
  det_obs().latency_ns.observe(static_cast<double>(t - onset));
}

void FailureDetector::report_failure(NodeId observer, NodeId target,
                                     SimTime t) {
  det_obs().reports.inc();
  if (target >= view_.query_suspected_.size() ||
      view_.query_suspected_[target] != 0) {
    return;
  }
  view_.query_suspected_[target] = 1;
  ++suspicions_;
  det_obs().suspicions.inc();
  events_.push_back({t, observer, target, true, view_.incarnation_[target]});
  obs::Tracer::global().instant("net.detector.suspect", t, 0, observer,
                                target);
  if (plan_->node_up(target, t)) {
    ++false_suspicions_;
    det_obs().false_suspicions.inc();
  } else {
    SimTime onset = 0;
    for (const auto& w : plan_->crashes()) {
      if (w.node == target && w.from <= t && t < w.until) {
        onset = std::max(onset, w.from);
      }
    }
    det_obs().latency_ns.observe(static_cast<double>(t - onset));
  }
}

void FailureDetector::rebuild_view(SimTime /*t*/) {
  const std::size_t n = topo_->num_nodes();
  for (NodeId c = 0; c < n; ++c) {
    if (c == topo_->root()) {
      view_.edge_suspected_[c] = 0;
      continue;
    }
    view_.edge_suspected_[c] =
        (up_[c].suspected || down_[c].suspected) ? 1 : 0;
    view_.link_loss_[c] =
        link_sent_[c] == 0
            ? 0.0
            : std::min(0.95, static_cast<double>(link_lost_[c]) /
                                 static_cast<double>(link_sent_[c]));
  }
}

}  // namespace edgehd::net
