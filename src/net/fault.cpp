#include "fault.hpp"

#include <cmath>
#include <stdexcept>

namespace edgehd::net {

using detail::mix64;
using detail::unit_from;

namespace {

constexpr bool in_window(SimTime at, SimTime from, SimTime until) noexcept {
  return at >= from && at < until;
}

}  // namespace

FaultPlan& FaultPlan::crash(NodeId node, SimTime from, SimTime until) {
  if (node == kNoNode || from < 0 || until < from) {
    throw std::invalid_argument("FaultPlan: malformed crash window");
  }
  crashes_.push_back({node, from, until});
  return *this;
}

FaultPlan& FaultPlan::outage(NodeId child, SimTime from, SimTime until) {
  if (child == kNoNode || from < 0 || until < from) {
    throw std::invalid_argument("FaultPlan: malformed outage window");
  }
  outages_.push_back({child, from, until});
  return *this;
}

FaultPlan& FaultPlan::loss(NodeId child, double probability) {
  if (child == kNoNode || probability < 0.0 || probability > 1.0 ||
      !std::isfinite(probability)) {
    throw std::invalid_argument("FaultPlan: loss probability out of range");
  }
  losses_.push_back({child, probability});
  return *this;
}

bool FaultPlan::node_up(NodeId node, SimTime at) const noexcept {
  for (const auto& w : crashes_) {
    if (w.node == node && in_window(at, w.from, w.until)) return false;
  }
  return true;
}

bool FaultPlan::link_up(NodeId child, SimTime at) const noexcept {
  for (const auto& w : outages_) {
    if (w.child == child && in_window(at, w.from, w.until)) return false;
  }
  return true;
}

double FaultPlan::loss_probability(NodeId child) const noexcept {
  double p = 0.0;
  // Multiple entries on one link compose as independent loss processes.
  for (const auto& l : losses_) {
    if (l.child == child) p = 1.0 - (1.0 - p) * (1.0 - l.probability);
  }
  return p;
}

bool FaultPlan::drop(NodeId child, std::uint64_t attempt) const noexcept {
  return drop(child, attempt, loss_probability(child));
}

bool FaultPlan::drop(NodeId child, std::uint64_t attempt,
                     double p) const noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  const std::uint64_t word =
      mix64(seed_ ^ mix64(0x9e3779b97f4a7c15ULL * (child + 1) ^
                          0xd1b54a32d192ed03ULL * (attempt + 1)));
  return unit_from(word) < p;
}

HealthMask HealthMask::snapshot(const FaultPlan& plan, std::size_t num_nodes,
                                SimTime at) {
  HealthMask mask(num_nodes);
  for (NodeId id = 0; id < num_nodes; ++id) {
    mask.node_up_[id] = plan.node_up(id, at) ? 1 : 0;
    mask.link_up_[id] = plan.link_up(id, at) ? 1 : 0;
    mask.link_loss_[id] = plan.loss_probability(id);
  }
  return mask;
}

HealthMask& HealthMask::set_node_up(NodeId id, bool up) {
  if (id >= node_up_.size()) {
    throw std::out_of_range("HealthMask: node id out of range");
  }
  node_up_[id] = up ? 1 : 0;
  return *this;
}

HealthMask& HealthMask::set_link_up(NodeId child, bool up) {
  if (child >= link_up_.size()) {
    throw std::out_of_range("HealthMask: node id out of range");
  }
  link_up_[child] = up ? 1 : 0;
  return *this;
}

HealthMask& HealthMask::set_link_loss(NodeId child, double probability) {
  if (child >= link_loss_.size()) {
    throw std::out_of_range("HealthMask: node id out of range");
  }
  if (probability < 0.0 || probability > 1.0 || !std::isfinite(probability)) {
    throw std::invalid_argument("HealthMask: loss probability out of range");
  }
  link_loss_[child] = probability;
  return *this;
}

bool HealthMask::all_healthy() const noexcept {
  for (const auto up : node_up_) {
    if (up == 0) return false;
  }
  for (const auto up : link_up_) {
    if (up == 0) return false;
  }
  for (const double p : link_loss_) {
    if (p > 0.0) return false;
  }
  return true;
}

bool HealthMask::reachable_up(const Topology& topo, NodeId id,
                              NodeId ancestor) const {
  if (!node_up(id)) return false;
  NodeId cur = id;
  while (cur != ancestor) {
    if (cur == topo.root()) return false;  // ancestor not on the root path
    if (!link_up(cur)) return false;
    cur = topo.parent(cur);
    if (!node_up(cur)) return false;
  }
  return true;
}

double expected_attempts(double p, std::size_t max_retries) noexcept {
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return static_cast<double>(max_retries + 1);
  // Geometric series: 1 + p + ... + p^max_retries.
  return (1.0 - std::pow(p, static_cast<double>(max_retries + 1))) / (1.0 - p);
}

}  // namespace edgehd::net
