#include "topology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edgehd::net {

Topology::Topology(std::vector<NodeId> parents) : parents_(std::move(parents)) {
  const std::size_t n = parents_.size();
  if (n == 0) {
    throw std::invalid_argument("Topology: empty parent vector");
  }
  // Children in CSR form, built in two counting passes over the parent
  // vector (validate + count, then prefix-sum + fill): three exactly-sized
  // flat allocations for the whole tree, no per-node vectors.
  child_off_.assign(n + 1, 0);
  for (NodeId id = 0; id < n; ++id) {
    const NodeId p = parents_[id];
    if (p == kNoNode) {
      if (root_ != kNoNode) {
        throw std::invalid_argument("Topology: multiple roots");
      }
      root_ = id;
    } else {
      if (p >= n || p == id) {
        throw std::invalid_argument("Topology: invalid parent reference");
      }
      ++child_off_[p + 1];
    }
  }
  if (root_ == kNoNode) {
    throw std::invalid_argument("Topology: no root");
  }
  for (std::size_t i = 1; i <= n; ++i) child_off_[i] += child_off_[i - 1];
  child_list_.resize(n - 1);  // every node but the root is someone's child
  {
    // Fill via a scratch cursor per parent; children land in node-id order
    // because ids are visited in order (same order the per-node vectors
    // produced). The cursor array doubles as the leaf-peel counter below.
    std::vector<std::size_t> cursor(child_off_.begin(), child_off_.end() - 1);
    for (NodeId id = 0; id < n; ++id) {
      const NodeId p = parents_[id];
      if (p != kNoNode) child_list_[cursor[p]++] = id;
    }
  }

  // Compute levels bottom-up and verify reachability (cycle check) in one
  // topological pass: count children-to-process per node, peel leaves
  // inward. Every node of a well-formed tree is processed exactly once.
  levels_.assign(n, 0);
  std::vector<std::size_t> pending(n);
  std::vector<NodeId> stack;
  for (NodeId id = 0; id < n; ++id) {
    pending[id] = child_off_[id + 1] - child_off_[id];
    if (pending[id] == 0) {
      levels_[id] = 1;
      stack.push_back(id);
    }
  }
  std::size_t processed = 0;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    ++processed;
    const NodeId p = parents_[id];
    if (p == kNoNode) continue;
    levels_[p] = std::max(levels_[p], levels_[id] + 1);
    if (--pending[p] == 0) stack.push_back(p);
  }
  if (processed != n) {
    throw std::invalid_argument("Topology: parent vector contains a cycle");
  }
}

NodeId Topology::parent(NodeId id) const {
  if (id >= parents_.size()) {
    throw std::out_of_range("Topology: node id out of range");
  }
  return parents_[id];
}

std::span<const NodeId> Topology::children(NodeId id) const {
  if (id >= parents_.size()) {
    throw std::out_of_range("Topology: node id out of range");
  }
  return {child_list_.data() + child_off_[id],
          child_off_[id + 1] - child_off_[id]};
}

bool Topology::is_leaf(NodeId id) const { return children(id).empty(); }

std::size_t Topology::level(NodeId id) const {
  if (id >= levels_.size()) {
    throw std::out_of_range("Topology: node id out of range");
  }
  return levels_[id];
}

std::size_t Topology::depth() const { return levels_[root_]; }

std::vector<NodeId> Topology::leaves() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (is_leaf(id)) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Topology::nodes_at_level(std::size_t level) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (levels_[id] == level) out.push_back(id);
  }
  return out;
}

std::size_t Topology::hops_to_root(NodeId id) const {
  std::size_t hops = 0;
  for (NodeId cur = id; cur != root_; cur = parents_[cur]) ++hops;
  return hops;
}

Topology Topology::star(std::size_t end_nodes) {
  if (end_nodes == 0) {
    throw std::invalid_argument("Topology::star: need at least one end node");
  }
  std::vector<NodeId> parents(end_nodes + 1);
  const NodeId root = end_nodes;
  for (NodeId id = 0; id < end_nodes; ++id) parents[id] = root;
  parents[root] = kNoNode;
  return Topology(std::move(parents));
}

Topology Topology::paper_tree(std::size_t end_nodes) {
  if (end_nodes == 0) {
    throw std::invalid_argument("Topology::paper_tree: need end nodes");
  }
  const std::size_t gateways = end_nodes / 2;
  const bool leftover = (end_nodes % 2) != 0;
  const std::size_t n = end_nodes + gateways + 1;
  const NodeId root = n - 1;
  std::vector<NodeId> parents(n);
  for (NodeId id = 0; id < end_nodes; ++id) {
    const std::size_t pair = id / 2;
    // Paired end nodes hang under a gateway; the odd one out (if any)
    // attaches directly to the central node, per Section VI-A.
    parents[id] = (leftover && id == end_nodes - 1) ? root
                                                    : end_nodes + pair;
  }
  for (NodeId g = 0; g < gateways; ++g) parents[end_nodes + g] = root;
  parents[root] = kNoNode;
  return Topology(std::move(parents));
}

Topology Topology::pecan_tree(std::size_t appliances, std::size_t per_house,
                              std::size_t per_street) {
  if (appliances == 0 || per_house == 0 || per_street == 0) {
    throw std::invalid_argument("Topology::pecan_tree: sizes must be positive");
  }
  const std::size_t houses = (appliances + per_house - 1) / per_house;
  const std::size_t streets = (houses + per_street - 1) / per_street;
  const std::size_t n = appliances + houses + streets + 1;
  const NodeId root = n - 1;
  std::vector<NodeId> parents(n);
  for (NodeId a = 0; a < appliances; ++a) {
    parents[a] = appliances + std::min(a / per_house, houses - 1);
  }
  for (NodeId h = 0; h < houses; ++h) {
    parents[appliances + h] =
        appliances + houses + std::min(h / per_street, streets - 1);
  }
  for (NodeId s = 0; s < streets; ++s) {
    parents[appliances + houses + s] = root;
  }
  parents[root] = kNoNode;
  return Topology(std::move(parents));
}

Topology Topology::uniform_depth(std::size_t end_nodes, std::size_t levels) {
  if (end_nodes == 0 || levels < 2) {
    throw std::invalid_argument(
        "Topology::uniform_depth: need end nodes and depth >= 2");
  }
  // Choose a fanout so (levels-1) rounds of grouping reach a single root.
  const double f = std::pow(static_cast<double>(end_nodes),
                            1.0 / static_cast<double>(levels - 1));
  const std::size_t fanout = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(f)));

  std::vector<std::size_t> layer_sizes{end_nodes};
  while (layer_sizes.back() > 1) {
    layer_sizes.push_back((layer_sizes.back() + fanout - 1) / fanout);
  }
  // Pad with single-node layers if grouping converged early, so the tree has
  // exactly the requested depth.
  while (layer_sizes.size() < levels) layer_sizes.push_back(1);

  std::size_t total = 0;
  for (std::size_t s : layer_sizes) total += s;
  std::vector<NodeId> parents(total);
  std::size_t layer_start = 0;
  for (std::size_t l = 0; l + 1 < layer_sizes.size(); ++l) {
    const std::size_t cur = layer_sizes[l];
    const std::size_t nxt = layer_sizes[l + 1];
    const std::size_t next_start = layer_start + cur;
    for (std::size_t i = 0; i < cur; ++i) {
      // Spread children evenly over the next layer.
      parents[layer_start + i] = next_start + std::min(i * nxt / cur, nxt - 1);
    }
    layer_start = next_start;
  }
  parents[total - 1] = kNoNode;
  return Topology(std::move(parents));
}

}  // namespace edgehd::net
