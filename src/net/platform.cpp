#include "platform.hpp"

#include <cmath>

namespace edgehd::net {

SimTime time_for_macs(const Platform& p, std::uint64_t macs) {
  const double seconds = static_cast<double>(macs) / p.macs_per_second;
  return static_cast<SimTime>(std::llround(seconds * 1e9));
}

double energy_for_macs(const Platform& p, std::uint64_t macs) {
  return p.active_power_w * static_cast<double>(macs) / p.macs_per_second;
}

const Platform& dnn_gpu() {
  // Backprop-heavy kernels: well below peak FLOPs at these batch sizes.
  static const Platform p{"DNN-GPU (GTX 1080 Ti)", 1.5e11, 250.0};
  return p;
}

const Platform& hd_gpu() {
  // HD kernels are streaming integer ops: higher effective utilization and
  // much lower board power than backprop (memory-bound, no FP32 FMA burn).
  static const Platform p{"HD-GPU (GTX 1080 Ti)", 2.5e11, 120.0};
  return p;
}

const Platform& hd_fpga_central() {
  // Kintex-7: 840 DSP slices at 200 MHz, one MAC per DSP per cycle in the
  // fully pipelined design. Slower than the GPU, far lower power (9.8 W).
  static const Platform p{"HD-FPGA (Kintex-7)", 1.68e11, 9.8};
  return p;
}

const Platform& edge_fpga() {
  // A small slice of the fabric suffices for the reduced per-node dimension;
  // the paper reports 0.28 W average per node.
  static const Platform p{"Edge-FPGA (per node)", 1.6e10, 0.28};
  return p;
}

const Platform& edge_node() {
  // A hierarchical EdgeHD node as deployed: per-node FPGA (0.28 W) plus the
  // Raspberry Pi 3B+ host that feeds it and talks to the network (3.7 W).
  static const Platform p{"EdgeHD node (FPGA + RPi host)", 8.0e9, 3.98};
  return p;
}

const Platform& rpi3() {
  static const Platform p{"Raspberry Pi 3B+", 1.0e9, 3.7};
  return p;
}

}  // namespace edgehd::net
