// Deterministic fault injection for the network layer.
//
// A FaultPlan describes everything that goes wrong during a run: node
// crash/recover windows, link outage windows, and per-link Bernoulli packet
// loss. Every stochastic decision is a stateless hash of (plan seed, link,
// per-link attempt index), so a run is reproducible bit-for-bit from
// (seed, plan) — the same determinism contract the runtime layer gives for
// worker counts. The Simulator consumes a plan directly (drop semantics,
// send_reliable); the core protocols consume a HealthMask, a connectivity
// snapshot of the plan at one instant, because the protocol byte accounting
// is analytic rather than event-driven.
//
// This is the *transport-level* fault model. The payload-level counterpart —
// what erased dimensions do to accuracy once a packet is gone — is
// EdgeHdSystem::accuracy_at_node_with_loss / _with_burst_loss (Figure 12).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "medium.hpp"
#include "topology.hpp"

namespace edgehd::net {

namespace detail {

/// SplitMix64 finalizer (same mixer as hdc::splitmix64, duplicated so
/// edgehd_net keeps zero dependencies on the HDC layer).
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform [0, 1) from the top 53 bits of a mixed word.
constexpr double unit_from(std::uint64_t u) noexcept {
  return static_cast<double>(u >> 11) * 0x1.0p-53;
}

}  // namespace detail

/// Open-ended end for crash/outage windows.
inline constexpr SimTime kForever = std::numeric_limits<SimTime>::max();

/// Half-open window [from, until) during which a node is crashed: it neither
/// transmits nor receives.
struct CrashWindow {
  NodeId node = kNoNode;
  SimTime from = 0;
  SimTime until = kForever;
};

/// Half-open window [from, until) during which the uplink of `child` (the
/// link to its parent) is down: no transfer may start in either direction.
struct OutageWindow {
  NodeId child = kNoNode;
  SimTime from = 0;
  SimTime until = kForever;
};

/// Bernoulli loss on the uplink of `child`: each transmission attempt is
/// dropped in the air with this probability, independently per attempt.
struct LinkLoss {
  NodeId child = kNoNode;
  double probability = 0.0;
};

/// A seeded description of node crashes, link outages and packet loss.
/// Default-constructed plans are all-healthy and cost nothing to consult.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t seed() const noexcept { return seed_; }

  /// Crashes `node` for [from, until); returns *this for chaining.
  FaultPlan& crash(NodeId node, SimTime from = 0, SimTime until = kForever);

  /// Takes the uplink of `child` down for [from, until).
  FaultPlan& outage(NodeId child, SimTime from = 0, SimTime until = kForever);

  /// Sets Bernoulli loss `probability` in [0, 1] on the uplink of `child`.
  FaultPlan& loss(NodeId child, double probability);

  /// True when no crash, outage or loss entry exists.
  bool empty() const noexcept {
    return crashes_.empty() && outages_.empty() && losses_.empty();
  }

  bool node_up(NodeId node, SimTime at) const noexcept;
  bool link_up(NodeId child, SimTime at) const noexcept;
  double loss_probability(NodeId child) const noexcept;

  /// Deterministic Bernoulli draw for the `attempt`-th transmission on the
  /// uplink of `child`. A stateless hash of (seed, child, attempt): the draw
  /// depends only on the per-link attempt index, never on how events from
  /// other links interleave.
  bool drop(NodeId child, std::uint64_t attempt) const noexcept;

  /// Same draw with the composed probability already in hand. `p` must be
  /// the value loss_probability(child) returns; callers on per-packet hot
  /// paths (the Simulator, the FailureDetector) cache it per link at plan
  /// installation instead of rescanning the loss list on every attempt. The
  /// two overloads produce bit-identical decisions by construction.
  bool drop(NodeId child, std::uint64_t attempt, double p) const noexcept;

  const std::vector<CrashWindow>& crashes() const noexcept { return crashes_; }
  const std::vector<OutageWindow>& outages() const noexcept { return outages_; }
  const std::vector<LinkLoss>& losses() const noexcept { return losses_; }

 private:
  std::uint64_t seed_ = 0;
  std::vector<CrashWindow> crashes_;
  std::vector<OutageWindow> outages_;
  std::vector<LinkLoss> losses_;
};

/// Connectivity snapshot used by the analytic core protocols: which nodes
/// and uplinks are up right now, and the loss rate a reliable transport
/// would fight on each link. Default-constructed masks are all-healthy.
class HealthMask {
 public:
  HealthMask() = default;
  explicit HealthMask(std::size_t num_nodes)
      : node_up_(num_nodes, 1),
        link_up_(num_nodes, 1),
        link_loss_(num_nodes, 0.0) {}

  /// Evaluates `plan` at instant `at` over `num_nodes` nodes.
  static HealthMask snapshot(const FaultPlan& plan, std::size_t num_nodes,
                             SimTime at);

  std::size_t size() const noexcept { return node_up_.size(); }
  bool empty() const noexcept { return node_up_.empty(); }

  bool node_up(NodeId id) const noexcept {
    return id >= node_up_.size() || node_up_[id] != 0;
  }
  bool link_up(NodeId child) const noexcept {
    return child >= link_up_.size() || link_up_[child] != 0;
  }
  double link_loss(NodeId child) const noexcept {
    return child < link_loss_.size() ? link_loss_[child] : 0.0;
  }

  HealthMask& set_node_up(NodeId id, bool up);
  HealthMask& set_link_up(NodeId child, bool up);
  HealthMask& set_link_loss(NodeId child, double probability);

  /// True when every node and link is up and loss-free (the mask changes
  /// nothing — protocols take their fault-free fast paths).
  bool all_healthy() const noexcept;

  /// True when `id` is up and every hop from `id` to `ancestor` — uplinks
  /// and intermediate nodes, `ancestor` included — is up. `id == ancestor`
  /// reduces to node_up(id).
  bool reachable_up(const Topology& topo, NodeId id, NodeId ancestor) const;

 private:
  std::vector<std::uint8_t> node_up_;
  std::vector<std::uint8_t> link_up_;
  std::vector<double> link_loss_;
};

/// Expected transmissions of one packet over a link with Bernoulli loss `p`
/// under a reliable transport capped at `max_retries` retries (so at most
/// max_retries + 1 attempts): sum of p^k for k in [0, max_retries].
double expected_attempts(double p, std::size_t max_retries) noexcept;

}  // namespace edgehd::net
