#include "medium.hpp"

#include <cmath>
#include <stdexcept>

namespace edgehd::net {

const std::vector<Medium>& all_media() {
  // Effective rates: wired links near line rate; 802.11ac and 802.11n use
  // the application-level throughputs quoted in Section VI-E; Bluetooth 4.0
  // is the ~1 Mbps the paper measures on the RPi 3B+. Latencies are typical
  // one-hop figures; radio powers are representative embedded-module draws.
  static const std::vector<Medium> kMedia = {
      {MediumKind::kWired1G, "Wired-1Gbps", 1e9, 50 * kMicrosecond, 0.8, 0.8,
       false},
      {MediumKind::kWired500M, "Wired-500Mbps", 500e6, 50 * kMicrosecond, 0.8,
       0.8, false},
      {MediumKind::kWifi80211ac, "WiFi-802.11ac", 46.5e6, 2 * kMillisecond,
       1.3, 1.0, true},
      {MediumKind::kWifi80211n, "WiFi-802.11n", 23.5e6, 3 * kMillisecond, 1.2,
       0.9, true},
      {MediumKind::kBluetooth4, "Bluetooth-4.0", 1e6, 10 * kMillisecond, 0.1,
       0.1, true},
  };
  return kMedia;
}

const Medium& medium(MediumKind kind) {
  for (const auto& m : all_media()) {
    if (m.kind == kind) return m;
  }
  throw std::invalid_argument("medium: unknown kind");
}

SimTime transfer_time(const Medium& m, std::uint64_t bytes) {
  const double seconds = static_cast<double>(bytes) * 8.0 / m.bandwidth_bps;
  return m.latency + static_cast<SimTime>(std::llround(seconds * 1e9));
}

double transfer_energy_j(const Medium& m, std::uint64_t bytes) {
  const double seconds = static_cast<double>(bytes) * 8.0 / m.bandwidth_bps;
  return seconds * (m.tx_power_w + m.rx_power_w);
}

}  // namespace edgehd::net
