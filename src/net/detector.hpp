// Deterministic heartbeat failure detection (the earned-knowledge
// replacement for the oracle HealthMask).
//
// Under the oracle model (PR 2) every protocol consulted a HealthMask
// snapshotted straight from the FaultPlan — perfect, instantaneous knowledge
// of who is alive. This module makes that knowledge *earned*: every
// heartbeat period each node exchanges a HealthProbe with its tree
// neighbours (parent and children), and a phi-accrual-style rule turns
// missed probes into per-edge suspicion. Detection latency, false suspicion
// under packet loss, and probe bytes all become observable costs, charged to
// the net.detector.* metrics — never to the per-phase CommStats totals, so
// an all-healthy run with the detector enabled reproduces the golden
// end-to-end bytes exactly.
//
// Everything is virtual-time and seeded: probe delivery reuses the
// FaultPlan's stateless Bernoulli draws (per-link attempt indices disjoint
// from data traffic), rounds are processed in fixed node order, and the
// suspicion timeline is a pure function of (plan, config) — bit-identical
// across runs and worker counts.
//
// Division of labour with the FaultPlan: the plan remains the simulated
// *physical world* (a crashed node cannot transmit, a dead origin cannot
// issue a query); the SuspicionView built here is what the protocols are
// allowed to *believe*. Routing, sessions and the serving plane make every
// reachability decision from the view; the plan is only consulted where the
// world itself must be simulated.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault.hpp"
#include "medium.hpp"
#include "topology.hpp"

namespace edgehd::net {

/// Knobs of the heartbeat detector. Defaults suspect after ~3 silent
/// periods, the classical phi-accrual operating point.
struct DetectorConfig {
  bool enabled = false;
  /// Heartbeat period: every node probes its tree neighbours this often.
  SimTime heartbeat_period = 20 * kMillisecond;
  /// Suspect an edge once the silence exceeds this multiple of the smoothed
  /// inter-arrival interval (phi-accrual with a fixed threshold).
  double phi_threshold = 3.0;
  /// EWMA weight of the newest inter-arrival interval.
  double interval_ewma = 0.2;
  /// How far the analytic facade advances the detector before consulting it
  /// (the detection epoch horizon for non-event-driven callers).
  SimTime warmup = 200 * kMillisecond;
  /// Accounting bytes of one probe (proto::wire_size of a HealthProbe; kept
  /// as a plain number so edgehd_net stays independent of the proto layer).
  std::uint64_t probe_bytes = 32;
};

/// One transition of the suspicion timeline, in virtual time. The sequence
/// of these events is the detector's determinism contract: fixed
/// (plan, config) => bit-identical event list.
struct SuspicionEvent {
  SimTime at = 0;
  NodeId observer = kNoNode;  ///< who formed or dropped the belief
  NodeId target = kNoNode;    ///< whom the belief is about
  bool suspected = false;     ///< true = suspicion raised, false = refuted
  std::uint64_t incarnation = 0;  ///< target's generation as known then
};

/// The merged belief state the protocols consult instead of the oracle
/// HealthMask. Suspicion is per tree edge (each edge named by its child
/// endpoint); a node is believed dead only when *every* adjacent edge is
/// suspected — one silent edge with a live far endpoint reads as a link
/// failure, matching what the evidence can actually distinguish.
class SuspicionView {
 public:
  SuspicionView() = default;
  explicit SuspicionView(const Topology& topo);

  std::size_t size() const noexcept { return edge_suspected_.size(); }
  bool empty() const noexcept { return edge_suspected_.empty(); }

  /// Believed alive. True for out-of-range ids (mirrors HealthMask).
  bool node_up(NodeId id) const noexcept;
  /// Uplink of `child` believed usable.
  bool link_up(NodeId child) const noexcept {
    return child >= edge_suspected_.size() || edge_suspected_[child] == 0;
  }
  /// Estimated Bernoulli loss on the uplink of `child` (observed probe drop
  /// fraction while the edge was believed up).
  double link_loss(NodeId child) const noexcept {
    return child < link_loss_.size() ? link_loss_[child] : 0.0;
  }

  /// True when nothing is suspected and no loss has been observed — the
  /// protocols may take their fault-free fast paths.
  bool all_healthy() const noexcept;

  /// True when `id` is believed up and every hop from `id` to `ancestor` is
  /// believed up. Same contract as HealthMask::reachable_up.
  bool reachable_up(const Topology& topo, NodeId id, NodeId ancestor) const;

  /// Target's membership generation as currently believed (bumped by every
  /// observed rejoin).
  std::uint64_t incarnation(NodeId id) const noexcept {
    return id < incarnation_.size() ? incarnation_[id] : 0;
  }

 private:
  friend class FailureDetector;
  const Topology* topo_ = nullptr;
  std::vector<std::uint8_t> edge_suspected_;  ///< by child endpoint
  std::vector<std::uint8_t> query_suspected_; ///< query-path death reports
  std::vector<double> link_loss_;
  std::vector<std::uint64_t> incarnation_;
};

/// Seeded, deterministic heartbeat/phi-accrual failure detector over a
/// FaultPlan. advance(t) processes every heartbeat round with round time
/// <= t; the resulting SuspicionView and SuspicionEvent timeline are pure
/// functions of (plan, config, t).
class FailureDetector {
 public:
  /// A delivered probe, handed to the probe sink so the owner can post the
  /// equivalent HealthProbe envelope on a real bus.
  struct ProbeDelivery {
    NodeId from = kNoNode;
    NodeId to = kNoNode;
    SimTime at = 0;
    std::uint64_t nonce = 0;
    std::uint64_t incarnation = 0;
    std::uint64_t suspects = 0;  ///< sender's suspicion bitmask (gossip)
  };
  using ProbeSink = std::function<void(const ProbeDelivery&)>;

  /// Validates the config (throws std::invalid_argument on nonsense) and
  /// initialises the all-healthy belief state at t = 0. The topology and
  /// plan must outlive the detector.
  FailureDetector(const Topology& topo, const FaultPlan& plan,
                  DetectorConfig cfg);

  /// Processes every heartbeat round in (last_advanced, now]. Idempotent for
  /// non-increasing `now`.
  void advance(SimTime now);

  /// The merged belief state as of the last advance().
  const SuspicionView& view() const noexcept { return view_; }

  /// Query-path evidence: `observer` tried to use `target` at time `t` and
  /// got nothing. Marks the target suspected immediately (and the connecting
  /// edge when adjacent); the next delivered probe from the target refutes.
  void report_failure(NodeId observer, NodeId target, SimTime t);

  /// The full suspicion timeline since construction, in event order.
  const std::vector<SuspicionEvent>& events() const noexcept {
    return events_;
  }

  /// Installs the callback invoked for every *delivered* probe (dropped
  /// probes never reach a receiver, so they never reach the sink either).
  void set_probe_sink(ProbeSink sink) { sink_ = std::move(sink); }

  const DetectorConfig& config() const noexcept { return cfg_; }
  SimTime now() const noexcept { return now_; }

  // ---- detector-plane accounting (never part of CommStats) ---------------
  std::uint64_t probes_sent() const noexcept { return probes_sent_; }
  std::uint64_t probes_delivered() const noexcept { return probes_delivered_; }
  std::uint64_t probes_dropped() const noexcept { return probes_dropped_; }
  std::uint64_t probe_bytes() const noexcept { return probe_bytes_total_; }
  std::uint64_t suspicions() const noexcept { return suspicions_; }
  std::uint64_t false_suspicions() const noexcept { return false_suspicions_; }
  std::uint64_t refutations() const noexcept { return refutations_; }
  std::uint64_t rejoins() const noexcept { return rejoins_; }

 private:
  /// Receiver-side state of one directed edge (phi-accrual bookkeeping).
  struct EdgeState {
    SimTime last_heard = 0;
    double mean_interval = 0.0;
    bool suspected = false;
    SimTime suspected_since = 0;
  };

  void run_round(SimTime t);
  void deliver(NodeId from, NodeId to, EdgeState& st, SimTime t);
  void evaluate(NodeId observer, NodeId target, EdgeState& st, SimTime t,
                NodeId edge_child);
  void rebuild_view(SimTime t);
  std::uint64_t gossip_mask(NodeId sender) const;

  const Topology* topo_;
  const FaultPlan* plan_;
  DetectorConfig cfg_;
  SimTime now_ = 0;
  SimTime next_round_ = 0;

  /// up_[c]: child c listening for its parent; down_[c]: the parent
  /// listening for child c. Edges are named by their child endpoint.
  std::vector<EdgeState> up_;
  std::vector<EdgeState> down_;
  std::vector<std::uint8_t> alive_;          ///< physical liveness last round
  std::vector<std::uint64_t> incarnation_;   ///< physical generation counters
  std::vector<std::uint64_t> probe_attempt_; ///< per-link Bernoulli indices
  std::vector<std::uint64_t> link_sent_;     ///< probes offered per uplink
  std::vector<std::uint64_t> link_lost_;     ///< Bernoulli drops per uplink

  // ---- plan caches (built once; the plan is immutable after construction)
  // so the per-round hot loops are O(active edges) with no window/loss-list
  // scans for the (at fleet scale, vast) unaffected majority.
  std::vector<NodeId> churn_nodes_;          ///< sorted unique crash-prone ids
  std::vector<std::uint8_t> outage_prone_;   ///< uplink has >=1 outage window
  std::vector<double> loss_p_;               ///< composed loss per uplink

  SuspicionView view_;
  std::vector<SuspicionEvent> events_;
  std::uint64_t nonce_ = 0;
  ProbeSink sink_;

  std::uint64_t probes_sent_ = 0;
  std::uint64_t probes_delivered_ = 0;
  std::uint64_t probes_dropped_ = 0;
  std::uint64_t probe_bytes_total_ = 0;
  std::uint64_t suspicions_ = 0;
  std::uint64_t false_suspicions_ = 0;
  std::uint64_t refutations_ = 0;
  std::uint64_t rejoins_ = 0;
};

}  // namespace edgehd::net
