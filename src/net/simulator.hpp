// Discrete-event network simulator — the NS-3 substitute (see DESIGN.md).
//
// Models an EdgeHD deployment as a tree of nodes exchanging store-and-forward
// messages over half-duplex links. Three resources are tracked per node:
// compute occupancy (a node runs one task at a time), link occupancy (one
// transfer at a time per parent-child link), and energy (compute power ×
// busy time plus radio power × air time). The simulator is deterministic:
// ties in event time are broken by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "medium.hpp"
#include "topology.hpp"

namespace edgehd::net {

/// Per-node accounting accumulated over a run.
struct NodeStats {
  SimTime compute_busy = 0;   ///< total time the node's processor was busy
  SimTime tx_time = 0;        ///< total air time as sender
  SimTime rx_time = 0;        ///< total air time as receiver
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  double compute_energy_j = 0.0;
  double comm_energy_j = 0.0;
};

/// Event-driven simulator over a Topology with a single link medium (the
/// paper evaluates one medium per experiment; use set_link_medium for mixed
/// deployments).
class Simulator {
 public:
  Simulator(Topology topology, Medium medium);

  const Topology& topology() const noexcept { return topology_; }
  SimTime now() const noexcept { return now_; }

  /// Overrides the medium of the link between `child` and its parent.
  void set_link_medium(NodeId child, Medium medium);

  /// Schedules `fn` to run `delay` from now.
  void schedule(SimTime delay, std::function<void()> fn);

  /// Occupies `node`'s processor for `duration` at `power_w`, starting when
  /// the node becomes free; `on_done` (optional) fires at completion.
  void compute(NodeId node, SimTime duration, double power_w,
               std::function<void()> on_done = {});

  /// Sends `bytes` one hop between `from` and `to` (which must be
  /// parent/child in the topology). The link serializes transfers;
  /// `on_delivered` (optional) fires when the last byte arrives.
  void send(NodeId from, NodeId to, std::uint64_t bytes,
            std::function<void()> on_delivered = {});

  /// Multi-hop convenience: forwards `bytes` hop by hop from `from` up to
  /// the root (store-and-forward through every gateway), then fires
  /// `on_delivered`.
  void send_to_root(NodeId from, std::uint64_t bytes,
                    std::function<void()> on_delivered = {});

  /// Runs until the event queue drains. Returns the completion time of the
  /// last event (the makespan).
  SimTime run();

  const NodeStats& stats(NodeId node) const;

  /// Sum of compute + communication energy over all nodes.
  double total_energy_j() const;

  /// Sum of bytes placed on the air/wire (each hop counted once).
  std::uint64_t total_bytes_transferred() const;

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// The link a node shares with its parent.
  struct Link {
    Medium medium;
    SimTime busy_until = 0;
  };

  Link& uplink_of(NodeId from, NodeId to);

  Topology topology_;
  std::vector<Link> links_;  // indexed by the child endpoint
  SimTime shared_busy_until_ = 0;  ///< collision-domain occupancy (wireless)
  std::vector<SimTime> node_busy_until_;
  std::vector<NodeStats> stats_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  SimTime now_ = 0;
  SimTime makespan_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace edgehd::net
