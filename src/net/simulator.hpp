// Discrete-event network simulator — the NS-3 substitute (see DESIGN.md).
//
// Models an EdgeHD deployment as a tree of nodes exchanging store-and-forward
// messages over half-duplex links. Three resources are tracked per node:
// compute occupancy (a node runs one task at a time), link occupancy (one
// transfer at a time per parent-child link), and energy (compute power ×
// busy time plus radio power × air time). The simulator is deterministic:
// ties in event time are broken by insertion order, and every fault draw is
// a stateless function of (FaultPlan seed, link, attempt index), so a run is
// reproducible bit-for-bit from (seed, plan).
//
// Event core (DESIGN.md §12): pending events live in a calendar/ladder
// queue (event_queue.hpp) that preserves the exact (time, seq) total order
// of the seed binary heap, and callbacks are small-buffer-optimized
// InlineFunctions (inline_fn.hpp) sized so the schedule→dispatch hot path —
// timers, compute completions, both transfer legs with their nested
// delivery callbacks — allocates nothing. bench_fleet gates the resulting
// schedule+dispatch throughput at ≥3× the seed heap at 100k nodes.
//
// Fault semantics (see fault.hpp): a transfer's sender-side conditions —
// sender alive, link not in an outage window, Bernoulli loss draw — are
// evaluated when the transfer *starts*; the receiver must be alive when it
// *ends*. A transfer already in the air when an outage window opens still
// lands. Stats are charged when they happen (tx side at transfer start, rx
// side at delivery), so snapshots taken mid-run are causally consistent.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "event_queue.hpp"
#include "fault.hpp"
#include "inline_fn.hpp"
#include "medium.hpp"
#include "obs/metrics.hpp"
#include "topology.hpp"

namespace edgehd::net {

/// Typed rejection for an out-of-range node id handed to the simulator
/// (stats, compute, set_link_medium). Derives std::out_of_range so existing
/// catch sites keep working; carries the offending id and the node count so
/// callers can report *which* id was bad instead of silently indexing UB.
class NodeIdError : public std::out_of_range {
 public:
  NodeIdError(const char* where, NodeId id, std::size_t num_nodes)
      : std::out_of_range(std::string(where) + ": node id " +
                          std::to_string(id) + " out of range (have " +
                          std::to_string(num_nodes) + " nodes)"),
        id_(id),
        num_nodes_(num_nodes) {}

  NodeId id() const noexcept { return id_; }
  std::size_t num_nodes() const noexcept { return num_nodes_; }

 private:
  NodeId id_;
  std::size_t num_nodes_;
};

/// Per-node accounting accumulated over a run.
struct NodeStats {
  SimTime compute_busy = 0;   ///< total time the node's processor was busy
  SimTime tx_time = 0;        ///< total air time as sender
  SimTime rx_time = 0;        ///< total air time as receiver
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
  double compute_energy_j = 0.0;
  double comm_energy_j = 0.0;
  // ---- fault/transport accounting ----------------------------------------
  std::uint64_t packets_tx = 0;  ///< transmission attempts that hit the air
  std::uint64_t packets_rx = 0;  ///< packets received intact
  /// Attempts lost in transit (loss draw, or receiver dead at delivery);
  /// charged to the sender.
  std::uint64_t packets_dropped = 0;
  /// Attempts that never transmitted (sender crashed or link in outage at
  /// transfer start); charged to the sender. No bytes/energy are spent.
  std::uint64_t sends_suppressed = 0;
  /// Payload retransmissions issued by send_reliable (as sender).
  std::uint64_t retransmissions = 0;
  std::uint64_t bytes_retransmitted = 0;  ///< payload bytes of those retries
};

/// Tunables for the reliable-transport primitive. Acks are modelled as
/// zero-byte control frames by default (they cost one link latency and can
/// be lost, but carry no charged bytes).
struct ReliableConfig {
  SimTime ack_timeout = 50 * kMillisecond;  ///< wait before first retry
  std::size_t max_retries = 5;              ///< cap: at most 1 + this attempts
  double backoff_factor = 2.0;              ///< timeout multiplier per retry
  /// Upper bound on any single (jittered) backoff wait; 0 disables the cap,
  /// which reproduces the pre-cap behaviour bit-for-bit.
  SimTime backoff_cap = 0;
  /// Uniform jitter: each backoff is scaled by a factor drawn from
  /// [1 - jitter, 1 + jitter) using the plan-seeded RNG.
  double jitter = 0.1;
  std::uint64_t ack_bytes = 0;  ///< wire bytes charged per ack frame
};

/// Sender-side result of one send_reliable call.
struct DeliveryOutcome {
  bool delivered = false;   ///< an ack came back within the retry budget
  std::size_t attempts = 0; ///< payload transmissions issued (1 = no retry)
  /// Payload bytes placed on the air across all attempts — equals
  /// payload × attempts when no attempt was suppressed.
  std::uint64_t bytes_on_wire = 0;
  SimTime completed_at = 0; ///< ack arrival, or the giving-up instant
};

/// Event-driven simulator over a Topology with a single link medium (the
/// paper evaluates one medium per experiment; use set_link_medium for mixed
/// deployments).
class Simulator {
 public:
  // ---- hot-path callback types (SBO budgets, see DESIGN.md §12) -----------
  /// User-facing completion callback (send / send_to_root delivery hooks).
  /// 56 bytes covers "a few references plus a couple of scalars".
  using CompletionFn = InlineFunction<void(), 56>;
  /// Queue-resident event callback. 208 bytes is sized to the largest
  /// internal closure — a transfer leg: 8 scalar captures (64 bytes) plus
  /// the nested per-attempt TransmitFn (144 bytes) — so the whole transfer
  /// pipeline stays inline. DESIGN.md §12 shows the arithmetic.
  using EventFn = InlineFunction<void(), 208>;
  /// send_reliable outcome hook.
  using OutcomeFn = InlineFunction<void(const DeliveryOutcome&), 56>;

  /// Per-link registry mirrors ("net.link.<child>.*") are interned only for
  /// topologies up to this many nodes: the global MetricsRegistry has a
  /// fixed slot budget, and a 100k-node fleet would both exhaust it and pay
  /// 4 string interns per link. Aggregate net.* and sim.* counters are
  /// always live; per-link attribution is a small-deployment affordance.
  static constexpr std::size_t kPerLinkObsMaxNodes = 4096;

  Simulator(Topology topology, Medium medium);
  ~Simulator();  ///< flushes sim.* event counters to the registry

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  Simulator(Simulator&&) = delete;
  Simulator& operator=(Simulator&&) = delete;

  const Topology& topology() const noexcept { return topology_; }
  SimTime now() const noexcept { return now_; }

  /// Overrides the medium of the link between `child` and its parent.
  /// Throws NodeIdError for out-of-range ids, std::invalid_argument for the
  /// root (which has no uplink).
  void set_link_medium(NodeId child, Medium medium);

  /// Installs the fault plan governing this run. An empty plan restores
  /// fault-free behaviour exactly (the fault path is zero-cost when off).
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& fault_plan() const noexcept { return faults_; }

  /// Schedules `fn` to run `delay` from now.
  void schedule(SimTime delay, EventFn fn);

  /// Occupies `node`'s processor for `duration` at `power_w`, starting when
  /// the node becomes free; `on_done` (optional) fires at completion.
  void compute(NodeId node, SimTime duration, double power_w,
               EventFn on_done = {});

  /// Sends `bytes` one hop between `from` and `to` (which must be
  /// parent/child in the topology). The link serializes transfers;
  /// `on_delivered` (optional) fires when the last byte arrives. Under a
  /// fault plan the message may be dropped, in which case `on_delivered`
  /// never fires and the sender's drop counters advance.
  void send(NodeId from, NodeId to, std::uint64_t bytes,
            CompletionFn on_delivered = {});

  /// Receiver-side hook for opaque payload frames: fires at delivery time
  /// with the sender, receiver and payload bytes of each send_payload that
  /// lands intact. One hook per simulator (the proto layer's SimulatorBus
  /// decodes envelopes here).
  using PayloadHandler = std::function<void(
      NodeId from, NodeId to, std::span<const std::uint8_t> payload)>;

  void set_payload_handler(PayloadHandler handler);

  /// Sends an opaque byte payload one hop (same adjacency/fault semantics as
  /// send, charged at payload.size() bytes on the wire). On delivery the
  /// installed payload handler fires at the receiver, then `on_delivered`.
  void send_payload(NodeId from, NodeId to, std::vector<std::uint8_t> payload,
                    CompletionFn on_delivered = {});

  /// Reliable one-hop transfer: retransmits until an ack arrives, the retry
  /// cap is hit, or the sender finds itself unable to transmit. Backoff is
  /// exponential with seeded jitter; duplicate deliveries at the receiver
  /// are suppressed (the payload callback semantics of `on_outcome` fire
  /// exactly once, from the sender's point of view).
  void send_reliable(NodeId from, NodeId to, std::uint64_t bytes,
                     OutcomeFn on_outcome = {}, ReliableConfig config = {});

  /// Multi-hop convenience: forwards `bytes` hop by hop from `from` up to
  /// the root (store-and-forward through every gateway), then fires
  /// `on_delivered`.
  void send_to_root(NodeId from, std::uint64_t bytes,
                    CompletionFn on_delivered = {});

  /// Runs until the event queue drains. Returns the completion time of the
  /// last event (the makespan).
  SimTime run();

  /// Throws NodeIdError (a std::out_of_range) for out-of-range ids.
  const NodeStats& stats(NodeId node) const;

  /// Sum of compute + communication energy over all nodes.
  double total_energy_j() const;

  /// Sum of bytes placed on the air/wire (each hop counted once).
  std::uint64_t total_bytes_transferred() const;

  /// Sum of retransmissions over all nodes.
  std::uint64_t total_retransmissions() const;

  /// Sum of dropped + suppressed transmission attempts over all nodes.
  std::uint64_t total_drops() const;

  // ---- event-core accounting (mirrored to sim.* obs counters) -------------
  std::uint64_t events_scheduled() const noexcept { return events_scheduled_; }
  std::uint64_t events_dispatched() const noexcept {
    return events_dispatched_;
  }
  std::size_t queue_depth() const noexcept { return queue_.size(); }
  std::size_t peak_queue_depth() const noexcept { return peak_depth_; }

 private:
  /// What happened to one transmission attempt.
  enum class TransmitResult : std::uint8_t {
    kDelivered,   ///< landed intact at the receiver
    kLostInAir,   ///< transmitted but dropped (loss draw / dead receiver)
    kNotSent,     ///< never transmitted (sender crashed / link outage)
  };

  /// Per-attempt result callback of one transmit(). 128 bytes fits the
  /// payload-path closure (a std::vector plus the user CompletionFn).
  using TransmitFn = InlineFunction<void(TransmitResult), 128>;

  /// The link a node shares with its parent.
  struct Link {
    Medium medium;
    SimTime busy_until = 0;
    std::uint64_t attempts = 0;  ///< transmissions so far (fault-draw index)
    /// Composed Bernoulli loss probability from the installed fault plan,
    /// cached so the per-packet draw never rescans the plan's loss list.
    double loss_p = 0.0;
    bool outage_prone = false;  ///< the plan holds outage windows for it
    // Registry mirrors of this link's byte accounting ("net.link.<child>.*",
    // keyed by the child endpoint; cumulative across simulators that share a
    // topology node id). Empty handles until the constructor interns them —
    // and only for topologies up to kPerLinkObsMaxNodes.
    obs::Counter obs_tx_bytes;
    obs::Counter obs_rx_bytes;
    obs::Counter obs_drop_bytes;
    obs::Counter obs_retx_bytes;
  };

  /// Registry mirrors of the aggregate NodeStats accounting; every hook
  /// sits beside the stats_ mutation it shadows, so the invariant
  /// "registry == sum over NodeStats" is pinned by tests.
  struct ObsCounters {
    obs::Counter bytes_tx;
    obs::Counter bytes_rx;
    obs::Counter bytes_retransmitted;
    obs::Counter packets_tx;
    obs::Counter packets_rx;
    obs::Counter packets_dropped;
    obs::Counter sends_suppressed;
    obs::Counter retransmissions;
    obs::Counter reliable_delivered;
    obs::Counter reliable_failed;
    obs::Counter reliable_attempts;
    obs::Counter events_scheduled;
    obs::Counter events_dispatched;
    obs::Gauge queue_depth_peak;
  };

  struct ReliableState;

  Link& uplink_of(NodeId from, NodeId to);
  void push_event(SimTime time, EventFn fn);
  void flush_event_obs() noexcept;

  /// One transmission attempt with full fault semantics; `on_result` always
  /// fires exactly once (at delivery time, or at the failure instant).
  void transmit(NodeId from, NodeId to, std::uint64_t bytes,
                TransmitFn on_result);

  void reliable_attempt(std::shared_ptr<ReliableState> st);
  void finish_reliable(std::shared_ptr<ReliableState> st, bool delivered);

  Topology topology_;
  std::vector<Link> links_;  // indexed by the child endpoint
  ObsCounters obs_;
  SimTime shared_busy_until_ = 0;  ///< collision-domain occupancy (wireless)
  std::vector<SimTime> node_busy_until_;
  std::vector<NodeStats> stats_;
  CalendarQueue<EventFn> queue_;
  FaultPlan faults_;
  /// Nodes with at least one crash window — lets the hot transmit path skip
  /// the plan's window scan for the (vast) crash-free majority.
  std::vector<std::uint8_t> crash_prone_;
  PayloadHandler payload_handler_;
  bool faults_active_ = false;
  std::uint64_t jitter_draws_ = 0;  ///< backoff-jitter draw counter
  SimTime now_ = 0;
  SimTime makespan_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_scheduled_ = 0;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t obs_flushed_scheduled_ = 0;
  std::uint64_t obs_flushed_dispatched_ = 0;
  std::size_t peak_depth_ = 0;
};

}  // namespace edgehd::net
