// Calendar/ladder event queue — the fleet-scale replacement for the
// simulator's binary heap (DESIGN.md §12).
//
// The seed kept every pending event in one `std::vector` binary heap: each
// schedule/dispatch pays O(log n) comparisons *and* O(log n) event moves,
// and at fleet scale (10^5 outstanding timers) the sift paths dominate the
// run loop. This queue splits an event into a fat payload and a 24-byte
// (time, seq, slot) key:
//
//   * Payloads live in a slot pool with a LIFO free list. Each payload is
//     written once at push and moved out once at pop — it never takes part
//     in ordering, so the sorting machinery stays small and cache-resident.
//   * Keys spread over a ring of time buckets sized at roughly one pending
//     event per bucket, so the common operation is O(1): push appends to
//     the bucket covering the event's time, pop takes from the earliest
//     non-empty bucket. Far-future keys beyond the bucket window land in an
//     unsorted overflow tier; when the window drains, the overflow is
//     re-bucketed around its own min/max span — the classic ladder step.
//
// Degenerate distributions (everything at one instant) collapse to a single
// bucket, which is kept as a small binary heap, so the worst case is
// exactly the seed's behaviour, never worse. Steady state allocates
// nothing: buckets, overflow and pool all retain capacity, and freed slots
// are reused hottest-first.
//
// Determinism contract (the reason this file exists instead of a library):
// pop() returns entries in strictly increasing (time, seq) order — the
// *identical* total order the seed heap produced, including same-time
// insertion-order ties and events pushed from inside handlers. The fuzz
// suite in tests/test_event_queue.cpp pins this against a reference heap.
//
// Precondition (satisfied by every discrete-event caller): a push's time is
// never below the last popped entry's time — simulated time does not run
// backwards. Pushes below the current window would otherwise land in an
// already-passed bucket.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "medium.hpp"

namespace edgehd::net {

template <typename Payload>
class CalendarQueue {
 public:
  /// Bucket-count bounds for the ring. The count is re-chosen at every
  /// rebuild as the first power of two at or above the overflow population
  /// (the calendar-queue sizing rule: ~1 event per bucket keeps every
  /// within-bucket heap operation O(1) regardless of fleet size), clamped to
  /// [kMinBuckets, kMaxBuckets].
  static constexpr std::size_t kMinBuckets = 512;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

  /// What pop() hands back: the key plus the payload moved out of its slot.
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Payload payload;
  };

  /// Key of one pending event; its payload stays in the slot pool until
  /// pop. Everything the ring moves, compares and heapifies is this 24-byte
  /// struct, which is what keeps the scheduler cache-resident at 10^5
  /// outstanding events.
  struct Key {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };

  CalendarQueue() : buckets_(kMinBuckets) {}

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  void push(SimTime time, std::uint64_t seq, Payload payload) {
    const std::uint32_t slot = acquire(std::move(payload));
    ++size_;
    if (time >= horizon_) {
      overflow_.push_back(Key{time, seq, slot});
      return;
    }
    // A push may legally precede the window (front() can rebuild around a
    // far-future overflow tier before nearer arrivals are pushed); anything
    // at or before the current bucket joins the current bucket, whose heap
    // order still pops it first — (time, seq) order is position-independent
    // within the active bucket.
    auto idx = time <= win_start_
                   ? std::size_t{0}
                   : static_cast<std::size_t>((time - win_start_) / width_);
    idx = std::max(idx, cursor_);
    std::vector<Key>& b = buckets_[idx];
    b.push_back(Key{time, seq, slot});
    if (idx == cursor_ && cur_heaped_) {
      std::push_heap(b.begin(), b.end(), Later{});
    }
    ++in_window_;
  }

  /// Key of the earliest entry by (time, seq). Invalidated by the next
  /// push/pop.
  const Key& front() {
    settle();
    return buckets_[cursor_].front();
  }

  /// Removes and returns the earliest entry by (time, seq).
  Entry pop() {
    settle();
    std::vector<Key>& b = buckets_[cursor_];
    std::pop_heap(b.begin(), b.end(), Later{});
    const Key k = b.back();
    b.pop_back();
    --in_window_;
    --size_;
    Entry out{k.time, k.seq, std::move(pool_[k.slot])};
    free_.push_back(k.slot);
    return out;
  }

  // ---- introspection (tests, benches, obs) ---------------------------------
  SimTime bucket_width() const noexcept { return width_; }
  std::size_t overflow_size() const noexcept { return overflow_.size(); }
  std::uint64_t rebuilds() const noexcept { return rebuilds_; }

 private:
  /// Heap comparator over one bucket: a orders below b when a fires later
  /// (or tied with a later insertion), so the heap front is the next event —
  /// the seed simulator's EventOrder, verbatim.
  struct Later {
    bool operator()(const Key& a, const Key& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Parks `payload` in a pool slot and returns its index. Freed slots are
  /// reused LIFO, so steady-state pushes write to recently-touched (still
  /// cached) memory and the pool only ever grows to the peak backlog.
  std::uint32_t acquire(Payload&& payload) {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      pool_[slot] = std::move(payload);
      return slot;
    }
    assert(pool_.size() < std::numeric_limits<std::uint32_t>::max());
    pool_.push_back(std::move(payload));
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  /// Positions the cursor on the earliest non-empty bucket and heapifies it
  /// lazily. Requires size_ > 0.
  void settle() {
    assert(size_ > 0 && "pop/front on an empty CalendarQueue");
    if (in_window_ == 0) rebuild();
    while (buckets_[cursor_].empty()) {
      ++cursor_;
      cur_heaped_ = false;
    }
    if (!cur_heaped_) {
      std::vector<Key>& b = buckets_[cursor_];
      std::make_heap(b.begin(), b.end(), Later{});
      cur_heaped_ = true;
    }
  }

  /// First power of two at or above `n`, clamped to the ring bounds.
  static std::size_t bucket_count_for(std::size_t n) noexcept {
    std::size_t want = kMinBuckets;
    while (want < n && want < kMaxBuckets) want <<= 1;
    return want;
  }

  /// Ladder step: re-anchors the bucket window around the overflow tier's
  /// own [min, max] span and distributes it. The ring is resized to roughly
  /// one bucket per pending event and the width chosen so the whole span
  /// fits one window (span/buckets + 1), hence everything leaves the
  /// overflow; a subsequent far-future push starts the next tier.
  void rebuild() {
    SimTime lo = std::numeric_limits<SimTime>::max();
    SimTime hi = std::numeric_limits<SimTime>::min();
    for (const Key& k : overflow_) {
      lo = std::min(lo, k.time);
      hi = std::max(hi, k.time);
    }
    const std::size_t want = bucket_count_for(overflow_.size());
    if (want != buckets_.size()) buckets_.resize(want);
    const auto nb = static_cast<SimTime>(want);
    width_ = (hi - lo) / nb + 1;
    win_start_ = lo;
    cursor_ = 0;
    cur_heaped_ = false;
    const SimTime span_cap = (std::numeric_limits<SimTime>::max() - lo) / nb;
    horizon_ = width_ > span_cap ? std::numeric_limits<SimTime>::max()
                                 : lo + width_ * nb;
    for (const Key& k : overflow_) {
      const auto idx = static_cast<std::size_t>((k.time - lo) / width_);
      buckets_[idx].push_back(k);
    }
    in_window_ += overflow_.size();
    overflow_.clear();  // keeps capacity: steady state allocates nothing
    ++rebuilds_;
  }

  std::vector<std::vector<Key>> buckets_;  ///< the near-future ring
  std::vector<Key> overflow_;              ///< unsorted far-future tier
  std::vector<Payload> pool_;              ///< slot pool, grows to peak backlog
  std::vector<std::uint32_t> free_;        ///< LIFO free slots in pool_
  SimTime win_start_ = 0;   ///< time covered by bucket 0
  SimTime width_ = 1;       ///< per-bucket time span
  SimTime horizon_ = 0;     ///< first instant beyond the window
  std::size_t cursor_ = 0;  ///< earliest possibly non-empty bucket
  std::size_t in_window_ = 0;
  std::size_t size_ = 0;
  bool cur_heaped_ = false;  ///< buckets_[cursor_] is heap-ordered
  std::uint64_t rebuilds_ = 0;
};

}  // namespace edgehd::net
