// Small-buffer-optimized move-only callables for the event hot path.
//
// The seed simulator stored every event as a `std::function<void()>`; any
// capture list beyond the libstdc++ 16-byte SBO window costs one heap
// allocation per scheduled event, and at fleet scale (10^5 nodes, 10^7+
// events per run) that allocation dominates the schedule->dispatch path.
// InlineFunction is the replacement: a fixed-capacity inline buffer sized
// for the simulator's own transfer closures, so the common captures —
// timers, compute completions, per-hop transfer state including the nested
// delivery callback — construct, move and fire without touching the heap.
// Callables that genuinely exceed the budget degrade gracefully to one heap
// cell (correctness never depends on fitting).
//
// Differences from std::function, all deliberate:
//   * move-only (events fire once; copyability would force copyable
//     captures and block std::move into the closure),
//   * no target_type/target introspection,
//   * invocation of an empty InlineFunction is checked by the caller
//     (operator bool), mirroring how the simulator used std::function.
//
// The capacity budgets actually used by the simulator live in
// simulator.hpp (EventFn / CompletionFn); DESIGN.md §12 documents how they
// were sized.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace edgehd::net {

template <typename Signature, std::size_t Capacity = 64>
class InlineFunction;  // primary template intentionally undefined

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kCapacity = Capacity;
  static_assert(Capacity >= sizeof(void*),
                "InlineFunction: buffer must hold the heap-fallback pointer");

  InlineFunction() noexcept = default;

  /// Wraps any callable with a matching signature. Stored inline when it
  /// fits the buffer (size, alignment and nothrow-movability), otherwise in
  /// one heap cell behind an inline pointer.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(bugprone-forwarding-reference-overload)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the wrapped callable lives in the inline buffer (empty
  /// functions report true: they own no heap cell). Exposed so tests and
  /// benches can pin the allocation-free claim per capture shape.
  bool is_inline() const noexcept { return ops_ == nullptr || !ops_->heap; }

  /// Compile-time answer to "would this callable type stay inline?".
  template <typename Fn>
  static constexpr bool fits_inline() noexcept {
    return sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void* self, Args&&... args);
    /// Move-constructs the callable at `dst` from `src`, then destroys the
    /// source — one fused hop so relocation is a single indirect call.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
    bool heap;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      /*invoke=*/+[](void* self, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(self)))(
            std::forward<Args>(args)...);
      },
      /*relocate=*/+[](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      /*destroy=*/+[](void* self) noexcept {
        std::launder(reinterpret_cast<Fn*>(self))->~Fn();
      },
      /*heap=*/false,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      /*invoke=*/+[](void* self, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(self)))(
            std::forward<Args>(args)...);
      },
      /*relocate=*/+[](void* dst, void* src) noexcept {
        Fn** from = std::launder(reinterpret_cast<Fn**>(src));
        ::new (dst) Fn*(*from);
      },
      /*destroy=*/+[](void* self) noexcept {
        delete *std::launder(reinterpret_cast<Fn**>(self));
      },
      /*heap=*/true,
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  // Buffer first: with the ops pointer trailing, sizeof is Capacity + one
  // pointer (rounded to max_align_t) instead of paying interior padding —
  // these objects nest (an EventFn closure carries a TransmitFn), so every
  // wasted byte here multiplies through the capacity budgets.
  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace edgehd::net
