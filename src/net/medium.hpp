// Network media models (paper Section VI-E).
//
// The evaluation sweeps five link technologies. Each medium is modelled by
// its *effective* (application-level) bandwidth, a per-message latency, and
// radio/NIC power draws used for communication-energy accounting. The WiFi
// and Bluetooth effective rates follow the paper's own measurements on the
// Raspberry Pi 3B+ (802.11ac ≈ 46.5 Mbps in the bench tables, 23.5 Mbps
// measured on the Pi; Bluetooth 4.0 ≈ 1 Mbps).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace edgehd::net {

/// Simulation time in nanoseconds.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1'000;
constexpr SimTime kMillisecond = 1'000'000;
constexpr SimTime kSecond = 1'000'000'000;

/// Link technology identifiers.
enum class MediumKind : std::uint8_t {
  kWired1G,
  kWired500M,
  kWifi80211ac,
  kWifi80211n,
  kBluetooth4,
};

/// Physical-layer model of one link technology.
struct Medium {
  MediumKind kind;
  std::string name;
  double bandwidth_bps;   ///< effective application throughput
  SimTime latency;        ///< one-way per-message latency
  double tx_power_w;      ///< transmitter active power
  double rx_power_w;      ///< receiver active power
  /// Wireless media form one collision domain: transfers on *different*
  /// links contend and serialize. Wired links are independent.
  bool shared_domain;
};

/// Canonical medium presets, in the order the paper sweeps them.
const Medium& medium(MediumKind kind);
const std::vector<Medium>& all_media();

/// Store-and-forward transfer time of `bytes` over one hop of `m`.
SimTime transfer_time(const Medium& m, std::uint64_t bytes);

/// Energy spent by the sender + receiver for one hop of `bytes` over `m`.
double transfer_energy_j(const Medium& m, std::uint64_t bytes);

}  // namespace edgehd::net
