// Compute-platform cost models (paper Section VI-A / VI-D).
//
// The paper's testbed — GTX 1080 Ti server, Kintex-7 FPGA, Raspberry Pi 3B+
// hosts — is replaced by throughput/power models: a platform turns an
// operation count (multiply-accumulates) into busy time, and the simulator
// turns busy time into energy. The constants are calibrated to the paper's
// own reported figures (9.8 W for the centralized FPGA vs 0.28 W per
// hierarchical node FPGA, ~250 W GPU board power, TPU ≈ 290 W reference) so
// the *ratios* the evaluation reports are reproduced; absolute wall-clock on
// the authors' hardware is out of scope (see DESIGN.md, Substitutions).
#pragma once

#include <cstdint>
#include <string>

#include "medium.hpp"

namespace edgehd::net {

/// A compute platform: effective MAC throughput and active power.
struct Platform {
  std::string name;
  double macs_per_second;  ///< effective (not peak) multiply-accumulate rate
  double active_power_w;   ///< power while busy
};

/// Busy time for `macs` multiply-accumulate operations on `p`.
SimTime time_for_macs(const Platform& p, std::uint64_t macs);

/// Energy for `macs` operations on `p`.
double energy_for_macs(const Platform& p, std::uint64_t macs);

/// NVIDIA GTX 1080 Ti running DNN training/inference kernels.
const Platform& dnn_gpu();

/// The same GPU running HD hypervector kernels (bitwise-friendly, higher
/// effective utilization than DNN backprop).
const Platform& hd_gpu();

/// Kintex-7 KC705 running the full-dimension centralized EdgeHD design.
const Platform& hd_fpga_central();

/// The per-node low-power FPGA instance of the hierarchical deployment
/// (0.28 W average, per the paper).
const Platform& edge_fpga();

/// A full hierarchical EdgeHD node: the per-node FPGA plus its Raspberry Pi
/// 3B+ host (compute rate of the FPGA, power of both).
const Platform& edge_node();

/// Raspberry Pi 3B+ host CPU (gateway bookkeeping, hierarchical encoding).
const Platform& rpi3();

}  // namespace edgehd::net
