#include "simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.hpp"

namespace edgehd::net {

Simulator::Simulator(Topology topology, Medium medium)
    : topology_(std::move(topology)),
      links_(topology_.num_nodes(),
             Link{medium, 0, 0, 0.0, false, {}, {}, {}, {}}),
      node_busy_until_(topology_.num_nodes(), 0),
      stats_(topology_.num_nodes()),
      crash_prone_(topology_.num_nodes(), 0) {
  if constexpr (obs::kEnabled) {
    auto& reg = obs::MetricsRegistry::global();
    obs_.bytes_tx = reg.counter("net.bytes_tx");
    obs_.bytes_rx = reg.counter("net.bytes_rx");
    obs_.bytes_retransmitted = reg.counter("net.bytes_retransmitted");
    obs_.packets_tx = reg.counter("net.packets_tx");
    obs_.packets_rx = reg.counter("net.packets_rx");
    obs_.packets_dropped = reg.counter("net.packets_dropped");
    obs_.sends_suppressed = reg.counter("net.sends_suppressed");
    obs_.retransmissions = reg.counter("net.retransmissions");
    obs_.reliable_delivered = reg.counter("net.reliable.delivered");
    obs_.reliable_failed = reg.counter("net.reliable.failed");
    obs_.reliable_attempts = reg.counter("net.reliable.attempts");
    obs_.events_scheduled = reg.counter("sim.events.scheduled");
    obs_.events_dispatched = reg.counter("sim.events.dispatched");
    obs_.queue_depth_peak = reg.gauge("sim.queue.depth");
    // Per-link mirrors only for deployments small enough that the registry's
    // fixed slot budget (and 4 string interns per link) stays reasonable; a
    // 100k-node fleet keeps the aggregate counters above.
    if (topology_.num_nodes() <= kPerLinkObsMaxNodes) {
      for (NodeId child = 0; child < links_.size(); ++child) {
        if (child == topology_.root()) continue;
        const std::string prefix = "net.link." + std::to_string(child) + ".";
        links_[child].obs_tx_bytes = reg.counter(prefix + "tx_bytes");
        links_[child].obs_rx_bytes = reg.counter(prefix + "rx_bytes");
        links_[child].obs_drop_bytes = reg.counter(prefix + "drop_bytes");
        links_[child].obs_retx_bytes = reg.counter(prefix + "retx_bytes");
      }
    }
  }
}

Simulator::~Simulator() { flush_event_obs(); }

void Simulator::set_link_medium(NodeId child, Medium medium) {
  if (child >= links_.size()) {
    throw NodeIdError("Simulator::set_link_medium", child, links_.size());
  }
  if (child == topology_.root()) {
    throw std::invalid_argument("Simulator: root has no uplink");
  }
  links_[child].medium = std::move(medium);
}

void Simulator::set_fault_plan(FaultPlan plan) {
  faults_ = std::move(plan);
  faults_active_ = !faults_.empty();
  // Pre-resolve which nodes/links the plan can ever touch, and the composed
  // per-link loss probability, so the per-packet path never scans the plan's
  // window/loss lists for the (at fleet scale, vast) unaffected majority.
  std::fill(crash_prone_.begin(), crash_prone_.end(), std::uint8_t{0});
  for (Link& link : links_) {
    link.loss_p = 0.0;
    link.outage_prone = false;
  }
  for (const CrashWindow& w : faults_.crashes()) {
    if (w.node < crash_prone_.size()) crash_prone_[w.node] = 1;
  }
  for (const OutageWindow& w : faults_.outages()) {
    if (w.child < links_.size()) links_[w.child].outage_prone = true;
  }
  for (const LinkLoss& l : faults_.losses()) {
    if (l.child < links_.size()) {
      // Same independent-process composition as FaultPlan::loss_probability.
      links_[l.child].loss_p =
          1.0 - (1.0 - links_[l.child].loss_p) * (1.0 - l.probability);
    }
  }
}

void Simulator::push_event(SimTime time, EventFn fn) {
  queue_.push(time, next_seq_++, std::move(fn));
  ++events_scheduled_;
  peak_depth_ = std::max(peak_depth_, queue_.size());
}

void Simulator::schedule(SimTime delay, EventFn fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator: negative delay");
  }
  push_event(now_ + delay, std::move(fn));
}

void Simulator::compute(NodeId node, SimTime duration, double power_w,
                        EventFn on_done) {
  if (node >= node_busy_until_.size()) {
    throw NodeIdError("Simulator::compute", node, node_busy_until_.size());
  }
  if (duration < 0) {
    throw std::invalid_argument("Simulator: negative compute duration");
  }
  const SimTime start = std::max(now_, node_busy_until_[node]);
  const SimTime end = start + duration;
  node_busy_until_[node] = end;
  stats_[node].compute_busy += duration;
  stats_[node].compute_energy_j +=
      power_w * static_cast<double>(duration) / 1e9;
  push_event(end, std::move(on_done));
}

Simulator::Link& Simulator::uplink_of(NodeId from, NodeId to) {
  // The link is stored at its child endpoint; sends may go either direction.
  if (topology_.parent(from) == to) return links_[from];
  if (topology_.parent(to) == from) return links_[to];
  throw std::invalid_argument("Simulator: send endpoints are not adjacent");
}

void Simulator::transmit(NodeId from, NodeId to, std::uint64_t bytes,
                         TransmitFn on_result) {
  Link& link = uplink_of(from, to);
  const NodeId link_child = topology_.parent(from) == to ? from : to;
  // Wireless links share one collision domain: a transfer must also wait for
  // the whole medium to go quiet, and occupies it while in the air. The slot
  // is reserved now (the queuing discipline); stats are charged when the
  // transfer actually starts and ends.
  const SimTime floor = link.medium.shared_domain
                            ? std::max(link.busy_until, shared_busy_until_)
                            : link.busy_until;
  const SimTime start = std::max(now_, floor);
  const SimTime duration = transfer_time(link.medium, bytes);
  const SimTime end = start + duration;
  link.busy_until = end;
  if (link.medium.shared_domain) shared_busy_until_ = end;

  // Capture cost parameters now so a later set_link_medium cannot
  // retroactively change this transfer's accounting. The transfer end and
  // the per-second energy scale are *recomputed when each leg fires* (the
  // start event runs exactly at `start`, so end == now_ + duration there);
  // dropping those two captures keeps both legs inside EventFn's buffer.
  const double tx_power = link.medium.tx_power_w;
  const double rx_power = link.medium.rx_power_w;

  push_event(start, [this, from, to, bytes, link_child, duration, tx_power,
                     rx_power, cb = std::move(on_result)]() mutable {
    if (faults_active_ &&
        ((crash_prone_[from] != 0 && !faults_.node_up(from, now_)) ||
         (links_[link_child].outage_prone &&
          !faults_.link_up(link_child, now_)))) {
      ++stats_[from].sends_suppressed;
      obs_.sends_suppressed.inc();
      if (cb) cb(TransmitResult::kNotSent);
      return;
    }
    // The attempt hits the air: charge the sender.
    stats_[from].tx_time += duration;
    stats_[from].bytes_tx += bytes;
    ++stats_[from].packets_tx;
    stats_[from].comm_energy_j += tx_power * static_cast<double>(duration) / 1e9;
    obs_.bytes_tx.inc(bytes);
    obs_.packets_tx.inc();
    links_[link_child].obs_tx_bytes.inc(bytes);
    const bool lost = faults_active_ &&
                      faults_.drop(link_child, links_[link_child].attempts++,
                                   links_[link_child].loss_p);
    push_event(now_ + duration,
               [this, from, to, bytes, link_child, duration, rx_power, lost,
                cb = std::move(cb)]() mutable {
      if (lost || (faults_active_ && crash_prone_[to] != 0 &&
                   !faults_.node_up(to, now_))) {
        ++stats_[from].packets_dropped;
        obs_.packets_dropped.inc();
        links_[link_child].obs_drop_bytes.inc(bytes);
        if (cb) cb(TransmitResult::kLostInAir);
        return;
      }
      stats_[to].rx_time += duration;
      stats_[to].bytes_rx += bytes;
      ++stats_[to].packets_rx;
      stats_[to].comm_energy_j +=
          rx_power * static_cast<double>(duration) / 1e9;
      obs_.bytes_rx.inc(bytes);
      obs_.packets_rx.inc();
      links_[link_child].obs_rx_bytes.inc(bytes);
      if (cb) cb(TransmitResult::kDelivered);
    });
  });
}

void Simulator::send(NodeId from, NodeId to, std::uint64_t bytes,
                     CompletionFn on_delivered) {
  transmit(from, to, bytes,
           [cb = std::move(on_delivered)](TransmitResult r) mutable {
             if (r == TransmitResult::kDelivered && cb) cb();
           });
}

void Simulator::set_payload_handler(PayloadHandler handler) {
  payload_handler_ = std::move(handler);
}

void Simulator::send_payload(NodeId from, NodeId to,
                             std::vector<std::uint8_t> payload,
                             CompletionFn on_delivered) {
  const auto bytes = static_cast<std::uint64_t>(payload.size());
  transmit(from, to, bytes,
           [this, from, to, body = std::move(payload),
            cb = std::move(on_delivered)](TransmitResult r) mutable {
             if (r != TransmitResult::kDelivered) return;
             if (payload_handler_) payload_handler_(from, to, body);
             if (cb) cb();
           });
}

// ---- reliable transport ----------------------------------------------------

struct Simulator::ReliableState {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint64_t bytes = 0;
  ReliableConfig cfg;
  OutcomeFn on_outcome;
  std::size_t attempts = 0;        ///< payload transmissions issued
  std::uint64_t bytes_on_wire = 0; ///< payload bytes that hit the air
  bool receiver_got = false;
  bool done = false;
  NodeId link_child = kNoNode;     ///< child endpoint of the traversed link
  std::uint64_t span = 0;          ///< open "net.send_reliable" trace span
};

void Simulator::send_reliable(NodeId from, NodeId to, std::uint64_t bytes,
                              OutcomeFn on_outcome, ReliableConfig config) {
  if (config.ack_timeout <= 0 || config.backoff_factor < 1.0 ||
      config.backoff_cap < 0 || config.jitter < 0.0 || config.jitter >= 1.0) {
    throw std::invalid_argument("Simulator: malformed ReliableConfig");
  }
  auto st = std::make_shared<ReliableState>();
  st->from = from;
  st->to = to;
  st->bytes = bytes;
  st->cfg = config;
  st->on_outcome = std::move(on_outcome);
  st->link_child = topology_.parent(from) == to ? from : to;
  // The span opens at the call and closes in finish_reliable, both stamped
  // with simulator virtual time; each retry lands as a child instant.
  st->span = obs::Tracer::global().begin("net.send_reliable", now_,
                                         /*parent=*/0, from, bytes);
  reliable_attempt(std::move(st));
}

void Simulator::reliable_attempt(std::shared_ptr<ReliableState> st) {
  ++st->attempts;
  const std::size_t attempt = st->attempts;
  transmit(st->from, st->to, st->bytes,
           [this, st, attempt](TransmitResult r) {
             if (r == TransmitResult::kNotSent) return;  // timer drives retry
             st->bytes_on_wire += st->bytes;
             if (attempt > 1) {
               ++stats_[st->from].retransmissions;
               stats_[st->from].bytes_retransmitted += st->bytes;
               obs_.retransmissions.inc();
               obs_.bytes_retransmitted.inc(st->bytes);
               links_[st->link_child].obs_retx_bytes.inc(st->bytes);
               obs::Tracer::global().instant("net.retry", now_, st->span,
                                             attempt, st->bytes);
             }
             if (r != TransmitResult::kDelivered) return;
             st->receiver_got = true;
             // The receiver acks every received copy (duplicates re-ack, so
             // a lost ack is recoverable). Completion fires on the first ack
             // that makes it back.
             transmit(st->to, st->from, st->cfg.ack_bytes,
                      [this, st](TransmitResult ar) {
                        if (ar == TransmitResult::kDelivered && !st->done) {
                          finish_reliable(st, true);
                        }
                      });
           });

  // Exponential backoff with seeded jitter: timeout_k = ack_timeout *
  // backoff^(k-1), scaled by a deterministic draw from [1-j, 1+j).
  double timeout = static_cast<double>(st->cfg.ack_timeout) *
                   std::pow(st->cfg.backoff_factor,
                            static_cast<double>(attempt - 1));
  if (st->cfg.jitter > 0.0) {
    const std::uint64_t word = detail::mix64(
        faults_.seed() ^
        detail::mix64(0xa0761d6478bd642fULL * (++jitter_draws_)));
    timeout *= 1.0 - st->cfg.jitter +
               2.0 * st->cfg.jitter * detail::unit_from(word);
  }
  SimTime wait = std::max<SimTime>(1, std::llround(timeout));
  if (st->cfg.backoff_cap > 0) wait = std::min(wait, st->cfg.backoff_cap);
  schedule(wait, [this, st] {
    if (st->done) return;
    if (st->attempts > st->cfg.max_retries) {
      finish_reliable(st, false);
      return;
    }
    reliable_attempt(st);
  });
}

void Simulator::finish_reliable(std::shared_ptr<ReliableState> st,
                                bool delivered) {
  st->done = true;
  (delivered ? obs_.reliable_delivered : obs_.reliable_failed).inc();
  obs_.reliable_attempts.inc(st->attempts);
  obs::Tracer::global().end(st->span, now_);
  if (!st->on_outcome) return;
  DeliveryOutcome outcome;
  outcome.delivered = delivered;
  outcome.attempts = st->attempts;
  outcome.bytes_on_wire = st->bytes_on_wire;
  outcome.completed_at = now_;
  st->on_outcome(outcome);
}

void Simulator::send_to_root(NodeId from, std::uint64_t bytes,
                             CompletionFn on_delivered) {
  if (from == topology_.root()) {
    push_event(now_, [cb = std::move(on_delivered)]() mutable {
      if (cb) cb();
    });
    return;
  }
  const NodeId next = topology_.parent(from);
  // Forward the remaining hops once this hop is delivered. This capture list
  // (this + next + bytes + the user's CompletionFn) exceeds CompletionFn's
  // own buffer, so each hop's continuation takes the documented heap
  // fallback — send_to_root is a per-message convenience, not the fleet
  // hot path (the proto bus and serving plane ride send_payload/send).
  send(from, next, bytes,
       [this, next, bytes, cb = std::move(on_delivered)]() mutable {
         send_to_root(next, bytes, std::move(cb));
       });
}

SimTime Simulator::run() {
  while (!queue_.empty()) {
    auto ev = queue_.pop();
    now_ = ev.time;
    makespan_ = std::max(makespan_, now_);
    ++events_dispatched_;
    if (ev.payload) ev.payload();
  }
  flush_event_obs();
  return makespan_;
}

void Simulator::flush_event_obs() noexcept {
  // Event accounting lives in plain members on the hot path and is mirrored
  // to the registry as one delta per run (and at destruction), so the
  // schedule→dispatch loop never pays a registry write per event.
  obs_.events_scheduled.inc(events_scheduled_ - obs_flushed_scheduled_);
  obs_.events_dispatched.inc(events_dispatched_ - obs_flushed_dispatched_);
  obs_flushed_scheduled_ = events_scheduled_;
  obs_flushed_dispatched_ = events_dispatched_;
  obs_.queue_depth_peak.set(static_cast<double>(peak_depth_));
}

const NodeStats& Simulator::stats(NodeId node) const {
  if (node >= stats_.size()) {
    throw NodeIdError("Simulator::stats", node, stats_.size());
  }
  return stats_[node];
}

double Simulator::total_energy_j() const {
  double total = 0.0;
  for (const auto& s : stats_) {
    total += s.compute_energy_j + s.comm_energy_j;
  }
  return total;
}

std::uint64_t Simulator::total_bytes_transferred() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.bytes_tx;
  return total;
}

std::uint64_t Simulator::total_retransmissions() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.retransmissions;
  return total;
}

std::uint64_t Simulator::total_drops() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) {
    total += s.packets_dropped + s.sends_suppressed;
  }
  return total;
}

}  // namespace edgehd::net
