#include "simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace edgehd::net {

Simulator::Simulator(Topology topology, Medium medium)
    : topology_(std::move(topology)),
      links_(topology_.num_nodes(), Link{medium, 0}),
      node_busy_until_(topology_.num_nodes(), 0),
      stats_(topology_.num_nodes()) {}

void Simulator::set_link_medium(NodeId child, Medium medium) {
  if (child >= links_.size() || child == topology_.root()) {
    throw std::invalid_argument("Simulator: node has no uplink");
  }
  links_[child].medium = std::move(medium);
}

void Simulator::schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator: negative delay");
  }
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

void Simulator::compute(NodeId node, SimTime duration, double power_w,
                        std::function<void()> on_done) {
  if (node >= node_busy_until_.size()) {
    throw std::out_of_range("Simulator: node id out of range");
  }
  if (duration < 0) {
    throw std::invalid_argument("Simulator: negative compute duration");
  }
  const SimTime start = std::max(now_, node_busy_until_[node]);
  const SimTime end = start + duration;
  node_busy_until_[node] = end;
  stats_[node].compute_busy += duration;
  stats_[node].compute_energy_j +=
      power_w * static_cast<double>(duration) / 1e9;
  queue_.push(Event{end, next_seq_++, std::move(on_done)});
}

Simulator::Link& Simulator::uplink_of(NodeId from, NodeId to) {
  // The link is stored at its child endpoint; sends may go either direction.
  if (topology_.parent(from) == to) return links_[from];
  if (topology_.parent(to) == from) return links_[to];
  throw std::invalid_argument("Simulator: send endpoints are not adjacent");
}

void Simulator::send(NodeId from, NodeId to, std::uint64_t bytes,
                     std::function<void()> on_delivered) {
  Link& link = uplink_of(from, to);
  // Wireless links share one collision domain: a transfer must also wait for
  // the whole medium to go quiet, and occupies it while in the air.
  const SimTime floor = link.medium.shared_domain
                            ? std::max(link.busy_until, shared_busy_until_)
                            : link.busy_until;
  const SimTime start = std::max(now_, floor);
  const SimTime duration = transfer_time(link.medium, bytes);
  const SimTime end = start + duration;
  link.busy_until = end;
  if (link.medium.shared_domain) shared_busy_until_ = end;

  stats_[from].tx_time += duration;
  stats_[to].rx_time += duration;
  stats_[from].bytes_tx += bytes;
  stats_[to].bytes_rx += bytes;
  const double seconds = static_cast<double>(duration) / 1e9;
  stats_[from].comm_energy_j += link.medium.tx_power_w * seconds;
  stats_[to].comm_energy_j += link.medium.rx_power_w * seconds;

  queue_.push(Event{end, next_seq_++, std::move(on_delivered)});
}

void Simulator::send_to_root(NodeId from, std::uint64_t bytes,
                             std::function<void()> on_delivered) {
  if (from == topology_.root()) {
    queue_.push(Event{now_, next_seq_++, std::move(on_delivered)});
    return;
  }
  const NodeId next = topology_.parent(from);
  // Forward the remaining hops once this hop is delivered.
  send(from, next, bytes,
       [this, next, bytes, cb = std::move(on_delivered)]() mutable {
         send_to_root(next, bytes, std::move(cb));
       });
}

SimTime Simulator::run() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    makespan_ = std::max(makespan_, now_);
    if (ev.fn) ev.fn();
  }
  return makespan_;
}

const NodeStats& Simulator::stats(NodeId node) const {
  if (node >= stats_.size()) {
    throw std::out_of_range("Simulator: node id out of range");
  }
  return stats_[node];
}

double Simulator::total_energy_j() const {
  double total = 0.0;
  for (const auto& s : stats_) {
    total += s.compute_energy_j + s.comm_energy_j;
  }
  return total;
}

std::uint64_t Simulator::total_bytes_transferred() const {
  std::uint64_t total = 0;
  for (const auto& s : stats_) total += s.bytes_tx;
  return total;
}

}  // namespace edgehd::net
