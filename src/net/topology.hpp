// Hierarchical network topologies (paper Section VI-A).
//
// All EdgeHD deployments are trees: end-node devices at the leaves, gateway
// nodes in the middle, one central node at the root. Levels follow the
// paper's convention: leaves are Level 1, and an internal node's level is
// one more than its deepest child (so the central node of a three-level TREE
// is Level 3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace edgehd::net {

using NodeId = std::size_t;

/// Sentinel for "no parent" (the root).
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// An immutable rooted tree over nodes 0..num_nodes()-1.
class Topology {
 public:
  /// Builds from a parent vector; exactly one entry must be kNoNode (the
  /// root) and the graph must be a tree. Throws std::invalid_argument
  /// otherwise.
  explicit Topology(std::vector<NodeId> parents);

  std::size_t num_nodes() const noexcept { return parents_.size(); }
  NodeId root() const noexcept { return root_; }
  NodeId parent(NodeId id) const;
  /// A node's children in node-id order, as a view into the CSR child array
  /// (offsets + one flat list — no per-node vector, fleet-scale friendly).
  /// The view stays valid for the Topology's lifetime.
  std::span<const NodeId> children(NodeId id) const;
  bool is_leaf(NodeId id) const;

  /// Paper-convention level: 1 for leaves, 1 + max(child levels) otherwise.
  std::size_t level(NodeId id) const;

  /// Maximum level in the tree (the central node's level).
  std::size_t depth() const;

  /// All leaves, in node-id order.
  std::vector<NodeId> leaves() const;

  /// All nodes at the given level, in node-id order.
  std::vector<NodeId> nodes_at_level(std::size_t level) const;

  /// Number of hops from `id` up to the root.
  std::size_t hops_to_root(NodeId id) const;

  // ---- builders ----------------------------------------------------------

  /// STAR: `end_nodes` leaves directly under the central node.
  static Topology star(std::size_t end_nodes);

  /// The paper's TREE: gateways with two end-node children; a leftover end
  /// node (odd count) attaches directly to the central node, as in the APRI
  /// description of Section VI-A.
  static Topology paper_tree(std::size_t end_nodes);

  /// The Figure 8 PECAN hierarchy: `appliances` leaves grouped into houses
  /// of at most `per_house`, houses grouped into streets of at most
  /// `per_street`, streets under one central node (4 levels).
  static Topology pecan_tree(std::size_t appliances = 312,
                             std::size_t per_house = 6,
                             std::size_t per_street = 7);

  /// A depth-`levels` tree over `end_nodes` leaves used by the Figure 13
  /// sweep: leaves are grouped evenly into parents level by level until a
  /// single root remains at the requested depth.
  static Topology uniform_depth(std::size_t end_nodes, std::size_t levels);

 private:
  std::vector<NodeId> parents_;
  // Children in CSR layout: node id's children are
  // child_list_[child_off_[id] .. child_off_[id + 1]). Three flat arrays
  // total for the whole tree instead of one heap vector per node.
  std::vector<std::size_t> child_off_;  ///< n + 1 offsets into child_list_
  std::vector<NodeId> child_list_;      ///< all children, grouped by parent
  std::vector<std::size_t> levels_;
  NodeId root_ = kNoNode;
};

}  // namespace edgehd::net
