#include "loadgen.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace edgehd::serve {

namespace {

/// Uniform double in (0, 1] from the raw engine: 53 mantissa bits, never
/// exactly 0 so -log is always finite. Drawn from the raw engine rather than
/// std::exponential_distribution so the stream is identical across standard
/// library implementations.
double unit_open(std::mt19937_64& eng) {
  return (static_cast<double>(eng() >> 11) + 1.0) * 0x1.0p-53;
}

/// Exponential draw with the given mean, rounded to whole virtual ns.
net::SimTime exp_draw(std::mt19937_64& eng, double mean_ns) {
  const double d = -std::log(unit_open(eng)) * mean_ns;
  return static_cast<net::SimTime>(std::llround(d)) + 1;  // never zero
}

double rate_to_mean_ns(double rate_hz) {
  if (rate_hz <= 0.0) {
    throw std::invalid_argument("LoadGenerator: rate must be positive");
  }
  return static_cast<double>(net::kSecond) / rate_hz;
}

}  // namespace

LoadSpec LoadSpec::poisson(const std::vector<net::NodeId>& leaves,
                           double rate_hz_per_origin,
                           std::uint64_t num_queries, std::uint64_t seed) {
  LoadSpec spec;
  spec.num_queries = num_queries;
  spec.seed = seed;
  for (net::NodeId leaf : leaves) {
    OriginSpec o;
    o.origin = leaf;
    o.process = Process::kPoisson;
    o.rate_hz = rate_hz_per_origin;
    spec.origins.push_back(o);
  }
  return spec;
}

LoadSpec LoadSpec::bursty(const std::vector<net::NodeId>& leaves,
                          double burst_rate_hz, net::SimTime mean_on,
                          net::SimTime mean_off, std::uint64_t num_queries,
                          std::uint64_t seed) {
  LoadSpec spec;
  spec.num_queries = num_queries;
  spec.seed = seed;
  for (net::NodeId leaf : leaves) {
    OriginSpec o;
    o.origin = leaf;
    o.process = Process::kOnOff;
    o.burst_rate_hz = burst_rate_hz;
    o.rate_hz = burst_rate_hz;
    o.mean_on = mean_on;
    o.mean_off = mean_off;
    spec.origins.push_back(o);
  }
  return spec;
}

LoadGenerator::Stream::Stream(const OriginSpec& s, std::uint64_t seed_,
                              std::uint64_t index)
    : spec(s), rng(hdc::derive_seed(seed_, index)) {}

void LoadGenerator::Stream::advance(std::uint64_t num_samples) {
  auto& eng = rng.engine();
  if (spec.process == Process::kPoisson) {
    next_at += exp_draw(eng, rate_to_mean_ns(spec.rate_hz));
  } else {
    const double burst =
        spec.burst_rate_hz > 0.0 ? spec.burst_rate_hz : spec.rate_hz;
    net::SimTime t = next_at + exp_draw(eng, rate_to_mean_ns(burst));
    // Skip over OFF periods: when the tentative firing time falls past the
    // current ON window, jump to the start of the next ON window and retry
    // from there. ON/OFF lengths come from the same per-origin stream, so
    // the whole trajectory is one deterministic sequence of draws.
    while (t > on_until) {
      const net::SimTime off =
          exp_draw(eng, static_cast<double>(spec.mean_off));
      const net::SimTime on = exp_draw(eng, static_cast<double>(spec.mean_on));
      const net::SimTime next_on_start = on_until + off;
      on_until = next_on_start + on;
      t = next_on_start + exp_draw(eng, rate_to_mean_ns(burst));
    }
    next_at = t;
  }
  next_sample = rng.index(num_samples);
}

LoadGenerator::LoadGenerator(const LoadSpec& spec, std::uint64_t num_samples)
    : quota_(spec.num_queries), num_samples_(num_samples) {
  if (num_samples == 0) {
    throw std::invalid_argument("LoadGenerator: empty query pool");
  }
  streams_.reserve(spec.origins.size());
  for (std::size_t i = 0; i < spec.origins.size(); ++i) {
    streams_.emplace_back(spec.origins[i], spec.seed, i);
    streams_.back().advance(num_samples_);
  }
}

bool LoadGenerator::next(Arrival& out) {
  if (generated_ >= quota_ || streams_.empty()) return false;
  std::size_t best = 0;
  for (std::size_t i = 1; i < streams_.size(); ++i) {
    if (streams_[i].next_at < streams_[best].next_at) best = i;
  }
  Stream& s = streams_[best];
  out.at = s.next_at;
  out.origin = s.spec.origin;
  out.sample = s.next_sample;
  s.advance(num_samples_);
  ++generated_;
  return true;
}

}  // namespace edgehd::serve
