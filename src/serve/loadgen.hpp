// Seeded open-loop load generator for the serving plane.
//
// Generates per-origin arrival streams in virtual time: Poisson (exponential
// inter-arrivals at a constant rate) or bursty ON/OFF (a two-state Markov
// process that fires at a high rate during exponentially-long ON periods and
// is silent during OFF periods — the classic model of sensor duty cycles).
// Each origin owns an independent hdc::Rng stream derived from (seed,
// origin), so the trace for a fixed LoadSpec is bit-identical regardless of
// the order the engine interleaves origins, and adding an origin never
// perturbs the others' arrivals.
#pragma once

#include <cstdint>
#include <vector>

#include "hdc/random.hpp"
#include "net/medium.hpp"
#include "net/topology.hpp"

namespace edgehd::serve {

/// Arrival processes the generator can drive per origin.
enum class Process : std::uint8_t {
  kPoisson,  ///< constant-rate exponential inter-arrivals
  kOnOff,    ///< bursty: ON periods at burst_rate_hz, silent OFF periods
};

/// One origin's (leaf's) workload description.
struct OriginSpec {
  net::NodeId origin = 0;
  Process process = Process::kPoisson;
  double rate_hz = 1000.0;  ///< Poisson rate, or mean rate target for ON/OFF
  /// ON/OFF only: mean lengths of the ON and OFF periods and the rate fired
  /// while ON. A spec with burst_rate_hz <= 0 fires at rate_hz while ON.
  net::SimTime mean_on = 20 * net::kMillisecond;
  net::SimTime mean_off = 80 * net::kMillisecond;
  double burst_rate_hz = 0.0;
};

/// Whole-workload description: per-origin streams plus the shared quota.
struct LoadSpec {
  std::vector<OriginSpec> origins;
  /// Total queries across all origins; the generator stops handing out
  /// arrivals once the quota is reached (pull order decides which origins'
  /// tails are cut, and the engine pulls in global time order, so the served
  /// set is deterministic).
  std::uint64_t num_queries = 10'000;
  std::uint64_t seed = 1;

  /// Convenience: `leaves.size()` Poisson origins at a uniform rate.
  static LoadSpec poisson(const std::vector<net::NodeId>& leaves,
                          double rate_hz_per_origin, std::uint64_t num_queries,
                          std::uint64_t seed);
  /// Convenience: uniform bursty ON/OFF origins.
  static LoadSpec bursty(const std::vector<net::NodeId>& leaves,
                         double burst_rate_hz, net::SimTime mean_on,
                         net::SimTime mean_off, std::uint64_t num_queries,
                         std::uint64_t seed);
};

/// One generated arrival: when, where, and which sample of the query pool.
struct Arrival {
  net::SimTime at = 0;
  net::NodeId origin = 0;
  std::uint64_t sample = 0;  ///< index into the engine's query pool
};

/// Pull-based generator: next() returns arrivals in global virtual-time
/// order (ties broken by origin index) until the quota is exhausted.
class LoadGenerator {
 public:
  /// `num_samples` is the size of the query pool arrivals draw from
  /// (uniformly, from the per-origin stream).
  LoadGenerator(const LoadSpec& spec, std::uint64_t num_samples);

  /// Produces the next arrival; false once the quota is spent.
  bool next(Arrival& out);

  std::uint64_t generated() const noexcept { return generated_; }

 private:
  struct Stream {
    OriginSpec spec;
    hdc::Rng rng;
    net::SimTime next_at = 0;
    std::uint64_t next_sample = 0;
    net::SimTime on_until = 0;  ///< ON/OFF: end of the current ON period
    Stream(const OriginSpec& s, std::uint64_t seed_, std::uint64_t index);
    void advance(std::uint64_t num_samples);
  };

  std::vector<Stream> streams_;
  std::uint64_t quota_ = 0;
  std::uint64_t generated_ = 0;
  std::uint64_t num_samples_ = 0;
};

}  // namespace edgehd::serve
