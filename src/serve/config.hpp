// Query-serving plane configuration (DESIGN.md §10).
//
// The serving plane runs routed inference as an online service in virtual
// time: queries arrive at leaves, wait in a bounded admission queue, and are
// drained in micro-batches through the packed predict_batch kernels. All
// latencies below are virtual-time costs charged by the deterministic event
// loop (src/serve/engine.hpp) — they model the service, they are never
// measured from the wall clock, so every latency metric is bit-stable for a
// fixed (seed, config, plan) regardless of worker count or machine.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/medium.hpp"

namespace edgehd::serve {

/// Knobs of the per-node admission + micro-batching service.
struct ServeConfig {
  // ---- admission -----------------------------------------------------------
  /// Bounded per-node queue depth; an arrival that finds the queue full is
  /// shed (load shedding, counted in ServeReport::shed_admission). Shed
  /// queries never enter the routed-inference accounting.
  std::size_t queue_depth = 256;

  // ---- micro-batching ------------------------------------------------------
  /// Flush the queue into one predict_batch call once this many queries wait.
  std::size_t max_batch = 32;
  /// ... or once the oldest queued query has waited this long (the deadline
  /// flush that bounds tail latency under trickle load).
  net::SimTime max_wait = 1 * net::kMillisecond;

  // ---- virtual service-time model ------------------------------------------
  /// Fixed cost of dispatching one batch (kernel launch, cache warm).
  net::SimTime batch_overhead = 150 * net::kMicrosecond;
  /// Marginal cost per query in a batch.
  net::SimTime per_query_cost = 40 * net::kMicrosecond;
  /// One-way virtual latency of an escalation hop (leaf→gateway or
  /// gateway→central). Replies ride the same links, so a query served after
  /// h hops pays h * escalate_latency extra before its reply lands.
  net::SimTime escalate_latency = 2 * net::kMillisecond;

  // ---- failover (detector mode only, DESIGN.md §11) ------------------------
  /// Bounded failover budget per query: how many times an in-flight
  /// escalation whose destination is found dead (or believed dead) may be
  /// re-admitted for a later retry before the query settles for its deepest
  /// verdict. Only consulted when the engine runs a failure detector
  /// (Bindings::detector.enabled); the oracle path is untouched.
  std::size_t failover_retries = 2;
  /// Virtual-time wait before each failover retry (beliefs may refresh in
  /// the meantime: a refuting probe round, an outage window closing).
  net::SimTime failover_backoff = 4 * net::kMillisecond;

  // ---- SLO -----------------------------------------------------------------
  /// Per-query latency objective (arrival → reply, virtual time). Queries
  /// finishing later count toward ServeReport::slo_violations.
  net::SimTime slo = 20 * net::kMillisecond;

  // ---- reporting -----------------------------------------------------------
  /// Keep the per-query Reply log (sample, label, latency, …) in the report.
  /// Multi-million-query benches turn this off and rely on the aggregate
  /// counters + reply_hash, which are always maintained.
  bool record_replies = true;
};

}  // namespace edgehd::serve
