// Bounded admission queue of one serving node.
//
// Plain FIFO bookkeeping, deliberately free of any engine coupling so the
// shed/peak-depth semantics are unit-testable on their own: try_push sheds
// when the queue is at capacity, pop_front hands back the oldest entry, and
// the queue remembers its high-water mark and shed count for the report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>

#include "net/medium.hpp"

namespace edgehd::serve {

/// One queued query: which in-flight query slot it belongs to and when it
/// joined the queue (the deadline flush keys off the oldest `enqueued`).
struct QueueEntry {
  std::uint64_t slot = 0;
  net::SimTime enqueued = 0;
};

class AdmissionQueue {
 public:
  AdmissionQueue() = default;
  explicit AdmissionQueue(std::size_t depth) : depth_(depth) {}

  /// Admits the entry unless the queue is full; a full queue sheds it (the
  /// entry is dropped, shed() advances) and returns false.
  bool try_push(QueueEntry e) {
    if (entries_.size() >= depth_) {
      ++shed_;
      return false;
    }
    entries_.push_back(e);
    if (entries_.size() > peak_) peak_ = entries_.size();
    return true;
  }

  QueueEntry pop_front() {
    QueueEntry e = entries_.front();
    entries_.pop_front();
    return e;
  }

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t depth() const noexcept { return depth_; }
  /// Arrival time of the oldest queued entry (undefined when empty).
  net::SimTime oldest_enqueued() const noexcept {
    return entries_.front().enqueued;
  }

  std::uint64_t shed() const noexcept { return shed_; }
  std::size_t peak() const noexcept { return peak_; }

 private:
  std::size_t depth_ = 256;
  std::deque<QueueEntry> entries_;
  std::uint64_t shed_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace edgehd::serve
