// Deterministic virtual-time serving engine (DESIGN.md §10).
//
// The engine runs routed inference as an online service: queries arrive at
// origin nodes, wait in bounded per-node admission queues, and are drained
// in dynamic micro-batches through the packed predict_batch kernels. A
// low-confidence result opens an *async escalation session*: the query ships
// upward (QueryEscalate accounting, one virtual escalate_latency per hop)
// and joins the ancestor's queue, while the origin keeps draining its own
// queue — nothing blocks on an in-flight escalation.
//
// Determinism contract: the event loop is single-threaded over a calendar
// queue keyed by (virtual time, sequence number); worker threads are used
// only inside encode_batch / predict_batch, which are bit-identical to
// their serial forms. For a fixed (config, bindings, load spec, fault plan)
// the reply sequence, every counter and every virtual-latency quantile are
// identical across runs and worker counts.
//
// Accounting matches the synchronous walks byte-for-byte: a served query is
// charged query_gather_bytes (gather_bytes_masked under a health mask), each
// escalation hop one QueryEscalate envelope and each served reply one
// QueryReply envelope — the engine calls the same proto::account_* helpers
// route_query uses. Queries shed at admission never enter the routed
// accounting (they were refused service, not served badly).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include <memory>

#include "config.hpp"
#include "hdc/hypervector.hpp"
#include "loadgen.hpp"
#include "net/detector.hpp"
#include "net/event_queue.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "proto/routing.hpp"
#include "queue.hpp"
#include "runtime/thread_pool.hpp"

namespace edgehd::serve {

/// Everything the engine borrows from the deployment it serves. The facade
/// (core::EdgeHdSystem::serve_start) fills this in; tests can wire it by
/// hand. All referenced objects must outlive the engine.
struct Bindings {
  /// Routing view of the hierarchy. The engine overrides `health` and
  /// `degraded` per virtual time from its fault plan; everything else
  /// (threshold, compression, failover policy, escalation counter) is used
  /// as given.
  proto::RoutingContext ctx;
  runtime::ThreadPool* pool = nullptr;
  /// Failure-detection config. When enabled and a fault plan is installed,
  /// the engine owns a FailureDetector advanced in virtual time; reachability
  /// decisions run on its SuspicionView (the mask stays world simulation)
  /// and in-flight escalations fail over with bounded retries.
  net::DetectorConfig detector;

  /// Size of the query pool; `sample` indices below are in [0, num_samples).
  std::uint64_t num_samples = 0;
  /// Optional ground truth per sample (empty = accuracy not tracked).
  std::span<const std::size_t> labels;

  /// Batched leaf encoding: the feature slices of `samples` at leaf `leaf`,
  /// encoded in that leaf's hypervector space (bit-identical to per-sample
  /// encode). This is the hot path — a leaf micro-batch never encodes more
  /// of the hierarchy than its own slice.
  std::function<std::vector<hdc::BipolarHV>(
      net::NodeId leaf, std::span<const std::uint64_t> samples)>
      encode_leaf_batch;
  /// Full-hierarchy encoding of one sample (indexed by NodeId) — computed
  /// lazily when a query first escalates, then cached on the query.
  std::function<std::vector<hdc::BipolarHV>(std::uint64_t sample)> encode_all;
  /// Like encode_all under a health mask (unreachable contributions
  /// silenced).
  std::function<std::vector<hdc::BipolarHV>(std::uint64_t sample,
                                            const net::HealthMask&)>
      encode_all_masked;

  /// Routed-inference counters owned by the facade ("core.routed.*"); the
  /// engine advances the same handles the synchronous path advances, so
  /// serving and infer_routed produce one coherent accounting.
  obs::Counter routed_queries;
  obs::Counter routed_degraded;
  obs::Counter routed_unserved;
  obs::Counter routed_bytes;
  obs::Counter routed_retry_bytes;
  obs::Histogram routed_confidence;
  /// Per-node serve counters, indexed by NodeId (may be empty).
  std::span<const obs::Counter> node_serves;
};

/// One finalized query, in finalize order.
struct Reply {
  std::uint64_t query_id = 0;
  std::uint64_t sample = 0;
  net::NodeId origin = net::kNoNode;
  proto::RoutedResult result;
  net::SimTime arrival = 0;    ///< admission instant
  net::SimTime completed = 0;  ///< reply lands back at the origin
};

/// Per-node service tallies.
struct NodeServeStats {
  std::uint64_t admitted = 0;   ///< entered the queue (arrivals + escalations)
  std::uint64_t shed = 0;       ///< refused at this node's queue
  std::uint64_t served = 0;     ///< finalized with result.node == this node
  std::uint64_t batches = 0;    ///< predict_batch dispatches
  std::size_t peak_queue = 0;   ///< high-water queue depth
};

/// Aggregate outcome of one run. Every field is deterministic for a fixed
/// (config, bindings, load, plan) — including the latency quantiles, which
/// are exact nearest-rank statistics over virtual-time latencies.
struct ServeReport {
  std::uint64_t submitted = 0;        ///< arrivals offered to admission
  std::uint64_t served = 0;
  std::uint64_t served_degraded = 0;  ///< subset of served
  std::uint64_t unserved = 0;         ///< admitted but unservable (faults)
  std::uint64_t shed_admission = 0;   ///< refused at the origin queue
  std::uint64_t shed_escalated = 0;   ///< escalation refused upstream; the
                                      ///< query was served at its best-so-far
                                      ///< node instead
  std::uint64_t escalation_hops = 0;
  // ---- failover accounting (detector mode; all zero on the oracle path) ----
  std::uint64_t failover_retries = 0;   ///< bounded re-admissions scheduled
  std::uint64_t failover_reroutes = 0;  ///< queries that escalated after retry
  std::uint64_t failover_exhausted = 0; ///< retry budget spent; settled local
  std::uint64_t batches = 0;
  std::uint64_t correct = 0;  ///< served with label == ground truth
  std::uint64_t slo_violations = 0;
  net::SimTime makespan = 0;  ///< last reply's completion instant
  double p50_latency_ns = 0.0;
  double p95_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double mean_latency_ns = 0.0;
  /// FNV-1a over the finalize-order reply stream (ids, labels, confidence
  /// bits, bytes, completion times) — one number that pins the entire
  /// observable behaviour for determinism tests.
  std::uint64_t reply_hash = 0;
  std::vector<Reply> replies;  ///< populated when ServeConfig::record_replies
  std::vector<NodeServeStats> per_node;  ///< indexed by NodeId
};

/// Closed-loop driver: `clients` virtual clients per origin, each submitting
/// one query, waiting for its reply plus `think`, then submitting the next,
/// until `num_queries` total have been issued.
struct ClosedLoopSpec {
  std::vector<net::NodeId> origins;
  std::size_t clients_per_origin = 4;
  net::SimTime think = 5 * net::kMillisecond;
  std::uint64_t num_queries = 10'000;
  std::uint64_t seed = 1;
};

class Engine {
 public:
  Engine(ServeConfig config, Bindings bindings);

  /// Installs the fault timeline; health is re-snapshotted as virtual time
  /// advances, so outage windows open and close mid-run.
  void set_fault_plan(net::FaultPlan plan);

  /// Scripted open-loop arrival (any order; run() sorts stably by time).
  /// `origin` must host a classifier.
  void submit(net::SimTime at, net::NodeId origin, std::uint64_t sample);

  /// Drains scripted arrivals to completion. Single-shot: the engine is
  /// spent after any run_*.
  ServeReport run();
  /// Open loop: merges generated arrivals with any scripted ones.
  ServeReport run(const LoadSpec& load);
  /// Closed loop: think-time clients, arrival rate set by service itself.
  ServeReport run(const ClosedLoopSpec& load);

 private:
  struct Ev {
    net::SimTime t = 0;
    std::uint64_t seq = 0;
    enum class Kind : std::uint8_t {
      kArrival,        ///< node=origin, a=sample, b=client (or kNoClient)
      kDeadline,       ///< node, a=deadline epoch
      kServiceDone,    ///< node
      kEscalateArrive, ///< node=destination, a=query slot
      kFailoverRetry   ///< node=holder of the best verdict, a=query slot
    } kind = Kind::kArrival;
    net::NodeId node = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };

  struct QueryState {
    net::SimTime arrival = 0;
    net::NodeId origin = 0;
    std::uint64_t sample = 0;
    std::uint64_t query_id = 0;
    std::uint64_t client = 0;
    std::uint32_t hops = 0;
    std::uint32_t failovers = 0;       ///< failover retries consumed
    bool rerouted = false;             ///< escalated again after a failover
    proto::RoutedResult best;          ///< deepest verdict so far
    std::vector<hdc::BipolarHV> hvs;   ///< cached full encodings (lazy)
  };

  struct NodeState {
    AdmissionQueue queue;
    bool busy = false;
    std::uint64_t deadline_epoch = 0;
    std::vector<std::uint64_t> in_service;
    NodeServeStats stats;
  };

  static constexpr std::uint64_t kNoClient = ~std::uint64_t{0};

  void schedule(net::SimTime t, Ev::Kind kind, net::NodeId node,
                std::uint64_t a = 0, std::uint64_t b = 0);
  /// Health snapshot governing instant `t` (cached between changes).
  void refresh_mask(net::SimTime t);
  std::uint64_t alloc_slot();
  void release_slot(std::uint64_t slot);

  void on_arrival(const Ev& ev);
  void on_deadline(const Ev& ev);
  void on_service_done(const Ev& ev);
  void on_escalate_arrive(const Ev& ev);
  void on_failover_retry(const Ev& ev);
  /// Schedules a bounded failover retry for `slot`; false when the budget is
  /// spent (the caller settles the query instead).
  bool try_failover(std::uint64_t slot, net::SimTime now);

  /// Starts a batch or arms the deadline timer, per the flush policy.
  void maybe_flush(net::NodeId node, net::SimTime now);
  /// Routes one predicted query onward: finalize here or escalate.
  void decide(std::uint64_t slot, net::SimTime now);
  /// Ensures the query's full-hierarchy encodings are cached.
  void ensure_hvs(QueryState& q, net::SimTime now);
  void finalize_served(std::uint64_t slot, net::SimTime now, bool cut);
  /// Fails over everything queued at a node observed down: queries with a
  /// deeper verdict serve degraded from it, the rest go unserved.
  void fail_node_queue(net::NodeId node, net::SimTime now);
  void finalize_unserved(std::uint64_t slot, net::SimTime now);
  void record_reply(const QueryState& q, const proto::RoutedResult& result,
                    net::SimTime completed);

  void dispatch(const Ev& ev);
  ServeReport drain();
  ServeReport finish();

  ServeConfig cfg_;
  Bindings b_;
  std::optional<net::FaultPlan> plan_;
  net::HealthMask mask_;
  net::SimTime mask_time_ = -1;
  /// Owned failure detector (detector mode); advanced by refresh_mask.
  std::unique_ptr<net::FailureDetector> detector_;

  /// Pending events in the shared calendar queue (net/event_queue.hpp); it
  /// pops in the exact (t, seq) order the old binary heap produced, so
  /// ServeReports are bit-identical to the priority_queue implementation.
  net::CalendarQueue<Ev> events_;
  std::uint64_t next_seq_ = 0;
  std::vector<Ev> scripted_;

  std::vector<NodeState> nodes_;
  std::vector<QueryState> slots_;
  std::vector<std::uint64_t> free_slots_;
  std::uint64_t next_query_id_ = 0;
  std::uint64_t in_flight_ = 0;

  // ---- closed-loop state ----------------------------------------------------
  struct Client {
    net::NodeId origin = 0;
    hdc::Rng rng;
    Client(net::NodeId o, std::uint64_t seed) : origin(o), rng(seed) {}
  };
  std::vector<Client> clients_;
  net::SimTime think_ = 0;
  std::uint64_t closed_quota_ = 0;
  std::uint64_t closed_issued_ = 0;
  void client_submit(std::uint64_t client, net::SimTime at);

  // ---- results --------------------------------------------------------------
  ServeReport report_;
  std::vector<net::SimTime> latencies_;
  bool spent_ = false;

  // ---- serving-plane metrics (virtual time => registered stable) -----------
  obs::Counter m_submitted_, m_shed_admission_, m_shed_escalated_, m_batches_,
      m_slo_violations_;
  obs::Counter m_failover_retries_, m_failover_reroutes_,
      m_failover_exhausted_;
  obs::Histogram m_latency_;
  obs::Gauge m_queue_peak_;
};

}  // namespace edgehd::serve
