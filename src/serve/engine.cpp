#include "engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace edgehd::serve {

using hdc::BipolarHV;
using net::NodeId;
using net::SimTime;

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511627776003ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  h ^= v;
  h *= kFnvPrime;
}

/// Exact nearest-rank quantile over a sorted sample.
double nearest_rank(const std::vector<SimTime>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t idx = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

}  // namespace

Engine::Engine(ServeConfig config, Bindings bindings)
    : cfg_(config), b_(std::move(bindings)) {
  if (b_.ctx.topology == nullptr || b_.pool == nullptr) {
    throw std::invalid_argument("serve::Engine: unbound topology or pool");
  }
  if (b_.num_samples == 0) {
    throw std::invalid_argument("serve::Engine: empty query pool");
  }
  cfg_.max_batch = std::max<std::size_t>(1, cfg_.max_batch);
  nodes_.resize(b_.ctx.topology->num_nodes());
  for (NodeState& ns : nodes_) ns.queue = AdmissionQueue(cfg_.queue_depth);
  report_.per_node.resize(nodes_.size());
  report_.reply_hash = kFnvOffset;
  if constexpr (obs::kEnabled) {
    auto& reg = obs::MetricsRegistry::global();
    m_submitted_ = reg.counter("serve.submitted");
    m_shed_admission_ = reg.counter("serve.shed.admission");
    m_shed_escalated_ = reg.counter("serve.shed.escalated");
    m_batches_ = reg.counter("serve.batches");
    m_slo_violations_ = reg.counter("serve.slo_violations");
    m_failover_retries_ = reg.counter("serve.failover.readmissions");
    m_failover_reroutes_ = reg.counter("serve.failover.reroutes");
    m_failover_exhausted_ = reg.counter("serve.failover.exhausted");
    // Virtual-time latency buckets, 100 us .. 1 s (deterministic, so stable).
    m_latency_ = reg.histogram(
        "serve.latency_ns",
        {1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 2.5e8, 5e8,
         1e9});
    m_queue_peak_ = reg.gauge("serve.queue.peak");
  }
}

void Engine::set_fault_plan(net::FaultPlan plan) {
  detector_.reset();
  plan_ = std::move(plan);
  mask_time_ = -1;
  if (b_.detector.enabled) {
    // Detector mode: routing beliefs come from probe traffic over this plan,
    // not from the oracle mask. The mask keeps simulating the physical world
    // (a dead node cannot serve), consulted only through origin_up().
    detector_ = std::make_unique<net::FailureDetector>(*b_.ctx.topology,
                                                       *plan_, b_.detector);
  }
}

void Engine::refresh_mask(SimTime t) {
  if (t == mask_time_) return;
  mask_time_ = t;
  if (plan_.has_value()) {
    mask_ = net::HealthMask::snapshot(*plan_, nodes_.size(), t);
  } else {
    mask_ = net::HealthMask{};
  }
  b_.ctx.health = &mask_;
  if (detector_) {
    detector_->advance(t);
    b_.ctx.suspicion = &detector_->view();
    // Degraded routing engages on either physical unhealth (masked encode
    // paths must silence dead contributions) or earned suspicion (the
    // reachability walk must consult beliefs).
    b_.ctx.degraded = (!mask_.empty() && !mask_.all_healthy()) ||
                      !detector_->view().all_healthy();
  } else {
    b_.ctx.suspicion = nullptr;
    b_.ctx.degraded = !mask_.empty() && !mask_.all_healthy();
  }
}

void Engine::schedule(SimTime t, Ev::Kind kind, NodeId node, std::uint64_t a,
                      std::uint64_t b) {
  const std::uint64_t seq = next_seq_++;
  events_.push(t, seq, Ev{t, seq, kind, node, a, b});
}

std::uint64_t Engine::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint64_t s = free_slots_.back();
    free_slots_.pop_back();
    slots_[s] = QueryState{};
    return s;
  }
  slots_.emplace_back();
  return slots_.size() - 1;
}

void Engine::release_slot(std::uint64_t slot) {
  slots_[slot].hvs.clear();
  free_slots_.push_back(slot);
}

void Engine::submit(SimTime at, NodeId origin, std::uint64_t sample) {
  if (spent_) throw std::logic_error("serve::Engine: already run");
  if (origin >= nodes_.size() || !b_.ctx.nodes[origin].has_classifier()) {
    throw std::invalid_argument(
        "serve::Engine: origin must host a classifier");
  }
  if (sample >= b_.num_samples) {
    throw std::invalid_argument("serve::Engine: sample out of range");
  }
  schedule(at, Ev::Kind::kArrival, origin, sample, kNoClient);
}

void Engine::client_submit(std::uint64_t client, SimTime at) {
  if (closed_issued_ >= closed_quota_) return;
  ++closed_issued_;
  Client& c = clients_[client];
  schedule(at, Ev::Kind::kArrival, c.origin, c.rng.index(b_.num_samples),
           client);
}

void Engine::on_arrival(const Ev& ev) {
  refresh_mask(ev.t);
  ++report_.submitted;
  m_submitted_.inc();
  if (!b_.ctx.origin_up(ev.node)) {
    // The origin itself is down: nobody can pose the question. Counted as a
    // routed query that went unserved, exactly like the synchronous walk.
    b_.routed_queries.inc();
    b_.routed_unserved.inc();
    ++report_.unserved;
    if (ev.b != kNoClient) client_submit(ev.b, ev.t + think_);
    return;
  }
  NodeState& ns = nodes_[ev.node];
  const std::uint64_t slot = alloc_slot();
  if (!ns.queue.try_push({slot, ev.t})) {
    // Load shedding: refused before entering the service, so it never
    // touches the routed-inference accounting.
    release_slot(slot);
    ++report_.shed_admission;
    m_shed_admission_.inc();
    if (ev.b != kNoClient) client_submit(ev.b, ev.t + think_);
    return;
  }
  QueryState& q = slots_[slot];
  q.arrival = ev.t;
  q.origin = ev.node;
  q.sample = ev.a;
  q.client = ev.b;
  q.query_id = next_query_id_++;
  ++ns.stats.admitted;
  ++in_flight_;
  maybe_flush(ev.node, ev.t);
}

void Engine::maybe_flush(NodeId node, SimTime now) {
  NodeState& ns = nodes_[node];
  if (ns.busy || ns.queue.empty()) return;
  const bool full = ns.queue.size() >= cfg_.max_batch;
  const bool due = ns.queue.oldest_enqueued() + cfg_.max_wait <= now;
  if (full || due) {
    const std::size_t k = std::min(cfg_.max_batch, ns.queue.size());
    ns.in_service.clear();
    for (std::size_t i = 0; i < k; ++i) {
      ns.in_service.push_back(ns.queue.pop_front().slot);
    }
    ns.busy = true;
    ++ns.deadline_epoch;  // any armed deadline is now stale
    ++ns.stats.batches;
    ++report_.batches;
    m_batches_.inc();
    schedule(now + cfg_.batch_overhead +
                 static_cast<SimTime>(k) * cfg_.per_query_cost,
             Ev::Kind::kServiceDone, node);
  } else {
    // Not enough work yet: arm (or re-arm) the deadline flush for the
    // oldest waiter. The epoch stamp invalidates earlier timers.
    ++ns.deadline_epoch;
    schedule(ns.queue.oldest_enqueued() + cfg_.max_wait, Ev::Kind::kDeadline,
             node, ns.deadline_epoch);
  }
}

void Engine::on_deadline(const Ev& ev) {
  if (ev.a != nodes_[ev.node].deadline_epoch) return;  // stale timer
  refresh_mask(ev.t);
  if (!b_.ctx.origin_up(ev.node)) {
    fail_node_queue(ev.node, ev.t);
    return;
  }
  maybe_flush(ev.node, ev.t);
}

void Engine::fail_node_queue(NodeId node, SimTime now) {
  // The node is down: it cannot hold queue state, so everything waiting
  // here fails over. Queries already holding a deeper verdict fall back to
  // it (degraded); the rest are lost.
  NodeState& ns = nodes_[node];
  if (detector_ && !ns.queue.empty() && node != b_.ctx.topology->root()) {
    // The lost queue is hard evidence of death; feed it to the detector so
    // later routing decisions stop steering queries at this node.
    detector_->report_failure(b_.ctx.topology->parent(node), node, now);
  }
  while (!ns.queue.empty()) {
    const std::uint64_t slot = ns.queue.pop_front().slot;
    if (slots_[slot].best.node != net::kNoNode && b_.ctx.serve_degraded) {
      finalize_served(slot, now, /*cut=*/true);
    } else {
      finalize_unserved(slot, now);
    }
  }
}

void Engine::ensure_hvs(QueryState& q, SimTime now) {
  (void)now;  // the mask governing `now` is already installed in b_.ctx
  if (!q.hvs.empty()) return;
  q.hvs = b_.ctx.degraded ? b_.encode_all_masked(q.sample, mask_)
                          : b_.encode_all(q.sample);
}

void Engine::on_service_done(const Ev& ev) {
  refresh_mask(ev.t);
  NodeState& ns = nodes_[ev.node];
  const std::vector<std::uint64_t> batch = ns.in_service;
  ns.in_service.clear();
  ns.busy = false;
  if (!b_.ctx.origin_up(ev.node)) {
    // The serving node crashed while the batch was in flight. Queries that
    // already hold a verdict from a deeper node fall back to it; the rest
    // are lost.
    for (const std::uint64_t slot : batch) {
      if (slots_[slot].best.node == net::kNoNode) {
        finalize_unserved(slot, ev.t);
      } else if (b_.ctx.serve_degraded) {
        finalize_served(slot, ev.t, /*cut=*/true);
      } else {
        finalize_unserved(slot, ev.t);
      }
    }
    fail_node_queue(ev.node, ev.t);
    return;
  }
  // ---- batched compute: one encode_batch + one predict_batch dispatch ----
  std::vector<BipolarHV> queries(batch.size());
  if (b_.ctx.topology->is_leaf(ev.node)) {
    std::vector<std::uint64_t> fresh_samples;
    std::vector<std::size_t> fresh_pos;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      QueryState& q = slots_[batch[i]];
      if (q.hvs.empty()) {
        fresh_samples.push_back(q.sample);
        fresh_pos.push_back(i);
      } else {
        queries[i] = q.hvs[ev.node];
      }
    }
    if (!fresh_samples.empty()) {
      auto encoded = b_.encode_leaf_batch(ev.node, fresh_samples);
      for (std::size_t i = 0; i < fresh_pos.size(); ++i) {
        queries[fresh_pos[i]] = std::move(encoded[i]);
      }
    }
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      QueryState& q = slots_[batch[i]];
      ensure_hvs(q, ev.t);
      queries[i] = q.hvs[ev.node];
    }
  }
  const auto preds =
      b_.ctx.nodes[ev.node].classifier().predict_batch(queries, *b_.pool);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    QueryState& q = slots_[batch[i]];
    q.best.label = preds[i].label;
    q.best.confidence = preds[i].confidence;
    q.best.node = ev.node;
    q.best.level = b_.ctx.topology->level(ev.node);
    decide(batch[i], ev.t);
  }
  maybe_flush(ev.node, ev.t);
}

void Engine::decide(std::uint64_t slot, SimTime now) {
  QueryState& q = slots_[slot];
  const proto::RoutingContext& ctx = b_.ctx;
  const NodeId current = q.best.node;
  const bool confident = q.best.confidence >= ctx.confidence_threshold;
  if (confident || current == ctx.topology->root()) {
    finalize_served(slot, now, /*cut=*/false);
    return;
  }
  NodeId next;
  if (ctx.degraded) {
    next = proto::reachable_classifier_ancestor(ctx, current);
    if (next == net::kNoNode) {
      // Escalation wanted to continue but a dead hop blocks the way. In
      // detector mode the block is a belief that may yet be refuted (a
      // probe round, an outage closing), so spend the failover budget
      // before settling for the local verdict.
      if (detector_ && try_failover(slot, now)) return;
      if (ctx.serve_degraded) {
        finalize_served(slot, now, /*cut=*/true);
      } else {
        finalize_unserved(slot, now);
      }
      return;
    }
  } else {
    next = proto::classifier_ancestor(ctx, current);
  }
  if (!ctx.nodes[next].has_classifier()) {
    finalize_served(slot, now, /*cut=*/false);
    return;
  }
  if (q.failovers > 0 && !q.rerouted) {
    // The query survived at least one failover wait and found a live path
    // up again: count the reroute once per query.
    q.rerouted = true;
    ++report_.failover_reroutes;
    m_failover_reroutes_.inc();
  }
  // Async escalation session: charge the QueryEscalate envelope now, ship
  // the query one virtual hop up, and return — the local queue keeps
  // draining while this query is in flight.
  ensure_hvs(q, now);
  ctx.escalations->inc();
  proto::account_escalation(q.hvs[next], q.query_id, ++q.hops);
  ++report_.escalation_hops;
  schedule(now + cfg_.escalate_latency, Ev::Kind::kEscalateArrive, next, slot);
}

bool Engine::try_failover(std::uint64_t slot, SimTime now) {
  QueryState& q = slots_[slot];
  if (q.failovers >= cfg_.failover_retries) {
    ++report_.failover_exhausted;
    m_failover_exhausted_.inc();
    return false;
  }
  ++q.failovers;
  ++report_.failover_retries;
  m_failover_retries_.inc();
  schedule(now + cfg_.failover_backoff, Ev::Kind::kFailoverRetry, q.best.node,
           slot);
  return true;
}

void Engine::on_failover_retry(const Ev& ev) {
  refresh_mask(ev.t);
  const std::uint64_t slot = ev.a;
  if (!b_.ctx.origin_up(ev.node)) {
    // The node holding the deepest verdict died while the query waited out
    // its backoff: nothing is left to answer from.
    finalize_unserved(slot, ev.t);
    return;
  }
  // Re-run the routing decision with current beliefs: a refuted suspicion
  // escalates again (counted as a reroute), a persistent one burns another
  // retry or settles for the held verdict.
  decide(slot, ev.t);
}

void Engine::on_escalate_arrive(const Ev& ev) {
  refresh_mask(ev.t);
  const std::uint64_t slot = ev.a;
  if (!b_.ctx.origin_up(ev.node)) {
    // Destination died while the query was in flight — same outcome as a
    // blocked walk, except in detector mode the sender learns from the
    // failed session and may retry within the failover budget.
    if (detector_) {
      detector_->report_failure(slots_[slot].best.node, ev.node, ev.t);
      if (try_failover(slot, ev.t)) return;
    }
    if (b_.ctx.serve_degraded) {
      finalize_served(slot, ev.t, /*cut=*/true);
    } else {
      finalize_unserved(slot, ev.t);
    }
    return;
  }
  NodeState& ns = nodes_[ev.node];
  if (!ns.queue.try_push({slot, ev.t})) {
    // Upstream overload: the ancestor refuses the session and the query is
    // served with the deepest verdict it already holds. Overload is not a
    // fault, so the answer is not marked degraded.
    ++report_.shed_escalated;
    m_shed_escalated_.inc();
    finalize_served(slot, ev.t, /*cut=*/false);
    return;
  }
  ++ns.stats.admitted;
  maybe_flush(ev.node, ev.t);
}

void Engine::finalize_served(std::uint64_t slot, SimTime now, bool cut) {
  QueryState& q = slots_[slot];
  proto::RoutedResult result = q.best;
  result.bytes = 0;
  result.retry_bytes = 0;
  const proto::RoutingContext& ctx = b_.ctx;
  if (ctx.degraded) {
    result.degraded = cut || ctx.subtree_degraded(result.node);
    proto::gather_bytes_masked(ctx, result.node, result.bytes,
                               result.retry_bytes);
  } else {
    result.degraded = cut;
    result.bytes = proto::query_gather_bytes(ctx, result.node);
  }
  proto::account_reply(result, q.query_id);
  b_.routed_queries.inc();
  if (result.degraded) {
    b_.routed_degraded.inc();
    ++report_.served_degraded;
  }
  b_.routed_bytes.inc(result.bytes);
  b_.routed_retry_bytes.inc(result.retry_bytes);
  b_.routed_confidence.observe(result.confidence);
  if (result.node < b_.node_serves.size()) b_.node_serves[result.node].inc();
  ++report_.served;
  ++nodes_[result.node].stats.served;
  if (!b_.labels.empty() && result.label == b_.labels[q.sample]) {
    ++report_.correct;
  }
  // The reply descends the hops the query climbed before landing back at
  // the origin.
  const SimTime completed =
      now + static_cast<SimTime>(q.hops) * cfg_.escalate_latency;
  const SimTime latency = completed - q.arrival;
  latencies_.push_back(latency);
  m_latency_.observe(static_cast<double>(latency));
  if (latency > cfg_.slo) {
    ++report_.slo_violations;
    m_slo_violations_.inc();
  }
  report_.makespan = std::max(report_.makespan, completed);
  record_reply(q, result, completed);
  if (q.client != kNoClient) client_submit(q.client, completed + think_);
  release_slot(slot);
  --in_flight_;
}

void Engine::finalize_unserved(std::uint64_t slot, SimTime now) {
  QueryState& q = slots_[slot];
  b_.routed_queries.inc();
  b_.routed_unserved.inc();
  ++report_.unserved;
  proto::RoutedResult result;  // node == kNoNode
  result.degraded = true;
  record_reply(q, result, now);
  if (q.client != kNoClient) client_submit(q.client, now + think_);
  release_slot(slot);
  --in_flight_;
}

void Engine::record_reply(const QueryState& q,
                          const proto::RoutedResult& result,
                          SimTime completed) {
  std::uint64_t& h = report_.reply_hash;
  fnv_mix(h, q.query_id);
  fnv_mix(h, q.sample);
  fnv_mix(h, static_cast<std::uint64_t>(result.node));
  fnv_mix(h, result.label);
  fnv_mix(h, std::bit_cast<std::uint64_t>(result.confidence));
  fnv_mix(h, result.degraded ? 1 : 0);
  fnv_mix(h, result.bytes + result.retry_bytes);
  fnv_mix(h, static_cast<std::uint64_t>(completed));
  if (cfg_.record_replies) {
    report_.replies.push_back(
        Reply{q.query_id, q.sample, q.origin, result, q.arrival, completed});
  }
}

ServeReport Engine::run() { return drain(); }

ServeReport Engine::run(const LoadSpec& load) {
  if (spent_) throw std::logic_error("serve::Engine: already run");
  for (const OriginSpec& o : load.origins) {
    if (o.origin >= nodes_.size() ||
        !b_.ctx.nodes[o.origin].has_classifier()) {
      throw std::invalid_argument(
          "serve::Engine: load origin must host a classifier");
    }
  }
  LoadGenerator gen(load, b_.num_samples);
  // Merge generated arrivals with scheduled events in global time order;
  // the generator is pulled lazily so multi-million-query runs never
  // materialize the trace.
  Arrival pending;
  bool has_pending = gen.next(pending);
  while (!events_.empty() || has_pending) {
    if (has_pending &&
        (events_.empty() || pending.at <= events_.front().time)) {
      schedule(pending.at, Ev::Kind::kArrival, pending.origin, pending.sample,
               kNoClient);
      has_pending = gen.next(pending);
      continue;
    }
    const Ev ev = events_.pop().payload;
    dispatch(ev);
  }
  return finish();
}

ServeReport Engine::run(const ClosedLoopSpec& load) {
  if (spent_) throw std::logic_error("serve::Engine: already run");
  for (NodeId origin : load.origins) {
    if (origin >= nodes_.size() || !b_.ctx.nodes[origin].has_classifier()) {
      throw std::invalid_argument(
          "serve::Engine: closed-loop origin must host a classifier");
    }
  }
  think_ = load.think;
  closed_quota_ = load.num_queries;
  for (NodeId origin : load.origins) {
    for (std::size_t c = 0; c < load.clients_per_origin; ++c) {
      clients_.emplace_back(
          origin, hdc::derive_seed(load.seed, clients_.size()));
    }
  }
  for (std::size_t c = 0; c < clients_.size(); ++c) client_submit(c, 0);
  return drain();
}

void Engine::dispatch(const Ev& ev) {
  switch (ev.kind) {
    case Ev::Kind::kArrival:
      on_arrival(ev);
      break;
    case Ev::Kind::kDeadline:
      on_deadline(ev);
      break;
    case Ev::Kind::kServiceDone:
      on_service_done(ev);
      break;
    case Ev::Kind::kEscalateArrive:
      on_escalate_arrive(ev);
      break;
    case Ev::Kind::kFailoverRetry:
      on_failover_retry(ev);
      break;
  }
}

ServeReport Engine::drain() {
  if (spent_) throw std::logic_error("serve::Engine: already run");
  while (!events_.empty()) {
    const Ev ev = events_.pop().payload;
    dispatch(ev);
  }
  return finish();
}

ServeReport Engine::finish() {
  spent_ = true;
  if (in_flight_ != 0) {
    throw std::logic_error("serve::Engine: queries still in flight at drain");
  }
  std::size_t peak = 0;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    NodeServeStats& s = report_.per_node[n];
    s = nodes_[n].stats;
    s.shed = nodes_[n].queue.shed();
    s.peak_queue = nodes_[n].queue.peak();
    peak = std::max(peak, s.peak_queue);
  }
  m_queue_peak_.set(static_cast<double>(peak));
  std::vector<SimTime> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  report_.p50_latency_ns = nearest_rank(sorted, 0.50);
  report_.p95_latency_ns = nearest_rank(sorted, 0.95);
  report_.p99_latency_ns = nearest_rank(sorted, 0.99);
  if (!sorted.empty()) {
    long double sum = 0;
    for (const SimTime v : sorted) sum += static_cast<long double>(v);
    report_.mean_latency_ns =
        static_cast<double>(sum / static_cast<long double>(sorted.size()));
  }
  return std::move(report_);
}

}  // namespace edgehd::serve
