// Analytic execution-time / energy / communication model for the four
// deployments the paper's efficiency experiments compare (Section VI-D/E/G):
//
//   DNN-GPU  — centralized MLP training/inference on the server GPU;
//   HD-GPU   — centralized EdgeHD algorithm on the server GPU;
//   HD-FPGA  — centralized EdgeHD algorithm on the Kintex-7 design;
//   EdgeHD   — the hierarchical deployment: per-node FPGA + RPi hosts,
//              model/batch hypervectors (not raw data) on the wire.
//
// Costs come from explicit operation counts priced by the platform models
// and byte counts priced by the medium models, scheduled on the
// discrete-event simulator so pipeline overlap across nodes and link
// serialization are accounted for. The cost model deliberately uses the
// *paper-scale* sample counts (Table I) — no learning actually executes
// here, so there is no need to shrink the workloads.
//
// Protocol note: the deployed EdgeHD retrains on batch hypervectors at every
// level (Section IV-B); the accuracy engine (EdgeHdSystem) additionally lets
// end nodes retrain on their local per-sample encodings, which costs no
// communication but is not charged here.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "edgehd.hpp"
#include "net/medium.hpp"
#include "net/platform.hpp"
#include "net/topology.hpp"

namespace edgehd::core {

/// Shape parameters of a workload (no actual samples).
struct WorkloadShape {
  std::size_t num_features = 0;
  std::size_t num_classes = 0;
  std::vector<std::size_t> partitions;  ///< per-leaf feature counts
  std::size_t train_size = 0;
  std::size_t test_size = 0;

  /// From a Table-I spec, using the paper's sample counts and an even
  /// feature partition over the spec's end nodes (1 node if non-hierarchical).
  static WorkloadShape from_spec(const data::DatasetSpec& spec);
};

/// The four compared deployments.
enum class Deployment : std::uint8_t {
  kDnnGpu,
  kHdGpu,
  kHdFpga,
  kEdgeHd,
};

/// Cost of one phase (training or inference) of one deployment.
struct PhaseCosts {
  net::SimTime time = 0;     ///< makespan
  double energy_j = 0.0;     ///< compute + communication energy
  std::uint64_t bytes = 0;   ///< bytes placed on links (per hop)
};

struct ScenarioCosts {
  PhaseCosts train;
  PhaseCosts infer;
};

/// Cost model for one workload shape under one EdgeHD configuration.
class CostModel {
 public:
  explicit CostModel(WorkloadShape shape, SystemConfig config = {});

  const WorkloadShape& shape() const noexcept { return shape_; }

  /// Full train + inference costs of a deployment on a topology/medium. For
  /// EdgeHD, inference runs at the central node (the highest-quality mode).
  ScenarioCosts evaluate(Deployment dep, const net::Topology& topo,
                         const net::Medium& medium) const;

  /// EdgeHD inference served at hierarchy level `level` (Figure 11): queries
  /// are answered by the level-`level` ancestor of each subtree, so traffic
  /// and search work stop at that level. `query_fraction` scales the test
  /// set (used by the routed mix below).
  PhaseCosts edgehd_inference_at_level(const net::Topology& topo,
                                       const net::Medium& medium,
                                       std::size_t level,
                                       double query_fraction = 1.0) const;

  /// EdgeHD inference under confidence routing (Section IV-C): queries are
  /// served at the lowest confident level. `level_fractions[i]` is the share
  /// of queries served at level i+1; defaults to the serving mix measured on
  /// the learning benches after offline training (~50/35/15 across three
  /// levels, deeper levels folded into the top entry).
  PhaseCosts edgehd_inference_routed(
      const net::Topology& topo, const net::Medium& medium,
      const std::vector<double>& level_fractions = {0.50, 0.35, 0.15}) const;

  /// Per-query inference latency when the answer is served at hierarchy
  /// level `level` (Figure 11): host overhead + the slowest leaf-to-server
  /// gather path (encode, per-hop transfer of the bipolar query, projection
  /// at each gateway) + the associative search. A single interactive query
  /// cannot amortize m-to-1 compression, so queries travel as packed bits.
  net::SimTime edgehd_query_latency(const net::Topology& topo,
                                    const net::Medium& medium,
                                    std::size_t level) const;

  /// Per-query latency of the centralized deployment on `platform`: host
  /// overhead + slowest leaf's hop-by-hop raw-feature transfer + central
  /// encode + search.
  net::SimTime centralized_query_latency(const net::Topology& topo,
                                         const net::Medium& medium,
                                         const net::Platform& platform,
                                         std::uint64_t macs_per_query) const;

  // ---- operation counts (exposed for tests and the microbench) ----------

  std::uint64_t dnn_train_macs() const;
  std::uint64_t dnn_infer_macs_per_query() const;
  std::uint64_t hd_central_train_macs(bool sparse_encoder) const;
  std::uint64_t hd_central_infer_macs_per_query(bool sparse_encoder) const;

  /// Batches per class partition: sum over classes of ceil(train_c / B).
  std::uint64_t num_batches() const;

 private:
  PhaseCosts centralized_train(const net::Topology& topo,
                               const net::Medium& medium,
                               const net::Platform& platform,
                               std::uint64_t compute_macs) const;
  PhaseCosts centralized_infer(const net::Topology& topo,
                               const net::Medium& medium,
                               const net::Platform& platform,
                               std::uint64_t macs_per_query) const;
  PhaseCosts edgehd_train(const net::Topology& topo,
                          const net::Medium& medium) const;

  /// Per-node dims for a topology (same allocation the engine uses).
  std::vector<std::size_t> node_dims(const net::Topology& topo) const;

  std::uint64_t compressed_query_bytes(std::size_t dim) const;

  WorkloadShape shape_;
  SystemConfig config_;
};

}  // namespace edgehd::core
