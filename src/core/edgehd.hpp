// EdgeHD: hierarchy-aware distributed HD learning (paper Sections IV–V).
//
// An EdgeHdSystem owns one deployment: a dataset whose features are
// partitioned over the leaves of a topology, a hypervector dimensionality
// allocation (d_i = D * n_i / n), per-leaf non-linear encoders, per-internal-
// node hierarchical aggregators, and a class-hypervector classifier at every
// node from `classify_min_level` up. It implements the paper's four
// protocols:
//
//   * initial training   — leaves bundle local class hypervectors; parents
//                          aggregate the *models* (not the data) with the
//                          hierarchical encoder (Section IV-B);
//   * batch retraining   — per-class batch hypervectors of size B travel up
//                          and drive perceptron updates at every level
//                          (Section IV-B);
//   * routed inference   — a query is answered at the lowest node whose
//                          softmax confidence clears the threshold,
//                          escalating level by level otherwise; query
//                          hypervectors ship compressed m-to-1 (IV-C);
//   * online updating    — negative feedback accumulates in residual
//                          hypervectors that are applied locally and
//                          propagated up the hierarchy in bulk (IV-D).
//
// Every protocol reports the bytes it placed on the network, which is the
// quantity the paper's evaluation normalizes against.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "hdc/classifier.hpp"
#include "hdc/encoder.hpp"
#include "hier/dim_allocation.hpp"
#include "hier/hier_encoder.hpp"
#include "net/detector.hpp"
#include "net/fault.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "proto/bus.hpp"
#include "proto/node_runtime.hpp"
#include "proto/routing.hpp"
#include "proto/sessions.hpp"
#include "proto/types.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/engine.hpp"

namespace edgehd::core {

/// How routed inference behaves when the hierarchy is partially down
/// (see DESIGN.md §6). Escalation always stops at the deepest *reachable*
/// classifier; these knobs govern the edge cases around that rule.
struct FailoverPolicy {
  /// A query that wants to escalate past a dead ancestor is served at the
  /// deepest reachable classifier with `degraded = true`. When false, such
  /// queries are reported unserved (RoutedResult::node == net::kNoNode)
  /// instead — the fail-fast mode for callers that prefer an explicit error
  /// over a low-confidence answer.
  bool serve_degraded = true;
  /// Retry cap assumed by the retry-byte accounting on lossy links: a hop
  /// with loss p is charged the expected (1-p^(R+1))/(1-p) transmissions
  /// per packet (matches net::ReliableConfig::max_retries).
  std::size_t max_retries = 5;
};

/// Deployment-wide configuration (defaults are the paper's Section VI-A
/// operating point).
struct SystemConfig {
  std::size_t total_dim = 4000;        ///< D at the central node
  std::size_t min_node_dim = 32;       ///< dimension floor for tiny slices
  std::size_t batch_size = 75;         ///< B, retraining batch size
  std::size_t compression = 25;        ///< m, query hypervectors per bundle
  double confidence_threshold = 0.75;  ///< routed-inference escalation bar
  std::size_t retrain_epochs = 20;
  std::uint64_t seed = 7;
  hier::AggregationMode aggregation = hier::AggregationMode::kHolographic;
  std::size_t projection_row_nnz = 64;
  hdc::EncoderKind leaf_encoder = hdc::EncoderKind::kRbfSparse;
  /// Leaf projection storage (DESIGN.md §14). kStored (default) keeps the
  /// legacy materialized rows and their historical RNG draws — the golden
  /// e2e byte pins depend on them. kDeterministic re-derives rows per chunk
  /// from counter-based streams (~zero resident projection state);
  /// kMaterialized stores the same counter-derived rows (bit-identical to
  /// kDeterministic, for memory/accuracy A/B).
  hdc::ProjectionMode projection_mode = hdc::ProjectionMode::kStored;
  /// Adaptive dimensionality: dimensions regenerated per round (0 = off —
  /// the default, keeping every legacy byte flow untouched). Requires a
  /// counter-derived projection_mode to be useful (kStored regenerates too,
  /// but keeps its full resident matrix).
  std::size_t regen_dims = 0;
  /// Regeneration rounds run by train() after retraining (each round is a
  /// score -> regenerate -> patch-propagate -> retrain cycle).
  std::size_t regen_rounds = 1;
  /// Lowest hierarchy level hosting classifiers (1 = end nodes classify; the
  /// PECAN deployment classifies from the house level, i.e. 2).
  std::size_t classify_min_level = 1;
  /// Softmax sharpening over cosine similarities; 64 calibrates mean
  /// confidence to per-level accuracy on the tested workloads.
  double softmax_beta = 64.0;
  /// Online learning rate: each negative feedback subtracts the query this
  /// many times from the rejected class. Section IV-D uses weight 1; 2 is a
  /// mild amplification that moves scaled-down models without the
  /// oscillation that aggressive subtract-only updates cause when feedback
  /// concentrates on one node.
  std::size_t feedback_weight = 2;
  /// Worker threads for batch encoding / inference. 0 resolves through
  /// runtime::ThreadPool::default_worker_count() (the EDGEHD_THREADS env
  /// override, else hardware concurrency). Every parallel path is
  /// bit-identical across worker counts, so this is purely a speed knob.
  std::size_t num_threads = 0;
  /// Degraded-operation policy for routed inference under faults.
  FailoverPolicy failover;
  /// Heartbeat failure detection (DESIGN.md §11). Off by default: faults are
  /// then judged by the oracle HealthMask exactly as before. When enabled,
  /// set_fault_plan builds a FailureDetector and every protocol decision
  /// (routing, sessions, serving) runs on its earned SuspicionView; the
  /// oracle survives only as world simulation (a dead origin cannot query).
  net::DetectorConfig detector;
  /// Reliable-transport retry policy for simulator-backed deployments of
  /// this system (net::Simulator::send_reliable). The retry-byte accounting
  /// in routed inference assumes failover.max_retries matches
  /// reliable.max_retries (both default to 5).
  net::ReliableConfig reliable;
  /// Collective model-exchange schedules for the training sessions
  /// (proto/collective.hpp). Disabled by default: the legacy point-to-point
  /// byte flows — including the golden e2e pins — stay untouched. Enable to
  /// let the CollectiveCostModel pick the schedule per phase, or set
  /// collective.force to pin one.
  proto::CollectiveConfig collective;
};

/// Bytes/messages a protocol phase placed on the network. Re-exported from
/// the protocol layer, which owns the canonical wire accounting (see
/// src/proto/types.hpp).
using CommStats = proto::CommStats;

/// Outcome of one routed inference (re-exported from the protocol layer;
/// see src/proto/types.hpp). `node == net::kNoNode` after the call means
/// the query could not be served at all.
using RoutedResult = proto::RoutedResult;

/// Scales the paper's batch size B to a scaled-down training-set size so the
/// batch-count-to-data ratio matches the paper-scale deployment:
/// B' = max(1, round(B * actual_train / paper_train)). Benches that shrink
/// Table-I workloads use this to keep the retraining protocol comparable.
std::size_t scaled_batch_size(std::size_t paper_batch, std::size_t paper_train,
                              std::size_t actual_train);

/// One EdgeHD deployment over a dataset and a topology.
///
/// Since the protocol extraction (DESIGN.md §9) this class is a thin
/// facade: it owns configuration, dataset plumbing, encoding memoization,
/// batch fan-out and stats aggregation, while the four protocols themselves
/// run as typed-envelope exchanges between per-node proto::NodeRuntime
/// state machines over a proto::LocalBus (src/proto). The observable
/// behaviour — accuracies, escalation counts, per-phase byte totals — is
/// bit-identical to the pre-extraction monolith.
class EdgeHdSystem {
 public:
  /// The topology's leaf count must equal ds.partitions.size(); leaf i (in
  /// leaves() order) observes feature slice i.
  EdgeHdSystem(const data::Dataset& ds, net::Topology topology,
               SystemConfig config = {});

  const net::Topology& topology() const noexcept { return topology_; }
  const SystemConfig& config() const noexcept { return config_; }
  /// Resolved worker count of the system's thread pool.
  std::size_t worker_count() const noexcept { return pool_->size(); }
  std::size_t node_dim(net::NodeId id) const;
  bool has_classifier(net::NodeId id) const;
  const hdc::HDClassifier& classifier_at(net::NodeId id) const;

  // ---- encoding ----------------------------------------------------------

  /// Encodes a full feature vector at every node of the hierarchy (leaf
  /// encoders at the leaves, hierarchical aggregation above). Indexed by
  /// NodeId.
  std::vector<hdc::BipolarHV> encode_all(std::span<const float> x) const;

  // ---- training ------------------------------------------------------------

  /// Initial training + batch retraining on the dataset's train split (or
  /// the index subset if given). Returns total protocol bytes.
  CommStats train(std::span<const std::size_t> train_indices = {});

  /// Phase 1 only: local class-hypervector bundling + model aggregation.
  CommStats train_initial(std::span<const std::size_t> train_indices = {});

  /// Phase 2 only: batch-hypervector retraining at every level.
  CommStats retrain_batches(std::span<const std::size_t> train_indices = {});

  /// Adaptive dimensionality (DESIGN.md §14): scores the deployed models,
  /// regenerates the k least discriminating encoder dimensions at the
  /// leaves, and propagates the per-class deltas up the hierarchy as
  /// k-column DimensionPatch envelopes (proto::run_dimension_regeneration).
  /// Memoized encodings are refreshed afterwards — the projection changed.
  /// Requires a prior training pass. train() drives this automatically when
  /// SystemConfig::regen_dims > 0.
  CommStats regenerate_dimensions(std::size_t k, std::uint32_t round = 1);

  /// Resident projection bytes summed over the leaf encoders (the memory
  /// the deterministic projection mode eliminates).
  std::size_t leaf_projection_bytes() const;

  // ---- evaluation ----------------------------------------------------------

  /// Accuracy of node `id`'s model on the test split (the node sees only its
  /// subtree's features, as deployed).
  double accuracy_at_node(net::NodeId id) const;

  /// Mean accuracy over all classifier nodes at `level` on the test split.
  double accuracy_at_level(std::size_t level) const;

  /// Mean softmax confidence of node `id` over the test split.
  double mean_confidence_at_node(net::NodeId id) const;

  /// Mean confidence over all classifier nodes at `level`.
  double mean_confidence_at_level(std::size_t level) const;

  // ---- routed inference -----------------------------------------------------

  /// Classifies `x` starting at `start` and escalating to ancestors while
  /// the confidence is below the threshold (Section IV-C).
  RoutedResult infer_routed(std::span<const float> x, net::NodeId start) const;

  /// Batched routed inference: fans the queries over the system's thread
  /// pool. Each query runs the identical single-query protocol (same
  /// escalation walk, same per-node byte accounting), so the results —
  /// including every `bytes` field — are bit-identical to calling
  /// infer_routed in a loop, for any worker count. Output order is input
  /// order.
  std::vector<RoutedResult> infer_routed_batch(
      std::span<const std::vector<float>> xs, net::NodeId start) const;

  /// Amortized bytes to gather one query hypervector at node `id` from its
  /// subtree's leaves, with m-to-1 compression on every hop.
  std::uint64_t query_gather_bytes(net::NodeId id) const;

  // ---- query serving (src/serve, DESIGN.md §10) ----------------------------

  /// Builds a serving engine over this deployment: per-node bounded
  /// admission queues, dynamic micro-batching through the packed kernels,
  /// async escalation sessions. The query pool is the dataset's test split
  /// (`sample` indices passed to Engine::submit / drawn by a load generator
  /// index it). Classifier caches are warmed here so batch prediction is
  /// thread-safe. The engine borrows this system — keep the system alive and
  /// unmodified while the engine runs. Faults come from the engine's own
  /// FaultPlan (Engine::set_fault_plan), not from set_health: the serving
  /// plane re-snapshots health as virtual time advances.
  std::unique_ptr<serve::Engine> serve_start(
      const serve::ServeConfig& cfg) const;

  /// Convenience: serve one open-loop generated workload to completion.
  serve::ServeReport serve_run(const serve::ServeConfig& cfg,
                               const serve::LoadSpec& load) const;
  /// Open loop under a fault timeline.
  serve::ServeReport serve_run(const serve::ServeConfig& cfg,
                               const serve::LoadSpec& load,
                               const net::FaultPlan& plan) const;
  /// Closed loop (think-time clients).
  serve::ServeReport serve_run(const serve::ServeConfig& cfg,
                               const serve::ClosedLoopSpec& load) const;

  // ---- online learning ------------------------------------------------------

  /// Serves one online sample: routed inference from `start`, then negative
  /// feedback at the serving node if the prediction does not match `truth`
  /// (the user-rejection model of Section VI-C).
  RoutedResult online_serve(std::span<const float> x, std::size_t truth,
                            net::NodeId start);

  /// Applies all residual hypervectors locally and propagates them up the
  /// hierarchy (Figure 5b). Returns bytes spent on residual transfer.
  CommStats propagate_residuals();

  // ---- fault awareness (transport-level degradation) -----------------------

  /// Installs a connectivity snapshot. Protocols run after this call skip
  /// crashed nodes, aggregate only the child contributions whose path is up,
  /// and route inference over reachable nodes only. An all-healthy mask is
  /// zero-cost: every protocol takes its fault-free fast path and results
  /// are bit-identical to never having set a mask.
  void set_health(net::HealthMask mask);

  /// Convenience: snapshot `plan` at instant `at` and install it.
  void set_fault_plan(const net::FaultPlan& plan, net::SimTime at = 0);

  /// Restores full health (recovery). Pending straggler contributions stay
  /// recorded; call reintegrate_stragglers() to fold them in.
  void clear_health();

  const net::HealthMask& health() const noexcept { return health_; }

  /// True when the installed mask actually degrades something — or, in
  /// detector mode, when the detector currently suspects something.
  bool degraded_mode() const noexcept { return effective_degraded(); }

  // ---- failure detection & churn membership (DESIGN.md §11) ----------------

  /// The failure detector built by set_fault_plan when
  /// SystemConfig::detector.enabled; nullptr otherwise. Its SuspicionView is
  /// what every protocol consults in detector mode.
  const net::FailureDetector* detector() const noexcept {
    return detector_.get();
  }

  /// Advances the detector's virtual time (processing every heartbeat round
  /// up to `now`). No-op without a detector.
  void advance_detector(net::SimTime now);

  /// Churn membership: re-syncs `node` after it was declared dead and came
  /// back (proto::run_rejoin — NodeJoin announcements, StateSync rebuild
  /// from the children's checkpoints, hop-by-hop lift to the root). The
  /// incarnation defaults to the detector's believed generation of the node
  /// (callers without a detector pass it explicitly). Exact for the linear
  /// phases; perceptron retraining state is re-synced by the next retraining
  /// round. Requires a prior training pass.
  CommStats rejoin_node(net::NodeId node,
                        std::optional<std::uint64_t> incarnation = {});

  /// Posts a NodeLeave announcement from `node` to its parent. Bookkeeping
  /// only — detection of the actual departure stays with the detector.
  CommStats announce_leave(net::NodeId node, bool planned);

  /// Nodes whose training-time contribution could not reach their parent
  /// under the current mask (recorded by the latest train_initial /
  /// retrain_batches pass, deepest-first).
  const std::vector<net::NodeId>& stragglers() const noexcept {
    return stragglers_;
  }

  /// Re-integrates straggler contributions recorded by train_initial once
  /// their path to the root is back up: each pending class-hypervector set
  /// is shipped upward and folded into every ancestor's model through the
  /// ancestor's aggregator (exact by linearity of the hierarchical
  /// encoding). Returns the bytes spent. Contributions whose path is still
  /// down stay pending.
  CommStats reintegrate_stragglers();

  // ---- fault injection (Figure 12, payload-level) --------------------------

  /// Test accuracy at node `id` when a random fraction `loss` of each query
  /// hypervector's dimensions is zeroed in transit (independent per-dim
  /// erasures).
  double accuracy_at_node_with_loss(net::NodeId id, double loss,
                                    std::uint64_t seed) const;

  /// Test accuracy at node `id` under *bursty* loss: contiguous runs of
  /// `burst_len` dimensions are erased until ~`loss` of the vector is gone,
  /// modelling dropped packets that each carry a contiguous dimension range.
  /// Under concatenation aggregation a burst wipes out one child's features
  /// wholesale; the holographic projection spreads every child across all
  /// dimensions, which is exactly the Figure 12 robustness argument.
  double accuracy_at_node_with_burst_loss(net::NodeId id, double loss,
                                          std::size_t burst_len,
                                          std::uint64_t seed) const;

 private:
  /// Encodes the train split once (memoized) at every node.
  void ensure_train_encoded(std::span<const std::size_t> train_indices);
  void ensure_test_encoded() const;

  // ---- health helpers (true when no mask is installed) ---------------------
  bool node_up(net::NodeId id) const noexcept;
  bool link_up(net::NodeId child) const noexcept;
  /// Oracle mask degrades something, or the detector suspects something.
  bool effective_degraded() const noexcept;
  /// A child's contribution reaches its parent iff the child and its uplink
  /// are both up (the parent's own liveness is the caller's context).
  bool child_delivers(net::NodeId child) const noexcept;

  /// encode_all with unreachable child contributions zeroed (the transport
  /// analogue of the Figure-12 dimension erasure), under the installed mask.
  std::vector<hdc::BipolarHV> encode_all_masked(std::span<const float> x) const;
  /// Same, under an explicit mask (the serving plane re-snapshots health per
  /// virtual time, so it cannot use the installed member mask).
  std::vector<hdc::BipolarHV> encode_all_masked(
      std::span<const float> x, const net::HealthMask& mask) const;

  RoutedResult infer_routed_degraded(std::span<const float> x,
                                     net::NodeId start) const;

  std::vector<std::size_t> effective_indices(
      std::span<const std::size_t> train_indices) const;

  /// Bottom-up node order (leaves first).
  std::vector<net::NodeId> bottom_up_order() const;

  // ---- protocol-layer views of this deployment ------------------------------
  /// Mutable view for a training-side session (sessions.hpp) — hands the
  /// protocol layer the bus, the health snapshot and the cross-phase state.
  proto::SessionContext session_context();
  /// Read-only view + policy knobs for query walks (routing.hpp).
  proto::RoutingContext routing_context() const;
  /// The facade's memoized per-node training encodings, as sessions see
  /// them.
  proto::TrainData train_data() const;

  const data::Dataset& ds_;
  net::Topology topology_;
  SystemConfig config_;
  /// Per-node "core.routed.serves.node<id>" counters (escalation-rate
  /// numerators), interned once at construction so the hot routed path never
  /// builds a name.
  std::vector<obs::Counter> node_serves_;
  /// Pool for batch encode/inference fan-out; mutable because const
  /// evaluation paths (encoding memoization, batch inference) fan work over
  /// it without changing observable state.
  mutable std::unique_ptr<runtime::ThreadPool> pool_;
  hier::DimAllocation alloc_;
  /// One protocol state machine per hierarchy node, owning that node's
  /// encoder handles, classifier and protocol inboxes (src/proto).
  std::vector<proto::NodeRuntime> nodes_;
  /// Envelope delivery between the runtimes; every training-phase message
  /// round-trips the real wire codec in transit (LocalBus::Codec::kEncoded).
  std::unique_ptr<proto::LocalBus> bus_;
  std::vector<net::NodeId> leaves_;

  // Memoized encodings: encoded_train_[node][sample], encoded_test_ likewise.
  std::vector<std::vector<hdc::BipolarHV>> encoded_train_;
  std::vector<std::size_t> encoded_train_labels_;
  std::vector<std::size_t> encoded_train_source_;  ///< dataset row per sample
  /// Raw per-leaf feature slices of the memoized training pass (flat,
  /// sample-major); consumed by dimension regeneration, which re-encodes
  /// exactly the regenerated dimensions. Empty rows for internal nodes.
  std::vector<std::vector<float>> raw_train_;
  mutable std::vector<std::vector<hdc::BipolarHV>> encoded_test_;
  /// Pre-packed test queries (sign-mask pairs) per classifier node, built
  /// alongside encoded_test_ so repeated evaluation passes skip the per-call
  /// query pack and run straight on the popcount path.
  mutable std::vector<std::vector<hdc::kernels::PackedQuery>> packed_test_;

  // ---- degraded-operation state --------------------------------------------
  net::HealthMask health_;   ///< empty = all healthy
  bool degraded_ = false;    ///< mask installed and not all-healthy
  /// The installed fault plan (stable storage for the detector's lifetime).
  net::FaultPlan plan_;
  bool has_plan_ = false;
  /// Built by set_fault_plan in detector mode; probes ride the LocalBus as
  /// real HealthProbe envelopes (outside any session's charge scope, so the
  /// per-phase CommStats totals never see detection traffic).
  std::unique_ptr<net::FailureDetector> detector_;
  std::vector<net::NodeId> stragglers_;
  /// Per-node class-hypervector contributions computed during train_initial
  /// but not yet delivered upstream (indexed by node; empty = nothing
  /// pending).
  std::vector<std::vector<hdc::AccumHV>> pending_contrib_;
  /// Residual bundles held back by propagate_residuals while the uplink was
  /// down; shipped by the next propagate that finds the path up.
  std::vector<std::vector<hdc::AccumHV>> pending_residuals_;
};

}  // namespace edgehd::core
