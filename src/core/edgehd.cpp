#include "edgehd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hdc/random.hpp"
#include "hdc/wire.hpp"
#include "obs/trace.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/parallel.hpp"

namespace edgehd::core {

using hdc::AccumHV;
using hdc::BipolarHV;
using hdc::derive_seed;
using net::NodeId;

namespace {

/// Protocol-layer registry handles, interned once per process. Counter
/// increments are deterministic for a fixed (seed, plan, worker-count) run —
/// the sums are order-independent — so all of these are registered stable.
struct CoreObs {
  obs::Counter routed_queries;
  obs::Counter routed_escalations;
  obs::Counter routed_degraded;
  obs::Counter routed_unserved;
  obs::Counter routed_bytes;
  obs::Counter routed_retry_bytes;
  obs::Histogram confidence;
  obs::Counter train_initial_bytes, train_initial_messages;
  obs::Counter retrain_bytes, retrain_messages;
  obs::Counter residual_bytes, residual_messages;
  obs::Counter reintegrate_bytes, reintegrate_messages;

  static const CoreObs& get() {
    static const CoreObs o = [] {
      CoreObs c;
      if constexpr (obs::kEnabled) {
        auto& reg = obs::MetricsRegistry::global();
        c.routed_queries = reg.counter("core.routed.queries");
        c.routed_escalations = reg.counter("core.routed.escalations");
        c.routed_degraded = reg.counter("core.routed.served_degraded");
        c.routed_unserved = reg.counter("core.routed.unserved");
        c.routed_bytes = reg.counter("core.routed.bytes");
        c.routed_retry_bytes = reg.counter("core.routed.retry_bytes");
        // Confidence-threshold histogram: where served queries landed
        // relative to SystemConfig::confidence_threshold.
        std::vector<double> bounds;
        for (int b = 1; b < 20; ++b) bounds.push_back(0.05 * b);
        c.confidence = reg.histogram("core.routed.confidence", bounds);
        c.train_initial_bytes = reg.counter("core.train_initial.bytes");
        c.train_initial_messages = reg.counter("core.train_initial.messages");
        c.retrain_bytes = reg.counter("core.retrain.bytes");
        c.retrain_messages = reg.counter("core.retrain.messages");
        c.residual_bytes = reg.counter("core.residual.bytes");
        c.residual_messages = reg.counter("core.residual.messages");
        c.reintegrate_bytes = reg.counter("core.reintegrate.bytes");
        c.reintegrate_messages = reg.counter("core.reintegrate.messages");
      }
      return c;
    }();
    return o;
  }
};

void record_routed(const RoutedResult& result) {
  const CoreObs& o = CoreObs::get();
  o.routed_queries.inc();
  if (!result.served()) {
    o.routed_unserved.inc();
    return;
  }
  if (result.degraded) o.routed_degraded.inc();
  o.routed_bytes.inc(result.bytes);
  o.routed_retry_bytes.inc(result.retry_bytes);
  o.confidence.observe(result.confidence);
}

}  // namespace

std::size_t scaled_batch_size(std::size_t paper_batch, std::size_t paper_train,
                              std::size_t actual_train) {
  if (paper_train == 0) return std::max<std::size_t>(1, paper_batch);
  const double scaled = static_cast<double>(paper_batch) *
                        static_cast<double>(actual_train) /
                        static_cast<double>(paper_train);
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(scaled)));
}

EdgeHdSystem::EdgeHdSystem(const data::Dataset& ds, net::Topology topology,
                           SystemConfig config)
    : ds_(ds),
      topology_(std::move(topology)),
      config_(config),
      pool_(std::make_unique<runtime::ThreadPool>(config.num_threads)) {
  pending_contrib_.resize(topology_.num_nodes());
  pending_residuals_.resize(topology_.num_nodes());
  node_serves_.resize(topology_.num_nodes());
  if constexpr (obs::kEnabled) {
    auto& reg = obs::MetricsRegistry::global();
    for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
      node_serves_[id] =
          reg.counter("core.routed.serves.node" + std::to_string(id));
    }
  }
  leaves_ = topology_.leaves();
  if (leaves_.size() != ds_.partitions.size()) {
    throw std::invalid_argument(
        "EdgeHdSystem: topology leaf count must match dataset partitions");
  }
  if (config_.classify_min_level == 0 ||
      config_.classify_min_level > topology_.depth()) {
    throw std::invalid_argument(
        "EdgeHdSystem: classify_min_level outside the hierarchy depth");
  }

  std::vector<std::size_t> leaf_features(leaves_.size());
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    leaf_features[i] = ds_.partitions[i];
  }
  alloc_ = hier::allocate_dims(topology_, leaf_features, config_.total_dim,
                               config_.min_node_dim);

  nodes_.resize(topology_.num_nodes());
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    nodes_[leaves_[i]].partition = i;
  }

  // Leaves first so concatenation-mode internal dims can be summed upward.
  for (NodeId id : bottom_up_order()) {
    NodeState& st = nodes_[id];
    if (topology_.is_leaf(id)) {
      st.dim = alloc_.dims[id];
      st.leaf_encoder = hdc::make_encoder(
          config_.leaf_encoder, ds_.partitions[st.partition], st.dim,
          derive_seed(config_.seed, 1000 + id));
    } else {
      const auto& kids = topology_.children(id);
      std::vector<std::size_t> child_dims(kids.size());
      for (std::size_t c = 0; c < kids.size(); ++c) {
        child_dims[c] = nodes_[kids[c]].dim;
      }
      const std::size_t concat_dim = std::accumulate(
          child_dims.begin(), child_dims.end(), std::size_t{0});
      st.dim = config_.aggregation == hier::AggregationMode::kConcatenation
                   ? concat_dim
                   : alloc_.dims[id];
      st.aggregator = std::make_unique<hier::HierEncoder>(
          std::move(child_dims), st.dim, derive_seed(config_.seed, 2000 + id),
          config_.aggregation, config_.projection_row_nnz);
    }
    if (topology_.level(id) >= config_.classify_min_level) {
      hdc::ClassifierConfig cc;
      cc.retrain_epochs = config_.retrain_epochs;
      cc.softmax_beta = config_.softmax_beta;
      st.classifier = std::make_unique<hdc::HDClassifier>(ds_.num_classes,
                                                          st.dim, cc);
    }
  }
}

std::size_t EdgeHdSystem::node_dim(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("EdgeHdSystem: node id out of range");
  }
  return nodes_[id].dim;
}

bool EdgeHdSystem::has_classifier(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("EdgeHdSystem: node id out of range");
  }
  return nodes_[id].classifier != nullptr;
}

const hdc::HDClassifier& EdgeHdSystem::classifier_at(NodeId id) const {
  if (!has_classifier(id)) {
    throw std::invalid_argument("EdgeHdSystem: node hosts no classifier");
  }
  return *nodes_[id].classifier;
}

// ---- fault awareness -------------------------------------------------------

void EdgeHdSystem::set_health(net::HealthMask mask) {
  if (!mask.empty() && mask.size() != topology_.num_nodes()) {
    throw std::invalid_argument(
        "EdgeHdSystem: health mask size must match the topology");
  }
  health_ = std::move(mask);
  degraded_ = !health_.empty() && !health_.all_healthy();
}

void EdgeHdSystem::set_fault_plan(const net::FaultPlan& plan,
                                  net::SimTime at) {
  set_health(net::HealthMask::snapshot(plan, topology_.num_nodes(), at));
}

void EdgeHdSystem::clear_health() {
  health_ = {};
  degraded_ = false;
}

bool EdgeHdSystem::node_up(NodeId id) const noexcept {
  return !degraded_ || health_.node_up(id);
}

bool EdgeHdSystem::link_up(NodeId child) const noexcept {
  return !degraded_ || health_.link_up(child);
}

bool EdgeHdSystem::child_delivers(NodeId child) const noexcept {
  return node_up(child) && link_up(child);
}

bool EdgeHdSystem::subtree_degraded(NodeId id) const {
  if (!degraded_ || topology_.is_leaf(id)) return false;
  for (NodeId kid : topology_.children(id)) {
    if (!child_delivers(kid)) return true;
    if (subtree_degraded(kid)) return true;
  }
  return false;
}

std::vector<NodeId> EdgeHdSystem::bottom_up_order() const {
  std::vector<NodeId> order;
  order.reserve(topology_.num_nodes());
  for (std::size_t level = 1; level <= topology_.depth(); ++level) {
    for (NodeId id : topology_.nodes_at_level(level)) order.push_back(id);
  }
  return order;
}

std::vector<BipolarHV> EdgeHdSystem::encode_all(
    std::span<const float> x) const {
  if (x.size() != ds_.num_features) {
    throw std::invalid_argument("EdgeHdSystem: feature count mismatch");
  }
  std::vector<BipolarHV> hvs(topology_.num_nodes());
  for (NodeId id : bottom_up_order()) {
    const NodeState& st = nodes_[id];
    if (topology_.is_leaf(id)) {
      const std::size_t offset = ds_.partition_offset(st.partition);
      hvs[id] = st.leaf_encoder->encode(
          x.subspan(offset, ds_.partitions[st.partition]));
    } else {
      const auto& kids = topology_.children(id);
      std::vector<BipolarHV> child_hvs(kids.size());
      for (std::size_t c = 0; c < kids.size(); ++c) {
        child_hvs[c] = hvs[kids[c]];
      }
      hvs[id] = st.aggregator->aggregate(child_hvs);
    }
  }
  return hvs;
}

std::vector<BipolarHV> EdgeHdSystem::encode_all_masked(
    std::span<const float> x) const {
  if (x.size() != ds_.num_features) {
    throw std::invalid_argument("EdgeHdSystem: feature count mismatch");
  }
  // Like encode_all, but a child whose contribution cannot reach its parent
  // is replaced by silence (all-zero components — the same "no signal"
  // convention as the Figure-12 erasure model). Crashed nodes emit silence
  // themselves, so the degradation cascades exactly as a real partition
  // would.
  std::vector<BipolarHV> hvs(topology_.num_nodes());
  for (NodeId id : bottom_up_order()) {
    const NodeState& st = nodes_[id];
    if (!node_up(id)) {
      hvs[id] = BipolarHV(st.dim, 0);
      continue;
    }
    if (topology_.is_leaf(id)) {
      const std::size_t offset = ds_.partition_offset(st.partition);
      hvs[id] = st.leaf_encoder->encode(
          x.subspan(offset, ds_.partitions[st.partition]));
    } else {
      const auto& kids = topology_.children(id);
      std::vector<BipolarHV> child_hvs(kids.size());
      for (std::size_t c = 0; c < kids.size(); ++c) {
        child_hvs[c] = child_delivers(kids[c])
                           ? hvs[kids[c]]
                           : BipolarHV(nodes_[kids[c]].dim, 0);
      }
      hvs[id] = st.aggregator->aggregate(child_hvs);
    }
  }
  return hvs;
}

std::vector<std::size_t> EdgeHdSystem::effective_indices(
    std::span<const std::size_t> train_indices) const {
  if (!train_indices.empty()) {
    return {train_indices.begin(), train_indices.end()};
  }
  std::vector<std::size_t> all(ds_.train_size());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

void EdgeHdSystem::ensure_train_encoded(
    std::span<const std::size_t> train_indices) {
  const auto idx = effective_indices(train_indices);
  if (idx == encoded_train_source_) return;

  encoded_train_source_ = idx;
  encoded_train_labels_.resize(idx.size());
  encoded_train_.assign(topology_.num_nodes(), {});
  for (auto& per_node : encoded_train_) per_node.resize(idx.size());

  // Per-sample encode_all is independent work writing disjoint slots; the
  // fan-out changes nothing observable (each sample's encoding is the same
  // deterministic function of the model-free projection state).
  runtime::parallel_for(*pool_, idx.size(), [&](std::size_t s) {
    encoded_train_labels_[s] = ds_.train_y[idx[s]];
    auto hvs = encode_all(ds_.train_x[idx[s]]);
    for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
      encoded_train_[id][s] = std::move(hvs[id]);
    }
  });
}

void EdgeHdSystem::ensure_test_encoded() const {
  if (!encoded_test_.empty()) return;
  encoded_test_.assign(topology_.num_nodes(), {});
  packed_test_.assign(topology_.num_nodes(), {});
  for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
    encoded_test_[id].resize(ds_.test_size());
    if (has_classifier(id)) packed_test_[id].resize(ds_.test_size());
  }
  runtime::parallel_for(*pool_, ds_.test_size(), [&](std::size_t s) {
    auto hvs = encode_all(ds_.test_x[s]);
    for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
      // Classifier nodes additionally keep the query packed, so every later
      // evaluation pass feeds the popcount similarity path directly.
      if (has_classifier(id)) {
        packed_test_[id][s] = hdc::kernels::pack_query(hvs[id]);
      }
      encoded_test_[id][s] = std::move(hvs[id]);
    }
  });
}

CommStats EdgeHdSystem::train(std::span<const std::size_t> train_indices) {
  CommStats total = train_initial(train_indices);
  total += retrain_batches(train_indices);
  return total;
}

CommStats EdgeHdSystem::train_initial(
    std::span<const std::size_t> train_indices) {
  const obs::Span span("core.train_initial");
  ensure_train_encoded(train_indices);
  const std::size_t k = ds_.num_classes;
  CommStats comm;
  stragglers_.clear();

  // Per-node class accumulators ("partial models"), built bottom-up. Under a
  // health mask, crashed nodes compute nothing (their accumulators stay
  // empty) and a child whose path to its parent is down contributes zeros
  // there instead; the child's own contribution is parked in
  // pending_contrib_ for reintegrate_stragglers().
  std::vector<std::vector<AccumHV>> class_accums(topology_.num_nodes());
  for (NodeId id : bottom_up_order()) {
    if (!node_up(id)) continue;
    const NodeState& st = nodes_[id];
    auto& accums = class_accums[id];
    accums.assign(k, AccumHV(st.dim, 0));
    if (topology_.is_leaf(id)) {
      const auto& encoded = encoded_train_[id];
      for (std::size_t s = 0; s < encoded.size(); ++s) {
        hdc::bundle_into(accums[encoded_train_labels_[s]], encoded[s]);
      }
    } else {
      const auto& kids = topology_.children(id);
      std::vector<AccumHV> child_accums(kids.size());
      for (std::size_t c = 0; c < k; ++c) {
        for (std::size_t ci = 0; ci < kids.size(); ++ci) {
          child_accums[ci] = child_delivers(kids[ci])
                                 ? class_accums[kids[ci]][c]
                                 : AccumHV(nodes_[kids[ci]].dim, 0);
        }
        accums[c] = st.aggregator->aggregate_accum(child_accums);
      }
      // Children ship their k class hypervectors (models, not data).
      for (NodeId kid : kids) {
        if (!child_delivers(kid)) continue;
        for (std::size_t c = 0; c < k; ++c) {
          comm.bytes += hdc::wire_bytes_accum(class_accums[kid][c]);
          ++comm.messages;
        }
      }
    }
    if (st.classifier != nullptr) {
      for (std::size_t c = 0; c < k; ++c) {
        st.classifier->set_class_accumulator(c, accums[c]);
      }
    }
    // A node cut off from its parent keeps its contribution pending.
    if (degraded_ && id != topology_.root() &&
        (!link_up(id) || !node_up(topology_.parent(id)))) {
      pending_contrib_[id] = accums;
      stragglers_.push_back(id);
    }
  }
  CoreObs::get().train_initial_bytes.inc(comm.bytes);
  CoreObs::get().train_initial_messages.inc(comm.messages);
  return comm;
}

CommStats EdgeHdSystem::retrain_batches(
    std::span<const std::size_t> train_indices) {
  const obs::Span span("core.retrain");
  ensure_train_encoded(train_indices);
  const std::size_t k = ds_.num_classes;
  CommStats comm;

  // Per-class batches over the encoded-sample index space; the same sample
  // partition is used at every node so batch hypervectors line up across the
  // hierarchy (each physical observation is sensed by every leaf).
  std::vector<std::vector<std::vector<std::size_t>>> batches(k);
  {
    std::vector<std::vector<std::size_t>> by_class(k);
    for (std::size_t s = 0; s < encoded_train_labels_.size(); ++s) {
      by_class[encoded_train_labels_[s]].push_back(s);
    }
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t start = 0; start < by_class[c].size();
           start += config_.batch_size) {
        const std::size_t end =
            std::min(start + config_.batch_size, by_class[c].size());
        batches[c].emplace_back(by_class[c].begin() + start,
                                by_class[c].begin() + end);
      }
    }
  }

  // Bottom-up batch hypervectors; internal nodes aggregate children's. Under
  // a health mask, crashed nodes sit the round out entirely; a missing
  // child's batch slots are zeros (the parent retrains on what arrived) and
  // the cut-off child is recorded as a straggler — recovery re-syncs it via
  // a fresh retrain, since perceptron updates are not linear.
  auto note_straggler = [this](NodeId id) {
    if (std::find(stragglers_.begin(), stragglers_.end(), id) ==
        stragglers_.end()) {
      stragglers_.push_back(id);
    }
  };
  std::vector<std::vector<std::vector<AccumHV>>> node_batches(
      topology_.num_nodes());  // [node][class][batch]
  for (NodeId id : bottom_up_order()) {
    if (!node_up(id)) continue;
    const NodeState& st = nodes_[id];
    auto& nb = node_batches[id];
    nb.assign(k, {});
    if (topology_.is_leaf(id)) {
      const auto& encoded = encoded_train_[id];
      for (std::size_t c = 0; c < k; ++c) {
        for (const auto& batch : batches[c]) {
          AccumHV acc(st.dim, 0);
          for (std::size_t s : batch) hdc::bundle_into(acc, encoded[s]);
          nb[c].push_back(std::move(acc));
        }
      }
    } else {
      const auto& kids = topology_.children(id);
      std::vector<AccumHV> child_accums(kids.size());
      for (std::size_t c = 0; c < k; ++c) {
        for (std::size_t b = 0; b < batches[c].size(); ++b) {
          for (std::size_t ci = 0; ci < kids.size(); ++ci) {
            child_accums[ci] = child_delivers(kids[ci])
                                   ? node_batches[kids[ci]][c][b]
                                   : AccumHV(nodes_[kids[ci]].dim, 0);
          }
          nb[c].push_back(st.aggregator->aggregate_accum(child_accums));
        }
      }
      for (NodeId kid : kids) {
        if (!child_delivers(kid)) continue;
        for (std::size_t c = 0; c < k; ++c) {
          for (const auto& acc : node_batches[kid][c]) {
            comm.bytes += hdc::wire_bytes_accum(acc);
            ++comm.messages;
          }
        }
      }
    }
    if (degraded_ && id != topology_.root() &&
        (!link_up(id) || !node_up(topology_.parent(id)))) {
      note_straggler(id);
    }

    if (st.classifier == nullptr) continue;
    if (topology_.is_leaf(id)) {
      // End nodes retrain on their own per-sample encodings; batching only
      // matters for what crosses the network.
      st.classifier->retrain(encoded_train_[id], encoded_train_labels_);
    } else {
      std::vector<BipolarHV> hvs;
      std::vector<std::size_t> labels;
      for (std::size_t c = 0; c < k; ++c) {
        for (const auto& acc : nb[c]) {
          hvs.push_back(hdc::binarize(acc));
          labels.push_back(c);
        }
      }
      st.classifier->retrain(hvs, labels);
    }
  }
  CoreObs::get().retrain_bytes.inc(comm.bytes);
  CoreObs::get().retrain_messages.inc(comm.messages);
  return comm;
}

double EdgeHdSystem::accuracy_at_node(NodeId id) const {
  const auto& clf = classifier_at(id);
  ensure_test_encoded();
  return clf.accuracy(packed_test_[id], ds_.test_y, *pool_);
}

double EdgeHdSystem::accuracy_at_level(std::size_t level) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (NodeId id : topology_.nodes_at_level(level)) {
    if (!has_classifier(id)) continue;
    sum += accuracy_at_node(id);
    ++count;
  }
  if (count == 0) {
    throw std::invalid_argument("EdgeHdSystem: no classifiers at this level");
  }
  return sum / static_cast<double>(count);
}

double EdgeHdSystem::mean_confidence_at_node(NodeId id) const {
  const auto& clf = classifier_at(id);
  ensure_test_encoded();
  const auto preds = clf.predict_batch(packed_test_[id], *pool_);
  double sum = 0.0;
  for (const auto& pred : preds) sum += pred.confidence;
  return preds.empty() ? 0.0 : sum / static_cast<double>(preds.size());
}

double EdgeHdSystem::mean_confidence_at_level(std::size_t level) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (NodeId id : topology_.nodes_at_level(level)) {
    if (!has_classifier(id)) continue;
    sum += mean_confidence_at_node(id);
    ++count;
  }
  if (count == 0) {
    throw std::invalid_argument("EdgeHdSystem: no classifiers at this level");
  }
  return sum / static_cast<double>(count);
}

std::uint64_t EdgeHdSystem::compressed_query_bytes(std::size_t dim) const {
  const std::size_t m = std::max<std::size_t>(1, config_.compression);
  if (m == 1) return hdc::wire_bytes_bipolar(dim);
  // m bipolar queries superpose into one accumulator with |entry| <= m;
  // amortize the bundle's bytes over its members.
  const std::uint32_t bits =
      hdc::bits_for_magnitude(static_cast<std::int64_t>(m));
  const std::uint64_t bundle = hdc::wire_bytes_accum(dim, bits);
  return (bundle + m - 1) / m;
}

std::uint64_t EdgeHdSystem::query_gather_bytes(NodeId id) const {
  if (topology_.is_leaf(id)) return 0;
  std::uint64_t bytes = 0;
  for (NodeId kid : topology_.children(id)) {
    bytes += query_gather_bytes(kid) + compressed_query_bytes(nodes_[kid].dim);
  }
  return bytes;
}

RoutedResult EdgeHdSystem::infer_routed(std::span<const float> x,
                                        NodeId start) const {
  if (!has_classifier(start)) {
    throw std::invalid_argument("EdgeHdSystem: start node hosts no classifier");
  }
  if (degraded_) {
    RoutedResult result = infer_routed_degraded(x, start);
    record_routed(result);
    if (result.served()) node_serves_[result.node].inc();
    return result;
  }
  auto& tracer = obs::Tracer::global();
  const std::uint64_t span =
      tracer.begin("core.infer_routed", obs::kAutoTime, 0, start);
  const auto hvs = encode_all(x);
  tracer.instant("core.encode", obs::kAutoTime, span);
  NodeId current = start;
  RoutedResult result;
  while (true) {
    const auto pred = nodes_[current].classifier->predict(hvs[current]);
    result.label = pred.label;
    result.confidence = pred.confidence;
    result.node = current;
    result.level = topology_.level(current);
    tracer.instant("core.predict", obs::kAutoTime, span, current, pred.label);
    const bool confident = pred.confidence >= config_.confidence_threshold;
    if (confident || current == topology_.root()) break;
    // Escalate to the nearest ancestor that hosts a classifier.
    NodeId next = topology_.parent(current);
    while (next != topology_.root() && !has_classifier(next)) {
      next = topology_.parent(next);
    }
    if (!has_classifier(next)) break;
    CoreObs::get().routed_escalations.inc();
    tracer.instant("core.escalate", obs::kAutoTime, span, current, next);
    current = next;
  }
  result.bytes = query_gather_bytes(result.node);
  tracer.end(span);
  record_routed(result);
  node_serves_[result.node].inc();
  return result;
}

void EdgeHdSystem::gather_bytes_masked(NodeId id, std::uint64_t& bytes,
                                       std::uint64_t& retry_bytes) const {
  if (topology_.is_leaf(id)) return;
  for (NodeId kid : topology_.children(id)) {
    if (!child_delivers(kid)) continue;  // nothing crosses a dead hop
    gather_bytes_masked(kid, bytes, retry_bytes);
    const std::uint64_t b = compressed_query_bytes(nodes_[kid].dim);
    bytes += b;
    const double p = health_.link_loss(kid);
    if (p > 0.0) {
      // Reliable transport: the hop is charged the expected number of
      // transmissions per packet under its retry cap; everything beyond the
      // first copy is retry overhead.
      retry_bytes += static_cast<std::uint64_t>(std::llround(
          static_cast<double>(b) *
          (net::expected_attempts(p, config_.failover.max_retries) - 1.0)));
    }
  }
}

RoutedResult EdgeHdSystem::infer_routed_degraded(std::span<const float> x,
                                                 NodeId start) const {
  RoutedResult result;
  if (!node_up(start)) {
    // The query's origin is dead; nobody can even pose the question.
    result.degraded = true;
    return result;
  }
  const auto hvs = encode_all_masked(x);
  NodeId current = start;
  bool cut = false;  // escalation wanted to continue but faults blocked it
  while (true) {
    const auto pred = nodes_[current].classifier->predict(hvs[current]);
    result.label = pred.label;
    result.confidence = pred.confidence;
    result.node = current;
    result.level = topology_.level(current);
    const bool confident = pred.confidence >= config_.confidence_threshold;
    if (confident || current == topology_.root()) break;
    // Walk hop by hop toward the nearest reachable ancestor hosting a
    // classifier; a dead hop anywhere on the way strands the query here.
    NodeId next = current;
    bool blocked = false;
    do {
      if (!link_up(next)) {
        blocked = true;
        break;
      }
      next = topology_.parent(next);
      if (!node_up(next)) {
        blocked = true;
        break;
      }
    } while (next != topology_.root() && !has_classifier(next));
    if (blocked) {
      cut = true;
      break;
    }
    if (!has_classifier(next)) break;
    CoreObs::get().routed_escalations.inc();
    current = next;
  }
  if (cut && !config_.failover.serve_degraded) {
    RoutedResult unserved;
    unserved.degraded = true;
    return unserved;
  }
  result.degraded = cut || subtree_degraded(result.node);
  gather_bytes_masked(result.node, result.bytes, result.retry_bytes);
  return result;
}

std::vector<RoutedResult> EdgeHdSystem::infer_routed_batch(
    std::span<const std::vector<float>> xs, NodeId start) const {
  if (!has_classifier(start)) {
    throw std::invalid_argument("EdgeHdSystem: start node hosts no classifier");
  }
  // Per-query predicts inside the fan-out hit the classifiers' packed-plane
  // caches; warm them all up front — lazy rebuilds are not thread-safe.
  for (const NodeState& st : nodes_) {
    if (st.classifier != nullptr) st.classifier->warm_cache();
  }
  const runtime::BatchExecutor exec(*pool_);
  return exec.map(xs.size(), [&](std::size_t i) {
    // Counters aggregate deterministically from any thread; trace events
    // would interleave nondeterministically, so the fan-out emits none.
    const obs::TraceSuppress no_trace;
    return infer_routed(xs[i], start);
  });
}

RoutedResult EdgeHdSystem::online_serve(std::span<const float> x,
                                        std::size_t truth, NodeId start) {
  const RoutedResult result = infer_routed(x, start);
  if (result.served() && result.label != truth) {
    // The user rejects the answer; only the wrongly matched class is known.
    // Under a health mask the feedback targets the hypervector the serving
    // node actually saw (with unreachable contributions silenced).
    const auto hvs = degraded_ ? encode_all_masked(x) : encode_all(x);
    for (std::size_t w = 0; w < config_.feedback_weight; ++w) {
      nodes_[result.node].classifier->feedback_negative(result.label,
                                                        hvs[result.node]);
    }
  }
  return result;
}

CommStats EdgeHdSystem::propagate_residuals() {
  const std::size_t k = ds_.num_classes;
  CommStats comm;
  std::vector<std::vector<AccumHV>> outbox(topology_.num_nodes());

  auto is_zero = [](const std::vector<AccumHV>& accums) {
    for (const auto& a : accums) {
      for (std::int32_t v : a) {
        if (v != 0) return false;
      }
    }
    return true;
  };

  for (NodeId id : bottom_up_order()) {
    NodeState& st = nodes_[id];
    // A crashed node neither applies nor ships anything; its own residuals
    // stay queued inside its classifier until a later propagate finds it up.
    if (!node_up(id)) {
      outbox[id].assign(k, AccumHV(st.dim, 0));
      continue;
    }
    std::vector<AccumHV> total(k, AccumHV(st.dim, 0));

    if (!topology_.is_leaf(id)) {
      const auto& kids = topology_.children(id);
      std::vector<AccumHV> child_res(kids.size());
      bool any_child = false;
      for (NodeId kid : kids) {
        if (child_delivers(kid) && !is_zero(outbox[kid])) {
          any_child = true;
          for (std::size_t c = 0; c < k; ++c) {
            comm.bytes += hdc::wire_bytes_accum(outbox[kid][c]);
            ++comm.messages;
          }
        }
      }
      if (any_child) {
        for (std::size_t c = 0; c < k; ++c) {
          for (std::size_t ci = 0; ci < kids.size(); ++ci) {
            child_res[ci] = child_delivers(kids[ci])
                                ? outbox[kids[ci]][c]
                                : AccumHV(nodes_[kids[ci]].dim, 0);
          }
          total[c] = st.aggregator->aggregate_accum(child_res);
        }
      }
    }

    if (st.classifier != nullptr) {
      auto own = st.classifier->take_residuals();
      for (std::size_t c = 0; c < k; ++c) {
        hdc::accumulate(total[c], own[c]);
      }
      // Figure 5b step (2): update this node's model with everything known
      // here — its own residuals plus the children's, re-encoded.
      if (!is_zero(total)) {
        st.classifier->apply_external_residuals(total);
      }
    }

    // What ships upward: this round's bundle plus anything held back by an
    // earlier round whose uplink was down.
    std::vector<AccumHV> ship = std::move(total);
    if (!pending_residuals_[id].empty()) {
      for (std::size_t c = 0; c < k; ++c) {
        hdc::accumulate(ship[c], pending_residuals_[id][c]);
      }
      pending_residuals_[id].clear();
    }
    if (degraded_ && id != topology_.root() &&
        (!link_up(id) || !node_up(topology_.parent(id)))) {
      if (!is_zero(ship)) pending_residuals_[id] = std::move(ship);
      outbox[id].assign(k, AccumHV(st.dim, 0));
    } else {
      outbox[id] = std::move(ship);
    }
  }

  // Model changes invalidate nothing cached (encodings are model-free), so
  // no cache flush is needed.
  CoreObs::get().residual_bytes.inc(comm.bytes);
  CoreObs::get().residual_messages.inc(comm.messages);
  return comm;
}

CommStats EdgeHdSystem::reintegrate_stragglers() {
  const std::size_t k = ds_.num_classes;
  CommStats comm;
  for (NodeId id : bottom_up_order()) {
    if (pending_contrib_[id].empty()) continue;
    // Still cut off? The contribution stays pending for a later call.
    if (degraded_ &&
        !health_.reachable_up(topology_, id, topology_.root())) {
      continue;
    }
    std::vector<AccumHV> cur = std::move(pending_contrib_[id]);
    pending_contrib_[id].clear();
    NodeId child = id;
    while (child != topology_.root()) {
      const NodeId parent = topology_.parent(child);
      // Ship the delta one hop up (k class hypervectors, like training).
      for (std::size_t c = 0; c < k; ++c) {
        comm.bytes += hdc::wire_bytes_accum(cur[c]);
        ++comm.messages;
      }
      // Lift the delta through the parent's aggregator: zeros in every slot
      // but this child's. The hierarchical encoding is linear (up to its
      // integer rescale), so adding the lifted delta to the parent's class
      // accumulators is what aggregating the full contribution would have
      // produced.
      const NodeState& pst = nodes_[parent];
      const auto& kids = topology_.children(parent);
      std::vector<AccumHV> slots(kids.size());
      std::vector<AccumHV> delta(k);
      for (std::size_t c = 0; c < k; ++c) {
        for (std::size_t ci = 0; ci < kids.size(); ++ci) {
          slots[ci] = kids[ci] == child ? cur[c]
                                        : AccumHV(nodes_[kids[ci]].dim, 0);
        }
        delta[c] = pst.aggregator->aggregate_accum(slots);
      }
      if (pst.classifier != nullptr) {
        for (std::size_t c = 0; c < k; ++c) {
          AccumHV acc = pst.classifier->class_accumulator(c);
          hdc::accumulate(acc, delta[c]);
          pst.classifier->set_class_accumulator(c, std::move(acc));
        }
      }
      cur = std::move(delta);
      child = parent;
    }
    stragglers_.erase(std::remove(stragglers_.begin(), stragglers_.end(), id),
                      stragglers_.end());
  }
  CoreObs::get().reintegrate_bytes.inc(comm.bytes);
  CoreObs::get().reintegrate_messages.inc(comm.messages);
  return comm;
}

namespace {

/// Classifies every damaged test vector produced by `damage(hv)` and
/// returns the accuracy.
template <typename DamageFn>
double accuracy_under_damage(const hdc::HDClassifier& clf,
                             const std::vector<BipolarHV>& encoded,
                             const std::vector<std::size_t>& labels,
                             DamageFn damage) {
  std::size_t correct = 0;
  for (std::size_t s = 0; s < encoded.size(); ++s) {
    BipolarHV damaged = encoded[s];
    damage(damaged);
    const auto sims = clf.similarities(damaged);
    const auto best = static_cast<std::size_t>(
        std::max_element(sims.begin(), sims.end()) - sims.begin());
    if (best == labels[s]) ++correct;
  }
  return encoded.empty() ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(encoded.size());
}

}  // namespace

double EdgeHdSystem::accuracy_at_node_with_loss(NodeId id, double loss,
                                                std::uint64_t seed) const {
  if (loss < 0.0 || loss > 1.0) {
    throw std::invalid_argument("EdgeHdSystem: loss fraction out of range");
  }
  const auto& clf = classifier_at(id);
  ensure_test_encoded();
  hdc::Rng rng(derive_seed(seed, id));
  return accuracy_under_damage(
      clf, encoded_test_[id], ds_.test_y, [&](BipolarHV& hv) {
        for (auto& v : hv) {
          if (rng.bernoulli(loss)) v = 0;  // lost dim carries no signal
        }
      });
}

double EdgeHdSystem::accuracy_at_node_with_burst_loss(
    NodeId id, double loss, std::size_t burst_len, std::uint64_t seed) const {
  if (loss < 0.0 || loss > 1.0) {
    throw std::invalid_argument("EdgeHdSystem: loss fraction out of range");
  }
  if (burst_len == 0) {
    throw std::invalid_argument("EdgeHdSystem: burst length must be positive");
  }
  const auto& clf = classifier_at(id);
  ensure_test_encoded();
  hdc::Rng rng(derive_seed(seed, id ^ 0x9e37ULL));
  return accuracy_under_damage(
      clf, encoded_test_[id], ds_.test_y, [&](BipolarHV& hv) {
        const auto target = static_cast<std::size_t>(
            loss * static_cast<double>(hv.size()));
        std::size_t erased = 0;
        // Drop whole "packets": contiguous runs at random offsets. Bursts
        // may overlap, as retransmission-free links behave.
        while (erased + burst_len / 2 < target) {
          const std::size_t start = rng.index(hv.size());
          for (std::size_t k = 0; k < burst_len; ++k) {
            auto& v = hv[(start + k) % hv.size()];
            if (v != 0) {
              v = 0;
              ++erased;
            }
          }
        }
      });
}

}  // namespace edgehd::core
