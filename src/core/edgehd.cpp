#include "edgehd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hdc/random.hpp"
#include "hdc/wire.hpp"
#include "obs/trace.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/parallel.hpp"

namespace edgehd::core {

using hdc::AccumHV;
using hdc::BipolarHV;
using hdc::derive_seed;
using net::NodeId;

namespace {

/// Protocol-layer registry handles, interned once per process. Counter
/// increments are deterministic for a fixed (seed, plan, worker-count) run —
/// the sums are order-independent — so all of these are registered stable.
struct CoreObs {
  obs::Counter routed_queries;
  obs::Counter routed_escalations;
  obs::Counter routed_degraded;
  obs::Counter routed_unserved;
  obs::Counter routed_bytes;
  obs::Counter routed_retry_bytes;
  obs::Histogram confidence;
  obs::Counter train_initial_bytes, train_initial_messages;
  obs::Counter retrain_bytes, retrain_messages;
  obs::Counter residual_bytes, residual_messages;
  obs::Counter reintegrate_bytes, reintegrate_messages;
  obs::Counter rejoin_bytes, rejoin_messages;
  obs::Counter regen_bytes, regen_messages;

  static const CoreObs& get() {
    static const CoreObs o = [] {
      CoreObs c;
      if constexpr (obs::kEnabled) {
        auto& reg = obs::MetricsRegistry::global();
        c.routed_queries = reg.counter("core.routed.queries");
        c.routed_escalations = reg.counter("core.routed.escalations");
        c.routed_degraded = reg.counter("core.routed.served_degraded");
        c.routed_unserved = reg.counter("core.routed.unserved");
        c.routed_bytes = reg.counter("core.routed.bytes");
        c.routed_retry_bytes = reg.counter("core.routed.retry_bytes");
        // Confidence-threshold histogram: where served queries landed
        // relative to SystemConfig::confidence_threshold.
        std::vector<double> bounds;
        for (int b = 1; b < 20; ++b) bounds.push_back(0.05 * b);
        c.confidence = reg.histogram("core.routed.confidence", bounds);
        c.train_initial_bytes = reg.counter("core.train_initial.bytes");
        c.train_initial_messages = reg.counter("core.train_initial.messages");
        c.retrain_bytes = reg.counter("core.retrain.bytes");
        c.retrain_messages = reg.counter("core.retrain.messages");
        c.residual_bytes = reg.counter("core.residual.bytes");
        c.residual_messages = reg.counter("core.residual.messages");
        c.reintegrate_bytes = reg.counter("core.reintegrate.bytes");
        c.reintegrate_messages = reg.counter("core.reintegrate.messages");
        c.rejoin_bytes = reg.counter("core.rejoin.bytes");
        c.rejoin_messages = reg.counter("core.rejoin.messages");
        c.regen_bytes = reg.counter("core.regen.bytes");
        c.regen_messages = reg.counter("core.regen.messages");
      }
      return c;
    }();
    return o;
  }
};

void record_routed(const RoutedResult& result) {
  const CoreObs& o = CoreObs::get();
  o.routed_queries.inc();
  if (!result.served()) {
    o.routed_unserved.inc();
    return;
  }
  if (result.degraded) o.routed_degraded.inc();
  o.routed_bytes.inc(result.bytes);
  o.routed_retry_bytes.inc(result.retry_bytes);
  o.confidence.observe(result.confidence);
}

}  // namespace

std::size_t scaled_batch_size(std::size_t paper_batch, std::size_t paper_train,
                              std::size_t actual_train) {
  if (paper_train == 0) return std::max<std::size_t>(1, paper_batch);
  const double scaled = static_cast<double>(paper_batch) *
                        static_cast<double>(actual_train) /
                        static_cast<double>(paper_train);
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(scaled)));
}

EdgeHdSystem::EdgeHdSystem(const data::Dataset& ds, net::Topology topology,
                           SystemConfig config)
    : ds_(ds),
      topology_(std::move(topology)),
      config_(config),
      pool_(std::make_unique<runtime::ThreadPool>(config.num_threads)) {
  pending_contrib_.resize(topology_.num_nodes());
  pending_residuals_.resize(topology_.num_nodes());
  node_serves_.resize(topology_.num_nodes());
  if constexpr (obs::kEnabled) {
    auto& reg = obs::MetricsRegistry::global();
    for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
      node_serves_[id] =
          reg.counter("core.routed.serves.node" + std::to_string(id));
    }
  }
  leaves_ = topology_.leaves();
  if (leaves_.size() != ds_.partitions.size()) {
    throw std::invalid_argument(
        "EdgeHdSystem: topology leaf count must match dataset partitions");
  }
  if (config_.classify_min_level == 0 ||
      config_.classify_min_level > topology_.depth()) {
    throw std::invalid_argument(
        "EdgeHdSystem: classify_min_level outside the hierarchy depth");
  }

  std::vector<std::size_t> leaf_features(leaves_.size());
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    leaf_features[i] = ds_.partitions[i];
  }
  alloc_ = hier::allocate_dims(topology_, leaf_features, config_.total_dim,
                               config_.min_node_dim);

  nodes_.resize(topology_.num_nodes());
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    nodes_[leaves_[i]].set_partition(i);
  }

  // Leaves first so concatenation-mode internal dims can be summed upward.
  for (NodeId id : bottom_up_order()) {
    proto::NodeRuntime& rt = nodes_[id];
    if (topology_.is_leaf(id)) {
      const std::size_t dim = alloc_.dims[id];
      rt.init(id, topology_, dim, ds_.num_classes);
      rt.install_leaf_encoder(hdc::make_encoder(
          config_.leaf_encoder, ds_.partitions[rt.partition()], dim,
          derive_seed(config_.seed, 1000 + id), config_.projection_mode));
    } else {
      const auto& kids = topology_.children(id);
      std::vector<std::size_t> child_dims(kids.size());
      for (std::size_t c = 0; c < kids.size(); ++c) {
        child_dims[c] = nodes_[kids[c]].dim();
      }
      const std::size_t concat_dim = std::accumulate(
          child_dims.begin(), child_dims.end(), std::size_t{0});
      const std::size_t dim =
          config_.aggregation == hier::AggregationMode::kConcatenation
              ? concat_dim
              : alloc_.dims[id];
      rt.init(id, topology_, dim, ds_.num_classes);
      rt.install_aggregator(std::make_unique<hier::HierEncoder>(
          std::move(child_dims), dim, derive_seed(config_.seed, 2000 + id),
          config_.aggregation, config_.projection_row_nnz));
    }
    if (topology_.level(id) >= config_.classify_min_level) {
      hdc::ClassifierConfig cc;
      cc.retrain_epochs = config_.retrain_epochs;
      cc.softmax_beta = config_.softmax_beta;
      rt.install_classifier(std::make_unique<hdc::HDClassifier>(
          ds_.num_classes, rt.dim(), cc));
    }
  }

  // Wire the delivery fabric: each runtime consumes the envelopes addressed
  // to it. nodes_ is sized for good above, so the captured pointers are
  // stable.
  bus_ = std::make_unique<proto::LocalBus>(topology_.num_nodes());
  for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
    proto::NodeRuntime* rt = &nodes_[id];
    bus_->subscribe(
        id, [rt](const proto::Envelope& env) { rt->on_envelope(env); });
  }
}

proto::SessionContext EdgeHdSystem::session_context() {
  proto::SessionContext ctx;
  ctx.topology = &topology_;
  ctx.nodes = nodes_;
  ctx.bus = bus_.get();
  ctx.health = &health_;
  ctx.suspicion = detector_ ? &detector_->view() : nullptr;
  ctx.degraded = effective_degraded();
  ctx.num_classes = ds_.num_classes;
  ctx.batch_size = config_.batch_size;
  ctx.pending_contrib = &pending_contrib_;
  ctx.pending_residuals = &pending_residuals_;
  ctx.stragglers = &stragglers_;
  ctx.collective = &config_.collective;
  return ctx;
}

proto::RoutingContext EdgeHdSystem::routing_context() const {
  proto::RoutingContext ctx;
  ctx.topology = &topology_;
  ctx.nodes = nodes_;
  ctx.health = &health_;
  ctx.suspicion = detector_ ? &detector_->view() : nullptr;
  ctx.degraded = effective_degraded();
  ctx.confidence_threshold = config_.confidence_threshold;
  ctx.compression = config_.compression;
  ctx.serve_degraded = config_.failover.serve_degraded;
  ctx.max_retries = config_.failover.max_retries;
  ctx.escalations = &CoreObs::get().routed_escalations;
  return ctx;
}

proto::TrainData EdgeHdSystem::train_data() const {
  proto::TrainData data;
  data.encoded = &encoded_train_;
  data.labels = encoded_train_labels_;
  data.raw = &raw_train_;
  return data;
}

std::size_t EdgeHdSystem::node_dim(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("EdgeHdSystem: node id out of range");
  }
  return nodes_[id].dim();
}

bool EdgeHdSystem::has_classifier(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("EdgeHdSystem: node id out of range");
  }
  return nodes_[id].has_classifier();
}

const hdc::HDClassifier& EdgeHdSystem::classifier_at(NodeId id) const {
  if (!has_classifier(id)) {
    throw std::invalid_argument("EdgeHdSystem: node hosts no classifier");
  }
  return nodes_[id].classifier();
}

// ---- fault awareness -------------------------------------------------------

void EdgeHdSystem::set_health(net::HealthMask mask) {
  if (!mask.empty() && mask.size() != topology_.num_nodes()) {
    throw std::invalid_argument(
        "EdgeHdSystem: health mask size must match the topology");
  }
  health_ = std::move(mask);
  degraded_ = !health_.empty() && !health_.all_healthy();
}

void EdgeHdSystem::set_fault_plan(const net::FaultPlan& plan,
                                  net::SimTime at) {
  set_health(net::HealthMask::snapshot(plan, topology_.num_nodes(), at));
  plan_ = plan;
  has_plan_ = true;
  if (config_.detector.enabled) {
    net::DetectorConfig dcfg = config_.detector;
    // Account each probe at its true wire size (the extended HealthProbe:
    // nonce, sent_at, incarnation, suspicion gossip).
    dcfg.probe_bytes = proto::wire_size(proto::HealthProbe{});
    detector_ = std::make_unique<net::FailureDetector>(topology_, plan_, dcfg);
    // Every delivered probe rides the LocalBus as a real HealthProbe
    // envelope. No session charge scope is attached here, so detection
    // traffic never touches the per-phase CommStats — it is accounted in
    // net.detector.* (and the proto.health_probe.* type counters).
    detector_->set_probe_sink([this](
        const net::FailureDetector::ProbeDelivery& d) {
      bus_->post(proto::Envelope{
          proto::kProtoVersion, d.from, d.to,
          proto::HealthProbe{d.nonce, static_cast<std::uint64_t>(d.at),
                             d.incarnation, d.suspects}});
    });
    // Analytic (non-event-driven) callers consult the detector right after
    // installing the plan, so give it a detection horizon: beliefs converge
    // to the plan's state at `at` before the first protocol runs.
    detector_->advance(at + dcfg.warmup);
  }
}

void EdgeHdSystem::clear_health() {
  health_ = {};
  degraded_ = false;
  detector_.reset();
  has_plan_ = false;
}

bool EdgeHdSystem::node_up(NodeId id) const noexcept {
  return !degraded_ || health_.node_up(id);
}

bool EdgeHdSystem::link_up(NodeId child) const noexcept {
  return !degraded_ || health_.link_up(child);
}

bool EdgeHdSystem::child_delivers(NodeId child) const noexcept {
  return node_up(child) && link_up(child);
}

bool EdgeHdSystem::effective_degraded() const noexcept {
  return degraded_ || (detector_ && !detector_->view().all_healthy());
}

void EdgeHdSystem::advance_detector(net::SimTime now) {
  if (detector_) detector_->advance(now);
}

CommStats EdgeHdSystem::rejoin_node(NodeId node,
                                    std::optional<std::uint64_t> incarnation) {
  if (encoded_train_.empty()) {
    throw std::logic_error("EdgeHdSystem: rejoin_node before any training");
  }
  std::uint64_t inc;
  if (incarnation.has_value()) {
    inc = *incarnation;
  } else if (detector_) {
    inc = detector_->view().incarnation(node);
  } else {
    throw std::invalid_argument(
        "EdgeHdSystem: rejoin_node needs an explicit incarnation without a "
        "detector");
  }
  const CommStats comm =
      proto::run_rejoin(session_context(), train_data(), node, inc);
  CoreObs::get().rejoin_bytes.inc(comm.bytes);
  CoreObs::get().rejoin_messages.inc(comm.messages);
  return comm;
}

CommStats EdgeHdSystem::announce_leave(NodeId node, bool planned) {
  const std::uint64_t inc =
      detector_ ? detector_->view().incarnation(node) : 0;
  return proto::announce_leave(session_context(), node, inc, planned);
}

std::vector<NodeId> EdgeHdSystem::bottom_up_order() const {
  std::vector<NodeId> order;
  order.reserve(topology_.num_nodes());
  for (std::size_t level = 1; level <= topology_.depth(); ++level) {
    for (NodeId id : topology_.nodes_at_level(level)) order.push_back(id);
  }
  return order;
}

std::vector<BipolarHV> EdgeHdSystem::encode_all(
    std::span<const float> x) const {
  if (x.size() != ds_.num_features) {
    throw std::invalid_argument("EdgeHdSystem: feature count mismatch");
  }
  std::vector<BipolarHV> hvs(topology_.num_nodes());
  for (NodeId id : bottom_up_order()) {
    const proto::NodeRuntime& rt = nodes_[id];
    if (topology_.is_leaf(id)) {
      const std::size_t offset = ds_.partition_offset(rt.partition());
      hvs[id] = rt.leaf_encoder().encode(
          x.subspan(offset, ds_.partitions[rt.partition()]));
    } else {
      const auto& kids = topology_.children(id);
      std::vector<BipolarHV> child_hvs(kids.size());
      for (std::size_t c = 0; c < kids.size(); ++c) {
        child_hvs[c] = hvs[kids[c]];
      }
      hvs[id] = rt.aggregator().aggregate(child_hvs);
    }
  }
  return hvs;
}

std::vector<BipolarHV> EdgeHdSystem::encode_all_masked(
    std::span<const float> x) const {
  return encode_all_masked(x, health_);
}

std::vector<BipolarHV> EdgeHdSystem::encode_all_masked(
    std::span<const float> x, const net::HealthMask& mask) const {
  if (x.size() != ds_.num_features) {
    throw std::invalid_argument("EdgeHdSystem: feature count mismatch");
  }
  const auto up = [&mask](NodeId id) {
    return mask.empty() || mask.node_up(id);
  };
  const auto delivers = [&mask, &up](NodeId child) {
    return up(child) && (mask.empty() || mask.link_up(child));
  };
  // Like encode_all, but a child whose contribution cannot reach its parent
  // is replaced by silence (all-zero components — the same "no signal"
  // convention as the Figure-12 erasure model). Crashed nodes emit silence
  // themselves, so the degradation cascades exactly as a real partition
  // would.
  std::vector<BipolarHV> hvs(topology_.num_nodes());
  for (NodeId id : bottom_up_order()) {
    const proto::NodeRuntime& rt = nodes_[id];
    if (!up(id)) {
      hvs[id] = BipolarHV(rt.dim(), 0);
      continue;
    }
    if (topology_.is_leaf(id)) {
      const std::size_t offset = ds_.partition_offset(rt.partition());
      hvs[id] = rt.leaf_encoder().encode(
          x.subspan(offset, ds_.partitions[rt.partition()]));
    } else {
      const auto& kids = topology_.children(id);
      std::vector<BipolarHV> child_hvs(kids.size());
      for (std::size_t c = 0; c < kids.size(); ++c) {
        child_hvs[c] = delivers(kids[c])
                           ? hvs[kids[c]]
                           : BipolarHV(nodes_[kids[c]].dim(), 0);
      }
      hvs[id] = rt.aggregator().aggregate(child_hvs);
    }
  }
  return hvs;
}

std::vector<std::size_t> EdgeHdSystem::effective_indices(
    std::span<const std::size_t> train_indices) const {
  if (!train_indices.empty()) {
    return {train_indices.begin(), train_indices.end()};
  }
  std::vector<std::size_t> all(ds_.train_size());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

void EdgeHdSystem::ensure_train_encoded(
    std::span<const std::size_t> train_indices) {
  const auto idx = effective_indices(train_indices);
  if (idx == encoded_train_source_) return;

  encoded_train_source_ = idx;
  encoded_train_labels_.resize(idx.size());
  encoded_train_.assign(topology_.num_nodes(), {});
  for (auto& per_node : encoded_train_) per_node.resize(idx.size());
  raw_train_.assign(topology_.num_nodes(), {});
  for (NodeId leaf : leaves_) {
    raw_train_[leaf].resize(idx.size() *
                            ds_.partitions[nodes_[leaf].partition()]);
  }

  // Per-sample encode_all is independent work writing disjoint slots; the
  // fan-out changes nothing observable (each sample's encoding is the same
  // deterministic function of the model-free projection state).
  runtime::parallel_for(*pool_, idx.size(), [&](std::size_t s) {
    encoded_train_labels_[s] = ds_.train_y[idx[s]];
    const auto& x = ds_.train_x[idx[s]];
    auto hvs = encode_all(x);
    for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
      encoded_train_[id][s] = std::move(hvs[id]);
    }
    for (NodeId leaf : leaves_) {
      const std::size_t p = nodes_[leaf].partition();
      const std::size_t len = ds_.partitions[p];
      std::copy_n(x.begin() +
                      static_cast<std::ptrdiff_t>(ds_.partition_offset(p)),
                  len, raw_train_[leaf].begin() +
                           static_cast<std::ptrdiff_t>(s * len));
    }
  });
}

void EdgeHdSystem::ensure_test_encoded() const {
  if (!encoded_test_.empty()) return;
  encoded_test_.assign(topology_.num_nodes(), {});
  packed_test_.assign(topology_.num_nodes(), {});
  for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
    encoded_test_[id].resize(ds_.test_size());
    if (has_classifier(id)) packed_test_[id].resize(ds_.test_size());
  }
  runtime::parallel_for(*pool_, ds_.test_size(), [&](std::size_t s) {
    auto hvs = encode_all(ds_.test_x[s]);
    for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
      // Classifier nodes additionally keep the query packed, so every later
      // evaluation pass feeds the popcount similarity path directly.
      if (has_classifier(id)) {
        packed_test_[id][s] = hdc::kernels::pack_query(hvs[id]);
      }
      encoded_test_[id][s] = std::move(hvs[id]);
    }
  });
}

// ---- training: thin wrappers over the protocol sessions --------------------

CommStats EdgeHdSystem::train(std::span<const std::size_t> train_indices) {
  CommStats total = train_initial(train_indices);
  total += retrain_batches(train_indices);
  if (config_.regen_dims > 0) {
    for (std::size_t r = 0; r < config_.regen_rounds; ++r) {
      total += regenerate_dimensions(config_.regen_dims,
                                     static_cast<std::uint32_t>(r + 1));
      total += retrain_batches(train_indices);
    }
  }
  return total;
}

CommStats EdgeHdSystem::train_initial(
    std::span<const std::size_t> train_indices) {
  const obs::Span span("core.train_initial");
  ensure_train_encoded(train_indices);
  const CommStats comm =
      proto::run_initial_training(session_context(), train_data());
  CoreObs::get().train_initial_bytes.inc(comm.bytes);
  CoreObs::get().train_initial_messages.inc(comm.messages);
  return comm;
}

CommStats EdgeHdSystem::retrain_batches(
    std::span<const std::size_t> train_indices) {
  const obs::Span span("core.retrain");
  ensure_train_encoded(train_indices);
  const CommStats comm =
      proto::run_batch_retraining(session_context(), train_data());
  CoreObs::get().retrain_bytes.inc(comm.bytes);
  CoreObs::get().retrain_messages.inc(comm.messages);
  return comm;
}

CommStats EdgeHdSystem::regenerate_dimensions(std::size_t k,
                                              std::uint32_t round) {
  if (encoded_train_.empty()) {
    throw std::logic_error(
        "EdgeHdSystem: regenerate_dimensions before any training");
  }
  const obs::Span span("core.regen");
  const CommStats comm = proto::run_dimension_regeneration(
      session_context(), train_data(), k, round);
  CoreObs::get().regen_bytes.inc(comm.bytes);
  CoreObs::get().regen_messages.inc(comm.messages);

  // The leaf projections changed, so every memoized encoding is stale:
  // re-encode the training pass (same sample set) and drop the test cache.
  const std::vector<std::size_t> idx = std::move(encoded_train_source_);
  encoded_train_source_.clear();
  ensure_train_encoded(idx);
  encoded_test_.clear();
  packed_test_.clear();
  return comm;
}

std::size_t EdgeHdSystem::leaf_projection_bytes() const {
  std::size_t total = 0;
  for (NodeId leaf : leaves_) {
    total += nodes_[leaf].leaf_encoder().projection_resident_bytes();
  }
  return total;
}

double EdgeHdSystem::accuracy_at_node(NodeId id) const {
  const auto& clf = classifier_at(id);
  ensure_test_encoded();
  return clf.accuracy(packed_test_[id], ds_.test_y, *pool_);
}

double EdgeHdSystem::accuracy_at_level(std::size_t level) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (NodeId id : topology_.nodes_at_level(level)) {
    if (!has_classifier(id)) continue;
    sum += accuracy_at_node(id);
    ++count;
  }
  if (count == 0) {
    throw std::invalid_argument("EdgeHdSystem: no classifiers at this level");
  }
  return sum / static_cast<double>(count);
}

double EdgeHdSystem::mean_confidence_at_node(NodeId id) const {
  const auto& clf = classifier_at(id);
  ensure_test_encoded();
  const auto preds = clf.predict_batch(packed_test_[id], *pool_);
  double sum = 0.0;
  for (const auto& pred : preds) sum += pred.confidence;
  return preds.empty() ? 0.0 : sum / static_cast<double>(preds.size());
}

double EdgeHdSystem::mean_confidence_at_level(std::size_t level) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (NodeId id : topology_.nodes_at_level(level)) {
    if (!has_classifier(id)) continue;
    sum += mean_confidence_at_node(id);
    ++count;
  }
  if (count == 0) {
    throw std::invalid_argument("EdgeHdSystem: no classifiers at this level");
  }
  return sum / static_cast<double>(count);
}

// ---- routed inference ------------------------------------------------------

std::uint64_t EdgeHdSystem::query_gather_bytes(NodeId id) const {
  return proto::query_gather_bytes(routing_context(), id);
}

RoutedResult EdgeHdSystem::infer_routed(std::span<const float> x,
                                        NodeId start) const {
  if (!has_classifier(start)) {
    throw std::invalid_argument("EdgeHdSystem: start node hosts no classifier");
  }
  if (effective_degraded()) {
    RoutedResult result = infer_routed_degraded(x, start);
    record_routed(result);
    if (result.served()) node_serves_[result.node].inc();
    return result;
  }
  auto& tracer = obs::Tracer::global();
  const std::uint64_t span =
      tracer.begin("core.infer_routed", obs::kAutoTime, 0, start);
  const auto hvs = encode_all(x);
  tracer.instant("core.encode", obs::kAutoTime, span);
  const RoutedResult result =
      proto::route_query(routing_context(), hvs, start, /*query_id=*/0, span);
  tracer.end(span);
  record_routed(result);
  node_serves_[result.node].inc();
  return result;
}

RoutedResult EdgeHdSystem::infer_routed_degraded(std::span<const float> x,
                                                 NodeId start) const {
  if (!node_up(start)) {
    // The query's origin is dead; nobody can even pose the question (and
    // there is nothing worth encoding).
    RoutedResult result;
    result.degraded = true;
    return result;
  }
  const auto hvs = encode_all_masked(x);
  return proto::route_query_degraded(routing_context(), hvs, start,
                                     /*query_id=*/0);
}

std::vector<RoutedResult> EdgeHdSystem::infer_routed_batch(
    std::span<const std::vector<float>> xs, NodeId start) const {
  if (!has_classifier(start)) {
    throw std::invalid_argument("EdgeHdSystem: start node hosts no classifier");
  }
  // Per-query predicts inside the fan-out hit the classifiers' packed-plane
  // caches; warm them all up front — lazy rebuilds are not thread-safe.
  for (const proto::NodeRuntime& rt : nodes_) {
    if (rt.has_classifier()) rt.classifier().warm_cache();
  }
  const runtime::BatchExecutor exec(*pool_);
  return exec.map(xs.size(), [&](std::size_t i) {
    // Counters aggregate deterministically from any thread; trace events
    // would interleave nondeterministically, so the fan-out emits none.
    const obs::TraceSuppress no_trace;
    return infer_routed(xs[i], start);
  });
}

// ---- query serving (src/serve) ---------------------------------------------

std::unique_ptr<serve::Engine> EdgeHdSystem::serve_start(
    const serve::ServeConfig& cfg) const {
  // Batched prediction inside the engine's service loop hits the packed
  // classifier caches from pool threads; warm them all up front.
  for (const proto::NodeRuntime& rt : nodes_) {
    if (rt.has_classifier()) rt.classifier().warm_cache();
  }
  serve::Bindings b;
  b.ctx = routing_context();
  b.detector = config_.detector;
  b.pool = pool_.get();
  b.num_samples = ds_.test_size();
  b.labels = ds_.test_y;
  b.encode_leaf_batch = [this](NodeId leaf,
                               std::span<const std::uint64_t> samples) {
    const proto::NodeRuntime& rt = nodes_[leaf];
    const std::size_t offset = ds_.partition_offset(rt.partition());
    const std::size_t len = ds_.partitions[rt.partition()];
    std::vector<std::vector<float>> slices(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const auto& x = ds_.test_x[samples[i]];
      slices[i].assign(x.begin() + static_cast<std::ptrdiff_t>(offset),
                       x.begin() + static_cast<std::ptrdiff_t>(offset + len));
    }
    return rt.leaf_encoder().encode_batch(slices, *pool_);
  };
  b.encode_all = [this](std::uint64_t sample) {
    return encode_all(ds_.test_x[sample]);
  };
  b.encode_all_masked = [this](std::uint64_t sample,
                               const net::HealthMask& mask) {
    return encode_all_masked(ds_.test_x[sample], mask);
  };
  const CoreObs& o = CoreObs::get();
  b.routed_queries = o.routed_queries;
  b.routed_degraded = o.routed_degraded;
  b.routed_unserved = o.routed_unserved;
  b.routed_bytes = o.routed_bytes;
  b.routed_retry_bytes = o.routed_retry_bytes;
  b.routed_confidence = o.confidence;
  b.node_serves = node_serves_;
  return std::make_unique<serve::Engine>(cfg, std::move(b));
}

serve::ServeReport EdgeHdSystem::serve_run(const serve::ServeConfig& cfg,
                                           const serve::LoadSpec& load) const {
  return serve_start(cfg)->run(load);
}

serve::ServeReport EdgeHdSystem::serve_run(const serve::ServeConfig& cfg,
                                           const serve::LoadSpec& load,
                                           const net::FaultPlan& plan) const {
  auto engine = serve_start(cfg);
  engine->set_fault_plan(plan);
  return engine->run(load);
}

serve::ServeReport EdgeHdSystem::serve_run(
    const serve::ServeConfig& cfg, const serve::ClosedLoopSpec& load) const {
  return serve_start(cfg)->run(load);
}

// ---- online learning -------------------------------------------------------

RoutedResult EdgeHdSystem::online_serve(std::span<const float> x,
                                        std::size_t truth, NodeId start) {
  const RoutedResult result = infer_routed(x, start);
  if (result.served() && result.label != truth) {
    // The user rejects the answer; only the wrongly matched class is known.
    // Under a health mask the feedback targets the hypervector the serving
    // node actually saw (with unreachable contributions silenced).
    const auto hvs = degraded_ ? encode_all_masked(x) : encode_all(x);
    for (std::size_t w = 0; w < config_.feedback_weight; ++w) {
      nodes_[result.node].classifier().feedback_negative(result.label,
                                                         hvs[result.node]);
    }
  }
  return result;
}

CommStats EdgeHdSystem::propagate_residuals() {
  const CommStats comm = proto::run_residual_propagation(session_context());
  // Model changes invalidate nothing cached (encodings are model-free), so
  // no cache flush is needed.
  CoreObs::get().residual_bytes.inc(comm.bytes);
  CoreObs::get().residual_messages.inc(comm.messages);
  return comm;
}

CommStats EdgeHdSystem::reintegrate_stragglers() {
  const CommStats comm = proto::run_reintegration(session_context());
  CoreObs::get().reintegrate_bytes.inc(comm.bytes);
  CoreObs::get().reintegrate_messages.inc(comm.messages);
  return comm;
}

// ---- payload-level fault injection (Figure 12) -----------------------------

namespace {

/// Classifies every damaged test vector produced by `damage(hv)` and
/// returns the accuracy.
template <typename DamageFn>
double accuracy_under_damage(const hdc::HDClassifier& clf,
                             const std::vector<BipolarHV>& encoded,
                             const std::vector<std::size_t>& labels,
                             DamageFn damage) {
  std::size_t correct = 0;
  for (std::size_t s = 0; s < encoded.size(); ++s) {
    BipolarHV damaged = encoded[s];
    damage(damaged);
    const auto sims = clf.similarities(damaged);
    const auto best = static_cast<std::size_t>(
        std::max_element(sims.begin(), sims.end()) - sims.begin());
    if (best == labels[s]) ++correct;
  }
  return encoded.empty() ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(encoded.size());
}

}  // namespace

double EdgeHdSystem::accuracy_at_node_with_loss(NodeId id, double loss,
                                                std::uint64_t seed) const {
  if (loss < 0.0 || loss > 1.0) {
    throw std::invalid_argument("EdgeHdSystem: loss fraction out of range");
  }
  const auto& clf = classifier_at(id);
  ensure_test_encoded();
  hdc::Rng rng(derive_seed(seed, id));
  return accuracy_under_damage(
      clf, encoded_test_[id], ds_.test_y, [&](BipolarHV& hv) {
        for (auto& v : hv) {
          if (rng.bernoulli(loss)) v = 0;  // lost dim carries no signal
        }
      });
}

double EdgeHdSystem::accuracy_at_node_with_burst_loss(
    NodeId id, double loss, std::size_t burst_len, std::uint64_t seed) const {
  if (loss < 0.0 || loss > 1.0) {
    throw std::invalid_argument("EdgeHdSystem: loss fraction out of range");
  }
  if (burst_len == 0) {
    throw std::invalid_argument("EdgeHdSystem: burst length must be positive");
  }
  const auto& clf = classifier_at(id);
  ensure_test_encoded();
  hdc::Rng rng(derive_seed(seed, id ^ 0x9e37ULL));
  return accuracy_under_damage(
      clf, encoded_test_[id], ds_.test_y, [&](BipolarHV& hv) {
        const auto target = static_cast<std::size_t>(
            loss * static_cast<double>(hv.size()));
        std::size_t erased = 0;
        // Drop whole "packets": contiguous runs at random offsets. Bursts
        // may overlap, as retransmission-free links behave.
        while (erased + burst_len / 2 < target) {
          const std::size_t start = rng.index(hv.size());
          for (std::size_t k = 0; k < burst_len; ++k) {
            auto& v = hv[(start + k) % hv.size()];
            if (v != 0) {
              v = 0;
              ++erased;
            }
          }
        }
      });
}

}  // namespace edgehd::core
