#include "edgehd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "hdc/random.hpp"
#include "hdc/wire.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/parallel.hpp"

namespace edgehd::core {

using hdc::AccumHV;
using hdc::BipolarHV;
using hdc::derive_seed;
using net::NodeId;

std::size_t scaled_batch_size(std::size_t paper_batch, std::size_t paper_train,
                              std::size_t actual_train) {
  if (paper_train == 0) return std::max<std::size_t>(1, paper_batch);
  const double scaled = static_cast<double>(paper_batch) *
                        static_cast<double>(actual_train) /
                        static_cast<double>(paper_train);
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(scaled)));
}

EdgeHdSystem::EdgeHdSystem(const data::Dataset& ds, net::Topology topology,
                           SystemConfig config)
    : ds_(ds),
      topology_(std::move(topology)),
      config_(config),
      pool_(std::make_unique<runtime::ThreadPool>(config.num_threads)) {
  leaves_ = topology_.leaves();
  if (leaves_.size() != ds_.partitions.size()) {
    throw std::invalid_argument(
        "EdgeHdSystem: topology leaf count must match dataset partitions");
  }
  if (config_.classify_min_level == 0 ||
      config_.classify_min_level > topology_.depth()) {
    throw std::invalid_argument(
        "EdgeHdSystem: classify_min_level outside the hierarchy depth");
  }

  std::vector<std::size_t> leaf_features(leaves_.size());
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    leaf_features[i] = ds_.partitions[i];
  }
  alloc_ = hier::allocate_dims(topology_, leaf_features, config_.total_dim,
                               config_.min_node_dim);

  nodes_.resize(topology_.num_nodes());
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    nodes_[leaves_[i]].partition = i;
  }

  // Leaves first so concatenation-mode internal dims can be summed upward.
  for (NodeId id : bottom_up_order()) {
    NodeState& st = nodes_[id];
    if (topology_.is_leaf(id)) {
      st.dim = alloc_.dims[id];
      st.leaf_encoder = hdc::make_encoder(
          config_.leaf_encoder, ds_.partitions[st.partition], st.dim,
          derive_seed(config_.seed, 1000 + id));
    } else {
      const auto& kids = topology_.children(id);
      std::vector<std::size_t> child_dims(kids.size());
      for (std::size_t c = 0; c < kids.size(); ++c) {
        child_dims[c] = nodes_[kids[c]].dim;
      }
      const std::size_t concat_dim = std::accumulate(
          child_dims.begin(), child_dims.end(), std::size_t{0});
      st.dim = config_.aggregation == hier::AggregationMode::kConcatenation
                   ? concat_dim
                   : alloc_.dims[id];
      st.aggregator = std::make_unique<hier::HierEncoder>(
          std::move(child_dims), st.dim, derive_seed(config_.seed, 2000 + id),
          config_.aggregation, config_.projection_row_nnz);
    }
    if (topology_.level(id) >= config_.classify_min_level) {
      hdc::ClassifierConfig cc;
      cc.retrain_epochs = config_.retrain_epochs;
      cc.softmax_beta = config_.softmax_beta;
      st.classifier = std::make_unique<hdc::HDClassifier>(ds_.num_classes,
                                                          st.dim, cc);
    }
  }
}

std::size_t EdgeHdSystem::node_dim(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("EdgeHdSystem: node id out of range");
  }
  return nodes_[id].dim;
}

bool EdgeHdSystem::has_classifier(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("EdgeHdSystem: node id out of range");
  }
  return nodes_[id].classifier != nullptr;
}

const hdc::HDClassifier& EdgeHdSystem::classifier_at(NodeId id) const {
  if (!has_classifier(id)) {
    throw std::invalid_argument("EdgeHdSystem: node hosts no classifier");
  }
  return *nodes_[id].classifier;
}

std::vector<NodeId> EdgeHdSystem::bottom_up_order() const {
  std::vector<NodeId> order;
  order.reserve(topology_.num_nodes());
  for (std::size_t level = 1; level <= topology_.depth(); ++level) {
    for (NodeId id : topology_.nodes_at_level(level)) order.push_back(id);
  }
  return order;
}

std::vector<BipolarHV> EdgeHdSystem::encode_all(
    std::span<const float> x) const {
  if (x.size() != ds_.num_features) {
    throw std::invalid_argument("EdgeHdSystem: feature count mismatch");
  }
  std::vector<BipolarHV> hvs(topology_.num_nodes());
  for (NodeId id : bottom_up_order()) {
    const NodeState& st = nodes_[id];
    if (topology_.is_leaf(id)) {
      const std::size_t offset = ds_.partition_offset(st.partition);
      hvs[id] = st.leaf_encoder->encode(
          x.subspan(offset, ds_.partitions[st.partition]));
    } else {
      const auto& kids = topology_.children(id);
      std::vector<BipolarHV> child_hvs(kids.size());
      for (std::size_t c = 0; c < kids.size(); ++c) {
        child_hvs[c] = hvs[kids[c]];
      }
      hvs[id] = st.aggregator->aggregate(child_hvs);
    }
  }
  return hvs;
}

std::vector<std::size_t> EdgeHdSystem::effective_indices(
    std::span<const std::size_t> train_indices) const {
  if (!train_indices.empty()) {
    return {train_indices.begin(), train_indices.end()};
  }
  std::vector<std::size_t> all(ds_.train_size());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

void EdgeHdSystem::ensure_train_encoded(
    std::span<const std::size_t> train_indices) {
  const auto idx = effective_indices(train_indices);
  if (idx == encoded_train_source_) return;

  encoded_train_source_ = idx;
  encoded_train_labels_.resize(idx.size());
  encoded_train_.assign(topology_.num_nodes(), {});
  for (auto& per_node : encoded_train_) per_node.resize(idx.size());

  // Per-sample encode_all is independent work writing disjoint slots; the
  // fan-out changes nothing observable (each sample's encoding is the same
  // deterministic function of the model-free projection state).
  runtime::parallel_for(*pool_, idx.size(), [&](std::size_t s) {
    encoded_train_labels_[s] = ds_.train_y[idx[s]];
    auto hvs = encode_all(ds_.train_x[idx[s]]);
    for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
      encoded_train_[id][s] = std::move(hvs[id]);
    }
  });
}

void EdgeHdSystem::ensure_test_encoded() const {
  if (!encoded_test_.empty()) return;
  encoded_test_.assign(topology_.num_nodes(), {});
  for (auto& per_node : encoded_test_) per_node.resize(ds_.test_size());
  runtime::parallel_for(*pool_, ds_.test_size(), [&](std::size_t s) {
    auto hvs = encode_all(ds_.test_x[s]);
    for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
      encoded_test_[id][s] = std::move(hvs[id]);
    }
  });
}

CommStats EdgeHdSystem::train(std::span<const std::size_t> train_indices) {
  CommStats total = train_initial(train_indices);
  total += retrain_batches(train_indices);
  return total;
}

CommStats EdgeHdSystem::train_initial(
    std::span<const std::size_t> train_indices) {
  ensure_train_encoded(train_indices);
  const std::size_t k = ds_.num_classes;
  CommStats comm;

  // Per-node class accumulators ("partial models"), built bottom-up.
  std::vector<std::vector<AccumHV>> class_accums(topology_.num_nodes());
  for (NodeId id : bottom_up_order()) {
    const NodeState& st = nodes_[id];
    auto& accums = class_accums[id];
    accums.assign(k, AccumHV(st.dim, 0));
    if (topology_.is_leaf(id)) {
      const auto& encoded = encoded_train_[id];
      for (std::size_t s = 0; s < encoded.size(); ++s) {
        hdc::bundle_into(accums[encoded_train_labels_[s]], encoded[s]);
      }
    } else {
      const auto& kids = topology_.children(id);
      std::vector<AccumHV> child_accums(kids.size());
      for (std::size_t c = 0; c < k; ++c) {
        for (std::size_t ci = 0; ci < kids.size(); ++ci) {
          child_accums[ci] = class_accums[kids[ci]][c];
        }
        accums[c] = st.aggregator->aggregate_accum(child_accums);
      }
      // Children ship their k class hypervectors (models, not data).
      for (NodeId kid : kids) {
        for (std::size_t c = 0; c < k; ++c) {
          comm.bytes += hdc::wire_bytes_accum(class_accums[kid][c]);
          ++comm.messages;
        }
      }
    }
    if (st.classifier != nullptr) {
      for (std::size_t c = 0; c < k; ++c) {
        st.classifier->set_class_accumulator(c, accums[c]);
      }
    }
  }
  return comm;
}

CommStats EdgeHdSystem::retrain_batches(
    std::span<const std::size_t> train_indices) {
  ensure_train_encoded(train_indices);
  const std::size_t k = ds_.num_classes;
  CommStats comm;

  // Per-class batches over the encoded-sample index space; the same sample
  // partition is used at every node so batch hypervectors line up across the
  // hierarchy (each physical observation is sensed by every leaf).
  std::vector<std::vector<std::vector<std::size_t>>> batches(k);
  {
    std::vector<std::vector<std::size_t>> by_class(k);
    for (std::size_t s = 0; s < encoded_train_labels_.size(); ++s) {
      by_class[encoded_train_labels_[s]].push_back(s);
    }
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t start = 0; start < by_class[c].size();
           start += config_.batch_size) {
        const std::size_t end =
            std::min(start + config_.batch_size, by_class[c].size());
        batches[c].emplace_back(by_class[c].begin() + start,
                                by_class[c].begin() + end);
      }
    }
  }

  // Bottom-up batch hypervectors; internal nodes aggregate children's.
  std::vector<std::vector<std::vector<AccumHV>>> node_batches(
      topology_.num_nodes());  // [node][class][batch]
  for (NodeId id : bottom_up_order()) {
    const NodeState& st = nodes_[id];
    auto& nb = node_batches[id];
    nb.assign(k, {});
    if (topology_.is_leaf(id)) {
      const auto& encoded = encoded_train_[id];
      for (std::size_t c = 0; c < k; ++c) {
        for (const auto& batch : batches[c]) {
          AccumHV acc(st.dim, 0);
          for (std::size_t s : batch) hdc::bundle_into(acc, encoded[s]);
          nb[c].push_back(std::move(acc));
        }
      }
    } else {
      const auto& kids = topology_.children(id);
      std::vector<AccumHV> child_accums(kids.size());
      for (std::size_t c = 0; c < k; ++c) {
        for (std::size_t b = 0; b < batches[c].size(); ++b) {
          for (std::size_t ci = 0; ci < kids.size(); ++ci) {
            child_accums[ci] = node_batches[kids[ci]][c][b];
          }
          nb[c].push_back(st.aggregator->aggregate_accum(child_accums));
        }
      }
      for (NodeId kid : kids) {
        for (std::size_t c = 0; c < k; ++c) {
          for (const auto& acc : node_batches[kid][c]) {
            comm.bytes += hdc::wire_bytes_accum(acc);
            ++comm.messages;
          }
        }
      }
    }

    if (st.classifier == nullptr) continue;
    if (topology_.is_leaf(id)) {
      // End nodes retrain on their own per-sample encodings; batching only
      // matters for what crosses the network.
      st.classifier->retrain(encoded_train_[id], encoded_train_labels_);
    } else {
      std::vector<BipolarHV> hvs;
      std::vector<std::size_t> labels;
      for (std::size_t c = 0; c < k; ++c) {
        for (const auto& acc : nb[c]) {
          hvs.push_back(hdc::binarize(acc));
          labels.push_back(c);
        }
      }
      st.classifier->retrain(hvs, labels);
    }
  }
  return comm;
}

double EdgeHdSystem::accuracy_at_node(NodeId id) const {
  const auto& clf = classifier_at(id);
  ensure_test_encoded();
  return clf.accuracy(encoded_test_[id], ds_.test_y, *pool_);
}

double EdgeHdSystem::accuracy_at_level(std::size_t level) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (NodeId id : topology_.nodes_at_level(level)) {
    if (!has_classifier(id)) continue;
    sum += accuracy_at_node(id);
    ++count;
  }
  if (count == 0) {
    throw std::invalid_argument("EdgeHdSystem: no classifiers at this level");
  }
  return sum / static_cast<double>(count);
}

double EdgeHdSystem::mean_confidence_at_node(NodeId id) const {
  const auto& clf = classifier_at(id);
  ensure_test_encoded();
  double sum = 0.0;
  for (const auto& hv : encoded_test_[id]) {
    sum += clf.predict(hv).confidence;
  }
  return encoded_test_[id].empty()
             ? 0.0
             : sum / static_cast<double>(encoded_test_[id].size());
}

double EdgeHdSystem::mean_confidence_at_level(std::size_t level) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (NodeId id : topology_.nodes_at_level(level)) {
    if (!has_classifier(id)) continue;
    sum += mean_confidence_at_node(id);
    ++count;
  }
  if (count == 0) {
    throw std::invalid_argument("EdgeHdSystem: no classifiers at this level");
  }
  return sum / static_cast<double>(count);
}

std::uint64_t EdgeHdSystem::compressed_query_bytes(std::size_t dim) const {
  const std::size_t m = std::max<std::size_t>(1, config_.compression);
  if (m == 1) return hdc::wire_bytes_bipolar(dim);
  // m bipolar queries superpose into one accumulator with |entry| <= m;
  // amortize the bundle's bytes over its members.
  const std::uint32_t bits =
      hdc::bits_for_magnitude(static_cast<std::int64_t>(m));
  const std::uint64_t bundle = hdc::wire_bytes_accum(dim, bits);
  return (bundle + m - 1) / m;
}

std::uint64_t EdgeHdSystem::query_gather_bytes(NodeId id) const {
  if (topology_.is_leaf(id)) return 0;
  std::uint64_t bytes = 0;
  for (NodeId kid : topology_.children(id)) {
    bytes += query_gather_bytes(kid) + compressed_query_bytes(nodes_[kid].dim);
  }
  return bytes;
}

RoutedResult EdgeHdSystem::infer_routed(std::span<const float> x,
                                        NodeId start) const {
  if (!has_classifier(start)) {
    throw std::invalid_argument("EdgeHdSystem: start node hosts no classifier");
  }
  const auto hvs = encode_all(x);
  NodeId current = start;
  RoutedResult result;
  while (true) {
    const auto pred = nodes_[current].classifier->predict(hvs[current]);
    result.label = pred.label;
    result.confidence = pred.confidence;
    result.node = current;
    result.level = topology_.level(current);
    const bool confident = pred.confidence >= config_.confidence_threshold;
    if (confident || current == topology_.root()) break;
    // Escalate to the nearest ancestor that hosts a classifier.
    NodeId next = topology_.parent(current);
    while (next != topology_.root() && !has_classifier(next)) {
      next = topology_.parent(next);
    }
    if (!has_classifier(next)) break;
    current = next;
  }
  result.bytes = query_gather_bytes(result.node);
  return result;
}

std::vector<RoutedResult> EdgeHdSystem::infer_routed_batch(
    std::span<const std::vector<float>> xs, NodeId start) const {
  if (!has_classifier(start)) {
    throw std::invalid_argument("EdgeHdSystem: start node hosts no classifier");
  }
  const runtime::BatchExecutor exec(*pool_);
  return exec.map(xs.size(),
                  [&](std::size_t i) { return infer_routed(xs[i], start); });
}

RoutedResult EdgeHdSystem::online_serve(std::span<const float> x,
                                        std::size_t truth, NodeId start) {
  const RoutedResult result = infer_routed(x, start);
  if (result.label != truth) {
    // The user rejects the answer; only the wrongly matched class is known.
    const auto hvs = encode_all(x);
    for (std::size_t w = 0; w < config_.feedback_weight; ++w) {
      nodes_[result.node].classifier->feedback_negative(result.label,
                                                        hvs[result.node]);
    }
  }
  return result;
}

CommStats EdgeHdSystem::propagate_residuals() {
  const std::size_t k = ds_.num_classes;
  CommStats comm;
  std::vector<std::vector<AccumHV>> outbox(topology_.num_nodes());

  auto is_zero = [](const std::vector<AccumHV>& accums) {
    for (const auto& a : accums) {
      for (std::int32_t v : a) {
        if (v != 0) return false;
      }
    }
    return true;
  };

  for (NodeId id : bottom_up_order()) {
    NodeState& st = nodes_[id];
    std::vector<AccumHV> total(k, AccumHV(st.dim, 0));

    if (!topology_.is_leaf(id)) {
      const auto& kids = topology_.children(id);
      std::vector<AccumHV> child_res(kids.size());
      bool any_child = false;
      for (NodeId kid : kids) {
        if (!is_zero(outbox[kid])) {
          any_child = true;
          for (std::size_t c = 0; c < k; ++c) {
            comm.bytes += hdc::wire_bytes_accum(outbox[kid][c]);
            ++comm.messages;
          }
        }
      }
      if (any_child) {
        for (std::size_t c = 0; c < k; ++c) {
          for (std::size_t ci = 0; ci < kids.size(); ++ci) {
            child_res[ci] = outbox[kids[ci]][c];
          }
          total[c] = st.aggregator->aggregate_accum(child_res);
        }
      }
    }

    if (st.classifier != nullptr) {
      auto own = st.classifier->take_residuals();
      for (std::size_t c = 0; c < k; ++c) {
        hdc::accumulate(total[c], own[c]);
      }
      // Figure 5b step (2): update this node's model with everything known
      // here — its own residuals plus the children's, re-encoded.
      if (!is_zero(total)) {
        st.classifier->apply_external_residuals(total);
      }
    }
    outbox[id] = std::move(total);
  }

  // Model changes invalidate nothing cached (encodings are model-free), so
  // no cache flush is needed.
  return comm;
}

namespace {

/// Classifies every damaged test vector produced by `damage(hv)` and
/// returns the accuracy.
template <typename DamageFn>
double accuracy_under_damage(const hdc::HDClassifier& clf,
                             const std::vector<BipolarHV>& encoded,
                             const std::vector<std::size_t>& labels,
                             DamageFn damage) {
  std::size_t correct = 0;
  for (std::size_t s = 0; s < encoded.size(); ++s) {
    BipolarHV damaged = encoded[s];
    damage(damaged);
    const auto sims = clf.similarities(damaged);
    const auto best = static_cast<std::size_t>(
        std::max_element(sims.begin(), sims.end()) - sims.begin());
    if (best == labels[s]) ++correct;
  }
  return encoded.empty() ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(encoded.size());
}

}  // namespace

double EdgeHdSystem::accuracy_at_node_with_loss(NodeId id, double loss,
                                                std::uint64_t seed) const {
  if (loss < 0.0 || loss > 1.0) {
    throw std::invalid_argument("EdgeHdSystem: loss fraction out of range");
  }
  const auto& clf = classifier_at(id);
  ensure_test_encoded();
  hdc::Rng rng(derive_seed(seed, id));
  return accuracy_under_damage(
      clf, encoded_test_[id], ds_.test_y, [&](BipolarHV& hv) {
        for (auto& v : hv) {
          if (rng.bernoulli(loss)) v = 0;  // lost dim carries no signal
        }
      });
}

double EdgeHdSystem::accuracy_at_node_with_burst_loss(
    NodeId id, double loss, std::size_t burst_len, std::uint64_t seed) const {
  if (loss < 0.0 || loss > 1.0) {
    throw std::invalid_argument("EdgeHdSystem: loss fraction out of range");
  }
  if (burst_len == 0) {
    throw std::invalid_argument("EdgeHdSystem: burst length must be positive");
  }
  const auto& clf = classifier_at(id);
  ensure_test_encoded();
  hdc::Rng rng(derive_seed(seed, id ^ 0x9e37ULL));
  return accuracy_under_damage(
      clf, encoded_test_[id], ds_.test_y, [&](BipolarHV& hv) {
        const auto target = static_cast<std::size_t>(
            loss * static_cast<double>(hv.size()));
        std::size_t erased = 0;
        // Drop whole "packets": contiguous runs at random offsets. Bursts
        // may overlap, as retransmission-free links behave.
        while (erased + burst_len / 2 < target) {
          const std::size_t start = rng.index(hv.size());
          for (std::size_t k = 0; k < burst_len; ++k) {
            auto& v = hv[(start + k) % hv.size()];
            if (v != 0) {
              v = 0;
              ++erased;
            }
          }
        }
      });
}

}  // namespace edgehd::core
